package ipso_test

import (
	"math"
	"testing"

	"ipso"
)

// The facade tests exercise the public API exactly the way the README's
// quick start does.

func TestQuickStartSortModel(t *testing.T) {
	m := ipso.Model{
		Eta: 0.59,
		EX:  ipso.LinearFactor(1, 0),
		IN:  ipso.LinearFactor(0.36, 0.64),
		Q:   ipso.ZeroOverhead(),
	}
	s, err := m.Speedup(200)
	if err != nil {
		t.Fatal(err)
	}
	if s < 4 || s > 5.5 {
		t.Errorf("Sort-like speedup at n=200 is %g, want ≈4-5 (bounded)", s)
	}
	g, err := ipso.Gustafson(0.59, 200)
	if err != nil {
		t.Fatal(err)
	}
	if g < 20*s {
		t.Errorf("Gustafson (%g) should wildly overpredict the bounded speedup (%g)", g, s)
	}
}

func TestClassifyThroughFacade(t *testing.T) {
	a := ipso.Asymptotic{Eta: 1, Beta: 3.7e-4, Gamma: 2}
	typ, err := a.Classify(ipso.FixedSize)
	if err != nil {
		t.Fatal(err)
	}
	if typ != ipso.TypeIVs {
		t.Errorf("classified %v, want IVs", typ)
	}
	if !typ.Pathological() {
		t.Error("IVs must be pathological")
	}
}

func TestLawsThroughFacade(t *testing.T) {
	b, err := ipso.AmdahlBound(0.75)
	if err != nil || b != 4 {
		t.Errorf("AmdahlBound = %g, %v", b, err)
	}
	s, err := ipso.SunNi(0.5, 4, ipso.LinearFactor(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	g, _ := ipso.Gustafson(0.5, 4)
	if math.Abs(s-g) > 1e-12 {
		t.Errorf("Sun-Ni with g(n)=n (%g) must equal Gustafson (%g)", s, g)
	}
	if am, _ := ipso.Amdahl(0.5, 4); math.Abs(am-1.6) > 1e-12 {
		t.Errorf("Amdahl(0.5, 4) = %g, want 1.6", am)
	}
	for _, m := range []ipso.Model{ipso.AmdahlModel(0.5), ipso.GustafsonModel(0.5), ipso.SunNiModel(0.5, ipso.PowerFactor(1, 0.9))} {
		if _, err := m.Speedup(8); err != nil {
			t.Errorf("law model speedup: %v", err)
		}
	}
}

func TestEstimateAndPredictThroughFacade(t *testing.T) {
	var m ipso.Measurements
	for _, n := range []float64{1, 2, 4, 8, 16} {
		m.N = append(m.N, n)
		m.Wp = append(m.Wp, 18.8*n)
		m.Ws = append(m.Ws, 12.85*(0.377*n+0.623))
	}
	est, err := ipso.Estimate(m)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ipso.NewPredictor(est, 18.8, 12.85)
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.Speedup(200)
	if err != nil {
		t.Fatal(err)
	}
	if s < 4 || s > 5.5 {
		t.Errorf("predicted speedup %g, want ≈4.6", s)
	}
}

func TestDiagnoseThroughFacade(t *testing.T) {
	ns := []float64{10, 30, 60, 90}
	ss := make([]float64, len(ns))
	for i, n := range ns {
		s, err := ipso.CFSpeedup(1602.5, 2001/n+9, 0.6*n)
		if err != nil {
			t.Fatal(err)
		}
		ss[i] = s
	}
	d, err := ipso.Diagnose(ipso.FixedSize, ns, ss)
	if err != nil {
		t.Fatal(err)
	}
	if d.Type != ipso.TypeIVs {
		t.Errorf("diagnosed %v, want IVs", d.Type)
	}
	typ, err := ipso.DiagnoseWithFactors(ipso.FixedSize, ipso.Asymptotic{Eta: 1, Beta: 3.7e-4, Gamma: 2})
	if err != nil || typ != ipso.TypeIVs {
		t.Errorf("factor diagnosis %v, %v", typ, err)
	}
}

func TestFactorHelpersThroughFacade(t *testing.T) {
	f, err := ipso.Interpolated([]float64{1, 2}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if f(1.5) != 2 {
		t.Errorf("interpolated(1.5) = %g, want 2", f(1.5))
	}
	fs, err := ipso.FactorSeries([]float64{1, 2}, []float64{5, 10})
	if err != nil || fs[1] != 2 {
		t.Errorf("FactorSeries = %v, %v", fs, err)
	}
	eta, err := ipso.EtaFromPhases(3, 1)
	if err != nil || eta != 0.75 {
		t.Errorf("EtaFromPhases = %g, %v", eta, err)
	}
	if ipso.Constant(2)(9) != 2 {
		t.Error("Constant broken")
	}
}

func TestProvisioningThroughFacade(t *testing.T) {
	model, err := ipso.Asymptotic{Eta: 1, Beta: 3.7e-4, Gamma: 2}.Model(ipso.FixedSize)
	if err != nil {
		t.Fatal(err)
	}
	p := ipso.ProvisionInput{
		Model:            model,
		SeqJobSeconds:    1602.5,
		PricePerNodeHour: 0.4,
		MaxN:             100,
	}
	limit, ok, err := p.HardScaleOutLimit()
	if err != nil || !ok {
		t.Fatalf("hard limit: %v ok=%v", err, ok)
	}
	if limit < 45 || limit > 60 {
		t.Errorf("hard limit %d, want ≈52", limit)
	}
	best, err := p.BestSpeedupPerDollar()
	if err != nil {
		t.Fatal(err)
	}
	if best.N < 1 || best.N > 100 {
		t.Errorf("best point %+v out of range", best)
	}
}
