// Package obs is the observability layer of the harness: a
// dependency-free metrics registry (counters, gauges, fixed-bucket
// histograms, all race-safe and exportable in Prometheus text format)
// plus wall-clock spans recorded as JSON Lines in the same event schema
// internal/trace reads.
//
// Section V of the paper derives every IPSO parameter from execution
// logs. internal/trace does that for the simulated engines; this package
// closes the gap for the real code paths — the runner pool, the TCP
// MapReduce runtime, the online estimator — so the harness itself can be
// measured, scraped and fitted like any production system under study.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metricKind discriminates the three metric families.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// atomicFloat is a float64 with atomic add/set via bit-casting.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Set(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value.
type Counter struct{ v atomicFloat }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter; negative deltas are ignored (counters are
// monotone by definition).
func (c *Counter) Add(delta float64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.Set(v) }

// Add shifts the value by delta (negative allowed).
func (g *Gauge) Add(delta float64) { g.v.Add(delta) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// Histogram counts observations into fixed buckets (upper bounds,
// ascending; an implicit +Inf bucket is always present).
type Histogram struct {
	bounds []float64 // shared with the family; read-only
	counts []atomic.Uint64
	inf    atomic.Uint64
	sum    atomicFloat
	total  atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Buckets are few (≤ ~20): linear scan beats binary search in practice
	// and keeps the hot path allocation-free.
	placed := false
	for i, ub := range h.bounds {
		if v <= ub {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	h.sum.Add(v)
	h.total.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// Buckets returns the upper bounds and the cumulative counts at each
// bound (Prometheus semantics), excluding +Inf (which equals Count).
func (h *Histogram) Buckets() (bounds []float64, cumulative []uint64) {
	bounds = make([]float64, len(h.bounds))
	copy(bounds, h.bounds)
	cumulative = make([]uint64, len(h.bounds))
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	return bounds, cumulative
}

// DefBuckets are the default latency buckets (seconds), spanning the
// microsecond task times of the simulator to multi-second network jobs.
var DefBuckets = []float64{
	1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30,
}

// family is one named metric with a fixed kind and label schema; children
// are the per-label-value instances.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string
	bounds []float64 // histograms only
	mu     sync.Mutex
	keys   []string // insertion keys, sorted at snapshot time
	kids   map[string]any
}

func (f *family) child(labelValues []string) any {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(labelValues)))
	}
	key := labelKey(labelValues)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.kids[key]; ok {
		return m
	}
	var m any
	switch f.kind {
	case kindCounter:
		m = &Counter{}
	case kindGauge:
		m = &Gauge{}
	case kindHistogram:
		h := &Histogram{bounds: f.bounds}
		h.counts = make([]atomic.Uint64, len(f.bounds))
		m = h
	}
	f.kids[key] = m
	f.keys = append(f.keys, key)
	return m
}

// labelKey joins label values with an unprintable separator so distinct
// tuples cannot collide.
func labelKey(values []string) string { return strings.Join(values, "\x1f") }

func splitLabelKey(key string) []string {
	if key == "" {
		return nil
	}
	return strings.Split(key, "\x1f")
}

// Registry holds metric families. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// defaultRegistry is the process-wide registry used by the package-level
// constructors; library instrumentation (runner, netmr, core) registers
// here so one -metricsaddr endpoint exposes everything.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// lookup returns the family, creating it on first use. Re-registration
// with the same schema returns the existing family (instrumented
// libraries may be initialized more than once); a schema mismatch panics
// — it is a programming bug, not a runtime condition.
func (r *Registry) lookup(name, help string, kind metricKind, labels []string, bounds []float64) *family {
	mustValidName(name)
	for _, l := range labels {
		mustValidName(l)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v", name, kind, labels, f.kind, f.labels))
		}
		return f
	}
	f := &family{
		name:   name,
		help:   help,
		kind:   kind,
		labels: append([]string(nil), labels...),
		kids:   map[string]any{},
	}
	if kind == kindHistogram {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		f.bounds = bs
	}
	r.families[name] = f
	return f
}

// Counter returns the unlabeled counter registered under name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, kindCounter, nil, nil).child(nil).(*Counter)
}

// Gauge returns the unlabeled gauge registered under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, kindGauge, nil, nil).child(nil).(*Gauge)
}

// Histogram returns the unlabeled histogram registered under name. Nil
// buckets default to DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.lookup(name, help, kindHistogram, nil, buckets).child(nil).(*Histogram)
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family registered under name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.lookup(name, help, kindCounter, labels, nil)}
}

// With returns the counter for one label-value tuple.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.child(labelValues).(*Counter)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family registered under name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.lookup(name, help, kindGauge, labels, nil)}
}

// With returns the gauge for one label-value tuple.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.child(labelValues).(*Gauge)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family registered under
// name. Nil buckets default to DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{r.lookup(name, help, kindHistogram, labels, buckets)}
}

// With returns the histogram for one label-value tuple.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.child(labelValues).(*Histogram)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mustValidName enforces the Prometheus metric/label name charset.
func mustValidName(name string) {
	if name == "" {
		panic("obs: empty metric or label name")
	}
	for i, c := range name {
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			panic(fmt.Sprintf("obs: invalid metric or label name %q", name))
		}
	}
}
