package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"ipso/internal/trace"
)

func TestStartSpanWithoutRecorderIsNoOp(t *testing.T) {
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "map")
	if s != nil {
		t.Error("no recorder: span must be nil")
	}
	if ctx2 != ctx {
		t.Error("no recorder: context must be returned unchanged")
	}
	s.SetTask(3).SetStage(1)
	s.End() // all no-ops on nil
}

func TestSpanRecordingAndNesting(t *testing.T) {
	rec := NewRecorder("job")
	ctx := WithRecorder(context.Background(), rec)

	ctx, outer := StartSpan(ctx, "map")
	outer.SetStage(2).SetTask(5)
	_, inner := StartSpan(ctx, "compute")
	time.Sleep(time.Millisecond)
	inner.End()
	outer.End()
	outer.End() // idempotent

	evs := rec.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	// Child inherited the parent's stage and task coordinates.
	if evs[0].Phase != "compute" || evs[0].Stage != 2 || evs[0].Task != 5 {
		t.Errorf("child event = %+v", evs[0])
	}
	if evs[1].Phase != "map" || evs[1].Job != "job" {
		t.Errorf("parent event = %+v", evs[1])
	}
	if evs[0].End < evs[0].Start || evs[0].Duration() <= 0 {
		t.Errorf("child duration not positive: %+v", evs[0])
	}
	if evs[1].End < evs[0].End {
		t.Errorf("parent must end after child: %+v vs %+v", evs[1], evs[0])
	}
}

// Duration helper mirrored from trace.Event for test readability.
func (e SpanEvent) Duration() float64 { return e.End - e.Start }

func TestRecorderJSONIsTraceCompatible(t *testing.T) {
	rec := NewRecorder("selftest")
	ctx := WithRecorder(context.Background(), rec)
	for i := 0; i < 3; i++ {
		_, s := StartSpan(ctx, "map")
		s.SetTask(i)
		time.Sleep(200 * time.Microsecond)
		s.End()
	}
	_, m := StartSpan(ctx, "merge")
	m.End()

	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 4 {
		t.Fatalf("want 4 JSON lines, got %d:\n%s", got, buf.String())
	}

	// The whole point: trace.ReadJSON parses the span log and its
	// extraction tooling works on it.
	log, err := trace.ReadJSON(&buf)
	if err != nil {
		t.Fatalf("trace.ReadJSON on span output: %v", err)
	}
	if log.Len() != 4 {
		t.Fatalf("trace log has %d events, want 4", log.Len())
	}
	ds := log.TaskDurations(trace.PhaseMap)
	if len(ds) != 3 {
		t.Fatalf("task durations = %v, want 3 entries", ds)
	}
	for i, d := range ds {
		if d <= 0 {
			t.Errorf("task %d duration %g, want > 0", i, d)
		}
	}
	if total := log.PhaseTotal(trace.PhaseMap); total <= 0 {
		t.Errorf("PhaseTotal(map) = %g, want > 0", total)
	}
	if _, ok := log.MaxTaskDuration(trace.PhaseMap); !ok {
		t.Error("MaxTaskDuration should see the task events")
	}
}

func TestRecorderConcurrentSpans(t *testing.T) {
	rec := NewRecorder("racy")
	ctx := WithRecorder(context.Background(), rec)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, s := StartSpan(ctx, "map")
			s.SetTask(i)
			s.End()
		}(i)
	}
	wg.Wait()
	if rec.Len() != 16 {
		t.Errorf("recorded %d spans, want 16", rec.Len())
	}
}

func TestNilRecorderAccessors(t *testing.T) {
	var rec *Recorder
	if rec.Events() != nil || rec.Len() != 0 {
		t.Error("nil recorder must read as empty")
	}
	if RecorderFrom(context.Background()) != nil {
		t.Error("bare context must carry no recorder")
	}
}
