package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// MetricsHandler serves the registry in Prometheus text format, ready
// for any scraper pointed at /metrics.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// HealthHandler serves a JSON health document. details, if non-nil, is
// called per request and its entries are merged into the response next
// to "status": "ok". A details map may override "status": any value
// other than "ok" marks the process degraded and the document is served
// with 503 Service Unavailable (body included), so load balancers and
// probes see the degradation without parsing JSON. encoding/json sorts
// map keys, so the document is deterministic.
func HealthHandler(details func() map[string]any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		doc := map[string]any{"status": "ok"}
		if details != nil {
			for k, v := range details() {
				doc[k] = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if status, ok := doc["status"].(string); ok && status != "ok" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(doc)
	})
}

// Server is a live observability endpoint: /metrics and /healthz on one
// listener.
type Server struct {
	Addr string // bound address (host:port)
	srv  *http.Server
	ln   net.Listener
}

// Serve binds addr (use "127.0.0.1:0" for an ephemeral port) and serves
// /metrics from the registry, /healthz from the details callback, and
// the runtime profiles under /debug/pprof/ in the background until
// Close. The pprof handlers are registered on this mux explicitly (not
// via the net/http/pprof DefaultServeMux side effect) so profiling is
// available exactly where the metrics are — the address the operator
// already knows — and nowhere else.
func Serve(addr string, r *Registry, details func() map[string]any) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(r))
	mux.Handle("/healthz", HealthHandler(details))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:   ln,
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Close stops the server and releases the listener.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}
