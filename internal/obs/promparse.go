package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// A strict parser for the Prometheus text exposition format (0.0.4),
// covering exactly the dialect WritePrometheus emits. It exists so the
// scrape surface can be validated end to end — not just "some text came
// back" but every contract a real scraper relies on: syntactically valid
// lines, TYPE declared before samples, correct label escaping,
// deterministic family and child ordering, and the histogram invariants
// (ascending bounds, monotone cumulative counts, +Inf == _count, _sum
// and _count present). Any violation is a parse error, never a silent
// skip.

// PromSample is one scraped series: a metric name, its label pairs in
// exposition order, and the value.
type PromSample struct {
	Name   string
	Labels [][2]string
	Value  float64
}

// Label returns the value of the named label ("" when absent).
func (s PromSample) Label(name string) string {
	for _, kv := range s.Labels {
		if kv[0] == name {
			return kv[1]
		}
	}
	return ""
}

// key is the child-ordering key: label values joined in label order.
func (s PromSample) key() string {
	parts := make([]string, len(s.Labels))
	for i, kv := range s.Labels {
		parts[i] = kv[1]
	}
	return strings.Join(parts, "\x1f")
}

// PromFamily is one # TYPE block: the declared kind plus every sample
// under it, in exposition order.
type PromFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []PromSample
}

// Sample returns the first sample with the given name and label subset
// (every given pair must match; extra labels on the sample are fine).
func (f PromFamily) Sample(name string, labels ...[2]string) (PromSample, bool) {
	for _, s := range f.Samples {
		if s.Name != name {
			continue
		}
		match := true
		for _, want := range labels {
			if s.Label(want[0]) != want[1] {
				match = false
				break
			}
		}
		if match {
			return s, true
		}
	}
	return PromSample{}, false
}

// ParsePrometheus strictly parses one exposition document. It returns
// the families in document order after validating syntax, ordering and
// the per-kind invariants described above.
func ParsePrometheus(r io.Reader) ([]PromFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	var fams []PromFamily
	var cur *PromFamily
	pendingHelp := "" // HELP seen, waiting for its TYPE
	pendingName := ""
	lineNo := 0

	flush := func() error {
		if pendingName != "" {
			return fmt.Errorf("obs: line %d: HELP for %q without a following TYPE", lineNo, pendingName)
		}
		if cur != nil {
			if err := validateFamily(*cur); err != nil {
				return err
			}
			fams = append(fams, *cur)
			cur = nil
		}
		return nil
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			return nil, fmt.Errorf("obs: line %d: blank line in exposition", lineNo)
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if err := flush(); err != nil {
				return nil, err
			}
			rest := line[len("# HELP "):]
			name, help, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				return nil, fmt.Errorf("obs: line %d: malformed HELP line %q", lineNo, line)
			}
			if err := validMetricName(name); err != nil {
				return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
			}
			if err := validEscapes(help, false); err != nil {
				return nil, fmt.Errorf("obs: line %d: HELP text: %w", lineNo, err)
			}
			pendingName, pendingHelp = name, help
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line[len("# TYPE "):])
			if len(fields) != 2 {
				return nil, fmt.Errorf("obs: line %d: malformed TYPE line %q", lineNo, line)
			}
			name, kind := fields[0], fields[1]
			if err := validMetricName(name); err != nil {
				return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
			}
			switch kind {
			case "counter", "gauge", "histogram":
			default:
				return nil, fmt.Errorf("obs: line %d: unknown metric type %q", lineNo, kind)
			}
			if pendingName != "" && pendingName != name {
				return nil, fmt.Errorf("obs: line %d: HELP for %q followed by TYPE for %q", lineNo, pendingName, name)
			}
			help := pendingHelp
			if pendingName == "" {
				help = ""
			}
			pendingName, pendingHelp = "", ""
			if cur != nil {
				if err := validateFamily(*cur); err != nil {
					return nil, err
				}
				fams = append(fams, *cur)
			}
			cur = &PromFamily{Name: name, Help: help, Type: kind}
		case strings.HasPrefix(line, "#"):
			return nil, fmt.Errorf("obs: line %d: unexpected comment %q", lineNo, line)
		default:
			if cur == nil {
				return nil, fmt.Errorf("obs: line %d: sample %q before any TYPE declaration", lineNo, line)
			}
			s, err := parsePromSample(line)
			if err != nil {
				return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
			}
			if !sampleBelongs(cur.Name, cur.Type, s.Name) {
				return nil, fmt.Errorf("obs: line %d: sample %q under TYPE %q", lineNo, s.Name, cur.Name)
			}
			cur.Samples = append(cur.Samples, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: scan exposition: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	for i := 1; i < len(fams); i++ {
		if fams[i].Name <= fams[i-1].Name {
			return nil, fmt.Errorf("obs: families out of order: %q after %q", fams[i].Name, fams[i-1].Name)
		}
	}
	return fams, nil
}

// sampleBelongs reports whether a sample name is legal under a family:
// the family name itself, or for histograms its _bucket/_sum/_count
// series.
func sampleBelongs(family, kind, sample string) bool {
	if sample == family {
		return kind != "histogram"
	}
	if kind == "histogram" {
		switch sample {
		case family + "_bucket", family + "_sum", family + "_count":
			return true
		}
	}
	return false
}

// parseSample parses `name{k="v",...} value` with strict label escaping.
func parsePromSample(line string) (PromSample, error) {
	var s PromSample
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	s.Name = line[:i]
	if err := validMetricName(s.Name); err != nil {
		return s, err
	}
	if i < len(line) && line[i] == '{' {
		i++
		for {
			if i >= len(line) {
				return s, fmt.Errorf("unterminated label set in %q", line)
			}
			if line[i] == '}' {
				if len(s.Labels) == 0 {
					return s, fmt.Errorf("empty label set in %q", line)
				}
				i++
				break
			}
			j := i
			for j < len(line) && line[j] != '=' {
				j++
			}
			if j >= len(line) {
				return s, fmt.Errorf("label without '=' in %q", line)
			}
			lname := line[i:j]
			if err := validMetricName(lname); err != nil {
				return s, err
			}
			if j+1 >= len(line) || line[j+1] != '"' {
				return s, fmt.Errorf("label %q value is not quoted in %q", lname, line)
			}
			val, next, err := parseQuoted(line, j+1)
			if err != nil {
				return s, err
			}
			s.Labels = append(s.Labels, [2]string{lname, val})
			i = next
			if i < len(line) && line[i] == ',' {
				i++
				continue
			}
			if i < len(line) && line[i] == '}' {
				continue
			}
			return s, fmt.Errorf("expected ',' or '}' after label %q in %q", lname, line)
		}
	}
	if i >= len(line) || line[i] != ' ' {
		return s, fmt.Errorf("missing value separator in %q", line)
	}
	raw := line[i+1:]
	if raw == "" || strings.ContainsAny(raw, " \t") {
		return s, fmt.Errorf("malformed value %q in %q", raw, line)
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return s, fmt.Errorf("unparseable value %q in %q", raw, line)
	}
	s.Value = v
	return s, nil
}

// parseQuoted parses a double-quoted label value starting at the opening
// quote, enforcing the exposition escape set (\\, \", \n only), and
// returns the decoded value with the index just past the closing quote.
func parseQuoted(line string, start int) (string, int, error) {
	var sb strings.Builder
	i := start + 1
	for i < len(line) {
		c := line[i]
		switch c {
		case '"':
			return sb.String(), i + 1, nil
		case '\\':
			if i+1 >= len(line) {
				return "", 0, fmt.Errorf("dangling backslash in %q", line)
			}
			switch line[i+1] {
			case '\\':
				sb.WriteByte('\\')
			case '"':
				sb.WriteByte('"')
			case 'n':
				sb.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("invalid escape \\%c in %q", line[i+1], line)
			}
			i += 2
		default:
			sb.WriteByte(c)
			i++
		}
	}
	return "", 0, fmt.Errorf("unterminated label value in %q", line)
}

// validEscapes checks HELP-style escaped text: only \\ and \n (and for
// label values also \") may follow a backslash.
func validEscapes(s string, allowQuote bool) error {
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			continue
		}
		if i+1 >= len(s) {
			return fmt.Errorf("dangling backslash in %q", s)
		}
		switch s[i+1] {
		case '\\', 'n':
		case '"':
			if !allowQuote {
				return fmt.Errorf("invalid escape \\\" in %q", s)
			}
		default:
			return fmt.Errorf("invalid escape \\%c in %q", s[i+1], s)
		}
		i++
	}
	return nil
}

func validMetricName(name string) error {
	if name == "" {
		return fmt.Errorf("empty metric or label name")
	}
	for i, c := range name {
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return fmt.Errorf("invalid metric or label name %q", name)
		}
	}
	return nil
}

// validateFamily enforces the per-kind invariants on one family block.
func validateFamily(f PromFamily) error {
	switch f.Type {
	case "counter":
		if err := checkChildOrder(f.Name, f.Samples); err != nil {
			return err
		}
		for _, s := range f.Samples {
			if s.Value < 0 || math.IsNaN(s.Value) {
				return fmt.Errorf("obs: counter %s%v has non-monotone value %g", s.Name, s.Labels, s.Value)
			}
		}
	case "gauge":
		if err := checkChildOrder(f.Name, f.Samples); err != nil {
			return err
		}
	case "histogram":
		return validateHistogram(f)
	}
	return nil
}

// checkChildOrder verifies children are strictly ordered by label values
// (the writer sorts them), which also rules out duplicate series.
func checkChildOrder(name string, samples []PromSample) error {
	for i := 1; i < len(samples); i++ {
		if samples[i].key() <= samples[i-1].key() {
			return fmt.Errorf("obs: %s children out of order: %v after %v", name, samples[i].Labels, samples[i-1].Labels)
		}
	}
	return nil
}

// validateHistogram checks each child's bucket run: ascending le bounds,
// monotone cumulative counts, a final +Inf bucket, then _sum and _count
// with +Inf == _count — in exactly that order, children sorted.
func validateHistogram(f PromFamily) error {
	i := 0
	prevChild := ""
	first := true
	for i < len(f.Samples) {
		var bounds []float64
		var cum []float64
		for i < len(f.Samples) && f.Samples[i].Name == f.Name+"_bucket" {
			s := f.Samples[i]
			le := s.Label("le")
			if le == "" {
				return fmt.Errorf("obs: %s_bucket without le label: %v", f.Name, s.Labels)
			}
			if got := s.Labels[len(s.Labels)-1][0]; got != "le" {
				return fmt.Errorf("obs: %s_bucket le label not last: %v", f.Name, s.Labels)
			}
			ub := math.Inf(1)
			if le != "+Inf" {
				var err error
				if ub, err = strconv.ParseFloat(le, 64); err != nil {
					return fmt.Errorf("obs: %s_bucket has unparseable le=%q", f.Name, le)
				}
			}
			bounds = append(bounds, ub)
			cum = append(cum, s.Value)
			i++
			if le == "+Inf" {
				break
			}
		}
		if len(bounds) == 0 {
			return fmt.Errorf("obs: histogram %s child without buckets at sample %q", f.Name, f.Samples[i].Name)
		}
		if !math.IsInf(bounds[len(bounds)-1], 1) {
			return fmt.Errorf("obs: histogram %s child missing the +Inf bucket", f.Name)
		}
		for b := 1; b < len(bounds); b++ {
			if bounds[b] <= bounds[b-1] {
				return fmt.Errorf("obs: histogram %s bucket bounds not ascending (%g after %g)", f.Name, bounds[b], bounds[b-1])
			}
			if cum[b] < cum[b-1] {
				return fmt.Errorf("obs: histogram %s cumulative counts decrease (%g after %g)", f.Name, cum[b], cum[b-1])
			}
		}
		if i >= len(f.Samples) || f.Samples[i].Name != f.Name+"_sum" {
			return fmt.Errorf("obs: histogram %s child missing _sum after buckets", f.Name)
		}
		sum := f.Samples[i]
		i++
		if i >= len(f.Samples) || f.Samples[i].Name != f.Name+"_count" {
			return fmt.Errorf("obs: histogram %s child missing _count after _sum", f.Name)
		}
		count := f.Samples[i]
		i++
		if count.Value != cum[len(cum)-1] {
			return fmt.Errorf("obs: histogram %s +Inf bucket %g != _count %g", f.Name, cum[len(cum)-1], count.Value)
		}
		// The three series of one child must agree on the child labels.
		childKey := sum.key()
		if count.key() != childKey {
			return fmt.Errorf("obs: histogram %s _sum and _count label mismatch", f.Name)
		}
		if !first && childKey <= prevChild {
			return fmt.Errorf("obs: histogram %s children out of order: %q after %q", f.Name, childKey, prevChild)
		}
		first = false
		prevChild = childKey
	}
	return nil
}
