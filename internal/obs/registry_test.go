package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(2.5)
	c.Add(-10) // ignored: counters are monotone
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %g, want 3.5", got)
	}

	g := r.Gauge("test_gauge", "a gauge")
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %g, want 4", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 56.05; got != want {
		t.Errorf("sum = %g, want %g", got, want)
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 3 {
		t.Fatalf("bounds = %v", bounds)
	}
	for i, want := range []uint64{1, 3, 4} { // cumulative: ≤0.1, ≤1, ≤10
		if cum[i] != want {
			t.Errorf("cum[%d] = %d, want %d", i, cum[i], want)
		}
	}
}

func TestVecChildrenAreDistinctAndIdempotent(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("jobs_total", "jobs", "status")
	v.With("ok").Add(2)
	v.With("error").Inc()
	if v.With("ok").Value() != 2 || v.With("error").Value() != 1 {
		t.Errorf("children mixed up: ok=%g error=%g", v.With("ok").Value(), v.With("error").Value())
	}
	// Re-registration with the same schema returns the same family.
	if r.CounterVec("jobs_total", "jobs", "status").With("ok") != v.With("ok") {
		t.Error("re-registration should return the same child")
	}
}

func TestSchemaMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "m")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("m_total", "m")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("invalid metric name should panic")
		}
	}()
	r.Counter("9bad-name", "nope")
}

func TestConcurrentUseIsRaceFree(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("races_total", "concurrent", "who")
	h := r.Histogram("race_seconds", "concurrent", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				v.With("a").Inc()
				v.With("b").Add(0.5)
				h.Observe(float64(i) * 1e-5)
			}
		}(w)
	}
	wg.Wait()
	if got := v.With("a").Value(); got != 8000 {
		t.Errorf("a = %g, want 8000", got)
	}
	if got := v.With("b").Value(); got != 4000 {
		t.Errorf("b = %g, want 4000", got)
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}

func TestWritePrometheusFormatAndDeterminism(t *testing.T) {
	r := NewRegistry()
	r.Gauge("zz_last", "sorted last").Set(1)
	v := r.CounterVec("aa_first_total", "sorted first", "k")
	v.With("y").Inc()
	v.With("x").Add(2)
	r.Histogram("mid_seconds", `la"te\ncy`, []float64{0.5, 1}).Observe(0.25)

	var a, b strings.Builder
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two snapshots of the same state must be byte-identical")
	}
	out := a.String()

	for _, want := range []string{
		"# HELP aa_first_total sorted first",
		"# TYPE aa_first_total counter",
		`aa_first_total{k="x"} 2`,
		`aa_first_total{k="y"} 1`,
		"# TYPE mid_seconds histogram",
		`mid_seconds_bucket{le="0.5"} 1`,
		`mid_seconds_bucket{le="1"} 1`,
		`mid_seconds_bucket{le="+Inf"} 1`,
		"mid_seconds_sum 0.25",
		"mid_seconds_count 1",
		"# TYPE zz_last gauge",
		"zz_last 1",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families in sorted name order; labeled children sorted by value.
	if strings.Index(out, "aa_first_total") > strings.Index(out, "mid_seconds") ||
		strings.Index(out, "mid_seconds") > strings.Index(out, "zz_last") ||
		strings.Index(out, `{k="x"}`) > strings.Index(out, `{k="y"}`) {
		t.Errorf("exposition order wrong:\n%s", out)
	}
}

func TestDefaultRegistryIsShared(t *testing.T) {
	c1 := Default().Counter("obs_test_shared_total", "shared")
	c2 := Default().Counter("obs_test_shared_total", "shared")
	if c1 != c2 {
		t.Error("Default() must return one shared registry")
	}
}
