package obs

import (
	"math"
	"strings"
	"testing"
)

func parseText(t *testing.T, text string) []PromFamily {
	t.Helper()
	fams, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse failed: %v\n%s", err, text)
	}
	return fams
}

// TestParsePrometheusRoundTrip: everything the registry writes — escaped
// labels, multi-label children, histograms — must come back through the
// strict parser with values and label order intact.
func TestParsePrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("aaa_total", "plain counter").Add(3)
	r.GaugeVec("bbb_gauge", "labelled gauge", "job", "mode").With("word\ncount", `q"\x`).Set(-1.5)
	r.GaugeVec("bbb_gauge", "labelled gauge", "job", "mode").With("sort", "fast").Set(2)
	h := r.HistogramVec("ccc_seconds", "latency", []float64{0.1, 1}, "op")
	h.With("read").Observe(0.05)
	h.With("read").Observe(0.5)
	h.With("read").Observe(5)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	fams := parseText(t, sb.String())
	if len(fams) != 3 {
		t.Fatalf("parsed %d families, want 3", len(fams))
	}
	if fams[0].Name != "aaa_total" || fams[0].Type != "counter" || fams[0].Help != "plain counter" {
		t.Fatalf("family 0 = %+v", fams[0])
	}
	if s, ok := fams[0].Sample("aaa_total"); !ok || s.Value != 3 {
		t.Fatalf("aaa_total = %+v (ok=%v)", s, ok)
	}
	// The escaped label survives the round trip decoded.
	if s, ok := fams[1].Sample("bbb_gauge", [2]string{"job", "word\ncount"}, [2]string{"mode", `q"\x`}); !ok || s.Value != -1.5 {
		t.Fatalf("escaped-label gauge missing or wrong: %+v (ok=%v)", s, ok)
	}
	hist := fams[2]
	if hist.Type != "histogram" {
		t.Fatalf("ccc_seconds type %q", hist.Type)
	}
	if s, ok := hist.Sample("ccc_seconds_count", [2]string{"op", "read"}); !ok || s.Value != 3 {
		t.Fatalf("histogram count = %+v (ok=%v)", s, ok)
	}
	if s, ok := hist.Sample("ccc_seconds_bucket", [2]string{"op", "read"}, [2]string{"le", "+Inf"}); !ok || s.Value != 3 {
		t.Fatalf("+Inf bucket = %+v (ok=%v)", s, ok)
	}
}

// TestParsePrometheusRejects: each broken document violates one
// contract a scraper relies on and must fail with an error, never parse
// loosely.
func TestParsePrometheusRejects(t *testing.T) {
	cases := []struct {
		name, text string
	}{
		{"blank line", "# TYPE a counter\na 1\n\n"},
		{"sample before TYPE", "a 1\n"},
		{"HELP without TYPE", "# HELP a help text\na 1\n"},
		{"HELP TYPE name mismatch", "# HELP a h\n# TYPE b counter\nb 1\n"},
		{"unknown kind", "# TYPE a summary\na 1\n"},
		{"bad metric name", "# TYPE 1a counter\n1a 1\n"},
		{"foreign sample in family", "# TYPE a counter\nb 1\n"},
		{"bare name under histogram", "# TYPE a histogram\na 1\n"},
		{"unquoted label value", "# TYPE a counter\na{x=y} 1\n"},
		{"unterminated label set", "# TYPE a counter\na{x=\"y\" 1\n"},
		{"invalid escape", "# TYPE a counter\na{x=\"\\t\"} 1\n"},
		{"missing value", "# TYPE a counter\na{x=\"y\"}\n"},
		{"unparseable value", "# TYPE a counter\na pi\n"},
		{"negative counter", "# TYPE a counter\na -1\n"},
		{"NaN counter", "# TYPE a counter\na NaN\n"},
		{"duplicate child", "# TYPE a gauge\na{x=\"1\"} 1\na{x=\"1\"} 2\n"},
		{"children out of order", "# TYPE a gauge\na{x=\"2\"} 1\na{x=\"1\"} 2\n"},
		{"families out of order", "# TYPE b counter\nb 1\n# TYPE a counter\na 1\n"},
		{"duplicate family", "# TYPE a counter\na 1\n# TYPE a counter\na 2\n"},
		{"histogram bucket without le", "# TYPE a histogram\na_bucket{x=\"1\"} 1\na_sum{x=\"1\"} 1\na_count{x=\"1\"} 1\n"},
		{"histogram le not last", "# TYPE a histogram\na_bucket{le=\"1\",x=\"1\"} 1\na_bucket{le=\"+Inf\",x=\"1\"} 1\na_sum{x=\"1\"} 1\na_count{x=\"1\"} 1\n"},
		{"histogram missing +Inf", "# TYPE a histogram\na_bucket{le=\"1\"} 1\na_sum 1\na_count 1\n"},
		{"histogram bounds not ascending", "# TYPE a histogram\na_bucket{le=\"2\"} 1\na_bucket{le=\"1\"} 1\na_bucket{le=\"+Inf\"} 1\na_sum 1\na_count 1\n"},
		{"histogram counts decrease", "# TYPE a histogram\na_bucket{le=\"1\"} 3\na_bucket{le=\"2\"} 2\na_bucket{le=\"+Inf\"} 3\na_sum 1\na_count 3\n"},
		{"histogram missing _sum", "# TYPE a histogram\na_bucket{le=\"+Inf\"} 1\na_count 1\n"},
		{"histogram missing _count", "# TYPE a histogram\na_bucket{le=\"+Inf\"} 1\na_sum 1\n"},
		{"histogram +Inf != count", "# TYPE a histogram\na_bucket{le=\"+Inf\"} 2\na_sum 1\na_count 3\n"},
	}
	for _, tc := range cases {
		if _, err := ParsePrometheus(strings.NewReader(tc.text)); err == nil {
			t.Errorf("%s: parsed without error:\n%s", tc.name, tc.text)
		}
	}
}

// TestParsePrometheusAccepts: edge cases that are legal must parse —
// empty document, family with no samples, gauge with special values,
// multi-child histograms in child order.
func TestParsePrometheusAccepts(t *testing.T) {
	if fams := parseText(t, ""); len(fams) != 0 {
		t.Fatalf("empty document parsed to %d families", len(fams))
	}
	fams := parseText(t, "# HELP a counts things\n# TYPE a counter\n")
	if len(fams) != 1 || fams[0].Help != "counts things" || len(fams[0].Samples) != 0 {
		t.Fatalf("sampleless family = %+v", fams[0])
	}
	fams = parseText(t, "# TYPE g gauge\ng -Inf\n")
	if v := fams[0].Samples[0].Value; !math.IsInf(v, -1) {
		t.Fatalf("gauge -Inf parsed to %g", v)
	}
	text := "# TYPE h histogram\n" +
		"h_bucket{op=\"a\",le=\"1\"} 1\nh_bucket{op=\"a\",le=\"+Inf\"} 2\nh_sum{op=\"a\"} 3\nh_count{op=\"a\"} 2\n" +
		"h_bucket{op=\"b\",le=\"1\"} 0\nh_bucket{op=\"b\",le=\"+Inf\"} 1\nh_sum{op=\"b\"} 9\nh_count{op=\"b\"} 1\n"
	fams = parseText(t, text)
	if len(fams[0].Samples) != 8 {
		t.Fatalf("two-child histogram parsed to %d samples", len(fams[0].Samples))
	}
}
