package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestServeMetricsAndHealthz(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "ticks").Add(3)
	srv, err := Serve("127.0.0.1:0", r, func() map[string]any {
		return map[string]any{"workers": 2}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	body := httpGet(t, "http://"+srv.Addr+"/metrics")
	if !strings.Contains(body, "up_total 3\n") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	assertValidPrometheus(t, body)

	health := httpGet(t, "http://"+srv.Addr+"/healthz")
	var doc map[string]any
	if err := json.Unmarshal([]byte(health), &doc); err != nil {
		t.Fatalf("healthz not JSON: %v\n%s", err, health)
	}
	if doc["status"] != "ok" || doc["workers"] != float64(2) {
		t.Errorf("healthz = %v", doc)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// assertValidPrometheus is a minimal exposition-format parser: every
// line must be a comment or `name[{labels}] value`, HELP/TYPE must
// precede their family's samples, and values must parse as floats.
func assertValidPrometheus(t *testing.T, body string) {
	t.Helper()
	typed := map[string]bool{}
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, value, err := parseSample(line)
		if err != nil {
			t.Fatalf("line %d: %v", ln+1, err)
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if cut, ok := strings.CutSuffix(name, suffix); ok && typed[cut] {
				base = cut
				break
			}
		}
		if !typed[base] {
			t.Errorf("line %d: sample %q has no preceding TYPE", ln+1, name)
		}
		_ = value
	}
}

func parseSample(line string) (name string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", 0, fmt.Errorf("unbalanced braces: %q", line)
		}
		rest = strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return "", 0, fmt.Errorf("want `name value`: %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad value in %q: %v", line, err)
	}
	return name, v, nil
}

func TestServePprof(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	index := httpGet(t, "http://"+srv.Addr+"/debug/pprof/")
	if !strings.Contains(index, "goroutine") || !strings.Contains(index, "heap") {
		t.Errorf("pprof index missing profiles:\n%.400s", index)
	}
	heap := httpGet(t, "http://"+srv.Addr+"/debug/pprof/heap?debug=1")
	if !strings.Contains(heap, "heap profile:") {
		t.Errorf("heap profile not served:\n%.200s", heap)
	}
}
