package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes every metric in the registry in the Prometheus
// text exposition format (version 0.0.4). Output is deterministic:
// families are sorted by name and children by label values, so two
// snapshots of the same state are byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make(map[string]*family, len(r.families))
	for name, f := range r.families {
		names = append(names, name)
		fams[name] = f
	}
	r.mu.Unlock()
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, name := range names {
		if err := fams[name].expose(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func (f *family) expose(w *bufio.Writer) error {
	f.mu.Lock()
	keys := append([]string(nil), f.keys...)
	kids := make(map[string]any, len(keys))
	for _, k := range keys {
		kids[k] = f.kids[k]
	}
	f.mu.Unlock()
	sort.Strings(keys)

	if f.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
	for _, key := range keys {
		values := splitLabelKey(key)
		switch m := kids[key].(type) {
		case *Counter:
			fmt.Fprintf(w, "%s%s %s\n", f.name, labelPairs(f.labels, values), fmtFloat(m.Value()))
		case *Gauge:
			fmt.Fprintf(w, "%s%s %s\n", f.name, labelPairs(f.labels, values), fmtFloat(m.Value()))
		case *Histogram:
			bounds, cum := m.Buckets()
			leNames := append(append([]string(nil), f.labels...), "le")
			withLE := func(le string) []string {
				return append(append([]string(nil), values...), le)
			}
			for i, ub := range bounds {
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelPairs(leNames, withLE(fmtFloat(ub))), cum[i])
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelPairs(leNames, withLE("+Inf")), m.Count())
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelPairs(f.labels, values), fmtFloat(m.Sum()))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelPairs(f.labels, values), m.Count())
		}
	}
	return nil
}

// labelPairs renders {k="v",...}, or "" when there are no labels.
func labelPairs(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func fmtFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
