package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SpanEvent is one finished span, in exactly the JSON shape of
// trace.Event so recorded span logs feed the same extraction tooling
// (PhaseTotal, MaxTaskDuration, ...) the harness applies to simulated
// engine logs. Start and End are seconds since the recorder's epoch.
type SpanEvent struct {
	Job   string  `json:"job"`
	Stage int     `json:"stage"`
	Phase string  `json:"phase"`
	Task  int     `json:"task"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// Recorder collects finished spans for one job execution. It is safe for
// concurrent use; a nil *Recorder is a valid no-op sink, which is what
// code paths see when the context carries no recorder.
type Recorder struct {
	job   string
	epoch time.Time

	mu     sync.Mutex
	events []SpanEvent
}

// NewRecorder starts an empty span log for the named job; span
// timestamps are measured from this call.
func NewRecorder(job string) *Recorder {
	return &Recorder{job: job, epoch: time.Now()}
}

// Events returns a copy of the finished spans in end order.
func (r *Recorder) Events() []SpanEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanEvent, len(r.events))
	copy(out, r.events)
	return out
}

// Len reports the number of finished spans.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// WriteJSON writes the spans as JSON Lines, one event per line — the
// format trace.ReadJSON parses.
func (r *Recorder) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range r.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

type recorderKey struct{}

type spanKey struct{}

// WithRecorder returns a context carrying the recorder; StartSpan calls
// below it record into rec. A nil rec disables recording.
func WithRecorder(ctx context.Context, rec *Recorder) context.Context {
	return context.WithValue(ctx, recorderKey{}, rec)
}

// RecorderFrom returns the context's recorder, or nil when absent.
func RecorderFrom(ctx context.Context) *Recorder {
	rec, _ := ctx.Value(recorderKey{}).(*Recorder)
	return rec
}

// Span is one in-flight wall-clock interval. A nil *Span (returned when
// the context has no recorder) accepts every method as a no-op, so
// instrumentation sites need no conditionals.
type Span struct {
	rec   *Recorder
	phase string
	stage int
	task  int
	start time.Time
	once  sync.Once
}

// StartSpan begins a span named phase (use the trace.Phase vocabulary —
// "map", "merge", ... — where it applies, so trace tooling can filter).
// The returned context carries the span: children started from it
// inherit its stage and task as defaults, giving nested spans a common
// coordinate without explicit plumbing. When ctx carries no recorder the
// original context and a nil span are returned and nothing is recorded.
func StartSpan(ctx context.Context, phase string) (context.Context, *Span) {
	rec := RecorderFrom(ctx)
	if rec == nil {
		return ctx, nil
	}
	s := &Span{rec: rec, phase: phase, task: -1, start: time.Now()}
	if parent, ok := ctx.Value(spanKey{}).(*Span); ok && parent != nil {
		s.stage = parent.stage
		s.task = parent.task
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// SetStage tags the span (and, through inheritance, its children) with a
// stage index.
func (s *Span) SetStage(stage int) *Span {
	if s != nil {
		s.stage = stage
	}
	return s
}

// SetTask tags the span as a task-level event (trace tooling treats
// Task >= 0 as per-task measurements).
func (s *Span) SetTask(task int) *Span {
	if s != nil {
		s.task = task
	}
	return s
}

// End finishes the span and records it. End is idempotent; only the
// first call records.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.once.Do(func() {
		end := time.Now()
		e := SpanEvent{
			Job:   s.rec.job,
			Stage: s.stage,
			Phase: s.phase,
			Task:  s.task,
			Start: s.start.Sub(s.rec.epoch).Seconds(),
			End:   end.Sub(s.rec.epoch).Seconds(),
		}
		s.rec.mu.Lock()
		s.rec.events = append(s.rec.events, e)
		s.rec.mu.Unlock()
	})
}
