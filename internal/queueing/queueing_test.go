package queueing

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Abs(b))
}

func TestMM1KnownValues(t *testing.T) {
	q := MM1{Lambda: 1, Mu: 2} // ρ = 0.5
	rho, err := q.Utilization()
	if err != nil || rho != 0.5 {
		t.Errorf("utilization %g, %v; want 0.5", rho, err)
	}
	wq, err := q.MeanWait()
	if err != nil || !almost(wq, 0.5, 1e-12) { // ρ/(μ−λ) = 0.5/1
		t.Errorf("Wq = %g, %v; want 0.5", wq, err)
	}
	w, err := q.MeanResponse()
	if err != nil || !almost(w, 1, 1e-12) { // 1/(μ−λ)
		t.Errorf("W = %g, %v; want 1", w, err)
	}
}

func TestMM1Unstable(t *testing.T) {
	q := MM1{Lambda: 3, Mu: 2}
	if _, err := q.MeanWait(); !errors.Is(err, ErrUnstable) {
		t.Errorf("expected ErrUnstable, got %v", err)
	}
	if _, err := (MM1{Lambda: -1, Mu: 1}).Utilization(); err == nil {
		t.Error("negative λ should error")
	}
}

func TestMG1ReducesToMM1(t *testing.T) {
	// Exponential service: variance = mean², so P-K must equal M/M/1.
	mm1 := MM1{Lambda: 0.8, Mu: 2}
	mg1 := MG1{Lambda: 0.8, ServiceMean: 0.5, ServiceVar: 0.25}
	w1, err := mm1.MeanWait()
	if err != nil {
		t.Fatal(err)
	}
	w2, err := mg1.MeanWait()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(w1, w2, 1e-12) {
		t.Errorf("M/G/1 with exponential service %g != M/M/1 %g", w2, w1)
	}
}

func TestMG1DeterministicHalvesWait(t *testing.T) {
	// Deterministic service (variance 0) halves the P-K delay relative
	// to exponential service.
	exp := MG1{Lambda: 0.8, ServiceMean: 0.5, ServiceVar: 0.25}
	det := MG1{Lambda: 0.8, ServiceMean: 0.5, ServiceVar: 0}
	we, _ := exp.MeanWait()
	wd, _ := det.MeanWait()
	if !almost(wd, we/2, 1e-12) {
		t.Errorf("deterministic wait %g, want half of %g", wd, we)
	}
	if _, err := (MG1{Lambda: 3, ServiceMean: 0.5}).MeanWait(); !errors.Is(err, ErrUnstable) {
		t.Error("ρ >= 1 should be unstable")
	}
	if _, err := (MG1{Lambda: 1, ServiceMean: -1}).MeanWait(); err == nil {
		t.Error("invalid parameters should error")
	}
}

func TestMMcReducesToMM1(t *testing.T) {
	mm1 := MM1{Lambda: 1.2, Mu: 2}
	mmc := MMc{Lambda: 1.2, Mu: 2, C: 1}
	w1, err := mm1.MeanWait()
	if err != nil {
		t.Fatal(err)
	}
	wc, err := mmc.MeanWait()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(w1, wc, 1e-12) {
		t.Errorf("M/M/1 via Erlang C %g != direct %g", wc, w1)
	}
}

func TestMMcErlangCKnownValue(t *testing.T) {
	// a = 2 Erlangs over c = 3 servers: C(3,2) = 4/9 ≈ 0.4444.
	q := MMc{Lambda: 2, Mu: 1, C: 3}
	pw, err := q.ErlangC()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(pw, 4.0/9.0, 1e-9) {
		t.Errorf("Erlang C = %g, want 4/9", pw)
	}
	if _, err := (MMc{Lambda: 4, Mu: 1, C: 3}).ErlangC(); !errors.Is(err, ErrUnstable) {
		t.Error("overloaded M/M/c should be unstable")
	}
	if _, err := (MMc{Lambda: 1, Mu: 1, C: 0}).ErlangC(); err == nil {
		t.Error("zero servers should error")
	}
}

func TestMMcMoreServersWaitLess(t *testing.T) {
	w3, err := (MMc{Lambda: 2, Mu: 1, C: 3}).MeanWait()
	if err != nil {
		t.Fatal(err)
	}
	w5, err := (MMc{Lambda: 2, Mu: 1, C: 5}).MeanWait()
	if err != nil {
		t.Fatal(err)
	}
	if w5 >= w3 {
		t.Errorf("adding servers should reduce waiting: c=3 → %g, c=5 → %g", w3, w5)
	}
}

func testResource() SharedResource {
	// A centralized scheduler serving 100 req/s; each 10 s task issues 20
	// requests. Saturation at n = 100·10/20 = 50.
	return SharedResource{ServiceRate: 100, RequestsPerTask: 20, TaskSeconds: 10}
}

func TestSharedResourceSaturation(t *testing.T) {
	satN, err := testResource().SaturationN()
	if err != nil {
		t.Fatal(err)
	}
	if satN != 50 {
		t.Errorf("saturation at n=%g, want 50", satN)
	}
	free := SharedResource{ServiceRate: 100, RequestsPerTask: 0, TaskSeconds: 10}
	if satN, _ := free.SaturationN(); !math.IsInf(satN, 1) {
		t.Errorf("no requests should mean no saturation, got %g", satN)
	}
	if _, err := (SharedResource{}).SaturationN(); err == nil {
		t.Error("invalid resource should error")
	}
}

func TestSharedResourceQ(t *testing.T) {
	r := testResource()
	q, err := r.Q()
	if err != nil {
		t.Fatal(err)
	}
	if got := q(1); got != 0 {
		t.Errorf("q(1) = %g, want 0", got)
	}
	// Strictly increasing below saturation.
	prev := 0.0
	for _, n := range []float64{2, 10, 25, 40, 49} {
		v := q(n)
		if v <= prev {
			t.Fatalf("q not increasing: q(%g) = %g after %g", n, v, prev)
		}
		prev = v
	}
	// At/beyond saturation: +Inf (unbounded contention delay).
	if !math.IsInf(q(50), 1) || !math.IsInf(q(80), 1) {
		t.Error("q at saturation should be +Inf")
	}
}

func TestContentionInducedSpeedupCollapse(t *testing.T) {
	// Plugging the contention q(n) into the IPSO denominator shape
	// S(n) = n/(1+q(n)) (η = 1, fixed-time): the speedup must peak below
	// the saturation degree and fall — the [9] result that contention
	// alone bounds scaling.
	q, err := testResource().Q()
	if err != nil {
		t.Fatal(err)
	}
	speedup := func(n float64) float64 { return n / (1 + q(n)) }
	peakN, peakS := 1.0, speedup(1)
	for n := 2.0; n < 50; n++ {
		if s := speedup(n); s > peakS {
			peakN, peakS = n, s
		}
	}
	if peakN >= 49 {
		t.Errorf("speedup should peak strictly below saturation, peaked at %g", peakN)
	}
	if s49 := speedup(49); s49 >= peakS {
		t.Errorf("speedup near saturation (%g) should fall below the peak (%g)", s49, peakS)
	}
}

// Property: M/M/1 waiting grows monotonically with utilization.
func TestMM1MonotoneProperty(t *testing.T) {
	f := func(lraw, mraw uint8) bool {
		mu := float64(mraw%50) + 10
		l1 := float64(lraw%9) / 10 * mu // up to 0.8μ
		l2 := l1 + 0.1*mu
		w1, err1 := (MM1{Lambda: l1, Mu: mu}).MeanWait()
		w2, err2 := (MM1{Lambda: l2, Mu: mu}).MeanWait()
		return err1 == nil && err2 == nil && w2 > w1-1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ExtraDelayPerTask is nonnegative and increasing in n below
// saturation.
func TestExtraDelayMonotoneProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		r := testResource()
		n := float64(nRaw%47) + 1 // stay below saturation at 50
		d1, err1 := r.ExtraDelayPerTask(n)
		d2, err2 := r.ExtraDelayPerTask(n + 1)
		return err1 == nil && err2 == nil && d1 >= 0 && d2 >= d1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
