// Package queueing provides the queueing-theoretic grounding for
// scale-out-induced workload. The paper's motivation cites a
// queuing-network-model-based analysis [9] showing that "any resource
// contention among parallel tasks is guaranteed to induce an effective
// serial workload, resulting in lower speedup than that predicted by the
// existing laws"; this package supplies the standard M/M/1, M/G/1 and
// M/M/c waiting-time formulas and derives from them an effective q(n)
// scaling factor that plugs directly into the IPSO model.
package queueing

import (
	"errors"
	"fmt"
	"math"
)

// ErrUnstable is returned when a queue's utilization is >= 1.
var ErrUnstable = errors.New("queueing: utilization >= 1 (unstable queue)")

// MM1 is the M/M/1 queue: Poisson arrivals at rate Lambda, exponential
// service at rate Mu, one server.
type MM1 struct {
	Lambda float64 // arrivals per second
	Mu     float64 // services per second
}

func (q MM1) validate() error {
	if q.Lambda < 0 || q.Mu <= 0 {
		return fmt.Errorf("queueing: invalid M/M/1 rates λ=%g μ=%g", q.Lambda, q.Mu)
	}
	return nil
}

// Utilization returns ρ = λ/μ.
func (q MM1) Utilization() (float64, error) {
	if err := q.validate(); err != nil {
		return 0, err
	}
	return q.Lambda / q.Mu, nil
}

// MeanWait returns the mean time in queue (excluding service),
// Wq = ρ/(μ−λ).
func (q MM1) MeanWait() (float64, error) {
	rho, err := q.Utilization()
	if err != nil {
		return 0, err
	}
	if rho >= 1 {
		return 0, ErrUnstable
	}
	return rho / (q.Mu - q.Lambda), nil
}

// MeanResponse returns the mean time in system, W = 1/(μ−λ).
func (q MM1) MeanResponse() (float64, error) {
	rho, err := q.Utilization()
	if err != nil {
		return 0, err
	}
	if rho >= 1 {
		return 0, ErrUnstable
	}
	return 1 / (q.Mu - q.Lambda), nil
}

// MG1 is the M/G/1 queue: Poisson arrivals, general service with the
// given mean and variance, one server.
type MG1 struct {
	Lambda      float64
	ServiceMean float64
	ServiceVar  float64
}

func (q MG1) validate() error {
	if q.Lambda < 0 || q.ServiceMean <= 0 || q.ServiceVar < 0 {
		return fmt.Errorf("queueing: invalid M/G/1 parameters %+v", q)
	}
	return nil
}

// MeanWait returns the Pollaczek-Khinchine mean queueing delay
// Wq = λ·E[S²] / (2(1−ρ)).
func (q MG1) MeanWait() (float64, error) {
	if err := q.validate(); err != nil {
		return 0, err
	}
	rho := q.Lambda * q.ServiceMean
	if rho >= 1 {
		return 0, ErrUnstable
	}
	es2 := q.ServiceVar + q.ServiceMean*q.ServiceMean
	return q.Lambda * es2 / (2 * (1 - rho)), nil
}

// MMc is the M/M/c queue: Poisson arrivals, exponential service, c
// identical servers.
type MMc struct {
	Lambda float64
	Mu     float64
	C      int
}

func (q MMc) validate() error {
	if q.Lambda < 0 || q.Mu <= 0 || q.C < 1 {
		return fmt.Errorf("queueing: invalid M/M/c parameters %+v", q)
	}
	return nil
}

// ErlangC returns the probability an arrival waits.
func (q MMc) ErlangC() (float64, error) {
	if err := q.validate(); err != nil {
		return 0, err
	}
	a := q.Lambda / q.Mu // offered load in Erlangs
	rho := a / float64(q.C)
	if rho >= 1 {
		return 0, ErrUnstable
	}
	// Σ_{k<c} a^k/k! computed iteratively to avoid overflow.
	sum := 0.0
	term := 1.0
	for k := 0; k < q.C; k++ {
		sum += term
		term *= a / float64(k+1)
	}
	// term now holds a^c/c!.
	top := term / (1 - rho)
	return top / (sum + top), nil
}

// MeanWait returns the mean queueing delay Wq = C(c,a)/(c·μ−λ).
func (q MMc) MeanWait() (float64, error) {
	pWait, err := q.ErlangC()
	if err != nil {
		return 0, err
	}
	return pWait / (float64(q.C)*q.Mu - q.Lambda), nil
}

// SharedResource models n parallel tasks contending on one serialized
// resource (a scheduler, a metadata service, a shared disk): each task
// issues RequestsPerTask requests over its isolated duration TaskSeconds,
// and the resource serves ServiceRate requests per second. The aggregate
// arrival process at scale-out degree n is n·RequestsPerTask/TaskSeconds.
type SharedResource struct {
	ServiceRate     float64 // μ
	RequestsPerTask float64
	TaskSeconds     float64
}

func (r SharedResource) validate() error {
	if r.ServiceRate <= 0 || r.RequestsPerTask < 0 || r.TaskSeconds <= 0 {
		return fmt.Errorf("queueing: invalid shared resource %+v", r)
	}
	return nil
}

// arrivalRate returns the aggregate request rate at degree n.
func (r SharedResource) arrivalRate(n float64) float64 {
	return n * r.RequestsPerTask / r.TaskSeconds
}

// SaturationN returns the scale-out degree at which the shared resource
// saturates (ρ = 1): beyond it the contention delay is unbounded.
func (r SharedResource) SaturationN() (float64, error) {
	if err := r.validate(); err != nil {
		return 0, err
	}
	if r.RequestsPerTask == 0 {
		return math.Inf(1), nil
	}
	return r.ServiceRate * r.TaskSeconds / r.RequestsPerTask, nil
}

// ExtraDelayPerTask returns the queueing delay one task accumulates at
// degree n beyond what it already suffers at n = 1 (M/M/1 waiting).
func (r SharedResource) ExtraDelayPerTask(n float64) (float64, error) {
	if err := r.validate(); err != nil {
		return 0, err
	}
	if n < 1 {
		return 0, fmt.Errorf("queueing: n = %g must be >= 1", n)
	}
	if r.RequestsPerTask == 0 {
		return 0, nil
	}
	wq := func(n float64) (float64, error) {
		return MM1{Lambda: r.arrivalRate(n), Mu: r.ServiceRate}.MeanWait()
	}
	wqN, err := wq(n)
	if err != nil {
		return 0, err
	}
	wq1, err := wq(1)
	if err != nil {
		return 0, err
	}
	return r.RequestsPerTask * (wqN - wq1), nil
}

// Q returns the contention-induced scale-out scaling factor
// q(n) = extra per-task delay / per-task workload, with q(1) = 0 — ready
// to plug into an IPSO Model. The returned function reports +Inf at or
// beyond saturation; callers who need a finite model must stay below
// SaturationN.
func (r SharedResource) Q() (func(n float64) float64, error) {
	if err := r.validate(); err != nil {
		return nil, err
	}
	return func(n float64) float64 {
		d, err := r.ExtraDelayPerTask(n)
		if err != nil {
			return math.Inf(1)
		}
		return d / r.TaskSeconds
	}, nil
}
