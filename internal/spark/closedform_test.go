package spark

import (
	"testing"
	"testing/quick"
)

// Closed-form verification of the stage engine in the analytically
// tractable regime (no dispatch delay, no memory pressure, no jitter, no
// failures): with N tasks over m executors, executor e runs
// k_e = ceil((N−e)/m) tasks, the first paying DeserFirstWave and the rest
// DeserPerTask, so a stage's task phase lasts
//
//	max_e [ deserFirst + work + (k_e−1)·(deserPer + work) ]
//
// followed by shuffle total/(m·bw) and the serial driver work. Broadcast
// (serial) precedes the tasks and lasts m·bytes/masterBW.
func analyticStage(cfg Config, st Stage) float64 {
	m := cfg.Executors
	spec := cfg.Cluster.Worker
	work := st.WorkPerTask / spec.CPURate

	t := 0.0
	if st.BroadcastBytes > 0 {
		t += float64(m) * st.BroadcastBytes / cfg.Cluster.Master.NICBW
	}
	longest := 0.0
	for e := 0; e < m; e++ {
		k := (st.Tasks - e + m - 1) / m
		if k <= 0 {
			continue
		}
		d := cfg.DeserFirstWave + work + float64(k-1)*(cfg.DeserPerTask+work)
		if d > longest {
			longest = d
		}
	}
	t += longest
	if st.ShuffleBytesPerTask > 0 {
		t += st.ShuffleBytesPerTask * float64(st.Tasks) / (float64(m) * spec.NICBW)
	}
	t += st.DriverWork / cfg.Cluster.Master.CPURate
	return t
}

func TestSparkEngineMatchesClosedForm(t *testing.T) {
	f := func(tasksRaw, execsRaw, workRaw, bRaw, shRaw, drvRaw, d1Raw, d2Raw uint8) bool {
		st := Stage{
			Name:                "cf-check",
			Tasks:               int(tasksRaw%32) + 1,
			WorkPerTask:         float64(workRaw%40)/4 + 0.5,
			BroadcastBytes:      float64(bRaw%4) * 25,
			ShuffleBytesPerTask: float64(shRaw % 30),
			DriverWork:          float64(drvRaw % 20),
		}
		cfg := Config{
			App:            stagesApp{name: "cf", stages: []Stage{st}},
			Tasks:          st.Tasks,
			Executors:      int(execsRaw%8) + 1,
			PartitionBytes: 1,
			Cluster:        testClusterConfig(),
			DeserFirstWave: float64(d1Raw%12) / 4,
			DeserPerTask:   float64(d2Raw%6) / 8,
		}
		res, err := RunParallel(cfg)
		if err != nil {
			return false
		}
		return almost(res.Makespan, analyticStage(cfg, st))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestSparkMultiStageClosedForm(t *testing.T) {
	stages := []Stage{
		{Name: "a", Tasks: 12, WorkPerTask: 3, BroadcastBytes: 40, ShuffleBytesPerTask: 20},
		{Name: "b", Tasks: 12, WorkPerTask: 5, DriverWork: 10},
	}
	cfg := Config{
		App:            stagesApp{name: "multi", stages: stages},
		Tasks:          12,
		Executors:      4,
		PartitionBytes: 1,
		Cluster:        testClusterConfig(),
		DeserFirstWave: 1.5,
		DeserPerTask:   0.25,
	}
	want := analyticStage(cfg, stages[0]) + analyticStage(cfg, stages[1])
	res, err := RunParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Makespan, want) {
		t.Errorf("makespan %g, closed form %g", res.Makespan, want)
	}
}
