// Package spark simulates the multi-stage, Spark-like execution engine of
// the paper's Section V-B case studies.
//
// A job is configured by the paper's two knobs: the problem size N (the
// nominal number of tasks per stage) and the parallel degree m (the number
// of executors). Tasks run in waves of m; each task pays a centralized
// scheduling cost and a deserialization cost, with the first wave's
// deserialization dominating ("the scheduling and deserialization time
// (i.e., the communication cost) of the first wave of tasks outweigh the
// following waves"). Stages may broadcast data from the master to every
// executor, shuffle output to the next stage, cache RDD partitions in
// executor memory, and run serial driver work at the stage boundary.
//
// Memory pressure reproduces the paper's N/m=8 observation: when an
// executor's resident set exceeds its memory, persisted RDDs spill to
// local disk (tasks slow down) and the task failure rate rises, forcing
// re-execution — "insufficient RAM may cause the persistent RDDs to be
// spilled to the local disk, or even trigger increased task failure rate".
package spark

import (
	"errors"
	"fmt"
	"math/rand"

	"ipso/internal/cluster"
	"ipso/internal/simtime"
	"ipso/internal/stats"
	"ipso/internal/trace"
)

// taskJitters pre-samples the multiplicative task-time factors for every
// (stage, task) pair so that parallel and sequential executions of the
// same Config see identical workloads (only the E[max] barrier effect
// differs — the statistic model's straggler penalty).
func taskJitters(cfg Config, stages []Stage) [][]float64 {
	total := 0
	for _, st := range stages {
		total += st.Tasks
	}
	// One flat backing array carved into per-stage rows: len(stages)+1
	// allocations instead of one per stage.
	flat := make([]float64, total)
	out := make([][]float64, len(stages))
	if cfg.Jitter == nil {
		for i := range flat {
			flat[i] = 1
		}
		for i, st := range stages {
			out[i], flat = flat[:st.Tasks:st.Tasks], flat[st.Tasks:]
		}
		return out
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7919))
	for i := range flat {
		flat[i] = cfg.Jitter.Sample(rng)
	}
	for i, st := range stages {
		out[i], flat = flat[:st.Tasks:st.Tasks], flat[st.Tasks:]
	}
	return out
}

// Stage describes one stage of a Spark-like application.
type Stage struct {
	Name string
	// Tasks is the number of tasks in this stage (usually the nominal N).
	Tasks int
	// WorkPerTask is the CPU work (abstract units) of one task attempt.
	WorkPerTask float64
	// InputBytesPerTask is the partition size read by each task; it
	// contributes to the executor's transient working set.
	InputBytesPerTask float64
	// BroadcastBytes, when positive, is broadcast from the master to every
	// executor before the stage starts (e.g. feature vectors, model
	// weights).
	BroadcastBytes float64
	// ShuffleBytesPerTask is emitted by each task and shuffled to the next
	// stage across the cluster fabric.
	ShuffleBytesPerTask float64
	// CachedBytesPerTask is added permanently (for the rest of the job) to
	// the executor's resident set after each task (persisted RDDs).
	CachedBytesPerTask float64
	// DriverWork is serial CPU work executed on the master at the stage
	// boundary (result collection, model update) — the stage's
	// contribution to the serial portion Ws.
	DriverWork float64
}

func (s Stage) validate() error {
	if s.Tasks < 1 {
		return fmt.Errorf("spark: stage %q needs at least 1 task", s.Name)
	}
	if s.WorkPerTask < 0 || s.InputBytesPerTask < 0 || s.BroadcastBytes < 0 ||
		s.ShuffleBytesPerTask < 0 || s.CachedBytesPerTask < 0 || s.DriverWork < 0 {
		return fmt.Errorf("spark: stage %q has negative fields", s.Name)
	}
	return nil
}

// AppModel produces the stage list of an application for a given nominal
// task count N and per-partition size.
type AppModel interface {
	// Name identifies the application in traces.
	Name() string
	// Stages returns the job's stages for nominal problem size tasks and
	// partition size partBytes.
	Stages(tasks int, partBytes float64) []Stage
}

// Config describes one simulated Spark job execution.
type Config struct {
	App AppModel
	// Tasks is the nominal problem size N (tasks per stage).
	Tasks int
	// Executors is the parallel degree m — the paper's scale-out degree
	// for the Spark case studies (n = m).
	Executors int
	// PartitionBytes is the input partition size per task.
	PartitionBytes float64
	// Cluster configures the datacenter; Workers is overridden to
	// Executors.
	Cluster cluster.Config

	// SchedPerTask is the centralized scheduler's service time per task
	// dispatch (serialized at the master).
	SchedPerTask float64
	// DeserFirstWave is the deserialization overhead paid by each task in
	// a stage's first wave (task index < m).
	DeserFirstWave float64
	// DeserPerTask is the (smaller) overhead for subsequent waves.
	DeserPerTask float64

	// SpillPenalty scales task slowdown under memory pressure: a resident
	// set of r times memory slows tasks by 1 + SpillPenalty·(r−1).
	// Default 0.5.
	SpillPenalty float64
	// FailureCoef sets the per-attempt failure probability under memory
	// pressure: min(0.3, FailureCoef·(r−1)) for r > 1. Default 0.05.
	FailureCoef float64
	// Jitter optionally makes per-task compute times random
	// (multiplicative, mean ≈ 1): the statistic model's stragglers. The
	// same (Seed, stage, task) always draws the same factor, so the
	// sequential reference sees the same total work.
	Jitter stats.Distribution
	// Seed drives failure and jitter sampling.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.SpillPenalty == 0 {
		c.SpillPenalty = 0.5
	}
	if c.FailureCoef == 0 {
		c.FailureCoef = 0.05
	}
	return c
}

func (c Config) validate() error {
	if c.App == nil {
		return errors.New("spark: nil AppModel")
	}
	if c.Tasks < 1 {
		return fmt.Errorf("spark: Tasks must be >= 1, got %d", c.Tasks)
	}
	if c.Executors < 1 {
		return fmt.Errorf("spark: Executors must be >= 1, got %d", c.Executors)
	}
	if c.PartitionBytes < 0 {
		return fmt.Errorf("spark: negative partition size %g", c.PartitionBytes)
	}
	if c.SchedPerTask < 0 || c.DeserFirstWave < 0 || c.DeserPerTask < 0 {
		return errors.New("spark: negative overhead times")
	}
	if c.SpillPenalty < 0 || c.FailureCoef < 0 {
		return errors.New("spark: negative pressure coefficients")
	}
	return nil
}

// Result is the outcome of one simulated execution.
type Result struct {
	Log      *trace.Log
	Makespan float64
	Tasks    int
	Execs    int
	// Retries counts task re-executions caused by memory-pressure
	// failures.
	Retries int
}

// RunParallel simulates the job with m executors.
func RunParallel(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	stages := cfg.App.Stages(cfg.Tasks, cfg.PartitionBytes)
	if len(stages) == 0 {
		return Result{}, fmt.Errorf("spark: app %q produced no stages", cfg.App.Name())
	}
	for _, st := range stages {
		if err := st.validate(); err != nil {
			return Result{}, err
		}
	}

	eng := simtime.NewEngine()
	ccfg := cfg.Cluster
	ccfg.Workers = cfg.Executors
	ccfg.DispatchTime = cfg.SchedPerTask
	clus, err := cluster.New(eng, ccfg)
	if err != nil {
		return Result{}, err
	}
	log := trace.NewLog()
	rng := rand.New(rand.NewSource(cfg.Seed))
	job := cfg.App.Name()
	m := cfg.Executors

	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	record := func(e trace.Event) {
		if err := log.Add(e); err != nil {
			fail(err)
		}
	}

	// resident tracks each executor's persisted bytes across stages.
	resident := make([]float64, m)
	// tasksPerExec is reused across stages (stages never overlap: the
	// next begins only after every task of the current one completed).
	tasksPerExec := make([]int, m)
	jitters := taskJitters(cfg, stages)
	retries := 0
	var makespan float64
	done := false

	var runStage func(si int)
	runStage = func(si int) {
		if si == len(stages) {
			makespan = eng.Now()
			done = true
			return
		}
		st := stages[si]
		clear(tasksPerExec)
		for i := 0; i < st.Tasks; i++ {
			tasksPerExec[i%m]++
		}

		startTasks := func() {
			left := st.Tasks
			finishStage := func() {
				// Shuffle the stage output across the aggregate fabric.
				shuffleTotal := st.ShuffleBytesPerTask * float64(st.Tasks)
				shuffleTime := 0.0
				if shuffleTotal > 0 {
					shuffleTime = shuffleTotal / (float64(m) * cfg.Cluster.Worker.NICBW)
				}
				shufStart := eng.Now()
				if err := eng.Schedule(shuffleTime, func() {
					if shuffleTotal > 0 {
						record(trace.Event{Job: job, Stage: si, Phase: trace.PhaseShuffle, Task: -1, Start: shufStart, End: eng.Now()})
					}
					drvStart := eng.Now()
					if err := clus.Master().RunCPU(st.DriverWork, func() {
						if st.DriverWork > 0 {
							record(trace.Event{Job: job, Stage: si, Phase: trace.PhaseReduce, Task: -1, Start: drvStart, End: eng.Now()})
						}
						runStage(si + 1)
					}); err != nil {
						fail(err)
					}
				}); err != nil {
					fail(err)
				}
			}

			for i := 0; i < st.Tasks; i++ {
				i := i
				exec := i % m
				node := clus.Workers()[exec]
				deser := cfg.DeserPerTask
				if i < m {
					deser = cfg.DeserFirstWave
				}

				// Memory pressure for this executor during this stage:
				// persisted set plus this stage's local partitions.
				demand := resident[exec] + (st.InputBytesPerTask+st.CachedBytesPerTask)*float64(tasksPerExec[exec])
				ratio := demand / cfg.Cluster.Worker.MemoryBytes
				slowdown := 1.0
				failProb := 0.0
				if ratio > 1 {
					slowdown = 1 + cfg.SpillPenalty*(ratio-1)
					failProb = cfg.FailureCoef * (ratio - 1)
					if failProb > 0.3 {
						failProb = 0.3
					}
				}
				deserWork := deser * cfg.Cluster.Worker.CPURate
				computeWork := st.WorkPerTask * jitters[si][i] * slowdown

				// Each attempt pays deserialization then computes; the two
				// submissions are enqueued back-to-back (the executor CPU
				// is FIFO, so they stay contiguous) and recorded as
				// separate phases so the trace supports the paper's
				// analysis of first-wave scheduling+deserialization
				// dominance.
				var attempt func()
				attempt = func() {
					var dStart float64
					if err := node.RunCPUTracked(deserWork, func() { dStart = eng.Now() }, func() {
						record(trace.Event{Job: job, Stage: si, Phase: trace.PhaseDeser, Task: i, Start: dStart, End: eng.Now()})
					}); err != nil {
						fail(err)
						return
					}
					var start float64
					if err := node.RunCPUTracked(computeWork, func() { start = eng.Now() }, func() {
						record(trace.Event{Job: job, Stage: si, Phase: trace.PhaseCompute, Task: i, Start: start, End: eng.Now()})
						if failProb > 0 && rng.Float64() < failProb {
							retries++
							attempt() // re-execute the failed task
							return
						}
						left--
						if left == 0 { // stage barrier
							finishStage()
						}
					}); err != nil {
						fail(err)
					}
				}

				dispStart := eng.Now()
				if err := clus.Dispatch(func() {
					record(trace.Event{Job: job, Stage: si, Phase: trace.PhaseSchedule, Task: i, Start: dispStart, End: eng.Now()})
					attempt()
				}); err != nil {
					fail(err)
				}
			}

			// Persisted RDDs survive the stage.
			for e := 0; e < m; e++ {
				resident[e] += st.CachedBytesPerTask * float64(tasksPerExec[e])
			}
		}

		if st.BroadcastBytes > 0 {
			bStart := eng.Now()
			if err := clus.Broadcast(st.BroadcastBytes, func() {
				record(trace.Event{Job: job, Stage: si, Phase: trace.PhaseBroadcast, Task: -1, Start: bStart, End: eng.Now()})
				startTasks()
			}); err != nil {
				fail(err)
			}
			return
		}
		startTasks()
	}

	runStage(0)
	eng.Run()
	if firstErr != nil {
		return Result{}, firstErr
	}
	if !done {
		return Result{}, errors.New("spark: parallel execution did not complete")
	}
	return Result{Log: log, Makespan: makespan, Tasks: cfg.Tasks, Execs: m, Retries: retries}, nil
}

// RunSequential simulates the paper's sequential reference execution: all
// stage tasks run back-to-back on one processing unit with the serial
// driver work at each stage boundary, and no scale-out-induced overhead
// (no scheduling, deserialization, broadcast, or shuffle traffic) and no
// memory pressure — the resource-abundant sequential baseline of the
// speedup numerator, Wp(n) + Ws(n).
func RunSequential(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	stages := cfg.App.Stages(cfg.Tasks, cfg.PartitionBytes)
	if len(stages) == 0 {
		return Result{}, fmt.Errorf("spark: app %q produced no stages", cfg.App.Name())
	}

	eng := simtime.NewEngine()
	ccfg := cfg.Cluster
	ccfg.Workers = 1
	clus, err := cluster.New(eng, ccfg)
	if err != nil {
		return Result{}, err
	}
	log := trace.NewLog()
	job := cfg.App.Name()
	unit := clus.Workers()[0]

	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	record := func(e trace.Event) {
		if err := log.Add(e); err != nil {
			fail(err)
		}
	}

	var makespan float64
	done := false

	jitters := taskJitters(cfg, stages)
	var runStage func(si int)
	runStage = func(si int) {
		if si == len(stages) {
			makespan = eng.Now()
			done = true
			return
		}
		st := stages[si]
		if err := st.validate(); err != nil {
			fail(err)
			return
		}
		stageWork := 0.0
		for _, j := range jitters[si] {
			stageWork += st.WorkPerTask * j
		}
		start := eng.Now()
		if err := unit.RunCPU(stageWork, func() {
			record(trace.Event{Job: job, Stage: si, Phase: trace.PhaseCompute, Task: -1, Start: start, End: eng.Now()})
			drvStart := eng.Now()
			if err := clus.Master().RunCPU(st.DriverWork, func() {
				if st.DriverWork > 0 {
					record(trace.Event{Job: job, Stage: si, Phase: trace.PhaseReduce, Task: -1, Start: drvStart, End: eng.Now()})
				}
				runStage(si + 1)
			}); err != nil {
				fail(err)
			}
		}); err != nil {
			fail(err)
		}
	}
	runStage(0)
	eng.Run()
	if firstErr != nil {
		return Result{}, firstErr
	}
	if !done {
		return Result{}, errors.New("spark: sequential execution did not complete")
	}
	return Result{Log: log, Makespan: makespan, Tasks: cfg.Tasks, Execs: 1}, nil
}

// Speedup runs both modes and returns T_sequential / T_parallel.
func Speedup(cfg Config) (s float64, par, seq Result, err error) {
	par, err = RunParallel(cfg)
	if err != nil {
		return 0, Result{}, Result{}, fmt.Errorf("parallel run: %w", err)
	}
	seq, err = RunSequential(cfg)
	if err != nil {
		return 0, Result{}, Result{}, fmt.Errorf("sequential run: %w", err)
	}
	if par.Makespan <= 0 {
		return 0, Result{}, Result{}, errors.New("spark: nonpositive parallel makespan")
	}
	return seq.Makespan / par.Makespan, par, seq, nil
}
