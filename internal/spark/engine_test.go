package spark

import (
	"math"
	"testing"
	"testing/quick"

	"ipso/internal/cluster"
	"ipso/internal/stats"
	"ipso/internal/trace"
)

// stagesApp is a fixed stage list for tests.
type stagesApp struct {
	name   string
	stages []Stage
}

func (a stagesApp) Name() string { return a.name }

func (a stagesApp) Stages(tasks int, partBytes float64) []Stage {
	out := make([]Stage, len(a.stages))
	copy(out, a.stages)
	for i := range out {
		if out[i].Tasks == 0 {
			out[i].Tasks = tasks
		}
		if out[i].InputBytesPerTask == 0 {
			out[i].InputBytesPerTask = partBytes
		}
	}
	return out
}

func testClusterConfig() cluster.Config {
	return cluster.Config{
		Workers: 1,
		Worker:  cluster.NodeSpec{CPURate: 1, MemoryBytes: 1000, DiskBW: 10, NICBW: 10},
		Master:  cluster.NodeSpec{CPURate: 1, MemoryBytes: 1e6, DiskBW: 10, NICBW: 10},
	}
}

func simpleConfig(tasks, execs int) Config {
	return Config{
		App:            stagesApp{name: "t", stages: []Stage{{Name: "s0", WorkPerTask: 4}}},
		Tasks:          tasks,
		Executors:      execs,
		PartitionBytes: 1,
		Cluster:        testClusterConfig(),
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "nil app", mutate: func(c *Config) { c.App = nil }},
		{name: "zero tasks", mutate: func(c *Config) { c.Tasks = 0 }},
		{name: "zero executors", mutate: func(c *Config) { c.Executors = 0 }},
		{name: "negative partition", mutate: func(c *Config) { c.PartitionBytes = -1 }},
		{name: "negative sched", mutate: func(c *Config) { c.SchedPerTask = -1 }},
		{name: "negative pressure", mutate: func(c *Config) { c.SpillPenalty = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := simpleConfig(4, 2)
			tt.mutate(&cfg)
			if _, err := RunParallel(cfg); err == nil {
				t.Error("RunParallel should reject invalid config")
			}
			if _, err := RunSequential(cfg); err == nil {
				t.Error("RunSequential should reject invalid config")
			}
		})
	}
}

func TestStageValidation(t *testing.T) {
	cfg := simpleConfig(2, 1)
	cfg.App = stagesApp{name: "bad", stages: []Stage{{Name: "s", Tasks: 1, WorkPerTask: -1}}}
	if _, err := RunParallel(cfg); err == nil {
		t.Error("negative stage field should error")
	}
	cfg.App = stagesApp{name: "empty"}
	if _, err := RunParallel(cfg); err == nil {
		t.Error("empty stage list should error")
	}
}

func TestSequentialMakespan(t *testing.T) {
	cfg := simpleConfig(6, 2)
	res, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 6 tasks × 4 work / rate 1 = 24 s.
	if !almost(res.Makespan, 24) {
		t.Errorf("sequential makespan %g, want 24", res.Makespan)
	}
}

func TestParallelWaves(t *testing.T) {
	cfg := simpleConfig(6, 2)
	res, err := RunParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 3 waves of 2 tasks × 4 s = 12 s; no overheads configured.
	if !almost(res.Makespan, 12) {
		t.Errorf("parallel makespan %g, want 12", res.Makespan)
	}
	if got := len(res.Log.TaskDurations(trace.PhaseCompute)); got != 6 {
		t.Errorf("compute events %d, want 6", got)
	}
}

func TestSpeedupIdealIsExecutors(t *testing.T) {
	s, _, _, err := Speedup(simpleConfig(8, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s, 4) {
		t.Errorf("ideal speedup %g, want 4", s)
	}
}

func TestFirstWaveDeserDominates(t *testing.T) {
	cfg := simpleConfig(4, 2)
	cfg.DeserFirstWave = 3
	cfg.DeserPerTask = 1
	res, err := RunParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Deserialization is recorded as its own phase: the first wave
	// (tasks 0,1) pays 3 s, later waves 1 s; compute is 4 s everywhere.
	deser := res.Log.TaskDurations(trace.PhaseDeser)
	if !almost(deser[0], 3) || !almost(deser[1], 3) {
		t.Errorf("first-wave deser %v, want 3", deser[:2])
	}
	if !almost(deser[2], 1) || !almost(deser[3], 1) {
		t.Errorf("later-wave deser %v, want 1", deser[2:])
	}
	for i, d := range res.Log.TaskDurations(trace.PhaseCompute) {
		if !almost(d, 4) {
			t.Errorf("compute[%d] = %g, want 4", i, d)
		}
	}
	// Makespan: executor runs (3+4) + (1+4) = 12 s.
	if !almost(res.Makespan, 12) {
		t.Errorf("makespan %g, want 12", res.Makespan)
	}
}

func TestBroadcastDelaysStage(t *testing.T) {
	cfg := simpleConfig(2, 2)
	cfg.App = stagesApp{name: "b", stages: []Stage{{Name: "s0", WorkPerTask: 4, BroadcastBytes: 20}}}
	res, err := RunParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Serial broadcast: 2 sends × 20 B / 10 Bps = 4 s, then 4 s of work.
	if !almost(res.Makespan, 8) {
		t.Errorf("makespan %g, want 8", res.Makespan)
	}
	if _, _, ok := res.Log.PhaseSpan(trace.PhaseBroadcast); !ok {
		t.Error("broadcast event missing")
	}
}

func TestDriverWorkIsSerialInBothModes(t *testing.T) {
	cfg := simpleConfig(4, 4)
	cfg.App = stagesApp{name: "d", stages: []Stage{{Name: "s0", WorkPerTask: 4, DriverWork: 2}}}
	par, err := RunParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(par.Makespan, 6) { // 4 work + 2 driver
		t.Errorf("parallel makespan %g, want 6", par.Makespan)
	}
	if !almost(seq.Makespan, 18) { // 16 work + 2 driver
		t.Errorf("sequential makespan %g, want 18", seq.Makespan)
	}
}

func TestShuffleBetweenStages(t *testing.T) {
	cfg := simpleConfig(2, 2)
	cfg.App = stagesApp{name: "sh", stages: []Stage{
		{Name: "s0", WorkPerTask: 4, ShuffleBytesPerTask: 40},
		{Name: "s1", WorkPerTask: 4},
	}}
	res, err := RunParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Stage 0: 4 s work + shuffle 80 B / (2×10 Bps) = 4 s; stage 1: 4 s.
	if !almost(res.Makespan, 12) {
		t.Errorf("makespan %g, want 12", res.Makespan)
	}
	if got := res.Log.Stages(); len(got) != 2 {
		t.Errorf("stages in log %v, want 2", got)
	}
}

func TestMemoryPressureSlowsAndRetries(t *testing.T) {
	mk := func(cached float64) Config {
		cfg := simpleConfig(32, 2)
		cfg.App = stagesApp{name: "mem", stages: []Stage{
			{Name: "s0", WorkPerTask: 4, CachedBytesPerTask: cached},
		}}
		cfg.FailureCoef = 0.3
		cfg.Seed = 5
		return cfg
	}
	light, err := RunParallel(mk(1)) // 16 tasks/exec × 2 B ≪ 1000 B
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := RunParallel(mk(200)) // 16 × 201 B ≫ 1000 B
	if err != nil {
		t.Fatal(err)
	}
	if heavy.Makespan <= light.Makespan {
		t.Errorf("memory pressure should slow the job: light %g, heavy %g", light.Makespan, heavy.Makespan)
	}
	if heavy.Retries == 0 {
		t.Error("memory pressure should trigger task retries")
	}
	if light.Retries != 0 {
		t.Errorf("no pressure should mean no retries, got %d", light.Retries)
	}
}

func TestCentralSchedulingSerializes(t *testing.T) {
	cfg := simpleConfig(8, 8)
	cfg.SchedPerTask = 1
	res, err := RunParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Dispatches at 1 s apart; last task starts at t=8 and runs 4 s.
	if !almost(res.Makespan, 12) {
		t.Errorf("makespan %g, want 12", res.Makespan)
	}
}

func TestJitterLowersSpeedup(t *testing.T) {
	det, _, _, err := Speedup(simpleConfig(32, 8))
	if err != nil {
		t.Fatal(err)
	}
	cfg := simpleConfig(32, 8)
	cfg.Jitter = stats.Uniform{Low: 0.5, High: 1.5}
	cfg.Seed = 3
	jit, par, seq, err := Speedup(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if jit >= det {
		t.Errorf("straggler jitter should lower speedup: det %g, jitter %g", det, jit)
	}
	// Same seed ⇒ identical total work in both execution modes.
	parWork := par.Log.PhaseTotal(trace.PhaseCompute)
	seqWork := seq.Log.PhaseTotal(trace.PhaseCompute)
	if !almost(parWork, seqWork) {
		t.Errorf("total compute differs: parallel %g vs sequential %g", parWork, seqWork)
	}
}

func TestHeavyFailureRateTerminates(t *testing.T) {
	// Even at the 30% failure-probability cap the retry loop terminates
	// (geometric retries) and the job completes.
	cfg := simpleConfig(64, 4)
	cfg.App = stagesApp{name: "hot", stages: []Stage{{Name: "s", WorkPerTask: 1, CachedBytesPerTask: 500}}}
	cfg.FailureCoef = 100 // force the 0.3 cap
	cfg.Seed = 2
	res, err := RunParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries == 0 {
		t.Error("expected retries under extreme pressure")
	}
	if res.Makespan <= 0 {
		t.Error("job did not complete")
	}
}

// Property: speedup is positive and never exceeds the executor count when
// no randomness is configured.
func TestSpeedupBoundProperty(t *testing.T) {
	f := func(tRaw, eRaw uint8) bool {
		tasks := int(tRaw%16) + 1
		execs := int(eRaw%8) + 1
		s, _, _, err := Speedup(simpleConfig(tasks, execs))
		if err != nil {
			return false
		}
		return s > 0 && s <= float64(execs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: with fixed N, adding broadcast overhead makes the parallel
// makespan strictly increase with executors once work per executor is
// small — the peak-and-fall precondition (IVs).
func TestBroadcastOverheadGrowsWithExecutorsProperty(t *testing.T) {
	f := func(eRaw uint8) bool {
		execs := int(eRaw%10) + 2
		mk := func(m int) float64 {
			cfg := simpleConfig(2, m)
			cfg.App = stagesApp{name: "b", stages: []Stage{{Name: "s", WorkPerTask: 0.001, BroadcastBytes: 100}}}
			res, err := RunParallel(cfg)
			if err != nil {
				return -1
			}
			return res.Makespan
		}
		a, b := mk(execs), mk(execs+1)
		return a > 0 && b > a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9*math.Max(1, math.Abs(b)) }
