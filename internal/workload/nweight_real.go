package workload

import (
	"errors"
	"fmt"
)

// NWeights computes n-hop neighborhood weights on a directed weighted
// graph — the real computation behind the HiBench NWeight benchmark: the
// weight of node v's k-hop neighbor u is the sum over all k-step paths
// v→…→u of the product of edge weights. Each expansion round is the
// shuffle-heavy stage the NWeight app model simulates (the frontier
// weight table grows every round, which is why the simulated stage
// shuffle volume doubles per round).
//
// hops must be >= 1; the result maps each source node to its k-hop
// neighbor weights.
func NWeights(edges []Edge, nodes, hops int) ([]map[int]float64, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("workload: nodes %d must be >= 1", nodes)
	}
	if hops < 1 {
		return nil, fmt.Errorf("workload: hops %d must be >= 1", hops)
	}
	adj := make([][]Edge, nodes)
	for _, e := range edges {
		if e.From < 0 || e.From >= nodes || e.To < 0 || e.To >= nodes {
			return nil, fmt.Errorf("workload: edge %+v outside %d nodes", e, nodes)
		}
		if e.Weight < 0 {
			return nil, fmt.Errorf("workload: negative edge weight %+v", e)
		}
		adj[e.From] = append(adj[e.From], e)
	}

	// frontier[v] holds the current-hop weights from each source v.
	frontier := make([]map[int]float64, nodes)
	for v := 0; v < nodes; v++ {
		frontier[v] = map[int]float64{v: 1}
	}
	for h := 0; h < hops; h++ {
		next := make([]map[int]float64, nodes)
		for v := 0; v < nodes; v++ {
			nv := make(map[int]float64)
			for mid, w := range frontier[v] {
				for _, e := range adj[mid] {
					nv[e.To] += w * e.Weight
				}
			}
			next[v] = nv
		}
		frontier = next
	}
	return frontier, nil
}

// FrontierSize returns the total number of (source, neighbor) entries —
// the shuffle volume of the corresponding expansion round.
func FrontierSize(frontier []map[int]float64) (int, error) {
	if frontier == nil {
		return 0, errors.New("workload: nil frontier")
	}
	total := 0
	for _, m := range frontier {
		total += len(m)
	}
	return total, nil
}
