package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"ipso/internal/stats"
)

// ALSModel is a trained low-rank matrix-factorization model — the actual
// computation behind the Collaborative Filtering case study [12]: per
// iteration, "two feature vectors are updated alternately", each update
// solving regularized least squares for every user (resp. item) against
// the other side's (broadcast) feature matrix.
//
// The simulated CF app model (CollaborativeFiltering) reproduces the
// case study's *scaling* behavior; TrainALS is the real algorithm, so the
// library is usable for genuine small-scale factorization and so tests
// can verify the workload's structure (alternating barriers, broadcast
// working set) against real code.
type ALSModel struct {
	Rank         int
	UserFeatures [][]float64 // users × rank
	ItemFeatures [][]float64 // items × rank
}

// ALSConfig configures training.
type ALSConfig struct {
	Users, Items int
	Rank         int     // latent dimension, >= 1
	Iterations   int     // alternating iterations, >= 1
	Lambda       float64 // L2 regularization, > 0
	Workers      int     // parallel solvers per update (default GOMAXPROCS)
	Seed         int64
}

func (c ALSConfig) withDefaults() ALSConfig {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

func (c ALSConfig) validate() error {
	if c.Users < 1 || c.Items < 1 {
		return fmt.Errorf("workload: ALS needs users/items >= 1, got %d/%d", c.Users, c.Items)
	}
	if c.Rank < 1 {
		return fmt.Errorf("workload: ALS rank %d must be >= 1", c.Rank)
	}
	if c.Iterations < 1 {
		return fmt.Errorf("workload: ALS iterations %d must be >= 1", c.Iterations)
	}
	if c.Lambda <= 0 {
		return fmt.Errorf("workload: ALS lambda %g must be positive", c.Lambda)
	}
	return nil
}

// TrainALS factorizes the ratings by alternating least squares. Each
// iteration performs the two barrier-synchronized update rounds of the
// paper's CF application: fix item features, solve all users in parallel;
// then fix user features, solve all items in parallel.
func TrainALS(ratings []Rating, cfg ALSConfig) (*ALSModel, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(ratings) == 0 {
		return nil, errors.New("workload: no ratings to train on")
	}
	byUser := make([][]Rating, cfg.Users)
	byItem := make([][]Rating, cfg.Items)
	for _, r := range ratings {
		if r.User < 0 || r.User >= cfg.Users || r.Item < 0 || r.Item >= cfg.Items {
			return nil, fmt.Errorf("workload: rating %+v outside the %dx%d matrix", r, cfg.Users, cfg.Items)
		}
		byUser[r.User] = append(byUser[r.User], r)
		byItem[r.Item] = append(byItem[r.Item], r)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &ALSModel{
		Rank:         cfg.Rank,
		UserFeatures: randomFeatures(rng, cfg.Users, cfg.Rank),
		ItemFeatures: randomFeatures(rng, cfg.Items, cfg.Rank),
	}

	for it := 0; it < cfg.Iterations; it++ {
		// Round 1: broadcast item features, update user features.
		if err := alsUpdate(m.UserFeatures, m.ItemFeatures, byUser, pickItem, cfg); err != nil {
			return nil, err
		}
		// Round 2: broadcast user features, update item features.
		if err := alsUpdate(m.ItemFeatures, m.UserFeatures, byItem, pickUser, cfg); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func pickItem(r Rating) int { return r.Item }

func pickUser(r Rating) int { return r.User }

// alsUpdate solves the regularized normal equations for every row of
// target against the fixed matrix, parallelized over rows with a final
// barrier (sync.WaitGroup) — the Split-Merge structure of the case study.
func alsUpdate(target, fixed [][]float64, rowRatings [][]Rating, other func(Rating) int, cfg ALSConfig) error {
	rank := cfg.Rank
	var wg sync.WaitGroup
	errs := make([]error, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		w := w
		lo := len(target) * w / cfg.Workers
		hi := len(target) * (w + 1) / cfg.Workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := make([][]float64, rank)
			for i := range a {
				a[i] = make([]float64, rank)
			}
			b := make([]float64, rank)
			for row := lo; row < hi; row++ {
				rs := rowRatings[row]
				if len(rs) == 0 {
					continue // cold row keeps its random init
				}
				for i := range a {
					for j := range a[i] {
						a[i][j] = 0
					}
					a[i][i] = cfg.Lambda * float64(len(rs))
					b[i] = 0
				}
				for _, r := range rs {
					f := fixed[other(r)]
					for i := 0; i < rank; i++ {
						b[i] += r.Score * f[i]
						for j := 0; j <= i; j++ {
							a[i][j] += f[i] * f[j]
						}
					}
				}
				for i := 0; i < rank; i++ {
					for j := i + 1; j < rank; j++ {
						a[i][j] = a[j][i]
					}
				}
				x, err := stats.SolveLinear(a, b)
				if err != nil {
					errs[w] = fmt.Errorf("workload: ALS row %d: %w", row, err)
					return
				}
				copy(target[row], x)
			}
		}()
	}
	wg.Wait() // barrier synchronization
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func randomFeatures(rng *rand.Rand, rows, rank int) [][]float64 {
	out := make([][]float64, rows)
	for i := range out {
		out[i] = make([]float64, rank)
		for j := range out[i] {
			out[i][j] = rng.Float64()
		}
	}
	return out
}

// Predict returns the model's score for a (user, item) pair.
func (m *ALSModel) Predict(user, item int) (float64, error) {
	if user < 0 || user >= len(m.UserFeatures) || item < 0 || item >= len(m.ItemFeatures) {
		return 0, fmt.Errorf("workload: prediction (%d, %d) outside the trained matrix", user, item)
	}
	s := 0.0
	for k := 0; k < m.Rank; k++ {
		s += m.UserFeatures[user][k] * m.ItemFeatures[item][k]
	}
	return s, nil
}

// RMSE returns the root-mean-square error of the model on ratings.
func (m *ALSModel) RMSE(ratings []Rating) (float64, error) {
	if len(ratings) == 0 {
		return 0, errors.New("workload: no ratings to score")
	}
	sum := 0.0
	for _, r := range ratings {
		p, err := m.Predict(r.User, r.Item)
		if err != nil {
			return 0, err
		}
		d := p - r.Score
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(ratings))), nil
}
