package workload

import (
	"math"
	"testing"

	"ipso/internal/cluster"
	"ipso/internal/mapreduce"
	"ipso/internal/spark"
)

var mrModels = []mapreduce.AppModel{NewQMCPi(), NewWordCount(), NewSort(), NewTeraSort()}

func TestMRModelBasics(t *testing.T) {
	shard := float64(cluster.BlockBytes)
	for _, m := range mrModels {
		t.Run(m.Name(), func(t *testing.T) {
			if m.Name() == "" {
				t.Error("empty name")
			}
			if w := m.MapWork(shard); w <= 0 {
				t.Errorf("MapWork = %g, want > 0", w)
			}
			if b := m.MapOutputBytes(shard); b <= 0 || b > shard {
				t.Errorf("MapOutputBytes = %g, want in (0, shard]", b)
			}
			if w := m.MergeWork(shard); w < 0 {
				t.Errorf("MergeWork = %g, want >= 0", w)
			}
			if w := m.ReduceWork(shard); w < 0 {
				t.Errorf("ReduceWork = %g, want >= 0", w)
			}
		})
	}
}

func TestQMCHasNoSerialPortion(t *testing.T) {
	q := NewQMCPi()
	if q.MergeWork(1e9)+q.ReduceWork(1e9) != 0 {
		t.Error("QMC must have η = 1 (no serial workload)")
	}
	if q.MapWork(1) != q.MapWork(1e12) {
		t.Error("QMC map work must be independent of shard size")
	}
}

func TestWordCountOutputBoundedByDictionary(t *testing.T) {
	w := NewWordCount()
	bound := float64(DictionarySize) * w.EntryBytes
	if got := w.MapOutputBytes(float64(cluster.BlockBytes)); got != bound {
		t.Errorf("large-shard map output %g, want dictionary bound %g", got, bound)
	}
	if got := w.MapOutputBytes(100); got != 100 {
		t.Errorf("small-shard map output %g, want 100 (shard-limited)", got)
	}
	// IN(n) = 1: merge work is (near) constant in n because the
	// intermediate data is bounded.
	small := w.MergeWork(w.MapOutputBytes(float64(cluster.BlockBytes)) * 2)
	large := w.MergeWork(w.MapOutputBytes(float64(cluster.BlockBytes)) * 200)
	if large/small > 1.5 {
		t.Errorf("WordCount merge grows too fast: %g → %g", small, large)
	}
}

func TestSortMergeProportionalToData(t *testing.T) {
	s := NewSort()
	m1 := s.MergeWork(1 * cluster.BlockBytes)
	m10 := s.MergeWork(10 * cluster.BlockBytes)
	// Linear growth with a fixed setup: 1 < m10/m1 < 10.
	if ratio := m10 / m1; ratio <= 1 || ratio >= 10 {
		t.Errorf("merge ratio %g, want in (1, 10) for setup+linear model", ratio)
	}
	if s.MapOutputBytes(123456) != 123456 {
		t.Error("sort must preserve data size through map")
	}
}

func TestCFStagesShape(t *testing.T) {
	cf := NewCollaborativeFiltering()
	stages := cf.Stages(10, 0)
	if len(stages) != 2*cf.Iterations {
		t.Fatalf("stages = %d, want %d", len(stages), 2*cf.Iterations)
	}
	for _, st := range stages {
		if st.BroadcastBytes != cf.FeatureVectorBytes {
			t.Errorf("stage %q broadcast %g, want %g", st.Name, st.BroadcastBytes, cf.FeatureVectorBytes)
		}
		if st.DriverWork != 0 {
			t.Errorf("CF has no reduce phase; driver work %g", st.DriverWork)
		}
		if st.Tasks != 10 {
			t.Errorf("stage tasks %d, want 10", st.Tasks)
		}
	}
	// Fixed-size: total work is independent of the scale-out degree.
	total := func(n int) float64 {
		sum := 0.0
		for _, st := range cf.Stages(n, 0) {
			sum += st.WorkPerTask * float64(st.Tasks)
		}
		return sum
	}
	if a, b := total(10), total(90); math.Abs(a-b) > 1e-6*a {
		t.Errorf("CF total work changed with n: %g vs %g", a, b)
	}
}

func TestCFSimulationMatchesTableIShape(t *testing.T) {
	// The simulated CF run must land near the published Table I columns:
	// E[max{Tp,i(n)}] within 15% and Wo(n) within 15%.
	cf := NewCollaborativeFiltering()
	for _, row := range PaperTableI() {
		cfg := CFConfig(cf, row.N)
		res, err := spark.RunParallel(cfg)
		if err != nil {
			t.Fatalf("n=%d: %v", row.N, err)
		}
		// Split-phase time per iteration: mean per-task deser+compute per
		// stage, times 2 stages (1 wave each).
		taskTotal := res.Log.PhaseTotal("compute") + res.Log.PhaseTotal("deser")
		maxTask := taskTotal / float64(2*row.N) * 2
		if rel(maxTask, row.MaxTask) > 0.15 {
			t.Errorf("n=%d: simulated E[max Tp,i] = %.1f, Table I %.1f", row.N, maxTask, row.MaxTask)
		}
		wo := res.Log.PhaseTotal("broadcast")
		if rel(wo, row.Wo) > 0.15 {
			t.Errorf("n=%d: simulated Wo = %.1f, Table I %.1f", row.N, wo, row.Wo)
		}
	}
}

func TestSparkBenchmarksProduceValidStages(t *testing.T) {
	for _, app := range SparkBenchmarks() {
		t.Run(app.Name(), func(t *testing.T) {
			stages := app.Stages(16, cluster.BlockBytes)
			if len(stages) == 0 {
				t.Fatal("no stages")
			}
			for _, st := range stages {
				if st.Tasks != 16 {
					t.Errorf("stage %q tasks %d, want 16", st.Name, st.Tasks)
				}
				if st.WorkPerTask <= 0 {
					t.Errorf("stage %q has no work", st.Name)
				}
			}
		})
	}
}

func TestSparkConfigRunsEndToEnd(t *testing.T) {
	for _, app := range SparkBenchmarks() {
		t.Run(app.Name(), func(t *testing.T) {
			s, par, seq, err := spark.Speedup(SparkConfig(app, 16, 8))
			if err != nil {
				t.Fatal(err)
			}
			if s <= 1 || s > 8 {
				t.Errorf("speedup %g, want in (1, 8]", s)
			}
			if par.Makespan <= 0 || seq.Makespan <= 0 {
				t.Error("nonpositive makespans")
			}
		})
	}
}

func TestMemoryPressureAtLoadLevel8(t *testing.T) {
	// The N/m = 8 load level must overflow executor memory (spill +
	// retries) while N/m = 4 must not — the precondition for the paper's
	// Fig. 9 observation that the speedup at N/m = 8 drops below N/m = 4.
	m := 4
	res4, err := spark.RunParallel(SparkConfig(NewBayes(), 4*m, m))
	if err != nil {
		t.Fatal(err)
	}
	res8, err := spark.RunParallel(SparkConfig(NewBayes(), 8*m, m))
	if err != nil {
		t.Fatal(err)
	}
	if res4.Retries != 0 {
		t.Errorf("N/m=4 should fit in executor memory, got %d retries", res4.Retries)
	}
	if res8.Retries == 0 {
		t.Error("N/m=8 should overflow executor memory and trigger retries")
	}
}

func TestPaperTableI(t *testing.T) {
	rows := PaperTableI()
	if len(rows) != 4 {
		t.Fatalf("Table I rows = %d, want 4", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].N <= rows[i-1].N {
			t.Error("Table I rows must be ordered by n")
		}
		if rows[i].MaxTask >= rows[i-1].MaxTask {
			t.Error("E[max Tp,i] must decrease with n (fixed-size split)")
		}
		if rows[i].Wo <= rows[i-1].Wo {
			t.Error("Wo must grow with n (broadcast overhead)")
		}
	}
}

func rel(a, b float64) float64 { return math.Abs(a-b) / math.Abs(b) }
