// Package workload provides the data generators and application models of
// the paper's nine case studies: the HiBench-style MapReduce micro
// benchmarks (QMC Pi, WordCount, Sort, TeraSort), the Spark-based
// Collaborative Filtering application of [12], and the four Spark
// benchmarks (Bayes, Random Forest, SVM, NWeight).
//
// Two kinds of artifacts live here:
//
//   - real data generators (dictionary text, TeraGen records, QMC samples,
//     ratings, graphs) used by the examples and the in-memory local
//     MapReduce runner — the stand-ins for HiBench's data generators; and
//   - cost models (mapreduce.AppModel / spark.AppModel implementations)
//     whose coefficients are calibrated so the *simulated* cluster
//     reproduces the scaling shapes reported in Section V (see DESIGN.md
//     §5 for the calibration targets).
package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// DictionarySize is the number of distinct words in the generator
// dictionary; the paper's WordCount/Sort inputs are "randomly generated
// text, drawn from a UNIX dictionary that contains 1000 words".
const DictionarySize = 1000

var dictSyllables = []string{
	"ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du",
	"ka", "ke", "ki", "ko", "ku", "la", "le", "li", "lo", "lu",
	"ma", "me", "mi", "mo", "mu", "na", "ne", "ni", "no", "nu",
	"ra", "re", "ri", "ro", "ru", "sa", "se", "si", "so", "su",
}

// Dictionary returns the deterministic 1000-word dictionary. The returned
// slice is freshly allocated on each call.
func Dictionary() []string {
	words := make([]string, 0, DictionarySize)
	n := len(dictSyllables)
	for i := 0; len(words) < DictionarySize; i++ {
		// Three-syllable words enumerated in a fixed order: 40³ = 64000
		// candidates, of which the first 1000 are used.
		w := dictSyllables[i/(n*n)%n] + dictSyllables[i/n%n] + dictSyllables[i%n]
		words = append(words, w)
	}
	return words
}

// TextLines generates lines of space-separated dictionary words: the
// random-text working set of WordCount and Sort. Deterministic per seed.
func TextLines(lines, wordsPerLine int, seed int64) ([]string, error) {
	if lines < 0 || wordsPerLine < 1 {
		return nil, fmt.Errorf("workload: invalid text shape lines=%d wordsPerLine=%d", lines, wordsPerLine)
	}
	dict := Dictionary()
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, lines)
	var sb strings.Builder
	for i := range out {
		sb.Reset()
		for w := 0; w < wordsPerLine; w++ {
			if w > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(dict[rng.Intn(len(dict))])
		}
		out[i] = sb.String()
	}
	return out, nil
}

// TeraRecord is one 100-byte TeraGen-format record: a 10-byte key and a
// 90-byte payload, the input format of the TeraSort benchmark.
type TeraRecord struct {
	Key     string // 10 bytes
	Payload string // 90 bytes
}

// TeraRecordBytes is the on-disk size of one TeraGen record.
const TeraRecordBytes = 100

// TeraGen generates TeraGen-format records, deterministic per seed.
func TeraGen(count int, seed int64) ([]TeraRecord, error) {
	if count < 0 {
		return nil, fmt.Errorf("workload: negative record count %d", count)
	}
	const keyAlphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
	rng := rand.New(rand.NewSource(seed))
	out := make([]TeraRecord, count)
	key := make([]byte, 10)
	payload := make([]byte, 90)
	for i := range out {
		for j := range key {
			key[j] = keyAlphabet[rng.Intn(len(keyAlphabet))]
		}
		for j := range payload {
			payload[j] = keyAlphabet[rng.Intn(len(keyAlphabet))]
		}
		out[i] = TeraRecord{Key: string(key), Payload: string(payload)}
	}
	return out, nil
}

// QMCEstimatePi estimates π with samples quasi-random points per the QMC
// Pi example: the fraction of points inside the unit quarter-circle,
// times 4. Deterministic per seed.
func QMCEstimatePi(samples int, seed int64) (float64, error) {
	if samples < 1 {
		return 0, fmt.Errorf("workload: need at least 1 sample, got %d", samples)
	}
	// A Halton-style low-discrepancy sequence in bases 2 and 3 (the
	// "quasi" in Quasi Monte Carlo), offset deterministically by the seed.
	inside := 0
	off := int(seed%1009) + 1
	for i := 0; i < samples; i++ {
		x := halton(i+off, 2)
		y := halton(i+off, 3)
		if x*x+y*y <= 1 {
			inside++
		}
	}
	return 4 * float64(inside) / float64(samples), nil
}

func halton(i, base int) float64 {
	f := 1.0
	r := 0.0
	for i > 0 {
		f /= float64(base)
		r += f * float64(i%base)
		i /= base
	}
	return r
}

// Rating is one (user, item, score) observation of the Collaborative
// Filtering working set.
type Rating struct {
	User  int
	Item  int
	Score float64
}

// Ratings generates a synthetic ratings matrix sample, deterministic per
// seed.
func Ratings(users, items, count int, seed int64) ([]Rating, error) {
	if users < 1 || items < 1 || count < 0 {
		return nil, fmt.Errorf("workload: invalid ratings shape users=%d items=%d count=%d", users, items, count)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Rating, count)
	for i := range out {
		out[i] = Rating{
			User:  rng.Intn(users),
			Item:  rng.Intn(items),
			Score: 1 + 4*rng.Float64(),
		}
	}
	return out, nil
}

// Edge is one directed edge of the NWeight graph workload.
type Edge struct {
	From, To int
	Weight   float64
}

// Graph generates a random directed graph with the given node count and
// average out-degree, deterministic per seed.
func Graph(nodes, avgOutDegree int, seed int64) ([]Edge, error) {
	if nodes < 1 || avgOutDegree < 0 {
		return nil, fmt.Errorf("workload: invalid graph shape nodes=%d avgOutDegree=%d", nodes, avgOutDegree)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Edge, 0, nodes*avgOutDegree)
	for u := 0; u < nodes; u++ {
		for d := 0; d < avgOutDegree; d++ {
			out = append(out, Edge{From: u, To: rng.Intn(nodes), Weight: rng.Float64()})
		}
	}
	return out, nil
}
