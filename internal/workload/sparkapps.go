package workload

import (
	"ipso/internal/cluster"
	"ipso/internal/spark"
)

// ExecutorMemoryBytes is the per-executor memory used by the Spark case
// studies. It is sized so that a per-executor load level of N/m = 8 blocks
// (plus persisted RDDs) overflows it while N/m = 4 does not — reproducing
// the paper's observation that the speedup at N/m = 8 falls below N/m = 4
// because "insufficient RAM may cause the persistent RDDs to be spilled to
// the local disk, or even trigger increased task failure rate".
const ExecutorMemoryBytes = 1536 << 20 // 1.5 GB

// SparkConfig assembles the engine configuration shared by the four Spark
// benchmarks: the EMR-like cluster, 5 ms centralized scheduling per task,
// and first-wave-dominated deserialization overhead.
func SparkConfig(app spark.AppModel, tasks, executors int) spark.Config {
	ccfg := cluster.DefaultConfig(executors)
	ccfg.Worker.MemoryBytes = ExecutorMemoryBytes
	return spark.Config{
		App:            app,
		Tasks:          tasks,
		Executors:      executors,
		PartitionBytes: cluster.BlockBytes,
		Cluster:        ccfg,
		SchedPerTask:   0.005,
		DeserFirstWave: 1.5,
		DeserPerTask:   0.15,
		SpillPenalty:   3,
		FailureCoef:    0.2,
		Seed:           1,
	}
}

// CollaborativeFiltering models the iterative Spark application of [12]
// (Chowdhury et al., Orchestra): per iteration, two feature vectors are
// updated alternately, each update requiring a broadcast from the master
// to all workers followed by a map phase with barrier synchronization, and
// no reduce phase — so Ws(n) = 0 (η = 1) and the broadcast is pure
// scale-out-induced workload.
//
// Calibration reproduces Table I: total parallelizable work of 1900 s per
// iteration, 75 MB feature-vector broadcasts (serial sends from the
// master's 250 MB/s NIC give Wo(n) ≈ 0.6n, i.e. q(n) ∝ n², γ = 2), and
// ≈4.5 s of first-wave overhead per stage.
type CollaborativeFiltering struct {
	// Iterations is the number of alternating-update iterations.
	Iterations int
	// WorkPerIteration is the total CPU work of one iteration's two map
	// phases combined (fixed-size: independent of n).
	WorkPerIteration float64
	// FeatureVectorBytes is the broadcast payload per update.
	FeatureVectorBytes float64
	// DatasetBytes is the (cached) ratings working set, partitioned over
	// the executors.
	DatasetBytes float64
}

// NewCollaborativeFiltering returns the Table-I-calibrated model with one
// iteration (the paper analyzes per-iteration data).
func NewCollaborativeFiltering() *CollaborativeFiltering {
	return &CollaborativeFiltering{
		Iterations:         1,
		WorkPerIteration:   1.9e11, // 1900 s on the reference worker
		FeatureVectorBytes: 75e6,
		DatasetBytes:       4 << 30,
	}
}

// Name implements spark.AppModel.
func (a *CollaborativeFiltering) Name() string { return "collaborative-filtering" }

// Stages returns two broadcast+map stages per iteration. The fixed-size
// dataset is split across the tasks regardless of the partBytes argument.
func (a *CollaborativeFiltering) Stages(tasks int, _ float64) []spark.Stage {
	part := a.DatasetBytes / float64(tasks)
	perStageWork := a.WorkPerIteration / 2 / float64(tasks)
	stages := make([]spark.Stage, 0, 2*a.Iterations)
	for it := 0; it < a.Iterations; it++ {
		stages = append(stages,
			spark.Stage{
				Name:              "update-user-features",
				Tasks:             tasks,
				WorkPerTask:       perStageWork,
				InputBytesPerTask: part,
				BroadcastBytes:    a.FeatureVectorBytes,
			},
			spark.Stage{
				Name:              "update-item-features",
				Tasks:             tasks,
				WorkPerTask:       perStageWork,
				InputBytesPerTask: part,
				BroadcastBytes:    a.FeatureVectorBytes,
			},
		)
	}
	return stages
}

// CFConfig assembles the engine configuration for the Collaborative
// Filtering case study at scale-out degree n: one task per worker
// (fixed-size split of the dataset) and ≈4.5 s first-wave overhead per
// stage, which together with the 75 MB serial broadcasts reproduces the
// measured columns of Table I.
func CFConfig(app *CollaborativeFiltering, executors int) spark.Config {
	ccfg := cluster.DefaultConfig(executors)
	return spark.Config{
		App:            app,
		Tasks:          executors,
		Executors:      executors,
		PartitionBytes: app.DatasetBytes / float64(executors),
		Cluster:        ccfg,
		SchedPerTask:   0.005,
		DeserFirstWave: 4.5,
		DeserPerTask:   0.5,
		Seed:           1,
	}
}

// staticStages is shared scaffolding for the four HiBench-style Spark
// benchmarks: a fixed stage template instantiated per (tasks, partBytes).
type stageTemplate struct {
	name           string
	workPerByte    float64 // CPU units per input byte
	broadcastBytes float64
	shufflePerByte float64 // shuffle output fraction of input
	cachedPerByte  float64 // persisted RDD fraction of input
	driverWork     float64 // serial work at the stage boundary
}

func buildStages(templates []stageTemplate, tasks int, partBytes float64) []spark.Stage {
	out := make([]spark.Stage, len(templates))
	for i, t := range templates {
		out[i] = spark.Stage{
			Name:                t.name,
			Tasks:               tasks,
			WorkPerTask:         t.workPerByte * partBytes,
			InputBytesPerTask:   partBytes,
			BroadcastBytes:      t.broadcastBytes,
			ShuffleBytesPerTask: t.shufflePerByte * partBytes,
			CachedBytesPerTask:  t.cachedPerByte * partBytes,
			DriverWork:          t.driverWork,
		}
	}
	return out
}

// Bayes is the HiBench Bayes Classifier benchmark: tokenize → aggregate →
// train, with persisted term tables and a model broadcast before training.
type Bayes struct{ templates []stageTemplate }

// NewBayes returns the calibrated Bayes model.
func NewBayes() *Bayes {
	return &Bayes{templates: []stageTemplate{
		{name: "tokenize", workPerByte: 8, broadcastBytes: 32e6, shufflePerByte: 0.3, cachedPerByte: 0.5, driverWork: 2e8},
		{name: "aggregate", workPerByte: 4, broadcastBytes: 32e6, shufflePerByte: 0.1, cachedPerByte: 0.3, driverWork: 5e8},
		{name: "train", workPerByte: 4, broadcastBytes: 64e6, cachedPerByte: 0.2, driverWork: 1e9},
	}}
}

// Name implements spark.AppModel.
func (a *Bayes) Name() string { return "bayes" }

// Stages implements spark.AppModel.
func (a *Bayes) Stages(tasks int, partBytes float64) []spark.Stage {
	return buildStages(a.templates, tasks, partBytes)
}

// RandomForest is the HiBench Random Forest benchmark: an ensemble of
// tree-building rounds, each broadcasting the partial forest.
type RandomForest struct{ templates []stageTemplate }

// NewRandomForest returns the calibrated Random Forest model with eight
// tree-building rounds.
func NewRandomForest() *RandomForest {
	templates := make([]stageTemplate, 0, 8)
	for i := 0; i < 8; i++ {
		templates = append(templates, stageTemplate{
			name:           "grow-trees",
			workPerByte:    3,
			broadcastBytes: 24e6,
			shufflePerByte: 0.05,
			cachedPerByte:  0.125,
			driverWork:     2e8,
		})
	}
	return &RandomForest{templates: templates}
}

// Name implements spark.AppModel.
func (a *RandomForest) Name() string { return "random-forest" }

// Stages implements spark.AppModel.
func (a *RandomForest) Stages(tasks int, partBytes float64) []spark.Stage {
	return buildStages(a.templates, tasks, partBytes)
}

// SVM is the HiBench Support Vector Machine benchmark: gradient-descent
// iterations, each broadcasting the weight vector and collecting gradients
// at the driver — the most broadcast-intensive of the four.
type SVM struct{ templates []stageTemplate }

// NewSVM returns the calibrated SVM model with eight iterations.
func NewSVM() *SVM {
	templates := make([]stageTemplate, 0, 8)
	for i := 0; i < 8; i++ {
		templates = append(templates, stageTemplate{
			name:           "gradient",
			workPerByte:    4,
			broadcastBytes: 32e6,
			cachedPerByte:  0.125,
			driverWork:     3e8,
		})
	}
	return &SVM{templates: templates}
}

// Name implements spark.AppModel.
func (a *SVM) Name() string { return "svm" }

// Stages implements spark.AppModel.
func (a *SVM) Stages(tasks int, partBytes float64) []spark.Stage {
	return buildStages(a.templates, tasks, partBytes)
}

// NWeight is the HiBench NWeight graph benchmark: iterative neighborhood
// expansion with shuffle volume growing each round.
type NWeight struct{ templates []stageTemplate }

// NewNWeight returns the calibrated NWeight model with three expansion
// rounds.
func NewNWeight() *NWeight {
	return &NWeight{templates: []stageTemplate{
		{name: "expand-1", workPerByte: 5, broadcastBytes: 32e6, shufflePerByte: 0.5, cachedPerByte: 0.4, driverWork: 2e8},
		{name: "expand-2", workPerByte: 5, broadcastBytes: 32e6, shufflePerByte: 1.0, cachedPerByte: 0.4, driverWork: 2e8},
		{name: "expand-3", workPerByte: 5, broadcastBytes: 32e6, shufflePerByte: 2.0, cachedPerByte: 0.4, driverWork: 2e8},
	}}
}

// Name implements spark.AppModel.
func (a *NWeight) Name() string { return "nweight" }

// Stages implements spark.AppModel.
func (a *NWeight) Stages(tasks int, partBytes float64) []spark.Stage {
	return buildStages(a.templates, tasks, partBytes)
}

// SparkBenchmarks returns the four Section V-B benchmark models in the
// paper's order.
func SparkBenchmarks() []spark.AppModel {
	return []spark.AppModel{NewBayes(), NewRandomForest(), NewSVM(), NewNWeight()}
}
