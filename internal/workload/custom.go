package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"ipso/internal/spark"
)

// CustomMR is a user-defined MapReduce cost model loadable from JSON, so
// the simulator can be pointed at workloads beyond the built-in case
// studies without recompiling. All work values are CPU units (the
// reference worker executes 100e6 units/second); see the built-in models
// in mrapps.go for calibrated examples.
type CustomMR struct {
	JobName string `json:"name"`
	// MapWorkPerByte scales map work with the shard; MapWorkFixed adds a
	// shard-independent term (a QMC-style compute task sets only this).
	MapWorkPerByte float64 `json:"map_work_per_byte"`
	MapWorkFixed   float64 `json:"map_work_fixed"`
	// OutputFraction emits a fraction of the shard as intermediate data;
	// OutputBytesCap, when positive, bounds the emission (a WordCount-
	// style dictionary cap).
	OutputFraction float64 `json:"output_fraction"`
	OutputBytesCap float64 `json:"output_bytes_cap"`
	// Merge cost: fixed setup plus per-byte over all intermediate data.
	MergeSetupWork    float64 `json:"merge_setup_work"`
	MergeWorkPerByte  float64 `json:"merge_work_per_byte"`
	ReduceWorkPerByte float64 `json:"reduce_work_per_byte"`
	// Streaming marks the merge as streaming (never spills to disk).
	Streaming bool `json:"streaming_merge"`
}

// ParseCustomMR decodes and validates a JSON cost model.
func ParseCustomMR(r io.Reader) (*CustomMR, error) {
	var c CustomMR
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("workload: parse custom MR model: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Validate checks the model's domain.
func (c *CustomMR) Validate() error {
	if c.JobName == "" {
		return fmt.Errorf("workload: custom MR model needs a name")
	}
	if c.MapWorkPerByte < 0 || c.MapWorkFixed < 0 || c.MergeSetupWork < 0 ||
		c.MergeWorkPerByte < 0 || c.ReduceWorkPerByte < 0 || c.OutputBytesCap < 0 {
		return fmt.Errorf("workload: custom MR model %q has negative fields", c.JobName)
	}
	if c.MapWorkPerByte == 0 && c.MapWorkFixed == 0 {
		return fmt.Errorf("workload: custom MR model %q has no map work", c.JobName)
	}
	if c.OutputFraction < 0 || c.OutputFraction > 1 {
		return fmt.Errorf("workload: output fraction %g outside [0,1]", c.OutputFraction)
	}
	return nil
}

// Name implements mapreduce.AppModel.
func (c *CustomMR) Name() string { return c.JobName }

// MapWork implements mapreduce.AppModel.
func (c *CustomMR) MapWork(shardBytes float64) float64 {
	return c.MapWorkFixed + c.MapWorkPerByte*shardBytes
}

// MapOutputBytes implements mapreduce.AppModel.
func (c *CustomMR) MapOutputBytes(shardBytes float64) float64 {
	out := c.OutputFraction * shardBytes
	if c.OutputBytesCap > 0 && out > c.OutputBytesCap {
		out = c.OutputBytesCap
	}
	return out
}

// MergeWork implements mapreduce.AppModel.
func (c *CustomMR) MergeWork(total float64) float64 {
	return c.MergeSetupWork + c.MergeWorkPerByte*total
}

// ReduceWork implements mapreduce.AppModel.
func (c *CustomMR) ReduceWork(total float64) float64 { return c.ReduceWorkPerByte * total }

// StreamingMerge implements mapreduce.StreamingMerger.
func (c *CustomMR) StreamingMerge() bool { return c.Streaming }

// CustomSpark is a user-defined multi-stage Spark-like application
// loadable from JSON.
type CustomSpark struct {
	JobName    string             `json:"name"`
	StageSpecs []CustomSparkStage `json:"stages"`
}

// CustomSparkStage mirrors one stageTemplate.
type CustomSparkStage struct {
	Name           string  `json:"name"`
	WorkPerByte    float64 `json:"work_per_byte"`
	BroadcastBytes float64 `json:"broadcast_bytes"`
	ShufflePerByte float64 `json:"shuffle_per_byte"`
	CachedPerByte  float64 `json:"cached_per_byte"`
	DriverWork     float64 `json:"driver_work"`
}

// ParseCustomSpark decodes and validates a JSON application spec.
func ParseCustomSpark(r io.Reader) (*CustomSpark, error) {
	var c CustomSpark
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("workload: parse custom Spark model: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Validate checks the spec's domain.
func (c *CustomSpark) Validate() error {
	if c.JobName == "" {
		return fmt.Errorf("workload: custom Spark model needs a name")
	}
	if len(c.StageSpecs) == 0 {
		return fmt.Errorf("workload: custom Spark model %q needs stages", c.JobName)
	}
	for i, st := range c.StageSpecs {
		if st.WorkPerByte <= 0 {
			return fmt.Errorf("workload: stage %d (%q) needs positive work_per_byte", i, st.Name)
		}
		if st.BroadcastBytes < 0 || st.ShufflePerByte < 0 || st.CachedPerByte < 0 || st.DriverWork < 0 {
			return fmt.Errorf("workload: stage %d (%q) has negative fields", i, st.Name)
		}
	}
	return nil
}

// Name implements spark.AppModel.
func (c *CustomSpark) Name() string { return c.JobName }

// Stages implements spark.AppModel.
func (c *CustomSpark) Stages(tasks int, partBytes float64) []spark.Stage {
	templates := make([]stageTemplate, len(c.StageSpecs))
	for i, st := range c.StageSpecs {
		templates[i] = stageTemplate{
			name:           st.Name,
			workPerByte:    st.WorkPerByte,
			broadcastBytes: st.BroadcastBytes,
			shufflePerByte: st.ShufflePerByte,
			cachedPerByte:  st.CachedPerByte,
			driverWork:     st.DriverWork,
		}
	}
	return buildStages(templates, tasks, partBytes)
}
