package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// BayesClassifier is a real multinomial naive Bayes text classifier — the
// actual computation behind the HiBench Bayes benchmark whose *scaling*
// the Bayes app model simulates. Training tokenizes documents (the
// simulated "tokenize" stage), aggregates per-class token counts (the
// "aggregate" stage), and derives log-probabilities (the "train" stage's
// driver work).
type BayesClassifier struct {
	classes     []string
	classLogPri map[string]float64
	tokenLogPr  map[string]map[string]float64 // class → token → log P(token|class)
	defaultLogP map[string]float64            // class → unseen-token log prob
	vocabSize   int
}

// Document is one labeled training text.
type Document struct {
	Label string
	Text  string
}

// TrainBayes fits the classifier with Laplace smoothing.
func TrainBayes(docs []Document) (*BayesClassifier, error) {
	if len(docs) == 0 {
		return nil, errors.New("workload: no training documents")
	}
	classDocs := make(map[string]int)
	classTokens := make(map[string]map[string]int)
	classTotal := make(map[string]int)
	vocab := make(map[string]bool)
	for _, d := range docs {
		if d.Label == "" {
			return nil, fmt.Errorf("workload: document %q has no label", truncate(d.Text, 20))
		}
		classDocs[d.Label]++
		if classTokens[d.Label] == nil {
			classTokens[d.Label] = make(map[string]int)
		}
		for _, tok := range strings.Fields(d.Text) {
			classTokens[d.Label][tok]++
			classTotal[d.Label]++
			vocab[tok] = true
		}
	}
	if len(vocab) == 0 {
		return nil, errors.New("workload: training corpus has no tokens")
	}

	c := &BayesClassifier{
		classLogPri: make(map[string]float64, len(classDocs)),
		tokenLogPr:  make(map[string]map[string]float64, len(classDocs)),
		defaultLogP: make(map[string]float64, len(classDocs)),
		vocabSize:   len(vocab),
	}
	v := float64(len(vocab))
	for label, nDocs := range classDocs {
		c.classes = append(c.classes, label)
		c.classLogPri[label] = math.Log(float64(nDocs) / float64(len(docs)))
		total := float64(classTotal[label])
		c.tokenLogPr[label] = make(map[string]float64, len(classTokens[label]))
		for tok, count := range classTokens[label] {
			c.tokenLogPr[label][tok] = math.Log((float64(count) + 1) / (total + v))
		}
		c.defaultLogP[label] = math.Log(1 / (total + v))
	}
	return c, nil
}

// Classify returns the most probable label for the text.
func (c *BayesClassifier) Classify(text string) (string, error) {
	if len(c.classes) == 0 {
		return "", errors.New("workload: classifier not trained")
	}
	best := ""
	bestScore := math.Inf(-1)
	for _, label := range c.classes {
		score := c.classLogPri[label]
		for _, tok := range strings.Fields(text) {
			if lp, ok := c.tokenLogPr[label][tok]; ok {
				score += lp
			} else {
				score += c.defaultLogP[label]
			}
		}
		if score > bestScore {
			best, bestScore = label, score
		}
	}
	return best, nil
}

// Accuracy scores the classifier on labeled documents.
func (c *BayesClassifier) Accuracy(docs []Document) (float64, error) {
	if len(docs) == 0 {
		return 0, errors.New("workload: no documents to score")
	}
	correct := 0
	for _, d := range docs {
		got, err := c.Classify(d.Text)
		if err != nil {
			return 0, err
		}
		if got == d.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(docs)), nil
}

// VocabularySize returns the number of distinct training tokens.
func (c *BayesClassifier) VocabularySize() int { return c.vocabSize }

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// LabeledTextLines generates a two-class synthetic corpus: each class
// draws words from a different half of the dictionary with the given
// mixing noise (0 = perfectly separable). Deterministic per seed.
func LabeledTextLines(docsPerClass, wordsPerDoc int, noise float64, seed int64) ([]Document, error) {
	if docsPerClass < 1 || wordsPerDoc < 1 {
		return nil, fmt.Errorf("workload: invalid corpus shape docs=%d words=%d", docsPerClass, wordsPerDoc)
	}
	if noise < 0 || noise > 1 {
		return nil, fmt.Errorf("workload: noise %g outside [0,1]", noise)
	}
	dict := Dictionary()
	half := len(dict) / 2
	lines, err := TextLines(2*docsPerClass, wordsPerDoc, seed)
	if err != nil {
		return nil, err
	}
	// Re-map each line's words into the class's half of the dictionary;
	// each token independently flips to the other half with probability
	// noise, so noise → 0.5 makes the classes indistinguishable.
	rng := rand.New(rand.NewSource(seed + 1))
	out := make([]Document, 0, 2*docsPerClass)
	idx := func(w string) int {
		s := 0
		for i := 0; i < len(w); i++ {
			s += int(w[i]) * (i + 1)
		}
		return s
	}
	for i, line := range lines {
		label := "alpha"
		base := 0
		if i >= docsPerClass {
			label = "beta"
			base = half
		}
		words := strings.Fields(line)
		for j, w := range words {
			off := base
			if rng.Float64() < noise {
				off = half - base // flip halves
			}
			words[j] = dict[off+(idx(w)%half)]
		}
		out = append(out, Document{Label: label, Text: strings.Join(words, " ")})
	}
	return out, nil
}
