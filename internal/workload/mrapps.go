package workload

import "math"

// The MapReduce cost models below express CPU work in abstract units; the
// reference worker (cluster.M4LargeWorker) executes 100e6 units/second, so
// a coefficient of k units/byte costs k·1.342 seconds per 128 MB shard.
//
// Coefficients are calibrated against the Section V shape anchors (see
// DESIGN.md §5):
//
//	Sort:     IN(n) slope ≈ 0.39, speedup bound ≈ 4.7  (paper: 0.36, ≈5)
//	TeraSort: IN(n) slope ≈ 0.18 → 0.25 across the 2 GB reducer-memory
//	          overflow at n≈15, ε ≈ 3.9, bound ≈ 2.7   (paper: 0.15→0.25,
//	          ε = 4.3, bound 3)
//	WordCount: IN(n) = 1 (merge bounded by the 1000-word dictionary)
//	QMC:      η = 1, q(n) ≈ 0 → Gustafson-like linear scaling

// QMCPi is the Quasi Monte Carlo π-estimation job from the Apache Hadoop
// examples: pure computation per task, a 16-byte count as map output, and
// essentially no merge — the paper's only case with η = 1 among the
// MapReduce studies (type It: matches Gustafson's law).
type QMCPi struct {
	// WorkPerTask is the CPU work of one map task (sampling a fixed
	// number of quasi-random points), independent of shard size.
	WorkPerTask float64
}

// NewQMCPi returns the calibrated QMC Pi model (≈15 s map tasks on the
// reference worker).
func NewQMCPi() *QMCPi {
	return &QMCPi{WorkPerTask: 1.5e9}
}

// Name implements mapreduce.AppModel.
func (a *QMCPi) Name() string { return "qmc-pi" }

// MapWork returns the fixed per-task sampling work (QMC is compute-bound;
// the shard carries only the sample-count parameters).
func (a *QMCPi) MapWork(float64) float64 { return a.WorkPerTask }

// MapOutputBytes returns the 16-byte (inside, total) counter pair.
func (a *QMCPi) MapOutputBytes(float64) float64 { return 16 }

// MergeWork returns zero: summing a handful of counters is free at this
// scale, which is exactly why QMC has no serial portion (η = 1).
func (a *QMCPi) MergeWork(float64) float64 { return 0 }

// ReduceWork returns zero.
func (a *QMCPi) ReduceWork(float64) float64 { return 0 }

// WordCount counts word occurrences in dictionary-drawn text. Its map
// output — and therefore its merge workload — is bounded by the 1000-word
// dictionary regardless of shard size, so IN(n) = 1: the only in-proportion
// behavior it can exhibit is none, and it scales near-linearly (It/IIt).
type WordCount struct {
	MapWorkPerByte   float64 // tokenize + local count
	EntryBytes       float64 // bytes per dictionary entry in map output
	MergeSetupWork   float64 // fixed reducer startup
	MergeWorkPerByte float64 // merging the (tiny) count tables
}

// NewWordCount returns the calibrated WordCount model (≈13.4 s map tasks,
// ≈16 KB map output, ≈1 s fixed merge).
func NewWordCount() *WordCount {
	return &WordCount{
		MapWorkPerByte:   10,
		EntryBytes:       16,
		MergeSetupWork:   1e8,
		MergeWorkPerByte: 2,
	}
}

// Name implements mapreduce.AppModel.
func (a *WordCount) Name() string { return "wordcount" }

// MapWork returns tokenization work proportional to the shard.
func (a *WordCount) MapWork(shardBytes float64) float64 { return a.MapWorkPerByte * shardBytes }

// MapOutputBytes returns the count-table size: at most one entry per
// dictionary word, whatever the shard size.
func (a *WordCount) MapOutputBytes(shardBytes float64) float64 {
	return math.Min(shardBytes, DictionarySize*a.EntryBytes)
}

// MergeWork returns the fixed setup plus the (bounded) table merge.
func (a *WordCount) MergeWork(total float64) float64 {
	return a.MergeSetupWork + a.MergeWorkPerByte*total
}

// ReduceWork returns zero (counting finishes in the merge).
func (a *WordCount) ReduceWork(float64) float64 { return 0 }

// Sort is the HiBench Sort micro benchmark: map output equals input, and
// the single reducer merges *all* data serially — the canonical
// in-proportion workload. Ws(n) grows linearly with n, making IN(n) linear
// and the speedup upper-bounded (type IIIt,1) even though the workload is
// fixed-time, which Gustafson's law cannot capture.
type Sort struct {
	MapWorkPerByte   float64 // per-shard local sort
	MergeSetupWork   float64 // fixed reducer startup
	MergeWorkPerByte float64 // serial n-way merge over all data
}

// NewSort returns the calibrated Sort model (≈18.8 s map tasks, 8 s merge
// setup, ≈2.7 s merge per shard).
func NewSort() *Sort {
	return &Sort{
		MapWorkPerByte:   14,
		MergeSetupWork:   8e8,
		MergeWorkPerByte: 2,
	}
}

// Name implements mapreduce.AppModel.
func (a *Sort) Name() string { return "sort" }

// MapWork returns the per-shard sorting work.
func (a *Sort) MapWork(shardBytes float64) float64 { return a.MapWorkPerByte * shardBytes }

// MapOutputBytes returns the full shard: sorting preserves data size.
func (a *Sort) MapOutputBytes(shardBytes float64) float64 { return shardBytes }

// MergeWork returns the serial merge over the entire working set.
func (a *Sort) MergeWork(total float64) float64 {
	return a.MergeSetupWork + a.MergeWorkPerByte*total
}

// ReduceWork returns zero (the merge produces the sorted output).
func (a *Sort) ReduceWork(float64) float64 { return 0 }

// StreamingMerge reports that Sort's identity reduce merges sorted runs
// as a stream, never materializing the working set in reducer memory —
// which is why the paper observes no memory-overflow step for Sort
// (contrast TeraSort, Fig. 5).
func (a *Sort) StreamingMerge() bool { return true }

// TeraSort sorts TeraGen records. It behaves like Sort but with a larger
// fixed merge setup and cheaper map work, and — crucially — its linearly
// growing input overflows the preconfigured ≈2 GB reducer memory around
// n≈15, adding disk-spill I/O that steps the IN(n) slope up (Fig. 5) and
// bounds the speedup near 3 (Fig. 4d).
type TeraSort struct {
	MapWorkPerByte   float64
	MergeSetupWork   float64
	MergeWorkPerByte float64
}

// NewTeraSort returns the calibrated TeraSort model (≈10.7 s map tasks,
// 20 s merge setup, ≈2 s merge per shard).
func NewTeraSort() *TeraSort {
	return &TeraSort{
		MapWorkPerByte:   8,
		MergeSetupWork:   2e9,
		MergeWorkPerByte: 1.5,
	}
}

// Name implements mapreduce.AppModel.
func (a *TeraSort) Name() string { return "terasort" }

// MapWork returns the per-shard sorting work.
func (a *TeraSort) MapWork(shardBytes float64) float64 { return a.MapWorkPerByte * shardBytes }

// MapOutputBytes returns the full shard.
func (a *TeraSort) MapOutputBytes(shardBytes float64) float64 { return shardBytes }

// MergeWork returns the serial merge over the entire working set. The
// disk-spill cost of exceeding reducer memory is charged by the engine's
// memory model, not here.
func (a *TeraSort) MergeWork(total float64) float64 {
	return a.MergeSetupWork + a.MergeWorkPerByte*total
}

// ReduceWork returns zero.
func (a *TeraSort) ReduceWork(float64) float64 { return 0 }
