package workload

import (
	"math"
	"math/rand"
	"testing"
)

func alsConfig() ALSConfig {
	return ALSConfig{Users: 40, Items: 25, Rank: 4, Iterations: 12, Lambda: 0.02, Seed: 7}
}

// syntheticRatings builds ratings from a planted rank-k model so ALS has
// something learnable.
func syntheticRatings(users, items, rank, count int, seed int64) []Rating {
	rng := rand.New(rand.NewSource(seed))
	uf := randomFeatures(rng, users, rank)
	vf := randomFeatures(rng, items, rank)
	out := make([]Rating, count)
	for i := range out {
		u, v := rng.Intn(users), rng.Intn(items)
		s := 0.0
		for k := 0; k < rank; k++ {
			s += uf[u][k] * vf[v][k]
		}
		out[i] = Rating{User: u, Item: v, Score: s}
	}
	return out
}

func TestTrainALSValidation(t *testing.T) {
	ratings := []Rating{{User: 0, Item: 0, Score: 3}}
	tests := []struct {
		name   string
		mutate func(*ALSConfig)
	}{
		{name: "zero users", mutate: func(c *ALSConfig) { c.Users = 0 }},
		{name: "zero rank", mutate: func(c *ALSConfig) { c.Rank = 0 }},
		{name: "zero iterations", mutate: func(c *ALSConfig) { c.Iterations = 0 }},
		{name: "zero lambda", mutate: func(c *ALSConfig) { c.Lambda = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := alsConfig()
			tt.mutate(&cfg)
			if _, err := TrainALS(ratings, cfg); err == nil {
				t.Error("expected validation error")
			}
		})
	}
	if _, err := TrainALS(nil, alsConfig()); err == nil {
		t.Error("empty ratings should error")
	}
	if _, err := TrainALS([]Rating{{User: 99, Item: 0, Score: 1}}, alsConfig()); err == nil {
		t.Error("out-of-range rating should error")
	}
}

func TestTrainALSLearnsPlantedModel(t *testing.T) {
	cfg := alsConfig()
	ratings := syntheticRatings(cfg.Users, cfg.Items, cfg.Rank, 600, 3)
	m, err := TrainALS(ratings, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rmse, err := m.RMSE(ratings)
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 0.12 {
		t.Errorf("RMSE %g, want < 0.12 on a planted rank-%d model", rmse, cfg.Rank)
	}
	// Sanity floor: the factorization must beat the best constant
	// predictor by a wide margin.
	scores := make([]float64, len(ratings))
	for i, r := range ratings {
		scores[i] = r.Score
	}
	if base := stddev(scores); rmse > base/3 {
		t.Errorf("RMSE %g vs constant-predictor baseline %g", rmse, base)
	}
}

func stddev(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return math.Sqrt(v / float64(len(xs)))
}

func TestTrainALSIterationsImproveFit(t *testing.T) {
	cfg := alsConfig()
	ratings := syntheticRatings(cfg.Users, cfg.Items, cfg.Rank, 600, 3)
	cfg.Iterations = 1
	one, err := TrainALS(ratings, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Iterations = 8
	eight, err := TrainALS(ratings, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := one.RMSE(ratings)
	r8, _ := eight.RMSE(ratings)
	if r8 >= r1 {
		t.Errorf("more alternating iterations should lower RMSE: 1 it → %g, 8 it → %g", r1, r8)
	}
}

func TestTrainALSWorkerCountInvariance(t *testing.T) {
	// The parallel degree must not change the result (same barrier
	// structure as the paper's CF app): the per-row solves are
	// independent within a round.
	cfg := alsConfig()
	ratings := syntheticRatings(cfg.Users, cfg.Items, cfg.Rank, 400, 9)
	cfg.Workers = 1
	serial, err := TrainALS(ratings, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	parallel, err := TrainALS(ratings, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := serial.RMSE(ratings)
	rp, _ := parallel.RMSE(ratings)
	if diff := rs - rp; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("worker count changed the result: RMSE %g vs %g", rs, rp)
	}
}

func TestALSPredictErrors(t *testing.T) {
	cfg := alsConfig()
	ratings := syntheticRatings(cfg.Users, cfg.Items, cfg.Rank, 100, 1)
	m, err := TrainALS(ratings, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict(-1, 0); err == nil {
		t.Error("negative user should error")
	}
	if _, err := m.Predict(0, 999); err == nil {
		t.Error("out-of-range item should error")
	}
	if _, err := m.RMSE(nil); err == nil {
		t.Error("empty RMSE input should error")
	}
}
