package workload

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestDictionary(t *testing.T) {
	dict := Dictionary()
	if len(dict) != DictionarySize {
		t.Fatalf("dictionary size %d, want %d", len(dict), DictionarySize)
	}
	seen := make(map[string]bool, len(dict))
	for _, w := range dict {
		if w == "" {
			t.Fatal("empty word in dictionary")
		}
		if seen[w] {
			t.Fatalf("duplicate word %q", w)
		}
		seen[w] = true
	}
	// Deterministic across calls and safely mutable by callers.
	again := Dictionary()
	if !reflect.DeepEqual(dict, again) {
		t.Error("dictionary not deterministic")
	}
	again[0] = "mutated"
	if Dictionary()[0] == "mutated" {
		t.Error("Dictionary must return a fresh slice")
	}
}

func TestTextLines(t *testing.T) {
	lines, err := TextLines(10, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 10 {
		t.Fatalf("lines = %d, want 10", len(lines))
	}
	dict := make(map[string]bool)
	for _, w := range Dictionary() {
		dict[w] = true
	}
	for _, line := range lines {
		words := strings.Fields(line)
		if len(words) != 5 {
			t.Fatalf("line %q has %d words, want 5", line, len(words))
		}
		for _, w := range words {
			if !dict[w] {
				t.Fatalf("word %q not from dictionary", w)
			}
		}
	}
	same, _ := TextLines(10, 5, 42)
	if !reflect.DeepEqual(lines, same) {
		t.Error("TextLines not deterministic per seed")
	}
	other, _ := TextLines(10, 5, 43)
	if reflect.DeepEqual(lines, other) {
		t.Error("different seeds should give different text")
	}
}

func TestTextLinesErrors(t *testing.T) {
	if _, err := TextLines(-1, 5, 1); err == nil {
		t.Error("negative lines should error")
	}
	if _, err := TextLines(1, 0, 1); err == nil {
		t.Error("zero words per line should error")
	}
}

func TestTeraGen(t *testing.T) {
	recs, err := TeraGen(100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 100 {
		t.Fatalf("records = %d, want 100", len(recs))
	}
	for _, r := range recs {
		if len(r.Key) != 10 || len(r.Payload) != 90 {
			t.Fatalf("record sizes key=%d payload=%d, want 10/90", len(r.Key), len(r.Payload))
		}
	}
	same, _ := TeraGen(100, 7)
	if !reflect.DeepEqual(recs, same) {
		t.Error("TeraGen not deterministic per seed")
	}
	if _, err := TeraGen(-1, 0); err == nil {
		t.Error("negative count should error")
	}
}

func TestQMCEstimatePi(t *testing.T) {
	pi, err := QMCEstimatePi(200000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi-math.Pi) > 0.01 {
		t.Errorf("π estimate %g too far from %g", pi, math.Pi)
	}
	if _, err := QMCEstimatePi(0, 1); err == nil {
		t.Error("zero samples should error")
	}
}

func TestQMCConvergesWithSamples(t *testing.T) {
	coarse, _ := QMCEstimatePi(1000, 3)
	fine, _ := QMCEstimatePi(500000, 3)
	if math.Abs(fine-math.Pi) > math.Abs(coarse-math.Pi)+1e-4 {
		t.Errorf("QMC did not converge: |%g−π| vs |%g−π|", coarse, fine)
	}
}

func TestRatings(t *testing.T) {
	rs, err := Ratings(50, 20, 500, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.User < 0 || r.User >= 50 || r.Item < 0 || r.Item >= 20 {
			t.Fatalf("rating out of range: %+v", r)
		}
		if r.Score < 1 || r.Score > 5 {
			t.Fatalf("score out of [1,5]: %+v", r)
		}
	}
	if _, err := Ratings(0, 1, 1, 1); err == nil {
		t.Error("zero users should error")
	}
}

func TestGraph(t *testing.T) {
	edges, err := Graph(100, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 400 {
		t.Fatalf("edges = %d, want 400", len(edges))
	}
	for _, e := range edges {
		if e.From < 0 || e.From >= 100 || e.To < 0 || e.To >= 100 {
			t.Fatalf("edge endpoint out of range: %+v", e)
		}
	}
	if _, err := Graph(0, 1, 1); err == nil {
		t.Error("zero nodes should error")
	}
}

// Property: generated text line counts and word counts always match the
// request for valid shapes.
func TestTextLinesShapeProperty(t *testing.T) {
	f := func(linesRaw, wordsRaw uint8, seed int64) bool {
		lines := int(linesRaw % 20)
		words := int(wordsRaw%10) + 1
		out, err := TextLines(lines, words, seed)
		if err != nil || len(out) != lines {
			return false
		}
		for _, l := range out {
			if len(strings.Fields(l)) != words {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
