package workload

// TableIRow is one row of the paper's Table I: the measured external and
// scale-out-induced workloads of the Collaborative Filtering application,
// converted by the authors from the experimental histograms of [12].
type TableIRow struct {
	N       int     // scale-out degree
	MaxTask float64 // E[max{Tp,i(n)}] in seconds
	Wo      float64 // scale-out-induced workload in seconds
}

// PaperTableI returns the published Table I data. The experiment harness
// uses it both as ground truth for the Fig. 8 reconstruction and as the
// reference the simulated Collaborative Filtering run is validated
// against.
func PaperTableI() []TableIRow {
	return []TableIRow{
		{N: 10, MaxTask: 209.0, Wo: 5.5},
		{N: 30, MaxTask: 79.3, Wo: 17.7},
		{N: 60, MaxTask: 43.7, Wo: 36.0},
		{N: 90, MaxTask: 31.1, Wo: 54.3},
	}
}

// PaperCFSeqTime is E[Tp,1(1)] = 1602.5 s, the sequential split-phase time
// the paper obtains by extrapolating the matched curve of Fig. 8(a) to
// n = 1.
const PaperCFSeqTime = 1602.5
