package workload

import (
	"math"
	"testing"
)

func TestTrainBayesValidation(t *testing.T) {
	if _, err := TrainBayes(nil); err == nil {
		t.Error("empty corpus should error")
	}
	if _, err := TrainBayes([]Document{{Label: "", Text: "x"}}); err == nil {
		t.Error("unlabeled document should error")
	}
	if _, err := TrainBayes([]Document{{Label: "a", Text: "   "}}); err == nil {
		t.Error("tokenless corpus should error")
	}
}

func TestBayesLearnsSeparableCorpus(t *testing.T) {
	train, err := LabeledTextLines(100, 12, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	test, err := LabeledTextLines(40, 12, 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := TrainBayes(train)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := c.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Errorf("accuracy %g on a nearly separable corpus, want >= 0.95", acc)
	}
	if c.VocabularySize() == 0 || c.VocabularySize() > DictionarySize {
		t.Errorf("vocabulary size %d out of range", c.VocabularySize())
	}
}

func TestBayesNoiseDegradesAccuracy(t *testing.T) {
	clean, err := LabeledTextLines(80, 10, 0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := LabeledTextLines(80, 10, 0.45, 3)
	if err != nil {
		t.Fatal(err)
	}
	cClean, err := TrainBayes(clean)
	if err != nil {
		t.Fatal(err)
	}
	cNoisy, err := TrainBayes(noisy)
	if err != nil {
		t.Fatal(err)
	}
	aClean, _ := cClean.Accuracy(clean)
	aNoisy, _ := cNoisy.Accuracy(noisy)
	if aNoisy >= aClean {
		t.Errorf("noise should reduce accuracy: clean %g vs noisy %g", aClean, aNoisy)
	}
}

func TestBayesClassifyErrors(t *testing.T) {
	var c BayesClassifier
	if _, err := c.Classify("anything"); err == nil {
		t.Error("untrained classifier should error")
	}
	trained, err := TrainBayes([]Document{{Label: "a", Text: "x y"}, {Label: "b", Text: "z w"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trained.Accuracy(nil); err == nil {
		t.Error("empty scoring set should error")
	}
}

func TestLabeledTextLinesValidation(t *testing.T) {
	if _, err := LabeledTextLines(0, 5, 0, 1); err == nil {
		t.Error("zero docs should error")
	}
	if _, err := LabeledTextLines(5, 5, 1.5, 1); err == nil {
		t.Error("noise > 1 should error")
	}
}

func TestNWeightsPathGraph(t *testing.T) {
	// 0 →(0.5) 1 →(0.4) 2: two-hop weight of 2 from 0 is 0.2.
	edges := []Edge{{From: 0, To: 1, Weight: 0.5}, {From: 1, To: 2, Weight: 0.4}}
	fr, err := NWeights(edges, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if w := fr[0][2]; math.Abs(w-0.2) > 1e-12 {
		t.Errorf("2-hop weight 0→2 = %g, want 0.2", w)
	}
	if len(fr[2]) != 0 {
		t.Errorf("sink node should have an empty 2-hop frontier, got %v", fr[2])
	}
}

func TestNWeightsMultiplePaths(t *testing.T) {
	// Two 2-step paths 0→1→3 (0.5·0.2) and 0→2→3 (0.5·0.6) sum to 0.4.
	edges := []Edge{
		{From: 0, To: 1, Weight: 0.5},
		{From: 0, To: 2, Weight: 0.5},
		{From: 1, To: 3, Weight: 0.2},
		{From: 2, To: 3, Weight: 0.6},
	}
	fr, err := NWeights(edges, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if w := fr[0][3]; math.Abs(w-0.4) > 1e-12 {
		t.Errorf("2-hop weight 0→3 = %g, want 0.4", w)
	}
}

func TestNWeightsValidation(t *testing.T) {
	if _, err := NWeights(nil, 0, 1); err == nil {
		t.Error("zero nodes should error")
	}
	if _, err := NWeights(nil, 2, 0); err == nil {
		t.Error("zero hops should error")
	}
	if _, err := NWeights([]Edge{{From: 9, To: 0}}, 2, 1); err == nil {
		t.Error("out-of-range edge should error")
	}
	if _, err := NWeights([]Edge{{From: 0, To: 1, Weight: -1}}, 2, 1); err == nil {
		t.Error("negative weight should error")
	}
}

func TestNWeightsFrontierGrowsPerHop(t *testing.T) {
	// On a random graph the frontier (shuffle volume) grows with hops —
	// the property the simulated NWeight stage shuffle encodes.
	edges, err := Graph(200, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := NWeights(edges, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := NWeights(edges, 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := FrontierSize(f1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := FrontierSize(f2)
	if err != nil {
		t.Fatal(err)
	}
	if s2 <= s1 {
		t.Errorf("2-hop frontier (%d) should exceed 1-hop (%d)", s2, s1)
	}
	if _, err := FrontierSize(nil); err == nil {
		t.Error("nil frontier should error")
	}
}
