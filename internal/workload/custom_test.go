package workload

import (
	"strings"
	"testing"

	"ipso/internal/mapreduce"
	"ipso/internal/spark"
)

const sortLikeJSON = `{
  "name": "my-sort",
  "map_work_per_byte": 14,
  "output_fraction": 1,
  "merge_setup_work": 8e8,
  "merge_work_per_byte": 2,
  "streaming_merge": true
}`

func TestParseCustomMR(t *testing.T) {
	c, err := ParseCustomMR(strings.NewReader(sortLikeJSON))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "my-sort" {
		t.Errorf("name %q", c.Name())
	}
	if got := c.MapWork(10); got != 140 {
		t.Errorf("MapWork(10) = %g, want 140", got)
	}
	if got := c.MapOutputBytes(10); got != 10 {
		t.Errorf("MapOutputBytes(10) = %g, want 10", got)
	}
	if !c.StreamingMerge() {
		t.Error("streaming flag lost")
	}
	// Behaves identically to the built-in Sort model.
	builtin := NewSort()
	if c.MergeWork(1e9) != builtin.MergeWork(1e9) {
		t.Errorf("merge work differs from built-in Sort")
	}
	var _ mapreduce.AppModel = c
	var _ mapreduce.StreamingMerger = c
}

func TestCustomMRCapAndFixedWork(t *testing.T) {
	c, err := ParseCustomMR(strings.NewReader(`{
	  "name": "qmc-like",
	  "map_work_fixed": 1.5e9,
	  "output_fraction": 1,
	  "output_bytes_cap": 16
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.MapWork(1) != c.MapWork(1e12) {
		t.Error("fixed work must not scale with the shard")
	}
	if got := c.MapOutputBytes(1e9); got != 16 {
		t.Errorf("capped output %g, want 16", got)
	}
	if got := c.MapOutputBytes(8); got != 8 {
		t.Errorf("small shard output %g, want 8", got)
	}
}

func TestParseCustomMRErrors(t *testing.T) {
	cases := []string{
		`{`,                                   // malformed
		`{"name":""}`,                         // unnamed
		`{"name":"x"}`,                        // no work
		`{"name":"x","map_work_per_byte":-1}`, // negative
		`{"name":"x","map_work_per_byte":1,"output_fraction":2}`, // fraction
		`{"name":"x","map_work_per_byte":1,"bogus":1}`,           // unknown field
	}
	for _, raw := range cases {
		if _, err := ParseCustomMR(strings.NewReader(raw)); err == nil {
			t.Errorf("ParseCustomMR(%s) should fail", raw)
		}
	}
}

const svmLikeJSON = `{
  "name": "my-svm",
  "stages": [
    {"name": "gradient", "work_per_byte": 4, "broadcast_bytes": 32e6, "driver_work": 3e8}
  ]
}`

func TestParseCustomSpark(t *testing.T) {
	c, err := ParseCustomSpark(strings.NewReader(svmLikeJSON))
	if err != nil {
		t.Fatal(err)
	}
	stages := c.Stages(16, 1000)
	if len(stages) != 1 || stages[0].Tasks != 16 {
		t.Fatalf("stages %+v", stages)
	}
	if stages[0].WorkPerTask != 4000 || stages[0].BroadcastBytes != 32e6 {
		t.Errorf("stage fields wrong: %+v", stages[0])
	}
	var _ spark.AppModel = c

	// The custom model runs end to end through the engine.
	s, _, _, err := spark.Speedup(SparkConfig(c, 16, 4))
	if err != nil {
		t.Fatal(err)
	}
	if s <= 1 || s > 4 {
		t.Errorf("custom-model speedup %g out of (1, 4]", s)
	}
}

func TestParseCustomSparkErrors(t *testing.T) {
	cases := []string{
		`{`,
		`{"name":"", "stages":[{"name":"s","work_per_byte":1}]}`,
		`{"name":"x", "stages":[]}`,
		`{"name":"x", "stages":[{"name":"s","work_per_byte":0}]}`,
		`{"name":"x", "stages":[{"name":"s","work_per_byte":1,"driver_work":-1}]}`,
	}
	for _, raw := range cases {
		if _, err := ParseCustomSpark(strings.NewReader(raw)); err == nil {
			t.Errorf("ParseCustomSpark(%s) should fail", raw)
		}
	}
}
