package experiment

import (
	"context"
	"testing"
)

func TestProvisioningReport(t *testing.T) {
	rep, err := Provisioning(context.Background(), caseSweeps(t), 0.4, 200)
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows
	if len(rows) != 5 { // four MR apps + CF
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	byApp := make(map[string][]string, len(rows))
	for _, r := range rows {
		byApp[r[0]] = r
	}
	// CF must report a hard scale-out limit near the Fig. 8 peak.
	cf := byApp["collaborative-filtering"]
	if cf[5] == "none" {
		t.Error("CF must have a hard scale-out limit (IVs)")
	} else if l := parseF(t, cf[5]); l < 40 || l > 70 {
		t.Errorf("CF hard limit %g, want ≈52-60", l)
	}
	// The near-linear apps have no hard limit and choose large n.
	for _, app := range []string{"qmc-pi", "wordcount"} {
		if byApp[app][5] != "none" {
			t.Errorf("%s should have no hard limit, got %q", app, byApp[app][5])
		}
	}
	// The bounded apps (Sort/TeraSort) are not cost-effective to scale:
	// the speedup-per-dollar optimum stays tiny.
	for _, app := range []string{"sort", "terasort"} {
		if n := parseF(t, byApp[app][1]); n > 4 {
			t.Errorf("%s best-$ n = %g, want small (bounded speedup, cost ∝ n)", app, n)
		}
	}
	if _, err := Provisioning(context.Background(), caseSweeps(t), 0, 200); err == nil {
		t.Error("invalid price should error")
	}
}
