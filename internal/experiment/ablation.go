package experiment

import (
	"fmt"

	"ipso/internal/cluster"
	"ipso/internal/mapreduce"
	"ipso/internal/spark"
	"ipso/internal/stats"
	"ipso/internal/workload"
)

// AblationBroadcast contrasts the serialized master broadcast (the
// mechanism behind the CF case's γ = 2 pathology) with an idealized
// parallel broadcast: with the same workload, the parallel broadcast
// removes the peak-and-fall behavior.
func AblationBroadcast(ns []int) (Report, error) {
	rep := Report{ID: "ablation-broadcast", Title: "CF speedup: serialized vs idealized parallel broadcast"}
	cf := workload.NewCollaborativeFiltering()
	for _, mode := range []cluster.BroadcastMode{cluster.BroadcastSerial, cluster.BroadcastParallel} {
		name := "serial"
		if mode == cluster.BroadcastParallel {
			name = "parallel"
		}
		xs := make([]float64, 0, len(ns))
		ys := make([]float64, 0, len(ns))
		for _, n := range ns {
			cfg := workload.CFConfig(cf, n)
			cfg.Cluster.Broadcast = mode
			s, _, _, err := spark.Speedup(cfg)
			if err != nil {
				return Report{}, fmt.Errorf("experiment: CF %s broadcast n=%d: %w", name, n, err)
			}
			xs = append(xs, float64(n))
			ys = append(ys, s)
		}
		rep.Series = append(rep.Series, Series{Name: "cf/broadcast-" + name, X: xs, Y: ys})
	}
	return rep, nil
}

// AblationReducerMemory sweeps the reducer memory bound and reports where
// TeraSort's IN(n) step lands: the overflow point moves with the memory
// size (memory/blockSize), demonstrating the Fig. 5 mechanism.
func AblationReducerMemory(ns []int, memories []float64) (Report, error) {
	rep := Report{ID: "ablation-memory", Title: "TeraSort IN(n) step location vs reducer memory"}
	tbl := Table{
		Title:   "detected IN(n) breakpoints",
		Headers: []string{"reducer memory (GB)", "expected overflow n", "detected break n"},
	}
	app := workload.NewTeraSort()
	for _, mem := range memories {
		if mem <= 0 {
			return Report{}, fmt.Errorf("experiment: invalid memory %g", mem)
		}
		var xs, in []float64
		var wsSeries []float64
		for _, n := range ns {
			cfg := MRConfig(app, n)
			cfg.ReducerMemoryBytes = mem
			par, err := mapreduce.RunParallel(cfg)
			if err != nil {
				return Report{}, err
			}
			_, ws, _, _ := PhasesFromLog(par.Log)
			xs = append(xs, float64(n))
			wsSeries = append(wsSeries, ws)
		}
		var err error
		in, err = normalizeToFirstUnit(xs, wsSeries)
		if err != nil {
			return Report{}, err
		}
		step, err := stats.FitPiecewiseLinear(xs, in)
		detected := "none"
		if err == nil && stepIsReal(step) {
			detected = fmt.Sprintf("%.0f", step.Break)
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%.1f", mem/(1<<30)),
			fmt.Sprintf("%.0f", mem/cluster.BlockBytes),
			detected,
		})
		rep.Series = append(rep.Series, Series{
			Name: fmt.Sprintf("terasort/IN@%.1fGB", mem/(1<<30)),
			X:    xs, Y: in,
		})
	}
	rep.Tables = append(rep.Tables, tbl)
	return rep, nil
}

// AblationStatistic contrasts the deterministic model with straggler-
// afflicted executions: multiplicative task-time jitter (mean 1) lowers
// the measured speedup through E[max{Tp,i(n)}] — the effect the statistic
// IPSO model (Eq. 8) captures and the deterministic one ignores.
func AblationStatistic(ns []int) (Report, error) {
	rep := Report{ID: "ablation-statistic", Title: "Sort speedup: deterministic vs straggler task times"}
	app := workload.NewSort()
	jitters := []struct {
		name string
		dist stats.Distribution
	}{
		{name: "deterministic", dist: nil},
		{name: "uniform±30%", dist: stats.Uniform{Low: 0.7, High: 1.3}},
		{name: "pareto-stragglers", dist: stats.Scaled{
			// Truncated Pareto with mean ≈ 1: occasional 3× stragglers.
			Base:   stats.TruncatedPareto{Xm: 1, Alpha: 2.2, Cap: 4},
			Factor: 1 / stats.TruncatedPareto{Xm: 1, Alpha: 2.2, Cap: 4}.Mean(),
		}},
	}
	for _, j := range jitters {
		xs := make([]float64, 0, len(ns))
		ys := make([]float64, 0, len(ns))
		for _, n := range ns {
			cfg := MRConfig(app, n)
			cfg.Jitter = j.dist
			cfg.Seed = 7
			s, _, _, err := mapreduce.Speedup(cfg)
			if err != nil {
				return Report{}, fmt.Errorf("experiment: sort %s n=%d: %w", j.name, n, err)
			}
			xs = append(xs, float64(n))
			ys = append(ys, s)
		}
		rep.Series = append(rep.Series, Series{Name: "sort/" + j.name, X: xs, Y: ys})
	}
	return rep, nil
}

func normalizeToFirstUnit(ns, ws []float64) ([]float64, error) {
	if len(ns) == 0 || ws[0] <= 0 {
		return nil, fmt.Errorf("experiment: cannot normalize series (first value %g)", ws[0])
	}
	base := ws[0]
	if ns[0] != 1 {
		// Extrapolate to n=1 from the first two points.
		if len(ns) < 2 {
			return nil, fmt.Errorf("experiment: need n=1 or two points")
		}
		slope := (ws[1] - ws[0]) / (ns[1] - ns[0])
		base = ws[0] - slope*(ns[0]-1)
	}
	out := make([]float64, len(ws))
	for i := range ws {
		out[i] = ws[i] / base
	}
	return out, nil
}

func stepIsReal(step stats.PiecewiseLinear) bool {
	scale := step.Left.Slope
	if step.Right.Slope > scale {
		scale = step.Right.Slope
	}
	return scale > 0 && (step.Right.Slope-step.Left.Slope) > 0.15*scale
}
