package experiment

import (
	"context"
	"fmt"

	"ipso/internal/cluster"
	"ipso/internal/mapreduce"
	"ipso/internal/runner"
	"ipso/internal/spark"
	"ipso/internal/stats"
	"ipso/internal/workload"
)

// AblationBroadcast contrasts the serialized master broadcast (the
// mechanism behind the CF case's γ = 2 pathology) with an idealized
// parallel broadcast: with the same workload, the parallel broadcast
// removes the peak-and-fall behavior.
func AblationBroadcast(ctx context.Context, ns []int) (Report, error) {
	rep := Report{ID: "ablation-broadcast", Title: "CF speedup: serialized vs idealized parallel broadcast"}
	cf := workload.NewCollaborativeFiltering()
	modes := []cluster.BroadcastMode{cluster.BroadcastSerial, cluster.BroadcastParallel}
	ys, err := runner.Map(ctx, len(modes)*len(ns), func(_ context.Context, i int) (float64, error) {
		mode := modes[i/len(ns)]
		n := ns[i%len(ns)]
		cfg := workload.CFConfig(cf, n)
		cfg.Cluster.Broadcast = mode
		s, _, _, err := spark.Speedup(cfg)
		if err != nil {
			return 0, fmt.Errorf("experiment: CF broadcast mode %d n=%d: %w", mode, n, err)
		}
		return s, nil
	})
	if err != nil {
		return Report{}, err
	}
	xs := make([]float64, len(ns))
	for j, n := range ns {
		xs[j] = float64(n)
	}
	for m, mode := range modes {
		name := "serial"
		if mode == cluster.BroadcastParallel {
			name = "parallel"
		}
		rep.Series = append(rep.Series, Series{Name: "cf/broadcast-" + name, X: xs, Y: ys[m*len(ns) : (m+1)*len(ns)]})
	}
	return rep, nil
}

// AblationReducerMemory sweeps the reducer memory bound and reports where
// TeraSort's IN(n) step lands: the overflow point moves with the memory
// size (memory/blockSize), demonstrating the Fig. 5 mechanism.
func AblationReducerMemory(ctx context.Context, ns []int, memories []float64) (Report, error) {
	rep := Report{ID: "ablation-memory", Title: "TeraSort IN(n) step location vs reducer memory"}
	tbl := Table{
		Title:   "detected IN(n) breakpoints",
		Headers: []string{"reducer memory (GB)", "expected overflow n", "detected break n"},
	}
	app := workload.NewTeraSort()
	for _, mem := range memories {
		if mem <= 0 {
			return Report{}, fmt.Errorf("experiment: invalid memory %g", mem)
		}
	}
	allWs, err := runner.Map(ctx, len(memories)*len(ns), func(_ context.Context, i int) (float64, error) {
		cfg := MRConfig(app, ns[i%len(ns)])
		cfg.ReducerMemoryBytes = memories[i/len(ns)]
		par, err := mapreduce.RunParallel(cfg)
		if err != nil {
			return 0, err
		}
		_, ws, _, _ := PhasesFromLog(par.Log)
		return ws, nil
	})
	if err != nil {
		return Report{}, err
	}
	for mi, mem := range memories {
		xs := make([]float64, len(ns))
		for j, n := range ns {
			xs[j] = float64(n)
		}
		wsSeries := allWs[mi*len(ns) : (mi+1)*len(ns)]
		in, err := normalizeToFirstUnit(xs, wsSeries)
		if err != nil {
			return Report{}, err
		}
		step, err := stats.FitPiecewiseLinear(xs, in)
		detected := "none"
		if err == nil && stepIsReal(step) {
			detected = fmt.Sprintf("%.0f", step.Break)
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%.1f", mem/(1<<30)),
			fmt.Sprintf("%.0f", mem/cluster.BlockBytes),
			detected,
		})
		rep.Series = append(rep.Series, Series{
			Name: fmt.Sprintf("terasort/IN@%.1fGB", mem/(1<<30)),
			X:    xs, Y: in,
		})
	}
	rep.Tables = append(rep.Tables, tbl)
	return rep, nil
}

// AblationStatistic contrasts the deterministic model with straggler-
// afflicted executions: multiplicative task-time jitter (mean 1) lowers
// the measured speedup through E[max{Tp,i(n)}] — the effect the statistic
// IPSO model (Eq. 8) captures and the deterministic one ignores.
// statisticReps is how many independent straggler draws each stochastic
// point averages — the paper's "average results of multiple experimental
// runs". A single draw is too noisy: sequential-sum luck can outweigh
// the E[max] inflation when serial work dominates the makespan.
const statisticReps = 16

// Each (jitter, n, replicate) run draws its RNG seed from the root seed
// and its grid position, so the curves are identical however the points
// are scheduled across workers.
func AblationStatistic(ctx context.Context, ns []int, rootSeed int64) (Report, error) {
	rep := Report{ID: "ablation-statistic", Title: "Sort speedup: deterministic vs straggler task times"}
	app := workload.NewSort()
	jitters := []struct {
		name string
		dist stats.Distribution
	}{
		{name: "deterministic", dist: nil},
		{name: "uniform±30%", dist: stats.Uniform{Low: 0.7, High: 1.3}},
		{name: "pareto-stragglers", dist: stats.Scaled{
			// Truncated Pareto with mean ≈ 1: occasional 3× stragglers.
			Base:   stats.TruncatedPareto{Xm: 1, Alpha: 2.2, Cap: 4},
			Factor: 1 / stats.TruncatedPareto{Xm: 1, Alpha: 2.2, Cap: 4}.Mean(),
		}},
	}
	ys, err := runner.Map(ctx, len(jitters)*len(ns), func(_ context.Context, i int) (float64, error) {
		j := jitters[i/len(ns)]
		n := ns[i%len(ns)]
		reps := statisticReps
		if j.dist == nil {
			reps = 1 // no randomness to average over
		}
		total := 0.0
		for r := 0; r < reps; r++ {
			cfg := MRConfig(app, n)
			cfg.Jitter = j.dist
			cfg.Seed = runner.TaskSeed(rootSeed, i*statisticReps+r)
			s, _, _, err := mapreduce.Speedup(cfg)
			if err != nil {
				return 0, fmt.Errorf("experiment: sort %s n=%d: %w", j.name, n, err)
			}
			total += s
		}
		return total / float64(reps), nil
	})
	if err != nil {
		return Report{}, err
	}
	xs := make([]float64, len(ns))
	for j, n := range ns {
		xs[j] = float64(n)
	}
	for ji, j := range jitters {
		rep.Series = append(rep.Series, Series{Name: "sort/" + j.name, X: xs, Y: ys[ji*len(ns) : (ji+1)*len(ns)]})
	}
	return rep, nil
}

func normalizeToFirstUnit(ns, ws []float64) ([]float64, error) {
	if len(ns) == 0 || ws[0] <= 0 {
		return nil, fmt.Errorf("experiment: cannot normalize series (first value %g)", ws[0])
	}
	base := ws[0]
	if ns[0] != 1 {
		// Extrapolate to n=1 from the first two points.
		if len(ns) < 2 {
			return nil, fmt.Errorf("experiment: need n=1 or two points")
		}
		slope := (ws[1] - ws[0]) / (ns[1] - ns[0])
		base = ws[0] - slope*(ns[0]-1)
	}
	out := make([]float64, len(ws))
	for i := range ws {
		out[i] = ws[i] / base
	}
	return out, nil
}

func stepIsReal(step stats.PiecewiseLinear) bool {
	scale := step.Left.Slope
	if step.Right.Slope > scale {
		scale = step.Right.Slope
	}
	return scale > 0 && (step.Right.Slope-step.Left.Slope) > 0.15*scale
}
