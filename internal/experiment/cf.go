package experiment

import (
	"context"
	"fmt"

	"ipso/internal/core"
	"ipso/internal/runner"
	"ipso/internal/spark"
	"ipso/internal/stats"
	"ipso/internal/trace"
	"ipso/internal/workload"
)

// CFPoint is one measured operating point of the Collaborative Filtering
// case study: the Table I columns.
type CFPoint struct {
	N       int
	MaxTask float64 // per-iteration split-phase time E[max{Tp,i(n)}]
	Wo      float64 // per-iteration broadcast (scale-out-induced) time
	Speedup float64
}

// cfExtract reads the Table I columns out of a CF execution trace: the
// split-phase time is the sum over the iteration's stages of the slowest
// task (deserialization plus compute), and Wo is the total broadcast
// time.
func cfExtract(res spark.Result) (maxTask, wo float64) {
	for _, stage := range res.Log.Stages() {
		perTask := make(map[int]float64)
		for _, e := range res.Log.Events() {
			if e.Stage != stage || e.Task < 0 {
				continue
			}
			if e.Phase == trace.PhaseCompute || e.Phase == trace.PhaseDeser {
				perTask[e.Task] += e.Duration()
			}
		}
		stageMax := 0.0
		for _, d := range perTask {
			if d > stageMax {
				stageMax = d
			}
		}
		maxTask += stageMax
	}
	wo = res.Log.PhaseTotal(trace.PhaseBroadcast)
	return maxTask, wo
}

// RunCFSweep simulates Collaborative Filtering across the grid and
// measures the Table I columns plus the speedup. Grid points are
// independent and run on the context's worker pool in grid order.
func RunCFSweep(ctx context.Context, ns []int) ([]CFPoint, error) {
	cf := workload.NewCollaborativeFiltering()
	return runner.Map(ctx, len(ns), func(_ context.Context, i int) (CFPoint, error) {
		n := ns[i]
		if n < 1 {
			return CFPoint{}, fmt.Errorf("experiment: invalid n=%d", n)
		}
		cfg := workload.CFConfig(cf, n)
		s, par, _, err := spark.Speedup(cfg)
		if err != nil {
			return CFPoint{}, fmt.Errorf("experiment: CF at n=%d: %w", n, err)
		}
		maxTask, wo := cfExtract(par)
		return CFPoint{N: n, MaxTask: maxTask, Wo: wo, Speedup: s}, nil
	})
}

// TableI regenerates Table I: the simulated measurements side by side
// with the paper's published values.
func TableI(ctx context.Context) (Report, error) {
	rep := Report{ID: "table1", Title: "Measured external and scale-out-induced workloads for Collaborative Filtering"}
	paper := workload.PaperTableI()
	ns := make([]int, len(paper))
	for i, row := range paper {
		ns[i] = row.N
	}
	sim, err := RunCFSweep(ctx, ns)
	if err != nil {
		return Report{}, err
	}
	tbl := Table{
		Title:   "per-iteration workloads (seconds)",
		Headers: []string{"n", "E[max Tp,i(n)] sim", "E[max Tp,i(n)] paper", "Wo(n) sim", "Wo(n) paper"},
	}
	for i, row := range paper {
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", row.N),
			f2(sim[i].MaxTask), f2(row.MaxTask),
			f2(sim[i].Wo), f2(row.Wo),
		})
	}
	rep.Tables = append(rep.Tables, tbl)
	return rep, nil
}

// CFAnalysis reproduces the paper's Fig. 8 analysis pipeline from Table I
// style data: fit E[max{Tp,i(n)}] = a/n + b and Wo(n) = c·n^d by
// regression, extrapolate E[Tp,1(1)] = a + b, and derive γ from the Wo
// fit (q(n) = n·Wo/Wp ⇒ γ = d + 1).
type CFAnalysis struct {
	A, B  float64 // split-phase fit E[max] ≈ A/n + B
	WoFit stats.PowerFit
	Tp1   float64 // extrapolated E[Tp,1(1)]
	Gamma float64
	Beta  float64
}

// AnalyzeCF fits the CF scaling parameters from measured points.
func AnalyzeCF(points []CFPoint) (CFAnalysis, error) {
	if len(points) < 2 {
		return CFAnalysis{}, fmt.Errorf("experiment: need >= 2 CF points, got %d", len(points))
	}
	ns := make([]float64, len(points))
	maxes := make([]float64, len(points))
	wos := make([]float64, len(points))
	for i, p := range points {
		ns[i] = float64(p.N)
		maxes[i] = p.MaxTask
		wos[i] = p.Wo
	}
	a, b, err := stats.FitHyperbolic(ns, maxes)
	if err != nil {
		return CFAnalysis{}, fmt.Errorf("experiment: split-phase fit: %w", err)
	}
	woFit, err := stats.PowerLaw(ns, wos)
	if err != nil {
		return CFAnalysis{}, fmt.Errorf("experiment: Wo fit: %w", err)
	}
	tp1 := a + b
	// Wo(n) = Wp(1)/n·q(n) with Wp(1) = tp1 ⇒ q(n) = n·Wo(n)/tp1, so
	// q(n) ≈ (woFit.Coeff/tp1)·n^(exponent+1).
	return CFAnalysis{
		A: a, B: b, WoFit: woFit, Tp1: tp1,
		Gamma: woFit.Exponent + 1,
		Beta:  woFit.Coeff / tp1,
	}, nil
}

// Figure8 regenerates Fig. 8 from the paper's published Table I data:
// the measured speedup (Eq. 18 on the published columns), the IPSO
// speedup (Eq. 18 on the matched curves), and Amdahl's prediction, which
// for η = 1 is S(n) = n. A companion table reports the fitted parameters
// and the peak.
func Figure8(ctx context.Context, ns []float64) (Report, error) {
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}
	rep := Report{ID: "fig8", Title: "Collaborative Filtering: measured and IPSO speedups vs Amdahl's law"}

	// Published measurements → analysis (γ = 2 per the paper). The
	// sequential split-phase time uses the paper's own extrapolation
	// E[Tp,1(1)] = 1602.5 s so the reconstruction matches Fig. 8 exactly;
	// AnalyzeCF's a/n+b fit is the general-purpose alternative.
	points := make([]CFPoint, 0, 4)
	for _, row := range workload.PaperTableI() {
		points = append(points, CFPoint{N: row.N, MaxTask: row.MaxTask, Wo: row.Wo})
	}
	an, err := AnalyzeCF(points)
	if err != nil {
		return Report{}, err
	}
	an.Tp1 = workload.PaperCFSeqTime
	an.Beta = an.WoFit.Coeff / an.Tp1

	// Measured speedups at the Table I degrees (Eq. 18 on raw columns).
	measX := make([]float64, len(points))
	measY := make([]float64, len(points))
	for i, p := range points {
		s, err := core.CFSpeedup(an.Tp1, p.MaxTask, p.Wo)
		if err != nil {
			return Report{}, err
		}
		measX[i] = float64(p.N)
		measY[i] = s
	}
	rep.Series = append(rep.Series, Series{Name: "cf/measured", X: measX, Y: measY})

	// IPSO curve from the matched fits, and Amdahl's S(n) = n.
	ipso := make([]float64, len(ns))
	amdahl := make([]float64, len(ns))
	for i, n := range ns {
		s, err := core.CFSpeedup(an.Tp1, an.A/n+an.B, an.WoFit.Eval(n))
		if err != nil {
			return Report{}, err
		}
		ipso[i] = s
		amdahl[i] = n // η = 1: Amdahl predicts linear scaling
	}
	rep.Series = append(rep.Series,
		Series{Name: "cf/ipso", X: ns, Y: ipso},
		Series{Name: "cf/amdahl", X: ns, Y: amdahl},
	)

	// Peak and classification. The peak is read off the reconstructed
	// Eq. (18) curve — the paper's "dismal speedup, 21, at its peak" —
	// on a unit grid up to the largest requested degree.
	asym := core.Asymptotic{Eta: 1, Beta: an.Beta, Gamma: an.Gamma}
	typ, err := asym.Classify(core.FixedSize)
	if err != nil {
		return Report{}, err
	}
	nStar, sStar := 1.0, 0.0
	for n := 1.0; n <= ns[len(ns)-1]; n++ {
		s, err := core.CFSpeedup(an.Tp1, an.A/n+an.B, an.WoFit.Eval(n))
		if err != nil {
			return Report{}, err
		}
		if s > sStar {
			nStar, sStar = n, s
		}
	}
	tbl := Table{
		Title:   "fitted parameters (paper: γ = 2, E[Tp,1(1)] = 1602.5, peak ≈ 21 near n ≈ 60)",
		Headers: []string{"E[Tp,1(1)]", "γ", "β", "type", "peak S", "peak n"},
	}
	tbl.Rows = append(tbl.Rows, []string{
		f2(an.Tp1), f2(an.Gamma), fmt.Sprintf("%.2e", an.Beta),
		typ.String(), f2(sStar), fmt.Sprintf("%.0f", nStar),
	})
	rep.Tables = append(rep.Tables, tbl)
	return rep, nil
}
