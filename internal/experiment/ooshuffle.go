package experiment

import (
	"context"
	"fmt"
	"os"
	"reflect"
	"time"

	"ipso/internal/netmr"
	"ipso/internal/stats"
	"ipso/internal/workload"
)

// OOShuffle is the out-of-core shuffle study: the memory wall of the
// paper's fixed-size taxonomy (type IVs — speedup that peaks and then
// degrades once the per-node working set no longer fits) reproduced on
// the real TCP runtime by sweeping the workers' spill budget at fixed
// scale, then refitting ε(n) and q(n) with the spill path on vs off.
//
// Part 1 holds the cluster and input fixed and tightens the budget: the
// output must stay byte-identical at every budget while SpilledBytes
// grows and the resident peak stays under the ceiling — the runtime
// trading wall clock for memory instead of failing. Part 2 sweeps the
// worker count with the spill path off (unbounded memory) and on (tight
// budget) and refits the serial fraction ε(n) and overhead ratio q(n)
// on both series: spilling is pure per-worker overhead, so it must
// surface in q(n), not in ε(n).
func OOShuffle(ctx context.Context, workerCounts []int, lines, shards, reducers int, budgets []int64) (Report, error) {
	if len(workerCounts) < 2 || lines < 1 || shards < 1 || reducers < 1 || len(budgets) < 2 {
		return Report{}, fmt.Errorf(
			"experiment: invalid ooshuffle grid (workers=%v lines=%d shards=%d reducers=%d budgets=%v)",
			workerCounts, lines, shards, reducers, budgets)
	}
	if budgets[0] != 0 {
		return Report{}, fmt.Errorf("experiment: ooshuffle budgets must start with 0 (the unconstrained reference), got %v", budgets)
	}
	input, err := workload.TextLines(lines, 10, 42)
	if err != nil {
		return Report{}, err
	}
	rep := Report{ID: "ooshuffle", Title: "Out-of-core shuffle: bounded-memory spill vs the in-memory path"}

	if err := ooShuffleBudgetSweep(ctx, &rep, input, workerCounts[len(workerCounts)-1], shards, reducers, budgets); err != nil {
		return Report{}, err
	}
	if err := ooShuffleScaleSweep(ctx, &rep, input, workerCounts, shards, reducers, budgets[len(budgets)-1]); err != nil {
		return Report{}, err
	}
	return rep, nil
}

// ooShuffleBudgetSweep fixes the cluster and tightens the spill budget:
// the memory-wall shape at constant scale.
func ooShuffleBudgetSweep(ctx context.Context, rep *Report, input []string, workers, shards, reducers int, budgets []int64) error {
	tbl := Table{
		Title: fmt.Sprintf("wordcount at n=%d, R=%d: spill budget sweep (wall-clock; machine-dependent)",
			workers, reducers),
		Headers: []string{"budget KiB", "total ms", "spill runs", "spilled KiB", "peak store KiB", "comp KiB saved", "identical"},
	}
	var reference map[string]float64
	var xs, wall []float64
	for _, budget := range budgets {
		out, st, _, peak, err := runOOShuffleWordCount(ctx, input, workers, shards, reducers, budget, false)
		if err != nil {
			return err
		}
		identical := true
		if reference == nil {
			reference = out
		} else if !reflect.DeepEqual(out, reference) {
			identical = false
		}
		if !identical {
			return fmt.Errorf("experiment: ooshuffle at budget %d produced a different result than the in-memory reference", budget)
		}
		if budget > 0 {
			if peak > budget {
				return fmt.Errorf("experiment: ooshuffle at budget %d held %d resident bytes — the budget was exceeded", budget, peak)
			}
			if budget == budgets[len(budgets)-1] && st.SpilledBytes == 0 {
				return fmt.Errorf("experiment: ooshuffle at the tightest budget %d never spilled — the sweep is not exercising the out-of-core path", budget)
			}
		}
		label := "unbounded"
		if budget > 0 {
			label = fmt.Sprintf("%.0f", float64(budget)/1024)
		}
		tbl.Rows = append(tbl.Rows, []string{
			label,
			fmt.Sprintf("%.2f", positiveMs(st.TotalWall)),
			fmt.Sprintf("%d", st.SpillRuns),
			fmt.Sprintf("%.1f", float64(st.SpilledBytes)/1024),
			fmt.Sprintf("%.1f", float64(peak)/1024),
			fmt.Sprintf("%.1f", float64(st.CompressedBytes)/1024),
			"yes",
		})
		xs = append(xs, float64(budget))
		wall = append(wall, positiveMs(st.TotalWall))
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Series = append(rep.Series, Series{Name: "ooshuffle/budget-wall-ms", X: xs, Y: wall})
	rep.Notes = append(rep.Notes,
		"every budget produced the byte-identical output; the spill path trades wall clock for a bounded resident set — the memory wall as a knob, not a cliff")
	return nil
}

// ooShuffleScaleSweep sweeps the worker count with the spill path off and
// on, refitting ε(n) (serial fraction, from the traced Ws) and q(n)
// (overhead ratio n·Wo/Wp) on both series.
func ooShuffleScaleSweep(ctx context.Context, rep *Report, input []string, workerCounts []int, shards, reducers int, tightBudget int64) error {
	tbl := Table{
		Title: fmt.Sprintf("spill off vs on (budget %d KiB): traced phase refits (wall-clock; machine-dependent)",
			tightBudget/1024),
		Headers: []string{"workers", "q(n) off", "q(n) on", "Ws ms off", "Ws ms on", "spilled KiB on"},
	}
	var xs, qOff, qOn, wsOff, wsOn []float64
	for _, n := range workerCounts {
		if n < 1 {
			return fmt.Errorf("experiment: invalid worker count %d", n)
		}
		_, _, bdOff, _, err := runOOShuffleWordCount(ctx, input, n, shards, reducers, 0, true)
		if err != nil {
			return err
		}
		_, stOn, bdOn, _, err := runOOShuffleWordCount(ctx, input, n, shards, reducers, tightBudget, true)
		if err != nil {
			return err
		}
		fN := float64(n)
		qo := clampPositive(fN * bdOff.Wo / clampPositive(bdOff.Wp))
		qn := clampPositive(fN * bdOn.Wo / clampPositive(bdOn.Wp))
		wo := clampPositive(bdOff.Ws * 1e3)
		wn := clampPositive(bdOn.Ws * 1e3)
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", n), f2(qo), f2(qn),
			fmt.Sprintf("%.3f", wo), fmt.Sprintf("%.3f", wn),
			fmt.Sprintf("%.1f", float64(stOn.SpilledBytes)/1024),
		})
		xs = append(xs, fN)
		qOff, qOn = append(qOff, qo), append(qOn, qn)
		wsOff, wsOn = append(wsOff, wo), append(wsOn, wn)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Series = append(rep.Series,
		Series{Name: "ooshuffle/q-off", X: xs, Y: qOff},
		Series{Name: "ooshuffle/q-on", X: xs, Y: qOn},
	)
	qOffFit, err := stats.PowerLaw(xs, qOff)
	if err != nil {
		return fmt.Errorf("experiment: ooshuffle q(n) fit, spill off: %w", err)
	}
	qOnFit, err := stats.PowerLaw(xs, qOn)
	if err != nil {
		return fmt.Errorf("experiment: ooshuffle q(n) fit, spill on: %w", err)
	}
	epsOffFit, err := stats.PowerLaw(xs, wsOff)
	if err != nil {
		return fmt.Errorf("experiment: ooshuffle ε(n) fit, spill off: %w", err)
	}
	epsOnFit, err := stats.PowerLaw(xs, wsOn)
	if err != nil {
		return fmt.Errorf("experiment: ooshuffle ε(n) fit, spill on: %w", err)
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("q(n)=β·n^γ, spill off: %s", qOffFit),
		fmt.Sprintf("q(n)=β·n^γ, spill on:  %s", qOnFit),
		fmt.Sprintf("ε(n)=α·n^δ on Ws ms, spill off: %s", epsOffFit),
		fmt.Sprintf("ε(n)=α·n^δ on Ws ms, spill on:  %s", epsOnFit),
		"spilling is per-worker I/O: it belongs in the overhead ratio q(n), not in the serial fraction ε(n)",
	)
	return nil
}

// clampPositive keeps a measured quantity strictly positive so the
// log-log power fits stay defined on sub-resolution samples.
func clampPositive(v float64) float64 {
	if v < 1e-9 {
		return 1e-9
	}
	return v
}

// runOOShuffleWordCount runs one wordcount job on a fresh in-process
// cluster whose workers run under the given spill budget (0 =
// unconstrained), returning the output, stats, the traced phase
// breakdown (zero unless traced), and the maximum resident peak of any
// worker's intermediate store.
func runOOShuffleWordCount(ctx context.Context, input []string, workers, shards, reducers int, budget int64, traced bool) (map[string]float64, netmr.Stats, netmr.PhaseBreakdown, int64, error) {
	fail := func(err error) (map[string]float64, netmr.Stats, netmr.PhaseBreakdown, int64, error) {
		return nil, netmr.Stats{}, netmr.PhaseBreakdown{}, 0, err
	}
	job := wordCountNetJob()
	registry, err := netmr.NewRegistry(job)
	if err != nil {
		return fail(err)
	}
	master, err := netmr.NewMaster(registry, netmr.MasterConfig{
		MaxTaskBatch: 4, Reducers: reducers, Trace: traced,
	})
	if err != nil {
		return fail(err)
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	defer master.Close()

	spillDir := ""
	if budget > 0 {
		spillDir, err = os.MkdirTemp("", "ooshuffle-*")
		if err != nil {
			return fail(err)
		}
		defer func() { _ = os.RemoveAll(spillDir) }()
	}
	pool := make([]*netmr.Worker, 0, workers)
	defer func() {
		for _, w := range pool {
			w.Stop()
		}
	}()
	for i := 0; i < workers; i++ {
		wreg, err := netmr.NewRegistry(job)
		if err != nil {
			return fail(err)
		}
		w, err := netmr.NewWorker(wreg, netmr.WithWorkerConfig(netmr.WorkerConfig{
			SpillBudget: budget, SpillDir: spillDir,
		}))
		if err != nil {
			return fail(err)
		}
		if err := w.Start(addr); err != nil {
			return fail(err)
		}
		pool = append(pool, w)
	}
	if err := master.WaitForWorkers(workers, 30*time.Second); err != nil {
		return fail(err)
	}
	out, st, err := master.Run(ctx, "wordcount", input, shards)
	if err != nil {
		return fail(err)
	}
	var peak int64
	for _, w := range pool {
		if p, _, _ := w.StoreStats(); p > peak {
			peak = p
		}
	}
	var bd netmr.PhaseBreakdown
	if traced {
		trc := master.LastTrace()
		if trc == nil {
			return fail(fmt.Errorf("experiment: traced ooshuffle run produced no job trace"))
		}
		bd = trc.Breakdown(st)
	}
	return out, st, bd, peak, nil
}
