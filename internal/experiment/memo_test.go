package experiment

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"ipso/internal/spark"
	"ipso/internal/workload"
)

func sparkApp(t *testing.T, name string) spark.AppModel {
	t.Helper()
	for _, app := range workload.SparkBenchmarks() {
		if app.Name() == name {
			return app
		}
	}
	t.Fatalf("no spark benchmark named %q", name)
	return nil
}

func TestSparkSpeedupMemoized(t *testing.T) {
	cfg := DefaultConfig(true)
	app := sparkApp(t, "bayes")

	first, err := cfg.SparkSpeedup(app, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.SparkPointsMemoized(); got != 1 {
		t.Fatalf("points memoized = %d, want 1", got)
	}
	again, err := cfg.SparkSpeedup(app, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Fatalf("memo hit %g differs from computation %g", again, first)
	}
	if got := cfg.SparkPointsMemoized(); got != 1 {
		t.Fatalf("points memoized after hit = %d, want 1", got)
	}

	// A cache hit must be indistinguishable from a fresh computation.
	s, _, _, err := spark.Speedup(workload.SparkConfig(app, 16, 4))
	if err != nil {
		t.Fatal(err)
	}
	if s != first {
		t.Fatalf("memoized %g != direct %g", first, s)
	}

	// A nil Config computes without caching.
	var nilCfg *Config
	s2, err := nilCfg.SparkSpeedup(app, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s2 != s {
		t.Fatalf("nil-config path %g != direct %g", s2, s)
	}
}

// TestSparkSpeedupMemoConcurrent hammers one point and several distinct
// points from many goroutines: every caller must see the same value per
// point (run under -race this also proves the latching is sound).
func TestSparkSpeedupMemoConcurrent(t *testing.T) {
	cfg := DefaultConfig(true)
	app := sparkApp(t, "svm")
	const workers = 16
	vals := make([]float64, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Half the goroutines share a point, half get distinct ones.
			m := 2
			if i%2 == 1 {
				m = 2 + i
			}
			v, err := cfg.SparkSpeedup(app, 4*m, m)
			if err != nil {
				t.Error(err)
				return
			}
			vals[i] = v
		}(i)
	}
	wg.Wait()
	for i := 2; i < workers; i += 2 {
		if vals[i] != vals[0] {
			t.Fatalf("shared point diverged: vals[%d]=%g vals[0]=%g", i, vals[i], vals[0])
		}
	}
	if got := cfg.SparkPointsMemoized(); got != 1+workers/2 {
		t.Fatalf("points memoized = %d, want %d", got, 1+workers/2)
	}
}

// TestSurfaceReusesFigure9Points: the surface grid is a strict subset of
// Fig. 9's, so running surface after fig9 on a shared Config must add no
// new simulation points — the memoization the issue's serial-time budget
// relies on.
func TestSurfaceReusesFigure9Points(t *testing.T) {
	cfg := DefaultConfig(true)
	g := cfg.Grids
	ctx := context.Background()

	fig9, err := Figure9(ctx, cfg, g.LoadLevels, g.SparkExecs)
	if err != nil {
		t.Fatal(err)
	}
	after9 := cfg.SparkPointsMemoized()
	if after9 == 0 {
		t.Fatal("Figure9 populated no memo points")
	}
	if _, err := SparkSurface(ctx, cfg, g.SurfaceLoads, g.SparkExecs); err != nil {
		t.Fatal(err)
	}
	if got := cfg.SparkPointsMemoized(); got != after9 {
		t.Fatalf("surface added %d new points, want 0 (subset of fig9)", got-after9)
	}

	// And the memoized report must equal a cold, unmemoized one.
	cold, err := Figure9(ctx, nil, g.LoadLevels, g.SparkExecs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fig9, cold) {
		t.Fatal("memoized Figure9 report differs from unmemoized run")
	}
}
