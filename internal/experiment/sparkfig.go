package experiment

import (
	"context"
	"fmt"

	"ipso/internal/runner"
	"ipso/internal/workload"
)

// DefaultLoadLevels are the paper's per-executor load levels N/m for the
// fixed-time dimension (Fig. 9).
func DefaultLoadLevels() []int { return []int{1, 2, 4, 8} }

// DefaultSparkExecGrid is the executor (scale-out) grid of the Spark case
// studies.
func DefaultSparkExecGrid() []int { return []int{1, 2, 4, 8, 12, 16, 24, 32} }

// DefaultFixedSizeTasks is the fixed problem size N for Fig. 10, chosen
// large enough that all four apps peak within the executor grid.
const DefaultFixedSizeTasks = 96

// DefaultFixedSizeExecGrid is the executor grid for the fixed-size
// dimension (Fig. 10) — it extends past the peak but stays below N, the
// regime the paper plots (one executor handling several tasks).
func DefaultFixedSizeExecGrid() []int { return []int{2, 4, 8, 16, 24, 32, 48, 64} }

// Figure9 regenerates Fig. 9: the fixed-time dimension of the four Spark
// benchmarks — speedup versus m with N/m held at each load level. cfg
// (nil allowed) memoizes the speedup points across experiments.
func Figure9(ctx context.Context, cfg *Config, loadLevels, execs []int) (Report, error) {
	if len(loadLevels) == 0 || len(execs) == 0 {
		return Report{}, fmt.Errorf("experiment: empty Fig. 9 grids")
	}
	for _, k := range loadLevels {
		if k < 1 {
			return Report{}, fmt.Errorf("experiment: invalid load level %d", k)
		}
	}
	// Flatten (app, load level, executor count) into one task list so the
	// worker pool stays busy across series boundaries.
	apps := workload.SparkBenchmarks()
	perApp := len(loadLevels) * len(execs)
	ys, err := runner.Map(ctx, len(apps)*perApp, func(_ context.Context, i int) (float64, error) {
		app := apps[i/perApp]
		k := loadLevels[(i%perApp)/len(execs)]
		m := execs[i%len(execs)]
		s, err := cfg.SparkSpeedup(app, k*m, m)
		if err != nil {
			return 0, fmt.Errorf("experiment: %s N/m=%d m=%d: %w", app.Name(), k, m, err)
		}
		return s, nil
	})
	if err != nil {
		return Report{}, err
	}
	rep := Report{ID: "fig9", Title: "Spark benchmarks, fixed-time dimension (N/m fixed, scaling m)"}
	xs := make([]float64, len(execs))
	for j, m := range execs {
		xs[j] = float64(m)
	}
	for a, app := range apps {
		for l, k := range loadLevels {
			lo := a*perApp + l*len(execs)
			rep.Series = append(rep.Series, Series{
				Name: fmt.Sprintf("%s/N_m=%d", app.Name(), k),
				X:    xs, Y: ys[lo : lo+len(execs)],
			})
		}
	}
	return rep, nil
}

// Figure10 regenerates Fig. 10: the fixed-size dimension — speedup versus
// m with the problem size N fixed; the speedups peak and then fall (IVs).
// cfg (nil allowed) memoizes the speedup points across experiments.
func Figure10(ctx context.Context, cfg *Config, tasks int, execs []int) (Report, error) {
	if tasks < 1 || len(execs) == 0 {
		return Report{}, fmt.Errorf("experiment: invalid Fig. 10 grid (tasks=%d)", tasks)
	}
	for _, m := range execs {
		if m < 1 {
			return Report{}, fmt.Errorf("experiment: invalid executor count %d", m)
		}
	}
	apps := workload.SparkBenchmarks()
	ys, err := runner.Map(ctx, len(apps)*len(execs), func(_ context.Context, i int) (float64, error) {
		app := apps[i/len(execs)]
		m := execs[i%len(execs)]
		s, err := cfg.SparkSpeedup(app, tasks, m)
		if err != nil {
			return 0, fmt.Errorf("experiment: %s N=%d m=%d: %w", app.Name(), tasks, m, err)
		}
		return s, nil
	})
	if err != nil {
		return Report{}, err
	}
	rep := Report{ID: "fig10", Title: fmt.Sprintf("Spark benchmarks, fixed-size dimension (N = %d, scaling m)", tasks)}
	xs := make([]float64, len(execs))
	for j, m := range execs {
		xs[j] = float64(m)
	}
	for a, app := range apps {
		rep.Series = append(rep.Series, Series{Name: app.Name() + "/fixed-size", X: xs, Y: ys[a*len(execs) : (a+1)*len(execs)]})
	}
	return rep, nil
}
