package experiment

import (
	"fmt"

	"ipso/internal/spark"
	"ipso/internal/workload"
)

// DefaultLoadLevels are the paper's per-executor load levels N/m for the
// fixed-time dimension (Fig. 9).
func DefaultLoadLevels() []int { return []int{1, 2, 4, 8} }

// DefaultSparkExecGrid is the executor (scale-out) grid of the Spark case
// studies.
func DefaultSparkExecGrid() []int { return []int{1, 2, 4, 8, 12, 16, 24, 32} }

// DefaultFixedSizeTasks is the fixed problem size N for Fig. 10, chosen
// large enough that all four apps peak within the executor grid.
const DefaultFixedSizeTasks = 96

// DefaultFixedSizeExecGrid is the executor grid for the fixed-size
// dimension (Fig. 10) — it extends past the peak but stays below N, the
// regime the paper plots (one executor handling several tasks).
func DefaultFixedSizeExecGrid() []int { return []int{2, 4, 8, 16, 24, 32, 48, 64} }

// Figure9 regenerates Fig. 9: the fixed-time dimension of the four Spark
// benchmarks — speedup versus m with N/m held at each load level.
func Figure9(loadLevels, execs []int) (Report, error) {
	if len(loadLevels) == 0 || len(execs) == 0 {
		return Report{}, fmt.Errorf("experiment: empty Fig. 9 grids")
	}
	rep := Report{ID: "fig9", Title: "Spark benchmarks, fixed-time dimension (N/m fixed, scaling m)"}
	for _, app := range workload.SparkBenchmarks() {
		for _, k := range loadLevels {
			if k < 1 {
				return Report{}, fmt.Errorf("experiment: invalid load level %d", k)
			}
			xs := make([]float64, 0, len(execs))
			ys := make([]float64, 0, len(execs))
			for _, m := range execs {
				s, _, _, err := spark.Speedup(workload.SparkConfig(app, k*m, m))
				if err != nil {
					return Report{}, fmt.Errorf("experiment: %s N/m=%d m=%d: %w", app.Name(), k, m, err)
				}
				xs = append(xs, float64(m))
				ys = append(ys, s)
			}
			rep.Series = append(rep.Series, Series{
				Name: fmt.Sprintf("%s/N_m=%d", app.Name(), k),
				X:    xs, Y: ys,
			})
		}
	}
	return rep, nil
}

// Figure10 regenerates Fig. 10: the fixed-size dimension — speedup versus
// m with the problem size N fixed; the speedups peak and then fall (IVs).
func Figure10(tasks int, execs []int) (Report, error) {
	if tasks < 1 || len(execs) == 0 {
		return Report{}, fmt.Errorf("experiment: invalid Fig. 10 grid (tasks=%d)", tasks)
	}
	rep := Report{ID: "fig10", Title: fmt.Sprintf("Spark benchmarks, fixed-size dimension (N = %d, scaling m)", tasks)}
	for _, app := range workload.SparkBenchmarks() {
		xs := make([]float64, 0, len(execs))
		ys := make([]float64, 0, len(execs))
		for _, m := range execs {
			if m < 1 {
				return Report{}, fmt.Errorf("experiment: invalid executor count %d", m)
			}
			s, _, _, err := spark.Speedup(workload.SparkConfig(app, tasks, m))
			if err != nil {
				return Report{}, fmt.Errorf("experiment: %s N=%d m=%d: %w", app.Name(), tasks, m, err)
			}
			xs = append(xs, float64(m))
			ys = append(ys, s)
		}
		rep.Series = append(rep.Series, Series{Name: app.Name() + "/fixed-size", X: xs, Y: ys})
	}
	return rep, nil
}
