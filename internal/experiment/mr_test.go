package experiment

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

// testGrid is the reduced scale-out grid used by the tests; it includes
// n = 1 (η baseline), the TeraSort fit window 16..64, and a large tail.
func testGrid() []int { return []int{1, 2, 4, 8, 16, 24, 32, 48, 64} }

// sweepsOnce caches the four case-study sweeps across tests.
var cachedSweeps []MRSweep

func caseSweeps(t *testing.T) []MRSweep {
	t.Helper()
	if cachedSweeps == nil {
		s, err := RunMRCaseStudies(context.Background(), testGrid())
		if err != nil {
			t.Fatal(err)
		}
		cachedSweeps = s
	}
	return cachedSweeps
}

func sweepByApp(t *testing.T, app string) MRSweep {
	t.Helper()
	for _, s := range caseSweeps(t) {
		if s.App == app {
			return s
		}
	}
	t.Fatalf("no sweep for %s", app)
	return MRSweep{}
}

func seriesByName(t *testing.T, rep Report, name string) Series {
	t.Helper()
	for _, s := range rep.Series {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("report %s has no series %q", rep.ID, name)
	return Series{}
}

func last(s Series) float64 { return s.Y[len(s.Y)-1] }

func TestRunMRSweepRequiresBaseline(t *testing.T) {
	app := mrCaseApps()[0]
	if _, err := RunMRSweep(context.Background(), app, []int{2, 4}); err == nil {
		t.Error("grid without n=1 should error")
	}
	if _, err := RunMRSweep(context.Background(), app, nil); err == nil {
		t.Error("empty grid should error")
	}
	if _, err := RunMRSweep(context.Background(), app, []int{0}); err == nil {
		t.Error("invalid n should error")
	}
}

func TestSweepShapeAnchors(t *testing.T) {
	// QMC: η = 1 and near-linear speedup (type It).
	qmc := sweepByApp(t, "qmc-pi")
	if qmc.Eta < 0.999 {
		t.Errorf("QMC η = %g, want ≈1", qmc.Eta)
	}
	lastPoint := qmc.Points[len(qmc.Points)-1]
	if ratio := lastPoint.Speedup / float64(lastPoint.N); ratio < 0.9 {
		t.Errorf("QMC speedup/n = %g at n=%d, want > 0.9 (linear)", ratio, lastPoint.N)
	}

	// WordCount: high η, near-linear.
	wc := sweepByApp(t, "wordcount")
	if wc.Eta < 0.9 {
		t.Errorf("WordCount η = %g, want > 0.9", wc.Eta)
	}

	// Sort: bounded well below n (type IIIt,1) but still above 3.5 by
	// n = 64 (the paper's bound is ≈5).
	sort := sweepByApp(t, "sort")
	sLast := sort.Points[len(sort.Points)-1]
	if sLast.Speedup > 6 || sLast.Speedup < 3 {
		t.Errorf("Sort speedup at n=%d is %g, want in [3, 6] (paper ≈4-5)", sLast.N, sLast.Speedup)
	}

	// TeraSort: bounded lower (paper ≈3).
	ts := sweepByApp(t, "terasort")
	tLast := ts.Points[len(ts.Points)-1]
	if tLast.Speedup > 3.5 || tLast.Speedup < 1.8 {
		t.Errorf("TeraSort speedup at n=%d is %g, want in [1.8, 3.5] (paper ≈3)", tLast.N, tLast.Speedup)
	}
	if ts.Eta >= sort.Eta {
		t.Errorf("TeraSort η (%g) should be below Sort's (%g): larger serial portion", ts.Eta, sort.Eta)
	}
}

func TestSpeedupMonotoneForBenignApps(t *testing.T) {
	for _, app := range []string{"qmc-pi", "wordcount", "sort"} {
		sw := sweepByApp(t, app)
		for i := 1; i < len(sw.Points); i++ {
			if sw.Points[i].Speedup < sw.Points[i-1].Speedup {
				t.Errorf("%s speedup not monotone at n=%d", app, sw.Points[i].N)
			}
		}
	}
}

func TestFigure4GustafsonGap(t *testing.T) {
	rep, err := Figure4(context.Background(), caseSweeps(t))
	if err != nil {
		t.Fatal(err)
	}
	// QMC and WordCount track Gustafson within 10%.
	for _, app := range []string{"qmc-pi", "wordcount"} {
		meas := last(seriesByName(t, rep, app+"/measured"))
		gust := last(seriesByName(t, rep, app+"/gustafson"))
		if meas < 0.9*gust || meas > 1.02*gust {
			t.Errorf("%s: measured %g vs Gustafson %g — should track closely", app, meas, gust)
		}
	}
	// Sort and TeraSort fall far below Gustafson (< 20% of it at n=64).
	for _, app := range []string{"sort", "terasort"} {
		meas := last(seriesByName(t, rep, app+"/measured"))
		gust := last(seriesByName(t, rep, app+"/gustafson"))
		if meas > 0.2*gust {
			t.Errorf("%s: measured %g vs Gustafson %g — Gustafson should fail badly", app, meas, gust)
		}
	}
}

func TestFigure5Step(t *testing.T) {
	rep, err := Figure5(context.Background(), caseSweeps(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 1 || len(rep.Tables[0].Rows) != 2 {
		t.Fatalf("Fig. 5 must report a two-segment fit, got %+v", rep.Tables)
	}
	// The break must sit at the 2 GB / 128 MB ≈ 15-16 overflow point.
	left, right := rep.Tables[0].Rows[0], rep.Tables[0].Rows[1]
	if !strings.Contains(left[0], "16") && !strings.Contains(left[0], "15") {
		t.Errorf("break location row %q, want near n=15-16", left[0])
	}
	if left[1] >= right[1] { // lexicographic works for "0.18" vs "0.25"
		t.Errorf("IN slope must step up across the break: %q → %q", left[1], right[1])
	}
}

func TestFigure6Fits(t *testing.T) {
	rep, err := Figure6(context.Background(), caseSweeps(t), 16)
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows
	got := make(map[string][]string, len(rows))
	for _, r := range rows {
		got[r[0]] = r
	}
	checks := []struct {
		app                  string
		inSlopeLo, inSlopeHi float64
	}{
		{app: "qmc-pi", inSlopeLo: -0.01, inSlopeHi: 0.01},
		{app: "wordcount", inSlopeLo: -0.01, inSlopeHi: 0.05},
		{app: "sort", inSlopeLo: 0.3, inSlopeHi: 0.45},    // paper: 0.36
		{app: "terasort", inSlopeLo: 0.2, inSlopeHi: 0.3}, // paper: 0.23
	}
	for _, c := range checks {
		row, ok := got[c.app]
		if !ok {
			t.Fatalf("no fit row for %s", c.app)
		}
		slope := parseF(t, row[3])
		if slope < c.inSlopeLo || slope > c.inSlopeHi {
			t.Errorf("%s IN slope %g, want in [%g, %g]", c.app, slope, c.inSlopeLo, c.inSlopeHi)
		}
		exSlope := parseF(t, row[1])
		if exSlope < 0.99 || exSlope > 1.01 {
			t.Errorf("%s EX slope %g, want ≈1 (EX(n) ≈ n)", c.app, exSlope)
		}
	}
}

func TestFigure7PredictionQuality(t *testing.T) {
	rep, err := Figure7(context.Background(), caseSweeps(t), 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range []string{"qmc-pi", "wordcount", "sort", "terasort"} {
		meas := last(seriesByName(t, rep, app+"/measured"))
		ipso := last(seriesByName(t, rep, app+"/ipso"))
		if rel := abs(ipso-meas) / meas; rel > 0.25 {
			t.Errorf("%s: IPSO prediction %g vs measured %g (rel %g > 0.25)", app, ipso, meas, rel)
		}
	}
	// Gustafson must be qualitatively wrong for the in-proportion cases.
	for _, app := range []string{"sort", "terasort"} {
		meas := last(seriesByName(t, rep, app+"/measured"))
		gust := last(seriesByName(t, rep, app+"/gustafson"))
		if gust < 3*meas {
			t.Errorf("%s: Gustafson %g vs measured %g — should overpredict ≫", app, gust, meas)
		}
	}
}

func TestDiagnosticsTable(t *testing.T) {
	rep, err := Diagnostics(context.Background(), caseSweeps(t))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"qmc-pi":    "It",
		"wordcount": "It",
		"sort":      "IIIt,1",
		"terasort":  "IIIt,1",
	}
	for _, row := range rep.Tables[0].Rows {
		if w := want[row[0]]; row[2] != w {
			t.Errorf("%s diagnosed as %s, want %s", row[0], row[2], w)
		}
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
