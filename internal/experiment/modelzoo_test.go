package experiment

import (
	"context"
	"strings"
	"testing"

	"ipso/internal/core"
)

// TestSyntheticSelectionsRecoverGenerators is the headline property of the
// model-zoo study: on sweeps generated from a known law (plus ±0.5%
// noise), AICc selection must hand the sweep back to its generator —
// USL for the retrograde curve, Amdahl for the saturating one, IPSO for
// the mixed in-proportion/overhead shape no classical law matches.
func TestSyntheticSelectionsRecoverGenerators(t *testing.T) {
	sweeps, err := synthZooSweeps(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweeps) != 3 {
		t.Fatalf("got %d synthetic sweeps, want 3", len(sweeps))
	}
	for _, z := range sweeps {
		sel, err := core.FitModels(z.Ns, z.Speedups, core.ModelZoo(z.Workload))
		if err != nil {
			t.Fatalf("%s: %v", z.Name, err)
		}
		best, ok := sel.BestFit()
		if !ok {
			t.Fatalf("%s: no model fitted", z.Name)
		}
		if best.Name != z.Truth {
			for _, f := range sel.Fits {
				t.Logf("%s: %s AICc=%.2f LOO=%.3g err=%v", z.Name, f.Name, f.AICc, f.LOO, f.Err)
			}
			t.Errorf("%s: selected %s, want the generating %s", z.Name, best.Name, z.Truth)
		}
	}
}

// TestSyntheticRetrogradePeaks pins the shape the USL sweep must have for
// the "where IPSO can't win" claim to mean anything: a genuine interior
// peak near n* = √((1−σ)/κ) ≈ 31.
func TestSyntheticRetrogradePeaks(t *testing.T) {
	sweeps, err := synthZooSweeps(7)
	if err != nil {
		t.Fatal(err)
	}
	z := sweeps[0]
	if z.Truth != core.ModelUSL {
		t.Fatalf("sweeps[0] generator = %s, want usl", z.Truth)
	}
	maxIdx := 0
	for i, s := range z.Speedups {
		if s > z.Speedups[maxIdx] {
			maxIdx = i
		}
	}
	if peak := z.Ns[maxIdx]; peak < 16 || peak > 48 {
		t.Errorf("retrograde peak at n=%g, want near 31", peak)
	}
	if last := z.Speedups[len(z.Speedups)-1]; last >= z.Speedups[maxIdx] {
		t.Error("retrograde sweep does not decline after its peak")
	}
}

// TestModelZooStudyReport runs the full experiment end to end on reduced
// grids and checks the report structure: both tables, one summary row
// per sweep, the synthetic recovery notes, and determinism.
func TestModelZooStudyReport(t *testing.T) {
	cfg := DefaultConfig(true)
	cfg.Grids.MR = []int{1, 2, 4, 8, 16}
	cfg.Grids.FixedSizeExecs = []int{2, 4, 8, 16, 24, 32}
	sweeps, err := cfg.MRSweeps(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ModelZooStudy(context.Background(), sweeps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("got %d tables, want 2", len(rep.Tables))
	}
	summary, score := rep.Tables[0], rep.Tables[1]
	wantSweeps := len(sweeps) + 4 + 3 // MR + spark fixed-size + synthetic
	if len(summary.Rows) != wantSweeps {
		t.Errorf("summary rows = %d, want %d", len(summary.Rows), wantSweeps)
	}
	if len(score.Rows) != wantSweeps*5 {
		t.Errorf("score rows = %d, want %d (5 models per sweep)", len(score.Rows), wantSweeps*5)
	}
	// The synthetic rows select their generators, so at least one sweep
	// selects a non-IPSO model — the acceptance bar for the study.
	nonIPSO := 0
	for _, row := range summary.Rows {
		if row[2] != core.ModelIPSO && row[2] != "(none)" {
			nonIPSO++
		}
	}
	if nonIPSO == 0 {
		t.Error("no sweep selected a non-IPSO model; the zoo competition is vacuous")
	}
	var recoveries int
	for _, n := range rep.Notes {
		if strings.Contains(n, "recovers the generating") {
			recoveries++
		}
	}
	if recoveries != 3 {
		t.Errorf("%d generator-recovery notes, want 3; notes: %v", recoveries, rep.Notes)
	}

	// Byte-identical on a second run (the -parallel reproducibility
	// contract): the study must not depend on map order or shared state.
	rep2, err := ModelZooStudy(context.Background(), sweeps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var a, b strings.Builder
	if err := rep.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := rep2.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two runs of the modelzoo study differ")
	}
}
