package experiment

import (
	"context"
	"fmt"
	"time"

	"ipso/internal/netmr"
	"ipso/internal/stats"
	"ipso/internal/workload"
)

// distReducePoint is one measured operating point of the reduce-on/off
// comparison: the master's serial fold wall with the legacy merge
// against the serial residue (union of R disjoint key spaces) once the
// fold runs distributed on the workers.
type distReducePoint struct {
	n          int
	serialMs   float64 // master-side fold, reduce off (SerialMerge)
	residueMs  float64 // master-side residue, reduce on (union only)
	reduceMs   float64 // distributed reduce wall (now part of Wp)
	shuffle    int64   // intermediate bytes moved worker→worker
	reduceRuns int     // reduce tasks executed by workers
}

// distReduceMeasure runs the wordcount workload at each pool size with
// the distributed reduce off (legacy serial merge, the Ws(n) of Eq. 14)
// and on (R reduce tasks on workers; the master keeps only the union of
// R disjoint partitions), then refits ε(n)=α·n^δ on both serial series.
func distReduceMeasure(ctx context.Context, workerCounts []int, lines, shards, reducers int) ([]distReducePoint, stats.PowerFit, stats.PowerFit, error) {
	if len(workerCounts) < 2 || lines < 1 || shards < 1 || reducers < 1 {
		return nil, stats.PowerFit{}, stats.PowerFit{}, fmt.Errorf(
			"experiment: invalid distreduce grid (workers=%v lines=%d shards=%d reducers=%d)",
			workerCounts, lines, shards, reducers)
	}
	input, err := workload.TextLines(lines, 10, 42)
	if err != nil {
		return nil, stats.PowerFit{}, stats.PowerFit{}, err
	}
	points := make([]distReducePoint, 0, len(workerCounts))
	var xs, serial, residue []float64
	for _, n := range workerCounts {
		if n < 1 {
			return nil, stats.PowerFit{}, stats.PowerFit{}, fmt.Errorf("experiment: invalid worker count %d", n)
		}
		off, err := runDistReduceWordCount(ctx, input, n, shards, 0)
		if err != nil {
			return nil, stats.PowerFit{}, stats.PowerFit{}, err
		}
		on, err := runDistReduceWordCount(ctx, input, n, shards, reducers)
		if err != nil {
			return nil, stats.PowerFit{}, stats.PowerFit{}, err
		}
		if on.ReduceTasks != reducers {
			return nil, stats.PowerFit{}, stats.PowerFit{}, fmt.Errorf(
				"experiment: distreduce at n=%d ran %d of %d reduce tasks on workers", n, on.ReduceTasks, reducers)
		}
		p := distReducePoint{
			n:        n,
			serialMs: positiveMs(off.MergeWall), residueMs: positiveMs(on.MergeWall),
			reduceMs: float64(on.ReduceWall) / 1e6,
			shuffle:  on.ShuffleBytes, reduceRuns: on.ReduceTasks,
		}
		points = append(points, p)
		xs = append(xs, float64(n))
		serial = append(serial, p.serialMs)
		residue = append(residue, p.residueMs)
	}
	offFit, err := stats.PowerLaw(xs, serial)
	if err != nil {
		return nil, stats.PowerFit{}, stats.PowerFit{}, fmt.Errorf("experiment: distreduce ε(n) fit, reduce off: %w", err)
	}
	onFit, err := stats.PowerLaw(xs, residue)
	if err != nil {
		return nil, stats.PowerFit{}, stats.PowerFit{}, fmt.Errorf("experiment: distreduce ε(n) fit, reduce on: %w", err)
	}
	return points, offFit, onFit, nil
}

// DistReduce reports the distributed worker-side reduce study: with the
// fold promoted from the master's serial phase to R reduce tasks on the
// workers, the serial work left on the master shrinks from the full
// per-key fold to the union of R disjoint key spaces, and the refitted
// in-proportion ratio ε(n) = α·n^δ (Eq. 14) shrinks with it — the
// model-level statement that reduce moved Ws into Wp.
func DistReduce(ctx context.Context, workerCounts []int, lines, shards, reducers int) (Report, error) {
	points, offFit, onFit, err := distReduceMeasure(ctx, workerCounts, lines, shards, reducers)
	if err != nil {
		return Report{}, err
	}
	rep := Report{ID: "distreduce", Title: "Distributed worker-side reduce: master serial work with reduce on vs off"}
	tbl := Table{
		Title: fmt.Sprintf("wordcount, R=%d reduce tasks on workers (wall-clock; machine-dependent)", reducers),
		Headers: []string{"workers", "master fold ms (reduce off)", "master residue ms (reduce on)",
			"reduce wall ms", "shuffle KiB", "reduce tasks"},
	}
	var xs, serial, residue []float64
	for _, p := range points {
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", p.n),
			fmt.Sprintf("%.2f", p.serialMs),
			fmt.Sprintf("%.2f", p.residueMs),
			fmt.Sprintf("%.2f", p.reduceMs),
			fmt.Sprintf("%.1f", float64(p.shuffle)/1024),
			fmt.Sprintf("%d", p.reduceRuns),
		})
		xs = append(xs, float64(p.n))
		serial = append(serial, p.serialMs)
		residue = append(residue, p.residueMs)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Series = append(rep.Series,
		Series{Name: "distreduce/serial-ms", X: xs, Y: serial},
		Series{Name: "distreduce/residue-ms", X: xs, Y: residue},
	)
	maxN := xs[len(xs)-1]
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("ε(n)=α·n^δ on master fold ms, reduce off: %s", offFit),
		fmt.Sprintf("ε(n)=α·n^δ on master residue ms, reduce on: %s", onFit),
		fmt.Sprintf("fitted serial work at n=%.0f: %.3f ms off vs %.3f ms on (%.1f× smaller with reduce on)",
			maxN, offFit.Eval(maxN), onFit.Eval(maxN), offFit.Eval(maxN)/onFit.Eval(maxN)),
	)
	return rep, nil
}

// runDistReduceWordCount measures one operating point. reducers == 0
// selects the legacy serial master-side merge (the reduce-off baseline);
// reducers > 0 enables the distributed reduce phase.
func runDistReduceWordCount(ctx context.Context, input []string, workers, shards, reducers int) (netmr.Stats, error) {
	job := wordCountNetJob()
	registry, err := netmr.NewRegistry(job)
	if err != nil {
		return netmr.Stats{}, err
	}
	cfg := netmr.MasterConfig{MaxTaskBatch: 4}
	if reducers > 0 {
		cfg.Reducers = reducers
	} else {
		cfg.SerialMerge = true
	}
	master, err := netmr.NewMaster(registry, cfg)
	if err != nil {
		return netmr.Stats{}, err
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		return netmr.Stats{}, err
	}
	defer master.Close()

	stops := make([]func(), 0, workers)
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	for i := 0; i < workers; i++ {
		wreg, err := netmr.NewRegistry(job)
		if err != nil {
			return netmr.Stats{}, err
		}
		w, err := netmr.NewWorker(wreg)
		if err != nil {
			return netmr.Stats{}, err
		}
		if err := w.Start(addr); err != nil {
			return netmr.Stats{}, err
		}
		stops = append(stops, w.Stop)
	}
	if err := master.WaitForWorkers(workers, 30*time.Second); err != nil {
		return netmr.Stats{}, err
	}
	_, st, err := master.Run(ctx, "wordcount", input, shards)
	return st, err
}
