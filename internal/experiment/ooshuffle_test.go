package experiment

import (
	"context"
	"testing"
)

// TestOOShuffleReport is the acceptance check for the out-of-core
// shuffle study: the budget sweep must keep the output identical while
// actually spilling at the tightest budget (the experiment itself errors
// on a budget violation or divergence), and the scale sweep must produce
// all four ε(n)/q(n) refit notes.
func TestOOShuffleReport(t *testing.T) {
	rep, err := OOShuffle(context.Background(), []int{1, 2}, 3000, 6, 3, []int64{0, 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("expected budget-sweep and scale-sweep tables, got %d", len(rep.Tables))
	}
	if rows := len(rep.Tables[0].Rows); rows != 2 {
		t.Errorf("budget sweep has %d rows, want 2", rows)
	}
	if rows := len(rep.Tables[1].Rows); rows != 2 {
		t.Errorf("scale sweep has %d rows, want 2", rows)
	}
	s := seriesByName(t, rep, "ooshuffle/budget-wall-ms")
	for _, v := range s.Y {
		if v <= 0 {
			t.Errorf("budget-wall series has nonpositive sample %g", v)
		}
	}
	seriesByName(t, rep, "ooshuffle/q-off")
	seriesByName(t, rep, "ooshuffle/q-on")
	if len(rep.Notes) != 6 {
		t.Errorf("expected the identity note plus four fit notes plus the attribution note, got %v", rep.Notes)
	}
}

func TestOOShuffleValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := OOShuffle(ctx, []int{1}, 10, 2, 2, []int64{0, 1024}); err == nil {
		t.Error("single-point grid should error (fit needs >=2 points)")
	}
	if _, err := OOShuffle(ctx, []int{1, 2}, 0, 2, 2, []int64{0, 1024}); err == nil {
		t.Error("zero lines should error")
	}
	if _, err := OOShuffle(ctx, []int{1, 2}, 10, 2, 0, []int64{0, 1024}); err == nil {
		t.Error("zero reducers should error")
	}
	if _, err := OOShuffle(ctx, []int{1, 2}, 10, 2, 2, []int64{1024}); err == nil {
		t.Error("single-budget sweep should error")
	}
	if _, err := OOShuffle(ctx, []int{1, 2}, 10, 2, 2, []int64{1024, 0}); err == nil {
		t.Error("budgets not starting at 0 should error")
	}
}
