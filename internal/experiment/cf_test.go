package experiment

import (
	"context"
	"math"
	"testing"

	"ipso/internal/workload"
)

func TestRunCFSweepMatchesTableI(t *testing.T) {
	paper := workload.PaperTableI()
	ns := make([]int, len(paper))
	for i, row := range paper {
		ns[i] = row.N
	}
	sim, err := RunCFSweep(context.Background(), ns)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range paper {
		if rel := math.Abs(sim[i].MaxTask-row.MaxTask) / row.MaxTask; rel > 0.15 {
			t.Errorf("n=%d: simulated E[max] %.1f vs paper %.1f (rel %.2f)", row.N, sim[i].MaxTask, row.MaxTask, rel)
		}
		if rel := math.Abs(sim[i].Wo-row.Wo) / row.Wo; rel > 0.15 {
			t.Errorf("n=%d: simulated Wo %.1f vs paper %.1f (rel %.2f)", row.N, sim[i].Wo, row.Wo, rel)
		}
	}
	if _, err := RunCFSweep(context.Background(), []int{0}); err == nil {
		t.Error("invalid n should error")
	}
}

func TestAnalyzeCFRecoversGammaTwo(t *testing.T) {
	points := make([]CFPoint, 0, 4)
	for _, row := range workload.PaperTableI() {
		points = append(points, CFPoint{N: row.N, MaxTask: row.MaxTask, Wo: row.Wo})
	}
	an, err := AnalyzeCF(points)
	if err != nil {
		t.Fatal(err)
	}
	if an.Gamma < 1.9 || an.Gamma > 2.2 {
		t.Errorf("γ = %g, want ≈2 (the paper's conclusion)", an.Gamma)
	}
	if an.Tp1 < 1500 || an.Tp1 > 2200 {
		t.Errorf("E[Tp,1(1)] = %g, want ≈1600-2000", an.Tp1)
	}
	if _, err := AnalyzeCF(points[:1]); err == nil {
		t.Error("single point should error")
	}
}

func TestTableIReport(t *testing.T) {
	rep, err := TableI(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "table1" || len(rep.Tables) != 1 {
		t.Fatalf("unexpected report %+v", rep)
	}
	if got := len(rep.Tables[0].Rows); got != 4 {
		t.Errorf("Table I rows = %d, want 4", got)
	}
}

func TestFigure8ReproducesPaper(t *testing.T) {
	ns := []float64{5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 120, 150}
	rep, err := Figure8(context.Background(), ns)
	if err != nil {
		t.Fatal(err)
	}
	ipso := seriesByName(t, rep, "cf/ipso")
	amdahl := seriesByName(t, rep, "cf/amdahl")
	measured := seriesByName(t, rep, "cf/measured")

	// The IPSO curve must peak in the interior near n ≈ 55-60 with
	// S ≈ 20 (paper: ≈21 near n ≈ 60), then fall.
	peakIdx := 0
	for i := range ipso.Y {
		if ipso.Y[i] > ipso.Y[peakIdx] {
			peakIdx = i
		}
	}
	if peakIdx == 0 || peakIdx == len(ipso.Y)-1 {
		t.Fatalf("IPSO curve does not peak in the interior: %v", ipso.Y)
	}
	if ipso.X[peakIdx] < 40 || ipso.X[peakIdx] > 70 {
		t.Errorf("peak at n=%g, want near 60", ipso.X[peakIdx])
	}
	if ipso.Y[peakIdx] < 17 || ipso.Y[peakIdx] > 24 {
		t.Errorf("peak speedup %g, want ≈21", ipso.Y[peakIdx])
	}
	// Amdahl's law (η = 1) predicts S = n — qualitatively wrong.
	if last(amdahl) != ns[len(ns)-1] {
		t.Errorf("Amdahl series must be S = n, got %g at n=%g", last(amdahl), ns[len(ns)-1])
	}
	// Measured points follow IVs: the n=90 point is below the n=60 point.
	if measured.Y[len(measured.Y)-1] >= measured.Y[len(measured.Y)-2] {
		t.Errorf("measured speedups should fall past the peak: %v", measured.Y)
	}
	// The parameter table must classify as IVs.
	found := false
	for _, row := range rep.Tables[0].Rows {
		for _, cell := range row {
			if cell == "IVs" {
				found = true
			}
		}
	}
	if !found {
		t.Error("Fig. 8 table must classify the CF workload as IVs")
	}
}
