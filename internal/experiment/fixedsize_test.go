package experiment

import (
	"context"
	"reflect"
	"testing"

	"ipso/internal/cluster"
)

func TestFixedSizeMRShapes(t *testing.T) {
	// 16 blocks of fixed working set, split across up to 64 units.
	total := 16.0 * cluster.BlockBytes
	ns := []int{1, 2, 4, 8, 16, 32, 64}
	rep, err := FixedSizeMR(context.Background(), total, ns)
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, row := range rows {
		app, typ := row[0], row[3]
		switch app {
		case "qmc-pi", "wordcount":
			// η ≈ 1 (WordCount's tiny merge puts its Amdahl bound far
			// beyond this grid): ideal or sublinear-unbounded reading.
			if typ != "Is" && typ != "IIs" {
				t.Errorf("%s fixed-size type %s, want Is/IIs", app, typ)
			}
		default:
			// The data-proportional serial merge makes Sort and TeraSort
			// Amdahl-like bounded within the grid.
			if typ != "IIIs,1" && typ != "IIIs,2" {
				t.Errorf("%s fixed-size type %s, want IIIs", app, typ)
			}
		}
	}
	// Speedups must respect the Amdahl bound for the bounded cases.
	for _, s := range rep.Series {
		if s.Name == "sort/fixed-size" {
			last := s.Y[len(s.Y)-1]
			if last > 10 {
				t.Errorf("sort fixed-size speedup %g at n=64, want Amdahl-bounded ≪ 64", last)
			}
			if last < s.Y[0] {
				t.Errorf("sort fixed-size speedup should not decrease on this grid: %v", s.Y)
			}
		}
	}
}

func TestFixedSizeMRValidation(t *testing.T) {
	if _, err := FixedSizeMR(context.Background(), 0, []int{1, 2}); err == nil {
		t.Error("zero total should error")
	}
	if _, err := FixedSizeMR(context.Background(), 1e9, nil); err == nil {
		t.Error("empty grid should error")
	}
	if _, err := FixedSizeMR(context.Background(), 1e9, []int{0}); err == nil {
		t.Error("invalid n should error")
	}
}

func TestExperimentsAreDeterministic(t *testing.T) {
	// The whole pipeline is a pure function of its inputs: two runs of
	// the same experiment must produce identical reports.
	a, err := RunMRCaseStudies(context.Background(), []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMRCaseStudies(context.Background(), []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !reflect.DeepEqual(a[i].Points, b[i].Points) {
			t.Errorf("%s: sweeps differ across identical runs", a[i].App)
		}
	}
	ra, err := Figure10(context.Background(), nil, 32, []int{2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Figure10(context.Background(), nil, 32, []int{2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ra.Series, rb.Series) {
		t.Error("Figure10 differs across identical runs (seeded RNG broken?)")
	}
}
