package experiment

import (
	"context"
	"testing"

	"ipso/internal/core"
	"ipso/internal/workload"
)

func TestMRProbeMatchesSweep(t *testing.T) {
	probe := MRProbe(workload.NewSort())
	obs, err := probe(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if obs.N != 8 || obs.Wp <= 0 || obs.Ws <= 0 || obs.MaxTask <= 0 {
		t.Errorf("unexpected observation %+v", obs)
	}
	sweep := sweepByApp(t, "sort")
	for _, p := range sweep.Points {
		if p.N == 8 {
			if !almostF(obs.Wp, p.Wp) || !almostF(obs.Ws, p.Ws) {
				t.Errorf("probe (%g, %g) disagrees with sweep (%g, %g)", obs.Wp, obs.Ws, p.Wp, p.Ws)
			}
		}
	}
}

func TestFutureWorkPipeline(t *testing.T) {
	rep, err := FutureWork(context.Background(), 0.4, 128)
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, row := range rows {
		app, relErr := row[0], parseF(t, row[9])
		// The key future-work claim: speedups at large problem sizes are
		// predicted accurately from small-n probes.
		if relErr > 0.25 {
			t.Errorf("%s: prediction error %g at n=128, want <= 0.25", app, relErr)
		}
		// Probes never exceed the budget of 64.
		if len(row[1]) == 0 {
			t.Errorf("%s: no probes recorded", app)
		}
	}
	if _, err := FutureWork(context.Background(), 0, 128); err == nil {
		t.Error("invalid price should error")
	}
	if _, err := FutureWork(context.Background(), 1, 1); err == nil {
		t.Error("invalid validation degree should error")
	}
}

func TestCFProbeObservations(t *testing.T) {
	probe := CFProbe()
	est, err := core.NewOnlineEstimator(core.OnlineOptions{SerialPrecision: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		obs, err := probe(context.Background(), n)
		if err != nil {
			t.Fatal(err)
		}
		if err := est.Observe(obs); err != nil {
			t.Fatal(err)
		}
	}
	gci, hasOverhead, err := est.GammaCI(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !hasOverhead {
		t.Fatal("CF broadcast overhead must be detectable by n=64")
	}
	// The simulated CF broadcasts give Wo ∝ n ⇒ γ ≈ 2.
	if gci.Point < 1.8 || gci.Point > 2.2 {
		t.Errorf("online γ = %g, want ≈2", gci.Point)
	}
}

func almostF(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := b
	if scale < 1 {
		scale = 1
	}
	return d < 1e-9*scale
}
