// Package experiment regenerates every table and figure of the paper's
// evaluation (Section V) on the simulated substrate: it sweeps the
// scale-out degree, runs parallel and sequential executions, extracts
// phase workloads from traces exactly the way the paper does from log
// files, fits the scaling factors, and emits the same rows/series the
// paper reports.
//
// Each Figure*/Table* function returns a Report of named series (curve
// data) and tables (rows), which cmd/ipsobench renders as text and CSV.
// Absolute values differ from the paper (the substrate is a simulator,
// not EC2); the shapes — bounds, slopes, orderings, peak locations — are
// the reproduction targets, asserted by this package's tests.
package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Series is one named curve: y versus x (usually speedup versus n).
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Table is a titled grid of formatted rows.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Report is the output of one experiment: the figure/table identifier,
// what the paper shows, and the regenerated data. Notes carry free-form
// findings (fitted model parameters, caveats) that belong next to the
// tables but fit no grid.
type Report struct {
	ID     string // e.g. "fig4", "table1"
	Title  string
	Series []Series
	Tables []Table
	Notes  []string
}

// WriteText renders the report as aligned text.
func (r Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	for _, t := range r.Tables {
		if err := t.writeText(w); err != nil {
			return err
		}
	}
	for _, s := range r.Series {
		if err := s.writeText(w); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders all series as CSV blocks (one header line per
// series), quoting per RFC 4180 so series names containing commas or
// quotes stay machine-parseable.
func (r Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	for _, s := range r.Series {
		if err := cw.Write([]string{"series", s.Name}); err != nil {
			return err
		}
		for i := range s.X {
			// FormatFloat 'g' with precision -1 matches %g exactly.
			if err := cw.Write([]string{
				strconv.FormatFloat(s.X[i], 'g', -1, 64),
				strconv.FormatFloat(s.Y[i], 'g', -1, 64),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Points counts the data the report carries: one per series sample plus
// one per table row — the unit the -progress flag reports.
func (r Report) Points() int {
	n := 0
	for _, s := range r.Series {
		n += len(s.X)
	}
	for _, t := range r.Tables {
		n += len(t.Rows)
	}
	return n
}

func (t Table) writeText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "-- %s --\n", t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintf(w, "%s\n", strings.Join(parts, "  "))
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

func (s Series) writeText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "-- series %s --\n", s.Name); err != nil {
		return err
	}
	for i := range s.X {
		if _, err := fmt.Fprintf(w, "  %10.4g  %10.4g\n", s.X[i], s.Y[i]); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
