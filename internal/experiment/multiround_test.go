package experiment

import (
	"math"
	"testing"

	"ipso/internal/core"
	"ipso/internal/spark"
	"ipso/internal/workload"
)

// TestMultiRoundModelMatchesSimulatedCF validates the Section III claim
// that multi-round jobs are modeled "by viewing Wp(n), Ws(n) and Wo(n) as
// the sum of the corresponding workloads in all rounds": a two-round
// core.Multi built from the CF app's per-round workloads must track the
// engine-simulated CF speedup across the Table I grid.
func TestMultiRoundModelMatchesSimulatedCF(t *testing.T) {
	cf := workload.NewCollaborativeFiltering()

	// Per-round analytical workloads on the reference cluster: each of
	// the two update rounds carries half the iteration's fixed-size work;
	// the serialized broadcast gives Wo_r(n) = n·bytes/masterBW, i.e.
	// q_r(n) = n²·bytes/(masterBW·Wp_r(1)) — γ = 2.
	const (
		cpuRate  = 100e6
		masterBW = 250e6
	)
	wp1Round := cf.WorkPerIteration / 2 / cpuRate // seconds
	betaRound := cf.FeatureVectorBytes / masterBW / wp1Round
	round := core.Round{
		Name: "update",
		Wp1:  wp1Round,
		EX:   core.Constant(1),
		Q:    core.PowerFactor(betaRound, 2),
	}
	multi, err := core.NewMulti(round, round)
	if err != nil {
		t.Fatal(err)
	}

	for _, n := range []int{10, 30, 60, 90} {
		modeled, err := multi.Speedup(float64(n))
		if err != nil {
			t.Fatal(err)
		}
		simulated, _, _, err := spark.Speedup(workload.CFConfig(cf, n))
		if err != nil {
			t.Fatal(err)
		}
		// The model omits the per-stage deserialization constant the
		// simulator charges, so agreement within 20% is the target.
		if rel := math.Abs(modeled-simulated) / simulated; rel > 0.20 {
			t.Errorf("n=%d: multi-round model %.2f vs simulated %.2f (rel %.2f)", n, modeled, simulated, rel)
		}
	}

	// Both must peak in the same neighborhood.
	mPeak, sPeak := 0.0, 0.0
	var mN, sN int
	for n := 10; n <= 120; n += 5 {
		m, err := multi.Speedup(float64(n))
		if err != nil {
			t.Fatal(err)
		}
		if m > mPeak {
			mPeak, mN = m, n
		}
		s, _, _, err := spark.Speedup(workload.CFConfig(cf, n))
		if err != nil {
			t.Fatal(err)
		}
		if s > sPeak {
			sPeak, sN = s, n
		}
	}
	if abs(float64(mN-sN)) > 15 {
		t.Errorf("peak locations diverge: model n=%d vs simulated n=%d", mN, sN)
	}
}
