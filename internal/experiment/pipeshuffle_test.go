package experiment

import (
	"context"
	"testing"
)

// TestPipeShuffleReport: the pipelined-shuffle study must produce one
// table row per operating point, both q(n) series, and the two fit
// notes plus the comparison — with early dispatch actually firing at
// every multi-worker point.
func TestPipeShuffleReport(t *testing.T) {
	rep, err := PipeShuffle(context.Background(), []int{1, 2}, 2000, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 1 || len(rep.Tables[0].Rows) != 2 {
		t.Fatalf("unexpected report shape %+v", rep.Tables)
	}
	for _, row := range rep.Tables[0].Rows {
		if row[len(row)-1] != "yes" {
			t.Errorf("row %v not marked byte-identical", row)
		}
	}
	for _, name := range []string{"pipeshuffle/q-barrier", "pipeshuffle/q-early"} {
		s := seriesByName(t, rep, name)
		if len(s.X) != 2 {
			t.Errorf("%s has %d samples, want 2", name, len(s.X))
		}
		for _, v := range s.Y {
			if v <= 0 {
				t.Errorf("%s has nonpositive sample %g", name, v)
			}
		}
	}
	if len(rep.Notes) != 4 {
		t.Errorf("expected two q(n) fit notes, the comparison, and the invariant note, got %v", rep.Notes)
	}
}

func TestPipeShuffleValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := PipeShuffle(ctx, []int{1}, 10, 2, 2); err == nil {
		t.Error("single-point grid should error (fit needs >=2 points)")
	}
	if _, err := PipeShuffle(ctx, []int{1, 2}, 0, 2, 2); err == nil {
		t.Error("zero lines should error")
	}
	if _, err := PipeShuffle(ctx, []int{1, 2}, 10, 2, 0); err == nil {
		t.Error("zero reducers should error")
	}
	if _, err := PipeShuffle(ctx, []int{1, 0}, 10, 2, 2); err == nil {
		t.Error("invalid worker count should error")
	}
}
