package experiment

import (
	"context"
	"strings"
	"testing"

	"ipso/internal/core"
)

func TestAblationBroadcast(t *testing.T) {
	ns := []int{10, 30, 60, 90, 120}
	rep, err := AblationBroadcast(context.Background(), ns)
	if err != nil {
		t.Fatal(err)
	}
	serial := seriesByName(t, rep, "cf/broadcast-serial")
	parallel := seriesByName(t, rep, "cf/broadcast-parallel")
	// Serial broadcast peaks and falls; the idealized broadcast keeps
	// growing across the same grid.
	if serial.Y[len(serial.Y)-1] >= serial.Y[2] {
		t.Errorf("serial broadcast should fall past its peak: %v", serial.Y)
	}
	for i := 1; i < len(parallel.Y); i++ {
		if parallel.Y[i] <= parallel.Y[i-1] {
			t.Errorf("parallel broadcast should scale monotonically: %v", parallel.Y)
			break
		}
	}
	// And it strictly dominates at large n.
	if parallel.Y[len(parallel.Y)-1] <= serial.Y[len(serial.Y)-1] {
		t.Error("parallel broadcast should beat serial at large n")
	}
}

func TestAblationReducerMemory(t *testing.T) {
	ns := []int{1, 4, 8, 12, 16, 20, 24, 28, 32, 40, 48}
	rep, err := AblationReducerMemory(context.Background(), ns, []float64{1 << 30, 2 << 30, 4 << 30})
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	// 1 GB overflows at n≈8, 2 GB at n≈16, 4 GB at n≈32: detected breaks
	// must be ordered and near the expected points.
	breaks := make([]float64, 0, 3)
	for _, row := range rows {
		if row[2] == "none" {
			t.Fatalf("no break detected for memory %s GB", row[0])
		}
		breaks = append(breaks, parseF(t, row[2]))
	}
	if !(breaks[0] < breaks[1] && breaks[1] < breaks[2]) {
		t.Errorf("break points should move with memory: %v", breaks)
	}
	for i, want := range []float64{8, 16, 32} {
		if breaks[i] < want/2 || breaks[i] > want*1.8 {
			t.Errorf("break %d at n=%g, want near %g", i, breaks[i], want)
		}
	}
	if _, err := AblationReducerMemory(context.Background(), ns, []float64{-1}); err == nil {
		t.Error("invalid memory should error")
	}
}

func TestAblationStatistic(t *testing.T) {
	ns := []int{1, 4, 16, 64}
	rep, err := AblationStatistic(context.Background(), ns, 7)
	if err != nil {
		t.Fatal(err)
	}
	det := seriesByName(t, rep, "sort/deterministic")
	uni := seriesByName(t, rep, "sort/uniform±30%")
	par := seriesByName(t, rep, "sort/pareto-stragglers")
	for i := 1; i < len(ns); i++ { // skip n=1 (single task, no max effect)
		if uni.Y[i] >= det.Y[i] {
			t.Errorf("n=%d: uniform jitter %g should lower speedup below %g", ns[i], uni.Y[i], det.Y[i])
		}
		if par.Y[i] >= det.Y[i] {
			t.Errorf("n=%d: straggler jitter %g should lower speedup below %g", ns[i], par.Y[i], det.Y[i])
		}
	}
}

func TestFigureTaxonomyReports(t *testing.T) {
	ns := []float64{1, 2, 4, 8, 16, 32, 64, 128}
	for _, w := range []core.WorkloadType{core.FixedTime, core.FixedSize} {
		rep, err := FigureTaxonomy(context.Background(), w, ns)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Series) != 5 {
			t.Errorf("%v: series = %d, want 5", w, len(rep.Series))
		}
		if len(rep.Tables) != 1 || len(rep.Tables[0].Rows) != 5 {
			t.Fatalf("%v: missing classification table", w)
		}
		// Exactly one peaked row, two bounded type-III rows.
		peaked, bounded := 0, 0
		for _, row := range rep.Tables[0].Rows {
			if strings.HasPrefix(row[1], "IV") {
				peaked++
			}
			if strings.HasPrefix(row[1], "III") {
				bounded++
			}
		}
		if peaked != 1 || bounded != 2 {
			t.Errorf("%v: peaked=%d bounded=%d, want 1 and 2", w, peaked, bounded)
		}
	}
	if _, err := FigureTaxonomy(context.Background(), core.WorkloadType(0), ns); err == nil {
		t.Error("unknown workload type should error")
	}
}

func TestReportFormatting(t *testing.T) {
	rep := Report{
		ID:    "x",
		Title: "demo",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{3, 4}},
		},
		Tables: []Table{
			{Title: "t", Headers: []string{"h1", "h2"}, Rows: [][]string{{"a", "bb"}}},
		},
	}
	var txt strings.Builder
	if err := rep.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"== x: demo ==", "-- t --", "h1", "series a"} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("text output missing %q:\n%s", want, txt.String())
		}
	}
	var csv strings.Builder
	if err := rep.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "series,a\n1,3\n2,4\n") {
		t.Errorf("csv output unexpected:\n%s", csv.String())
	}
}
