package experiment

import (
	"context"
	"fmt"
	"sort"
	"time"

	"ipso/internal/chaos"
	"ipso/internal/netmr"
	"ipso/internal/runner"
	"ipso/internal/workload"
)

// Straggler model parameters: one synchronized wave of n unit tasks on n
// workers, each inflated by a heavy-tailed injected latency — the
// regime where the paper's statistic speedup (Eq. 7/8) is governed by
// E[max Tp,i(n)], so a single straggler stalls the whole barrier.
const (
	stragglerBaseTask   = 1.0  // T0: intrinsic task time, model seconds
	stragglerQuantile   = 0.75 // speculation reference quantile (master default)
	stragglerMultiplier = 1.25 // clone when latest launch exceeds multiplier × quantile
)

// stragglerLatency is the injected per-task latency: a truncated Pareto
// whose occasional huge draws manufacture the stragglers.
func stragglerLatency() chaos.Dist {
	return chaos.Dist{Kind: chaos.DistPareto, Base: 150 * time.Millisecond, Alpha: 1.1, Max: 20 * time.Second}
}

// Straggler quantifies what the injected tail does to scaling and how
// much of it speculative re-execution claws back. For each n it Monte
// Carlo-estimates three makespans of an n-task wave on n workers:
//
//   - ideal (no chaos): every task takes T0, the wave finishes at T0;
//   - no mitigation: task i finishes at T0+Li with Li heavy-tailed, the
//     wave at max_i(T0+Li) — the E[max] inflation of Eq. 7/8;
//   - speculation: when a task outlives the multiplier × quantile
//     threshold of the realized finish times, a clone restarts it from
//     scratch with a fresh latency draw, and the task finishes at the
//     earlier of the two — the netmr master's policy in model form.
//
// Reported recovery is the fraction of the E[max] inflation (the
// mechanism of the speedup loss) that speculation removes:
// (E[M_none] − E[M_spec]) / (E[M_none] − T0). Every sample comes from a
// seed-derived stream, so the report is byte-identical across runs and
// at any -parallel width.
func Straggler(ctx context.Context, ns []int, reps int, seed int64) (Report, error) {
	if len(ns) == 0 || reps < 1 {
		return Report{}, fmt.Errorf("experiment: invalid straggler grid (ns=%v reps=%d)", ns, reps)
	}
	dist := stragglerLatency()

	type point struct {
		none, spec float64 // E[makespan], model seconds
	}
	points, err := runner.Map(ctx, len(ns), func(_ context.Context, i int) (point, error) {
		n := ns[i]
		if n < 1 {
			return point{}, fmt.Errorf("experiment: invalid straggler n %d", n)
		}
		sumNone, sumSpec := 0.0, 0.0
		finish := make([]float64, n)
		for r := 0; r < reps; r++ {
			rng := chaos.NewSplitMix64(chaos.Derive(uint64(seed), 0x57A66, uint64(n), uint64(r)))
			for t := 0; t < n; t++ {
				finish[t] = stragglerBaseTask + dist.SampleSeconds(rng)
			}
			sumNone += maxOf(finish)
			// Speculation pass: the threshold comes from the realized
			// finishes (the observable the master's quantile trigger
			// estimates), clones redraw their latency.
			threshold := stragglerMultiplier * quantileOf(finish, stragglerQuantile)
			mspec := 0.0
			for t := 0; t < n; t++ {
				f := finish[t]
				if f > threshold {
					clone := threshold + stragglerBaseTask + dist.SampleSeconds(rng)
					if clone < f {
						f = clone
					}
				}
				if f > mspec {
					mspec = f
				}
			}
			sumSpec += mspec
		}
		return point{none: sumNone / float64(reps), spec: sumSpec / float64(reps)}, nil
	})
	if err != nil {
		return Report{}, err
	}

	rep := Report{ID: "straggler", Title: "Heavy-tailed stragglers: E[max] inflation and speculative recovery"}
	tbl := Table{
		Title: fmt.Sprintf("wave of n unit tasks, latency %s, clone at %g × q%g (%d reps)",
			dist, stragglerMultiplier, 100*stragglerQuantile, reps),
		Headers: []string{"n", "E[max]/T0 none", "E[max]/T0 spec", "S none", "S spec", "recovery"},
	}
	xs := make([]float64, len(ns))
	sIdeal := make([]float64, len(ns))
	sNone := make([]float64, len(ns))
	sSpec := make([]float64, len(ns))
	recovery := make([]float64, len(ns))
	for i, n := range ns {
		p := points[i]
		xs[i] = float64(n)
		sIdeal[i] = float64(n)
		sNone[i] = float64(n) * stragglerBaseTask / p.none
		sSpec[i] = float64(n) * stragglerBaseTask / p.spec
		recovery[i] = (p.none - p.spec) / (p.none - stragglerBaseTask)
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3f", p.none/stragglerBaseTask),
			fmt.Sprintf("%.3f", p.spec/stragglerBaseTask),
			f2(sNone[i]),
			f2(sSpec[i]),
			fmt.Sprintf("%.3f", recovery[i]),
		})
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Series = append(rep.Series,
		Series{Name: "speedup/ideal", X: xs, Y: sIdeal},
		Series{Name: "speedup/no-mitigation", X: xs, Y: sNone},
		Series{Name: "speedup/speculation", X: xs, Y: sSpec},
		Series{Name: "recovery", X: xs, Y: recovery},
	)

	// Close the loop on the real runtime: a chaos-injected netmr cluster
	// (one worker slowed by injected task latency, speculation on) must
	// still produce the exact WordCount answer. Only schedule-invariant
	// facts are reported, so the experiment stays byte-reproducible.
	keys, total, err := runStragglerValidation(ctx)
	if err != nil {
		return Report{}, err
	}
	rep.Tables = append(rep.Tables, Table{
		Title:   "real netmr validation: wordcount under injected task latency with speculation",
		Headers: []string{"fact", "value"},
		Rows: [][]string{
			{"distinct words", fmt.Sprintf("%d", keys)},
			{"total words", fmt.Sprintf("%.0f", total)},
		},
	})
	return rep, nil
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// quantileOf returns the nearest-rank q-quantile without mutating xs.
func quantileOf(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(q * float64(len(s)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// runStragglerValidation runs WordCount on a real TCP cluster where one
// of three workers suffers injected fixed task latency, with retries and
// speculation enabled, and returns the distinct-key count and summed
// word count — values any correct execution must reproduce no matter
// which launches won.
func runStragglerValidation(ctx context.Context) (int, float64, error) {
	input, err := workload.TextLines(400, 8, 42)
	if err != nil {
		return 0, 0, err
	}
	job := wordCountNetJob()
	registry, err := netmr.NewRegistry(job)
	if err != nil {
		return 0, 0, err
	}
	// Partitions pinned above 1 so the validation also covers presult
	// frames racing speculative duplicates — a result and its discarded
	// sibling may arrive partitioned and flat respectively.
	master, err := netmr.NewMaster(registry, netmr.MasterConfig{
		SpeculationInterval: 5 * time.Millisecond,
		Partitions:          4,
	})
	if err != nil {
		return 0, 0, err
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	defer master.Close()

	var stops []func()
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	for i := 0; i < 3; i++ {
		wreg, err := netmr.NewRegistry(job)
		if err != nil {
			return 0, 0, err
		}
		var opts []netmr.WorkerOption
		if i == 0 { // the slow machine: every task pays a fixed delay
			// 40 ms is still ~8 speculation intervals, so clones always
			// fire; the reported facts (distinct/total words) are
			// input-determined, so the smaller constant only trims the
			// experiment's wall clock.
			opts = append(opts, netmr.WithChaos(chaos.New(chaos.Config{
				Seed:        1,
				TaskLatency: chaos.Dist{Kind: chaos.DistFixed, Base: 40 * time.Millisecond},
			})))
		}
		w, err := netmr.NewWorker(wreg, opts...)
		if err != nil {
			return 0, 0, err
		}
		if err := w.Start(addr); err != nil {
			return 0, 0, err
		}
		stops = append(stops, w.Stop)
	}
	if err := master.WaitForWorkers(3, 30*time.Second); err != nil {
		return 0, 0, err
	}
	result, _, err := master.Run(ctx, "wordcount", input, 12)
	if err != nil {
		return 0, 0, err
	}
	total := 0.0
	for _, v := range result {
		total += v
	}
	return len(result), total, nil
}
