package experiment

import (
	"fmt"

	"ipso/internal/mapreduce"
	"ipso/internal/stats"
)

// ReplicatedSpeedup runs one MapReduce operating point reps times with
// independent straggler seeds and returns the sample of measured
// speedups — the paper's "data presented are average results of multiple
// experimental runs" for the statistic model.
func ReplicatedSpeedup(app mapreduce.AppModel, n, reps int, jitter stats.Distribution) ([]float64, error) {
	if reps < 1 {
		return nil, fmt.Errorf("experiment: reps %d must be >= 1", reps)
	}
	out := make([]float64, 0, reps)
	for r := 0; r < reps; r++ {
		cfg := MRConfig(app, n)
		cfg.Jitter = jitter
		cfg.Seed = int64(r + 1)
		s, _, _, err := mapreduce.Speedup(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiment: rep %d: %w", r, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// ReplicationSummary is the averaged result at one operating point.
type ReplicationSummary struct {
	N      int
	Mean   float64
	StdDev float64
	Reps   int
}

// ReplicatedSweep averages the measured speedup across replicated runs at
// each degree.
func ReplicatedSweep(app mapreduce.AppModel, ns []int, reps int, jitter stats.Distribution) ([]ReplicationSummary, error) {
	out := make([]ReplicationSummary, 0, len(ns))
	for _, n := range ns {
		sample, err := ReplicatedSpeedup(app, n, reps, jitter)
		if err != nil {
			return nil, err
		}
		out = append(out, ReplicationSummary{
			N:      n,
			Mean:   stats.Mean(sample),
			StdDev: stats.StdDev(sample),
			Reps:   reps,
		})
	}
	return out, nil
}
