package experiment

import (
	"fmt"
	"sync"

	"ipso/internal/spark"
	"ipso/internal/workload"
)

// memoTable caches expensive point computations under canonical string
// keys. Each key has its own latch, so distinct keys compute
// concurrently while a duplicate request blocks only on its own key —
// exactly what the runner.Map fan-out needs when two experiments share
// grid points. Errors are not cached: a cancelled first attempt must
// not poison later runs (same contract as Config.MRSweeps).
type memoTable struct {
	mu      sync.Mutex
	entries map[string]*memoEntry
}

type memoEntry struct {
	mu   sync.Mutex
	done bool
	val  float64
}

func (t *memoTable) get(key string, compute func() (float64, error)) (float64, error) {
	t.mu.Lock()
	if t.entries == nil {
		t.entries = make(map[string]*memoEntry)
	}
	e, ok := t.entries[key]
	if !ok {
		e = &memoEntry{}
		t.entries[key] = e
	}
	t.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done {
		return e.val, nil
	}
	v, err := compute()
	if err != nil {
		return 0, err
	}
	e.val, e.done = v, true
	return v, nil
}

// size reports the number of completed entries (test hook).
func (t *memoTable) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, e := range t.entries {
		e.mu.Lock()
		if e.done {
			n++
		}
		e.mu.Unlock()
	}
	return n
}

// SparkSpeedup returns spark.Speedup for one (app, N, m) operating
// point, memoized on the Config. The evaluation grids overlap heavily —
// the surface experiment's points are a strict subset of Fig. 9's — so
// experiments sharing a Config simulate each distinct point exactly
// once per run. The simulation is a pure function of its Config, so a
// cache hit is byte-identical to a recomputation by construction. A nil
// receiver disables memoization (one-off callers, tests).
func (c *Config) SparkSpeedup(app spark.AppModel, tasks, execs int) (float64, error) {
	if c == nil {
		s, _, _, err := spark.Speedup(workload.SparkConfig(app, tasks, execs))
		return s, err
	}
	key := fmt.Sprintf("spark/%s/%d/%d", app.Name(), tasks, execs)
	return c.sparkMemo.get(key, func() (float64, error) {
		s, _, _, err := spark.Speedup(workload.SparkConfig(app, tasks, execs))
		return s, err
	})
}

// SparkPointsMemoized reports how many spark operating points the memo
// holds — surfaced by the self-diagnosis experiment and tests.
func (c *Config) SparkPointsMemoized() int {
	if c == nil {
		return 0
	}
	return c.sparkMemo.size()
}
