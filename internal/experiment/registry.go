package experiment

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"ipso/internal/cluster"
	"ipso/internal/core"
	"ipso/internal/runner"
)

// DepMRSweeps names the shared MapReduce case-study sweeps: the figures
// that plot or fit them (fig4-fig7, diag, provisioning) declare it so
// RunAll resolves the sweeps exactly once before fanning out.
const DepMRSweeps = "mr-sweeps"

// Grids collects every grid and tuning knob of the evaluation so one
// value pins the whole run's shape (full paper grids or quick CI grids).
type Grids struct {
	MR       []int     // MapReduce case-study scale-out grid
	Taxonomy []float64 // fig2/fig3 n grid
	Fig8     []float64 // CF reconstruction n grid
	FitMaxN  int       // fig6/fig7 small-n fit window

	LoadLevels     []int // fig9 per-executor load levels N/m
	SparkExecs     []int // fig9/surface executor grid
	FixedSizeTasks int   // fig10 fixed problem size N
	FixedSizeExecs []int // fig10 executor grid
	SurfaceLoads   []int // surface load levels

	CF       []int     // ablation-broadcast n grid
	Memory   []int     // ablation-memory n grid
	Memories []float64 // ablation-memory reducer sizes (bytes)
	Jitter   []int     // ablation-statistic n grid

	ContentionRates           []float64 // ablation-contention service rates
	ContentionRequestsPerTask float64
	ContentionTaskSeconds     float64
	ContentionGrid            []float64

	FixedSizeMRBytes float64 // fixedsize-mr total working set
	FixedSizeMRGrid  []int

	PricePerNodeHour    float64 // provisioning + futurework
	ProvisionMaxN       int
	FutureWorkValidateN int

	RealNetWorkers []int // realnet worker pool sizes
	RealNetLines   int
	RealNetShards  int

	SelfDiagMaxWidth int // selfdiag probe-width cap (0 = uncapped)
	SelfDiagRounds   int // selfdiag per-task spin rounds

	StragglerNs   []int // straggler wave widths n
	StragglerReps int   // straggler Monte Carlo repetitions per n

	LiveFitWorkers []int // livefit traced-cluster worker pool sizes
	LiveFitLines   int   // livefit input size (lines)
	LiveFitShards  int   // livefit shard count

	DistReduceWorkers []int // distreduce worker pool sizes
	DistReduceLines   int   // distreduce input size (lines)
	DistReduceShards  int   // distreduce map shard count
	DistReduceR       int   // distreduce reduce tasks R

	OOShuffleWorkers []int   // ooshuffle worker pool sizes
	OOShuffleLines   int     // ooshuffle input size (lines)
	OOShuffleShards  int     // ooshuffle map shard count
	OOShuffleR       int     // ooshuffle reduce tasks R
	OOShuffleBudgets []int64 // spill budget sweep, bytes; first entry must be 0 (unconstrained)

	PipeShuffleWorkers []int // pipeshuffle worker pool sizes
	PipeShuffleLines   int   // pipeshuffle input size (lines)
	PipeShuffleShards  int   // pipeshuffle map shard count
	PipeShuffleR       int   // pipeshuffle reduce tasks R
}

// DoublingGrid builds a doubling grid from lo that always ends at hi —
// the geometric spacing the paper's log-scale figures use.
func DoublingGrid(lo, hi float64) []float64 {
	var out []float64
	for n := lo; n < hi; n *= 2 {
		out = append(out, n)
	}
	return append(out, hi)
}

// DefaultGrids returns the full paper grids, or the reduced CI-friendly
// grids when quick is set.
func DefaultGrids(quick bool) Grids {
	g := Grids{
		MR:       DefaultMRGrid(),
		Taxonomy: DoublingGrid(1, 200),
		Fig8:     DoublingGrid(5, 150),
		FitMaxN:  16,

		LoadLevels:     DefaultLoadLevels(),
		SparkExecs:     DefaultSparkExecGrid(),
		FixedSizeTasks: DefaultFixedSizeTasks,
		FixedSizeExecs: DefaultFixedSizeExecGrid(),
		SurfaceLoads:   []int{1, 2, 4},

		CF:       []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 120},
		Memory:   []int{1, 4, 8, 12, 16, 20, 24, 28, 32, 40, 48},
		Memories: []float64{1 << 30, 2 << 30, 4 << 30},
		Jitter:   []int{1, 2, 4, 8, 16, 32, 64},

		ContentionRates:           []float64{100, 200},
		ContentionRequestsPerTask: 20,
		ContentionTaskSeconds:     10,
		ContentionGrid:            DoublingGrid(1, 96),

		FixedSizeMRBytes: 16 * cluster.BlockBytes,
		FixedSizeMRGrid:  []int{1, 2, 4, 8, 16, 32, 64},

		PricePerNodeHour:    0.4,
		ProvisionMaxN:       200,
		FutureWorkValidateN: 128,

		RealNetWorkers: []int{1, 2, 4, 8},
		RealNetLines:   20000,
		RealNetShards:  16,

		SelfDiagMaxWidth: 16,
		SelfDiagRounds:   200000,

		StragglerNs:   []int{4, 8, 16, 32, 64, 128},
		StragglerReps: 400,

		LiveFitWorkers: []int{1, 2, 4, 8},
		LiveFitLines:   20000,
		LiveFitShards:  16,

		DistReduceWorkers: []int{1, 2, 4, 8},
		DistReduceLines:   20000,
		DistReduceShards:  16,
		DistReduceR:       8,

		OOShuffleWorkers: []int{1, 2, 4, 8},
		OOShuffleLines:   20000,
		OOShuffleShards:  16,
		OOShuffleR:       8,
		OOShuffleBudgets: []int64{0, 256 << 10, 64 << 10, 16 << 10, 4 << 10},

		PipeShuffleWorkers: []int{1, 2, 4, 8},
		PipeShuffleLines:   20000,
		PipeShuffleShards:  16,
		PipeShuffleR:       8,
	}
	if quick {
		g.MR = []int{1, 2, 4, 8, 16, 24, 32, 48, 64}
		g.Taxonomy = DoublingGrid(1, 64)
		g.SparkExecs = []int{2, 4, 8, 16}
		g.CF = []int{10, 30, 60, 90}
		g.Jitter = []int{1, 4, 16}
		g.RealNetWorkers = []int{1, 2}
		g.SelfDiagMaxWidth = 6
		g.SelfDiagRounds = 60000
		g.StragglerNs = []int{4, 16, 64}
		g.StragglerReps = 120
		g.LiveFitWorkers = []int{1, 2, 3, 4}
		g.LiveFitLines = 4000
		g.LiveFitShards = 8
		g.DistReduceWorkers = []int{1, 2, 4}
		g.DistReduceLines = 4000
		g.DistReduceShards = 8
		g.DistReduceR = 4
		g.OOShuffleWorkers = []int{1, 2, 4}
		g.OOShuffleLines = 4000
		g.OOShuffleShards = 8
		g.OOShuffleR = 4
		g.OOShuffleBudgets = []int64{0, 32 << 10, 4 << 10}
		g.PipeShuffleWorkers = []int{1, 2, 4}
		g.PipeShuffleLines = 4000
		g.PipeShuffleShards = 8
		g.PipeShuffleR = 4
	}
	return g
}

// Config carries everything an experiment needs beyond the context: the
// grids, the root RNG seed that per-task seeds derive from, and the
// memoized shared computations. One Config is built per evaluation run;
// it is safe for concurrent use by the experiments of that run.
type Config struct {
	Grids Grids
	Seed  int64

	mu        sync.Mutex
	mrSweeps  []MRSweep
	sparkMemo memoTable // (app, N, m) speedup points shared across experiments
}

// DefaultConfig builds the standard evaluation configuration.
func DefaultConfig(quick bool) *Config {
	return &Config{Grids: DefaultGrids(quick), Seed: 7}
}

// MRSweeps returns the shared MapReduce case-study sweeps, computing
// them on first use. Concurrent callers block until the first
// computation finishes, so the sweeps are simulated exactly once per
// Config however many experiments need them. Errors are not cached: a
// cancelled first attempt does not poison later runs.
func (c *Config) MRSweeps(ctx context.Context) ([]MRSweep, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.mrSweeps != nil {
		return c.mrSweeps, nil
	}
	sweeps, err := RunMRCaseStudies(ctx, c.Grids.MR)
	if err != nil {
		return nil, err
	}
	c.mrSweeps = sweeps
	return sweeps, nil
}

// Experiment is one registered table/figure generator.
type Experiment struct {
	// ID is the stable identifier used by -only and report headers.
	ID string
	// Title is the one-line description shown by -list.
	Title string
	// Deps names the shared computations (e.g. DepMRSweeps) this
	// experiment reads, so RunAll can resolve each once up front.
	Deps []string
	// Measured marks experiments whose output contains genuine
	// wall-clock measurements: machine-dependent, so excluded from
	// byte-for-byte reproducibility checks.
	Measured bool
	// Run produces the report. It must honor ctx cancellation and be
	// safe to call concurrently with other experiments sharing cfg.
	Run func(ctx context.Context, cfg *Config) (Report, error)
}

// Registry holds experiments in registration order.
type Registry struct {
	order []string
	byID  map[string]Experiment
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: map[string]Experiment{}}
}

// Register adds an experiment; IDs must be non-empty and unique.
func (r *Registry) Register(e Experiment) error {
	if e.ID == "" {
		return fmt.Errorf("experiment: registering empty ID")
	}
	if e.Run == nil {
		return fmt.Errorf("experiment: %s has no Run function", e.ID)
	}
	if _, dup := r.byID[e.ID]; dup {
		return fmt.Errorf("experiment: duplicate ID %q", e.ID)
	}
	r.order = append(r.order, e.ID)
	r.byID[e.ID] = e
	return nil
}

// mustRegister panics on registration errors — used only for the
// built-in table, where a bad entry is a programming bug.
func (r *Registry) mustRegister(e Experiment) {
	if err := r.Register(e); err != nil {
		panic(err)
	}
}

// IDs returns all experiment IDs in registration order.
func (r *Registry) IDs() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Lookup returns the experiment registered under id.
func (r *Registry) Lookup(id string) (Experiment, bool) {
	e, ok := r.byID[id]
	return e, ok
}

// Select resolves the requested IDs to experiments in registration
// order (duplicates collapse). An empty request selects everything; an
// unknown ID is an error that lists the valid ones.
func (r *Registry) Select(ids []string) ([]Experiment, error) {
	want := map[string]bool{}
	for _, id := range ids {
		if _, ok := r.byID[id]; !ok {
			return nil, fmt.Errorf("unknown experiment %q (valid: %s)", id, strings.Join(r.IDs(), " "))
		}
		want[id] = true
	}
	sel := make([]Experiment, 0, len(r.order))
	for _, id := range r.order {
		if len(want) == 0 || want[id] {
			sel = append(sel, r.byID[id])
		}
	}
	return sel, nil
}

// Progress reports one finished experiment to RunAll's callback.
type Progress struct {
	ID      string
	Points  int // series samples + table rows produced
	Elapsed time.Duration
}

// RunAll runs the selected experiments on the context's worker pool and
// returns their reports in registration order regardless of completion
// order. Shared dependencies are resolved once before the fan-out; the
// first failure cancels the rest. onProgress, if non-nil, is invoked
// serially as experiments finish.
func (r *Registry) RunAll(ctx context.Context, ids []string, cfg *Config, onProgress func(Progress)) ([]Report, error) {
	sel, err := r.Select(ids)
	if err != nil {
		return nil, err
	}
	deps := map[string]bool{}
	for _, e := range sel {
		for _, d := range e.Deps {
			deps[d] = true
		}
	}
	for _, d := range sortedKeys(deps) {
		switch d {
		case DepMRSweeps:
			if _, err := cfg.MRSweeps(ctx); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("experiment: unknown dependency %q", d)
		}
	}
	var mu sync.Mutex
	return runner.Map(ctx, len(sel), func(ctx context.Context, i int) (Report, error) {
		start := time.Now()
		rep, err := sel[i].Run(ctx, cfg)
		if err != nil {
			return Report{}, fmt.Errorf("%s: %w", sel[i].ID, err)
		}
		if onProgress != nil {
			mu.Lock()
			onProgress(Progress{ID: sel[i].ID, Points: rep.Points(), Elapsed: time.Since(start)})
			mu.Unlock()
		}
		return rep, nil
	})
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// DefaultRegistry builds the full evaluation: every table and figure of
// the paper plus the beyond-the-paper studies, in the order the paper
// presents them.
func DefaultRegistry() *Registry {
	r := NewRegistry()
	withSweeps := func(f func(ctx context.Context, sweeps []MRSweep, cfg *Config) (Report, error)) func(context.Context, *Config) (Report, error) {
		return func(ctx context.Context, cfg *Config) (Report, error) {
			sweeps, err := cfg.MRSweeps(ctx)
			if err != nil {
				return Report{}, err
			}
			return f(ctx, sweeps, cfg)
		}
	}
	r.mustRegister(Experiment{ID: "fig2", Title: "Fixed-time scaling taxonomy",
		Run: func(ctx context.Context, cfg *Config) (Report, error) {
			return FigureTaxonomy(ctx, core.FixedTime, cfg.Grids.Taxonomy)
		}})
	r.mustRegister(Experiment{ID: "fig3", Title: "Fixed-size scaling taxonomy",
		Run: func(ctx context.Context, cfg *Config) (Report, error) {
			return FigureTaxonomy(ctx, core.FixedSize, cfg.Grids.Taxonomy)
		}})
	r.mustRegister(Experiment{ID: "fig4", Title: "MapReduce speedups vs Gustafson", Deps: []string{DepMRSweeps},
		Run: withSweeps(func(ctx context.Context, sweeps []MRSweep, _ *Config) (Report, error) {
			return Figure4(ctx, sweeps)
		})})
	r.mustRegister(Experiment{ID: "fig5", Title: "Workload decomposition vs n", Deps: []string{DepMRSweeps},
		Run: withSweeps(func(ctx context.Context, sweeps []MRSweep, _ *Config) (Report, error) {
			return Figure5(ctx, sweeps)
		})})
	r.mustRegister(Experiment{ID: "fig6", Title: "IPSO fits of the case studies", Deps: []string{DepMRSweeps},
		Run: withSweeps(func(ctx context.Context, sweeps []MRSweep, cfg *Config) (Report, error) {
			return Figure6(ctx, sweeps, cfg.Grids.FitMaxN)
		})})
	r.mustRegister(Experiment{ID: "fig7", Title: "IPSO extrapolation quality", Deps: []string{DepMRSweeps},
		Run: withSweeps(func(ctx context.Context, sweeps []MRSweep, cfg *Config) (Report, error) {
			return Figure7(ctx, sweeps, cfg.Grids.FitMaxN)
		})})
	r.mustRegister(Experiment{ID: "table1", Title: "Collaborative Filtering workloads",
		Run: func(ctx context.Context, cfg *Config) (Report, error) {
			return TableI(ctx)
		}})
	r.mustRegister(Experiment{ID: "fig8", Title: "CF speedup vs Amdahl",
		Run: func(ctx context.Context, cfg *Config) (Report, error) {
			return Figure8(ctx, cfg.Grids.Fig8)
		}})
	r.mustRegister(Experiment{ID: "fig9", Title: "Spark fixed-time dimension",
		Run: func(ctx context.Context, cfg *Config) (Report, error) {
			return Figure9(ctx, cfg, cfg.Grids.LoadLevels, cfg.Grids.SparkExecs)
		}})
	r.mustRegister(Experiment{ID: "fig10", Title: "Spark fixed-size dimension",
		Run: func(ctx context.Context, cfg *Config) (Report, error) {
			return Figure10(ctx, cfg, cfg.Grids.FixedSizeTasks, cfg.Grids.FixedSizeExecs)
		}})
	r.mustRegister(Experiment{ID: "diag", Title: "Scaling diagnoses of the case studies", Deps: []string{DepMRSweeps},
		Run: withSweeps(func(ctx context.Context, sweeps []MRSweep, _ *Config) (Report, error) {
			return Diagnostics(ctx, sweeps)
		})})
	r.mustRegister(Experiment{ID: "provisioning", Title: "Speedup-per-dollar operating points", Deps: []string{DepMRSweeps},
		Run: withSweeps(func(ctx context.Context, sweeps []MRSweep, cfg *Config) (Report, error) {
			return Provisioning(ctx, sweeps, cfg.Grids.PricePerNodeHour, cfg.Grids.ProvisionMaxN)
		})})
	r.mustRegister(Experiment{ID: "ablation-broadcast", Title: "Serial vs parallel broadcast",
		Run: func(ctx context.Context, cfg *Config) (Report, error) {
			return AblationBroadcast(ctx, cfg.Grids.CF)
		}})
	r.mustRegister(Experiment{ID: "ablation-memory", Title: "Reducer memory vs IN(n) step",
		Run: func(ctx context.Context, cfg *Config) (Report, error) {
			return AblationReducerMemory(ctx, cfg.Grids.Memory, cfg.Grids.Memories)
		}})
	r.mustRegister(Experiment{ID: "ablation-statistic", Title: "Deterministic vs straggler task times",
		Run: func(ctx context.Context, cfg *Config) (Report, error) {
			return AblationStatistic(ctx, cfg.Grids.Jitter, cfg.Seed)
		}})
	r.mustRegister(Experiment{ID: "futurework", Title: "Online (δ, γ) estimation pipeline",
		Run: func(ctx context.Context, cfg *Config) (Report, error) {
			return FutureWork(ctx, cfg.Grids.PricePerNodeHour, cfg.Grids.FutureWorkValidateN)
		}})
	r.mustRegister(Experiment{ID: "surface", Title: "Spark speedup surfaces S(N, m)",
		Run: func(ctx context.Context, cfg *Config) (Report, error) {
			return SparkSurface(ctx, cfg, cfg.Grids.SurfaceLoads, cfg.Grids.SparkExecs)
		}})
	r.mustRegister(Experiment{ID: "fixedsize-mr", Title: "Fixed-size MapReduce dimension",
		Run: func(ctx context.Context, cfg *Config) (Report, error) {
			return FixedSizeMR(ctx, cfg.Grids.FixedSizeMRBytes, cfg.Grids.FixedSizeMRGrid)
		}})
	r.mustRegister(Experiment{ID: "ablation-contention", Title: "Contention-induced q(n)",
		Run: func(ctx context.Context, cfg *Config) (Report, error) {
			g := cfg.Grids
			return AblationContention(ctx, g.ContentionRates, g.ContentionRequestsPerTask, g.ContentionTaskSeconds, g.ContentionGrid)
		}})
	r.mustRegister(Experiment{ID: "realnet", Title: "Real TCP MapReduce wall-clock phases", Measured: true,
		Run: func(ctx context.Context, cfg *Config) (Report, error) {
			g := cfg.Grids
			return RealNet(ctx, g.RealNetWorkers, g.RealNetLines, g.RealNetShards)
		}})
	r.mustRegister(Experiment{ID: "selfdiag", Title: "IPSO self-diagnosis of the harness runner", Measured: true,
		Run: func(ctx context.Context, cfg *Config) (Report, error) {
			g := cfg.Grids
			return SelfDiag(ctx, cfg.Seed, g.SelfDiagMaxWidth, g.SelfDiagRounds)
		}})
	r.mustRegister(Experiment{ID: "straggler", Title: "Straggler tails and speculative recovery (Eq. 7/8)",
		Run: func(ctx context.Context, cfg *Config) (Report, error) {
			g := cfg.Grids
			return Straggler(ctx, g.StragglerNs, g.StragglerReps, cfg.Seed)
		}})
	r.mustRegister(Experiment{ID: "livefit", Title: "Live-telemetry-fed model fitting from the traced cluster", Measured: true,
		Run: func(ctx context.Context, cfg *Config) (Report, error) {
			g := cfg.Grids
			return LiveFit(ctx, g.LiveFitWorkers, g.LiveFitLines, g.LiveFitShards)
		}})
	r.mustRegister(Experiment{ID: "distreduce", Title: "Distributed worker-side reduce: ε(n) with reduce on vs off", Measured: true,
		Run: func(ctx context.Context, cfg *Config) (Report, error) {
			g := cfg.Grids
			return DistReduce(ctx, g.DistReduceWorkers, g.DistReduceLines, g.DistReduceShards, g.DistReduceR)
		}})
	r.mustRegister(Experiment{ID: "ooshuffle", Title: "Out-of-core shuffle: spill budget sweep and ε(n)/q(n) refits", Measured: true,
		Run: func(ctx context.Context, cfg *Config) (Report, error) {
			g := cfg.Grids
			return OOShuffle(ctx, g.OOShuffleWorkers, g.OOShuffleLines, g.OOShuffleShards, g.OOShuffleR, g.OOShuffleBudgets)
		}})
	r.mustRegister(Experiment{ID: "pipeshuffle", Title: "Pipelined shuffle: q(n) with early reduce dispatch vs the map barrier", Measured: true,
		Run: func(ctx context.Context, cfg *Config) (Report, error) {
			g := cfg.Grids
			return PipeShuffle(ctx, g.PipeShuffleWorkers, g.PipeShuffleLines, g.PipeShuffleShards, g.PipeShuffleR)
		}})
	r.mustRegister(Experiment{ID: "modelzoo", Title: "Scaling-model zoo: competing laws fitted and selected", Deps: []string{DepMRSweeps},
		Run: withSweeps(func(ctx context.Context, sweeps []MRSweep, cfg *Config) (Report, error) {
			return ModelZooStudy(ctx, sweeps, cfg)
		})})
	return r
}
