package experiment

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"ipso/internal/runner"
)

func TestDefaultRegistryIDs(t *testing.T) {
	r := DefaultRegistry()
	want := []string{
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "table1", "fig8",
		"fig9", "fig10", "diag", "provisioning", "ablation-broadcast",
		"ablation-memory", "ablation-statistic", "futurework", "surface",
		"fixedsize-mr", "ablation-contention", "realnet", "selfdiag",
		"straggler", "livefit", "distreduce", "ooshuffle", "pipeshuffle", "modelzoo",
	}
	got := r.IDs()
	if len(got) != len(want) {
		t.Fatalf("got %d experiments, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IDs[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	e, ok := r.Lookup("realnet")
	if !ok || !e.Measured {
		t.Error("realnet must be registered and marked Measured")
	}
	if e, ok := r.Lookup("livefit"); !ok || !e.Measured {
		t.Error("livefit must be registered and marked Measured (it times real cluster runs)")
	}
	if e, ok := r.Lookup("distreduce"); !ok || !e.Measured {
		t.Error("distreduce must be registered and marked Measured (it times real cluster runs)")
	}
	if e, ok := r.Lookup("ooshuffle"); !ok || !e.Measured {
		t.Error("ooshuffle must be registered and marked Measured (it times real cluster runs)")
	}
	if e, ok := r.Lookup("straggler"); !ok || e.Measured {
		t.Error("straggler must be registered and NOT Measured (it reports only seed-deterministic values)")
	}
	for _, id := range []string{"fig4", "fig5", "fig6", "fig7", "diag", "provisioning"} {
		e, ok := r.Lookup(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		if len(e.Deps) != 1 || e.Deps[0] != DepMRSweeps {
			t.Errorf("%s deps = %v, want [%s]", id, e.Deps, DepMRSweeps)
		}
	}
}

func TestRegistryRegisterErrors(t *testing.T) {
	r := NewRegistry()
	ok := Experiment{ID: "a", Run: func(context.Context, *Config) (Report, error) { return Report{}, nil }}
	if err := r.Register(ok); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(ok); err == nil {
		t.Error("duplicate ID should error")
	}
	if err := r.Register(Experiment{Run: ok.Run}); err == nil {
		t.Error("empty ID should error")
	}
	if err := r.Register(Experiment{ID: "b"}); err == nil {
		t.Error("nil Run should error")
	}
}

func TestRegistrySelect(t *testing.T) {
	r := DefaultRegistry()
	all, err := r.Select(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(r.IDs()) {
		t.Fatalf("empty selection should return all %d, got %d", len(r.IDs()), len(all))
	}
	// Requested out of order and duplicated: registration order, deduped.
	sel, err := r.Select([]string{"fig4", "fig2", "fig4"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || sel[0].ID != "fig2" || sel[1].ID != "fig4" {
		t.Fatalf("selection = %v", sel)
	}
	_, err = r.Select([]string{"fig99"})
	if err == nil {
		t.Fatal("unknown ID should error")
	}
	if !strings.Contains(err.Error(), "fig99") || !strings.Contains(err.Error(), "fig4") || !strings.Contains(err.Error(), "realnet") {
		t.Errorf("error should name the bad ID and list valid ones, got: %v", err)
	}
}

func TestConfigMRSweepsMemoized(t *testing.T) {
	cfg := DefaultConfig(true)
	cfg.Grids.MR = []int{1, 2, 4}
	a, err := cfg.MRSweeps(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.MRSweeps(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("second call should return the memoized sweeps")
	}
	// A cancelled first attempt must not poison the Config.
	cfg2 := DefaultConfig(true)
	cfg2.Grids.MR = []int{1, 2, 4}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cfg2.MRSweeps(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := cfg2.MRSweeps(context.Background()); err != nil {
		t.Fatalf("retry after cancellation failed: %v", err)
	}
}

func TestRunAllSubset(t *testing.T) {
	r := DefaultRegistry()
	cfg := DefaultConfig(true)
	cfg.Grids.MR = []int{1, 2, 4, 8}
	var done []string
	reports, err := r.RunAll(runner.WithWorkers(context.Background(), 4),
		[]string{"diag", "fig2", "fig4"}, cfg, func(p Progress) {
			if p.Points <= 0 {
				t.Errorf("%s reported %d points", p.ID, p.Points)
			}
			done = append(done, p.ID)
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("got %d reports", len(reports))
	}
	// Registration order regardless of completion order.
	for i, want := range []string{"fig2", "fig4", "diag"} {
		if reports[i].ID != want {
			t.Errorf("reports[%d].ID = %q, want %q", i, reports[i].ID, want)
		}
	}
	if len(done) != 3 {
		t.Errorf("progress callback ran %d times, want 3", len(done))
	}
}

func TestRunAllUnknownID(t *testing.T) {
	r := DefaultRegistry()
	if _, err := r.RunAll(context.Background(), []string{"nope"}, DefaultConfig(true), nil); err == nil {
		t.Fatal("unknown ID should error")
	}
}

func TestRunAllUnknownDep(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(Experiment{ID: "x", Deps: []string{"no-such-dep"},
		Run: func(context.Context, *Config) (Report, error) { return Report{}, nil }}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunAll(context.Background(), nil, DefaultConfig(true), nil); err == nil || !strings.Contains(err.Error(), "no-such-dep") {
		t.Fatalf("err = %v, want unknown dependency", err)
	}
}

func TestRunAllCancellation(t *testing.T) {
	r := NewRegistry()
	block := Experiment{ID: "block", Run: func(ctx context.Context, _ *Config) (Report, error) {
		<-ctx.Done()
		return Report{}, ctx.Err()
	}}
	if err := r.Register(block); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := r.RunAll(ctx, nil, DefaultConfig(true), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("cancellation did not return promptly")
	}
}

func TestDoublingGrid(t *testing.T) {
	got := DoublingGrid(1, 200)
	want := []float64{1, 2, 4, 8, 16, 32, 64, 128, 200}
	if len(got) != len(want) {
		t.Fatalf("grid = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grid = %v, want %v", got, want)
		}
	}
	// hi already on the doubling path still terminates with hi once.
	got = DoublingGrid(5, 150)
	if got[0] != 5 || got[len(got)-1] != 150 {
		t.Fatalf("grid = %v", got)
	}
}

func TestWriteCSVQuoting(t *testing.T) {
	rep := Report{Series: []Series{{
		Name: `weird,"name`, X: []float64{1}, Y: []float64{2.5},
	}}}
	var b strings.Builder
	if err := rep.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "series,\"weird,\"\"name\"\n1,2.5\n"
	if b.String() != want {
		t.Errorf("csv = %q, want %q", b.String(), want)
	}
}

func TestReportPoints(t *testing.T) {
	rep := Report{
		Series: []Series{{X: []float64{1, 2, 3}, Y: []float64{1, 2, 3}}},
		Tables: []Table{{Rows: [][]string{{"a"}, {"b"}}}},
	}
	if got := rep.Points(); got != 5 {
		t.Errorf("Points() = %d, want 5", got)
	}
}
