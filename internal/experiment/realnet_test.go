package experiment

import (
	"context"
	"testing"
)

func TestRealNetSmoke(t *testing.T) {
	// Genuine wall-clock measurement: assert structure and sanity only
	// (absolute timings are machine-dependent).
	rep, err := RealNet(context.Background(), []int{1, 2}, 2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 || len(rep.Tables[0].Rows) != 2 || len(rep.Tables[1].Rows) != 2 {
		t.Fatalf("unexpected report shape %+v", rep.Tables)
	}
	s := seriesByName(t, rep, "realnet/wordcount")
	if s.Y[0] != 1 {
		t.Errorf("baseline speedup %g, want 1 (self-relative)", s.Y[0])
	}
	for _, v := range s.Y {
		if v <= 0 {
			t.Errorf("nonpositive measured speedup %g", v)
		}
	}
	// The merge comparison measures both configurations; the fitted
	// ε(n) notes need at least two positive samples per side.
	for _, name := range []string{"realnet/merge-serial-ms", "realnet/merge-tail-ms"} {
		ms := seriesByName(t, rep, name)
		for _, v := range ms.Y {
			if v <= 0 {
				t.Errorf("%s has nonpositive sample %g", name, v)
			}
		}
	}
	if len(rep.Notes) == 0 {
		t.Error("expected ε(n) power-law fit notes on the realnet report")
	}
}

func TestRealNetValidation(t *testing.T) {
	if _, err := RealNet(context.Background(), nil, 10, 2); err == nil {
		t.Error("empty worker grid should error")
	}
	if _, err := RealNet(context.Background(), []int{1}, 0, 2); err == nil {
		t.Error("zero lines should error")
	}
	if _, err := RealNet(context.Background(), []int{0}, 10, 2); err == nil {
		t.Error("invalid worker count should error")
	}
}
