package experiment

import (
	"context"
	"fmt"

	"ipso/internal/core"
	"ipso/internal/mapreduce"
	"ipso/internal/runner"
)

// FixedSizeMR runs the experiment the paper could not: the fixed-size
// (Amdahl-dimension) MapReduce study. Section V reports that with the
// four micro benchmarks "as the scale-out factor n grows beyond 8, the
// parallel task response times in the map phase drop to subseconds, which
// cannot be measured, since in our experiments the precision of
// measurement is one second" — so the paper switched to the Collaborative
// Filtering trace instead. The simulator has no measurement floor, so the
// fixed-size dimension of the same four apps can be mapped directly: the
// total working set stays at totalBytes and is split into n shards.
//
// Expected shapes (Fig. 3): QMC — near-Is; WordCount/Sort/TeraSort —
// IIIs (Amdahl-like, bounded by 1/(1−η) with the in-proportion ratio α).
func FixedSizeMR(ctx context.Context, totalBytes float64, ns []int) (Report, error) {
	if totalBytes <= 0 {
		return Report{}, fmt.Errorf("experiment: total bytes %g must be positive", totalBytes)
	}
	if len(ns) == 0 {
		return Report{}, fmt.Errorf("experiment: empty grid")
	}
	type fsPoint struct {
		speedup float64
		eta     float64 // only set at n = 1
	}
	apps := mrCaseApps()
	points, err := runner.Map(ctx, len(apps)*len(ns), func(_ context.Context, i int) (fsPoint, error) {
		app := apps[i/len(ns)]
		n := ns[i%len(ns)]
		if n < 1 {
			return fsPoint{}, fmt.Errorf("experiment: invalid n=%d", n)
		}
		cfg := MRConfig(app, n)
		cfg.ShardBytes = totalBytes / float64(n)
		s, par, _, err := mapreduce.Speedup(cfg)
		if err != nil {
			return fsPoint{}, fmt.Errorf("experiment: %s fixed-size n=%d: %w", app.Name(), n, err)
		}
		pt := fsPoint{speedup: s}
		if n == 1 {
			_, ws, _, maxTask := PhasesFromLog(par.Log)
			if ws < 0.01 {
				ws = 0
			}
			e, err := core.EtaFromPhases(maxTask, ws)
			if err != nil {
				return fsPoint{}, err
			}
			pt.eta = e
		}
		return pt, nil
	})
	if err != nil {
		return Report{}, err
	}
	rep := Report{ID: "fixedsize-mr", Title: "Beyond the paper: fixed-size MapReduce dimension (unmeasurable on EMR at 1 s precision)"}
	tbl := Table{
		Title:   "diagnoses (fixed-size workloads)",
		Headers: []string{"app", "η", "family", "type", "S at max n", "Amdahl bound", "model"},
	}
	for a, app := range apps {
		xs := make([]float64, len(ns))
		ss := make([]float64, len(ns))
		var eta float64
		for j, n := range ns {
			xs[j] = float64(n)
			ss[j] = points[a*len(ns)+j].speedup
			if n == 1 {
				eta = points[a*len(ns)+j].eta
			}
		}
		rep.Series = append(rep.Series, Series{Name: app.Name() + "/fixed-size", X: xs, Y: ss})

		d, err := core.DiagnoseModels(core.FixedSize, xs, ss)
		if err != nil {
			return Report{}, fmt.Errorf("experiment: diagnose %s: %w", app.Name(), err)
		}
		bound := "∞ (η = 1)"
		if eta < 1 {
			b, err := core.AmdahlBound(eta)
			if err != nil {
				return Report{}, err
			}
			bound = f2(b)
		}
		model := "(none)"
		if best, ok := d.Models.BestFit(); ok {
			model = best.Name
		}
		tbl.Rows = append(tbl.Rows, []string{
			app.Name(), f3(eta), d.Family.String(), d.Type.String(), f2(ss[len(ss)-1]), bound, model,
		})
	}
	rep.Tables = append(rep.Tables, tbl)
	return rep, nil
}
