package experiment

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"ipso/internal/core"
	"ipso/internal/runner"
	"ipso/internal/workload"
)

// zooSweep is one speedup sweep the model-zoo study fits every candidate
// scaling law to: a measured curve (MapReduce fixed-time, Spark
// fixed-size) or a synthetic curve with a known generating law.
type zooSweep struct {
	Name     string
	Workload core.WorkloadType
	Truth    string // generating model of a synthetic sweep; "" = measured
	Ns       []float64
	Speedups []float64
}

// synthZooNs is the scale-out grid of the synthetic sweeps: dense enough
// at small n to pin the rise, extended far enough to expose the tail
// regimes (retrograde decline, Amdahl saturation, slow IPSO growth) the
// models disagree about.
func synthZooNs() []float64 {
	return []float64{1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128}
}

// synthZooSweeps builds three synthetic sweeps from known generating
// laws, each perturbed by ±0.5% multiplicative noise from the seeded
// RNG — enough to make the fits honest, small enough that information
// criteria can still tell the generators apart. Generation is
// single-threaded and depends only on the seed, so reports stay
// byte-identical at any -parallel width.
//
//   - usl-retrograde: USL with σ = 0.05, κ = 0.001 — peaks near n = 31
//     and declines. The coherency term is the data IPSO's power-law
//     overhead can only approximate at a higher parameter cost.
//   - amdahl: the fixed-size law with η = 0.95 — saturates at 20×.
//   - ipso: Eq. 16 with η = 0.7, α = 1, δ = 0.4, β = 0.004, γ = 0.8 —
//     partial in-proportion scaling plus sublinear overhead, a shape
//     outside every classical special case.
func synthZooSweeps(seed int64) ([]zooSweep, error) {
	ns := synthZooNs()
	rng := rand.New(rand.NewSource(seed ^ 0x2005eed))
	noisy := func(m core.ScalingModel) ([]float64, error) {
		out := make([]float64, len(ns))
		for i, n := range ns {
			s, err := m.Speedup(n)
			if err != nil {
				return nil, err
			}
			out[i] = s * (1 + 0.005*(2*rng.Float64()-1))
		}
		return out, nil
	}

	usl := core.USLScaling()
	if err := usl.SetParams([]float64{0.05, 0.001}); err != nil {
		return nil, err
	}
	amdahl := core.AmdahlScaling()
	if err := amdahl.SetParams([]float64{0.95}); err != nil {
		return nil, err
	}
	ipso := core.IPSOScaling(core.FixedTime)
	if err := ipso.SetParams([]float64{0.7, 1, 0.4, 0.004, 0.8}); err != nil {
		return nil, err
	}

	sweeps := []zooSweep{
		{Name: "synthetic/usl-retrograde", Workload: core.FixedSize, Truth: core.ModelUSL},
		{Name: "synthetic/amdahl", Workload: core.FixedSize, Truth: core.ModelAmdahl},
		{Name: "synthetic/ipso", Workload: core.FixedTime, Truth: core.ModelIPSO},
	}
	for i, gen := range []core.ScalingModel{usl, amdahl, ipso} {
		ss, err := noisy(gen)
		if err != nil {
			return nil, err
		}
		sweeps[i].Ns = ns
		sweeps[i].Speedups = ss
	}
	return sweeps, nil
}

// sparkZooSweeps measures the fixed-size dimension of the four Spark
// benchmarks on the Fig. 10 grid — the memo on cfg shares the operating
// points with fig10/surface, so a combined run simulates each once.
func sparkZooSweeps(ctx context.Context, cfg *Config) ([]zooSweep, error) {
	apps := workload.SparkBenchmarks()
	execs := cfg.Grids.FixedSizeExecs
	tasks := cfg.Grids.FixedSizeTasks
	ys, err := runner.Map(ctx, len(apps)*len(execs), func(_ context.Context, i int) (float64, error) {
		app := apps[i/len(execs)]
		m := execs[i%len(execs)]
		s, err := cfg.SparkSpeedup(app, tasks, m)
		if err != nil {
			return 0, fmt.Errorf("experiment: %s N=%d m=%d: %w", app.Name(), tasks, m, err)
		}
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	xs := make([]float64, len(execs))
	for j, m := range execs {
		xs[j] = float64(m)
	}
	out := make([]zooSweep, len(apps))
	for a, app := range apps {
		out[a] = zooSweep{
			Name:     app.Name() + "/fixed-size",
			Workload: core.FixedSize,
			Ns:       xs,
			Speedups: ys[a*len(execs) : (a+1)*len(execs)],
		}
	}
	return out, nil
}

// zooScore formats an AICc-like score; ±Inf and NaN print stably.
func zooScore(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsNaN(v) {
		return "NaN"
	}
	return fmt.Sprintf("%.2f", v)
}

// zooErr formats a leave-one-out or residual magnitude.
func zooErr(v float64) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	return fmt.Sprintf("%.3g", v)
}

// ModelZooStudy runs the model-competition study: every candidate
// scaling law (IPSO, USL, Amdahl, Gustafson, power) is fitted to every
// workload sweep — the MapReduce fixed-time case studies, the Spark
// fixed-size benchmarks, and three synthetic sweeps with known
// generators — and AICc with a leave-one-out tie-break selects the law
// each sweep supports. The tables show where IPSO wins outright and
// where a competitor (USL's retrograde coherency term, Amdahl's single
// fraction) is the more parsimonious explanation.
func ModelZooStudy(ctx context.Context, sweeps []MRSweep, cfg *Config) (Report, error) {
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}
	var zs []zooSweep
	for _, sw := range sweeps {
		var ns, ss []float64
		for _, p := range sw.Points {
			ns = append(ns, float64(p.N))
			ss = append(ss, p.Speedup)
		}
		zs = append(zs, zooSweep{Name: sw.App + "/fixed-time", Workload: core.FixedTime, Ns: ns, Speedups: ss})
	}
	spark, err := sparkZooSweeps(ctx, cfg)
	if err != nil {
		return Report{}, err
	}
	zs = append(zs, spark...)
	synth, err := synthZooSweeps(cfg.Seed)
	if err != nil {
		return Report{}, err
	}
	zs = append(zs, synth...)

	rep := Report{ID: "modelzoo", Title: "Scaling-model zoo: competing laws fitted and selected per sweep"}
	summary := Table{
		Title:   "model selection per sweep (AICc, LOO tie-break)",
		Headers: []string{"sweep", "workload", "selected", "AICc", "LOO", "generator"},
	}
	score := Table{
		Title:   "per-model scores (lower AICc is better; ΔAICc vs the selected model)",
		Headers: []string{"sweep", "model", "AICc", "ΔAICc", "LOO", "SSE", "status"},
	}
	ipsoWins, measured := 0, 0
	recovered := 0
	for _, z := range zs {
		sel, err := core.FitModels(z.Ns, z.Speedups, core.ModelZoo(z.Workload))
		if err != nil {
			return Report{}, fmt.Errorf("experiment: modelzoo %s: %w", z.Name, err)
		}
		best, ok := sel.BestFit()
		gen := "(measured)"
		if z.Truth != "" {
			gen = z.Truth
		}
		if ok {
			summary.Rows = append(summary.Rows, []string{
				z.Name, z.Workload.String(), best.Name, zooScore(best.AICc), zooErr(best.LOO), gen,
			})
		} else {
			summary.Rows = append(summary.Rows, []string{
				z.Name, z.Workload.String(), "(none)", "", "", gen,
			})
		}
		if z.Truth == "" {
			measured++
			if ok && best.Name == core.ModelIPSO {
				ipsoWins++
			}
		} else if ok {
			if best.Name == z.Truth {
				recovered++
				rep.Notes = append(rep.Notes, fmt.Sprintf("%s: selection recovers the generating %s model", z.Name, z.Truth))
			} else {
				rep.Notes = append(rep.Notes, fmt.Sprintf("%s: selection picked %s over the generating %s model", z.Name, best.Name, z.Truth))
			}
		}
		bestAICc := math.Inf(1)
		if ok {
			bestAICc = best.AICc
		}
		for _, f := range sel.Fits {
			status := "ok"
			switch {
			case f.Err != nil:
				status = "fit failed: " + f.Err.Error()
			case !f.Converged:
				status = fmt.Sprintf("iteration budget (%d iters)", f.Iters)
			}
			score.Rows = append(score.Rows, []string{
				z.Name, f.Name, zooScore(f.AICc), zooScore(f.AICc - bestAICc),
				zooErr(f.LOO), zooErr(f.SSE), status,
			})
		}
	}
	rep.Tables = append(rep.Tables, summary, score)
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"IPSO selected on %d of %d measured sweeps; %d of 3 synthetic generators recovered", ipsoWins, measured, recovered))
	rep.Notes = append(rep.Notes,
		"the retrograde sweep is where USL's κ·n(n−1) coherency term earns its keep: it matches the post-peak decline at 2 parameters, while IPSO must spend its overhead machinery (β, γ) to approximate the same shape and loses on AICc")
	return rep, nil
}
