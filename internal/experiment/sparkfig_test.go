package experiment

import (
	"context"
	"fmt"
	"testing"
)

func TestFigure9LoadLevelOrdering(t *testing.T) {
	execs := []int{4, 8, 16, 32}
	rep, err := Figure9(context.Background(), nil, DefaultLoadLevels(), execs)
	if err != nil {
		t.Fatal(err)
	}
	apps := []string{"bayes", "random-forest", "svm", "nweight"}
	if len(rep.Series) != len(apps)*len(DefaultLoadLevels()) {
		t.Fatalf("series count %d, want %d", len(rep.Series), len(apps)*4)
	}
	for _, app := range apps {
		at := func(k int) float64 {
			return last(seriesByName(t, rep, fmt.Sprintf("%s/N_m=%d", app, k)))
		}
		// Paper: "the larger the per executor load level, the higher the
		// speedup" — 4 > 2 > 1 ...
		if !(at(4) > at(2) && at(2) > at(1)) {
			t.Errorf("%s: load-level ordering violated: k=1:%g k=2:%g k=4:%g", app, at(1), at(2), at(4))
		}
		// ... except N/m = 8, which drops below 4 due to RAM pressure.
		if at(8) >= at(4) {
			t.Errorf("%s: N/m=8 (%g) should fall below N/m=4 (%g)", app, at(8), at(4))
		}
	}
}

func TestFigure9SublinearAtBest(t *testing.T) {
	execs := []int{8, 32}
	rep, err := Figure9(context.Background(), nil, []int{4}, execs)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rep.Series {
		// Fixed-time Spark cases degrade from It to IIt/IIIt: the speedup
		// at m=32 must be clearly below linear.
		if last(s) > 0.9*32 {
			t.Errorf("%s: speedup %g at m=32 is too close to linear", s.Name, last(s))
		}
		if last(s) <= s.Y[0] {
			t.Errorf("%s: speedup should still grow from m=8 to m=32", s.Name)
		}
	}
}

func TestFigure10PeaksAndFalls(t *testing.T) {
	rep, err := Figure10(context.Background(), nil, DefaultFixedSizeTasks, DefaultFixedSizeExecGrid())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 4 {
		t.Fatalf("series count %d, want 4", len(rep.Series))
	}
	for _, s := range rep.Series {
		peak := 0
		for i := range s.Y {
			if s.Y[i] > s.Y[peak] {
				peak = i
			}
		}
		if peak == 0 || peak == len(s.Y)-1 {
			t.Errorf("%s: no interior peak (IVs expected): %v", s.Name, s.Y)
			continue
		}
		if s.Y[len(s.Y)-1] >= s.Y[peak] {
			t.Errorf("%s: speedup should fall after the peak", s.Name)
		}
	}
}

func TestFigureGridValidation(t *testing.T) {
	if _, err := Figure9(context.Background(), nil, nil, []int{2}); err == nil {
		t.Error("empty load levels should error")
	}
	if _, err := Figure9(context.Background(), nil, []int{0}, []int{2}); err == nil {
		t.Error("invalid load level should error")
	}
	if _, err := Figure10(context.Background(), nil, 0, []int{2}); err == nil {
		t.Error("invalid task count should error")
	}
	if _, err := Figure10(context.Background(), nil, 8, []int{0}); err == nil {
		t.Error("invalid executor count should error")
	}
}
