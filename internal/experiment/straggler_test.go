package experiment

import (
	"context"
	"strings"
	"testing"

	"ipso/internal/runner"
)

// TestStragglerRecovery asserts the experiment's headline claims: the
// injected tail degrades scaling worse as n grows (E[max] of more draws
// is larger), speculation always helps, and at the straggler-dominated
// end of the grid it recovers at least half of the E[max] inflation —
// the acceptance bar for the mitigation being worth its duplicates.
func TestStragglerRecovery(t *testing.T) {
	ns := []int{8, 32, 64}
	rep, err := Straggler(context.Background(), ns, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	series := map[string]Series{}
	for _, s := range rep.Series {
		series[s.Name] = s
	}
	none, ok := series["speedup/no-mitigation"]
	if !ok {
		t.Fatal("missing speedup/no-mitigation series")
	}
	spec := series["speedup/speculation"]
	recovery := series["recovery"]
	if len(none.Y) != len(ns) || len(spec.Y) != len(ns) || len(recovery.Y) != len(ns) {
		t.Fatalf("series lengths %d/%d/%d, want %d", len(none.Y), len(spec.Y), len(recovery.Y), len(ns))
	}
	for i, n := range ns {
		if none.Y[i] >= float64(n) {
			t.Errorf("n=%d: no-mitigation speedup %.2f not degraded below ideal %d", n, none.Y[i], n)
		}
		if spec.Y[i] <= none.Y[i] {
			t.Errorf("n=%d: speculation speedup %.2f does not beat no-mitigation %.2f", n, spec.Y[i], none.Y[i])
		}
		if i > 0 && recovery.Y[i] <= recovery.Y[i-1] {
			t.Errorf("recovery not increasing with n: %.3f at n=%d vs %.3f at n=%d",
				recovery.Y[i], n, recovery.Y[i-1], ns[i-1])
		}
	}
	if last := recovery.Y[len(ns)-1]; last < 0.5 {
		t.Errorf("recovery at n=%d is %.3f, want >= 0.5", ns[len(ns)-1], last)
	}
}

// TestStragglerDeterministic locks the reproducibility contract with
// chaos in the loop: same seed, any worker-pool width, byte-identical
// report — including the real-cluster validation rows, whose facts are
// invariant under retry/speculation races.
func TestStragglerDeterministic(t *testing.T) {
	render := func(workers int) string {
		t.Helper()
		ctx := runner.WithWorkers(context.Background(), workers)
		rep, err := Straggler(ctx, []int{4, 16}, 50, 7)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := rep.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	serial := render(1)
	if wide := render(8); wide != serial {
		t.Fatalf("straggler output differs across pool widths:\nserial:\n%s\nwide:\n%s", serial, wide)
	}
	if !strings.Contains(serial, "distinct words") {
		t.Fatalf("report missing real-cluster validation:\n%s", serial)
	}
}
