package experiment

import (
	"context"
	"fmt"

	"ipso/internal/cluster"
	"ipso/internal/core"
	"ipso/internal/mapreduce"
	"ipso/internal/runner"
	"ipso/internal/trace"
	"ipso/internal/workload"
)

// DefaultMRGrid is the scale-out grid of the MapReduce case studies
// (Fig. 4/6/7 plot up to n = 200).
func DefaultMRGrid() []int {
	return []int{1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128, 160, 200}
}

// MRConfig assembles the EMR-like job configuration of the fixed-time
// case studies: one 128 MB block per processing unit, 2 GB reducer
// memory, 1 s of job initialization.
func MRConfig(app mapreduce.AppModel, n int) mapreduce.Config {
	return mapreduce.Config{
		App:                app,
		N:                  n,
		ShardBytes:         cluster.BlockBytes,
		Cluster:            cluster.DefaultConfig(n + 1),
		ReducerMemoryBytes: cluster.ReducerMemoryBytes,
		InitTime:           0.5,
	}
}

// MRPoint is one measured operating point of a MapReduce sweep.
type MRPoint struct {
	N        int
	Speedup  float64
	Wp       float64 // total map work (Σ task durations)
	Ws       float64 // serial portion (shuffle+merge+spill+reduce)
	Wo       float64 // scale-out-induced portion (init + dispatch span)
	MaxTask  float64 // E[max{Tp,i(n)}]
	Parallel float64 // parallel makespan
	Seq      float64 // sequential makespan
}

// MRSweep is a full scale-out sweep of one application.
type MRSweep struct {
	App    string
	Eta    float64 // from the n = 1 phase breakdown
	Tp1    float64 // E[Tp,1(1)]
	Ts1    float64 // E[Ts(1)]
	Points []MRPoint
}

// PhasesFromLog extracts the paper's workload decomposition from a
// parallel execution trace: part (b), the map phase, is the
// parallelizable portion; the rest of the reduce-side pipeline is
// attributed to the serial merging phase; init and dispatch are the
// candidate scale-out-induced overheads.
func PhasesFromLog(log *trace.Log) (wp, ws, wo, maxTask float64) {
	wp = log.PhaseTotal(trace.PhaseMap)
	ws = log.PhaseTotal(trace.PhaseShuffle) +
		log.PhaseTotal(trace.PhaseMerge) +
		log.PhaseTotal(trace.PhaseSpill) +
		log.PhaseTotal(trace.PhaseReduce)
	wo = log.PhaseTotal(trace.PhaseInit)
	if start, end, ok := log.PhaseSpan(trace.PhaseSchedule); ok {
		wo += end - start
	}
	maxTask, _ = log.MaxTaskDuration(trace.PhaseMap)
	return wp, ws, wo, maxTask
}

// mrPoint measures one (app, n) operating point — one independent
// simulated parallel + sequential execution pair.
func mrPoint(app mapreduce.AppModel, n int) (MRPoint, error) {
	if n < 1 {
		return MRPoint{}, fmt.Errorf("experiment: invalid n=%d", n)
	}
	s, par, seq, err := mapreduce.Speedup(MRConfig(app, n))
	if err != nil {
		return MRPoint{}, fmt.Errorf("experiment: %s at n=%d: %w", app.Name(), n, err)
	}
	wp, ws, wo, maxTask := PhasesFromLog(par.Log)
	return MRPoint{
		N: n, Speedup: s, Wp: wp, Ws: ws, Wo: wo, MaxTask: maxTask,
		Parallel: par.Makespan, Seq: seq.Makespan,
	}, nil
}

// assembleSweep builds a sweep from measured points, extracting the
// n = 1 baselines (Tp1, Ts1, η) the estimators need.
func assembleSweep(app string, points []MRPoint) (MRSweep, error) {
	sweep := MRSweep{App: app, Points: points}
	for _, p := range points {
		if p.N != 1 {
			continue
		}
		sweep.Tp1 = p.MaxTask
		sweep.Ts1 = p.Ws
		eta, err := core.EtaFromPhases(p.MaxTask, p.Ws)
		if err != nil {
			return MRSweep{}, err
		}
		sweep.Eta = eta
	}
	if sweep.Tp1 == 0 {
		return MRSweep{}, fmt.Errorf("experiment: grid for %s must include n=1 for the η baseline", app)
	}
	return sweep, nil
}

// RunMRSweep measures one application across the scale-out grid. The
// grid points are independent simulations and run on the context's
// worker pool (see runner.WithWorkers); results are assembled in grid
// order, so the sweep is identical however wide the pool is.
func RunMRSweep(ctx context.Context, app mapreduce.AppModel, ns []int) (MRSweep, error) {
	if len(ns) == 0 {
		return MRSweep{}, fmt.Errorf("experiment: empty grid for %s", app.Name())
	}
	points, err := runner.Map(ctx, len(ns), func(_ context.Context, i int) (MRPoint, error) {
		return mrPoint(app, ns[i])
	})
	if err != nil {
		return MRSweep{}, err
	}
	return assembleSweep(app.Name(), points)
}

// Measurements converts the sweep into the core estimation input. The
// n = 1 baselines come from the sweep's n = 1 run even when the points
// are a window that excludes it (the paper's TeraSort fit).
func (s MRSweep) Measurements() core.Measurements {
	// SerialPrecision 10 ms: well below the paper's one-second measurement
	// precision, so sub-precision merge phases (QMC) read as zero.
	m := core.Measurements{Wp1: s.Tp1, Ws1: s.Ts1, SerialPrecision: 0.01}
	for _, p := range s.Points {
		m.N = append(m.N, float64(p.N))
		m.Wp = append(m.Wp, p.Wp)
		m.Ws = append(m.Ws, p.Ws)
		m.Wo = append(m.Wo, p.Wo)
		m.MaxTask = append(m.MaxTask, p.MaxTask)
	}
	return m
}

// truncate keeps only points with N <= maxN.
func (s MRSweep) truncate(maxN int) MRSweep {
	out := MRSweep{App: s.App, Eta: s.Eta, Tp1: s.Tp1, Ts1: s.Ts1}
	for _, p := range s.Points {
		if p.N <= maxN {
			out.Points = append(out.Points, p)
		}
	}
	return out
}

// window keeps only points with minN <= N <= maxN.
func (s MRSweep) window(minN, maxN int) MRSweep {
	out := MRSweep{App: s.App, Eta: s.Eta, Tp1: s.Tp1, Ts1: s.Ts1}
	for _, p := range s.Points {
		if p.N >= minN && p.N <= maxN {
			out.Points = append(out.Points, p)
		}
	}
	return out
}

// mrCaseApps returns the four MapReduce case studies in the paper's
// order: QMC, WordCount, Sort, TeraSort.
func mrCaseApps() []mapreduce.AppModel {
	return []mapreduce.AppModel{
		workload.NewQMCPi(),
		workload.NewWordCount(),
		workload.NewSort(),
		workload.NewTeraSort(),
	}
}

// RunMRCaseStudies sweeps all four applications once; the per-figure
// builders below share the result to avoid re-simulating. All
// (app, n) pairs are flattened into one task list so the worker pool
// stays busy across application boundaries.
func RunMRCaseStudies(ctx context.Context, ns []int) ([]MRSweep, error) {
	if len(ns) == 0 {
		return nil, fmt.Errorf("experiment: empty case-study grid")
	}
	apps := mrCaseApps()
	points, err := runner.Map(ctx, len(apps)*len(ns), func(_ context.Context, i int) (MRPoint, error) {
		return mrPoint(apps[i/len(ns)], ns[i%len(ns)])
	})
	if err != nil {
		return nil, err
	}
	sweeps := make([]MRSweep, 0, len(apps))
	for a, app := range apps {
		s, err := assembleSweep(app.Name(), points[a*len(ns):(a+1)*len(ns)])
		if err != nil {
			return nil, err
		}
		sweeps = append(sweeps, s)
	}
	return sweeps, nil
}

// Figure4 regenerates Fig. 4: measured speedups of the four HiBench-style
// micro benchmarks versus Gustafson's prediction.
func Figure4(ctx context.Context, sweeps []MRSweep) (Report, error) {
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}
	rep := Report{ID: "fig4", Title: "Measured speedups vs Gustafson's prediction (fixed-time MapReduce)"}
	for _, sw := range sweeps {
		xs := make([]float64, len(sw.Points))
		measured := make([]float64, len(sw.Points))
		gust := make([]float64, len(sw.Points))
		for i, p := range sw.Points {
			xs[i] = float64(p.N)
			measured[i] = p.Speedup
			g, err := core.Gustafson(sw.Eta, float64(p.N))
			if err != nil {
				return Report{}, err
			}
			gust[i] = g
		}
		rep.Series = append(rep.Series,
			Series{Name: sw.App + "/measured", X: xs, Y: measured},
			Series{Name: sw.App + "/gustafson", X: xs, Y: gust},
		)
	}
	return rep, nil
}

// Figure5 regenerates Fig. 5: TeraSort's step-wise internal scaling
// factor — IN(n) with the slope change at the reducer-memory overflow.
func Figure5(ctx context.Context, sweeps []MRSweep) (Report, error) {
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}
	rep := Report{ID: "fig5", Title: "TeraSort internal scaling factor IN(n): step at reducer-memory overflow"}
	for _, sw := range sweeps {
		if sw.App != "terasort" {
			continue
		}
		in, err := core.FactorSeries(measN(sw), measWs(sw))
		if err != nil {
			return Report{}, err
		}
		rep.Series = append(rep.Series, Series{Name: "terasort/IN", X: measN(sw), Y: in})

		est, err := core.Estimate(sw.Measurements())
		if err != nil {
			return Report{}, err
		}
		tbl := Table{Title: "IN(n) fits", Headers: []string{"segment", "slope", "intercept"}}
		if est.INStep != nil {
			tbl.Rows = append(tbl.Rows,
				[]string{fmt.Sprintf("IN'(n), n <= %.0f", est.INStep.Break), f3(est.INStep.Left.Slope), f3(est.INStep.Left.Intercept)},
				[]string{fmt.Sprintf("IN(n), n > %.0f", est.INStep.Break), f3(est.INStep.Right.Slope), f3(est.INStep.Right.Intercept)},
			)
		} else {
			tbl.Rows = append(tbl.Rows, []string{"IN(n) (no step found)", f3(est.INFit.Slope), f3(est.INFit.Intercept)})
		}
		rep.Tables = append(rep.Tables, tbl)
		return rep, nil
	}
	return Report{}, fmt.Errorf("experiment: terasort sweep missing")
}

// Figure6 regenerates Fig. 6: measured EX(n) and IN(n) for the four
// cases, with the linear fits of the paper (fitted at n <= fitMaxN, and
// for TeraSort at 16 <= n <= 64 as the paper does because of the memory
// overflow).
func Figure6(ctx context.Context, sweeps []MRSweep, fitMaxN int) (Report, error) {
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}
	rep := Report{ID: "fig6", Title: "External and internal scaling factors with linear fits"}
	tbl := Table{
		Title:   "scaling-factor fits (paper: EX(n) ≈ n for all; IN_Sort ≈ 0.36n−0.11; IN_TeraSort ≈ 0.23n+2.72)",
		Headers: []string{"app", "EX slope", "EX intercept", "IN slope", "IN intercept", "fit window"},
	}
	for _, sw := range sweeps {
		ex, err := core.FactorSeries(measN(sw), measWp(sw))
		if err != nil {
			return Report{}, err
		}
		in, err := serialFactor(sw)
		if err != nil {
			return Report{}, err
		}
		rep.Series = append(rep.Series,
			Series{Name: sw.App + "/EX", X: measN(sw), Y: ex},
			Series{Name: sw.App + "/IN", X: measN(sw), Y: in},
		)

		fitWindow := sw.truncate(fitMaxN)
		window := fmt.Sprintf("n<=%d", fitMaxN)
		if sw.App == "terasort" {
			fitWindow = sw.window(16, 64)
			window = "16<=n<=64"
		}
		est, err := core.Estimate(fitWindow.Measurements())
		if err != nil {
			return Report{}, err
		}
		tbl.Rows = append(tbl.Rows, []string{
			sw.App,
			f3(est.EXFit.Slope), f3(est.EXFit.Intercept),
			f3(est.INFit.Slope), f3(est.INFit.Intercept),
			window,
		})
	}
	rep.Tables = append(rep.Tables, tbl)
	return rep, nil
}

// Figure7 regenerates Fig. 7: speedups from IPSO prediction (factors
// fitted at small n, Eq. 8 with measured E[max{Tp,i(n)}]), measurement,
// and Gustafson's law.
func Figure7(ctx context.Context, sweeps []MRSweep, fitMaxN int) (Report, error) {
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}
	rep := Report{ID: "fig7", Title: "IPSO-predicted vs measured vs Gustafson speedups"}
	for _, sw := range sweeps {
		fitWindow := sw.truncate(fitMaxN)
		if sw.App == "terasort" {
			fitWindow = sw.window(16, 64)
		}
		est, err := core.Estimate(fitWindow.Measurements())
		if err != nil {
			return Report{}, err
		}
		pred, err := core.NewPredictor(est, sw.Tp1, sw.Ts1)
		if err != nil {
			return Report{}, err
		}
		xs := make([]float64, len(sw.Points))
		measured := make([]float64, len(sw.Points))
		ipso := make([]float64, len(sw.Points))
		gust := make([]float64, len(sw.Points))
		for i, p := range sw.Points {
			xs[i] = float64(p.N)
			measured[i] = p.Speedup
			s, err := pred.SpeedupWithMaxTask(float64(p.N), p.MaxTask)
			if err != nil {
				return Report{}, err
			}
			ipso[i] = s
			g, err := core.Gustafson(sw.Eta, float64(p.N))
			if err != nil {
				return Report{}, err
			}
			gust[i] = g
		}
		rep.Series = append(rep.Series,
			Series{Name: sw.App + "/measured", X: xs, Y: measured},
			Series{Name: sw.App + "/ipso", X: xs, Y: ipso},
			Series{Name: sw.App + "/gustafson", X: xs, Y: gust},
		)
	}
	return rep, nil
}

// Diagnostics applies the Section V diagnostic procedure to each measured
// speedup curve, plus the model-zoo verdict: which scaling law the sweep
// selects under AICc.
func Diagnostics(ctx context.Context, sweeps []MRSweep) (Report, error) {
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}
	rep := Report{ID: "diag", Title: "Section V diagnostic procedure on measured curves"}
	tbl := Table{
		Title:   "diagnoses (fixed-time workloads)",
		Headers: []string{"app", "family", "type", "needs factor analysis", "root cause", "model"},
	}
	for _, sw := range sweeps {
		var ns, ss []float64
		for _, p := range sw.Points {
			ns = append(ns, float64(p.N))
			ss = append(ss, p.Speedup)
		}
		d, err := core.DiagnoseModels(core.FixedTime, ns, ss)
		if err != nil {
			return Report{}, fmt.Errorf("experiment: diagnose %s: %w", sw.App, err)
		}
		model := "(none)"
		if best, ok := d.Models.BestFit(); ok {
			model = best.Name
		}
		tbl.Rows = append(tbl.Rows, []string{
			sw.App, d.Family.String(), d.Type.String(),
			fmt.Sprintf("%v", d.NeedsFactorAnalysis), d.RootCause, model,
		})
	}
	rep.Tables = append(rep.Tables, tbl)
	return rep, nil
}

func measN(s MRSweep) []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = float64(p.N)
	}
	return out
}

func measWp(s MRSweep) []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Wp
	}
	return out
}

func measWs(s MRSweep) []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Ws
	}
	return out
}

// serialFactor returns IN(n), treating an app whose serial phase is below
// the paper's measurement precision (sub-second phases read as zero) as
// IN = 1 — the QMC case.
func serialFactor(s MRSweep) ([]float64, error) {
	if s.Ts1 < 0.01 {
		out := make([]float64, len(s.Points))
		for i := range out {
			out[i] = 1
		}
		return out, nil
	}
	return core.FactorSeries(measN(s), measWs(s))
}
