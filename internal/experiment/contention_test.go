package experiment

import (
	"context"
	"testing"
)

func TestAblationContention(t *testing.T) {
	ns := make([]float64, 0, 99)
	for n := 1.0; n < 100; n++ {
		ns = append(ns, n)
	}
	// Two service capacities: saturation at n = 50 and n = 100.
	rep, err := AblationContention(context.Background(), []float64{100, 200}, 20, 10, ns)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(rep.Series))
	}
	for _, s := range rep.Series {
		// Each curve must peak strictly inside its plotted range and fall
		// afterwards — contention alone produces the type-IV pathology.
		peak := 0
		for i := range s.Y {
			if s.Y[i] > s.Y[peak] {
				peak = i
			}
		}
		if peak == 0 || peak == len(s.Y)-1 {
			t.Errorf("%s: no interior peak: peak idx %d of %d", s.Name, peak, len(s.Y))
			continue
		}
		if s.Y[len(s.Y)-1] >= s.Y[peak] {
			t.Errorf("%s: speedup should fall past the peak", s.Name)
		}
	}
	// More service capacity → later saturation and a higher peak.
	rows := rep.Tables[0].Rows
	if parseF(t, rows[0][1]) >= parseF(t, rows[1][1]) {
		t.Errorf("saturation should move out with capacity: %v vs %v", rows[0], rows[1])
	}
	if parseF(t, rows[0][2]) >= parseF(t, rows[1][2]) {
		t.Errorf("peak speedup should rise with capacity: %v vs %v", rows[0], rows[1])
	}
}

func TestAblationContentionValidation(t *testing.T) {
	if _, err := AblationContention(context.Background(), nil, 1, 1, []float64{1}); err == nil {
		t.Error("empty rates should error")
	}
	if _, err := AblationContention(context.Background(), []float64{10}, 1, 1, nil); err == nil {
		t.Error("empty grid should error")
	}
	if _, err := AblationContention(context.Background(), []float64{-1}, 1, 1, []float64{1}); err == nil {
		t.Error("invalid resource should error")
	}
	// Grid entirely past saturation: saturation at n = 0.5.
	if _, err := AblationContention(context.Background(), []float64{1}, 20, 10, []float64{1, 2}); err == nil {
		t.Error("all-saturated grid should error")
	}
}
