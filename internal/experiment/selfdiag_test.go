package experiment

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

func TestSelfDiagShape(t *testing.T) {
	rep, err := SelfDiag(context.Background(), 7, 4, 8000)
	if err != nil {
		t.Fatalf("SelfDiag: %v", err)
	}
	if rep.ID != "selfdiag" {
		t.Fatalf("ID = %q", rep.ID)
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("tables = %d, want 2 (workloads + fit)", len(rep.Tables))
	}
	if len(rep.Series) != 1 || rep.Series[0].Name != "selfdiag/q" {
		t.Fatalf("series = %+v, want one selfdiag/q", rep.Series)
	}

	// The width grid always reaches at least 4, so the probe has enough
	// points to see overhead even on a single-core host.
	wl := rep.Tables[0]
	if len(wl.Rows) < 4 {
		t.Fatalf("workload rows = %d, want >= 4", len(wl.Rows))
	}
	if got := len(rep.Series[0].X); got != len(wl.Rows) {
		t.Fatalf("series has %d points, table %d rows", got, len(wl.Rows))
	}

	// Width 1 is the baseline: by construction Wo = 0 and q = 0 there,
	// and Wp must be a real measurement.
	first := wl.Rows[0]
	if first[0] != "1" {
		t.Fatalf("first row width = %q, want 1", first[0])
	}
	wp, err := strconv.ParseFloat(first[1], 64)
	if err != nil || wp <= 0 {
		t.Fatalf("width-1 Wp = %q, want positive number", first[1])
	}
	if q := rep.Series[0].Y[0]; q != 0 {
		t.Fatalf("q(1) = %g, want 0", q)
	}
	for i, row := range wl.Rows {
		if w, err := strconv.Atoi(row[0]); err != nil || w != i+1 {
			t.Fatalf("row %d width = %q, want %d", i, row[0], i+1)
		}
	}

	// The fit table must name β and γ whether or not the host showed
	// enough overhead for a fit.
	fit := rep.Tables[1]
	var sawBeta, sawGamma bool
	for _, row := range fit.Rows {
		switch row[0] {
		case "beta":
			sawBeta = true
		case "gamma":
			sawGamma = true
		}
	}
	if !sawBeta || !sawGamma {
		t.Fatalf("fit table rows %v missing beta/gamma", fit.Rows)
	}
}

func TestSelfDiagRejectsTinyRounds(t *testing.T) {
	if _, err := SelfDiag(context.Background(), 7, 4, 1); err == nil {
		t.Fatal("SelfDiag accepted degenerate rounds")
	}
}

func TestSelfDiagHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SelfDiag(ctx, 7, 4, 8000); err == nil {
		t.Fatal("SelfDiag ignored a cancelled context")
	}
}

func TestSelfDiagRegistered(t *testing.T) {
	r := DefaultRegistry()
	e, ok := r.Lookup("selfdiag")
	if !ok {
		t.Fatal("selfdiag not registered")
	}
	if !e.Measured {
		t.Fatal("selfdiag must be Measured: wall-clock output is machine-dependent")
	}
	if !strings.Contains(e.Title, "self-diagnosis") {
		t.Fatalf("unexpected title %q", e.Title)
	}
}
