package experiment

import (
	"context"
	"testing"

	"ipso/internal/mapreduce"
	"ipso/internal/stats"
	"ipso/internal/workload"
)

func TestFitSurfaceRecoversSyntheticParameters(t *testing.T) {
	truth := SurfaceFit{A: 12, B: 0.4, C: 18}
	var points []SurfacePoint
	for _, k := range []int{1, 2, 4} {
		for _, m := range []int{2, 4, 8, 16, 32} {
			points = append(points, SurfacePoint{
				Tasks: k * m, Execs: m,
				Speedup: truth.Eval(float64(k*m), float64(m)),
			})
		}
	}
	fit, err := FitSurface(points)
	if err != nil {
		t.Fatal(err)
	}
	if fit.SSE > 1e-6 {
		t.Errorf("SSE %g on exact data, want ~0 (fit %+v)", fit.SSE, fit)
	}
	if fit.R2 < 0.9999 {
		t.Errorf("R² %g, want ~1", fit.R2)
	}
	// The surface is identifiable only up to scale when exact; check the
	// ratios instead of the raw parameters.
	if ratio := fit.B / fit.A; ratio < 0.4/12*0.9 || ratio > 0.4/12*1.1 {
		t.Errorf("b/a = %g, want ≈%g", ratio, 0.4/12)
	}
}

func TestFitSurfaceValidation(t *testing.T) {
	if _, err := FitSurface(nil); err == nil {
		t.Error("too few points should error")
	}
	bad := []SurfacePoint{{Tasks: 1, Execs: 1, Speedup: 1}, {Tasks: 0, Execs: 1, Speedup: 1}, {Tasks: 1, Execs: 1, Speedup: 1}, {Tasks: 1, Execs: 1, Speedup: -1}}
	if _, err := FitSurface(bad); err == nil {
		t.Error("invalid points should error")
	}
}

func TestSparkSurfaceReport(t *testing.T) {
	rep, err := SparkSurface(context.Background(), nil, []int{1, 2, 4}, []int{2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 1 || len(rep.Tables[0].Rows) != 4 {
		t.Fatalf("expected 4 fitted surfaces, got %+v", rep.Tables)
	}
	for _, row := range rep.Tables[0].Rows {
		r2 := parseF(t, row[4])
		if r2 < 0.9 {
			t.Errorf("%s: surface R² %g, want >= 0.9 (the matched surface must track the measurements)", row[0], r2)
		}
	}
	if len(rep.Series) != 8 {
		t.Errorf("expected 2 projected curves per app, got %d series", len(rep.Series))
	}
	if _, err := SparkSurface(context.Background(), nil, nil, []int{2}); err == nil {
		t.Error("empty grid should error")
	}
}

func TestReplicatedSweep(t *testing.T) {
	app := workload.NewSort()
	jitter := stats.Uniform{Low: 0.8, High: 1.2}
	sums, err := ReplicatedSweep(app, []int{4, 16}, 6, jitter)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 {
		t.Fatalf("summaries = %d, want 2", len(sums))
	}
	for _, s := range sums {
		if s.StdDev <= 0 {
			t.Errorf("n=%d: replicated runs with jitter should vary, stddev %g", s.N, s.StdDev)
		}
		if s.Mean <= 0 {
			t.Errorf("n=%d: nonpositive mean %g", s.N, s.Mean)
		}
	}
	// The averaged jittered speedup sits below the deterministic one.
	det, _, _, err := mapreduce.Speedup(MRConfig(app, 16))
	if err != nil {
		t.Fatal(err)
	}
	if sums[1].Mean >= det {
		t.Errorf("jittered mean %g should fall below deterministic %g", sums[1].Mean, det)
	}
	if _, err := ReplicatedSpeedup(app, 4, 0, jitter); err == nil {
		t.Error("zero reps should error")
	}
}
