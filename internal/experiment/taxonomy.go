package experiment

import (
	"context"
	"fmt"

	"ipso/internal/core"
)

// taxonomyCase is one canonical parameterization of a scaling type.
type taxonomyCase struct {
	name string
	a    core.Asymptotic
}

func fixedTimeCases() []taxonomyCase {
	return []taxonomyCase{
		{name: "It (Gustafson-like)", a: core.Asymptotic{Eta: 0.9, Alpha: 1, Delta: 1}},
		{name: "IIt (sublinear unbounded)", a: core.Asymptotic{Eta: 0.9, Alpha: 1, Delta: 1, Beta: 0.3, Gamma: 0.5}},
		{name: "IIIt,1 (bounded, in-proportion)", a: core.Asymptotic{Eta: 0.59, Alpha: 2.6, Delta: 0}},
		{name: "IIIt,2 (bounded, linear overhead)", a: core.Asymptotic{Eta: 0.9, Alpha: 1, Delta: 1, Beta: 0.05, Gamma: 1}},
		{name: "IVt (peaked)", a: core.Asymptotic{Eta: 0.9, Alpha: 1, Delta: 1, Beta: 0.002, Gamma: 2}},
	}
}

func fixedSizeCases() []taxonomyCase {
	return []taxonomyCase{
		{name: "Is (ideal linear)", a: core.Asymptotic{Eta: 1}},
		{name: "IIs (sublinear unbounded)", a: core.Asymptotic{Eta: 1, Beta: 0.3, Gamma: 0.5}},
		{name: "IIIs,1 (Amdahl-like)", a: core.Asymptotic{Eta: 0.9, Alpha: 1}},
		{name: "IIIs,2 (linear overhead)", a: core.Asymptotic{Eta: 0.9, Alpha: 1, Beta: 0.05, Gamma: 1}},
		{name: "IVs (peaked)", a: core.Asymptotic{Eta: 1, Beta: 3.7e-4, Gamma: 2}},
	}
}

// FigureTaxonomy regenerates Fig. 2 (fixed-time) or Fig. 3 (fixed-size):
// one canonical speedup curve per scaling type over the ns grid, plus a
// table of the classification and asymptotic bound of each curve.
func FigureTaxonomy(ctx context.Context, w core.WorkloadType, ns []float64) (Report, error) {
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}
	var cases []taxonomyCase
	var id, title string
	switch w {
	case core.FixedTime:
		cases, id, title = fixedTimeCases(), "fig2", "Four distinct IPSO scaling behaviors, fixed-time workload"
	case core.FixedSize:
		cases, id, title = fixedSizeCases(), "fig3", "Four distinct IPSO scaling behaviors, fixed-size workload"
	default:
		return Report{}, fmt.Errorf("experiment: unknown workload type %v", w)
	}

	rep := Report{ID: id, Title: title}
	tbl := Table{
		Title:   "classification and bounds",
		Headers: []string{"curve", "type", "bounded", "asymptotic bound", "pathological"},
	}
	for _, c := range cases {
		ys := make([]float64, len(ns))
		for i, n := range ns {
			s, err := c.a.Speedup(n)
			if err != nil {
				return Report{}, fmt.Errorf("experiment: %s at n=%g: %w", c.name, n, err)
			}
			ys[i] = s
		}
		rep.Series = append(rep.Series, Series{Name: c.name, X: ns, Y: ys})

		typ, err := c.a.Classify(w)
		if err != nil {
			return Report{}, err
		}
		limit, bounded, err := c.a.Bound(w)
		if err != nil {
			return Report{}, err
		}
		boundCell := "unbounded"
		if bounded {
			boundCell = f2(limit)
			if typ == core.TypeIVt || typ == core.TypeIVs {
				nStar, sStar, err := c.a.Peak(int(ns[len(ns)-1]))
				if err != nil {
					return Report{}, err
				}
				boundCell = fmt.Sprintf("peak %.2f at n=%.0f, then falls", sStar, nStar)
			}
		}
		tbl.Rows = append(tbl.Rows, []string{
			c.name, typ.String(), fmt.Sprintf("%v", bounded), boundCell, fmt.Sprintf("%v", typ.Pathological()),
		})
	}
	rep.Tables = append(rep.Tables, tbl)
	return rep, nil
}
