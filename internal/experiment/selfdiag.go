package experiment

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"ipso/internal/obs"
	"ipso/internal/runner"
	"ipso/internal/stats"
	"ipso/internal/trace"
)

// SelfDiag turns the IPSO methodology on the harness itself: the same
// runner pool that fans out every other experiment executes a CPU-bound
// workload at growing widths, the span recorder wired through the pool
// captures per-task and per-phase wall-clock intervals, and the phase
// workloads Wp/Ws/Wo are extracted from those spans exactly as Section V
// extracts them from Spark log files. The scale-out-induced workload here
// is genuine, not simulated: every task must round-trip through one
// shared service goroutine (the stand-in for a master, lock server, or
// storage node), so queueing delay at that serialized resource — plus,
// past the core count, scheduler time-slicing — inflates task wall time
// as width grows. q(n) = n·Wo(n)/Wp therefore rises with width and β, γ
// are fitted from real measurements with the Levenberg-Marquardt solver,
// the live counterpart of the ablation-contention simulation.
//
// Like realnet, this is a Measured experiment: wall-clock numbers are
// machine-dependent and excluded from byte-identical reproducibility
// checks. The reproduction target is the shape — q(1) = 0, q increasing,
// a non-degenerate power-law fit.

const (
	// selfDiagRequests is how many times each task calls the shared
	// service; selfDiagServiceDiv sets the service time as a fraction of
	// the chunk spun locally between calls.
	selfDiagRequests   = 8
	selfDiagServiceDiv = 4
	// selfDiagRepeats is how many probes each width runs; the one with
	// the median Wp is kept, shedding the outliers a time-shared host
	// injects (the paper likewise reports repeated measurements).
	selfDiagRepeats = 3
)

// selfDiagSink keeps the spin results observable so the compiler cannot
// elide the workload.
var selfDiagSink atomic.Uint64

// selfDiagSpin is the unit of CPU-bound work: rounds of SplitMix64-style
// mixing, deterministic in its seed.
func selfDiagSpin(seed uint64, rounds int) uint64 {
	x := seed
	var acc uint64
	for i := 0; i < rounds; i++ {
		x += 0x9e3779b97f4a7c15
		z := x
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		acc ^= z
	}
	return acc
}

// selfDiagWidths is the probe grid: every width from 1 up to
// max(4, GOMAXPROCS), capped to keep the probe count bounded on very
// wide hosts. The floor of 4 guarantees oversubscription — and therefore
// a detectable Wo — even on a single-core box.
func selfDiagWidths(maxWidth int) []int {
	w := runtime.GOMAXPROCS(0)
	if w < 4 {
		w = 4
	}
	if maxWidth > 0 && w > maxWidth {
		w = maxWidth
	}
	widths := make([]int, w)
	for i := range widths {
		widths[i] = i + 1
	}
	return widths
}

// selfDiagProbe runs one width: a serial init phase, the parallel map
// through the instrumented runner pool, and a serial merge, all under a
// span recorder. It returns the recorded spans round-tripped through the
// JSON trace format — the experiment reads only what a log file would
// hold, never engine internals.
func selfDiagProbe(ctx context.Context, width, tasks, rounds int, seed int64) (*trace.Log, error) {
	rec := obs.NewRecorder("selfdiag")
	pctx := runner.WithWorkers(obs.WithRecorder(ctx, rec), width)

	_, sp := obs.StartSpan(pctx, string(trace.PhaseInit))
	initAcc := selfDiagSpin(uint64(seed)|1, rounds)
	sp.End()

	// The shared service: one goroutine serializes a slice of every
	// task's work, the way a master, lock server, or storage node would.
	// Unbuffered channels make each call a strict round-trip, so the
	// queueing delay tasks suffer here is real wall-clock waiting that
	// the runner's task spans capture.
	type request struct {
		seed  uint64
		reply chan uint64
	}
	chunk := rounds / selfDiagRequests
	reqCh := make(chan request)
	var served sync.WaitGroup
	served.Add(1)
	go func() {
		defer served.Done()
		for r := range reqCh {
			r.reply <- selfDiagSpin(r.seed, chunk/selfDiagServiceDiv)
		}
	}()

	outs, err := runner.Map(pctx, tasks, func(ctx context.Context, i int) (uint64, error) {
		local := uint64(runner.TaskSeed(seed, i))
		reply := make(chan uint64, 1)
		for c := 0; c < selfDiagRequests; c++ {
			local ^= selfDiagSpin(local+uint64(c), chunk)
			reqCh <- request{seed: local, reply: reply}
			local ^= <-reply
			// Hand the core over at the service boundary, as a task
			// returning from a blocking RPC would. Without this the
			// scheduler's wake-up affinity lets one task ping-pong with
			// the server while its siblings starve politely, hiding the
			// very contention being measured; yielding restores the fair
			// time-slicing a saturated machine exhibits at coarser
			// granularity anyway.
			runtime.Gosched()
		}
		return local, nil
	})
	close(reqCh)
	served.Wait()
	if err != nil {
		return nil, err
	}

	_, sp = obs.StartSpan(pctx, string(trace.PhaseMerge))
	merged := initAcc
	for _, o := range outs {
		merged ^= selfDiagSpin(o, chunk)
	}
	sp.End()
	selfDiagSink.Store(merged)

	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return trace.ReadJSON(&buf)
}

// selfDiagMedianProbe runs selfDiagRepeats probes at one width and keeps
// the log whose total map workload is the median, so a single
// interference spike from the host does not skew the fit.
func selfDiagMedianProbe(ctx context.Context, width, tasks, rounds int, seed int64) (*trace.Log, error) {
	logs := make([]*trace.Log, 0, selfDiagRepeats)
	for r := 0; r < selfDiagRepeats; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		log, err := selfDiagProbe(ctx, width, tasks, rounds, seed)
		if err != nil {
			return nil, err
		}
		logs = append(logs, log)
	}
	sort.Slice(logs, func(i, j int) bool {
		return logs[i].PhaseTotal(trace.PhaseMap) < logs[j].PhaseTotal(trace.PhaseMap)
	})
	return logs[len(logs)/2], nil
}

// selfDiagPoint is one probed width's extracted workloads (seconds).
type selfDiagPoint struct {
	width   int
	wp      float64 // Σ map task wall time
	ws      float64 // init + merge (serial phases)
	wo      float64 // scale-out-induced inflation over the width-1 Wp
	q       float64 // n·Wo(n)/Wp
	maxTask float64 // E[max task] proxy: measured max map task
}

// SelfDiag probes the harness runner at widths 1..max(4, GOMAXPROCS)
// (capped at maxWidth when positive), extracts the IPSO workloads from
// the recorded spans, and fits q(n) ≈ β·n^γ. rounds sets the per-task
// spin length; tasks scale with the widest probe so every width has work
// to contend over.
func SelfDiag(ctx context.Context, seed int64, maxWidth, rounds int) (Report, error) {
	if rounds < selfDiagRequests*selfDiagServiceDiv {
		return Report{}, fmt.Errorf("experiment: selfdiag rounds %d too small", rounds)
	}
	widths := selfDiagWidths(maxWidth)
	tasks := 8*widths[len(widths)-1] + 16

	// Warm up the pool, the scheduler, and the branch predictors with a
	// discarded probe so the width-1 baseline is not polluted by one-time
	// startup costs.
	if _, err := selfDiagProbe(ctx, widths[len(widths)-1], tasks/4, rounds, seed); err != nil {
		return Report{}, err
	}

	points := make([]selfDiagPoint, 0, len(widths))
	var wp1 float64
	for _, w := range widths {
		if err := ctx.Err(); err != nil {
			return Report{}, err
		}
		log, err := selfDiagMedianProbe(ctx, w, tasks, rounds, seed)
		if err != nil {
			return Report{}, err
		}
		p := selfDiagPoint{
			width: w,
			wp:    log.PhaseTotal(trace.PhaseMap),
			ws:    log.PhaseTotal(trace.PhaseInit) + log.PhaseTotal(trace.PhaseMerge),
		}
		if p.wp <= 0 {
			return Report{}, fmt.Errorf("experiment: selfdiag probe at width %d recorded no map work", w)
		}
		if mt, ok := log.MaxTaskDuration(trace.PhaseMap); ok {
			p.maxTask = mt
		}
		if w == 1 {
			wp1 = p.wp
		}
		// The width-1 run is the pure workload: every second the same
		// tasks take beyond it at width n is work scale-out induced
		// (lock waiting, scheduler time-slicing, cache contention).
		if p.wo = p.wp - wp1; p.wo < 0 {
			p.wo = 0
		}
		p.q = float64(w) * p.wo / wp1
		points = append(points, p)
	}

	rep := Report{ID: "selfdiag", Title: "IPSO self-diagnosis of the harness runner"}
	tbl := Table{
		Title:   fmt.Sprintf("runner pool phase workloads, %d tasks (wall-clock; machine-dependent)", tasks),
		Headers: []string{"width", "Wp ms", "Ws ms", "Wo ms", "q(n)", "max task ms"},
	}
	var xs, ys []float64
	for _, p := range points {
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", p.width),
			fmt.Sprintf("%.2f", p.wp*1e3),
			fmt.Sprintf("%.2f", p.ws*1e3),
			fmt.Sprintf("%.2f", p.wo*1e3),
			fmt.Sprintf("%.4f", p.q),
			fmt.Sprintf("%.3f", p.maxTask*1e3),
		})
		xs = append(xs, float64(p.width))
		ys = append(ys, p.q)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Series = append(rep.Series, Series{Name: "selfdiag/q", X: xs, Y: ys})

	rep.Tables = append(rep.Tables, selfDiagFit(points))
	return rep, nil
}

// selfDiagFit fits the overhead trend q(n) ≈ β·n^γ over the widths where
// overhead was detected, seeding Levenberg-Marquardt from the log-log
// regression the way the batch estimator does.
func selfDiagFit(points []selfDiagPoint) Table {
	tbl := Table{
		Title:   "fitted scale-out overhead q(n) ≈ β·n^γ",
		Headers: []string{"parameter", "value"},
	}
	var ns, qs []float64
	for _, p := range points {
		if p.width >= 2 && p.q > 1e-9 {
			ns = append(ns, float64(p.width))
			qs = append(qs, p.q)
		}
	}
	if len(ns) < 3 {
		tbl.Rows = append(tbl.Rows,
			[]string{"beta", "n/a (overhead undetectable)"},
			[]string{"gamma", "n/a"},
			[]string{"fit points", fmt.Sprintf("%d", len(ns))})
		return tbl
	}
	p0 := []float64{qs[len(qs)-1], 1}
	if pl, err := stats.PowerLaw(ns, qs); err == nil && pl.Coeff > 0 {
		p0 = []float64{pl.Coeff, pl.Exponent}
	}
	model := func(p []float64, x float64) float64 { return p[0] * math.Pow(x, p[1]) }
	fit, err := stats.NonlinearFit(model, ns, qs, p0, stats.NLSOptions{})
	if err != nil {
		tbl.Rows = append(tbl.Rows,
			[]string{"beta", fmt.Sprintf("n/a (%v)", err)},
			[]string{"gamma", "n/a"},
			[]string{"fit points", fmt.Sprintf("%d", len(ns))})
		return tbl
	}
	tbl.Rows = append(tbl.Rows,
		[]string{"beta", fmt.Sprintf("%.4g", fit.Params[0])},
		[]string{"gamma", fmt.Sprintf("%.3f", fit.Params[1])},
		[]string{"fit points", fmt.Sprintf("%d", len(ns))},
		[]string{"sse", fmt.Sprintf("%.3g", fit.SSE)})
	return tbl
}
