package experiment

import (
	"context"
	"fmt"
	"reflect"
	"time"

	"ipso/internal/netmr"
	"ipso/internal/stats"
	"ipso/internal/workload"
)

// PipeShuffle is the pipelined-shuffle study: the same traced wordcount
// run with the classic map barrier (every reduce task waits for every
// map output) and with early dispatch (reduce tasks launch on the first
// stored map output; later locations stream to them over morelocs
// frames, so their fetches hide under the map tail). Outputs must be
// byte-identical — pipelining may only move work in time, never change
// it — and the refitted overhead ratio q(n) = n·Wo/Wp quantifies what
// the hidden fetch window buys: time a reducer spends fetching inside
// the map window is covered by MaxTask and leaves Wo. On hosts wide
// enough to actually overlap map and fetch the pipelined q(n) sits at
// or below the barrier q(n); a single-core host cannot overlap and
// the comparison is machine-dependent, so only the output identity is
// asserted, never the wall-clock ordering.
func PipeShuffle(ctx context.Context, workerCounts []int, lines, shards, reducers int) (Report, error) {
	if len(workerCounts) < 2 || lines < 1 || shards < 1 || reducers < 1 {
		return Report{}, fmt.Errorf(
			"experiment: invalid pipeshuffle grid (workers=%v lines=%d shards=%d reducers=%d)",
			workerCounts, lines, shards, reducers)
	}
	input, err := workload.TextLines(lines, 10, 42)
	if err != nil {
		return Report{}, err
	}
	rep := Report{ID: "pipeshuffle", Title: "Pipelined shuffle: early reduce dispatch vs the map barrier"}
	tbl := Table{
		Title: fmt.Sprintf("wordcount, R=%d: barrier vs early dispatch, traced refits (wall-clock; machine-dependent)",
			reducers),
		Headers: []string{"workers", "q(n) barrier", "q(n) early", "hidden fetch ms", "early launches", "locs streamed", "identical"},
	}
	var xs, qBar, qEarly []float64
	for _, n := range workerCounts {
		if n < 1 {
			return Report{}, fmt.Errorf("experiment: invalid worker count %d", n)
		}
		outB, _, bdB, err := runPipeShuffleWordCount(ctx, input, n, shards, reducers, false)
		if err != nil {
			return Report{}, err
		}
		outE, stE, bdE, err := runPipeShuffleWordCount(ctx, input, n, shards, reducers, true)
		if err != nil {
			return Report{}, err
		}
		if !reflect.DeepEqual(outB, outE) {
			return Report{}, fmt.Errorf("experiment: pipeshuffle at n=%d — early dispatch changed the output", n)
		}
		fN := float64(n)
		qb := clampPositive(fN * bdB.Wo / clampPositive(bdB.Wp))
		qe := clampPositive(fN * bdE.Wo / clampPositive(bdE.Wp))
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", n), f2(qb), f2(qe),
			fmt.Sprintf("%.3f", bdE.HiddenFetch*1e3),
			fmt.Sprintf("%d", stE.EarlyReduceTasks),
			fmt.Sprintf("%d", stE.LocsStreamed),
			"yes",
		})
		xs = append(xs, fN)
		qBar, qEarly = append(qBar, qb), append(qEarly, qe)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Series = append(rep.Series,
		Series{Name: "pipeshuffle/q-barrier", X: xs, Y: qBar},
		Series{Name: "pipeshuffle/q-early", X: xs, Y: qEarly},
	)
	barFit, err := stats.PowerLaw(xs, qBar)
	if err != nil {
		return Report{}, fmt.Errorf("experiment: pipeshuffle q(n) fit, barrier: %w", err)
	}
	earlyFit, err := stats.PowerLaw(xs, qEarly)
	if err != nil {
		return Report{}, fmt.Errorf("experiment: pipeshuffle q(n) fit, early: %w", err)
	}
	maxN := xs[len(xs)-1]
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("q(n)=β·n^γ, barrier:   %s", barFit),
		fmt.Sprintf("q(n)=β·n^γ, pipelined: %s", earlyFit),
		fmt.Sprintf("fitted overhead ratio at n=%.0f: %.4f barrier vs %.4f pipelined", maxN, barFit.Eval(maxN), earlyFit.Eval(maxN)),
		"every operating point produced the byte-identical output; fetch time a reducer hides inside the map window is covered by MaxTask and leaves Wo — on hosts wide enough to overlap map and fetch this shrinks q(n), while a single-core host cannot overlap at all and pays the streaming machinery instead (the hidden-fetch column records what actually moved under the map window)",
	)
	return rep, nil
}

// runPipeShuffleWordCount measures one traced operating point with early
// reduce dispatch on or off.
func runPipeShuffleWordCount(ctx context.Context, input []string, workers, shards, reducers int, early bool) (map[string]float64, netmr.Stats, netmr.PhaseBreakdown, error) {
	fail := func(err error) (map[string]float64, netmr.Stats, netmr.PhaseBreakdown, error) {
		return nil, netmr.Stats{}, netmr.PhaseBreakdown{}, err
	}
	job := wordCountNetJob()
	registry, err := netmr.NewRegistry(job)
	if err != nil {
		return fail(err)
	}
	master, err := netmr.NewMaster(registry, netmr.MasterConfig{
		MaxTaskBatch: 4, Reducers: reducers, Trace: true, EarlyShuffle: early,
	})
	if err != nil {
		return fail(err)
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	defer master.Close()

	stops := make([]func(), 0, workers)
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	for i := 0; i < workers; i++ {
		wreg, err := netmr.NewRegistry(job)
		if err != nil {
			return fail(err)
		}
		w, err := netmr.NewWorker(wreg)
		if err != nil {
			return fail(err)
		}
		if err := w.Start(addr); err != nil {
			return fail(err)
		}
		stops = append(stops, w.Stop)
	}
	if err := master.WaitForWorkers(workers, 30*time.Second); err != nil {
		return fail(err)
	}
	out, st, err := master.Run(ctx, "wordcount", input, shards)
	if err != nil {
		return fail(err)
	}
	trc := master.LastTrace()
	if trc == nil {
		return fail(fmt.Errorf("experiment: traced pipeshuffle run produced no job trace"))
	}
	return out, st, trc.Breakdown(st), nil
}
