package experiment

import (
	"context"
	"fmt"

	"ipso/internal/core"
	"ipso/internal/workload"
)

// Provisioning frames every case study as the resource question the
// paper's introduction motivates: "informed datacenter resource
// provisioning decisions ... to achieve the best speedup-versus-cost
// tradeoffs". For each MapReduce app the IPSO model is fitted from a
// small-n sweep and swept over operating points; the Collaborative
// Filtering row uses the Fig. 8 parameters. Rows report the
// speedup-per-dollar optimum and the hard scale-out limit (if any).
func Provisioning(ctx context.Context, sweeps []MRSweep, pricePerNodeHour float64, maxN int) (Report, error) {
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}
	if pricePerNodeHour <= 0 || maxN < 1 {
		return Report{}, fmt.Errorf("experiment: invalid provisioning parameters (price=%g maxN=%d)", pricePerNodeHour, maxN)
	}
	rep := Report{ID: "provisioning", Title: "Speedup-versus-cost operating points per application"}
	tbl := Table{
		Title:   fmt.Sprintf("at $%.2f/node-hour, n <= %d", pricePerNodeHour, maxN),
		Headers: []string{"app", "best $ n", "speedup", "job s", "$ per job", "hard limit"},
	}

	addRow := func(name string, input core.ProvisionInput) error {
		best, err := input.BestSpeedupPerDollar()
		if err != nil {
			return err
		}
		limit := "none"
		if l, ok, err := input.HardScaleOutLimit(); err == nil && ok {
			limit = fmt.Sprintf("%d", l)
		}
		tbl.Rows = append(tbl.Rows, []string{
			name,
			fmt.Sprintf("%d", best.N),
			f2(best.Speedup),
			fmt.Sprintf("%.0f", best.Seconds),
			fmt.Sprintf("%.4f", best.Dollars),
			limit,
		})
		return nil
	}

	for _, sw := range sweeps {
		fit := sw.truncate(16)
		est, err := core.Estimate(fit.Measurements())
		if err != nil {
			return Report{}, fmt.Errorf("experiment: fit %s: %w", sw.App, err)
		}
		pred, err := core.NewPredictor(est, sw.Tp1, sw.Ts1)
		if err != nil {
			return Report{}, err
		}
		input := core.ProvisionInput{
			Model:            pred.Model(),
			SeqJobSeconds:    sw.Tp1 + sw.Ts1,
			PricePerNodeHour: pricePerNodeHour,
			MaxN:             maxN,
		}
		if err := addRow(sw.App, input); err != nil {
			return Report{}, fmt.Errorf("experiment: provision %s: %w", sw.App, err)
		}
	}

	// Collaborative Filtering from the Fig. 8 parameters.
	cfModel, err := core.Asymptotic{Eta: 1, Beta: 0.6 / workload.PaperCFSeqTime, Gamma: 2}.Model(core.FixedSize)
	if err != nil {
		return Report{}, err
	}
	cfInput := core.ProvisionInput{
		Model:            cfModel,
		SeqJobSeconds:    workload.PaperCFSeqTime,
		PricePerNodeHour: pricePerNodeHour,
		MaxN:             maxN,
	}
	if err := addRow("collaborative-filtering", cfInput); err != nil {
		return Report{}, err
	}

	rep.Tables = append(rep.Tables, tbl)
	return rep, nil
}
