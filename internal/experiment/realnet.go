package experiment

import (
	"context"
	"fmt"
	"time"

	"ipso/internal/netmr"
	"ipso/internal/workload"
)

// wordCountNetJob is the WordCount job the real-cluster experiments run.
// Map splits on ASCII whitespace by hand (strings.Fields allocates a
// []string per record; on the hot path that was a fifth of the worker's
// allocations), and Combine declares the sum associative so workers fold
// counts during emit instead of buffering every occurrence.
func wordCountNetJob() netmr.Job {
	return netmr.Job{
		Name: "wordcount",
		Map: func(record string, emit func(string, float64)) {
			start := -1
			for i := 0; i < len(record); i++ {
				switch record[i] {
				case ' ', '\t', '\n', '\r':
					if start >= 0 {
						emit(record[start:i], 1)
						start = -1
					}
				default:
					if start < 0 {
						start = i
					}
				}
			}
			if start >= 0 {
				emit(record[start:], 1)
			}
		},
		Reduce: func(_ string, values []float64) float64 {
			total := 0.0
			for _, v := range values {
				total += v
			}
			return total
		},
		Combine: func(acc, v float64) float64 { return acc + v },
	}
}

// RealNet measures the actual TCP MapReduce runtime: the same WordCount
// computation is run over the network with growing worker pools and the
// measured wall-clock speedups (against the one-worker execution) are
// reported alongside the phase decomposition. Unlike every other
// experiment here, these are genuine measurements on the host machine —
// noisy and hardware-dependent, included to close the loop between the
// simulated case studies and a running distributed system.
//
// Interpretation caveats: in-process workers share the host's cores, so
// the measured speedup is capped by the physical core count (≈1 on a
// single-vCPU box no matter how many workers join), and the master-side
// scatter serializes records through one JSON encoder — a real instance
// of scale-out-induced serial work. Both effects are the resource
// constraints the paper's model is about, showing up on a real wall
// clock.
func RealNet(ctx context.Context, workerCounts []int, lines, shards int) (Report, error) {
	if len(workerCounts) == 0 || lines < 1 || shards < 1 {
		return Report{}, fmt.Errorf("experiment: invalid realnet grid (workers=%v lines=%d shards=%d)", workerCounts, lines, shards)
	}
	input, err := workload.TextLines(lines, 10, 42)
	if err != nil {
		return Report{}, err
	}

	rep := Report{ID: "realnet", Title: "Real TCP MapReduce runtime: measured wall-clock phases and speedups"}
	tbl := Table{
		Title:   "wordcount over localhost TCP (wall-clock; machine-dependent)",
		Headers: []string{"workers", "split ms", "merge ms", "total ms", "speedup vs 1 worker"},
	}
	var base time.Duration
	var xs, ys []float64
	for _, n := range workerCounts {
		if n < 1 {
			return Report{}, fmt.Errorf("experiment: invalid worker count %d", n)
		}
		stats, err := runRealWordCount(ctx, input, n, shards)
		if err != nil {
			return Report{}, err
		}
		if base == 0 {
			base = stats.TotalWall
		}
		speedup := float64(base) / float64(stats.TotalWall)
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", float64(stats.SplitWall)/1e6),
			fmt.Sprintf("%.1f", float64(stats.MergeWall)/1e6),
			fmt.Sprintf("%.1f", float64(stats.TotalWall)/1e6),
			f2(speedup),
		})
		xs = append(xs, float64(n))
		ys = append(ys, speedup)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Series = append(rep.Series, Series{Name: "realnet/wordcount", X: xs, Y: ys})
	return rep, nil
}

func runRealWordCount(ctx context.Context, input []string, workers, shards int) (netmr.Stats, error) {
	job := wordCountNetJob()
	registry, err := netmr.NewRegistry(job)
	if err != nil {
		return netmr.Stats{}, err
	}
	// Batched dispatch amortizes framing and syscalls across shards; the
	// worker still acks each shard individually, so the phase stats keep
	// per-shard resolution.
	master, err := netmr.NewMaster(registry, netmr.MasterConfig{MaxTaskBatch: 4})
	if err != nil {
		return netmr.Stats{}, err
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		return netmr.Stats{}, err
	}
	defer master.Close()

	stops := make([]func(), 0, workers)
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	for i := 0; i < workers; i++ {
		wreg, err := netmr.NewRegistry(job)
		if err != nil {
			return netmr.Stats{}, err
		}
		w, err := netmr.NewWorker(wreg)
		if err != nil {
			return netmr.Stats{}, err
		}
		if err := w.Start(addr); err != nil {
			return netmr.Stats{}, err
		}
		stops = append(stops, w.Stop)
	}
	if err := master.WaitForWorkers(workers, 30*time.Second); err != nil {
		return netmr.Stats{}, err
	}
	_, stats, err := master.Run(ctx, "wordcount", input, shards)
	return stats, err
}
