package experiment

import (
	"context"
	"fmt"
	"time"

	"ipso/internal/netmr"
	"ipso/internal/stats"
	"ipso/internal/workload"
)

// wordCountNetJob is the WordCount job the real-cluster experiments run.
// Map splits on ASCII whitespace by hand (strings.Fields allocates a
// []string per record; on the hot path that was a fifth of the worker's
// allocations), and Combine declares the sum associative so workers fold
// counts during emit instead of buffering every occurrence.
func wordCountNetJob() netmr.Job {
	return netmr.Job{
		Name: "wordcount",
		Map: func(record string, emit func(string, float64)) {
			start := -1
			for i := 0; i < len(record); i++ {
				switch record[i] {
				case ' ', '\t', '\n', '\r':
					if start >= 0 {
						emit(record[start:i], 1)
						start = -1
					}
				default:
					if start < 0 {
						start = i
					}
				}
			}
			if start >= 0 {
				emit(record[start:], 1)
			}
		},
		Reduce: func(_ string, values []float64) float64 {
			total := 0.0
			for _, v := range values {
				total += v
			}
			return total
		},
		Combine: func(acc, v float64) float64 { return acc + v },
	}
}

// RealNet measures the actual TCP MapReduce runtime: the same WordCount
// computation is run over the network with growing worker pools and the
// measured wall-clock speedups (against the one-worker execution) are
// reported alongside the phase decomposition. Unlike every other
// experiment here, these are genuine measurements on the host machine —
// noisy and hardware-dependent, included to close the loop between the
// simulated case studies and a running distributed system.
//
// Interpretation caveats: in-process workers share the host's cores, so
// the measured speedup is capped by the physical core count (≈1 on a
// single-vCPU box no matter how many workers join), and the master-side
// scatter serializes records through one JSON encoder — a real instance
// of scale-out-induced serial work. Both effects are the resource
// constraints the paper's model is about, showing up on a real wall
// clock.
func RealNet(ctx context.Context, workerCounts []int, lines, shards int) (Report, error) {
	if len(workerCounts) == 0 || lines < 1 || shards < 1 {
		return Report{}, fmt.Errorf("experiment: invalid realnet grid (workers=%v lines=%d shards=%d)", workerCounts, lines, shards)
	}
	input, err := workload.TextLines(lines, 10, 42)
	if err != nil {
		return Report{}, err
	}

	rep := Report{ID: "realnet", Title: "Real TCP MapReduce runtime: measured wall-clock phases and speedups"}
	tbl := Table{
		Title:   "wordcount over localhost TCP (wall-clock; machine-dependent)",
		Headers: []string{"workers", "split ms", "merge ms", "overlap ms", "total ms", "speedup vs 1 worker"},
	}
	mergeTbl := Table{
		Title: "merge Ws(n): serial barrier-then-merge vs partitioned map-overlapped merge",
		Headers: []string{"workers", "serial merge ms", "overlapped tail ms", "tail shrink ×",
			"pre-partitioned"},
	}
	var base time.Duration
	var xs, ys []float64
	var serialMerge, overlappedTail []float64
	for _, n := range workerCounts {
		if n < 1 {
			return Report{}, fmt.Errorf("experiment: invalid worker count %d", n)
		}
		st, err := runRealWordCount(ctx, input, n, shards, false)
		if err != nil {
			return Report{}, err
		}
		serialStats, err := runRealWordCount(ctx, input, n, shards, true)
		if err != nil {
			return Report{}, err
		}
		if base == 0 {
			base = st.TotalWall
		}
		speedup := float64(base) / float64(st.TotalWall)
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", float64(st.SplitWall)/1e6),
			fmt.Sprintf("%.1f", float64(st.MergeWall)/1e6),
			fmt.Sprintf("%.1f", float64(st.MergeOverlapWall)/1e6),
			fmt.Sprintf("%.1f", float64(st.TotalWall)/1e6),
			f2(speedup),
		})
		tail := st.MergeWall - st.MergeOverlapWall
		shrink := "—"
		if tail > 0 {
			shrink = f2(float64(serialStats.MergeWall) / float64(tail))
		}
		mergeTbl.Rows = append(mergeTbl.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", float64(serialStats.MergeWall)/1e6),
			fmt.Sprintf("%.1f", float64(tail)/1e6),
			shrink,
			fmt.Sprintf("%d/%d", st.PrePartitioned, st.Completed),
		})
		xs = append(xs, float64(n))
		ys = append(ys, speedup)
		serialMerge = append(serialMerge, positiveMs(serialStats.MergeWall))
		overlappedTail = append(overlappedTail, positiveMs(tail))
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Tables = append(rep.Tables, mergeTbl)
	rep.Series = append(rep.Series, Series{Name: "realnet/wordcount", X: xs, Y: ys})
	rep.Series = append(rep.Series, Series{Name: "realnet/merge-serial-ms", X: xs, Y: serialMerge})
	rep.Series = append(rep.Series, Series{Name: "realnet/merge-tail-ms", X: xs, Y: overlappedTail})

	// Eq. 10's IN(n) term grows with the in-proportion ratio ε(n) ≈ α·n^δ
	// (Eq. 14): refit it on the measured merge walls before and after the
	// partitioned overlap. The after-fit's smaller α (and ideally flatter
	// δ) is the model-level statement of what the engine bought.
	if len(xs) >= 2 {
		if before, err := stats.PowerLaw(xs, serialMerge); err == nil {
			rep.Notes = append(rep.Notes, fmt.Sprintf("ε(n)=α·n^δ on serial merge ms: %s", before))
		}
		if after, err := stats.PowerLaw(xs, overlappedTail); err == nil {
			rep.Notes = append(rep.Notes, fmt.Sprintf("ε(n)=α·n^δ on overlapped merge tail ms: %s", after))
		}
	}
	return rep, nil
}

// positiveMs converts a duration to milliseconds clamped to a small
// positive floor, keeping the power-law refit (which needs y > 0) alive
// when the overlapped tail rounds to zero.
func positiveMs(d time.Duration) float64 {
	ms := float64(d) / 1e6
	if ms < 1e-3 {
		return 1e-3
	}
	return ms
}

func runRealWordCount(ctx context.Context, input []string, workers, shards int, serialMerge bool) (netmr.Stats, error) {
	job := wordCountNetJob()
	registry, err := netmr.NewRegistry(job)
	if err != nil {
		return netmr.Stats{}, err
	}
	// Batched dispatch amortizes framing and syscalls across shards; the
	// worker still acks each shard individually, so the phase stats keep
	// per-shard resolution. SerialMerge selects the legacy barrier-then-
	// merge so the experiment can report both sides of the comparison;
	// the partitioned side pins P=4 (not GOMAXPROCS) so workers
	// pre-partition even on a single-core host and runs compare across
	// machines.
	master, err := netmr.NewMaster(registry, netmr.MasterConfig{MaxTaskBatch: 4, SerialMerge: serialMerge, Partitions: 4})
	if err != nil {
		return netmr.Stats{}, err
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		return netmr.Stats{}, err
	}
	defer master.Close()

	stops := make([]func(), 0, workers)
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	for i := 0; i < workers; i++ {
		wreg, err := netmr.NewRegistry(job)
		if err != nil {
			return netmr.Stats{}, err
		}
		w, err := netmr.NewWorker(wreg)
		if err != nil {
			return netmr.Stats{}, err
		}
		if err := w.Start(addr); err != nil {
			return netmr.Stats{}, err
		}
		stops = append(stops, w.Stop)
	}
	if err := master.WaitForWorkers(workers, 30*time.Second); err != nil {
		return netmr.Stats{}, err
	}
	_, stats, err := master.Run(ctx, "wordcount", input, shards)
	return stats, err
}
