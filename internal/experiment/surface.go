package experiment

import (
	"context"
	"fmt"

	"ipso/internal/runner"
	"ipso/internal/stats"
	"ipso/internal/workload"
)

// SurfacePoint is one (N, m) operating point of a Spark benchmark.
type SurfacePoint struct {
	Tasks   int // N
	Execs   int // m
	Speedup float64
}

// SurfaceFit is the nonlinear-regression surface the paper overlays on
// Figs. 9-10: the speedup of a stage-structured job modeled as
//
//	S(N, m) ≈ a·N / (a·N/m + b·m + c)
//
// where a is the per-task work, b the per-executor scale-out cost
// (broadcast + dispatch serialization), and c the fixed serial/driver
// part. The projections of this surface at fixed N/m and fixed N are the
// paper's "matched curves" for the fixed-time and fixed-size dimensions.
type SurfaceFit struct {
	A, B, C float64
	SSE     float64
	R2      float64
}

// Eval returns the fitted speedup at (tasks, execs).
func (f SurfaceFit) Eval(tasks, execs float64) float64 {
	return f.A * tasks / (f.A*tasks/execs + f.B*execs + f.C)
}

// FitSurface fits the surface to measured points by Levenberg-Marquardt,
// encoding the 2-D inputs through the sample index.
func FitSurface(points []SurfacePoint) (SurfaceFit, error) {
	if len(points) < 4 {
		return SurfaceFit{}, fmt.Errorf("experiment: need >= 4 surface points, got %d", len(points))
	}
	xs := make([]float64, len(points))
	ys := make([]float64, len(points))
	for i, p := range points {
		if p.Tasks < 1 || p.Execs < 1 || p.Speedup <= 0 {
			return SurfaceFit{}, fmt.Errorf("experiment: invalid surface point %+v", p)
		}
		xs[i] = float64(i)
		ys[i] = p.Speedup
	}
	model := func(par []float64, x float64) float64 {
		p := points[int(x)]
		a, b, c := abs64(par[0]), abs64(par[1]), abs64(par[2])
		den := a*float64(p.Tasks)/float64(p.Execs) + b*float64(p.Execs) + c
		if den <= 0 {
			return 0
		}
		return a * float64(p.Tasks) / den
	}
	res, err := stats.NonlinearFit(model, xs, ys, []float64{10, 0.3, 10}, stats.NLSOptions{})
	if err != nil {
		return SurfaceFit{}, err
	}
	fit := SurfaceFit{A: abs64(res.Params[0]), B: abs64(res.Params[1]), C: abs64(res.Params[2]), SSE: res.SSE}

	mean := 0.0
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	ssTot := 0.0
	for _, y := range ys {
		ssTot += (y - mean) * (y - mean)
	}
	if ssTot > 0 {
		fit.R2 = 1 - fit.SSE/ssTot
	}
	return fit, nil
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// SparkSurface measures each benchmark on a (N, m) grid, fits the
// regression surface, and reports the fitted parameters plus the
// projected fixed-time (N/m = 4) and fixed-size (largest N) curves — the
// methodology behind the matched curves of Figs. 9-10. cfg (nil
// allowed) memoizes the speedup points: the surface grid is a subset of
// Fig. 9's, so under a shared Config this experiment is nearly all
// cache hits.
func SparkSurface(ctx context.Context, cfg *Config, loadLevels, execs []int) (Report, error) {
	if len(loadLevels) == 0 || len(execs) == 0 {
		return Report{}, fmt.Errorf("experiment: empty surface grids")
	}
	apps := workload.SparkBenchmarks()
	perApp := len(loadLevels) * len(execs)
	allPoints, err := runner.Map(ctx, len(apps)*perApp, func(_ context.Context, i int) (SurfacePoint, error) {
		app := apps[i/perApp]
		k := loadLevels[(i%perApp)/len(execs)]
		m := execs[i%len(execs)]
		s, err := cfg.SparkSpeedup(app, k*m, m)
		if err != nil {
			return SurfacePoint{}, fmt.Errorf("experiment: %s N=%d m=%d: %w", app.Name(), k*m, m, err)
		}
		return SurfacePoint{Tasks: k * m, Execs: m, Speedup: s}, nil
	})
	if err != nil {
		return Report{}, err
	}
	rep := Report{ID: "surface", Title: "Spark speedup surfaces S(N, m) via nonlinear regression"}
	tbl := Table{
		Title:   "fitted surfaces S(N,m) = aN / (aN/m + bm + c)",
		Headers: []string{"app", "a (task s)", "b (per-exec s)", "c (serial s)", "R²"},
	}
	for a, app := range apps {
		points := allPoints[a*perApp : (a+1)*perApp]
		fit, err := FitSurface(points)
		if err != nil {
			return Report{}, fmt.Errorf("experiment: fit %s: %w", app.Name(), err)
		}
		tbl.Rows = append(tbl.Rows, []string{
			app.Name(), f3(fit.A), f3(fit.B), f3(fit.C), f3(fit.R2),
		})

		// Projections: fixed-time at N/m = 4 and fixed-size at the
		// largest measured N.
		var ftX, ftY, fsX, fsY []float64
		maxN := loadLevels[len(loadLevels)-1] * execs[len(execs)-1]
		for _, m := range execs {
			ftX = append(ftX, float64(m))
			ftY = append(ftY, fit.Eval(float64(4*m), float64(m)))
			fsX = append(fsX, float64(m))
			fsY = append(fsY, fit.Eval(float64(maxN), float64(m)))
		}
		rep.Series = append(rep.Series,
			Series{Name: app.Name() + "/surface-fixed-time", X: ftX, Y: ftY},
			Series{Name: app.Name() + "/surface-fixed-size", X: fsX, Y: fsY},
		)
	}
	rep.Tables = append(rep.Tables, tbl)
	return rep, nil
}
