package experiment

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"

	"ipso/internal/core"
	"ipso/internal/netmr"
	"ipso/internal/obs"
	"ipso/internal/workload"
)

// LiveFit closes the telemetry loop the paper leaves as future work: the
// real TCP MapReduce runtime runs with distributed tracing on, every
// job's wall clock is attributed into the measured Wp/Ws/Wo phases from
// the assembled master+worker spans (Eq. 14-17's measurable quantities),
// the per-degree phase accounts stream through core.LiveFeed into the
// scaling-model zoo, and the continuously refitted selection — winning
// model, AICc scoreboard, fitted parameters, predicted optimal degree —
// is exported on the same /metrics endpoint the cluster already serves.
//
// The experiment validates the loop twice over. A synthetic feed with a
// known ground truth (Eq. 17 with η = 1, β = 0.02, γ = 1.5) checks the
// pipeline end to end where the right answer is analytic: the
// phase-informed IPSO member must win the zoo and the fitted optimal
// degree must land on n* = (1/(β(γ−1)))^(1/γ) ≈ 21.5. The live feed from
// the real traced cluster is then held to structural invariants (a zoo
// member selected, finite scores, optimal degree in range) and its
// exported gauges are scraped back over HTTP and strict-parsed — the
// measured values themselves are machine-dependent.
func LiveFit(ctx context.Context, workerCounts []int, lines, shards int) (Report, error) {
	if len(workerCounts) < 4 || lines < 1 || shards < 1 {
		return Report{}, fmt.Errorf("experiment: livefit needs >= 4 worker counts (got %v), positive lines/shards", workerCounts)
	}
	rep := Report{ID: "livefit", Title: "Live-telemetry-fed model fitting: traced netmr phases into the zoo"}

	// Part 1: synthetic ground truth through the identical pipeline.
	synth, err := liveFitSynthetic(&rep)
	if err != nil {
		return Report{}, err
	}
	_ = synth

	// Part 2: the real traced cluster.
	if err := liveFitReal(ctx, &rep, workerCounts, lines, shards); err != nil {
		return Report{}, err
	}
	return rep, nil
}

// liveFitSynthetic feeds exact Eq. 17 observations (η = 1, so the whole
// workload is parallelizable and S(n) = n/(1+β·n^γ)) and asserts the
// live fit recovers the generating model and its optimal degree.
func liveFitSynthetic(rep *Report) (core.ModelSelection, error) {
	const beta, gamma = 0.02, 1.5
	reg := obs.NewRegistry()
	feed := core.NewLiveFeed(core.LiveFeedOptions{MaxN: 64, Metrics: reg})
	var xs, qs []float64
	for _, n := range []float64{1, 2, 4, 8, 16, 32, 64} {
		wo := beta * math.Pow(n, gamma)
		// Fixed-time workload: Wp(n) = n·Wp(1), every task takes 1 s, no
		// serial phase — the measured shape of Eq. 17's derivation.
		o := core.Observation{N: n, Wp: n, Ws: 0, Wo: wo, MaxTask: 1}
		if err := feed.Observe(o); err != nil {
			return core.ModelSelection{}, err
		}
		xs = append(xs, n)
		qs = append(qs, n*wo/o.Wp)
	}
	sel, err := feed.Refit()
	if err != nil {
		return sel, fmt.Errorf("experiment: synthetic live refit: %w", err)
	}
	best, _, err := feed.Best()
	if err != nil {
		return sel, err
	}
	if best.Name() != "ipso" {
		return sel, fmt.Errorf("experiment: synthetic Eq. 17 feed selected %q, want ipso", best.Name())
	}
	nStar, sStar, err := feed.OptimalN()
	if err != nil {
		return sel, err
	}
	// Analytic optimum: n* = (1/(β(γ−1)))^(1/γ) = 100^(2/3) ≈ 21.5; the
	// integer argmax must land beside it.
	want := math.Pow(1/(beta*(gamma-1)), 1/gamma)
	if nStar < int(want)-1 || nStar > int(want)+2 {
		return sel, fmt.Errorf("experiment: synthetic optimal n = %d, want near %.1f", nStar, want)
	}
	// The gauges must agree with the returned values — that is the
	// /metrics contract the control plane will consume.
	fams, err := scrapeRegistry(reg)
	if err != nil {
		return sel, err
	}
	if err := checkLiveFitGauges(fams, best.Name(), nStar); err != nil {
		return sel, err
	}

	tbl := Table{
		Title:   fmt.Sprintf("synthetic Eq. 17 feed (η=1, β=%g, γ=%g): zoo scoreboard", beta, gamma),
		Headers: []string{"model", "AICc", "selected"},
	}
	for i, f := range sel.Fits {
		mark := ""
		if i == sel.Best {
			mark = "*"
		}
		tbl.Rows = append(tbl.Rows, []string{f.Name, f2(f.AICc), mark})
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Series = append(rep.Series, Series{Name: "livefit/synthetic-q", X: xs, Y: qs})
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"synthetic feed: selected %s, optimal n = %d (S = %s, analytic n* = %.1f)",
		best.Name(), nStar, f2(sStar), want))
	return sel, nil
}

// liveFitReal runs the traced cluster at every degree, attributes each
// run's phases from its job trace, feeds the live fit, and scrapes the
// exported selection back through the strict Prometheus parser.
func liveFitReal(ctx context.Context, rep *Report, workerCounts []int, lines, shards int) error {
	input, err := workload.TextLines(lines, 10, 42)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	maxN := 4 * workerCounts[len(workerCounts)-1]
	feed := core.NewLiveFeed(core.LiveFeedOptions{MaxN: maxN, Metrics: reg})

	tbl := Table{
		Title:   "traced wordcount over localhost TCP: measured phase attribution (wall-clock; machine-dependent)",
		Headers: []string{"workers", "Wp ms", "Ws ms", "Wo ms", "max-task ms", "total ms", "q(n)"},
	}
	var xs, qs []float64
	for _, n := range workerCounts {
		if n < 1 {
			return fmt.Errorf("experiment: invalid worker count %d", n)
		}
		bd, err := runTracedWordCount(ctx, input, n, shards)
		if err != nil {
			return err
		}
		o := core.Observation{N: float64(n), Wp: bd.Wp, Ws: bd.Ws, Wo: bd.Wo, MaxTask: bd.MaxTask}
		if o.Wp <= 0 {
			// Sub-resolution compute on a tiny grid: keep the feed alive
			// rather than fail the whole experiment.
			o.Wp = 1e-9
		}
		if err := feed.Observe(o); err != nil {
			return err
		}
		q := o.N * o.Wo / o.Wp
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2f", bd.Wp*1e3),
			fmt.Sprintf("%.2f", bd.Ws*1e3),
			fmt.Sprintf("%.2f", bd.Wo*1e3),
			fmt.Sprintf("%.2f", bd.MaxTask*1e3),
			fmt.Sprintf("%.2f", bd.TotalWall*1e3),
			f2(q),
		})
		xs = append(xs, o.N)
		qs = append(qs, q)
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Series = append(rep.Series, Series{Name: "livefit/measured-q", X: xs, Y: qs})

	sel, err := feed.Refit()
	if err != nil {
		return fmt.Errorf("experiment: live refit from traced cluster: %w", err)
	}
	best, _, err := feed.Best()
	if err != nil {
		return err
	}
	known := map[string]bool{"ipso": true, "usl": true, "amdahl": true, "gustafson": true, "power": true}
	if !known[best.Name()] {
		return fmt.Errorf("experiment: live fit selected unknown model %q", best.Name())
	}
	fit, ok := sel.BestFit()
	if !ok || math.IsNaN(fit.AICc) {
		return fmt.Errorf("experiment: live fit produced no scored winner")
	}
	nStar, sStar, err := feed.OptimalN()
	if err != nil {
		return err
	}
	if nStar < 1 || nStar > maxN {
		return fmt.Errorf("experiment: fitted optimal n = %d outside [1, %d]", nStar, maxN)
	}

	// Scrape the selection back over a real HTTP /metrics endpoint and
	// hold the output to the strict exposition grammar.
	srv, err := obs.Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		return err
	}
	defer func() { _ = srv.Close() }()
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	fams, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		return fmt.Errorf("experiment: /metrics scrape failed strict parse: %w", err)
	}
	if err := checkLiveFitGauges(fams, best.Name(), nStar); err != nil {
		return err
	}

	zooTbl := Table{
		Title:   "live zoo scoreboard from the traced cluster",
		Headers: []string{"model", "AICc", "selected"},
	}
	for i, f := range sel.Fits {
		mark := ""
		if i == sel.Best {
			mark = "*"
		}
		zooTbl.Rows = append(zooTbl.Rows, []string{f.Name, f2(f.AICc), mark})
	}
	rep.Tables = append(rep.Tables, zooTbl)
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"live fit: selected %s, predicted optimal n = %d (S = %s) on [1, %d]; selection exported and re-scraped from /metrics",
		best.Name(), nStar, f2(sStar), maxN))
	return nil
}

// scrapeRegistry renders a registry and strict-parses it back — the
// in-process equivalent of a /metrics round trip.
func scrapeRegistry(reg *obs.Registry) ([]obs.PromFamily, error) {
	pr, pw := io.Pipe()
	go func() { pw.CloseWithError(reg.WritePrometheus(pw)) }()
	return obs.ParsePrometheus(pr)
}

// checkLiveFitGauges asserts the exported live-fit selection matches the
// in-process values: the winner's selected_model gauge is 1 and
// optimal_n carries the fitted degree.
func checkLiveFitGauges(fams []obs.PromFamily, model string, nStar int) error {
	var selected, optimal *obs.PromFamily
	for i := range fams {
		switch fams[i].Name {
		case "core_livefit_selected_model":
			selected = &fams[i]
		case "core_livefit_optimal_n":
			optimal = &fams[i]
		}
	}
	if selected == nil || optimal == nil {
		return fmt.Errorf("experiment: live-fit families missing from scrape (selected=%v optimal=%v)", selected != nil, optimal != nil)
	}
	s, ok := selected.Sample("core_livefit_selected_model", [2]string{"model", model})
	if !ok || s.Value != 1 {
		return fmt.Errorf("experiment: core_livefit_selected_model{model=%q} != 1 in scrape", model)
	}
	o, ok := optimal.Sample("core_livefit_optimal_n")
	if !ok || o.Value != float64(nStar) {
		return fmt.Errorf("experiment: core_livefit_optimal_n = %g in scrape, want %d", o.Value, nStar)
	}
	return nil
}

// runTracedWordCount runs one traced wordcount job on a fresh in-process
// cluster and returns the trace's phase attribution.
func runTracedWordCount(ctx context.Context, input []string, workers, shards int) (netmr.PhaseBreakdown, error) {
	job := wordCountNetJob()
	registry, err := netmr.NewRegistry(job)
	if err != nil {
		return netmr.PhaseBreakdown{}, err
	}
	master, err := netmr.NewMaster(registry, netmr.MasterConfig{
		MaxTaskBatch: 4, Partitions: 4, Trace: true, Metrics: obs.NewRegistry(),
	})
	if err != nil {
		return netmr.PhaseBreakdown{}, err
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		return netmr.PhaseBreakdown{}, err
	}
	defer master.Close()

	stops := make([]func(), 0, workers)
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	for i := 0; i < workers; i++ {
		wreg, err := netmr.NewRegistry(job)
		if err != nil {
			return netmr.PhaseBreakdown{}, err
		}
		w, err := netmr.NewWorker(wreg)
		if err != nil {
			return netmr.PhaseBreakdown{}, err
		}
		if err := w.Start(addr); err != nil {
			return netmr.PhaseBreakdown{}, err
		}
		stops = append(stops, w.Stop)
	}
	if err := master.WaitForWorkers(workers, 30*time.Second); err != nil {
		return netmr.PhaseBreakdown{}, err
	}
	_, stats, err := master.Run(ctx, "wordcount", input, shards)
	if err != nil {
		return netmr.PhaseBreakdown{}, err
	}
	trc := master.LastTrace()
	if trc == nil {
		return netmr.PhaseBreakdown{}, fmt.Errorf("experiment: traced run produced no job trace")
	}
	if open := trc.OpenLaunches(); open != 0 {
		return netmr.PhaseBreakdown{}, fmt.Errorf("experiment: job trace left %d launches open", open)
	}
	return trc.Breakdown(stats), nil
}
