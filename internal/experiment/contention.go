package experiment

import (
	"context"
	"fmt"

	"ipso/internal/core"
	"ipso/internal/queueing"
)

// AblationContention grounds the scale-out-induced factor in queueing
// theory: the paper's motivation cites the result [9] that any resource
// contention among parallel tasks induces an effective serial workload.
// Here a centralized shared service (e.g. a scheduler or metadata store)
// is modeled as an M/M/1 queue; the resulting contention q(n) is plugged
// into the IPSO speedup, which peaks and collapses as the service
// saturates — without any explicit serial portion in the workload.
func AblationContention(ctx context.Context, serviceRates []float64, requestsPerTask, taskSeconds float64, ns []float64) (Report, error) {
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}
	if len(serviceRates) == 0 || len(ns) == 0 {
		return Report{}, fmt.Errorf("experiment: empty contention grids")
	}
	rep := Report{ID: "ablation-contention", Title: "Contention-induced q(n): IPSO speedup under a shared M/M/1 service"}
	tbl := Table{
		Title:   "saturation analysis",
		Headers: []string{"service rate (req/s)", "saturation n", "peak S", "peak n"},
	}
	for _, mu := range serviceRates {
		res := queueing.SharedResource{
			ServiceRate:     mu,
			RequestsPerTask: requestsPerTask,
			TaskSeconds:     taskSeconds,
		}
		q, err := res.Q()
		if err != nil {
			return Report{}, err
		}
		satN, err := res.SaturationN()
		if err != nil {
			return Report{}, err
		}
		m := core.Model{Eta: 1, EX: core.LinearFactor(1, 0), IN: core.Constant(0), Q: q}

		var xs, ys []float64
		peakN, peakS := 0.0, 0.0
		for _, n := range ns {
			if n >= satN {
				break // unbounded contention delay past saturation
			}
			s, err := m.Speedup(n)
			if err != nil {
				return Report{}, err
			}
			xs = append(xs, n)
			ys = append(ys, s)
			if s > peakS {
				peakN, peakS = n, s
			}
		}
		if len(xs) == 0 {
			return Report{}, fmt.Errorf("experiment: grid entirely past saturation (μ=%g)", mu)
		}
		rep.Series = append(rep.Series, Series{Name: fmt.Sprintf("contention/mu=%g", mu), X: xs, Y: ys})
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%.0f", mu),
			fmt.Sprintf("%.0f", satN),
			f2(peakS),
			fmt.Sprintf("%.0f", peakN),
		})
	}
	rep.Tables = append(rep.Tables, tbl)
	return rep, nil
}
