package experiment

import (
	"context"
	"fmt"

	"ipso/internal/core"
	"ipso/internal/mapreduce"
	"ipso/internal/workload"
)

// MRProbe adapts the simulated MapReduce cluster into the probe interface
// of the measurement-based provisioning algorithm: probing degree n runs
// one parallel execution and extracts the phase workloads from its trace.
func MRProbe(app mapreduce.AppModel) core.ProbeFunc {
	return func(ctx context.Context, n int) (core.Observation, error) {
		if err := ctx.Err(); err != nil {
			return core.Observation{}, err
		}
		par, err := mapreduce.RunParallel(MRConfig(app, n))
		if err != nil {
			return core.Observation{}, err
		}
		wp, ws, wo, maxTask := PhasesFromLog(par.Log)
		return core.Observation{N: float64(n), Wp: wp, Ws: ws, Wo: wo, MaxTask: maxTask}, nil
	}
}

// FutureWork runs the Section VI future-work pipeline end to end on the
// simulator: probe an application at geometrically spaced small degrees
// until δ and γ converge, fit the model, pick the best speedup-per-dollar
// operating point, and validate the extrapolated speedup against a real
// (simulated) run at a degree far beyond the probes.
func FutureWork(ctx context.Context, pricePerNodeHour float64, validateN int) (Report, error) {
	if pricePerNodeHour <= 0 || validateN < 2 {
		return Report{}, fmt.Errorf("experiment: invalid future-work parameters (price=%g, validateN=%d)", pricePerNodeHour, validateN)
	}
	rep := Report{ID: "futurework", Title: "Section VI: measurement-based provisioning via online (δ, γ) estimation"}
	tbl := Table{
		Title:   "per-application plans",
		Headers: []string{"app", "probes", "converged", "δ", "best n", "best S", "$", "predicted S@val", "simulated S@val", "rel err", "model"},
	}
	for _, app := range mrCaseApps() {
		plan, err := core.AutoProvision(ctx, MRProbe(app), core.AutoProvisionOptions{
			Online:           core.OnlineOptions{SerialPrecision: 0.01},
			PricePerNodeHour: pricePerNodeHour,
			MaxN:             256,
		})
		if err != nil {
			return Report{}, fmt.Errorf("experiment: autoprovision %s: %w", app.Name(), err)
		}
		predicted, err := plan.Model.Speedup(float64(validateN))
		if err != nil {
			return Report{}, err
		}
		measured, _, _, err := mapreduce.Speedup(MRConfig(app, validateN))
		if err != nil {
			return Report{}, err
		}
		relErr := (predicted - measured) / measured
		if relErr < 0 {
			relErr = -relErr
		}
		tbl.Rows = append(tbl.Rows, []string{
			app.Name(),
			fmt.Sprintf("%v", plan.Probed),
			fmt.Sprintf("%v", plan.Converged),
			f3(plan.Estimates.Epsilon.Exponent),
			fmt.Sprintf("%d", plan.Best.N),
			f2(plan.Best.Speedup),
			fmt.Sprintf("%.4f", plan.Best.Dollars),
			f2(predicted),
			f2(measured),
			f3(relErr),
			plan.Model.Name(),
		})
	}
	rep.Tables = append(rep.Tables, tbl)
	return rep, nil
}

// CFProbe adapts the simulated Collaborative Filtering application.
func CFProbe() core.ProbeFunc {
	cf := workload.NewCollaborativeFiltering()
	points := func(ctx context.Context, n int) (core.Observation, error) {
		res, err := runCFPoint(ctx, cf, n)
		if err != nil {
			return core.Observation{}, err
		}
		return res, nil
	}
	return points
}

func runCFPoint(ctx context.Context, cf *workload.CollaborativeFiltering, n int) (core.Observation, error) {
	pts, err := RunCFSweep(ctx, []int{n})
	if err != nil {
		return core.Observation{}, err
	}
	p := pts[0]
	// Fixed-size: Wp(n) = Wp(1) ≈ total work; approximate from the
	// split-phase measurement Wp ≈ n·E[max Tp,i] minus overheads.
	return core.Observation{
		N:       float64(n),
		Wp:      cf.WorkPerIteration / 1e8, // seconds on the reference worker
		Ws:      0,
		Wo:      p.Wo,
		MaxTask: p.MaxTask,
	}, nil
}
