package experiment

import (
	"context"
	"testing"
)

// TestDistReduceShrinksSerialFit is the acceptance check for the
// distributed reduce phase: refitting ε(n)=α·n^δ on the master's serial
// work must come out strictly smaller with reduce on (union of R
// disjoint key spaces) than with reduce off (full per-key fold).
func TestDistReduceShrinksSerialFit(t *testing.T) {
	grid := []int{1, 2, 4}
	points, offFit, onFit, err := distReduceMeasure(context.Background(), grid, 4000, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(grid) {
		t.Fatalf("measured %d points, want %d", len(points), len(grid))
	}
	for _, p := range points {
		if p.reduceRuns != 4 {
			t.Errorf("n=%d: %d reduce tasks ran on workers, want 4", p.n, p.reduceRuns)
		}
		if p.residueMs >= p.serialMs {
			t.Errorf("n=%d: master residue %.3f ms not smaller than serial fold %.3f ms",
				p.n, p.residueMs, p.serialMs)
		}
	}
	maxN := float64(grid[len(grid)-1])
	if on, off := onFit.Eval(maxN), offFit.Eval(maxN); on >= off {
		t.Errorf("fitted ε at n=%.0f: %.3f ms with reduce on, %.3f ms off — want strictly smaller", maxN, on, off)
	}
}

func TestDistReduceReport(t *testing.T) {
	rep, err := DistReduce(context.Background(), []int{1, 2}, 2000, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 1 || len(rep.Tables[0].Rows) != 2 {
		t.Fatalf("unexpected report shape %+v", rep.Tables)
	}
	for _, name := range []string{"distreduce/serial-ms", "distreduce/residue-ms"} {
		s := seriesByName(t, rep, name)
		for _, v := range s.Y {
			if v <= 0 {
				t.Errorf("%s has nonpositive sample %g", name, v)
			}
		}
	}
	if len(rep.Notes) != 3 {
		t.Errorf("expected two ε(n) fit notes plus the comparison, got %v", rep.Notes)
	}
}

func TestDistReduceValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := DistReduce(ctx, []int{1}, 10, 2, 2); err == nil {
		t.Error("single-point grid should error (fit needs >=2 points)")
	}
	if _, err := DistReduce(ctx, []int{1, 2}, 0, 2, 2); err == nil {
		t.Error("zero lines should error")
	}
	if _, err := DistReduce(ctx, []int{1, 2}, 10, 2, 0); err == nil {
		t.Error("zero reducers should error")
	}
	if _, err := DistReduce(ctx, []int{1, 0}, 10, 2, 2); err == nil {
		t.Error("invalid worker count should error")
	}
}
