package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func buildSampleLog(t *testing.T) *Log {
	t.Helper()
	l := NewLog()
	events := []Event{
		{Job: "sort", Phase: PhaseInit, Task: -1, Start: 0, End: 1},
		{Job: "sort", Phase: PhaseMap, Task: 0, Start: 1, End: 5},
		{Job: "sort", Phase: PhaseMap, Task: 1, Start: 1, End: 7},
		{Job: "sort", Phase: PhaseMap, Task: 2, Start: 1, End: 4},
		{Job: "sort", Phase: PhaseShuffle, Task: -1, Start: 7, End: 9},
		{Job: "sort", Phase: PhaseMerge, Task: -1, Start: 9, End: 15},
		{Job: "sort", Stage: 1, Phase: PhaseCompute, Task: 0, Start: 15, End: 18},
	}
	for _, e := range events {
		if err := l.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func TestAddRejectsReversedInterval(t *testing.T) {
	l := NewLog()
	if err := l.Add(Event{Start: 5, End: 3}); err == nil {
		t.Error("reversed interval should error")
	}
	if l.Len() != 0 {
		t.Error("rejected event must not be stored")
	}
}

func TestPhaseSpan(t *testing.T) {
	l := buildSampleLog(t)
	start, end, ok := l.PhaseSpan(PhaseMap)
	if !ok || start != 1 || end != 7 {
		t.Errorf("map span = (%g, %g, %v), want (1, 7, true)", start, end, ok)
	}
	if _, _, ok := l.PhaseSpan(PhaseBroadcast); ok {
		t.Error("missing phase should report !ok")
	}
}

func TestPhaseTotal(t *testing.T) {
	l := buildSampleLog(t)
	// Map work: 4 + 6 + 3 = 13 (total, not wall clock).
	if got := l.PhaseTotal(PhaseMap); got != 13 {
		t.Errorf("PhaseTotal(map) = %g, want 13", got)
	}
	if got := l.PhaseTotal(PhaseSpill); got != 0 {
		t.Errorf("PhaseTotal(spill) = %g, want 0", got)
	}
}

func TestTaskDurationsOrderedByTask(t *testing.T) {
	l := buildSampleLog(t)
	got := l.TaskDurations(PhaseMap)
	want := []float64{4, 6, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TaskDurations = %v, want %v", got, want)
	}
}

func TestMaxTaskDuration(t *testing.T) {
	l := buildSampleLog(t)
	mx, ok := l.MaxTaskDuration(PhaseMap)
	if !ok || mx != 6 {
		t.Errorf("MaxTaskDuration = (%g, %v), want (6, true)", mx, ok)
	}
	if _, ok := l.MaxTaskDuration(PhaseMerge); ok {
		t.Error("phase-level-only events should report !ok")
	}
}

func TestStagesAndStageSpan(t *testing.T) {
	l := buildSampleLog(t)
	if got := l.Stages(); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("Stages = %v, want [0 1]", got)
	}
	start, end, ok := l.StageSpan(1)
	if !ok || start != 15 || end != 18 {
		t.Errorf("StageSpan(1) = (%g, %g, %v), want (15, 18, true)", start, end, ok)
	}
	if _, _, ok := l.StageSpan(7); ok {
		t.Error("missing stage should report !ok")
	}
}

func TestMakeSpan(t *testing.T) {
	l := buildSampleLog(t)
	start, end, ok := l.MakeSpan()
	if !ok || start != 0 || end != 18 {
		t.Errorf("MakeSpan = (%g, %g, %v), want (0, 18, true)", start, end, ok)
	}
	if _, _, ok := NewLog().MakeSpan(); ok {
		t.Error("empty log should report !ok")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	l := buildSampleLog(t)
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != l.Len() {
		t.Errorf("JSONL lines = %d, want %d", lines, l.Len())
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Events(), l.Events()) {
		t.Error("round-tripped events differ")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Error("garbage input should error")
	}
	if _, err := ReadJSON(strings.NewReader(`{"start": 5, "end": 1}`)); err == nil {
		t.Error("reversed interval in file should error")
	}
}

func TestReadJSONMalformedInputs(t *testing.T) {
	valid := `{"job":"sort","stage":0,"phase":"map","task":0,"start":1,"end":5}`
	cases := []struct {
		name  string
		input string
		ok    bool
	}{
		{"empty input", "", true},
		{"single valid line", valid + "\n", true},
		{"truncated line", valid + "\n" + `{"job":"sort","phase":"map","task":1,"sta`, false},
		{"wrong field type", `{"job":"sort","phase":"map","task":0,"start":"abc","end":5}`, false},
		{"non-object event", `[1,2,3]`, false},
		{"bare scalar event", `"map"`, false},
		{"out-of-order timestamps", valid + "\n" + `{"job":"sort","phase":"map","task":1,"start":9,"end":2}`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l, err := ReadJSON(strings.NewReader(tc.input))
			if tc.ok {
				if err != nil {
					t.Fatalf("ReadJSON(%q): %v", tc.input, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("ReadJSON(%q) accepted malformed input (%d events)", tc.input, l.Len())
			}
		})
	}
}

// A malformed tail must not hand the caller a partially filled log: the
// error comes with a nil *Log, so there is no temptation to analyze a
// trace whose later phases silently vanished.
func TestReadJSONNoPartialLog(t *testing.T) {
	input := `{"job":"sort","phase":"map","task":0,"start":1,"end":5}` + "\n" + `{broken`
	l, err := ReadJSON(strings.NewReader(input))
	if err == nil {
		t.Fatal("malformed tail should error")
	}
	if l != nil {
		t.Fatalf("got partial log with %d events, want nil", l.Len())
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	l := buildSampleLog(t)
	evs := l.Events()
	evs[0].Job = "mutated"
	if l.Events()[0].Job == "mutated" {
		t.Error("Events must return a copy, not internal state")
	}
}

// Property: JSON round-trip preserves arbitrary well-formed event lists.
func TestJSONRoundTripProperty(t *testing.T) {
	f := func(starts []uint16, widths []uint16) bool {
		l := NewLog()
		n := len(starts)
		if len(widths) < n {
			n = len(widths)
		}
		for i := 0; i < n; i++ {
			s := float64(starts[i]) / 7
			e := Event{Job: "p", Stage: i % 3, Phase: PhaseMap, Task: i, Start: s, End: s + float64(widths[i])/13}
			if err := l.Add(e); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := l.WriteJSON(&buf); err != nil {
			return false
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(back.Events(), l.Events())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
