// Package trace records and analyzes execution event logs.
//
// Section V of the paper derives every scaling factor from log files: "We
// then extract the execution latencies for all stages from the
// application's Log file ... by tracing the timestamps for each stage in
// the Spark Log files, which are available in the JSON format." This
// package is that methodology: simulated engines append timestamped phase
// and task events; the experiment harness extracts phase durations, task
// maxima, and per-stage latencies from the log rather than peeking at
// engine internals.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Phase identifies an execution phase. The MapReduce phases follow the
// paper's four-part job breakdown — (a) init+scheduling, (b) map,
// (c) map→reduce communication, (d) reduce (shuffle/merge/reduce) — and
// the Spark engine adds broadcast and generic stage-compute phases.
type Phase string

// Phases emitted by the simulated engines.
const (
	PhaseInit      Phase = "init"      // execution environment initialization
	PhaseSchedule  Phase = "schedule"  // centralized task dispatch
	PhaseMap       Phase = "map"       // split-phase parallel task work
	PhaseShuffle   Phase = "shuffle"   // reducer pulling map outputs
	PhaseMerge     Phase = "merge"     // serial intermediate merging
	PhaseReduce    Phase = "reduce"    // final serial reduce
	PhaseSpill     Phase = "spill"     // disk I/O from memory overflow
	PhaseBroadcast Phase = "broadcast" // master → workers data broadcast
	PhaseCompute   Phase = "compute"   // Spark stage task compute
	PhaseDeser     Phase = "deser"     // task scheduling+deserialization overhead
)

// Event is one timestamped interval in a job execution.
type Event struct {
	Job   string  `json:"job"`
	Stage int     `json:"stage"` // 0 for single-stage jobs
	Phase Phase   `json:"phase"`
	Task  int     `json:"task"` // -1 for phase-level events
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// Duration returns End − Start.
func (e Event) Duration() float64 { return e.End - e.Start }

// Log is an append-only event log for one job execution.
type Log struct {
	events []Event
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Add appends an event. Events with End < Start are rejected.
func (l *Log) Add(e Event) error {
	if e.End < e.Start {
		return fmt.Errorf("trace: event ends before it starts: %+v", e)
	}
	l.events = append(l.events, e)
	return nil
}

// Events returns a copy of all recorded events.
func (l *Log) Events() []Event {
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Len returns the number of recorded events.
func (l *Log) Len() int { return len(l.events) }

// WriteJSON writes the log as JSON Lines (one event object per line), the
// same shape as Spark's event log files.
func (l *Log) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range l.events {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("trace: encode event: %w", err)
		}
	}
	return bw.Flush()
}

// ReadJSON parses a JSON Lines event log.
func ReadJSON(r io.Reader) (*Log, error) {
	l := NewLog()
	dec := json.NewDecoder(r)
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: decode event: %w", err)
		}
		if err := l.Add(e); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// filter returns events matching phase across all stages (stage < 0) or
// one stage.
func (l *Log) filter(phase Phase, stage int) []Event {
	var out []Event
	for _, e := range l.events {
		if e.Phase == phase && (stage < 0 || e.Stage == stage) {
			out = append(out, e)
		}
	}
	return out
}

// PhaseSpan returns the wall-clock span [min start, max end] covered by
// events of the given phase (all stages), and ok=false if none exist.
func (l *Log) PhaseSpan(phase Phase) (start, end float64, ok bool) {
	evs := l.filter(phase, -1)
	if len(evs) == 0 {
		return 0, 0, false
	}
	start, end = evs[0].Start, evs[0].End
	for _, e := range evs[1:] {
		if e.Start < start {
			start = e.Start
		}
		if e.End > end {
			end = e.End
		}
	}
	return start, end, true
}

// PhaseTotal returns the summed duration of all events in the phase (all
// stages). For parallel tasks this is total work, not wall-clock time.
func (l *Log) PhaseTotal(phase Phase) float64 {
	total := 0.0
	for _, e := range l.filter(phase, -1) {
		total += e.Duration()
	}
	return total
}

// TaskDurations returns the durations of task-level events (Task >= 0) of
// the phase, ordered by task index.
func (l *Log) TaskDurations(phase Phase) []float64 {
	evs := l.filter(phase, -1)
	var tasks []Event
	for _, e := range evs {
		if e.Task >= 0 {
			tasks = append(tasks, e)
		}
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].Task < tasks[j].Task })
	out := make([]float64, 0, len(tasks))
	for _, e := range tasks {
		out = append(out, e.Duration())
	}
	return out
}

// MaxTaskDuration returns the slowest task duration in the phase — the
// E[max{Tp,i(n)}] measurement for one run — and ok=false if there are no
// task events.
func (l *Log) MaxTaskDuration(phase Phase) (float64, bool) {
	ds := l.TaskDurations(phase)
	if len(ds) == 0 {
		return 0, false
	}
	mx := ds[0]
	for _, d := range ds[1:] {
		if d > mx {
			mx = d
		}
	}
	return mx, true
}

// Stages returns the distinct stage indices present in the log, ascending.
func (l *Log) Stages() []int {
	seen := make(map[int]bool)
	for _, e := range l.events {
		seen[e.Stage] = true
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// StageSpan returns the wall-clock span of one stage across all phases.
func (l *Log) StageSpan(stage int) (start, end float64, ok bool) {
	first := true
	for _, e := range l.events {
		if e.Stage != stage {
			continue
		}
		if first {
			start, end, first = e.Start, e.End, false
			continue
		}
		if e.Start < start {
			start = e.Start
		}
		if e.End > end {
			end = e.End
		}
	}
	return start, end, !first
}

// MakeSpan returns the span of the whole log (all events).
func (l *Log) MakeSpan() (start, end float64, ok bool) {
	if len(l.events) == 0 {
		return 0, 0, false
	}
	start, end = l.events[0].Start, l.events[0].End
	for _, e := range l.events[1:] {
		if e.Start < start {
			start = e.Start
		}
		if e.End > end {
			end = e.End
		}
	}
	return start, end, true
}
