package trace

import (
	"math"
	"testing"
)

func buildSplitMergeLog(t *testing.T, n int) *Log {
	t.Helper()
	l := NewLog()
	// n parallel map tasks over [0, 10], then a serial merge [10, 20].
	for i := 0; i < n; i++ {
		if err := l.Add(Event{Phase: PhaseMap, Task: i, Start: 0, End: 10}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Add(Event{Phase: PhaseMerge, Task: -1, Start: 10, End: 20}); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestBreakdown(t *testing.T) {
	l := buildSplitMergeLog(t, 4)
	bd, err := l.Breakdown()
	if err != nil {
		t.Fatal(err)
	}
	if len(bd) != 2 {
		t.Fatalf("breakdown phases = %d, want 2", len(bd))
	}
	if bd[0].Phase != PhaseMap || bd[1].Phase != PhaseMerge {
		t.Errorf("phases out of order: %+v", bd)
	}
	if bd[0].Total != 40 { // 4 tasks × 10 s
		t.Errorf("map total %g, want 40", bd[0].Total)
	}
	if math.Abs(bd[0].SpanFraction-0.5) > 1e-12 || math.Abs(bd[1].SpanFraction-0.5) > 1e-12 {
		t.Errorf("span fractions %+v, want 0.5 each", bd)
	}
	if _, err := NewLog().Breakdown(); err == nil {
		t.Error("empty log should error")
	}
}

func TestParallelismSplitMerge(t *testing.T) {
	l := buildSplitMergeLog(t, 8)
	p, err := l.Parallelism()
	if err != nil {
		t.Fatal(err)
	}
	if p.Peak != 8 {
		t.Errorf("peak parallelism %d, want 8", p.Peak)
	}
	// Tasks cover [0, 10] at level 8; the merge is phase-level (Task<0)
	// so the task window is [0, 10] with mean 8.
	if math.Abs(p.Mean-8) > 1e-12 {
		t.Errorf("mean parallelism %g, want 8", p.Mean)
	}
	if p.SerialSeconds != 0 {
		t.Errorf("serial seconds %g, want 0 within the task window", p.SerialSeconds)
	}
}

func TestParallelismStaggeredTasks(t *testing.T) {
	l := NewLog()
	// Two tasks overlapping for half their duration:
	// [0,10] and [5,15] → levels: 1 on [0,5], 2 on [5,10], 1 on [10,15].
	if err := l.Add(Event{Phase: PhaseMap, Task: 0, Start: 0, End: 10}); err != nil {
		t.Fatal(err)
	}
	if err := l.Add(Event{Phase: PhaseMap, Task: 1, Start: 5, End: 15}); err != nil {
		t.Fatal(err)
	}
	p, err := l.Parallelism()
	if err != nil {
		t.Fatal(err)
	}
	if p.Peak != 2 {
		t.Errorf("peak %d, want 2", p.Peak)
	}
	want := (1*5.0 + 2*5.0 + 1*5.0) / 15.0
	if math.Abs(p.Mean-want) > 1e-12 {
		t.Errorf("mean %g, want %g", p.Mean, want)
	}
	if math.Abs(p.SerialSeconds-10) > 1e-12 {
		t.Errorf("serial seconds %g, want 10", p.SerialSeconds)
	}
}

func TestParallelismRequiresTasks(t *testing.T) {
	l := NewLog()
	if err := l.Add(Event{Phase: PhaseMerge, Task: -1, Start: 0, End: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Parallelism(); err == nil {
		t.Error("phase-level-only log should error")
	}
}

func TestParallelismBackToBackTasksDoNotDoubleCount(t *testing.T) {
	// Adjacent tasks on one executor ([0,5] then [5,10]) must never show
	// concurrency 2 — the close-before-open tie-break guarantees it. A
	// consequence is that zero-width (instantaneous) events register no
	// concurrency at all.
	l := NewLog()
	if err := l.Add(Event{Phase: PhaseMap, Task: 0, Start: 0, End: 5}); err != nil {
		t.Fatal(err)
	}
	if err := l.Add(Event{Phase: PhaseMap, Task: 1, Start: 5, End: 10}); err != nil {
		t.Fatal(err)
	}
	p, err := l.Parallelism()
	if err != nil {
		t.Fatal(err)
	}
	if p.Peak != 1 {
		t.Errorf("peak %d for back-to-back tasks, want 1", p.Peak)
	}
	if math.Abs(p.Mean-1) > 1e-12 {
		t.Errorf("mean %g, want 1", p.Mean)
	}
}
