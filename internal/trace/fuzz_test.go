package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzReadJSON exercises the event-log parser against arbitrary input:
// it must never panic, and anything it accepts must round-trip.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"job":"sort","stage":0,"phase":"map","task":1,"start":0,"end":2}`)
	f.Add(`{"start":5,"end":1}`)
	f.Add(`{"phase":"merge"}` + "\n" + `{"phase":"reduce","start":1,"end":3}`)
	f.Add(`not json at all`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, input string) {
		log, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := log.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted log failed to serialize: %v", err)
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("serialized log failed to parse: %v", err)
		}
		if !reflect.DeepEqual(back.Events(), log.Events()) {
			t.Fatal("round-trip changed the events")
		}
	})
}
