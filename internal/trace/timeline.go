package trace

import (
	"errors"
	"fmt"
	"sort"
)

// PhaseBreakdown is the per-phase accounting of one execution: total
// busy time, wall-clock span, and the fraction of the job's makespan the
// phase's span covers. It is the numeric form of the paper's "execution
// time can be roughly broken down into four parts" analysis.
type PhaseBreakdown struct {
	Phase        Phase
	Total        float64 // summed event durations (work)
	SpanStart    float64
	SpanEnd      float64
	SpanFraction float64 // (SpanEnd−SpanStart)/makespan
}

// Breakdown summarizes every phase present in the log, ordered by span
// start.
func (l *Log) Breakdown() ([]PhaseBreakdown, error) {
	start, end, ok := l.MakeSpan()
	if !ok {
		return nil, errors.New("trace: empty log")
	}
	makespan := end - start
	if makespan <= 0 {
		return nil, fmt.Errorf("trace: degenerate makespan %g", makespan)
	}
	seen := make(map[Phase]bool)
	var phases []Phase
	for _, e := range l.events {
		if !seen[e.Phase] {
			seen[e.Phase] = true
			phases = append(phases, e.Phase)
		}
	}
	out := make([]PhaseBreakdown, 0, len(phases))
	for _, p := range phases {
		s, e, ok := l.PhaseSpan(p)
		if !ok {
			continue
		}
		out = append(out, PhaseBreakdown{
			Phase:        p,
			Total:        l.PhaseTotal(p),
			SpanStart:    s,
			SpanEnd:      e,
			SpanFraction: (e - s) / makespan,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SpanStart != out[j].SpanStart {
			return out[i].SpanStart < out[j].SpanStart
		}
		return out[i].Phase < out[j].Phase
	})
	return out, nil
}

// ParallelismProfile returns the time-weighted distribution of concurrent
// task-level events: how many tasks overlap, and for how long. The mean
// is the job's average parallelism — the split phase of a well-formed
// n-degree run shows parallelism ≈ n, while the merge tail drops to 1,
// which is exactly the Split-Merge picture of Fig. 1.
type ParallelismProfile struct {
	// Mean is the time-averaged number of concurrently running tasks
	// over [Start, End].
	Mean float64
	// Peak is the maximum concurrency.
	Peak int
	// SerialSeconds is the duration with at most one task running.
	SerialSeconds float64
	Start, End    float64
}

// Parallelism computes the profile over the task-level events (Task >= 0)
// of the whole log.
func (l *Log) Parallelism() (ParallelismProfile, error) {
	type edge struct {
		at    float64
		delta int
	}
	var edges []edge
	for _, e := range l.events {
		if e.Task < 0 {
			continue
		}
		edges = append(edges, edge{at: e.Start, delta: 1}, edge{at: e.End, delta: -1})
	}
	if len(edges) == 0 {
		return ParallelismProfile{}, errors.New("trace: no task-level events")
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		return edges[i].delta < edges[j].delta // close before open at ties
	})
	prof := ParallelismProfile{Start: edges[0].at, End: edges[len(edges)-1].at}
	cur := 0
	weighted := 0.0
	for i, ed := range edges {
		if i > 0 {
			dt := ed.at - edges[i-1].at
			weighted += float64(cur) * dt
			if cur <= 1 {
				prof.SerialSeconds += dt
			}
		}
		cur += ed.delta
		if cur > prof.Peak {
			prof.Peak = cur
		}
	}
	span := prof.End - prof.Start
	if span > 0 {
		prof.Mean = weighted / span
	} else {
		prof.Mean = float64(prof.Peak)
	}
	return prof, nil
}
