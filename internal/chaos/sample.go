package chaos

import "math"

// Thin aliases so the distribution code reads like the formulas.
func pow(x, y float64) float64 { return math.Pow(x, y) }
func exp(x float64) float64    { return math.Exp(x) }
func ln(x float64) float64     { return math.Log(x) }

// expSample draws a unit-mean exponential via inverse CDF.
func expSample(rng *SplitMix64) float64 {
	u := rng.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1 - u)
}

// normSample draws a standard normal via Box-Muller (one value per
// call; the paired value is discarded to keep the stream stateless).
func normSample(rng *SplitMix64) float64 {
	u1 := rng.Float64()
	u2 := rng.Float64()
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
