package chaos

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ErrInjectedDrop is returned by a wrapped connection the injector
// decided to kill; the underlying connection is closed with it.
var ErrInjectedDrop = errors.New("chaos: injected connection drop")

// ErrPartitioned is returned while the injector-wide partition window
// is open; the connection itself stays alive and recovers when the
// window closes.
var ErrPartitioned = errors.New("chaos: injected network partition")

// WrapConn decorates c with the injector's wire-level faults. stream
// names the decision stream; wrapping two connections under the same
// stream and seed yields the same per-operation fault sequence for
// each, so a test can pin the exact schedule a connection will see.
// A nil injector returns c unchanged.
func (in *Injector) WrapConn(stream string, c net.Conn) net.Conn {
	if in == nil {
		return c
	}
	in.mu.Lock()
	n := in.conns
	in.conns++
	in.mu.Unlock()
	if stream == "" {
		// Unkeyed wrap: fall back to the wrap ordinal, deterministic as
		// long as connections are wrapped in a stable order.
		return &faultConn{Conn: c, in: in, rng: in.stream("conn", n)}
	}
	return &faultConn{Conn: c, in: in, rng: in.stream("conn/" + stream)}
}

// faultConn is the net.Conn decorator. The embedded Conn keeps
// addresses and deadlines transparent; only Read and Write inject.
type faultConn struct {
	net.Conn
	in  *Injector
	rng *SplitMix64

	mu      sync.Mutex // serializes rng draws and op accounting
	ops     int
	dropped bool
}

// before draws the shared pre-op faults (grace, partition, latency,
// and for writes drop/corrupt/partition triggers); it reports whether
// the op may proceed and whether a write payload should be corrupted.
func (f *faultConn) before(isWrite bool) (corrupt bool, err error) {
	f.mu.Lock()
	f.ops++
	op := f.ops
	if f.dropped {
		f.mu.Unlock()
		return false, ErrInjectedDrop
	}
	if op <= f.in.cfg.GraceOps {
		f.mu.Unlock()
		return false, nil
	}
	delay := f.in.cfg.Latency.sample(f.rng)
	var drop, partition bool
	if isWrite {
		cfg := f.in.cfg
		if cfg.DropRate > 0 && f.rng.Float64() < cfg.DropRate {
			drop = true
			f.dropped = true
		}
		if cfg.CorruptRate > 0 && f.rng.Float64() < cfg.CorruptRate {
			corrupt = true
		}
		if cfg.PartitionRate > 0 && f.rng.Float64() < cfg.PartitionRate {
			partition = true
		}
	}
	f.mu.Unlock()

	if delay > 0 {
		f.in.record("latency")
		time.Sleep(delay)
	}
	if partition {
		f.in.record("partition")
		f.in.startPartition(time.Now())
	}
	if f.in.partitioned(time.Now()) {
		return false, ErrPartitioned
	}
	if drop {
		f.in.record("drop")
		f.Conn.Close()
		return false, ErrInjectedDrop
	}
	return corrupt, nil
}

// alive reports the injected-drop state: deadline setters on a conn the
// injector already killed surface ErrInjectedDrop (the cause) instead of
// the underlying "use of closed network connection".
func (f *faultConn) alive() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dropped {
		return ErrInjectedDrop
	}
	return nil
}

func (f *faultConn) SetDeadline(t time.Time) error {
	if err := f.alive(); err != nil {
		return err
	}
	return f.Conn.SetDeadline(t)
}

func (f *faultConn) SetReadDeadline(t time.Time) error {
	if err := f.alive(); err != nil {
		return err
	}
	return f.Conn.SetReadDeadline(t)
}

func (f *faultConn) SetWriteDeadline(t time.Time) error {
	if err := f.alive(); err != nil {
		return err
	}
	return f.Conn.SetWriteDeadline(t)
}

func (f *faultConn) Read(b []byte) (int, error) {
	if _, err := f.before(false); err != nil {
		return 0, err
	}
	return f.Conn.Read(b)
}

func (f *faultConn) Write(b []byte) (int, error) {
	corrupt, err := f.before(true)
	if err != nil {
		return 0, err
	}
	if corrupt && len(b) > 0 {
		b = corruptPayload(b, f.rngDraw())
		f.in.record("corrupt")
	}
	return f.Conn.Write(b)
}

// rngDraw takes one value from the stream under the lock.
func (f *faultConn) rngDraw() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Uint64()
}

// corruptPayload flips one bit of a non-newline byte in a copy of b, so
// line framing survives but the payload no longer decodes.
func corruptPayload(b []byte, r uint64) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	for probe := 0; probe < len(out); probe++ {
		i := int((r + uint64(probe)) % uint64(len(out)))
		if out[i] == '\n' || out[i] == '\r' {
			continue
		}
		out[i] ^= 1 << (r % 7) // never bit 7: keeps ASCII printable-ish
		if out[i] == '\n' {
			out[i] ^= 1 << (r % 7) // undo: landed on the frame delimiter
			continue
		}
		return out
	}
	return out
}
