package chaos

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"testing"
	"time"

	"ipso/internal/obs"
)

// pipePair returns both ends of an in-memory connection.
func pipePair() (net.Conn, net.Conn) { return net.Pipe() }

func testInjector(cfg Config) *Injector {
	cfg.Metrics = obs.NewRegistry()
	return New(cfg)
}

func TestWrapConnNilPassthrough(t *testing.T) {
	var in *Injector
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	if in.WrapConn("x", a) != a {
		t.Error("nil injector should return the conn unchanged")
	}
}

func TestInjectedLatency(t *testing.T) {
	in := testInjector(Config{Seed: 1, Latency: Dist{Kind: DistFixed, Base: 30 * time.Millisecond}})
	a, b := pipePair()
	defer b.Close()
	wrapped := in.WrapConn("lat", a)
	defer wrapped.Close()

	go func() {
		buf := make([]byte, 8)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	if _, err := wrapped.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("write returned after %v, want >= ~30ms injected latency", elapsed)
	}
}

func TestInjectedDropKillsConn(t *testing.T) {
	in := testInjector(Config{Seed: 2, DropRate: 1})
	a, b := pipePair()
	defer b.Close()
	wrapped := in.WrapConn("drop", a)

	if _, err := wrapped.Write([]byte("x")); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("write error %v, want ErrInjectedDrop", err)
	}
	// The underlying conn is closed: subsequent ops fail too.
	if _, err := wrapped.Write([]byte("y")); err == nil {
		t.Error("write on dropped conn should keep failing")
	}
	if _, err := wrapped.Read(make([]byte, 1)); err == nil {
		t.Error("read on dropped conn should fail")
	}
}

func TestGraceOpsExemptHandshake(t *testing.T) {
	in := testInjector(Config{Seed: 3, DropRate: 1, GraceOps: 1})
	a, b := pipePair()
	defer b.Close()
	wrapped := in.WrapConn("grace", a)

	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 16)
		if _, err := b.Read(buf); err != nil {
			t.Errorf("peer read: %v", err)
		}
	}()
	if _, err := wrapped.Write([]byte("hello\n")); err != nil {
		t.Fatalf("first (grace) write should pass: %v", err)
	}
	<-done
	if _, err := wrapped.Write([]byte("x")); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("second write error %v, want ErrInjectedDrop", err)
	}
}

func TestCorruptionBreaksJSONButKeepsFraming(t *testing.T) {
	in := testInjector(Config{Seed: 4, CorruptRate: 1})
	a, b := pipePair()
	defer b.Close()
	wrapped := in.WrapConn("corrupt", a)
	defer wrapped.Close()

	type frame struct{ Greeting string }
	payload, err := json.Marshal(frame{Greeting: "hello world, this is a frame"})
	if err != nil {
		t.Fatal(err)
	}
	payload = append(payload, '\n')

	lines := make(chan []byte, 1)
	go func() {
		r := bufio.NewReader(b)
		line, err := r.ReadBytes('\n')
		if err != nil {
			t.Errorf("peer read: %v", err)
		}
		lines <- line
	}()
	if _, err := wrapped.Write(payload); err != nil {
		t.Fatal(err)
	}
	line := <-lines
	if string(line) == string(payload) {
		t.Fatal("payload arrived uncorrupted")
	}
	if line[len(line)-1] != '\n' {
		t.Fatal("frame delimiter lost")
	}
	var decoded frame
	if err := json.Unmarshal(line, &decoded); err == nil && decoded == (frame{Greeting: "hello world, this is a frame"}) {
		t.Error("corruption did not change the decoded frame")
	}
}

func TestPartitionWindowAffectsAllConns(t *testing.T) {
	in := testInjector(Config{Seed: 5, PartitionRate: 1, PartitionDuration: 100 * time.Millisecond})
	a1, b1 := pipePair()
	a2, b2 := pipePair()
	defer b1.Close()
	defer b2.Close()
	w1 := in.WrapConn("p1", a1)
	w2 := in.WrapConn("p2", a2)
	defer w1.Close()
	defer w2.Close()

	// First write on w1 opens the partition window and fails.
	if _, err := w1.Write([]byte("x")); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("w1 write error %v, want ErrPartitioned", err)
	}
	// The sibling connection is partitioned too (correlated failure) —
	// reads never trigger partitions themselves, so probe with a read.
	if _, err := w2.Read(make([]byte, 1)); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("w2 read error %v, want ErrPartitioned", err)
	}
}

func TestWrapConnSameStreamSameSchedule(t *testing.T) {
	// Two injectors with the same seed wrapping a conn under the same
	// stream name must make identical decisions — the property that
	// makes a chaos run reproducible.
	mk := func() (net.Conn, func()) {
		a, b := pipePair()
		go func() {
			buf := make([]byte, 64)
			for {
				if _, err := b.Read(buf); err != nil {
					return
				}
			}
		}()
		return a, func() { a.Close(); b.Close() }
	}
	run := func() []bool {
		in := testInjector(Config{Seed: 6, DropRate: 0.3})
		var outcomes []bool
		for c := 0; c < 8; c++ {
			raw, cleanup := mk()
			w := in.WrapConn("", raw) // unkeyed: wrap-ordinal stream
			ok := true
			for op := 0; op < 4; op++ {
				if _, err := w.Write([]byte("op\n")); err != nil {
					ok = false
					break
				}
			}
			outcomes = append(outcomes, ok)
			cleanup()
		}
		return outcomes
	}
	first, second := run(), run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("conn %d outcome differs between identically seeded runs", i)
		}
	}
}
