package chaos

import (
	"math"
	"testing"
	"time"

	"ipso/internal/obs"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a, b := NewSplitMix64(42), NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
	c := NewSplitMix64(43)
	same := 0
	a = NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("seeds 42 and 43 collided on %d of 1000 draws", same)
	}
}

func TestFloat64InUnitInterval(t *testing.T) {
	rng := NewSplitMix64(7)
	for i := 0; i < 10000; i++ {
		if v := rng.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestDeriveMatchesRunnerTaskSeed(t *testing.T) {
	// Derive with a single part must reproduce the runner's historical
	// TaskSeed formula exactly: the byte-identical parallel evaluation
	// depends on these values never changing.
	legacy := func(root int64, task int) int64 {
		z := uint64(root) + (uint64(task)+1)*0x9E3779B97F4A7C15
		z ^= z >> 30
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
		z *= 0x94D049BB133111EB
		z ^= z >> 31
		return int64(z)
	}
	for _, root := range []int64{0, 7, -3, 1 << 40} {
		for task := 0; task < 64; task++ {
			if got := int64(Derive(uint64(root), uint64(task))); got != legacy(root, task) {
				t.Fatalf("Derive(%d, %d) = %d, want %d", root, task, got, legacy(root, task))
			}
		}
	}
}

func TestDeriveIndependentStreams(t *testing.T) {
	if Derive(1, 2, 3) == Derive(1, 3, 2) {
		t.Error("part order should matter")
	}
	if Derive(1, 2) == Derive(2, 2) {
		t.Error("seed should matter")
	}
}

func TestParseDistRoundTrip(t *testing.T) {
	for _, src := range []string{
		"none", "fixed:5ms", "exp:5ms", "exp:5ms,100ms",
		"pareto:2ms,1.1,500ms", "lognormal:5ms,1.2,1s",
	} {
		d, err := ParseDist(src)
		if err != nil {
			t.Fatalf("ParseDist(%q): %v", src, err)
		}
		back, err := ParseDist(d.String())
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", d.String(), src, err)
		}
		if back != d {
			t.Errorf("round trip %q -> %v -> %v", src, d, back)
		}
	}
	if d, err := ParseDist(""); err != nil || d.Kind != DistNone {
		t.Errorf("empty spec should be the zero distribution, got %v, %v", d, err)
	}
	for _, bad := range []string{"gamma:5ms", "fixed:", "pareto:2ms", "pareto:2ms,0,5ms", "pareto:10ms,1.5,5ms", "fixed:-5ms"} {
		if _, err := ParseDist(bad); err == nil {
			t.Errorf("ParseDist(%q) should error", bad)
		}
	}
}

func TestDistSampleBoundsAndDeterminism(t *testing.T) {
	pareto := Dist{Kind: DistPareto, Base: 2 * time.Millisecond, Alpha: 1.1, Max: 500 * time.Millisecond}
	a, b := NewSplitMix64(9), NewSplitMix64(9)
	for i := 0; i < 5000; i++ {
		va, vb := pareto.SampleSeconds(a), pareto.SampleSeconds(b)
		if va != vb {
			t.Fatal("pareto sampling not deterministic per seed")
		}
		if va < 0.002-1e-12 || va > 0.5+1e-12 {
			t.Fatalf("pareto sample %v outside [scale, cap]", va)
		}
	}
	exp := Dist{Kind: DistExponential, Base: 5 * time.Millisecond, Max: 20 * time.Millisecond}
	rng := NewSplitMix64(1)
	for i := 0; i < 5000; i++ {
		if v := exp.SampleSeconds(rng); v < 0 || v > 0.02+1e-12 {
			t.Fatalf("exp sample %v outside [0, cap]", v)
		}
	}
	if v := (Dist{}).SampleSeconds(rng); v != 0 {
		t.Errorf("zero dist sampled %v", v)
	}
	if v := (Dist{Kind: DistFixed, Base: time.Second}).SampleSeconds(rng); v != 1 {
		t.Errorf("fixed dist sampled %v, want 1", v)
	}
}

func TestDistMean(t *testing.T) {
	if m := (Dist{Kind: DistFixed, Base: 3 * time.Second}).Mean(); m != 3 {
		t.Errorf("fixed mean %v", m)
	}
	// Empirical vs analytic mean for the truncated Pareto.
	d := Dist{Kind: DistPareto, Base: 100 * time.Millisecond, Alpha: 1.5, Max: 10 * time.Second}
	rng := NewSplitMix64(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += d.SampleSeconds(rng)
	}
	if got, want := sum/n, d.Mean(); math.Abs(got-want)/want > 0.05 {
		t.Errorf("pareto empirical mean %v vs analytic %v", got, want)
	}
}

func TestTaskFaultDeterministicAndNilSafe(t *testing.T) {
	var nilInj *Injector
	if nilInj.Enabled() {
		t.Error("nil injector should be disabled")
	}
	if f := nilInj.TaskFault("w", 1, 1); f != (TaskFault{}) {
		t.Errorf("nil injector fault %+v", f)
	}
	cfg := Config{
		Seed:        5,
		TaskLatency: Dist{Kind: DistExponential, Base: 10 * time.Millisecond},
		CrashRate:   0.5,
		Metrics:     obs.NewRegistry(),
	}
	a, b := New(cfg), New(cfg)
	crashes := 0
	for task := 0; task < 200; task++ {
		fa := a.TaskFault("worker-1", task, 0)
		fb := b.TaskFault("worker-1", task, 0)
		if fa != fb {
			t.Fatalf("task %d: faults differ: %+v vs %+v", task, fa, fb)
		}
		if fa.Crash {
			crashes++
		}
		if f2 := a.TaskFault("worker-2", task, 0); f2 == fa && fa.Delay > 0 {
			t.Errorf("task %d: distinct streams produced identical nonzero faults", task)
		}
	}
	if crashes < 50 || crashes > 150 {
		t.Errorf("crash rate 0.5 produced %d/200 crashes", crashes)
	}
}
