// Package chaos is the seeded, deterministic fault-injection layer of
// the harness. IPSO's statistic speedup (Eq. 7/8) is governed by the
// max-order statistic E[max Tp,i(n)]: one straggling or failed shard
// inflates a whole job, which is exactly what the paper diagnoses on
// EC2/EMR traces. This package makes those tail effects reproducible on
// demand: an Injector derives every fault decision — injected latency,
// connection drops, payload corruption, partitions, worker crashes —
// from a SplitMix64 stream keyed by a root seed and stable identifiers,
// so the same seed yields the same fault schedule on every run.
//
// Two injection surfaces are exposed: WrapConn decorates a net.Conn
// with wire-level faults (latency before each op, drops and corruption
// on writes, injector-wide partition windows), and TaskFault yields the
// execution-level faults of one task attempt (added latency, crash).
// Both are nil-receiver safe so production code can call through an
// unconfigured *Injector at zero cost.
package chaos

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"ipso/internal/obs"
)

// golden is the SplitMix64 increment (2^64 / phi).
const golden = 0x9E3779B97F4A7C15

// Mix is the SplitMix64 finalizer: a bijective avalanche over 64 bits.
// It is the primitive behind every derived seed in the harness (the
// runner's per-task seeds use it too), so one well-tested mixer defines
// all deterministic stream splitting.
func Mix(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// Derive folds labeled parts into seed, yielding an independent stream
// seed for the (seed, parts...) identity. With a single part it is
// exactly the runner's TaskSeed derivation, so task-level and
// fault-level streams share one construction.
func Derive(seed uint64, parts ...uint64) uint64 {
	z := seed
	for _, p := range parts {
		z = Mix(z + (p+1)*golden)
	}
	return z
}

// hashString folds a string key (a stream name, a worker ID) into a
// uint64 for Derive. FNV-1a: stable across runs and platforms.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// SplitMix64 is the tiny, fast, seedable PRNG every fault decision is
// drawn from. It is not safe for concurrent use; derive one stream per
// goroutine with Derive instead of sharing.
type SplitMix64 struct{ state uint64 }

// NewSplitMix64 returns a generator starting from seed.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Uint64 returns the next value of the stream.
func (s *SplitMix64) Uint64() uint64 {
	s.state += golden
	return Mix(s.state)
}

// Float64 returns the next value in [0, 1).
func (s *SplitMix64) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Config tunes an Injector. Zero rates and a zero-kind latency
// distribution inject nothing, so the zero value is a no-op injector.
type Config struct {
	// Seed roots every decision stream; two injectors with the same
	// seed and the same keyed call sequence make identical decisions.
	Seed int64

	// Latency is sampled and slept before each wrapped connection
	// operation (reads and writes).
	Latency Dist
	// DropRate is the probability a wrapped connection is killed at a
	// write: the write fails, the connection closes, and every later op
	// errors — a worker process dying mid-RPC.
	DropRate float64
	// CorruptRate is the probability one payload byte of a write is
	// flipped (never a newline, so line framing survives and the peer
	// sees a decode error instead of a stall).
	CorruptRate float64
	// PartitionRate is the probability a write starts a partition
	// window of PartitionDuration during which every op on every
	// connection wrapped by this injector fails — a correlated network
	// partition rather than a single bad socket.
	PartitionRate     float64
	PartitionDuration time.Duration

	// TaskLatency is the extra execution time TaskFault assigns to a
	// task attempt — the knob that manufactures stragglers.
	TaskLatency Dist
	// CrashRate is the probability TaskFault tells the executor to
	// crash instead of completing the attempt.
	CrashRate float64

	// GraceOps exempts the first GraceOps operations of each wrapped
	// connection from faults, letting handshakes complete so chaos
	// exercises steady-state paths rather than connection setup.
	GraceOps int

	// Metrics receives the chaos_injected_total counters; nil means the
	// process-wide obs.Default().
	Metrics *obs.Registry
}

// Injector makes deterministic fault decisions from a Config. The nil
// *Injector is valid and injects nothing.
type Injector struct {
	cfg      Config
	injected *obs.CounterVec

	mu               sync.Mutex
	conns            uint64    // streams handed out, for unkeyed WrapConn calls
	partitionedUntil time.Time // injector-wide partition window end
}

// New builds an injector from cfg.
func New(cfg Config) *Injector {
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	return &Injector{
		cfg: cfg,
		injected: reg.CounterVec("chaos_injected_total",
			"Faults injected by kind (latency, drop, corrupt, partition, task_delay, crash).", "kind"),
	}
}

// Enabled reports whether the injector exists and can inject anything.
func (in *Injector) Enabled() bool { return in != nil }

// Seed returns the root seed (0 for a nil injector).
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.cfg.Seed
}

// stream derives the decision stream for a named surface.
func (in *Injector) stream(name string, parts ...uint64) *SplitMix64 {
	key := Derive(uint64(in.cfg.Seed), append([]uint64{hashString(name)}, parts...)...)
	return NewSplitMix64(key)
}

// record bumps the injected-fault counter for kind.
func (in *Injector) record(kind string) { in.injected.With(kind).Inc() }

// partitioned reports whether an injector-wide partition window is
// currently open.
func (in *Injector) partitioned(now time.Time) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return now.Before(in.partitionedUntil)
}

// startPartition opens (or extends) the partition window.
func (in *Injector) startPartition(now time.Time) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if until := now.Add(in.cfg.PartitionDuration); until.After(in.partitionedUntil) {
		in.partitionedUntil = until
	}
}

// TaskFault is the execution-level fault of one task attempt.
type TaskFault struct {
	// Delay is extra execution latency to add before the work.
	Delay time.Duration
	// Crash tells the executor to die instead of completing.
	Crash bool
}

// TaskFault returns the deterministic fault for attempt `attempt` of
// task `task` on the named stream (typically a worker identity). The
// same (seed, stream, task, attempt) always yields the same fault.
func (in *Injector) TaskFault(stream string, task, attempt int) TaskFault {
	if in == nil {
		return TaskFault{}
	}
	rng := in.stream("task/"+stream, uint64(task), uint64(attempt))
	var f TaskFault
	if d := in.cfg.TaskLatency.sample(rng); d > 0 {
		f.Delay = d
		in.record("task_delay")
	}
	if in.cfg.CrashRate > 0 && rng.Float64() < in.cfg.CrashRate {
		f.Crash = true
		in.record("crash")
	}
	return f
}

// Dist is a latency distribution. The zero value samples zero.
type Dist struct {
	Kind DistKind
	// Base is the fixed value, exponential mean, Pareto scale (minimum),
	// or log-normal median, depending on Kind.
	Base time.Duration
	// Max caps every sample (0 means uncapped; required for pareto).
	Max time.Duration
	// Alpha is the Pareto tail index or the log-normal sigma.
	Alpha float64
}

// DistKind names the supported latency shapes.
type DistKind int

const (
	DistNone DistKind = iota
	DistFixed
	DistExponential
	DistPareto
	DistLogNormal
)

func (k DistKind) String() string {
	switch k {
	case DistNone:
		return "none"
	case DistFixed:
		return "fixed"
	case DistExponential:
		return "exp"
	case DistPareto:
		return "pareto"
	case DistLogNormal:
		return "lognormal"
	}
	return "unknown"
}

// String renders the distribution in the ParseDist syntax.
func (d Dist) String() string {
	switch d.Kind {
	case DistNone:
		return "none"
	case DistFixed:
		return fmt.Sprintf("fixed:%v", d.Base)
	case DistExponential:
		if d.Max > 0 {
			return fmt.Sprintf("exp:%v,%v", d.Base, d.Max)
		}
		return fmt.Sprintf("exp:%v", d.Base)
	case DistPareto:
		return fmt.Sprintf("pareto:%v,%g,%v", d.Base, d.Alpha, d.Max)
	case DistLogNormal:
		return fmt.Sprintf("lognormal:%v,%g,%v", d.Base, d.Alpha, d.Max)
	}
	return "unknown"
}

// ParseDist parses the CLI syntax for latency distributions:
//
//	none | "" — no injected latency
//	fixed:5ms — constant
//	exp:5ms[,100ms] — exponential with mean 5ms, optional cap
//	pareto:2ms,1.1,500ms — Pareto with scale 2ms, tail index 1.1, cap
//	lognormal:5ms,1.2,1s — log-normal with median 5ms, sigma 1.2, cap
func ParseDist(s string) (Dist, error) {
	if s == "" || s == "none" {
		return Dist{}, nil
	}
	kind, rest, _ := strings.Cut(s, ":")
	parts := strings.Split(rest, ",")
	dur := func(i int) (time.Duration, error) {
		if i >= len(parts) {
			return 0, fmt.Errorf("chaos: distribution %q: missing argument %d", s, i+1)
		}
		return time.ParseDuration(strings.TrimSpace(parts[i]))
	}
	num := func(i int) (float64, error) {
		if i >= len(parts) {
			return 0, fmt.Errorf("chaos: distribution %q: missing argument %d", s, i+1)
		}
		var v float64
		if _, err := fmt.Sscanf(strings.TrimSpace(parts[i]), "%g", &v); err != nil {
			return 0, fmt.Errorf("chaos: distribution %q: bad number %q", s, parts[i])
		}
		return v, nil
	}
	var d Dist
	var err error
	switch kind {
	case "fixed":
		d.Kind = DistFixed
		if d.Base, err = dur(0); err != nil {
			return Dist{}, err
		}
	case "exp":
		d.Kind = DistExponential
		if d.Base, err = dur(0); err != nil {
			return Dist{}, err
		}
		if len(parts) > 1 {
			if d.Max, err = dur(1); err != nil {
				return Dist{}, err
			}
		}
	case "pareto", "lognormal":
		if kind == "pareto" {
			d.Kind = DistPareto
		} else {
			d.Kind = DistLogNormal
		}
		if d.Base, err = dur(0); err != nil {
			return Dist{}, err
		}
		if d.Alpha, err = num(1); err != nil {
			return Dist{}, err
		}
		if d.Max, err = dur(2); err != nil {
			return Dist{}, err
		}
	default:
		return Dist{}, fmt.Errorf("chaos: unknown distribution kind %q (want none, fixed, exp, pareto, lognormal)", kind)
	}
	if d.Base < 0 || d.Max < 0 {
		return Dist{}, fmt.Errorf("chaos: distribution %q: negative duration", s)
	}
	if (d.Kind == DistPareto || d.Kind == DistLogNormal) && d.Alpha <= 0 {
		return Dist{}, fmt.Errorf("chaos: distribution %q: shape must be positive", s)
	}
	if d.Kind == DistPareto && d.Max < d.Base {
		return Dist{}, fmt.Errorf("chaos: distribution %q: cap below scale", s)
	}
	return d, nil
}

// SampleSeconds draws one value in seconds — the model-time form the
// straggler experiment computes E[max Tp,i(n)] from.
func (d Dist) SampleSeconds(rng *SplitMix64) float64 {
	return d.sampleSeconds(rng)
}

// Sample draws one value as a duration (wire/task injection form).
func (d Dist) Sample(rng *SplitMix64) time.Duration { return d.sample(rng) }

func (d Dist) sample(rng *SplitMix64) time.Duration {
	if d.Kind == DistNone {
		return 0
	}
	return time.Duration(d.sampleSeconds(rng) * float64(time.Second))
}

func (d Dist) sampleSeconds(rng *SplitMix64) float64 {
	base := d.Base.Seconds()
	cap := d.Max.Seconds()
	var v float64
	switch d.Kind {
	case DistNone:
		return 0
	case DistFixed:
		return base
	case DistExponential:
		v = base * expSample(rng)
	case DistPareto:
		// Inverse-CDF of the Pareto tail x^-alpha, truncated at Max so a
		// single draw cannot exceed the cap (mirrors internal/stats).
		u := rng.Float64()
		if cap > base {
			// Truncation: map u into the CDF mass below the cap.
			fMax := 1 - pow(base/cap, d.Alpha)
			u *= fMax
		}
		v = base / pow(1-u, 1/d.Alpha)
	case DistLogNormal:
		// Base is the median exp(mu); Alpha is sigma.
		v = base * exp(d.Alpha*normSample(rng))
	}
	if v < 0 {
		v = 0
	}
	if cap > 0 && v > cap {
		v = cap
	}
	return v
}

// Mean returns the distribution's analytic mean in seconds (ignoring
// truncation for exp and lognormal, exact for fixed and truncated
// pareto) — used by the straggler model's ideal-speedup baseline.
func (d Dist) Mean() float64 {
	base := d.Base.Seconds()
	cap := d.Max.Seconds()
	switch d.Kind {
	case DistNone:
		return 0
	case DistFixed:
		return base
	case DistExponential:
		return base
	case DistPareto:
		a := d.Alpha
		if cap <= base {
			return base
		}
		r := base / cap
		if a == 1 {
			return base * ln(1/r) / (1 - r)
		}
		return base * a / (a - 1) * (1 - pow(r, a-1)) / (1 - pow(r, a))
	case DistLogNormal:
		return base * exp(d.Alpha*d.Alpha/2)
	}
	return 0
}
