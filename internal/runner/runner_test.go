package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		ctx := WithWorkers(context.Background(), workers)
		got, err := Map(ctx, 100, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyAndNegative(t *testing.T) {
	if got, err := Map(context.Background(), 0, func(context.Context, int) (int, error) { return 0, nil }); err != nil || len(got) != 0 {
		t.Errorf("empty map: got %v, %v", got, err)
	}
	if _, err := Map(context.Background(), -1, func(context.Context, int) (int, error) { return 0, nil }); err == nil {
		t.Error("negative task count should error")
	}
}

func TestMapFirstErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int64
	ctx := WithWorkers(context.Background(), 4)
	_, err := Map(ctx, 1000, func(ctx context.Context, i int) (int, error) {
		started.Add(1)
		if i == 3 {
			return 0, boom
		}
		// Slow tasks so the cancellation has something to cut short.
		select {
		case <-ctx.Done():
		case <-time.After(2 * time.Millisecond):
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := started.Load(); n == 1000 {
		t.Error("error should have cancelled outstanding tasks, but all ran")
	}
}

func TestMapPanicBecomesError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx := WithWorkers(context.Background(), workers)
		_, err := Map(ctx, 10, func(_ context.Context, i int) (int, error) {
			if i == 5 {
				panic("kaboom")
			}
			return i, nil
		})
		if err == nil || !strings.Contains(err.Error(), "kaboom") {
			t.Fatalf("workers=%d: err = %v, want panic message", workers, err)
		}
	}
}

func TestMapContextCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(WithWorkers(context.Background(), workers))
		start := time.Now()
		go func() {
			time.Sleep(5 * time.Millisecond)
			cancel()
		}()
		_, err := Map(ctx, 10000, func(ctx context.Context, i int) (int, error) {
			time.Sleep(100 * time.Microsecond)
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("workers=%d: cancellation took %v, want prompt return", workers, elapsed)
		}
	}
}

func TestMapPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	_, err := Map(ctx, 5, func(context.Context, int) (int, error) {
		ran = true
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("no task should run under a cancelled context")
	}
}

func TestForEach(t *testing.T) {
	sum := make([]int64, 50)
	ctx := WithWorkers(context.Background(), 8)
	if err := ForEach(ctx, 50, func(_ context.Context, i int) error {
		sum[i] = int64(i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range sum {
		if v != int64(i) {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
	wantErr := fmt.Errorf("nope")
	if err := ForEach(ctx, 3, func(context.Context, int) error { return wantErr }); !errors.Is(err, wantErr) {
		t.Errorf("err = %v, want nope", err)
	}
}

func TestWorkersDefaultsAndOverride(t *testing.T) {
	if w := Workers(context.Background()); w < 1 {
		t.Errorf("default workers = %d, want >= 1", w)
	}
	if w := Workers(WithWorkers(context.Background(), 7)); w != 7 {
		t.Errorf("workers = %d, want 7", w)
	}
	if w := Workers(WithWorkers(context.Background(), 0)); w < 1 {
		t.Errorf("zero width should fall back to GOMAXPROCS, got %d", w)
	}
}

func TestTaskSeedDistinctAndStable(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 1000; i++ {
		s := TaskSeed(42, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("tasks %d and %d share seed %d", prev, i, s)
		}
		seen[s] = i
		if s != TaskSeed(42, i) {
			t.Fatalf("TaskSeed not deterministic at task %d", i)
		}
	}
	if TaskSeed(1, 0) == TaskSeed(2, 0) {
		t.Error("different roots should give different task seeds")
	}
}
