package runner

import (
	"context"
	"time"

	"ipso/internal/obs"
)

// Pool instrumentation, on the process-wide obs registry: counters for
// task lifecycle, histograms for queue wait (Map entry → task pickup)
// and task execution time, and a gauge of workers currently executing.
// Metrics never touch stdout, so the byte-identical-output contract of
// the harness is unaffected by instrumentation.
var (
	tasksStarted = obs.Default().Counter("runner_tasks_started_total",
		"Tasks picked up by a pool worker.")
	tasksCompleted = obs.Default().Counter("runner_tasks_completed_total",
		"Tasks that returned without error.")
	tasksFailed = obs.Default().Counter("runner_tasks_failed_total",
		"Tasks that returned an error.")
	tasksPanicked = obs.Default().Counter("runner_tasks_panicked_total",
		"Tasks that panicked and were recovered into errors.")
	queueWait = obs.Default().Histogram("runner_queue_wait_seconds",
		"Time from Map entry until a worker picked the task up.", nil)
	taskSeconds = obs.Default().Histogram("runner_task_seconds",
		"Task execution time.", nil)
	liveWorkers = obs.Default().Gauge("runner_workers",
		"Pool workers currently executing a task.")
)

// observed wraps one task execution with metrics and, when the context
// carries an obs recorder, a per-task "map" span — the measurement the
// selfdiag experiment extracts Wp and E[max Tp,i] from.
func observed[T any](ctx context.Context, i int, enqueued time.Time, fn func(ctx context.Context, i int) (T, error)) (T, error) {
	start := time.Now()
	queueWait.Observe(start.Sub(enqueued).Seconds())
	tasksStarted.Inc()
	liveWorkers.Inc()
	spanCtx, span := obs.StartSpan(ctx, "map")
	span.SetTask(i)

	v, err := protect(spanCtx, i, fn)

	span.End()
	liveWorkers.Dec()
	taskSeconds.Observe(time.Since(start).Seconds())
	switch {
	case err == nil:
		tasksCompleted.Inc()
	case isPanicError(err):
		tasksPanicked.Inc()
	default:
		tasksFailed.Inc()
	}
	return v, err
}
