// Package runner is the worker-pool execution engine behind the
// evaluation harness. The per-(app, n) sweep points of the experiment
// suite are independent deterministic simulations — an embarrassingly
// parallel workload with q(n) ≈ 0 in the paper's own terms — so the
// harness fans them (and whole experiments) out across a bounded number
// of goroutines while keeping the output byte-identical to a serial
// run:
//
//   - order-preserving assembly: Map writes result i to slot i, so the
//     caller sees results in task order no matter how tasks interleave;
//   - per-task seeds: TaskSeed derives an independent RNG seed for each
//     task from one root seed, so randomized tasks never share a stream
//     and scheduling cannot change what any task samples;
//   - panic-to-error recovery: a panicking task becomes an error on its
//     own slot instead of crashing the process;
//   - first-error cancellation: one failing task cancels the derived
//     context so in-flight siblings stop early.
//
// The pool width travels in the context (WithWorkers), letting a single
// -parallel flag govern every nested fan-out without threading a width
// parameter through the experiment APIs.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"ipso/internal/chaos"
)

type workersKey struct{}

// WithWorkers returns a context carrying the worker-pool width used by
// Map and ForEach. Widths below 1 fall back to GOMAXPROCS.
func WithWorkers(ctx context.Context, n int) context.Context {
	return context.WithValue(ctx, workersKey{}, n)
}

// Workers reports the pool width carried by ctx; GOMAXPROCS when unset
// or non-positive.
func Workers(ctx context.Context) int {
	if n, ok := ctx.Value(workersKey{}).(int); ok && n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(ctx, i) for every i in [0, n) on the context's worker
// pool and returns the results in index order. The first task error (or
// recovered panic) cancels the remaining tasks and is returned; when
// the parent context itself is cancelled, the context's error is
// returned instead.
func Map[T any](ctx context.Context, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("runner: negative task count %d", n)
	}
	results := make([]T, n)
	if n == 0 {
		return results, ctx.Err()
	}
	workers := Workers(ctx)
	if workers > n {
		workers = n
	}
	enqueued := time.Now()
	if workers <= 1 {
		// Serial fast path: identical task order and RNG usage to the
		// original single-goroutine harness.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := observed(ctx, i, enqueued, fn)
			if err != nil {
				return nil, err
			}
			results[i] = v
		}
		return results, nil
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := runCtx.Err(); err != nil {
					errs[i] = err
					return
				}
				v, err := observed(runCtx, i, enqueued, fn)
				if err != nil {
					errs[i] = err
					cancel()
					return
				}
				results[i] = v
			}
		}()
	}
	wg.Wait()

	// Prefer a genuine task failure (lowest index) over the cancellation
	// noise it propagated to its siblings.
	var ctxErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if ctxErr == nil {
				ctxErr = err
			}
			continue
		}
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	return results, nil
}

// ForEach is Map for side-effecting tasks with no result value.
func ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	_, err := Map(ctx, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}

// panicError marks an error recovered from a task panic, so metrics can
// distinguish panics from ordinary failures.
type panicError struct{ err error }

func (p panicError) Error() string { return p.err.Error() }

func (p panicError) Unwrap() error { return p.err }

func isPanicError(err error) bool {
	var pe panicError
	return errors.As(err, &pe)
}

// protect runs one task with panic-to-error recovery.
func protect[T any](ctx context.Context, i int, fn func(ctx context.Context, i int) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = panicError{fmt.Errorf("runner: task %d panicked: %v\n%s", i, r, debug.Stack())}
		}
	}()
	return fn(ctx, i)
}

// TaskSeed derives the RNG seed of task i from a root seed using the
// SplitMix64 finalizer shared with internal/chaos (chaos.Derive with a
// single part reproduces this value exactly). Each task seeds its own
// rand.New, so sampling is independent of both sibling tasks and worker
// scheduling — the property that makes parallel runs byte-identical to
// serial ones.
func TaskSeed(root int64, task int) int64 {
	return int64(chaos.Derive(uint64(root), uint64(task)))
}
