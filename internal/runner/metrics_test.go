package runner

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"ipso/internal/obs"
	"ipso/internal/trace"
)

func TestMapCountsTaskOutcomes(t *testing.T) {
	started0 := tasksStarted.Value()
	completed0 := tasksCompleted.Value()
	panicked0 := tasksPanicked.Value()
	failed0 := tasksFailed.Value()

	ctx := WithWorkers(context.Background(), 1)
	if _, err := Map(ctx, 5, func(ctx context.Context, i int) (int, error) {
		return i, nil
	}); err != nil {
		t.Fatal(err)
	}
	if d := tasksStarted.Value() - started0; d != 5 {
		t.Errorf("started delta = %g, want 5", d)
	}
	if d := tasksCompleted.Value() - completed0; d != 5 {
		t.Errorf("completed delta = %g, want 5", d)
	}

	if _, err := Map(ctx, 1, func(ctx context.Context, i int) (int, error) {
		panic("boom")
	}); err == nil {
		t.Fatal("panic should surface as error")
	}
	if d := tasksPanicked.Value() - panicked0; d != 1 {
		t.Errorf("panicked delta = %g, want 1", d)
	}

	wantErr := errors.New("nope")
	if _, err := Map(ctx, 1, func(ctx context.Context, i int) (int, error) {
		return 0, wantErr
	}); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	if d := tasksFailed.Value() - failed0; d != 1 {
		t.Errorf("failed delta = %g, want 1", d)
	}

	if n := queueWait.Count(); n == 0 {
		t.Error("queue-wait histogram never observed")
	}
	if n := taskSeconds.Count(); n == 0 {
		t.Error("task-duration histogram never observed")
	}
	if v := liveWorkers.Value(); v != 0 {
		t.Errorf("live workers = %g after all pools drained, want 0", v)
	}
}

func TestMapRecordsTaskSpans(t *testing.T) {
	rec := obs.NewRecorder("pool")
	ctx := obs.WithRecorder(WithWorkers(context.Background(), 4), rec)
	const n = 8
	if _, err := Map(ctx, n, func(ctx context.Context, i int) (int, error) {
		return i * i, nil
	}); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != n {
		t.Fatalf("recorded %d spans, want %d", rec.Len(), n)
	}

	// The span log round-trips through the trace tooling: n task events
	// in the "map" phase, one per task index.
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	log, err := trace.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ds := log.TaskDurations(trace.PhaseMap)
	if len(ds) != n {
		t.Fatalf("task durations = %d, want %d", len(ds), n)
	}
}

func TestMapWithoutRecorderRecordsNothing(t *testing.T) {
	ctx := WithWorkers(context.Background(), 2)
	if _, err := Map(ctx, 3, func(ctx context.Context, i int) (int, error) {
		if obs.RecorderFrom(ctx) != nil {
			t.Error("task context should carry no recorder")
		}
		return 0, nil
	}); err != nil {
		t.Fatal(err)
	}
}
