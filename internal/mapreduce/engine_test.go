package mapreduce

import (
	"math"
	"testing"
	"testing/quick"

	"ipso/internal/cluster"
	"ipso/internal/stats"
	"ipso/internal/trace"
)

// testApp is a tunable cost model for engine tests. Work units are chosen
// against a CPURate of 1 so work == seconds.
type testApp struct {
	name              string
	mapWorkPerByte    float64
	outBytesPerByte   float64
	mergeSetup        float64
	mergeWorkPerByte  float64
	reduceWorkPerByte float64
}

func (a testApp) Name() string { return a.name }

func (a testApp) MapWork(shard float64) float64 { return a.mapWorkPerByte * shard }

func (a testApp) MapOutputBytes(shard float64) float64 { return a.outBytesPerByte * shard }

func (a testApp) MergeWork(total float64) float64 { return a.mergeSetup + a.mergeWorkPerByte*total }

func (a testApp) ReduceWork(total float64) float64 { return a.reduceWorkPerByte * total }

func testClusterConfig() cluster.Config {
	spec := cluster.NodeSpec{CPURate: 1, MemoryBytes: 1000, DiskBW: 2, NICBW: 10}
	return cluster.Config{
		Workers: 1, // overridden by the engine
		Worker:  spec,
		Master:  cluster.NodeSpec{CPURate: 10, MemoryBytes: 1e6, DiskBW: 10, NICBW: 100},
	}
}

func baseConfig(n int) Config {
	return Config{
		App:        testApp{name: "test", mapWorkPerByte: 1, outBytesPerByte: 1, mergeWorkPerByte: 0.5},
		N:          n,
		ShardBytes: 10,
		Cluster:    testClusterConfig(),
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "nil app", mutate: func(c *Config) { c.App = nil }},
		{name: "zero N", mutate: func(c *Config) { c.N = 0 }},
		{name: "negative shard", mutate: func(c *Config) { c.ShardBytes = -1 }},
		{name: "negative init", mutate: func(c *Config) { c.InitTime = -1 }},
		{name: "negative memory", mutate: func(c *Config) { c.ReducerMemoryBytes = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := baseConfig(2)
			tt.mutate(&cfg)
			if _, err := RunParallel(cfg); err == nil {
				t.Error("RunParallel should reject invalid config")
			}
			if _, err := RunSequential(cfg); err == nil {
				t.Error("RunSequential should reject invalid config")
			}
		})
	}
}

func TestSequentialMakespanIsSumOfPhases(t *testing.T) {
	cfg := baseConfig(3)
	// 3 tasks × 10 B × 1 work/B / 1 rate = 30 s map; merge 0.5·30 = 15 s.
	res, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Makespan, 45) {
		t.Errorf("sequential makespan %g, want 45", res.Makespan)
	}
	if got := res.Log.PhaseTotal(trace.PhaseMap); !almost(got, 30) {
		t.Errorf("map total %g, want 30", got)
	}
	if got := res.Log.PhaseTotal(trace.PhaseMerge); !almost(got, 15) {
		t.Errorf("merge total %g, want 15", got)
	}
}

func TestParallelMakespanStructure(t *testing.T) {
	cfg := baseConfig(4)
	cfg.InitTime = 1
	cfg.Cluster.DispatchTime = 0.25
	res, err := RunParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// init 1; dispatches serialize at 0.25 so task i starts at 1+0.25(i+1);
	// each map takes 10 s; last map ends at 1 + 1 + 10 = 12.
	// Shuffle: 4 transfers of 10 B at min(10,10) B/s into one NIC = 4 s
	// serialized → ends 16. Merge: 0.5·40 = 20 → 36.
	if !almost(res.Makespan, 36) {
		t.Errorf("parallel makespan %g, want 36", res.Makespan)
	}
	start, end, ok := res.Log.PhaseSpan(trace.PhaseShuffle)
	if !ok || !almost(end-start, 4) {
		t.Errorf("shuffle span (%g, %g, %v), want 4 s wide", start, end, ok)
	}
	if mx, ok := res.Log.MaxTaskDuration(trace.PhaseMap); !ok || !almost(mx, 10) {
		t.Errorf("max map task %g, want 10", mx)
	}
	if got := len(res.Log.TaskDurations(trace.PhaseSchedule)); got != 4 {
		t.Errorf("schedule events %d, want 4", got)
	}
}

func TestSpillTriggersAboveMemory(t *testing.T) {
	cfg := baseConfig(2) // total intermediate = 20 B
	cfg.ReducerMemoryBytes = 15
	par, err := RunParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Overflow 5 B → 10 B of disk at 2 B/s = 5 s of spill.
	if got := par.Log.PhaseTotal(trace.PhaseSpill); !almost(got, 5) {
		t.Errorf("spill time %g, want 5", got)
	}
	seq, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := seq.Log.PhaseTotal(trace.PhaseSpill); !almost(got, 5) {
		t.Errorf("sequential spill time %g, want 5 (same memory model)", got)
	}

	cfg.ReducerMemoryBytes = 100
	par, err = RunParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := par.Log.PhaseTotal(trace.PhaseSpill); got != 0 {
		t.Errorf("spill time %g below memory bound, want 0", got)
	}
}

func TestSpeedupPerfectlyParallelApp(t *testing.T) {
	// No merge, no reduce, negligible shuffle: speedup ≈ n (type It).
	app := testApp{name: "embarrassing", mapWorkPerByte: 100, outBytesPerByte: 1e-9}
	cfg := baseConfig(8)
	cfg.App = app
	s, _, _, err := Speedup(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s < 7.9 || s > 8.0 {
		t.Errorf("speedup %g, want ≈8 for perfectly parallel app", s)
	}
}

func TestSpeedupBoundedBySerialMerge(t *testing.T) {
	// Heavy merge: speedup saturates well below n (type IIIt).
	app := testApp{name: "mergebound", mapWorkPerByte: 1, outBytesPerByte: 1, mergeWorkPerByte: 1}
	s8 := mustSpeedup(t, withApp(baseConfig(8), app))
	s32 := mustSpeedup(t, withApp(baseConfig(32), app))
	if s32 > 3 {
		t.Errorf("speedup %g at n=32, want bounded ≪ n", s32)
	}
	if s32 < s8*0.8 {
		t.Errorf("speedup collapsed: s8=%g s32=%g", s8, s32)
	}
}

func TestJitterReducesSpeedup(t *testing.T) {
	det := baseConfig(16)
	detS := mustSpeedup(t, det)

	jit := baseConfig(16)
	jit.Jitter = stats.Uniform{Low: 0.5, High: 1.5} // mean 1
	jit.Seed = 11
	jitS := mustSpeedup(t, jit)

	if jitS >= detS {
		t.Errorf("straggler jitter should lower speedup: det=%g jitter=%g", detS, jitS)
	}
}

func TestJitterSameSeedSameTotalWork(t *testing.T) {
	cfg := baseConfig(8)
	cfg.Jitter = stats.Uniform{Low: 0.8, High: 1.2}
	cfg.Seed = 3
	par, err := RunParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pw := par.Log.PhaseTotal(trace.PhaseMap)
	sw := seq.Log.PhaseTotal(trace.PhaseMap)
	if !almost(pw, sw) {
		t.Errorf("total map work differs: parallel %g vs sequential %g", pw, sw)
	}
}

func TestSequentialChargesNoScaleOutWork(t *testing.T) {
	cfg := baseConfig(4)
	cfg.InitTime = 5
	cfg.Cluster.DispatchTime = 1
	seq, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []trace.Phase{trace.PhaseInit, trace.PhaseSchedule, trace.PhaseShuffle} {
		if got := seq.Log.PhaseTotal(phase); got != 0 {
			t.Errorf("sequential run charged %g s of %s; footnote 1 forbids it", got, phase)
		}
	}
}

// Property: the measured speedup never exceeds the scale-out degree for a
// deterministic workload with nonnegative overheads, and is positive.
func TestSpeedupBoundProperty(t *testing.T) {
	f := func(nRaw, mergeRaw uint8) bool {
		n := int(nRaw%12) + 1
		app := testApp{
			name:             "prop",
			mapWorkPerByte:   1,
			outBytesPerByte:  0.5,
			mergeWorkPerByte: float64(mergeRaw%4) / 4,
		}
		cfg := baseConfig(n)
		cfg.App = app
		s, _, _, err := Speedup(cfg)
		if err != nil {
			return false
		}
		return s > 0 && s <= float64(n)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func mustSpeedup(t *testing.T, cfg Config) float64 {
	t.Helper()
	s, _, _, err := Speedup(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func withApp(cfg Config, app AppModel) Config {
	cfg.App = app
	return cfg
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9*math.Max(1, math.Abs(b)) }
