// Package mapreduce simulates the paper's single-round MapReduce execution
// (the homogeneous Split-Merge model of Section III): n identical
// processing units run the parallelizable map tasks with barrier
// synchronization, one more identical unit runs the serial shuffle/merge/
// reduce, and a centralized dispatcher schedules tasks.
//
// Two execution modes mirror Section IV exactly:
//
//   - RunParallel: the scale-out execution (init + dispatch + map wave +
//     shuffle into the single reducer + merge/spill + reduce);
//   - RunSequential: the paper's sequential job execution model — the n
//     tasks of the split phase run back-to-back on one processing unit and
//     the merge runs afterwards, with no scale-out-induced workload
//     charged (footnote 1 of the paper).
//
// The measured speedup is the ratio of the two makespans, and all phase
// timings are recorded in a trace.Log so the experiment harness can apply
// the paper's log-based estimation of EX(n), IN(n) and q(n).
//
// The package also contains a real in-memory MapReduce runner (local.go)
// for executing genuine map/reduce functions over real records; the
// simulator reproduces the paper's cluster-scale experiments while the
// local runner makes the library usable as an actual (small-scale)
// MapReduce library.
package mapreduce

import (
	"errors"
	"fmt"
	"math/rand"

	"ipso/internal/cluster"
	"ipso/internal/simtime"
	"ipso/internal/stats"
	"ipso/internal/trace"
)

// StreamingMerger is an optional AppModel refinement: applications whose
// reducer merges as a stream (identity reduce over sorted runs, e.g.
// HiBench Sort over text) never materialize the full working set in
// reducer memory and therefore never trigger spill I/O. Applications that
// do materialize it (TeraSort's total-order merge) are subject to the
// reducer-memory spill model — the mechanism behind the paper's Fig. 5.
type StreamingMerger interface {
	StreamingMerge() bool
}

// AppModel is a workload cost model for a single-round MapReduce
// application. Work is expressed in abstract CPU units (a node with
// CPURate r executes w units in w/r seconds); data sizes are bytes.
type AppModel interface {
	// Name identifies the application in traces.
	Name() string
	// MapWork returns the CPU work to map one shard of the given size.
	MapWork(shardBytes float64) float64
	// MapOutputBytes returns the intermediate bytes one map task emits.
	MapOutputBytes(shardBytes float64) float64
	// MergeWork returns the CPU work of the serial merge over all
	// intermediate data (including any fixed per-job merge setup).
	MergeWork(totalIntermediateBytes float64) float64
	// ReduceWork returns the CPU work of the final reduce stage.
	ReduceWork(totalIntermediateBytes float64) float64
}

// Config describes one simulated job execution.
type Config struct {
	App AppModel
	// N is the scale-out degree: the number of parallel map tasks, each
	// on its own processing unit (the paper's n).
	N int
	// ShardBytes is the input size per map task. For the paper's
	// fixed-time workloads this is one 128 MB block per unit; for
	// fixed-size workloads the harness divides a fixed total by N.
	ShardBytes float64
	// Cluster configures the simulated datacenter. Its Workers field is
	// ignored: the engine allocates N map units plus 1 merge unit.
	Cluster cluster.Config
	// ReducerMemoryBytes bounds the merge unit's in-memory working set;
	// intermediate data beyond it is spilled to disk (2 bytes of disk
	// traffic per overflow byte: write + read back). Zero means the
	// worker NodeSpec's memory.
	ReducerMemoryBytes float64
	// InitTime is the execution-environment initialization overhead
	// charged to the parallel run (part (a) of the paper's breakdown).
	InitTime float64
	// Jitter optionally makes per-task map times random (multiplicative,
	// should have mean ≈ 1): the statistic IPSO model. Nil means
	// deterministic.
	Jitter stats.Distribution
	// Seed drives Jitter sampling; the same seed yields the same task
	// workloads in RunParallel and RunSequential, so the speedup isolates
	// the E[max] straggler penalty.
	Seed int64
}

func (c Config) validate() error {
	if c.App == nil {
		return errors.New("mapreduce: nil AppModel")
	}
	if c.N < 1 {
		return fmt.Errorf("mapreduce: N must be >= 1, got %d", c.N)
	}
	if c.ShardBytes < 0 {
		return fmt.Errorf("mapreduce: negative shard size %g", c.ShardBytes)
	}
	if c.InitTime < 0 {
		return fmt.Errorf("mapreduce: negative init time %g", c.InitTime)
	}
	if c.ReducerMemoryBytes < 0 {
		return fmt.Errorf("mapreduce: negative reducer memory %g", c.ReducerMemoryBytes)
	}
	return nil
}

// Result is the outcome of one simulated execution.
type Result struct {
	Log      *trace.Log
	Makespan float64 // seconds of simulated wall-clock time
	N        int
}

// taskWorks returns the (possibly jittered) per-task map work. The same
// cfg yields identical slices for parallel and sequential runs.
func taskWorks(cfg Config) []float64 {
	base := cfg.App.MapWork(cfg.ShardBytes)
	works := make([]float64, cfg.N)
	if cfg.Jitter == nil {
		for i := range works {
			works[i] = base
		}
		return works
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := range works {
		works[i] = base * cfg.Jitter.Sample(rng)
	}
	return works
}

func reducerMemory(cfg Config) float64 {
	if cfg.ReducerMemoryBytes > 0 {
		return cfg.ReducerMemoryBytes
	}
	return cfg.Cluster.Worker.MemoryBytes
}

// spillBytes returns the disk traffic caused by merging total bytes with
// the given memory bound: every overflow byte is written and read back.
// Streaming mergers never spill.
func spillBytes(app AppModel, total, memory float64) float64 {
	if s, ok := app.(StreamingMerger); ok && s.StreamingMerge() {
		return 0
	}
	if total <= memory {
		return 0
	}
	return 2 * (total - memory)
}

// RunParallel simulates the scale-out execution at scale-out degree cfg.N
// and returns the trace and makespan.
func RunParallel(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	eng := simtime.NewEngine()
	ccfg := cfg.Cluster
	ccfg.Workers = cfg.N + 1 // N map units + 1 merge unit (Split-Merge model)
	clus, err := cluster.New(eng, ccfg)
	if err != nil {
		return Result{}, err
	}
	log := trace.NewLog()
	job := cfg.App.Name()
	works := taskWorks(cfg)
	outBytes := cfg.App.MapOutputBytes(cfg.ShardBytes)
	totalOut := outBytes * float64(cfg.N)
	reducer := clus.Workers()[cfg.N]

	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	record := func(e trace.Event) {
		if err := log.Add(e); err != nil {
			fail(err)
		}
	}

	mapsLeft := cfg.N
	shuffleLeft := cfg.N
	var shuffleStart float64

	finishJob := func() {} // assigned below; declared for closure ordering

	runMerge := func() {
		spill := spillBytes(cfg.App, totalOut, reducerMemory(cfg))
		doMergeCPU := func() {
			mergeStart := eng.Now()
			if err := reducer.RunCPU(cfg.App.MergeWork(totalOut), func() {
				record(trace.Event{Job: job, Phase: trace.PhaseMerge, Task: -1, Start: mergeStart, End: eng.Now()})
				reduceStart := eng.Now()
				if err := reducer.RunCPU(cfg.App.ReduceWork(totalOut), func() {
					record(trace.Event{Job: job, Phase: trace.PhaseReduce, Task: -1, Start: reduceStart, End: eng.Now()})
					finishJob()
				}); err != nil {
					fail(err)
				}
			}); err != nil {
				fail(err)
			}
		}
		if spill > 0 {
			spillStart := eng.Now()
			if err := reducer.DiskIO(spill, func() {
				record(trace.Event{Job: job, Phase: trace.PhaseSpill, Task: -1, Start: spillStart, End: eng.Now()})
				doMergeCPU()
			}); err != nil {
				fail(err)
			}
			return
		}
		doMergeCPU()
	}

	startShuffle := func() {
		shuffleStart = eng.Now()
		for i := 0; i < cfg.N; i++ {
			src := clus.Workers()[i]
			if err := clus.Transfer(src, reducer, outBytes, func() {
				shuffleLeft--
				if shuffleLeft == 0 {
					record(trace.Event{Job: job, Phase: trace.PhaseShuffle, Task: -1, Start: shuffleStart, End: eng.Now()})
					runMerge()
				}
			}); err != nil {
				fail(err)
			}
		}
	}

	initStart := eng.Now()
	err = eng.Schedule(cfg.InitTime, func() {
		record(trace.Event{Job: job, Phase: trace.PhaseInit, Task: -1, Start: initStart, End: eng.Now()})
		for i := 0; i < cfg.N; i++ {
			i := i
			dispatchStart := eng.Now()
			if err := clus.Dispatch(func() {
				record(trace.Event{Job: job, Phase: trace.PhaseSchedule, Task: i, Start: dispatchStart, End: eng.Now()})
				mapStart := eng.Now()
				if err := clus.Workers()[i].RunCPU(works[i], func() {
					record(trace.Event{Job: job, Phase: trace.PhaseMap, Task: i, Start: mapStart, End: eng.Now()})
					mapsLeft--
					if mapsLeft == 0 { // barrier synchronization
						startShuffle()
					}
				}); err != nil {
					fail(err)
				}
			}); err != nil {
				fail(err)
			}
		}
	})
	if err != nil {
		return Result{}, err
	}

	var makespan float64
	done := false
	finishJob = func() {
		makespan = eng.Now()
		done = true
	}
	eng.Run()
	if firstErr != nil {
		return Result{}, firstErr
	}
	if !done {
		return Result{}, errors.New("mapreduce: parallel execution did not complete")
	}
	return Result{Log: log, Makespan: makespan, N: cfg.N}, nil
}

// RunSequential simulates the paper's sequential job execution model: the
// N split-phase tasks run back-to-back on a single processing unit,
// followed by the merge. No dispatch, shuffle, or init is charged — by
// definition the sequential execution generates no scale-out-induced
// workload (footnote 1).
func RunSequential(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	eng := simtime.NewEngine()
	ccfg := cfg.Cluster
	ccfg.Workers = 1
	clus, err := cluster.New(eng, ccfg)
	if err != nil {
		return Result{}, err
	}
	log := trace.NewLog()
	job := cfg.App.Name()
	works := taskWorks(cfg)
	totalOut := cfg.App.MapOutputBytes(cfg.ShardBytes) * float64(cfg.N)
	unit := clus.Workers()[0]

	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	record := func(e trace.Event) {
		if err := log.Add(e); err != nil {
			fail(err)
		}
	}

	var makespan float64
	done := false

	var runTask func(i int)
	runMergePhase := func() {
		spill := spillBytes(cfg.App, totalOut, reducerMemory(cfg))
		mergeCPU := func() {
			mergeStart := eng.Now()
			if err := unit.RunCPU(cfg.App.MergeWork(totalOut), func() {
				record(trace.Event{Job: job, Phase: trace.PhaseMerge, Task: -1, Start: mergeStart, End: eng.Now()})
				reduceStart := eng.Now()
				if err := unit.RunCPU(cfg.App.ReduceWork(totalOut), func() {
					record(trace.Event{Job: job, Phase: trace.PhaseReduce, Task: -1, Start: reduceStart, End: eng.Now()})
					makespan = eng.Now()
					done = true
				}); err != nil {
					fail(err)
				}
			}); err != nil {
				fail(err)
			}
		}
		if spill > 0 {
			spillStart := eng.Now()
			if err := unit.DiskIO(spill, func() {
				record(trace.Event{Job: job, Phase: trace.PhaseSpill, Task: -1, Start: spillStart, End: eng.Now()})
				mergeCPU()
			}); err != nil {
				fail(err)
			}
			return
		}
		mergeCPU()
	}
	runTask = func(i int) {
		if i == cfg.N {
			runMergePhase()
			return
		}
		start := eng.Now()
		if err := unit.RunCPU(works[i], func() {
			record(trace.Event{Job: job, Phase: trace.PhaseMap, Task: i, Start: start, End: eng.Now()})
			runTask(i + 1)
		}); err != nil {
			fail(err)
		}
	}
	runTask(0)
	eng.Run()
	if firstErr != nil {
		return Result{}, firstErr
	}
	if !done {
		return Result{}, errors.New("mapreduce: sequential execution did not complete")
	}
	return Result{Log: log, Makespan: makespan, N: cfg.N}, nil
}

// Speedup runs both execution modes and returns T_sequential / T_parallel,
// the measured speedup of Section V, along with both results.
func Speedup(cfg Config) (s float64, par, seq Result, err error) {
	par, err = RunParallel(cfg)
	if err != nil {
		return 0, Result{}, Result{}, fmt.Errorf("parallel run: %w", err)
	}
	seq, err = RunSequential(cfg)
	if err != nil {
		return 0, Result{}, Result{}, fmt.Errorf("sequential run: %w", err)
	}
	if par.Makespan <= 0 {
		return 0, Result{}, Result{}, errors.New("mapreduce: nonpositive parallel makespan")
	}
	return seq.Makespan / par.Makespan, par, seq, nil
}
