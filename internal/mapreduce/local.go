package mapreduce

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Pair is one intermediate or final key/value record of a local job.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// LocalJob is a real (non-simulated) in-memory MapReduce job: Map emits
// intermediate pairs for one input record; Reduce folds all values of one
// key. It executes the same Split-Merge structure the simulator models —
// a parallel map wave with barrier synchronization followed by a serial
// merge — but over genuine data, which is what the examples and the
// workload-shape tests use.
type LocalJob[In any, K comparable, V any] struct {
	Map    func(record In, emit func(K, V))
	Reduce func(key K, values []V) V
}

// Run executes the job over records using the given number of parallel
// map workers, returning the reduced pairs. Output order is unspecified;
// use RunSorted for deterministic ordering.
func (j LocalJob[In, K, V]) Run(records []In, workers int) (map[K]V, error) {
	if j.Map == nil || j.Reduce == nil {
		return nil, errors.New("mapreduce: LocalJob needs both Map and Reduce")
	}
	if workers < 1 {
		return nil, fmt.Errorf("mapreduce: workers must be >= 1, got %d", workers)
	}
	if workers > len(records) && len(records) > 0 {
		workers = len(records)
	}

	// Split phase: each worker maps a contiguous shard into its own
	// intermediate store (no shared state, so no locking on the hot path).
	partials := make([]map[K][]V, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		lo := len(records) * w / workers
		hi := len(records) * (w + 1) / workers
		partials[w] = make(map[K][]V)
		wg.Add(1)
		go func() {
			defer wg.Done()
			emit := func(k K, v V) {
				partials[w][k] = append(partials[w][k], v)
			}
			for _, rec := range records[lo:hi] {
				j.Map(rec, emit)
			}
		}()
	}
	wg.Wait() // barrier synchronization

	// Merge phase: a single reducer merges all intermediate results.
	merged := make(map[K][]V)
	for _, p := range partials {
		for k, vs := range p {
			merged[k] = append(merged[k], vs...)
		}
	}
	out := make(map[K]V, len(merged))
	for k, vs := range merged {
		out[k] = j.Reduce(k, vs)
	}
	return out, nil
}

// RunSorted executes the job and returns pairs sorted by key using less.
func (j LocalJob[In, K, V]) RunSorted(records []In, workers int, less func(a, b K) bool) ([]Pair[K, V], error) {
	if less == nil {
		return nil, errors.New("mapreduce: RunSorted needs a key ordering")
	}
	m, err := j.Run(records, workers)
	if err != nil {
		return nil, err
	}
	out := make([]Pair[K, V], 0, len(m))
	for k, v := range m {
		out = append(out, Pair[K, V]{Key: k, Value: v})
	}
	sort.Slice(out, func(a, b int) bool { return less(out[a].Key, out[b].Key) })
	return out, nil
}
