package mapreduce

import (
	"testing"
	"testing/quick"

	"ipso/internal/cluster"
)

// The deterministic engine has a closed-form makespan; this file verifies
// the simulator against the hand-derived formulas across a randomized
// parameter space — the strongest correctness check available for a
// discrete-event model.
//
// Parallel (equal tasks, FIFO dispatch, serialized reducer ingest):
//
//	T_par = init + n·d + mapWork/rate            (last dispatch, then map)
//	      + n·outBytes/bw                        (incast-serialized shuffle)
//	      + spillBytes/diskBW + mergeWork/rate + reduceWork/rate
//
// Sequential (footnote 1: no init/dispatch/shuffle):
//
//	T_seq = n·mapWork/rate + spillBytes/diskBW + mergeWork/rate + reduceWork/rate
func analyticMakespans(cfg Config) (par, seq float64) {
	spec := cfg.Cluster.Worker
	mapT := cfg.App.MapWork(cfg.ShardBytes) / spec.CPURate
	out := cfg.App.MapOutputBytes(cfg.ShardBytes)
	total := out * float64(cfg.N)
	spill := spillBytes(cfg.App, total, reducerMemory(cfg))
	serialTail := spill/spec.DiskBW + cfg.App.MergeWork(total)/spec.CPURate + cfg.App.ReduceWork(total)/spec.CPURate

	bw := spec.NICBW // worker and reducer share the spec; min is itself
	par = cfg.InitTime + float64(cfg.N)*cfg.Cluster.DispatchTime + mapT +
		float64(cfg.N)*out/bw + serialTail
	seq = float64(cfg.N)*mapT + serialTail
	return par, seq
}

func TestEngineMatchesClosedForm(t *testing.T) {
	f := func(nRaw, shardRaw, mapRaw, outRaw, mergeRaw, memRaw, dRaw uint8) bool {
		cfg := Config{
			App: testApp{
				name:              "cf-check",
				mapWorkPerByte:    float64(mapRaw%20)/4 + 0.25,
				outBytesPerByte:   float64(outRaw%10) / 10,
				mergeSetup:        float64(mergeRaw % 50),
				mergeWorkPerByte:  float64(mergeRaw%8) / 8,
				reduceWorkPerByte: float64(mergeRaw%4) / 16,
			},
			N:                  int(nRaw%24) + 1,
			ShardBytes:         float64(shardRaw%100) + 1,
			Cluster:            testClusterConfig(),
			ReducerMemoryBytes: float64(memRaw%200) + 1,
			InitTime:           float64(dRaw%10) / 10,
		}
		cfg.Cluster.DispatchTime = float64(dRaw%5) / 20

		wantPar, wantSeq := analyticMakespans(cfg)
		par, err := RunParallel(cfg)
		if err != nil {
			return false
		}
		seq, err := RunSequential(cfg)
		if err != nil {
			return false
		}
		return almost(par.Makespan, wantPar) && almost(seq.Makespan, wantSeq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestEngineMatchesClosedFormOnCalibratedCluster(t *testing.T) {
	// The same check on the EMR-like cluster the experiments use.
	cfg := Config{
		App: testApp{
			name:             "emr-check",
			mapWorkPerByte:   14,
			outBytesPerByte:  1,
			mergeSetup:       8e8,
			mergeWorkPerByte: 2,
		},
		N:                  24,
		ShardBytes:         cluster.BlockBytes,
		Cluster:            cluster.DefaultConfig(25),
		ReducerMemoryBytes: cluster.ReducerMemoryBytes,
		InitTime:           0.5,
	}
	wantPar, wantSeq := analyticMakespans(cfg)
	s, par, seq, err := Speedup(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(par.Makespan, wantPar) {
		t.Errorf("parallel makespan %g, closed form %g", par.Makespan, wantPar)
	}
	if !almost(seq.Makespan, wantSeq) {
		t.Errorf("sequential makespan %g, closed form %g", seq.Makespan, wantSeq)
	}
	if !almost(s, wantSeq/wantPar) {
		t.Errorf("speedup %g, closed form %g", s, wantSeq/wantPar)
	}
}
