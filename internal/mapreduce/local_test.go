package mapreduce

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func wordCountJob() LocalJob[string, string, int] {
	return LocalJob[string, string, int]{
		Map: func(line string, emit func(string, int)) {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
		},
		Reduce: func(_ string, counts []int) int {
			total := 0
			for _, c := range counts {
				total += c
			}
			return total
		},
	}
}

func TestLocalWordCount(t *testing.T) {
	lines := []string{
		"the quick brown fox",
		"the lazy dog",
		"the quick dog",
	}
	got, err := wordCountJob().Run(lines, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"the": 3, "quick": 2, "brown": 1, "fox": 1, "lazy": 1, "dog": 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("word counts = %v, want %v", got, want)
	}
}

func TestLocalJobValidation(t *testing.T) {
	var j LocalJob[string, string, int]
	if _, err := j.Run([]string{"x"}, 1); err == nil {
		t.Error("nil Map/Reduce should error")
	}
	if _, err := wordCountJob().Run([]string{"x"}, 0); err == nil {
		t.Error("zero workers should error")
	}
	if _, err := wordCountJob().RunSorted([]string{"x"}, 1, nil); err == nil {
		t.Error("nil less should error")
	}
}

func TestLocalRunEmptyInput(t *testing.T) {
	got, err := wordCountJob().Run(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("expected empty result, got %v", got)
	}
}

func TestLocalRunSorted(t *testing.T) {
	lines := []string{"b a", "c a"}
	pairs, err := wordCountJob().RunSorted(lines, 2, func(a, b string) bool { return a < b })
	if err != nil {
		t.Fatal(err)
	}
	want := []Pair[string, int]{{Key: "a", Value: 2}, {Key: "b", Value: 1}, {Key: "c", Value: 1}}
	if !reflect.DeepEqual(pairs, want) {
		t.Errorf("sorted pairs = %v, want %v", pairs, want)
	}
}

// Property: results are independent of the worker count — parallel and
// sequential executions of the same job agree, the invariant behind the
// paper's speedup definition (same job output, different makespan).
func TestLocalWorkerCountInvarianceProperty(t *testing.T) {
	f := func(words []uint8, workersRaw uint8) bool {
		workers := int(workersRaw%8) + 1
		lines := make([]string, 0, len(words))
		for _, w := range words {
			lines = append(lines, strings.Repeat("w"+string(rune('a'+w%5)), 1)+" tail")
		}
		seqOut, err1 := wordCountJob().Run(lines, 1)
		parOut, err2 := wordCountJob().Run(lines, workers)
		return err1 == nil && err2 == nil && reflect.DeepEqual(seqOut, parOut)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the sum of counts equals the number of emitted words.
func TestLocalCountConservationProperty(t *testing.T) {
	f := func(words []uint8) bool {
		lines := make([]string, 0, len(words))
		for _, w := range words {
			lines = append(lines, string(rune('a'+w%26)))
		}
		out, err := wordCountJob().Run(lines, 3)
		if err != nil {
			return false
		}
		total := 0
		for _, c := range out {
			total += c
		}
		return total == len(lines)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
