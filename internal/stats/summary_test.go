package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want float64
	}{
		{name: "empty", give: nil, want: 0},
		{name: "single", give: []float64{42}, want: 42},
		{name: "pair", give: []float64{1, 3}, want: 2},
		{name: "negatives", give: []float64{-1, 1, -3, 3}, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.give); got != tt.want {
				t.Errorf("Mean(%v) = %g, want %g", tt.give, got, tt.want)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n−1 = 32/7.
	want := 32.0 / 7.0
	if got := Variance(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %g, want %g", got, want)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(want), 1e-12) {
		t.Errorf("StdDev = %g, want %g", got, math.Sqrt(want))
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Errorf("Variance of singleton = %g, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	if _, err := Min(nil); err == nil {
		t.Error("Min(nil) should error")
	}
	if _, err := Max(nil); err == nil {
		t.Error("Max(nil) should error")
	}
	xs := []float64{3, -1, 4, 1, 5}
	mn, err := Min(xs)
	if err != nil || mn != -1 {
		t.Errorf("Min = %g, %v; want -1, nil", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 5 {
		t.Errorf("Max = %g, %v; want 5, nil", mx, err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	tests := []struct {
		p    float64
		want float64
	}{
		{p: 0, want: 1},
		{p: 1, want: 4},
		{p: 0.5, want: 2.5},
		{p: 1.0 / 3.0, want: 2},
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.p)
		if err != nil {
			t.Fatalf("Quantile(%g): %v", tt.p, err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%g) = %g, want %g", tt.p, got, tt.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("Quantile of empty should error")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("Quantile(1.5) should error")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("unexpected summary %+v", s)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("Summarize(nil) should error")
	}
}

// Property: mean lies within [min, max] for any nonempty sample.
func TestMeanBoundedProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			// Keep magnitudes small enough that the sum cannot overflow.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		mn, _ := Min(clean)
		mx, _ := Max(clean)
		return m >= mn-1e-9*math.Abs(mn) && m <= mx+1e-9*math.Abs(mx)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: variance is never negative.
func TestVarianceNonnegativeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				clean = append(clean, x)
			}
		}
		return Variance(clean) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
