package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadFit is returned when a regression cannot be computed from the
// provided data (too few points, degenerate inputs, or domain violations).
var ErrBadFit = errors.New("stats: regression cannot be computed")

// LinearFit is the ordinary-least-squares fit y ≈ Intercept + Slope·x.
//
// Section V of the paper estimates the internal scaling factor IN(n) of
// Sort and TeraSort by exactly this kind of linear regression (e.g.
// IN_Sort(n) = 0.36n − 0.11).
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64 // coefficient of determination
}

// Eval returns the fitted value at x.
func (f LinearFit) Eval(x float64) float64 { return f.Intercept + f.Slope*x }

// String renders the fit as "y = <slope>·x + <intercept>".
func (f LinearFit) String() string {
	sign := "+"
	b := f.Intercept
	if b < 0 {
		sign, b = "-", -b
	}
	return fmt.Sprintf("y = %.4g·x %s %.4g (R²=%.4f)", f.Slope, sign, b, f.R2)
}

// Linear computes the ordinary-least-squares line through (xs, ys).
// At least two points with distinct x values are required.
func Linear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("%w: len(xs)=%d len(ys)=%d", ErrBadFit, len(xs), len(ys))
	}
	if len(xs) < 2 {
		return LinearFit{}, fmt.Errorf("%w: need at least 2 points, got %d", ErrBadFit, len(xs))
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	n := float64(len(xs))
	mx, my := sx/n, sy/n
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("%w: all x values identical", ErrBadFit)
	}
	slope := sxy / sxx
	intercept := my - slope*mx

	// R² = 1 − SS_res/SS_tot. A constant y series has SS_tot == 0; report
	// R²=1 if the fit is exact there, 0 otherwise.
	var ssRes, ssTot float64
	for i := range xs {
		r := ys[i] - (intercept + slope*xs[i])
		ssRes += r * r
		d := ys[i] - my
		ssTot += d * d
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	} else if ssRes > 0 {
		r2 = 0
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// PowerFit is the fit y ≈ Coeff·x^Exponent obtained by OLS in log-log space.
//
// The paper's asymptotic analysis (Eqs. 14-15) approximates the
// in-proportion ratio as ε(n) ≈ α·n^δ and the scale-out-induced factor as
// q(n) ≈ β·n^γ; PowerLaw estimates (α, δ) or (β, γ) from measurements.
type PowerFit struct {
	Coeff    float64 // α or β
	Exponent float64 // δ or γ
	R2       float64 // R² in log-log space
}

// Eval returns the fitted value at x.
func (f PowerFit) Eval(x float64) float64 { return f.Coeff * math.Pow(x, f.Exponent) }

// String renders the fit as "y = <coeff>·x^<exp>".
func (f PowerFit) String() string {
	return fmt.Sprintf("y = %.4g·x^%.4g (log-log R²=%.4f)", f.Coeff, f.Exponent, f.R2)
}

// PowerLaw fits y = c·x^e by linear regression on (ln x, ln y).
// All xs and ys must be strictly positive.
func PowerLaw(xs, ys []float64) (PowerFit, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return PowerFit{}, fmt.Errorf("%w: need >=2 paired points", ErrBadFit)
	}
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return PowerFit{}, fmt.Errorf("%w: power-law fit requires positive data (x=%g, y=%g)", ErrBadFit, xs[i], ys[i])
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	lin, err := Linear(lx, ly)
	if err != nil {
		return PowerFit{}, err
	}
	return PowerFit{Coeff: math.Exp(lin.Intercept), Exponent: lin.Slope, R2: lin.R2}, nil
}

// PiecewiseLinear is a two-segment linear fit with a breakpoint, used for
// step-wise internal scaling such as TeraSort's IN(n) in Fig. 5, where the
// slope changes once the reducer memory overflows.
type PiecewiseLinear struct {
	Break float64   // x value where the segments switch
	Left  LinearFit // fit over x <= Break
	Right LinearFit // fit over x > Break
}

// Eval returns the fitted value at x, using the segment containing x.
func (f PiecewiseLinear) Eval(x float64) float64 {
	if x <= f.Break {
		return f.Left.Eval(x)
	}
	return f.Right.Eval(x)
}

// FitPiecewiseLinear searches candidate breakpoints (interior x values) and
// returns the two-segment fit minimizing total squared residual. The xs
// must be sorted ascending; each segment must contain at least two points.
func FitPiecewiseLinear(xs, ys []float64) (PiecewiseLinear, error) {
	if len(xs) != len(ys) || len(xs) < 4 {
		return PiecewiseLinear{}, fmt.Errorf("%w: need >=4 paired points", ErrBadFit)
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return PiecewiseLinear{}, fmt.Errorf("%w: xs must be sorted", ErrBadFit)
		}
	}
	best := PiecewiseLinear{}
	bestSSE := math.Inf(1)
	found := false
	for k := 2; k <= len(xs)-2; k++ {
		left, err := Linear(xs[:k], ys[:k])
		if err != nil {
			continue
		}
		right, err := Linear(xs[k:], ys[k:])
		if err != nil {
			continue
		}
		sse := 0.0
		for i := 0; i < k; i++ {
			r := ys[i] - left.Eval(xs[i])
			sse += r * r
		}
		for i := k; i < len(xs); i++ {
			r := ys[i] - right.Eval(xs[i])
			sse += r * r
		}
		if sse < bestSSE {
			bestSSE = sse
			best = PiecewiseLinear{Break: xs[k-1], Left: left, Right: right}
			found = true
		}
	}
	if !found {
		return PiecewiseLinear{}, fmt.Errorf("%w: no valid breakpoint", ErrBadFit)
	}
	return best, nil
}
