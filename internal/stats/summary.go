package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by summary functions that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs.
// It returns 0 when fewer than two samples are provided.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the smallest value in xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest value in xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Quantile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between order statistics (type-7 estimator, the default in
// most statistical software).
func Quantile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 1 {
		return 0, errors.New("stats: quantile p outside [0,1]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	h := p * float64(len(sorted)-1)
	lo := int(math.Floor(h))
	hi := int(math.Ceil(h))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    mn,
		Max:    mx,
	}, nil
}
