package stats

import (
	"context"
	"fmt"
	"math"
	"math/rand"
)

// ExpectedMax returns E[max of n i.i.d. draws] from d.
//
// This is the denominator term E[max{Tp,i(n)}] of the statistic IPSO model
// (Eq. 8): with barrier synchronization, the split-phase response time is
// the slowest of the n parallel tasks. Closed forms are used where they
// exist; otherwise a seeded Monte Carlo estimate is returned.
func ExpectedMax(d Distribution, n int) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("stats: ExpectedMax needs n >= 1, got %d", n)
	}
	if err := validateDistribution(d); err != nil {
		return 0, err
	}
	switch v := d.(type) {
	case Deterministic:
		return v.Value, nil
	case Uniform:
		// E[max] = Low + (High−Low)·n/(n+1).
		return v.Low + (v.High-v.Low)*float64(n)/float64(n+1), nil
	case Exponential:
		// E[max] = H_n / Rate (harmonic number).
		h := 0.0
		for i := 1; i <= n; i++ {
			h += 1 / float64(i)
		}
		return h / v.Rate, nil
	case Scaled:
		inner, err := ExpectedMax(v.Base, n)
		if err != nil {
			return 0, err
		}
		return v.Factor * inner, nil
	default:
		return ExpectedMaxMC(context.Background(), d, n, 4096, 1)
	}
}

// ExpectedMaxMC estimates E[max of n draws] by Monte Carlo with the given
// number of replications and RNG seed. Deterministic for a fixed seed.
// The context is polled between replication batches so long estimates are
// cancellable.
func ExpectedMaxMC(ctx context.Context, d Distribution, n, reps int, seed int64) (float64, error) {
	if n < 1 || reps < 1 {
		return 0, fmt.Errorf("stats: ExpectedMaxMC needs n>=1 and reps>=1 (n=%d reps=%d)", n, reps)
	}
	if err := validateDistribution(d); err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	total := 0.0
	for r := 0; r < reps; r++ {
		if r%cancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		mx := math.Inf(-1)
		for i := 0; i < n; i++ {
			if x := d.Sample(rng); x > mx {
				mx = x
			}
		}
		total += mx
	}
	return total / float64(reps), nil
}

// cancelCheckEvery is how many Monte-Carlo iterations run between
// context polls: cheap enough to be invisible, frequent enough that a
// cancel lands within microseconds.
const cancelCheckEvery = 64

// StragglerInflation returns E[max of n]/mean for d — the multiplicative
// penalty that randomness adds to the split phase relative to the
// deterministic model. It is 1 for Deterministic and grows (boundedly, for
// bounded tails) with n.
func StragglerInflation(d Distribution, n int) (float64, error) {
	em, err := ExpectedMax(d, n)
	if err != nil {
		return 0, err
	}
	mean := d.Mean()
	if mean <= 0 {
		return 0, fmt.Errorf("stats: nonpositive mean %g", mean)
	}
	return em / mean, nil
}
