package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleMean(d Distribution, n int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	total := 0.0
	for i := 0; i < n; i++ {
		total += d.Sample(rng)
	}
	return total / float64(n)
}

func TestDistributionMeansMatchSamples(t *testing.T) {
	tests := []struct {
		name string
		d    Distribution
		tol  float64
	}{
		{name: "deterministic", d: Deterministic{Value: 3.5}, tol: 1e-12},
		{name: "uniform", d: Uniform{Low: 2, High: 6}, tol: 0.02},
		{name: "exponential", d: Exponential{Rate: 0.5}, tol: 0.03},
		{name: "lognormal", d: LogNormal{Mu: 0, Sigma: 0.5}, tol: 0.03},
		{name: "truncated-pareto", d: TruncatedPareto{Xm: 1, Alpha: 2, Cap: 50}, tol: 0.03},
		{name: "scaled", d: Scaled{Base: Uniform{Low: 0, High: 1}, Factor: 10}, tol: 0.05},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := sampleMean(tt.d, 200000, 42)
			want := tt.d.Mean()
			if !almostEqual(got, want, tt.tol) {
				t.Errorf("sample mean %g, analytic mean %g", got, want)
			}
		})
	}
}

func TestTruncatedParetoBounds(t *testing.T) {
	d := TruncatedPareto{Xm: 1, Alpha: 1.5, Cap: 20}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		x := d.Sample(rng)
		if x < d.Xm || x > d.Cap {
			t.Fatalf("sample %g outside [%g, %g]", x, d.Xm, d.Cap)
		}
	}
}

func TestTruncatedParetoAlphaOneMean(t *testing.T) {
	d := TruncatedPareto{Xm: 1, Alpha: 1, Cap: math.E}
	// Mean = ln(e)/ (1 − 1/e) = 1/(1−1/e).
	want := 1 / (1 - 1/math.E)
	if !almostEqual(d.Mean(), want, 1e-12) {
		t.Errorf("mean %g, want %g", d.Mean(), want)
	}
}

func TestValidateDistribution(t *testing.T) {
	bad := []Distribution{
		Uniform{Low: 5, High: 1},
		Exponential{Rate: -1},
		TruncatedPareto{Xm: -1, Alpha: 1, Cap: 2},
		TruncatedPareto{Xm: 1, Alpha: 1, Cap: 0.5},
	}
	for _, d := range bad {
		if err := validateDistribution(d); err == nil {
			t.Errorf("expected validation error for %#v", d)
		}
	}
	if err := validateDistribution(Deterministic{Value: 1}); err != nil {
		t.Errorf("deterministic should validate: %v", err)
	}
}

// Property: samples from Uniform stay within [Low, High] for arbitrary
// nonnegative widths.
func TestUniformSampleBoundsProperty(t *testing.T) {
	f := func(lo uint8, width uint8, seed int64) bool {
		d := Uniform{Low: float64(lo), High: float64(lo) + float64(width)}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			x := d.Sample(rng)
			if x < d.Low || x > d.High {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Scaled multiplies both mean and samples consistently.
func TestScaledConsistencyProperty(t *testing.T) {
	f := func(factor uint8, seed int64) bool {
		k := 1 + float64(factor%20)
		base := Uniform{Low: 1, High: 3}
		s := Scaled{Base: base, Factor: k}
		if !almostEqual(s.Mean(), k*base.Mean(), 1e-12) {
			return false
		}
		r1 := rand.New(rand.NewSource(seed))
		r2 := rand.New(rand.NewSource(seed))
		for i := 0; i < 10; i++ {
			if !almostEqual(s.Sample(r1), k*base.Sample(r2), 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
