package stats

import (
	"ipso/internal/obs"
)

// Fit-health instrumentation on the process-wide obs registry. Every
// model in the scaling-model zoo — and every other NonlinearFit caller —
// funnels through the same Levenberg-Marquardt solver, so these three
// families make fit quality scrapeable from /metrics: how many fits ran
// (and whether they met tolerance), how many iterations they spent, and
// where the final residuals landed.
var (
	nlsFits = obs.Default().CounterVec("stats_nls_fits_total",
		"Nonlinear least-squares fits, by whether the tolerance was reached.", "converged")
	nlsIterations = obs.Default().Histogram("stats_nls_iterations",
		"Levenberg-Marquardt iterations per fit.",
		[]float64{1, 2, 5, 10, 20, 50, 100, 200})
	nlsResidual = obs.Default().Histogram("stats_nls_final_sse",
		"Final sum of squared residuals per fit.",
		[]float64{1e-12, 1e-9, 1e-6, 1e-3, 1, 1e3, 1e6})
)

// reportNLS records one finished fit and passes the result through.
func reportNLS(res NLSResult) NLSResult {
	outcome := "false"
	if res.Converged {
		outcome = "true"
	}
	nlsFits.With(outcome).Inc()
	nlsIterations.Observe(float64(res.Iters))
	nlsResidual.Observe(res.SSE)
	return res
}
