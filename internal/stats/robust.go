package stats

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
)

// TheilSen computes the Theil-Sen estimator: the median of all pairwise
// slopes, with the intercept as the median of y − slope·x. It is robust
// to outliers — useful when a scaling-factor series contains a few
// measurements polluted by transient environment changes (the kind of
// "program execution environment changes" Section V warns scaling-factor
// prediction must watch for).
func TheilSen(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return LinearFit{}, fmt.Errorf("%w: need >=2 paired points", ErrBadFit)
	}
	slopes := make([]float64, 0, len(xs)*(len(xs)-1)/2)
	for i := 0; i < len(xs); i++ {
		for j := i + 1; j < len(xs); j++ {
			if xs[i] == xs[j] {
				continue
			}
			slopes = append(slopes, (ys[j]-ys[i])/(xs[j]-xs[i]))
		}
	}
	if len(slopes) == 0 {
		return LinearFit{}, fmt.Errorf("%w: all x values identical", ErrBadFit)
	}
	slope := median(slopes)
	residuals := make([]float64, len(xs))
	for i := range xs {
		residuals[i] = ys[i] - slope*xs[i]
	}
	intercept := median(residuals)

	// R² against the robust line (can be negative for terrible fits;
	// clamp to 0 as is conventional when reporting).
	var ssRes, ssTot float64
	my := Mean(ys)
	for i := range xs {
		r := ys[i] - (intercept + slope*xs[i])
		ssRes += r * r
		d := ys[i] - my
		ssTot += d * d
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
		if r2 < 0 {
			r2 = 0
		}
	} else if ssRes > 0 {
		r2 = 0
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

func median(xs []float64) float64 {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// WeightedLinear computes weighted least squares y ≈ a + b·x with the
// given nonnegative weights (at least two must be positive). Heavier
// weights pull the fit — e.g. weighting large-n measurements when the
// asymptotic regime matters most.
func WeightedLinear(xs, ys, ws []float64) (LinearFit, error) {
	if len(xs) != len(ys) || len(xs) != len(ws) || len(xs) < 2 {
		return LinearFit{}, fmt.Errorf("%w: need >=2 equally sized x/y/w", ErrBadFit)
	}
	var sw, swx, swy float64
	positive := 0
	for i := range xs {
		if ws[i] < 0 {
			return LinearFit{}, fmt.Errorf("%w: negative weight %g", ErrBadFit, ws[i])
		}
		if ws[i] > 0 {
			positive++
		}
		sw += ws[i]
		swx += ws[i] * xs[i]
		swy += ws[i] * ys[i]
	}
	if positive < 2 {
		return LinearFit{}, fmt.Errorf("%w: need at least two positive weights", ErrBadFit)
	}
	mx, my := swx/sw, swy/sw
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += ws[i] * dx * dx
		sxy += ws[i] * dx * (ys[i] - my)
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("%w: weighted x values degenerate", ErrBadFit)
	}
	slope := sxy / sxx
	intercept := my - slope*mx

	var ssRes, ssTot float64
	for i := range xs {
		r := ys[i] - (intercept + slope*xs[i])
		ssRes += ws[i] * r * r
		d := ys[i] - my
		ssTot += ws[i] * d * d
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	} else if ssRes > 0 {
		r2 = 0
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// BootstrapCI holds a percentile bootstrap confidence interval for a fit
// parameter.
type BootstrapCI struct {
	Low, High float64
	Point     float64
}

// Contains reports whether v lies within [Low, High].
func (ci BootstrapCI) Contains(v float64) bool { return v >= ci.Low && v <= ci.High }

// Width returns High − Low.
func (ci BootstrapCI) Width() float64 { return ci.High - ci.Low }

// BootstrapPowerLaw estimates percentile confidence intervals for the
// power-law fit y = c·x^e by resampling the points with replacement. It
// is the uncertainty machinery behind the paper's future-work goal of
// "quickly estimating the two scaling parameters, δ and γ": the online
// estimator declares convergence when the exponent's interval is narrow.
// reps resamples are drawn with the given seed; level is the coverage
// (e.g. 0.9). Resamples with fewer than two distinct x values are
// redrawn. The context is polled between resamples so long bootstraps
// are cancellable.
func BootstrapPowerLaw(ctx context.Context, xs, ys []float64, reps int, level float64, seed int64) (coeff, exponent BootstrapCI, err error) {
	if reps < 10 {
		return BootstrapCI{}, BootstrapCI{}, fmt.Errorf("%w: need >=10 bootstrap reps", ErrBadFit)
	}
	if level <= 0 || level >= 1 {
		return BootstrapCI{}, BootstrapCI{}, fmt.Errorf("%w: level %g outside (0,1)", ErrBadFit, level)
	}
	point, err := PowerLaw(xs, ys)
	if err != nil {
		return BootstrapCI{}, BootstrapCI{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	coeffs := make([]float64, 0, reps)
	exps := make([]float64, 0, reps)
	rx := make([]float64, len(xs))
	ry := make([]float64, len(ys))
	for r := 0; r < reps; r++ {
		if r%cancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return BootstrapCI{}, BootstrapCI{}, err
			}
		}
		fit, ok := resamplePowerLaw(rng, xs, ys, rx, ry)
		if !ok {
			continue
		}
		coeffs = append(coeffs, fit.Coeff)
		exps = append(exps, fit.Exponent)
	}
	if len(coeffs) < reps/2 {
		return BootstrapCI{}, BootstrapCI{}, fmt.Errorf("%w: too many degenerate resamples", ErrBadFit)
	}
	lo := (1 - level) / 2
	cLo, err := Quantile(coeffs, lo)
	if err != nil {
		return BootstrapCI{}, BootstrapCI{}, err
	}
	cHi, _ := Quantile(coeffs, 1-lo)
	eLo, _ := Quantile(exps, lo)
	eHi, _ := Quantile(exps, 1-lo)
	return BootstrapCI{Low: cLo, High: cHi, Point: point.Coeff},
		BootstrapCI{Low: eLo, High: eHi, Point: point.Exponent}, nil
}

func resamplePowerLaw(rng *rand.Rand, xs, ys, rx, ry []float64) (PowerFit, bool) {
	distinct := false
	for i := range xs {
		j := rng.Intn(len(xs))
		rx[i], ry[i] = xs[j], ys[j]
		if rx[i] != rx[0] {
			distinct = true
		}
	}
	if !distinct {
		return PowerFit{}, false
	}
	fit, err := PowerLaw(rx, ry)
	if err != nil {
		return PowerFit{}, false
	}
	return fit, true
}
