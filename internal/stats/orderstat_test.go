package stats

import (
	"context"
	"testing"
	"testing/quick"
)

func TestExpectedMaxClosedForms(t *testing.T) {
	tests := []struct {
		name string
		d    Distribution
		n    int
		want float64
	}{
		{name: "deterministic", d: Deterministic{Value: 7}, n: 100, want: 7},
		{name: "uniform-n1", d: Uniform{Low: 0, High: 1}, n: 1, want: 0.5},
		{name: "uniform-n3", d: Uniform{Low: 0, High: 1}, n: 3, want: 0.75},
		{name: "uniform-shifted", d: Uniform{Low: 2, High: 4}, n: 4, want: 2 + 2*4.0/5.0},
		{name: "exponential-n1", d: Exponential{Rate: 2}, n: 1, want: 0.5},
		{name: "exponential-n3", d: Exponential{Rate: 1}, n: 3, want: 1 + 0.5 + 1.0/3.0},
		{name: "scaled", d: Scaled{Base: Uniform{Low: 0, High: 1}, Factor: 10}, n: 3, want: 7.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := ExpectedMax(tt.d, tt.n)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("ExpectedMax = %g, want %g", got, tt.want)
			}
		})
	}
}

func TestExpectedMaxErrors(t *testing.T) {
	if _, err := ExpectedMax(Deterministic{Value: 1}, 0); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := ExpectedMax(Exponential{Rate: -1}, 2); err == nil {
		t.Error("invalid distribution should error")
	}
	if _, err := ExpectedMaxMC(context.Background(), Deterministic{Value: 1}, 1, 0, 1); err == nil {
		t.Error("reps=0 should error")
	}
}

func TestExpectedMaxMCAgreesWithClosedForm(t *testing.T) {
	d := Uniform{Low: 0, High: 1}
	for _, n := range []int{1, 2, 8, 32} {
		analytic, err := ExpectedMax(d, n)
		if err != nil {
			t.Fatal(err)
		}
		mc, err := ExpectedMaxMC(context.Background(), d, n, 20000, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(analytic, mc, 0.02) {
			t.Errorf("n=%d: analytic %g vs MC %g", n, analytic, mc)
		}
	}
}

func TestExpectedMaxMonteCarloFallback(t *testing.T) {
	// LogNormal has no closed form here; ExpectedMax must fall back to MC
	// and still be ≥ the mean.
	d := LogNormal{Mu: 0, Sigma: 0.25}
	got, err := ExpectedMax(d, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got < d.Mean() {
		t.Errorf("E[max of 16] = %g < mean %g", got, d.Mean())
	}
}

func TestStragglerInflation(t *testing.T) {
	infl, err := StragglerInflation(Deterministic{Value: 5}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if infl != 1 {
		t.Errorf("deterministic inflation = %g, want 1", infl)
	}
	infl, err = StragglerInflation(Uniform{Low: 0, High: 2}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(infl, 1.8, 1e-12) { // (2·9/10) / 1
		t.Errorf("uniform inflation = %g, want 1.8", infl)
	}
	if _, err := StragglerInflation(Deterministic{Value: 0}, 2); err == nil {
		t.Error("zero mean should error")
	}
}

// Property: E[max] is non-decreasing in n (bounded tails or not).
func TestExpectedMaxMonotoneProperty(t *testing.T) {
	f := func(k uint8) bool {
		n := int(k%64) + 1
		d := Uniform{Low: 1, High: 2}
		a, err1 := ExpectedMax(d, n)
		b, err2 := ExpectedMax(d, n+1)
		return err1 == nil && err2 == nil && b >= a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: for a bounded distribution, E[max] never exceeds the upper
// bound of the support — the finiteness the paper relies on when arguing
// that E[max{Tp,i(n)}] is upper bounded as n grows.
func TestExpectedMaxBoundedProperty(t *testing.T) {
	f := func(k uint8) bool {
		n := int(k)%200 + 1
		d := Uniform{Low: 0, High: 10}
		em, err := ExpectedMax(d, n)
		return err == nil && em <= 10 && em >= d.Mean()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
