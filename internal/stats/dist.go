package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// Distribution models a nonnegative task processing time Tp,i(n).
//
// The paper's statistic IPSO model (Eq. 8) treats per-task times as random
// variables so that long-tail effects — stragglers [17] and task queuing
// [18] — show up in E[max{Tp,i(n)}]. All distributions here have finite
// support or finite tails, matching the paper's observation that
// "the tail length of the task response time must be finite in practice",
// which is what makes E[max] bounded as n grows.
type Distribution interface {
	// Mean returns the expected value.
	Mean() float64
	// Sample draws one value using rng.
	Sample(rng *rand.Rand) float64
}

// Deterministic is a point mass: every task takes exactly Value.
// It reduces the statistic model to the deterministic model (Section IV).
type Deterministic struct{ Value float64 }

// Mean returns the constant value.
func (d Deterministic) Mean() float64 { return d.Value }

// Sample returns the constant value.
func (d Deterministic) Sample(*rand.Rand) float64 { return d.Value }

// Uniform is the continuous uniform distribution on [Low, High].
type Uniform struct{ Low, High float64 }

// Mean returns (Low+High)/2.
func (u Uniform) Mean() float64 { return (u.Low + u.High) / 2 }

// Sample draws uniformly from [Low, High).
func (u Uniform) Sample(rng *rand.Rand) float64 {
	return u.Low + rng.Float64()*(u.High-u.Low)
}

// Exponential has rate Rate (mean 1/Rate). Note its tail is unbounded, so
// E[max] grows like ln(n)/Rate — useful to contrast with bounded tails.
type Exponential struct{ Rate float64 }

// Mean returns 1/Rate.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Sample draws an exponential variate.
func (e Exponential) Sample(rng *rand.Rand) float64 {
	return rng.ExpFloat64() / e.Rate
}

// LogNormal has parameters Mu and Sigma of the underlying normal.
type LogNormal struct{ Mu, Sigma float64 }

// Mean returns exp(Mu + Sigma²/2).
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Sample draws a lognormal variate.
func (l LogNormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// TruncatedPareto is a Pareto distribution with shape Alpha and scale Xm,
// truncated at Cap. It models stragglers: heavy-tailed but with the finite
// maximum the paper requires for E[max{Tp,i(n)}] to be upper bounded.
type TruncatedPareto struct {
	Xm    float64 // scale (minimum value), > 0
	Alpha float64 // shape, > 0
	Cap   float64 // truncation point, > Xm
}

// Mean returns the mean of the truncated distribution.
func (p TruncatedPareto) Mean() float64 {
	if p.Alpha == 1 {
		// E = Xm·ln(Cap/Xm) / (1 − Xm/Cap)
		return p.Xm * math.Log(p.Cap/p.Xm) / (1 - p.Xm/p.Cap)
	}
	a := p.Alpha
	num := math.Pow(p.Xm, a) / (1 - math.Pow(p.Xm/p.Cap, a)) * a / (a - 1)
	return num * (math.Pow(p.Xm, 1-a) - math.Pow(p.Cap, 1-a))
}

// Sample draws from the truncated Pareto by inverse transform.
func (p TruncatedPareto) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	// CDF of truncation: F(x) = (1 − (Xm/x)^α) / (1 − (Xm/Cap)^α)
	denom := 1 - math.Pow(p.Xm/p.Cap, p.Alpha)
	x := p.Xm / math.Pow(1-u*denom, 1/p.Alpha)
	if x > p.Cap {
		x = p.Cap
	}
	return x
}

// Scaled wraps a distribution, multiplying every sample (and the mean) by
// Factor. It lets one base task-time distribution be reused across shard
// sizes: Tp,i(n) = shardWork(n) · Base.
type Scaled struct {
	Base   Distribution
	Factor float64
}

// Mean returns Factor · Base.Mean().
func (s Scaled) Mean() float64 { return s.Factor * s.Base.Mean() }

// Sample returns Factor · Base.Sample(rng).
func (s Scaled) Sample(rng *rand.Rand) float64 { return s.Factor * s.Base.Sample(rng) }

func validateDistribution(d Distribution) error {
	switch v := d.(type) {
	case Uniform:
		if v.High < v.Low {
			return fmt.Errorf("stats: uniform High < Low (%g < %g)", v.High, v.Low)
		}
	case Exponential:
		if v.Rate <= 0 {
			return fmt.Errorf("stats: exponential rate must be positive, got %g", v.Rate)
		}
	case TruncatedPareto:
		if v.Xm <= 0 || v.Alpha <= 0 || v.Cap <= v.Xm {
			return fmt.Errorf("stats: invalid truncated pareto %+v", v)
		}
	}
	return nil
}
