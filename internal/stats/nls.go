package stats

import (
	"fmt"
	"math"
)

// ModelFunc is a parametric curve y = f(params, x) fitted by NonlinearFit.
type ModelFunc func(params []float64, x float64) float64

// NLSOptions configures the Levenberg-Marquardt solver.
type NLSOptions struct {
	MaxIter int     // maximum iterations (default 200)
	Tol     float64 // relative SSE improvement tolerance (default 1e-12)
	Lambda0 float64 // initial damping (default 1e-3)
}

func (o NLSOptions) withDefaults() NLSOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.Tol <= 0 {
		o.Tol = 1e-12
	}
	if o.Lambda0 <= 0 {
		o.Lambda0 = 1e-3
	}
	return o
}

// NLSResult is the outcome of a nonlinear least-squares fit, including
// the solver's convergence report: how many Levenberg-Marquardt
// iterations were spent and whether the relative-improvement tolerance
// was actually reached (as opposed to stalling or exhausting MaxIter).
// Every fit is also exported to the process obs registry (stats_nls_*)
// so fit health is scrapeable from /metrics.
type NLSResult struct {
	Params []float64
	SSE    float64 // sum of squared residuals
	Iters  int
	// Converged reports that the solver stopped because no further
	// improvement was possible: the relative SSE improvement dropped
	// below NLSOptions.Tol, or the damping search stalled at a local
	// minimum. False means the iteration budget (MaxIter) ran out first —
	// the parameters are the best found, but the fit should be treated
	// as suspect and surfaced to the caller.
	Converged bool
}

// NonlinearFit minimizes Σ (ys[i] − f(p, xs[i]))² over p using the
// Levenberg-Marquardt algorithm with a forward-difference Jacobian,
// starting from initial parameters p0.
//
// Section V uses nonlinear regression to produce the matched curves for
// the Collaborative Filtering data (Fig. 8) and the Spark speedup surfaces
// (Figs. 9-10); this is that solver.
func NonlinearFit(f ModelFunc, xs, ys, p0 []float64, opts NLSOptions) (NLSResult, error) {
	if len(xs) != len(ys) {
		return NLSResult{}, fmt.Errorf("%w: len(xs)=%d len(ys)=%d", ErrBadFit, len(xs), len(ys))
	}
	if len(xs) < len(p0) {
		return NLSResult{}, fmt.Errorf("%w: %d points cannot determine %d parameters", ErrBadFit, len(xs), len(p0))
	}
	if len(p0) == 0 {
		return NLSResult{}, fmt.Errorf("%w: no parameters", ErrBadFit)
	}
	opts = opts.withDefaults()

	p := make([]float64, len(p0))
	copy(p, p0)
	m, np := len(xs), len(p)

	residuals := func(p []float64) ([]float64, float64) {
		r := make([]float64, m)
		sse := 0.0
		for i := range xs {
			r[i] = ys[i] - f(p, xs[i])
			sse += r[i] * r[i]
		}
		return r, sse
	}

	r, sse := residuals(p)
	if math.IsNaN(sse) || math.IsInf(sse, 0) {
		return NLSResult{}, fmt.Errorf("%w: model not finite at initial parameters", ErrBadFit)
	}
	lambda := opts.Lambda0

	jac := make([][]float64, m)
	for i := range jac {
		jac[i] = make([]float64, np)
	}

	iters := 0
	for ; iters < opts.MaxIter; iters++ {
		// Forward-difference Jacobian of the model (not the residual):
		// J[i][j] = ∂f(p, x_i)/∂p_j.
		for j := 0; j < np; j++ {
			h := 1e-7 * math.Max(1, math.Abs(p[j]))
			pj := p[j]
			p[j] = pj + h
			for i := range xs {
				jac[i][j] = (f(p, xs[i]) - (ys[i] - r[i])) / h
			}
			p[j] = pj
		}

		// Normal equations: (JᵀJ + λ·diag(JᵀJ))·Δ = Jᵀr.
		jtj := make([][]float64, np)
		jtr := make([]float64, np)
		for j := 0; j < np; j++ {
			jtj[j] = make([]float64, np)
			for k := 0; k <= j; k++ {
				s := 0.0
				for i := 0; i < m; i++ {
					s += jac[i][j] * jac[i][k]
				}
				jtj[j][k] = s
			}
			s := 0.0
			for i := 0; i < m; i++ {
				s += jac[i][j] * r[i]
			}
			jtr[j] = s
		}
		for j := 0; j < np; j++ {
			for k := j + 1; k < np; k++ {
				jtj[j][k] = jtj[k][j]
			}
		}

		improved := false
		for attempt := 0; attempt < 30; attempt++ {
			a := make([][]float64, np)
			for j := range a {
				a[j] = make([]float64, np)
				copy(a[j], jtj[j])
				a[j][j] += lambda * math.Max(jtj[j][j], 1e-12)
			}
			delta, ok := solveLinearSystem(a, jtr)
			if ok {
				cand := make([]float64, np)
				for j := range p {
					cand[j] = p[j] + delta[j]
				}
				rNew, sseNew := residuals(cand)
				if !math.IsNaN(sseNew) && sseNew < sse {
					rel := (sse - sseNew) / math.Max(sse, 1e-300)
					copy(p, cand)
					r, sse = rNew, sseNew
					lambda = math.Max(lambda*0.3, 1e-12)
					improved = true
					if rel < opts.Tol {
						return reportNLS(NLSResult{Params: p, SSE: sse, Iters: iters + 1, Converged: true}), nil
					}
					break
				}
			}
			lambda *= 10
			if lambda > 1e12 {
				break
			}
		}
		if !improved {
			break
		}
	}
	// Reaching here means either a damping stall (a local minimum to
	// machine precision — converged in practice) or MaxIter exhaustion.
	return reportNLS(NLSResult{Params: p, SSE: sse, Iters: iters, Converged: iters < opts.MaxIter}), nil
}

// SolveLinear solves the dense system a·x = b by Gaussian elimination
// with partial pivoting. It returns an error for singular or malformed
// systems; a and b are left untouched.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	if n == 0 {
		return nil, fmt.Errorf("%w: empty system", ErrBadFit)
	}
	ac := make([][]float64, n)
	for i := range ac {
		if len(a[i]) != n {
			return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrBadFit, i, len(a[i]), n)
		}
		ac[i] = make([]float64, n)
		copy(ac[i], a[i])
	}
	x, ok := solveLinearSystem(ac, b)
	if !ok {
		return nil, fmt.Errorf("%w: singular system", ErrBadFit)
	}
	return x, nil
}

// solveLinearSystem solves a·x = b by Gaussian elimination with partial
// pivoting. It reports false for singular systems. a is modified.
func solveLinearSystem(a [][]float64, b []float64) ([]float64, bool) {
	n := len(b)
	x := make([]float64, n)
	rhs := make([]float64, n)
	copy(rhs, b)
	for col := 0; col < n; col++ {
		pivot := col
		for row := col + 1; row < n; row++ {
			if math.Abs(a[row][col]) > math.Abs(a[pivot][col]) {
				pivot = row
			}
		}
		if math.Abs(a[pivot][col]) < 1e-300 {
			return nil, false
		}
		a[col], a[pivot] = a[pivot], a[col]
		rhs[col], rhs[pivot] = rhs[pivot], rhs[col]
		inv := 1 / a[col][col]
		for row := col + 1; row < n; row++ {
			factor := a[row][col] * inv
			if factor == 0 {
				continue
			}
			for k := col; k < n; k++ {
				a[row][k] -= factor * a[col][k]
			}
			rhs[row] -= factor * rhs[col]
		}
	}
	for row := n - 1; row >= 0; row-- {
		s := rhs[row]
		for k := row + 1; k < n; k++ {
			s -= a[row][k] * x[k]
		}
		x[row] = s / a[row][row]
	}
	return x, true
}

// FitHyperbolic fits y = a/x + b, the shape the paper uses for the
// Collaborative Filtering split-phase time E[max{Tp,i(n)}] (Fig. 8a):
// the fixed-size parallel work divides by n while a constant per-task
// overhead remains. The fit is linear in (1/x, y) so it is solved exactly.
func FitHyperbolic(xs, ys []float64) (a, b float64, err error) {
	inv := make([]float64, len(xs))
	for i, x := range xs {
		if x == 0 {
			return 0, 0, fmt.Errorf("%w: x must be nonzero", ErrBadFit)
		}
		inv[i] = 1 / x
	}
	lin, err := Linear(inv, ys)
	if err != nil {
		return 0, 0, err
	}
	return lin.Slope, lin.Intercept, nil
}
