package stats

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTheilSenExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2*x + 1
	}
	fit, err := TheilSen(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2, 1e-12) || !almostEqual(fit.Intercept, 1, 1e-12) {
		t.Errorf("fit %+v, want slope 2 intercept 1", fit)
	}
}

func TestTheilSenRobustToOutlier(t *testing.T) {
	// OLS is dragged by the outlier; Theil-Sen is not.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 0.36 * x
	}
	ys[7] = 100 // corrupted measurement

	robust, err := TheilSen(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	ols, err := Linear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(robust.Slope-0.36) > 0.05 {
		t.Errorf("Theil-Sen slope %g, want ≈0.36 despite outlier", robust.Slope)
	}
	if math.Abs(ols.Slope-0.36) < math.Abs(robust.Slope-0.36) {
		t.Error("OLS should be more affected by the outlier than Theil-Sen")
	}
}

func TestTheilSenErrors(t *testing.T) {
	if _, err := TheilSen([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
	if _, err := TheilSen([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("identical x should error")
	}
}

func TestWeightedLinear(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{1, 2, 3, 100} // last point is off the line y = x
	// Zero weight on the bad point recovers the exact line.
	fit, err := WeightedLinear(xs, ys, []float64{1, 1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 1, 1e-9) || !almostEqual(fit.Intercept, 0, 1e-9) {
		t.Errorf("fit %+v, want y = x", fit)
	}
	// Uniform weights reduce to OLS.
	w, err := WeightedLinear(xs, ys, []float64{2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	o, err := Linear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(w.Slope, o.Slope, 1e-9) || !almostEqual(w.Intercept, o.Intercept, 1e-9) {
		t.Errorf("uniform WLS %+v != OLS %+v", w, o)
	}
}

func TestWeightedLinearErrors(t *testing.T) {
	if _, err := WeightedLinear([]float64{1, 2}, []float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := WeightedLinear([]float64{1, 2}, []float64{1, 2}, []float64{1, -1}); err == nil {
		t.Error("negative weight should error")
	}
	if _, err := WeightedLinear([]float64{1, 2}, []float64{1, 2}, []float64{1, 0}); err == nil {
		t.Error("single positive weight should error")
	}
	if _, err := WeightedLinear([]float64{3, 3}, []float64{1, 2}, []float64{1, 1}); err == nil {
		t.Error("degenerate x should error")
	}
}

func TestBootstrapPowerLawCoversTruth(t *testing.T) {
	// Noisy q(n) = 0.0004·n² samples: the 90% interval for γ should cover
	// 2 and be reasonably tight with 8 points.
	rng := rand.New(rand.NewSource(5))
	var xs, ys []float64
	for _, n := range []float64{5, 10, 20, 30, 45, 60, 75, 90} {
		xs = append(xs, n)
		ys = append(ys, 4e-4*n*n*(1+0.05*rng.NormFloat64()))
	}
	_, expCI, err := BootstrapPowerLaw(context.Background(), xs, ys, 500, 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A single noisy draw need not cover the truth exactly, but the
	// interval must sit tightly around γ ≈ 2 and contain its own point
	// estimate.
	if expCI.Low < 1.8 || expCI.High > 2.25 {
		t.Errorf("γ interval [%g, %g] should sit near 2", expCI.Low, expCI.High)
	}
	if expCI.Width() > 0.5 {
		t.Errorf("γ interval width %g too wide", expCI.Width())
	}
	if !expCI.Contains(expCI.Point) {
		t.Errorf("interval [%g, %g] should contain the point estimate %g", expCI.Low, expCI.High, expCI.Point)
	}
	if math.Abs(expCI.Point-2) > 0.15 {
		t.Errorf("point estimate %g, want ≈2", expCI.Point)
	}
}

func TestBootstrapPowerLawErrors(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{1, 2, 3, 4}
	if _, _, err := BootstrapPowerLaw(context.Background(), xs, ys, 5, 0.9, 1); err == nil {
		t.Error("too few reps should error")
	}
	if _, _, err := BootstrapPowerLaw(context.Background(), xs, ys, 100, 1.5, 1); err == nil {
		t.Error("bad level should error")
	}
	if _, _, err := BootstrapPowerLaw(context.Background(), []float64{1, -2}, ys[:2], 100, 0.9, 1); err == nil {
		t.Error("invalid data should error")
	}
}

// Property: Theil-Sen recovers exact lines for arbitrary integer slopes
// and intercepts.
func TestTheilSenRoundTripProperty(t *testing.T) {
	f := func(slope, icept int8, count uint8) bool {
		n := int(count%12) + 2
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i)
			ys[i] = float64(icept) + float64(slope)*xs[i]
		}
		fit, err := TheilSen(xs, ys)
		if err != nil {
			return false
		}
		return almostEqual(fit.Slope, float64(slope), 1e-9) &&
			almostEqual(fit.Intercept, float64(icept), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: weighted fit with uniform weights matches OLS.
func TestWeightedEqualsOLSProperty(t *testing.T) {
	f := func(raw []uint8, wRaw uint8) bool {
		if len(raw) < 2 {
			return true
		}
		w := float64(wRaw%5) + 1
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		ws := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(i)
			ys[i] = float64(r)
			ws[i] = w
		}
		wls, err1 := WeightedLinear(xs, ys, ws)
		ols, err2 := Linear(xs, ys)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		return almostEqual(wls.Slope, ols.Slope, 1e-9) && almostEqual(wls.Intercept, ols.Intercept, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("median odd = %g, want 2", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("median even = %g, want 2.5", got)
	}
}
