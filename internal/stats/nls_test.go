package stats

import (
	"math"
	"testing"
)

func TestNonlinearFitHyperbola(t *testing.T) {
	// The Collaborative Filtering split-phase model: y = a/x + b with the
	// paper's approximate values a≈2001, b≈9 (Table I reconstruction).
	model := func(p []float64, x float64) float64 { return p[0]/x + p[1] }
	xs := []float64{10, 30, 60, 90}
	ys := []float64{209.0, 79.3, 43.7, 31.1}
	res, err := NonlinearFit(model, xs, ys, []float64{100, 1}, NLSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Params[0] < 1800 || res.Params[0] > 2200 {
		t.Errorf("a = %g, want ≈2000", res.Params[0])
	}
	if res.Params[1] < 5 || res.Params[1] > 13 {
		t.Errorf("b = %g, want ≈9", res.Params[1])
	}
}

func TestNonlinearFitPowerPlusConstant(t *testing.T) {
	// y = a·x^c + b, exact data — the solver should reach near-zero SSE.
	model := func(p []float64, x float64) float64 { return p[0]*math.Pow(x, p[2]) + p[1] }
	truth := []float64{0.6, 2.0, 1.0}
	xs := []float64{5, 10, 20, 40, 80, 160}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = model(truth, x)
	}
	res, err := NonlinearFit(model, xs, ys, []float64{1, 1, 0.5}, NLSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SSE > 1e-6 {
		t.Errorf("SSE = %g, want ~0 (params %v)", res.SSE, res.Params)
	}
	if !res.Converged || res.Iters < 1 {
		t.Errorf("exact data should converge (Converged=%v Iters=%d)", res.Converged, res.Iters)
	}
}

func TestNonlinearFitConvergenceReport(t *testing.T) {
	// One iteration can't reach tolerance on this curved problem: the
	// report must say so instead of pretending the fit is good.
	model := func(p []float64, x float64) float64 { return p[0] * math.Pow(x, p[1]) }
	xs := []float64{1, 2, 4, 8, 16}
	ys := []float64{1, 2.9, 8.1, 23, 66}
	res, err := NonlinearFit(model, xs, ys, []float64{10, 0.1}, NLSOptions{MaxIter: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("MaxIter=1 should not report convergence")
	}
	if res.Iters != 1 {
		t.Errorf("Iters = %d, want 1", res.Iters)
	}
}

func TestNonlinearFitErrors(t *testing.T) {
	model := func(p []float64, x float64) float64 { return p[0] * x }
	if _, err := NonlinearFit(model, []float64{1, 2}, []float64{1}, []float64{1}, NLSOptions{}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := NonlinearFit(model, []float64{1}, []float64{1}, []float64{1, 2}, NLSOptions{}); err == nil {
		t.Error("underdetermined should error")
	}
	if _, err := NonlinearFit(model, nil, nil, nil, NLSOptions{}); err == nil {
		t.Error("no parameters should error")
	}
	bad := func(p []float64, x float64) float64 { return math.NaN() }
	if _, err := NonlinearFit(bad, []float64{1}, []float64{1}, []float64{1}, NLSOptions{}); err == nil {
		t.Error("non-finite model should error")
	}
}

func TestSolveLinearSystem(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, ok := solveLinearSystem(a, b)
	if !ok {
		t.Fatal("system reported singular")
	}
	// 2x+y=5, x+3y=10 → x=1, y=3.
	if !almostEqual(x[0], 1, 1e-12) || !almostEqual(x[1], 3, 1e-12) {
		t.Errorf("solution %v, want [1 3]", x)
	}
	if _, ok := solveLinearSystem([][]float64{{1, 1}, {2, 2}}, []float64{1, 2}); ok {
		t.Error("singular system should report !ok")
	}
}

func TestFitHyperbolic(t *testing.T) {
	xs := []float64{10, 30, 60, 90}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2001/x + 9
	}
	a, b, err := FitHyperbolic(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a, 2001, 1e-9) || !almostEqual(b, 9, 1e-9) {
		t.Errorf("fit (%g, %g), want (2001, 9)", a, b)
	}
	if _, _, err := FitHyperbolic([]float64{0, 1}, []float64{1, 2}); err == nil {
		t.Error("zero x should error")
	}
}
