// Package stats provides the statistical substrate used throughout the IPSO
// reproduction: descriptive summaries, linear and power-law regression,
// nonlinear least squares (Levenberg-Marquardt), task-time distributions,
// and order statistics for E[max{Tp,i(n)}].
//
// The paper (Section IV) formulates IPSO as a statistic model whose split
// phase is characterized by the expected maximum of n task processing
// times; this package supplies both analytic expected maxima (for
// distributions where a closed form exists) and seeded Monte Carlo
// estimates (for the rest), plus the regression machinery Section V uses
// to estimate the scaling factors EX(n), IN(n) and q(n) from measurements.
package stats
