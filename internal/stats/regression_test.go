package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearExact(t *testing.T) {
	tests := []struct {
		name         string
		slope, icept float64
		xs           []float64
	}{
		{name: "identity", slope: 1, icept: 0, xs: []float64{1, 2, 3}},
		{name: "paper-sort-IN", slope: 0.36, icept: -0.11, xs: []float64{2, 4, 8, 16}},
		{name: "paper-terasort-IN", slope: 0.23, icept: 2.72, xs: []float64{16, 24, 32, 48, 64}},
		{name: "negative-slope", slope: -3.5, icept: 10, xs: []float64{0, 1, 2, 5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ys := make([]float64, len(tt.xs))
			for i, x := range tt.xs {
				ys[i] = tt.icept + tt.slope*x
			}
			fit, err := Linear(tt.xs, ys)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(fit.Slope, tt.slope, 1e-9) {
				t.Errorf("slope = %g, want %g", fit.Slope, tt.slope)
			}
			if !almostEqual(fit.Intercept, tt.icept, 1e-9) {
				t.Errorf("intercept = %g, want %g", fit.Intercept, tt.icept)
			}
			if !almostEqual(fit.R2, 1, 1e-9) {
				t.Errorf("R² = %g, want 1", fit.R2)
			}
		})
	}
}

func TestLinearErrors(t *testing.T) {
	if _, err := Linear([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
	if _, err := Linear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Linear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("constant x should error")
	}
}

func TestLinearNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 2.5*xs[i] + 4 + rng.NormFloat64()*0.01
	}
	fit, err := Linear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2.5, 1e-3) || !almostEqual(fit.Intercept, 4, 1e-2) {
		t.Errorf("fit %v, want slope 2.5 intercept 4", fit)
	}
	if fit.R2 < 0.9999 {
		t.Errorf("R² = %g, want ~1", fit.R2)
	}
}

func TestPowerLawExact(t *testing.T) {
	tests := []struct {
		name       string
		coeff, exp float64
	}{
		{name: "linear", coeff: 1, exp: 1},
		{name: "quadratic-q", coeff: 3.7e-4, exp: 2}, // CF's q(n) shape, γ=2
		{name: "sublinear", coeff: 2, exp: 0.5},
		{name: "constant", coeff: 5, exp: 0},
	}
	xs := []float64{1, 2, 4, 8, 16, 32}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ys := make([]float64, len(xs))
			for i, x := range xs {
				ys[i] = tt.coeff * math.Pow(x, tt.exp)
			}
			fit, err := PowerLaw(xs, ys)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(fit.Coeff, tt.coeff, 1e-9) || !almostEqual(fit.Exponent, tt.exp, 1e-9) {
				t.Errorf("fit %v, want coeff=%g exp=%g", fit, tt.coeff, tt.exp)
			}
		})
	}
}

func TestPowerLawRejectsNonpositive(t *testing.T) {
	if _, err := PowerLaw([]float64{1, -2}, []float64{1, 2}); err == nil {
		t.Error("negative x should error")
	}
	if _, err := PowerLaw([]float64{1, 2}, []float64{0, 2}); err == nil {
		t.Error("zero y should error")
	}
}

func TestFitPiecewiseLinear(t *testing.T) {
	// Mimics TeraSort's IN(n): slope 0.15 before the memory overflow at
	// n≈15, slope 0.25 after (Fig. 5).
	var xs, ys []float64
	for n := 2.0; n <= 40; n += 2 {
		xs = append(xs, n)
		if n <= 14 {
			ys = append(ys, 0.15*n+1)
		} else {
			ys = append(ys, 0.25*n+1)
		}
	}
	fit, err := FitPiecewiseLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Left.Slope, 0.15, 1e-6) {
		t.Errorf("left slope = %g, want 0.15", fit.Left.Slope)
	}
	if !almostEqual(fit.Right.Slope, 0.25, 1e-6) {
		t.Errorf("right slope = %g, want 0.25", fit.Right.Slope)
	}
	if fit.Break < 10 || fit.Break > 18 {
		t.Errorf("break = %g, want near 14", fit.Break)
	}
}

func TestFitPiecewiseLinearErrors(t *testing.T) {
	if _, err := FitPiecewiseLinear([]float64{1, 2, 3}, []float64{1, 2, 3}); err == nil {
		t.Error("too few points should error")
	}
	if _, err := FitPiecewiseLinear([]float64{3, 2, 1, 0}, []float64{1, 2, 3, 4}); err == nil {
		t.Error("unsorted xs should error")
	}
}

// Property: OLS recovers an exact linear relationship for arbitrary
// (slope, intercept) and any sample of >= 2 distinct integer x positions.
func TestLinearRoundTripProperty(t *testing.T) {
	f := func(slope, icept int8, count uint8) bool {
		n := int(count%16) + 2
		s, b := float64(slope), float64(icept)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i + 1)
			ys[i] = b + s*xs[i]
		}
		fit, err := Linear(xs, ys)
		if err != nil {
			return false
		}
		return almostEqual(fit.Slope, s, 1e-6) && almostEqual(fit.Intercept, b, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: power-law fit recovers exact (coeff, exponent) pairs.
func TestPowerLawRoundTripProperty(t *testing.T) {
	f := func(c, e uint8) bool {
		coeff := 0.1 + float64(c%50)/10 // 0.1 .. 5.0
		exp := float64(e%40)/10 - 1     // -1.0 .. 2.9
		xs := []float64{1, 2, 3, 5, 8, 13, 21}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = coeff * math.Pow(x, exp)
		}
		fit, err := PowerLaw(xs, ys)
		if err != nil {
			return false
		}
		return almostEqual(fit.Coeff, coeff, 1e-6) && almostEqual(fit.Exponent, exp, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
