// Package simtime is a deterministic discrete-event simulation kernel.
//
// The IPSO case studies replay cluster executions (MapReduce and
// Spark-like jobs) on a simulated datacenter; this package provides the
// virtual clock, the event queue, and the two queueing primitives those
// engines need: a FIFO single server (serialized resources such as a
// centralized job scheduler, a master NIC during broadcast, or a reducer's
// ingest link) and a counting resource (node containers/executor slots).
//
// Determinism: events scheduled for the same instant fire in scheduling
// order (a monotonically increasing sequence number breaks ties), so a
// simulation run is a pure function of its inputs.
package simtime

import (
	"errors"
	"fmt"
	"math"
)

// ErrNegativeDelay is returned when scheduling into the past.
var ErrNegativeDelay = errors.New("simtime: negative delay")

type event struct {
	at  float64
	seq uint64
	fn  func()
}

// before orders events by time, scheduling order breaking ties. seq is
// unique per engine, so this is a strict total order.
func (a event) before(b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Engine is the simulation executive: a virtual clock plus a time-ordered
// event queue. The zero value is not ready; use NewEngine.
//
// The queue is a binary min-heap maintained by hand rather than through
// container/heap: the interface indirection there boxes every event into
// an `any` on push and pop, which made heap churn the dominant allocation
// site of the cluster simulations.
type Engine struct {
	now    float64
	seq    uint64
	events []event
	ran    uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{events: make([]event, 0, 64)}
}

func (e *Engine) push(ev event) {
	h := append(e.events, ev)
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if h[p].before(h[i]) {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	e.events = h
}

func (e *Engine) pop() event {
	h := e.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release the closure
	h = h[:n]
	for i := 0; ; {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && h[r].before(h[c]) {
			c = r
		}
		if h[i].before(h[c]) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	e.events = h
	return top
}

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// EventsRun returns the number of events executed so far.
func (e *Engine) EventsRun() uint64 { return e.ran }

// Schedule enqueues fn to run delay seconds from now. A zero delay is
// allowed; the event runs after already-queued events at the same instant.
func (e *Engine) Schedule(delay float64, fn func()) error {
	if delay < 0 || math.IsNaN(delay) {
		return fmt.Errorf("%w: %g", ErrNegativeDelay, delay)
	}
	if fn == nil {
		return errors.New("simtime: nil event function")
	}
	e.seq++
	e.push(event{at: e.now + delay, seq: e.seq, fn: fn})
	return nil
}

// MustSchedule is Schedule for callers with statically valid arguments;
// it panics on error (programmer error, not runtime input).
func (e *Engine) MustSchedule(delay float64, fn func()) {
	if err := e.Schedule(delay, fn); err != nil {
		panic(err)
	}
}

// Run executes events in time order until the queue drains, then returns
// the final clock value.
func (e *Engine) Run() float64 {
	for len(e.events) > 0 {
		ev := e.pop()
		e.now = ev.at
		e.ran++
		ev.fn()
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, advancing the
// clock to min(deadline, last event time). Remaining events stay queued.
func (e *Engine) RunUntil(deadline float64) float64 {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		ev := e.pop()
		e.now = ev.at
		e.ran++
		ev.fn()
	}
	if e.now < deadline && len(e.events) > 0 {
		e.now = deadline
	}
	return e.now
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }
