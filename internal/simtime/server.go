package simtime

import "errors"

// Server is a FIFO single server: submitted work items are processed one
// at a time, each occupying the server for its service duration.
//
// It models every serialized component the paper identifies as a source of
// scale-out-induced workload Wo(n): a centralized job scheduler dispatching
// tasks one by one [7], a master node broadcasting a data shard to workers
// in turn [12], or the single reducer ingesting n mappers' outputs over one
// link (the TCP-incast-style bottleneck [13]).
type Server struct {
	eng *Engine

	busy    bool
	cur     serverItem   // item in service (valid while busy)
	queue   []serverItem // waiting items are queue[head:]
	head    int
	busyFor float64 // cumulative busy time (utilization accounting)
	finish  func()  // cached completion event; one closure per server, not per item
}

type serverItem struct {
	service float64
	started func()
	done    func()
}

// NewServer returns an idle FIFO server bound to eng.
func NewServer(eng *Engine) *Server {
	s := &Server{eng: eng}
	s.finish = func() {
		// Exactly the old per-item closure's order: the done hook runs
		// before the next item starts, so any events it schedules keep
		// their sequence numbers (and with them, run order).
		if done := s.cur.done; done != nil {
			done()
		}
		if s.head < len(s.queue) {
			next := s.queue[s.head]
			s.queue[s.head] = serverItem{} // release the hooks
			s.head++
			s.start(next)
			return
		}
		s.busy = false
		s.cur = serverItem{}
		s.queue = s.queue[:0] // drained: rewind so the backing array is reused
		s.head = 0
	}
	return s
}

// Submit enqueues a work item needing the given service time; done (may be
// nil) runs when the item completes service.
func (s *Server) Submit(service float64, done func()) error {
	return s.SubmitTracked(service, nil, done)
}

// SubmitTracked is Submit with an additional started hook that fires when
// the item begins service (after any queueing delay) — used to timestamp
// task starts exactly, the way real execution logs do.
func (s *Server) SubmitTracked(service float64, started, done func()) error {
	if service < 0 {
		return errors.New("simtime: negative service time")
	}
	if s.busy {
		s.queue = append(s.queue, serverItem{service: service, started: started, done: done})
		return nil
	}
	s.start(serverItem{service: service, started: started, done: done})
	return nil
}

func (s *Server) start(it serverItem) {
	s.busy = true
	s.busyFor += it.service
	s.cur = it
	if it.started != nil {
		it.started()
	}
	s.eng.MustSchedule(it.service, s.finish)
}

// BusyTime returns the cumulative service time started on this server.
func (s *Server) BusyTime() float64 { return s.busyFor }

// QueueLen returns the number of items waiting (excluding any in service).
func (s *Server) QueueLen() int { return len(s.queue) - s.head }

// Resource is a counting semaphore with a FIFO wait queue: Acquire grants
// a unit when one is free, otherwise queues the grant callback. It models
// bounded parallelism such as "one container per processing unit" or an
// executor's task slots.
type Resource struct {
	eng *Engine

	capacity int
	inUse    int
	waiters  []func()
}

// NewResource returns a resource with the given positive capacity.
func NewResource(eng *Engine, capacity int) (*Resource, error) {
	if capacity <= 0 {
		return nil, errors.New("simtime: resource capacity must be positive")
	}
	return &Resource{eng: eng, capacity: capacity}, nil
}

// Acquire requests one unit; granted (required) runs — at the current or a
// later simulation instant — once a unit is held.
func (r *Resource) Acquire(granted func()) error {
	if granted == nil {
		return errors.New("simtime: nil grant callback")
	}
	if r.inUse < r.capacity {
		r.inUse++
		r.eng.MustSchedule(0, granted)
		return nil
	}
	r.waiters = append(r.waiters, granted)
	return nil
}

// Release returns one unit, waking the oldest waiter if any.
func (r *Resource) Release() {
	if len(r.waiters) > 0 {
		next := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.eng.MustSchedule(0, next)
		return
	}
	if r.inUse > 0 {
		r.inUse--
	}
}

// InUse returns the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }

// Waiting returns the number of queued acquire requests.
func (r *Resource) Waiting() int { return len(r.waiters) }
