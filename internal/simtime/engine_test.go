package simtime

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	eng := NewEngine()
	var order []float64
	for _, d := range []float64{5, 1, 3, 2, 4} {
		d := d
		eng.MustSchedule(d, func() { order = append(order, eng.Now()) })
	}
	end := eng.Run()
	if end != 5 {
		t.Errorf("final clock %g, want 5", end)
	}
	if !sort.Float64sAreSorted(order) {
		t.Errorf("events out of order: %v", order)
	}
	if eng.EventsRun() != 5 {
		t.Errorf("EventsRun = %d, want 5", eng.EventsRun())
	}
}

func TestEngineTieBreakIsFIFO(t *testing.T) {
	eng := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		eng.MustSchedule(1, func() { order = append(order, i) })
	}
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break violated FIFO: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	eng := NewEngine()
	var times []float64
	eng.MustSchedule(1, func() {
		times = append(times, eng.Now())
		eng.MustSchedule(2, func() {
			times = append(times, eng.Now())
		})
	})
	end := eng.Run()
	if end != 3 {
		t.Errorf("final clock %g, want 3", end)
	}
	want := []float64{1, 3}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("times = %v, want %v", times, want)
		}
	}
}

func TestScheduleErrors(t *testing.T) {
	eng := NewEngine()
	if err := eng.Schedule(-1, func() {}); err == nil {
		t.Error("negative delay should error")
	}
	if err := eng.Schedule(math.NaN(), func() {}); err == nil {
		t.Error("NaN delay should error")
	}
	if err := eng.Schedule(1, nil); err == nil {
		t.Error("nil fn should error")
	}
}

func TestRunUntil(t *testing.T) {
	eng := NewEngine()
	fired := 0
	eng.MustSchedule(1, func() { fired++ })
	eng.MustSchedule(10, func() { fired++ })
	now := eng.RunUntil(5)
	if fired != 1 {
		t.Errorf("fired %d events by t=5, want 1", fired)
	}
	if now != 5 {
		t.Errorf("clock %g, want 5", now)
	}
	if eng.Pending() != 1 {
		t.Errorf("pending %d, want 1", eng.Pending())
	}
	eng.Run()
	if fired != 2 {
		t.Errorf("fired %d total, want 2", fired)
	}
}

func TestServerSerializesWork(t *testing.T) {
	eng := NewEngine()
	srv := NewServer(eng)
	var finish []float64
	for i := 0; i < 3; i++ {
		if err := srv.Submit(2, func() { finish = append(finish, eng.Now()) }); err != nil {
			t.Fatal(err)
		}
	}
	if srv.QueueLen() != 2 {
		t.Errorf("queue length %d, want 2", srv.QueueLen())
	}
	eng.Run()
	want := []float64{2, 4, 6}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish times %v, want %v", finish, want)
		}
	}
	if srv.BusyTime() != 6 {
		t.Errorf("busy time %g, want 6", srv.BusyTime())
	}
}

func TestServerRejectsNegativeService(t *testing.T) {
	srv := NewServer(NewEngine())
	if err := srv.Submit(-1, nil); err == nil {
		t.Error("negative service should error")
	}
}

func TestResourceLimitsConcurrency(t *testing.T) {
	eng := NewEngine()
	res, err := NewResource(eng, 2)
	if err != nil {
		t.Fatal(err)
	}
	var running, maxRunning int
	for i := 0; i < 6; i++ {
		if err := res.Acquire(func() {
			running++
			if running > maxRunning {
				maxRunning = running
			}
			eng.MustSchedule(1, func() {
				running--
				res.Release()
			})
		}); err != nil {
			t.Fatal(err)
		}
	}
	end := eng.Run()
	if maxRunning != 2 {
		t.Errorf("max concurrency %d, want 2", maxRunning)
	}
	if end != 3 { // 6 jobs of 1s through 2 slots
		t.Errorf("makespan %g, want 3", end)
	}
}

func TestResourceErrors(t *testing.T) {
	eng := NewEngine()
	if _, err := NewResource(eng, 0); err == nil {
		t.Error("zero capacity should error")
	}
	res, _ := NewResource(eng, 1)
	if err := res.Acquire(nil); err == nil {
		t.Error("nil callback should error")
	}
}

func TestResourceReleaseWithoutWaiters(t *testing.T) {
	eng := NewEngine()
	res, _ := NewResource(eng, 1)
	res.Release() // no-op on an idle resource
	if res.InUse() != 0 {
		t.Errorf("InUse = %d, want 0", res.InUse())
	}
}

// Property: for arbitrary delay multisets, the engine's final clock equals
// the maximum delay and events fire in nondecreasing time order.
func TestEngineOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		eng := NewEngine()
		var seen []float64
		maxDelay := 0.0
		for _, r := range raw {
			d := float64(r) / 100
			if d > maxDelay {
				maxDelay = d
			}
			eng.MustSchedule(d, func() { seen = append(seen, eng.Now()) })
		}
		end := eng.Run()
		if len(raw) == 0 {
			return end == 0
		}
		return end == maxDelay && sort.Float64sAreSorted(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a FIFO server's makespan equals the sum of service times.
func TestServerMakespanProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		eng := NewEngine()
		srv := NewServer(eng)
		total := 0.0
		for _, r := range raw {
			s := float64(r) / 10
			total += s
			if err := srv.Submit(s, nil); err != nil {
				return false
			}
		}
		end := eng.Run()
		return math.Abs(end-total) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
