package cluster

// Standard capacity constants used by the case studies. They mirror the
// paper's EMR setup in structure (128 MB block per processing unit,
// ~2 GB reducer memory) while using round simulated rates; IPSO only needs
// the ratios to be realistic.
const (
	// BlockBytes is one HDFS-style block: the per-processing-unit shard
	// for the fixed-time (memory-bounded) workloads of Section V.
	BlockBytes = 128 << 20 // 128 MB

	// ReducerMemoryBytes is the preconfigured reducer memory whose
	// overflow near n≈15 (n·128 MB > 2 GB) causes TeraSort's IN(n) step.
	ReducerMemoryBytes = 2 << 30 // 2 GB
)

// M4LargeWorker is the simulated stand-in for the paper's m4.large worker
// instances.
func M4LargeWorker() NodeSpec {
	return NodeSpec{
		CPURate:     100e6,              // 100M work units/s (≈ bytes/s of map work)
		MemoryBytes: ReducerMemoryBytes, // container memory
		DiskBW:      150e6,              // 150 MB/s spill bandwidth
		NICBW:       56e6,               // ≈450 Mbit/s, the paper's floor
	}
}

// M44XLargeMaster is the simulated stand-in for the paper's m4.4xlarge
// master instance (more CPU and network headroom than workers).
func M44XLargeMaster() NodeSpec {
	return NodeSpec{
		CPURate:     800e6,
		MemoryBytes: 64 << 30,
		DiskBW:      600e6,
		NICBW:       250e6,
	}
}

// DefaultConfig returns the EMR-like cluster used across the case studies.
func DefaultConfig(workers int) Config {
	return Config{
		Workers:      workers,
		Worker:       M4LargeWorker(),
		Master:       M44XLargeMaster(),
		DispatchTime: 0.002, // 2 ms of centralized scheduling per task
		Broadcast:    BroadcastSerial,
	}
}

// Cost models the speedup-versus-cost tradeoff the paper motivates:
// renting (workers+1) nodes for the job duration at a per-node-hour price.
func Cost(workers int, jobSeconds, pricePerNodeHour float64) float64 {
	return float64(workers+1) * jobSeconds / 3600 * pricePerNodeHour
}
