package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"ipso/internal/simtime"
)

func testConfig(workers int) Config {
	spec := NodeSpec{CPURate: 10, MemoryBytes: 100, DiskBW: 5, NICBW: 2}
	return Config{
		Workers:      workers,
		Worker:       spec,
		Master:       NodeSpec{CPURate: 100, MemoryBytes: 1000, DiskBW: 50, NICBW: 4},
		DispatchTime: 0.5,
	}
}

func mustCluster(t *testing.T, eng *simtime.Engine, cfg Config) *Cluster {
	t.Helper()
	c, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	eng := simtime.NewEngine()
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "zero workers", mutate: func(c *Config) { c.Workers = 0 }},
		{name: "negative dispatch", mutate: func(c *Config) { c.DispatchTime = -1 }},
		{name: "bad worker cpu", mutate: func(c *Config) { c.Worker.CPURate = 0 }},
		{name: "bad master nic", mutate: func(c *Config) { c.Master.NICBW = -5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testConfig(3)
			tt.mutate(&cfg)
			if _, err := New(eng, cfg); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := mustCluster(t, simtime.NewEngine(), testConfig(2))
	if c.Config().Broadcast != BroadcastSerial {
		t.Errorf("default broadcast = %d, want serial", c.Config().Broadcast)
	}
	if len(c.Workers()) != 2 {
		t.Errorf("workers = %d, want 2", len(c.Workers()))
	}
	if c.Master().ID != 0 || c.Workers()[1].ID != 2 {
		t.Error("node IDs not assigned as 0=master, workers 1..n")
	}
}

func TestWorkerIndexErrors(t *testing.T) {
	c := mustCluster(t, simtime.NewEngine(), testConfig(2))
	if _, err := c.Worker(-1); err == nil {
		t.Error("negative index should error")
	}
	if _, err := c.Worker(2); err == nil {
		t.Error("out-of-range index should error")
	}
	w, err := c.Worker(1)
	if err != nil || w.ID != 2 {
		t.Errorf("Worker(1) = %v, %v", w, err)
	}
}

func TestRunCPUTime(t *testing.T) {
	eng := simtime.NewEngine()
	c := mustCluster(t, eng, testConfig(1))
	w := c.Workers()[0]
	var done float64
	if err := w.RunCPU(30, func() { done = eng.Now() }); err != nil { // 30 units / 10 per s
		t.Fatal(err)
	}
	eng.Run()
	if done != 3 {
		t.Errorf("CPU completion at %g, want 3", done)
	}
	if w.CPUBusy() != 3 {
		t.Errorf("CPUBusy = %g, want 3", w.CPUBusy())
	}
	if err := w.RunCPU(-1, nil); err == nil {
		t.Error("negative work should error")
	}
}

func TestDiskIO(t *testing.T) {
	eng := simtime.NewEngine()
	c := mustCluster(t, eng, testConfig(1))
	w := c.Workers()[0]
	var done float64
	if err := w.DiskIO(10, func() { done = eng.Now() }); err != nil { // 10 bytes / 5 Bps
		t.Fatal(err)
	}
	eng.Run()
	if done != 2 {
		t.Errorf("disk completion at %g, want 2", done)
	}
	if err := w.DiskIO(-1, nil); err == nil {
		t.Error("negative bytes should error")
	}
}

func TestDispatchSerializes(t *testing.T) {
	eng := simtime.NewEngine()
	c := mustCluster(t, eng, testConfig(1))
	var finish []float64
	for i := 0; i < 4; i++ {
		if err := c.Dispatch(func() { finish = append(finish, eng.Now()) }); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	want := []float64{0.5, 1.0, 1.5, 2.0}
	for i := range want {
		if !almost(finish[i], want[i]) {
			t.Fatalf("dispatch completions %v, want %v", finish, want)
		}
	}
	if !almost(c.DispatchBusy(), 2.0) {
		t.Errorf("DispatchBusy = %g, want 2", c.DispatchBusy())
	}
}

func TestTransferUsesBottleneckBandwidthAndSerializesAtDest(t *testing.T) {
	eng := simtime.NewEngine()
	c := mustCluster(t, eng, testConfig(3))
	dst := c.Workers()[0]
	var finish []float64
	// Two concurrent 4-byte flows into the same node: NIC bw 2 B/s, so the
	// flows serialize: 2 s and 4 s (incast-style).
	for i := 0; i < 2; i++ {
		src := c.Workers()[i+1]
		if err := c.Transfer(src, dst, 4, func() { finish = append(finish, eng.Now()) }); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if !almost(finish[0], 2) || !almost(finish[1], 4) {
		t.Errorf("transfer completions %v, want [2 4]", finish)
	}
	if err := c.Transfer(dst, dst, -1, nil); err == nil {
		t.Error("negative size should error")
	}
}

func TestBroadcastSerialScalesWithWorkers(t *testing.T) {
	for _, n := range []int{1, 2, 5} {
		eng := simtime.NewEngine()
		c := mustCluster(t, eng, testConfig(n))
		var done float64
		// Master NIC 4 B/s, payload 8 bytes: serial broadcast ends at 2n.
		if err := c.Broadcast(8, func() { done = eng.Now() }); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if want := 2 * float64(n); !almost(done, want) {
			t.Errorf("n=%d: serial broadcast done at %g, want %g", n, done, want)
		}
	}
}

func TestBroadcastParallelIndependentOfWorkers(t *testing.T) {
	for _, n := range []int{1, 4, 16} {
		eng := simtime.NewEngine()
		cfg := testConfig(n)
		cfg.Broadcast = BroadcastParallel
		c := mustCluster(t, eng, cfg)
		var done float64
		if err := c.Broadcast(8, func() { done = eng.Now() }); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if !almost(done, 2) {
			t.Errorf("n=%d: parallel broadcast done at %g, want 2", n, done)
		}
	}
}

func TestBroadcastErrors(t *testing.T) {
	eng := simtime.NewEngine()
	c := mustCluster(t, eng, testConfig(1))
	if err := c.Broadcast(-1, nil); err == nil {
		t.Error("negative size should error")
	}
}

func TestUtilizationAccounting(t *testing.T) {
	eng := simtime.NewEngine()
	c := mustCluster(t, eng, testConfig(2))
	w := c.Workers()[0]
	if err := w.DiskIO(10, nil); err != nil { // 2 s at 5 B/s
		t.Fatal(err)
	}
	if err := c.Transfer(c.Workers()[1], w, 4, nil); err != nil { // 2 s at 2 B/s
		t.Fatal(err)
	}
	if err := c.Broadcast(8, nil); err != nil { // 2 workers × 2 s
		t.Fatal(err)
	}
	eng.Run()
	if got := w.DiskBusy(); !almost(got, 2) {
		t.Errorf("DiskBusy = %g, want 2", got)
	}
	if got := w.NICBusy(); !almost(got, 2) {
		t.Errorf("NICBusy = %g, want 2", got)
	}
	if got := c.MasterEgressBusy(); !almost(got, 4) {
		t.Errorf("MasterEgressBusy = %g, want 4", got)
	}
}

func TestCost(t *testing.T) {
	// 4 workers + master = 5 nodes for half an hour at $2/node-hour.
	if got := Cost(4, 1800, 2); !almost(got, 5) {
		t.Errorf("Cost = %g, want 5", got)
	}
}

func TestStandardSpecsValid(t *testing.T) {
	cfg := DefaultConfig(8)
	if err := cfg.validate(); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
	if cfg.Worker.MemoryBytes != float64(ReducerMemoryBytes) {
		t.Errorf("worker memory %g, want %d", cfg.Worker.MemoryBytes, ReducerMemoryBytes)
	}
}

// Property: serial broadcast completion time is exactly n·(bytes/bw), i.e.
// linear in the scale-out degree — the mechanism behind γ=2 for the
// fixed-size CF workload.
func TestSerialBroadcastLinearProperty(t *testing.T) {
	f := func(workers, payload uint8) bool {
		n := int(workers%20) + 1
		b := float64(payload%50 + 1)
		eng := simtime.NewEngine()
		c, err := New(eng, testConfig(n))
		if err != nil {
			return false
		}
		var done float64
		if err := c.Broadcast(b, func() { done = eng.Now() }); err != nil {
			return false
		}
		eng.Run()
		return almost(done, float64(n)*b/4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9*math.Max(1, math.Abs(b)) }
