// Package cluster simulates the datacenter substrate the IPSO case studies
// ran on: a homogeneous pool of worker nodes plus a master node, connected
// by a star network, with a centralized dispatcher.
//
// The paper's experiments used Amazon EC2/EMR (m4.large workers behind an
// m4.4xlarge master, one container per processing unit). This package is
// the simulated stand-in: it does not reproduce EC2's absolute speeds, but
// it reproduces the *mechanisms* the paper attributes scaling behavior to:
//
//   - a serialized central dispatcher, whose per-task service time turns
//     into scale-out-induced workload Wo(n) that grows with n [7];
//   - serialized master broadcast, which makes per-iteration broadcast cost
//     grow linearly in n and hence q(n) ∝ n² for fixed-size workloads [12];
//   - a single reducer ingest link, serializing the shuffle like the
//     TCP-incast effect [13];
//   - per-node memory capacity, whose overflow forces disk spill (the
//     TeraSort IN(n) step of Fig. 5).
package cluster

import (
	"errors"
	"fmt"

	"ipso/internal/simtime"
)

// BroadcastMode selects how the master ships one payload to all workers.
type BroadcastMode int

const (
	// BroadcastSerial sends to workers one at a time through the master
	// NIC (total time ∝ n·bytes). This is the mode that produces the
	// pathological IVs scaling of the Collaborative Filtering case study.
	BroadcastSerial BroadcastMode = iota + 1
	// BroadcastParallel models an idealized tree/cornet-style broadcast
	// whose time is independent of n (ablation counterfactual).
	BroadcastParallel
)

// NodeSpec describes one machine's capacities. All rates are per second.
type NodeSpec struct {
	CPURate     float64 // abstract work units per second
	MemoryBytes float64 // RAM available to a container/executor
	DiskBW      float64 // bytes/s for spill reads+writes (combined)
	NICBW       float64 // bytes/s for each of ingress and egress
}

func (s NodeSpec) validate() error {
	if s.CPURate <= 0 || s.MemoryBytes <= 0 || s.DiskBW <= 0 || s.NICBW <= 0 {
		return fmt.Errorf("cluster: node spec fields must be positive: %+v", s)
	}
	return nil
}

// Config describes the simulated cluster.
type Config struct {
	Workers int      // number of worker nodes (processing units), >= 1
	Worker  NodeSpec // worker node capacities
	Master  NodeSpec // master node capacities

	// DispatchTime is the master's service time to schedule one task
	// (queueing at the centralized scheduler serializes dispatches).
	DispatchTime float64
	// Broadcast selects the broadcast mechanism (default BroadcastSerial).
	Broadcast BroadcastMode
}

func (c Config) withDefaults() Config {
	if c.Broadcast == 0 {
		c.Broadcast = BroadcastSerial
	}
	return c
}

func (c Config) validate() error {
	if c.Workers < 1 {
		return fmt.Errorf("cluster: need at least 1 worker, got %d", c.Workers)
	}
	if c.DispatchTime < 0 {
		return fmt.Errorf("cluster: negative dispatch time %g", c.DispatchTime)
	}
	if err := c.Worker.validate(); err != nil {
		return err
	}
	return c.Master.validate()
}

// Node is one simulated machine: a single-container CPU, an ingest link,
// and a disk, each a FIFO server (the paper's setup runs one container per
// processing unit, so CPU concurrency is 1).
type Node struct {
	Spec NodeSpec
	ID   int // 0 = master, workers are 1..n

	cpu  *simtime.Server
	nic  *simtime.Server // ingress; serializes concurrent incoming flows
	disk *simtime.Server
}

// RunCPU schedules work abstract units on the node CPU; done fires at
// completion.
func (nd *Node) RunCPU(work float64, done func()) error {
	return nd.RunCPUTracked(work, nil, done)
}

// RunCPUTracked is RunCPU with a started hook that fires when the CPU
// actually begins the work (after any queueing behind earlier tasks).
func (nd *Node) RunCPUTracked(work float64, started, done func()) error {
	if work < 0 {
		return errors.New("cluster: negative CPU work")
	}
	return nd.cpu.SubmitTracked(work/nd.Spec.CPURate, started, done)
}

// DiskIO schedules bytes of spill traffic on the node disk.
func (nd *Node) DiskIO(bytes float64, done func()) error {
	if bytes < 0 {
		return errors.New("cluster: negative disk bytes")
	}
	return nd.disk.Submit(bytes/nd.Spec.DiskBW, done)
}

// CPUBusy returns cumulative CPU busy seconds (for phase accounting).
func (nd *Node) CPUBusy() float64 { return nd.cpu.BusyTime() }

// NICBusy returns cumulative ingress-NIC busy seconds.
func (nd *Node) NICBusy() float64 { return nd.nic.BusyTime() }

// DiskBusy returns cumulative disk busy seconds.
func (nd *Node) DiskBusy() float64 { return nd.disk.BusyTime() }

// Cluster is the simulated datacenter.
type Cluster struct {
	Eng *simtime.Engine

	cfg       Config
	master    *Node
	workers   []*Node
	dispatch  *simtime.Server // centralized scheduler
	masterOut *simtime.Server // master egress NIC (serial broadcast)
}

// New builds a cluster on the given engine.
func New(eng *simtime.Engine, cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		Eng:       eng,
		cfg:       cfg,
		dispatch:  simtime.NewServer(eng),
		masterOut: simtime.NewServer(eng),
	}
	c.master = newNode(eng, cfg.Master, 0)
	c.workers = make([]*Node, cfg.Workers)
	for i := range c.workers {
		c.workers[i] = newNode(eng, cfg.Worker, i+1)
	}
	return c, nil
}

func newNode(eng *simtime.Engine, spec NodeSpec, id int) *Node {
	return &Node{
		Spec: spec,
		ID:   id,
		cpu:  simtime.NewServer(eng),
		nic:  simtime.NewServer(eng),
		disk: simtime.NewServer(eng),
	}
}

// Config returns the cluster configuration (with defaults applied).
func (c *Cluster) Config() Config { return c.cfg }

// Master returns the master node.
func (c *Cluster) Master() *Node { return c.master }

// Workers returns the worker nodes. The returned slice must not be
// modified.
func (c *Cluster) Workers() []*Node { return c.workers }

// Worker returns worker i (0-based).
func (c *Cluster) Worker(i int) (*Node, error) {
	if i < 0 || i >= len(c.workers) {
		return nil, fmt.Errorf("cluster: worker index %d out of range [0,%d)", i, len(c.workers))
	}
	return c.workers[i], nil
}

// Dispatch runs one task-scheduling operation through the centralized
// scheduler; done fires when the dispatcher has processed it. With n
// outstanding dispatches the k-th completes at k·DispatchTime — the
// serialization that the paper identifies as a job-scaling bottleneck.
func (c *Cluster) Dispatch(done func()) error {
	return c.dispatch.Submit(c.cfg.DispatchTime, done)
}

// DispatchBusy returns cumulative scheduler busy seconds.
func (c *Cluster) DispatchBusy() float64 { return c.dispatch.BusyTime() }

// MasterEgressBusy returns cumulative master-NIC busy seconds — the
// serialized broadcast cost that becomes Wo(n) in the CF case study.
func (c *Cluster) MasterEgressBusy() float64 { return c.masterOut.BusyTime() }

// Transfer moves bytes from one node to another; the transfer occupies the
// destination's ingress NIC, so concurrent flows into the same node
// serialize (the incast-style single-reducer bottleneck).
func (c *Cluster) Transfer(from, to *Node, bytes float64, done func()) error {
	if bytes < 0 {
		return errors.New("cluster: negative transfer size")
	}
	bw := from.Spec.NICBW
	if to.Spec.NICBW < bw {
		bw = to.Spec.NICBW
	}
	return to.nic.Submit(bytes/bw, done)
}

// Broadcast ships bytes from the master to every worker; done fires when
// the last worker has the payload.
func (c *Cluster) Broadcast(bytes float64, done func()) error {
	if bytes < 0 {
		return errors.New("cluster: negative broadcast size")
	}
	n := len(c.workers)
	switch c.cfg.Broadcast {
	case BroadcastSerial:
		// Each send occupies the master egress NIC in turn: last worker
		// receives at n·bytes/bw. Wo grows linearly in n; for a
		// fixed-size workload that is q(n) ∝ n² (γ=2) per Eq. (6).
		remaining := n
		arrived := func() { // one shared callback for all n sends
			remaining--
			if remaining == 0 && done != nil {
				done()
			}
		}
		for i := 0; i < n; i++ {
			if err := c.masterOut.Submit(bytes/c.master.Spec.NICBW, arrived); err != nil {
				return err
			}
		}
		return nil
	case BroadcastParallel:
		// Idealized pipelined tree broadcast: completion time is one
		// payload transmission regardless of n.
		return c.Eng.Schedule(bytes/c.master.Spec.NICBW, done)
	default:
		return fmt.Errorf("cluster: unknown broadcast mode %d", c.cfg.Broadcast)
	}
}
