package core

import (
	"errors"
	"fmt"
	"math"

	"ipso/internal/stats"
)

// Measurements holds per-scale-out-degree workload measurements extracted
// from execution traces, in the units of Section V: seconds of sequential
// processing time on one processing unit.
type Measurements struct {
	N []float64 // scale-out degrees (ascending)
	// Wp is the total parallelizable workload Wp(n) (sum of map-task
	// times).
	Wp []float64
	// Ws is the serial workload Ws(n) (everything attributed to the
	// merging phase: the paper attributes all non-map time to it).
	Ws []float64
	// Wo is the scale-out-induced workload Wo(n) (overheads present in
	// the scale-out execution but absent from the sequential one). May be
	// nil when negligible.
	Wo []float64
	// MaxTask is the measured E[max{Tp,i(n)}]. May be nil for purely
	// deterministic analysis.
	MaxTask []float64
	// Wp1 and Ws1, when positive, override the n = 1 normalization
	// baselines. They let factors be fitted over a window that excludes
	// n = 1 (the paper fits TeraSort over 16 <= n <= 64 but still
	// normalizes against the measured n = 1 run).
	Wp1 float64
	Ws1 float64
	// SerialPrecision is the measurement precision of the serial phase:
	// a serial baseline at or below it is treated as zero (η = 1, IN = 1).
	// The paper's experiments measure with one-second precision, so its
	// QMC case — with a sub-second merge — reads as having no serial
	// portion at all.
	SerialPrecision float64
}

// Validate checks shape consistency.
func (m Measurements) Validate() error {
	if len(m.N) == 0 {
		return errors.New("core: no measurements")
	}
	if len(m.Wp) != len(m.N) || len(m.Ws) != len(m.N) {
		return fmt.Errorf("core: Wp/Ws lengths (%d/%d) must match N (%d)", len(m.Wp), len(m.Ws), len(m.N))
	}
	if m.Wo != nil && len(m.Wo) != len(m.N) {
		return fmt.Errorf("core: Wo length %d must match N (%d)", len(m.Wo), len(m.N))
	}
	if m.MaxTask != nil && len(m.MaxTask) != len(m.N) {
		return fmt.Errorf("core: MaxTask length %d must match N (%d)", len(m.MaxTask), len(m.N))
	}
	for i := 1; i < len(m.N); i++ {
		if m.N[i] <= m.N[i-1] {
			return errors.New("core: N must be strictly ascending")
		}
	}
	return nil
}

// baseline returns the n = 1 reference value for a series: the measured
// value at n = 1 if present, otherwise a linear extrapolation to n = 1
// from the first two points.
func baseline(ns, ys []float64) (float64, error) {
	if ns[0] == 1 {
		return ys[0], nil
	}
	if len(ns) < 2 {
		return 0, errors.New("core: need n=1 or at least two points to extrapolate a baseline")
	}
	fit, err := stats.Linear(ns[:2], ys[:2])
	if err != nil {
		return 0, err
	}
	return fit.Eval(1), nil
}

// FactorSeries normalizes a workload series into a scaling-factor series:
// f(n) = W(n)/W(1) (Eqs. 3-4). The n = 1 workload is measured or
// extrapolated.
func FactorSeries(ns, ws []float64) ([]float64, error) {
	if len(ns) != len(ws) || len(ns) == 0 {
		return nil, errors.New("core: factor series needs equal, nonempty inputs")
	}
	w1, err := baseline(ns, ws)
	if err != nil {
		return nil, err
	}
	if w1 <= 0 {
		return nil, fmt.Errorf("core: nonpositive baseline workload %g", w1)
	}
	out := make([]float64, len(ws))
	for i := range ws {
		out[i] = ws[i] / w1
	}
	return out, nil
}

// Estimates are the fitted scaling factors and asymptotic parameters
// produced by Estimate — the quantities Section V derives from
// measurement before predicting speedups.
type Estimates struct {
	// Eta is η from the n = 1 phase breakdown.
	Eta float64
	// EXFit and INFit are linear fits of the external and internal
	// factor series (the paper's Fig. 6 regressions).
	EXFit stats.LinearFit
	INFit stats.LinearFit
	// INStep is a two-segment fit of IN(n), populated when a breakpoint
	// fits markedly better (the TeraSort memory-overflow step, Fig. 5).
	INStep *stats.PiecewiseLinear
	// Epsilon is the power-law fit ε(n) ≈ α·n^δ.
	Epsilon stats.PowerFit
	// QFit is the power-law fit q(n) ≈ β·n^γ; zero when Wo is absent or
	// negligible.
	QFit stats.PowerFit
	// HasOverhead reports whether a non-negligible q(n) was fitted.
	HasOverhead bool
}

// Asymptotic packages the estimates as the (η, α, δ, β, γ) parameter set.
func (e Estimates) Asymptotic() Asymptotic {
	a := Asymptotic{Eta: e.Eta, Alpha: e.Epsilon.Coeff, Delta: e.Epsilon.Exponent}
	if e.HasOverhead {
		a.Beta = e.QFit.Coeff
		a.Gamma = e.QFit.Exponent
	}
	return a
}

// GrowthFactor returns the fitted workload-growth function
// η·EX(n) + (1−η)·IN(n) — the factor by which the n-degree workload
// exceeds the n = 1 workload. It uses the two-segment IN fit when one
// was detected. This is what converts a speedup into a job time for
// fixed-time workloads (see ProvisionInput.JobSeconds).
func (e Estimates) GrowthFactor() func(n float64) float64 {
	ex := e.EXFit.Eval
	in := e.INFit.Eval
	if e.INStep != nil {
		step := *e.INStep
		in = step.Eval
	}
	eta := e.Eta
	return func(n float64) float64 {
		return eta*ex(n) + (1-eta)*in(n)
	}
}

// stepImprovement is how much smaller (fraction) the two-segment SSE must
// be before the step fit is reported.
const stepImprovement = 0.5

// Estimate fits the scaling factors from measurements, following the
// Section V procedure: normalize Wp and Ws into EX(n) and IN(n), regress
// them linearly (with a breakpoint search on IN for environment changes
// such as memory overflow), fit ε(n) and q(n) as power laws, and compute
// η from the n = 1 phase times.
func Estimate(m Measurements) (Estimates, error) {
	if err := m.Validate(); err != nil {
		return Estimates{}, err
	}
	if len(m.N) < 2 {
		return Estimates{}, errors.New("core: need at least two scale-out degrees to fit factors")
	}

	wp1 := m.Wp1
	if wp1 <= 0 {
		var err error
		wp1, err = baseline(m.N, m.Wp)
		if err != nil {
			return Estimates{}, err
		}
	}
	ws1 := m.Ws1
	if ws1 <= 0 {
		var err error
		ws1, err = baseline(m.N, m.Ws)
		if err != nil {
			return Estimates{}, err
		}
	}
	if ws1 < 0 {
		return Estimates{}, fmt.Errorf("core: negative serial baseline %g", ws1)
	}
	if ws1 <= m.SerialPrecision {
		ws1 = 0
	}
	eta, err := EtaFromPhases(wp1, ws1)
	if err != nil {
		return Estimates{}, err
	}
	if wp1 <= 0 {
		return Estimates{}, fmt.Errorf("core: nonpositive parallel baseline %g", wp1)
	}

	ex := make([]float64, len(m.Wp))
	for i := range m.Wp {
		ex[i] = m.Wp[i] / wp1
	}
	exFit, err := stats.Linear(m.N, ex)
	if err != nil {
		return Estimates{}, fmt.Errorf("core: EX fit: %w", err)
	}

	est := Estimates{Eta: eta, EXFit: exFit}

	// Serial portion: a workload with (near-)zero serial time has IN = 1.
	in := make([]float64, len(m.N))
	if ws1 == 0 {
		for i := range in {
			in[i] = 1
		}
	} else {
		for i := range m.Ws {
			in[i] = m.Ws[i] / ws1
		}
	}
	inFit, err := stats.Linear(m.N, in)
	if err != nil {
		return Estimates{}, fmt.Errorf("core: IN fit: %w", err)
	}
	est.INFit = inFit

	// Breakpoint search for step-wise internal scaling (Fig. 5). Report
	// the two-segment fit only when it reduces a non-trivial residual
	// decisively AND the segment slopes differ meaningfully — an exact
	// single line must never be reported as a step.
	if step, err := stats.FitPiecewiseLinear(m.N, in); err == nil {
		sse1 := linearSSE(inFit, m.N, in)
		sse2 := piecewiseSSE(step, m.N, in)
		meanIN := stats.Mean(in)
		slopeScale := math.Max(math.Abs(step.Left.Slope), math.Abs(step.Right.Slope))
		slopesDiffer := slopeScale > 0 &&
			math.Abs(step.Left.Slope-step.Right.Slope) > 0.15*slopeScale
		if sse1 > 1e-9*meanIN*meanIN*float64(len(in)) && sse2 < stepImprovement*sse1 && slopesDiffer {
			s := step
			est.INStep = &s
		}
	}

	// In-proportion ratio ε(n) = EX(n)/IN(n) ≈ α·n^δ.
	eps := make([]float64, len(m.N))
	for i := range eps {
		if in[i] <= 0 {
			return Estimates{}, fmt.Errorf("core: nonpositive IN(%g) = %g", m.N[i], in[i])
		}
		eps[i] = ex[i] / in[i]
	}
	epsFit, err := stats.PowerLaw(m.N, eps)
	if err != nil {
		return Estimates{}, fmt.Errorf("core: ε fit: %w", err)
	}
	est.Epsilon = epsFit

	// Scale-out-induced factor q(n) = n·Wo(n)/Wp(n) (Eq. 6 rearranged).
	// Wo is treated as negligible — the paper's finding for all four
	// MapReduce cases — when the mean q across the grid stays below 5%.
	if m.Wo != nil {
		qs := make([]float64, 0, len(m.N))
		ns := make([]float64, 0, len(m.N))
		qSum := 0.0
		for i := range m.N {
			if m.Wp[i] <= 0 {
				return Estimates{}, fmt.Errorf("core: nonpositive Wp(%g)", m.N[i])
			}
			q := m.N[i] * m.Wo[i] / m.Wp[i]
			qSum += q
			if q > 1e-9 {
				ns = append(ns, m.N[i])
				qs = append(qs, q)
			}
		}
		if qSum/float64(len(m.N)) > 0.05 && len(qs) >= 2 {
			qFit, err := stats.PowerLaw(ns, qs)
			if err != nil {
				return Estimates{}, fmt.Errorf("core: q fit: %w", err)
			}
			est.QFit = qFit
			est.HasOverhead = true
		}
	}
	return est, nil
}

func linearSSE(fit stats.LinearFit, xs, ys []float64) float64 {
	sse := 0.0
	for i := range xs {
		r := ys[i] - fit.Eval(xs[i])
		sse += r * r
	}
	return sse
}

func piecewiseSSE(fit stats.PiecewiseLinear, xs, ys []float64) float64 {
	sse := 0.0
	for i := range xs {
		r := ys[i] - fit.Eval(xs[i])
		sse += r * r
	}
	return sse
}
