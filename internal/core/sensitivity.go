package core

import (
	"fmt"
	"sort"
)

// Sensitivity quantifies how strongly the speedup at a given scale-out
// degree depends on each asymptotic parameter: the elasticity
// (∂S/∂p)·(p/S), estimated by central finite differences. It answers the
// diagnostic question "which factor is the binding constraint here?" —
// e.g. for Sort at large n the speedup is dominated by δ (in-proportion
// scaling), while for Collaborative Filtering it is dominated by γ.
type Sensitivity struct {
	Eta   float64
	Alpha float64
	Delta float64
	Beta  float64
	Gamma float64
}

// relStep is the relative finite-difference step.
const relStep = 1e-4

// Sensitivities computes the parameter elasticities of S(n).
func Sensitivities(a Asymptotic, n float64) (Sensitivity, error) {
	if err := a.Validate(); err != nil {
		return Sensitivity{}, err
	}
	if n < 1 {
		return Sensitivity{}, fmt.Errorf("core: n = %g must be >= 1", n)
	}
	base, err := a.Speedup(n)
	if err != nil {
		return Sensitivity{}, err
	}
	if base <= 0 {
		return Sensitivity{}, fmt.Errorf("core: nonpositive speedup %g at n=%g", base, n)
	}

	elasticity := func(get func(*Asymptotic) *float64) (float64, error) {
		lo, hi := a, a
		pLo, pHi := get(&lo), get(&hi)
		p := *get(&a)
		if p == 0 {
			return 0, nil // zero parameters have no multiplicative response
		}
		h := relStep * p
		*pLo = p - h
		*pHi = p + h
		if err := clampAsymptotic(&lo); err != nil {
			return 0, err
		}
		if err := clampAsymptotic(&hi); err != nil {
			return 0, err
		}
		sLo, err := lo.Speedup(n)
		if err != nil {
			return 0, err
		}
		sHi, err := hi.Speedup(n)
		if err != nil {
			return 0, err
		}
		return (sHi - sLo) / (2 * h) * p / base, nil
	}

	var s Sensitivity
	fields := []struct {
		out *float64
		get func(*Asymptotic) *float64
	}{
		{out: &s.Eta, get: func(x *Asymptotic) *float64 { return &x.Eta }},
		{out: &s.Alpha, get: func(x *Asymptotic) *float64 { return &x.Alpha }},
		{out: &s.Delta, get: func(x *Asymptotic) *float64 { return &x.Delta }},
		{out: &s.Beta, get: func(x *Asymptotic) *float64 { return &x.Beta }},
		{out: &s.Gamma, get: func(x *Asymptotic) *float64 { return &x.Gamma }},
	}
	for _, f := range fields {
		v, err := elasticity(f.get)
		if err != nil {
			return Sensitivity{}, err
		}
		*f.out = v
	}
	return s, nil
}

// clampAsymptotic keeps perturbed parameters in their domains. When a
// perturbation moves η off the η = 1 boundary of a model that carried no
// α (α is undefined at η = 1), the neutral continuation α = 1 is used.
func clampAsymptotic(a *Asymptotic) error {
	if a.Eta > 1 {
		a.Eta = 1
	}
	if a.Eta < 0 {
		a.Eta = 0
	}
	if a.Eta < 1 && a.Alpha <= 0 {
		a.Alpha = 1
	}
	if a.Beta < 0 {
		a.Beta = 0
	}
	if a.Gamma < 0 {
		a.Gamma = 0
	}
	return nil
}

// Dominant returns the parameter names ordered by |elasticity|,
// largest first.
func (s Sensitivity) Dominant() []string {
	type pv struct {
		name string
		v    float64
	}
	ps := []pv{
		{name: "eta", v: abs(s.Eta)},
		{name: "alpha", v: abs(s.Alpha)},
		{name: "delta", v: abs(s.Delta)},
		{name: "beta", v: abs(s.Beta)},
		{name: "gamma", v: abs(s.Gamma)},
	}
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].v > ps[j].v })
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.name
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
