package core

import (
	"errors"
	"fmt"
	"math"
)

// SpeedupCurve is the minimal capability provisioning needs from a
// fitted model: evaluate S(n). Both the deterministic IPSO Model and
// every ScalingModel in the zoo satisfy it.
type SpeedupCurve interface {
	Speedup(n float64) (float64, error)
}

// ProvisionInput describes a provisioning question: a fitted scaling
// model for the application, the sequential job time at n = 1, and the
// per-node-hour price. The paper motivates IPSO precisely for "informed
// datacenter resource provisioning decisions ... to achieve the best
// speedup-versus-cost tradeoffs" — but the question is model-agnostic,
// so any SpeedupCurve answers it.
type ProvisionInput struct {
	Model SpeedupCurve
	// Growth is the workload-growth factor W(n)/W(1) (see
	// Estimates.GrowthFactor). When nil, it is derived from an IPSO
	// Model as η·EX(n) + (1−η)·IN(n), and taken as 1 (fixed-size) for
	// any other curve.
	Growth func(n float64) float64
	// SeqJobSeconds is the sequential execution time of the n = 1 job
	// (T(1)). For fixed-time workloads the job grows with n; JobSeconds
	// accounts for that through Growth.
	SeqJobSeconds float64
	// PricePerNodeHour is the rental price of one processing unit.
	PricePerNodeHour float64
	// MaxN bounds the search.
	MaxN int
}

func (p ProvisionInput) validate() error {
	if p.Model == nil {
		return errors.New("core: provisioning needs a fitted model")
	}
	if v, ok := p.Model.(interface{ Validate() error }); ok {
		if err := v.Validate(); err != nil {
			return err
		}
	}
	if p.SeqJobSeconds <= 0 {
		return fmt.Errorf("core: sequential job time %g must be positive", p.SeqJobSeconds)
	}
	if p.PricePerNodeHour <= 0 {
		return fmt.Errorf("core: price %g must be positive", p.PricePerNodeHour)
	}
	if p.MaxN < 1 {
		return fmt.Errorf("core: MaxN = %d must be >= 1", p.MaxN)
	}
	return nil
}

// growth evaluates the workload-growth factor at n.
func (p ProvisionInput) growth(n float64) float64 {
	if p.Growth != nil {
		return p.Growth(n)
	}
	if m, ok := p.Model.(Model); ok {
		return m.Eta*m.EX(n) + (1-m.Eta)*m.IN(n)
	}
	return 1
}

// JobSeconds returns the parallel job time at scale-out degree n: the
// workload at n divided by the speedup, i.e.
// T(n) = T(1) · (η·EX(n) + (1−η)·IN(n)) / S(n).
func (p ProvisionInput) JobSeconds(n float64) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	s, err := p.Model.Speedup(n)
	if err != nil {
		return 0, err
	}
	return p.SeqJobSeconds * p.growth(n) / s, nil
}

// CostDollars returns the rental cost of running the job at degree n:
// (n+1) nodes (n split units plus the merge unit) for the job duration.
func (p ProvisionInput) CostDollars(n float64) (float64, error) {
	t, err := p.JobSeconds(n)
	if err != nil {
		return 0, err
	}
	return (n + 1) * t / 3600 * p.PricePerNodeHour, nil
}

// ProvisionPoint is one candidate operating point.
type ProvisionPoint struct {
	N       int
	Speedup float64
	Seconds float64
	Dollars float64
}

// Sweep evaluates all operating points n = 1..MaxN.
func (p ProvisionInput) Sweep() ([]ProvisionPoint, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	out := make([]ProvisionPoint, 0, p.MaxN)
	for n := 1; n <= p.MaxN; n++ {
		fn := float64(n)
		s, err := p.Model.Speedup(fn)
		if err != nil {
			return nil, err
		}
		t, err := p.JobSeconds(fn)
		if err != nil {
			return nil, err
		}
		c, err := p.CostDollars(fn)
		if err != nil {
			return nil, err
		}
		out = append(out, ProvisionPoint{N: n, Speedup: s, Seconds: t, Dollars: c})
	}
	return out, nil
}

// BestSpeedupPerDollar returns the operating point maximizing S(n)/cost —
// the "best speedup-versus-cost tradeoff".
func (p ProvisionInput) BestSpeedupPerDollar() (ProvisionPoint, error) {
	points, err := p.Sweep()
	if err != nil {
		return ProvisionPoint{}, err
	}
	best := points[0]
	bestRatio := best.Speedup / best.Dollars
	for _, pt := range points[1:] {
		if r := pt.Speedup / pt.Dollars; r > bestRatio {
			best, bestRatio = pt, r
		}
	}
	return best, nil
}

// CheapestWithinDeadline returns the lowest-cost operating point whose
// job time meets the deadline. It reports an error when no n ≤ MaxN
// meets it — for pathological scaling types that answer can be "none",
// which is exactly the insight IPSO adds over the classic laws.
func (p ProvisionInput) CheapestWithinDeadline(deadlineSeconds float64) (ProvisionPoint, error) {
	if deadlineSeconds <= 0 {
		return ProvisionPoint{}, fmt.Errorf("core: deadline %g must be positive", deadlineSeconds)
	}
	points, err := p.Sweep()
	if err != nil {
		return ProvisionPoint{}, err
	}
	best := ProvisionPoint{Dollars: math.Inf(1)}
	found := false
	for _, pt := range points {
		if pt.Seconds <= deadlineSeconds && pt.Dollars < best.Dollars {
			best = pt
			found = true
		}
	}
	if !found {
		return ProvisionPoint{}, errors.New("core: no scale-out degree within MaxN meets the deadline")
	}
	return best, nil
}

// HardScaleOutLimit returns the degree beyond which adding nodes reduces
// the speedup (the paper's "hard scale-out degree upper bound" — n ≈ 60
// for Collaborative Filtering). ok is false when the speedup is still
// non-decreasing at MaxN.
func (p ProvisionInput) HardScaleOutLimit() (limit int, ok bool, err error) {
	points, err := p.Sweep()
	if err != nil {
		return 0, false, err
	}
	for i := 1; i < len(points); i++ {
		if points[i].Speedup < points[i-1].Speedup {
			return points[i-1].N, true, nil
		}
	}
	return 0, false, nil
}
