package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAsymptoticValidate(t *testing.T) {
	bad := []Asymptotic{
		{Eta: -0.1, Alpha: 1},
		{Eta: 1.5, Alpha: 1},
		{Eta: 0.5, Alpha: 0},
		{Eta: 0.5, Alpha: 1, Beta: -1},
		{Eta: 0.5, Alpha: 1, Gamma: -1},
		{Eta: 0.5, Alpha: 1, Gamma: 1, Beta: 0}, // overhead exponent without coefficient
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("case %d (%+v) should be invalid", i, a)
		}
	}
	good := Asymptotic{Eta: 1} // α irrelevant when η = 1
	if err := good.Validate(); err != nil {
		t.Errorf("η=1 without α should validate: %v", err)
	}
}

// The ten classification cases of Figs. 2 and 3.
func TestClassify(t *testing.T) {
	tests := []struct {
		name string
		a    Asymptotic
		w    WorkloadType
		want ScalingType
	}{
		// Fixed-time (Fig. 2).
		{name: "It via δ=1", a: Asymptotic{Eta: 0.8, Alpha: 1, Delta: 1}, w: FixedTime, want: TypeIt},
		{name: "It via η=1", a: Asymptotic{Eta: 1}, w: FixedTime, want: TypeIt},
		{name: "IIt sublinear overhead", a: Asymptotic{Eta: 0.8, Alpha: 1, Delta: 1, Beta: 0.1, Gamma: 0.5}, w: FixedTime, want: TypeIIt},
		{name: "IIt partial in-proportion", a: Asymptotic{Eta: 0.8, Alpha: 1, Delta: 0.5}, w: FixedTime, want: TypeIIt},
		{name: "IIt η=1 sublinear overhead", a: Asymptotic{Eta: 1, Beta: 0.2, Gamma: 0.7}, w: FixedTime, want: TypeIIt},
		{name: "IIIt1 full in-proportion", a: Asymptotic{Eta: 0.59, Alpha: 2.6, Delta: 0}, w: FixedTime, want: TypeIIIt1},
		{name: "IIIt1 in-proportion with mild overhead", a: Asymptotic{Eta: 0.59, Alpha: 2.6, Delta: 0, Beta: 0.01, Gamma: 0.5}, w: FixedTime, want: TypeIIIt1},
		{name: "IIIt2 linear overhead", a: Asymptotic{Eta: 0.8, Alpha: 1, Delta: 1, Beta: 0.05, Gamma: 1}, w: FixedTime, want: TypeIIIt2},
		{name: "IIIt2 η=1 linear overhead", a: Asymptotic{Eta: 1, Beta: 0.05, Gamma: 1}, w: FixedTime, want: TypeIIIt2},
		{name: "IVt superlinear overhead", a: Asymptotic{Eta: 0.8, Alpha: 1, Delta: 1, Beta: 0.001, Gamma: 2}, w: FixedTime, want: TypeIVt},
		{name: "IVt η=1 superlinear", a: Asymptotic{Eta: 1, Beta: 0.0004, Gamma: 2}, w: FixedTime, want: TypeIVt},
		// Fixed-size (Fig. 3).
		{name: "Is", a: Asymptotic{Eta: 1}, w: FixedSize, want: TypeIs},
		{name: "IIs", a: Asymptotic{Eta: 1, Beta: 0.2, Gamma: 0.5}, w: FixedSize, want: TypeIIs},
		{name: "IIIs1 Amdahl", a: Asymptotic{Eta: 0.9, Alpha: 1}, w: FixedSize, want: TypeIIIs1},
		{name: "IIIs1 with sublinear overhead", a: Asymptotic{Eta: 0.9, Alpha: 1, Beta: 0.1, Gamma: 0.5}, w: FixedSize, want: TypeIIIs1},
		{name: "IIIs2 linear overhead", a: Asymptotic{Eta: 0.9, Alpha: 1, Beta: 0.05, Gamma: 1}, w: FixedSize, want: TypeIIIs2},
		{name: "IVs CF", a: Asymptotic{Eta: 1, Beta: 3.7e-4, Gamma: 2}, w: FixedSize, want: TypeIVs},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := tt.a.Classify(tt.w)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("Classify = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestClassifyDomainErrors(t *testing.T) {
	if _, err := (Asymptotic{Eta: 0.5, Alpha: 1, Delta: 2}).Classify(FixedTime); err == nil {
		t.Error("δ > 1 should be rejected for fixed-time")
	}
	if _, err := (Asymptotic{Eta: 0.5, Alpha: 1, Delta: 0.5}).Classify(FixedSize); err == nil {
		t.Error("δ ≠ 0 should be rejected for fixed-size")
	}
	if _, err := (Asymptotic{Eta: 0.5, Alpha: 1}).Classify(WorkloadType(99)); err == nil {
		t.Error("unknown workload type should error")
	}
}

func TestTypeMetadata(t *testing.T) {
	if TypeIIIt1.String() != "IIIt,1" || TypeIVs.String() != "IVs" {
		t.Error("type names do not match the paper's notation")
	}
	for _, p := range []ScalingType{TypeIIIt1, TypeIIIt2, TypeIVt, TypeIVs} {
		if !p.Pathological() {
			t.Errorf("%v should be pathological", p)
		}
	}
	for _, u := range []ScalingType{TypeIt, TypeIIt, TypeIs, TypeIIs} {
		if u.Pathological() {
			t.Errorf("%v should not be pathological", u)
		}
		if u.Bounded() {
			t.Errorf("%v should be unbounded", u)
		}
		if u.Describe() == "unknown scaling type" {
			t.Errorf("%v lacks a description", u)
		}
	}
}

func TestBoundClosedForms(t *testing.T) {
	// IIIt,1: S → (ηα + (1−η))/(1−η). Sort-like: η=0.59, α=2.6.
	a := Asymptotic{Eta: 0.59, Alpha: 2.6, Delta: 0}
	limit, bounded, err := a.Bound(FixedTime)
	if err != nil || !bounded {
		t.Fatalf("Bound: %v bounded=%v", err, bounded)
	}
	want := (0.59*2.6 + 0.41) / 0.41
	if !almostEqual(limit, want, 1e-12) {
		t.Errorf("IIIt,1 bound %g, want %g", limit, want)
	}
	// The speedup must actually approach (and not exceed) the bound.
	s, err := a.Speedup(1e6)
	if err != nil {
		t.Fatal(err)
	}
	if s > limit || s < 0.99*limit {
		t.Errorf("S(1e6) = %g does not approach bound %g", s, limit)
	}

	// IIIt,2 with δ > 0: S → 1/β.
	b := Asymptotic{Eta: 0.8, Alpha: 1, Delta: 1, Beta: 0.04, Gamma: 1}
	limit, bounded, _ = b.Bound(FixedTime)
	if !bounded || !almostEqual(limit, 25, 1e-12) {
		t.Errorf("IIIt,2 bound %g, want 25", limit)
	}
	s, _ = b.Speedup(1e7)
	if s > limit || s < 0.99*limit {
		t.Errorf("S(1e7) = %g does not approach bound %g", s, limit)
	}

	// IIIs,2 with δ = 0: S → (ηα+1−η)/(ηαβ+1−η).
	c := Asymptotic{Eta: 0.9, Alpha: 1, Beta: 0.05, Gamma: 1}
	limit, bounded, _ = c.Bound(FixedSize)
	want = (0.9 + 0.1) / (0.9*0.05 + 0.1)
	if !bounded || !almostEqual(limit, want, 1e-12) {
		t.Errorf("IIIs,2 bound %g, want %g", limit, want)
	}

	// Unbounded type.
	d := Asymptotic{Eta: 1}
	if _, bounded, _ := d.Bound(FixedTime); bounded {
		t.Error("It should be unbounded")
	}

	// Peaked type: limit 0 (S → 0).
	e := Asymptotic{Eta: 1, Beta: 1e-3, Gamma: 2}
	limit, bounded, _ = e.Bound(FixedTime)
	if !bounded || limit != 0 {
		t.Errorf("IVt bound (%g, %v), want (0, true)", limit, bounded)
	}
}

func TestPeakMatchesCFAnalysis(t *testing.T) {
	// CF: S(n) = n/(1+βn²) peaks at n = 1/√β. With β = 3.7e-4 → n ≈ 52.
	a := Asymptotic{Eta: 1, Beta: 3.7e-4, Gamma: 2}
	nStar, sStar, err := a.Peak(200)
	if err != nil {
		t.Fatal(err)
	}
	analytic := 1 / math.Sqrt(3.7e-4)
	if math.Abs(nStar-analytic) > 1.0 {
		t.Errorf("peak at n=%g, want ≈%g", nStar, analytic)
	}
	if sStar < 20 || sStar > 30 {
		t.Errorf("peak speedup %g, want ≈26 (n*/2)", sStar)
	}
	if _, _, err := a.Peak(0); err == nil {
		t.Error("nMax < 1 should error")
	}
}

func TestAsymptoticSpeedupEquation16(t *testing.T) {
	// Hand-evaluated Eq. (16): η=0.5, α=2, δ=0.5, β=0.1, γ=0.5, n=16.
	a := Asymptotic{Eta: 0.5, Alpha: 2, Delta: 0.5, Beta: 0.1, Gamma: 0.5}
	got, err := a.Speedup(16)
	if err != nil {
		t.Fatal(err)
	}
	num := 0.5*2*4 + 0.5
	den := 0.5*2*(4.0/16)*(1+0.1*4) + 0.5
	if !almostEqual(got, num/den, 1e-12) {
		t.Errorf("S(16) = %g, want %g", got, num/den)
	}
}

func TestAsymptoticModelConsistency(t *testing.T) {
	// The Model conversion must agree with the Asymptotic formula.
	cases := []struct {
		a Asymptotic
		w WorkloadType
	}{
		{a: Asymptotic{Eta: 0.59, Alpha: 2.6, Delta: 0}, w: FixedTime},
		{a: Asymptotic{Eta: 0.8, Alpha: 1.5, Delta: 0.5, Beta: 0.05, Gamma: 0.8}, w: FixedTime},
		{a: Asymptotic{Eta: 1, Beta: 3.7e-4, Gamma: 2}, w: FixedSize},
	}
	for _, tc := range cases {
		m, err := tc.a.Model(tc.w)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []float64{1, 4, 30, 100} {
			want, err := tc.a.Speedup(n)
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.Speedup(n)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got, want, 1e-9) {
				t.Errorf("%+v at n=%g: model %g vs asymptotic %g", tc.a, n, got, want)
			}
		}
	}
}

// Property: classification is total over the valid parameter grid and
// bounded types' speedups respect their bounds over a wide n range.
func TestBoundsRespectedProperty(t *testing.T) {
	f := func(etaRaw, alphaRaw, deltaRaw, betaRaw, gammaRaw uint8) bool {
		a := Asymptotic{
			Eta:   float64(etaRaw%100)/100 + 0.01, // avoid η=0 (degenerate)
			Alpha: float64(alphaRaw%40)/10 + 0.1,
			Delta: float64(deltaRaw%11) / 10,
			Beta:  float64(betaRaw%20) / 100,
			Gamma: float64(gammaRaw%30) / 10,
		}
		if a.Eta > 1 {
			a.Eta = 1
		}
		if a.Beta == 0 {
			a.Gamma = 0
		}
		typ, err := a.Classify(FixedTime)
		if err != nil {
			return true // out of domain (e.g. δ>1 impossible here) — skip
		}
		limit, bounded, err := a.Bound(FixedTime)
		if err != nil {
			return false
		}
		if !bounded {
			return true
		}
		if typ == TypeIVt {
			return true // bound 0 is the n→∞ limit, not a running bound
		}
		for _, n := range []float64{1, 2, 5, 17, 129, 4097} {
			s, err := a.Speedup(n)
			if err != nil || s > limit*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: for peaked types the speedup eventually falls below 1 — the
// "negative speedup" (slower than sequential) region of Section III.
func TestPeakedTypesEventuallySlowerThanSequentialProperty(t *testing.T) {
	f := func(betaRaw, gammaRaw uint8) bool {
		a := Asymptotic{
			Eta:   1,
			Beta:  float64(betaRaw%50)/1000 + 0.001,
			Gamma: 1.1 + float64(gammaRaw%10)/10,
		}
		typ, err := a.Classify(FixedTime)
		if err != nil || typ != TypeIVt {
			return false
		}
		// β·n^γ > 2n once n exceeds (2/β)^(1/(γ−1)); there S < 1.
		nCross := math.Pow(2/a.Beta, 1/(a.Gamma-1))
		s, err := a.Speedup(math.Max(2, 2*nCross))
		return err == nil && s < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
