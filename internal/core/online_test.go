package core

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// synthProbe builds a ProbeFunc from a ground-truth model with optional
// multiplicative measurement noise.
func synthProbe(truth Model, tp1, ts1, noise float64, seed int64) ProbeFunc {
	rng := rand.New(rand.NewSource(seed))
	jitter := func() float64 {
		if noise == 0 {
			return 1
		}
		return 1 + noise*(2*rng.Float64()-1)
	}
	return func(_ context.Context, n int) (Observation, error) {
		fn := float64(n)
		wp := tp1 * truth.EX(fn) * jitter()
		ws := ts1 * truth.IN(fn) * jitter()
		wo := wp / fn * truth.Q(fn)
		return Observation{N: fn, Wp: wp, Ws: ws, Wo: wo, MaxTask: wp / fn}, nil
	}
}

func TestOnlineOptionsValidation(t *testing.T) {
	if _, err := NewOnlineEstimator(OnlineOptions{Level: 2}); err == nil {
		t.Error("bad level should error")
	}
	if _, err := NewOnlineEstimator(OnlineOptions{DeltaTol: -1}); err == nil {
		t.Error("bad tolerance should error")
	}
	if _, err := NewOnlineEstimator(OnlineOptions{MinPoints: 2}); err == nil {
		t.Error("too few MinPoints should error")
	}
}

func TestObserveOrdering(t *testing.T) {
	e, err := NewOnlineEstimator(OnlineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Observe(Observation{N: 0.5, Wp: 1}); err == nil {
		t.Error("n < 1 should error")
	}
	if err := e.Observe(Observation{N: 1, Wp: 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.Observe(Observation{N: 1, Wp: 1}); err == nil {
		t.Error("non-increasing n should error")
	}
	if err := e.Observe(Observation{N: 2, Wp: -1}); err == nil {
		t.Error("invalid workloads should error")
	}
	if e.Count() != 1 {
		t.Errorf("Count = %d, want 1", e.Count())
	}
	if _, err := e.Estimates(); err == nil {
		t.Error("single observation cannot be fitted")
	}
}

func TestNextProbeDoubles(t *testing.T) {
	e, _ := NewOnlineEstimator(OnlineOptions{})
	if e.NextProbe() != 1 {
		t.Errorf("first probe %d, want 1", e.NextProbe())
	}
	for _, n := range []float64{1, 2, 4} {
		if err := e.Observe(Observation{N: n, Wp: n}); err != nil {
			t.Fatal(err)
		}
	}
	if e.NextProbe() != 8 {
		t.Errorf("next probe %d, want 8", e.NextProbe())
	}
}

func TestOnlineConvergesOnSortLikeTruth(t *testing.T) {
	truth := Model{Eta: 0.59, EX: LinearFactor(1, 0), IN: LinearFactor(0.377, 0.623), Q: ZeroOverhead()}
	probe := synthProbe(truth, 18.8, 12.85, 0.01, 3)
	e, err := NewOnlineEstimator(OnlineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	converged := false
	var first Observation
	for probes := 0; probes < 8; probes++ {
		obs, err := probe(context.Background(), e.NextProbe())
		if err != nil {
			t.Fatal(err)
		}
		if probes == 0 {
			first = obs
		}
		if err := e.Observe(obs); err != nil {
			t.Fatal(err)
		}
		if e.Count() >= 4 {
			c, err := e.Converged(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if c {
				converged = true
				break
			}
		}
	}
	if !converged {
		t.Fatal("estimator did not converge within 8 probes")
	}
	dci, err := e.DeltaCI(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Sort-like truth: ε(n) flattens, so δ must be estimated well below
	// 1 (the paper's δ ≈ 0 conclusion for Sort).
	if dci.Point > 0.45 {
		t.Errorf("δ point estimate %g, want ≪ 1", dci.Point)
	}
	est, err := e.Estimates()
	if err != nil {
		t.Fatal(err)
	}
	pred, err := NewPredictor(est, first.Wp, first.Ws)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pred.Speedup(200)
	if err != nil {
		t.Fatal(err)
	}
	want, err := truth.Speedup(200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("extrapolated S(200) = %g, truth %g", got, want)
	}

	// The model zoo sees the same sweep: whatever law it selects must
	// also extrapolate this Amdahl-like curve sanely.
	m, sel, err := e.BestModel()
	if err != nil {
		t.Fatal(err)
	}
	if bf, ok := sel.BestFit(); !ok || bf.Name != m.Name() {
		t.Fatalf("selection scoreboard (%v) disagrees with BestModel %q", bf, m.Name())
	}
	zs, err := m.Speedup(200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(zs-want)/want > 0.3 {
		t.Errorf("zoo model %s extrapolated S(200) = %g, truth %g", m.Name(), zs, want)
	}
}

func TestGammaCIDetectsQuadraticOverhead(t *testing.T) {
	truth := Model{Eta: 1, EX: Constant(1), IN: Constant(0), Q: PowerFactor(3.7e-4, 2)}
	probe := synthProbe(truth, 1602.5, 0, 0, 1)
	e, err := NewOnlineEstimator(OnlineOptions{SerialPrecision: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		obs, err := probe(context.Background(), n)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Observe(obs); err != nil {
			t.Fatal(err)
		}
	}
	gci, hasOverhead, err := e.GammaCI(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !hasOverhead {
		t.Fatal("quadratic overhead not detected")
	}
	if math.Abs(gci.Point-2) > 0.1 {
		t.Errorf("γ = %g, want ≈2", gci.Point)
	}
	if gci.Width() > 0.2 {
		t.Errorf("γ CI width %g, want tight on exact data", gci.Width())
	}
}

func TestAutoProvisionEndToEnd(t *testing.T) {
	// CF-like truth: the algorithm must find the hard limit near 52 and
	// pick an operating point at or below it — by probing only n ≤ 64.
	truth := Model{Eta: 1, EX: Constant(1), IN: Constant(0), Q: PowerFactor(3.7e-4, 2)}
	probe := synthProbe(truth, 1602.5, 0, 0, 1)
	plan, err := AutoProvision(context.Background(), probe, AutoProvisionOptions{
		Online:           OnlineOptions{SerialPrecision: 0.01},
		PricePerNodeHour: 0.4,
		MaxN:             150,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Probed) == 0 || plan.Probed[len(plan.Probed)-1] > 64 {
		t.Errorf("probe schedule %v should stay within the budget", plan.Probed)
	}
	if plan.HardLimit < 40 || plan.HardLimit > 65 {
		t.Errorf("hard limit %d, want ≈52", plan.HardLimit)
	}
	if plan.Best.N > plan.HardLimit {
		t.Errorf("best point n=%d beyond the hard limit %d", plan.Best.N, plan.HardLimit)
	}
	if !plan.Converged {
		t.Error("exact measurements should converge")
	}
}

func TestAutoProvisionValidation(t *testing.T) {
	if _, err := AutoProvision(context.Background(), nil, AutoProvisionOptions{PricePerNodeHour: 1}); err == nil {
		t.Error("nil probe should error")
	}
	probe := func(_ context.Context, n int) (Observation, error) { return Observation{N: float64(n), Wp: 1}, nil }
	if _, err := AutoProvision(context.Background(), probe, AutoProvisionOptions{}); err == nil {
		t.Error("missing price should error")
	}
	if _, err := AutoProvision(context.Background(), probe, AutoProvisionOptions{PricePerNodeHour: 1, MaxProbeN: -1}); err == nil {
		t.Error("unusable probe budget should error")
	}
}

func TestAutoProvisionPropagatesProbeErrors(t *testing.T) {
	boom := func(context.Context, int) (Observation, error) { return Observation{}, errTest }
	if _, err := AutoProvision(context.Background(), boom, AutoProvisionOptions{PricePerNodeHour: 1}); err == nil {
		t.Error("probe error should propagate")
	}
}

var errTest = errorString("probe failed")

type errorString string

func (e errorString) Error() string { return string(e) }
