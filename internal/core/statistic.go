package core

import (
	"context"
	"errors"
	"fmt"

	"ipso/internal/stats"
)

// StatisticModel is the full statistic IPSO model of Section III/IV: a
// deterministic Model plus a distributional description of the per-task
// processing times. The split-phase response time becomes
// E[max{Tp,i(n)}] instead of the deterministic tp(n), capturing long-tail
// effects — stragglers [17] and task queuing [18].
type StatisticModel struct {
	Model Model
	// TaskTime is the distribution of one task's processing time at
	// n = 1, in seconds. At scale-out degree n each of the n tasks is an
	// i.i.d. draw scaled by EX(n)/n (the per-task share of the scaled
	// workload).
	TaskTime stats.Distribution
	// SerialTime is E[Ts(1)] in seconds (the n = 1 serial phase).
	SerialTime float64
	// MCReps and Seed control Monte Carlo evaluation of E[max] for
	// distributions without a closed form. Defaults: 4096 reps, seed 1.
	MCReps int
	Seed   int64
}

func (s StatisticModel) validate() error {
	if err := s.Model.Validate(); err != nil {
		return err
	}
	if s.TaskTime == nil {
		return errors.New("core: statistic model needs a task-time distribution")
	}
	if s.SerialTime < 0 {
		return fmt.Errorf("core: negative serial time %g", s.SerialTime)
	}
	return nil
}

func (s StatisticModel) mcReps() int {
	if s.MCReps > 0 {
		return s.MCReps
	}
	return 4096
}

func (s StatisticModel) seed() int64 {
	if s.Seed != 0 {
		return s.Seed
	}
	return 1
}

// ExpectedMaxTask returns E[max{Tp,i(n)}] in seconds: the expected
// slowest of n i.i.d. task times, each scaled by the per-task workload
// share EX(n)/n.
func (s StatisticModel) ExpectedMaxTask(n float64) (float64, error) {
	if err := s.validate(); err != nil {
		return 0, err
	}
	if n < 1 {
		return 0, fmt.Errorf("core: n = %g must be >= 1", n)
	}
	scaled := stats.Scaled{Base: s.TaskTime, Factor: s.Model.EX(n) / n}
	k := int(n)
	em, err := stats.ExpectedMax(scaled, k)
	if err != nil {
		// Fall back to Monte Carlo for validation-free distributions.
		return stats.ExpectedMaxMC(context.Background(), scaled, k, s.mcReps(), s.seed())
	}
	return em, nil
}

// Speedup evaluates Eq. (8) with the distributional E[max{Tp,i(n)}].
// With a Deterministic task time it coincides with Model.Speedup.
func (s StatisticModel) Speedup(n float64) (float64, error) {
	if err := s.validate(); err != nil {
		return 0, err
	}
	em, err := s.ExpectedMaxTask(n)
	if err != nil {
		return 0, err
	}
	t1 := s.TaskTime.Mean() + s.SerialTime
	if t1 <= 0 {
		return 0, fmt.Errorf("core: nonpositive n=1 job time %g", t1)
	}
	return s.Model.SpeedupStatistic(n, em/t1)
}

// Curve evaluates the statistic speedup across ns.
func (s StatisticModel) Curve(ns []float64) ([]float64, error) {
	out := make([]float64, len(ns))
	for i, n := range ns {
		v, err := s.Speedup(n)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// StragglerPenalty returns the ratio of the deterministic speedup to the
// statistic speedup at n — how much the task-time randomness costs. It is
// 1 for deterministic task times and grows with tail weight, but stays
// bounded for bounded-support distributions (the Section IV argument for
// why deterministic analysis suffices qualitatively).
func (s StatisticModel) StragglerPenalty(n float64) (float64, error) {
	stat, err := s.Speedup(n)
	if err != nil {
		return 0, err
	}
	det, err := s.Model.Speedup(n)
	if err != nil {
		return 0, err
	}
	if stat <= 0 {
		return 0, fmt.Errorf("core: nonpositive statistic speedup %g", stat)
	}
	return det / stat, nil
}
