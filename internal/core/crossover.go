package core

import (
	"fmt"
)

// Crossover returns the smallest integer degree in [2, maxN] at which
// model b's speedup strictly exceeds model a's — "where crossovers fall"
// when comparing two designs (e.g. a contention-free configuration versus
// a broadcast-heavy one). found is false when no crossover occurs within
// the range.
func Crossover(a, b Model, maxN int) (n int, found bool, err error) {
	if maxN < 2 {
		return 0, false, fmt.Errorf("core: maxN %d must be >= 2", maxN)
	}
	for k := 2; k <= maxN; k++ {
		sa, err := a.Speedup(float64(k))
		if err != nil {
			return 0, false, err
		}
		sb, err := b.Speedup(float64(k))
		if err != nil {
			return 0, false, err
		}
		if sb > sa {
			return k, true, nil
		}
	}
	return 0, false, nil
}

// GustafsonDivergence returns the smallest integer degree in [2, maxN] at
// which Gustafson's prediction overestimates the model's speedup by more
// than relTol (e.g. 0.25 for 25%). It is the practical answer to "up to
// what scale can I trust the classic law for this workload?" — for a
// Sort-like in-proportion workload the law diverges almost immediately,
// while for WordCount it holds through the whole measured range.
func GustafsonDivergence(m Model, relTol float64, maxN int) (n int, diverges bool, err error) {
	if relTol <= 0 {
		return 0, false, fmt.Errorf("core: relTol %g must be positive", relTol)
	}
	if maxN < 2 {
		return 0, false, fmt.Errorf("core: maxN %d must be >= 2", maxN)
	}
	if err := m.Validate(); err != nil {
		return 0, false, err
	}
	for k := 2; k <= maxN; k++ {
		s, err := m.Speedup(float64(k))
		if err != nil {
			return 0, false, err
		}
		g, err := Gustafson(m.Eta, float64(k))
		if err != nil {
			return 0, false, err
		}
		if g > s*(1+relTol) {
			return k, true, nil
		}
	}
	return 0, false, nil
}
