package core

import (
	"strings"
	"testing"
)

func curveOf(t *testing.T, a Asymptotic, ns []float64) []float64 {
	t.Helper()
	out := make([]float64, len(ns))
	for i, n := range ns {
		s, err := a.Speedup(n)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = s
	}
	return out
}

func gridTo(max float64) []float64 {
	var ns []float64
	for n := 1.0; n <= max; n *= 2 {
		ns = append(ns, n)
	}
	return ns
}

func TestDiagnoseLinear(t *testing.T) {
	ns := gridTo(256)
	ss := curveOf(t, Asymptotic{Eta: 0.95, Alpha: 1, Delta: 1}, ns)
	d, err := Diagnose(FixedTime, ns, ss)
	if err != nil {
		t.Fatal(err)
	}
	if d.Family != FamilyLinear || d.Type != TypeIt {
		t.Errorf("diagnosis %+v, want linear/It", d)
	}
	if d.NeedsFactorAnalysis {
		t.Error("linear diagnosis should not need factor analysis")
	}
}

func TestDiagnoseSublinear(t *testing.T) {
	ns := gridTo(1024)
	ss := curveOf(t, Asymptotic{Eta: 1, Beta: 0.3, Gamma: 0.5}, ns)
	d, err := Diagnose(FixedTime, ns, ss)
	if err != nil {
		t.Fatal(err)
	}
	if d.Family != FamilySublinear || d.Type != TypeIIt {
		t.Errorf("diagnosis %v/%v, want sublinear/IIt", d.Family, d.Type)
	}
}

func TestDiagnoseBounded(t *testing.T) {
	// Sort-like IIIt,1 curve.
	ns := gridTo(256)
	ss := curveOf(t, Asymptotic{Eta: 0.59, Alpha: 2.6, Delta: 0}, ns)
	d, err := Diagnose(FixedTime, ns, ss)
	if err != nil {
		t.Fatal(err)
	}
	if d.Family != FamilyBounded {
		t.Fatalf("family %v, want bounded", d.Family)
	}
	if !d.NeedsFactorAnalysis {
		t.Error("bounded diagnosis must point to step 6 (factor analysis)")
	}
	// Step 6 with the true factors resolves the subtype.
	typ, err := DiagnoseWithFactors(FixedTime, Asymptotic{Eta: 0.59, Alpha: 2.6, Delta: 0})
	if err != nil || typ != TypeIIIt1 {
		t.Errorf("factor classification %v, %v; want IIIt,1", typ, err)
	}
}

func TestDiagnosePeaked(t *testing.T) {
	// CF-like IVs curve on the paper's measurement grid.
	ns := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 120, 150}
	ss := curveOf(t, Asymptotic{Eta: 1, Beta: 3.7e-4, Gamma: 2}, ns)
	d, err := Diagnose(FixedSize, ns, ss)
	if err != nil {
		t.Fatal(err)
	}
	if d.Family != FamilyPeaked || d.Type != TypeIVs {
		t.Fatalf("diagnosis %v/%v, want peaked/IVs", d.Family, d.Type)
	}
	if d.PeakN < 40 || d.PeakN > 70 {
		t.Errorf("observed peak at n=%g, want near 52", d.PeakN)
	}
	if d.PeakS < 15 || d.PeakS > 30 {
		t.Errorf("observed peak speedup %g, want ≈21-26", d.PeakS)
	}
}

func TestDiagnoseAmdahlLike(t *testing.T) {
	ns := gridTo(512)
	ss := make([]float64, len(ns))
	for i, n := range ns {
		ss[i], _ = Amdahl(0.9, n)
	}
	d, err := Diagnose(FixedSize, ns, ss)
	if err != nil {
		t.Fatal(err)
	}
	if d.Family != FamilyBounded || d.Type != TypeIIIs1 {
		t.Errorf("diagnosis %v/%v, want bounded/IIIs,1", d.Family, d.Type)
	}
}

func TestDiagnoseInputValidation(t *testing.T) {
	ns := []float64{1, 2, 3, 4}
	ss := []float64{1, 2, 3, 4}
	if _, err := Diagnose(WorkloadType(0), ns, ss); err == nil {
		t.Error("unknown workload type should error")
	}
	if _, err := Diagnose(FixedTime, ns[:3], ss[:3]); err == nil {
		t.Error("too few points should error")
	}
	if _, err := Diagnose(FixedTime, ns, ss[:3]); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Diagnose(FixedTime, []float64{1, 2, 2, 3}, ss); err == nil {
		t.Error("non-ascending ns should error")
	}
	if _, err := Diagnose(FixedTime, ns, []float64{1, 2, -1, 4}); err == nil {
		t.Error("nonpositive speedup should error")
	}
}

func TestFamilyStrings(t *testing.T) {
	for _, f := range []Family{FamilyLinear, FamilySublinear, FamilyBounded, FamilyPeaked} {
		if f.String() == "" || f.String()[0] == 'F' {
			t.Errorf("family %d has no human name: %q", f, f.String())
		}
	}
}

func TestDiagnoseModelsAttachesVerdicts(t *testing.T) {
	// Retrograde USL-shaped data: the zoo verdict must name usl and the
	// shape diagnosis must still see the peak.
	var ns, ss []float64
	for _, n := range []float64{1, 2, 4, 8, 16, 24, 32, 48, 64, 96} {
		ns = append(ns, n)
		ss = append(ss, n/(1+0.05*(n-1)+0.001*n*(n-1)))
	}
	d, err := DiagnoseModels(FixedSize, ns, ss)
	if err != nil {
		t.Fatal(err)
	}
	if d.Family != FamilyPeaked {
		t.Errorf("family %v, want peaked", d.Family)
	}
	best, ok := d.Models.BestFit()
	if !ok {
		t.Fatal("no zoo verdict attached")
	}
	if best.Name != ModelUSL {
		for _, f := range d.Models.Fits {
			t.Logf("%-10s AICc=%.2f LOO=%.3g err=%v", f.Name, f.AICc, f.LOO, f.Err)
		}
		t.Errorf("zoo selected %q on retrograde data, want usl", best.Name)
	}
	found := false
	for _, note := range d.Notes {
		if strings.Contains(note, "model zoo selects "+best.Name) {
			found = true
		}
	}
	if !found {
		t.Errorf("selection note missing from %v", d.Notes)
	}
}

func TestDiagnoseSurfacesFitBudgetExhaustion(t *testing.T) {
	// A bounded curve forces the saturating NonlinearFit; its convergence
	// report must reach the notes instead of being silently discarded.
	ns := []float64{1, 2, 4, 8, 16, 32, 64}
	ss := make([]float64, len(ns))
	for i, n := range ns {
		ss[i] = 5 * n / (n + 4)
	}
	d, err := Diagnose(FixedSize, ns, ss)
	if err != nil {
		t.Fatal(err)
	}
	if d.Family != FamilyBounded {
		t.Fatalf("family %v, want bounded", d.Family)
	}
	// The exact saturating fit converges, so no note; the structure is
	// exercised by DiagnoseModels' failed-fit path below.
	if len(d.Notes) != 0 {
		t.Errorf("unexpected notes on a clean fit: %v", d.Notes)
	}
}
