package core

import (
	"fmt"
	"math"
)

// The classic speedup laws of Eq. (12), written with the paper's η
// notation, plus their derivation as IPSO special cases (Eq. 13): set
// IN(n) = 1 and q(n) = 0, and choose EX(n) = 1 (fixed-size, Amdahl),
// EX(n) = n (fixed-time, Gustafson), or EX(n) = g(n) (memory-bounded,
// Sun-Ni).

// Amdahl evaluates Amdahl's law S(n) = 1 / (η/n + (1−η)).
func Amdahl(eta, n float64) (float64, error) {
	if err := checkLawArgs(eta, n); err != nil {
		return 0, err
	}
	return 1 / (eta/n + (1 - eta)), nil
}

// AmdahlBound returns the well-known asymptote 1/(1−η), or +Inf for η = 1.
func AmdahlBound(eta float64) (float64, error) {
	if eta < 0 || eta > 1 {
		return 0, fmt.Errorf("core: η = %g outside [0, 1]", eta)
	}
	if eta == 1 {
		return math.Inf(1), nil
	}
	return 1 / (1 - eta), nil
}

// Gustafson evaluates Gustafson's law S(n) = η·n + (1−η).
func Gustafson(eta, n float64) (float64, error) {
	if err := checkLawArgs(eta, n); err != nil {
		return 0, err
	}
	return eta*n + (1 - eta), nil
}

// SunNi evaluates Sun-Ni's memory-bounded law
// S(n) = (η·g(n) + (1−η)) / (η·g(n)/n + (1−η)) for a memory-bound
// external factor g. For the data-intensive workloads of the paper
// g(n) ≈ n with high precision (Fig. 6), making Sun-Ni coincide with
// Gustafson.
func SunNi(eta, n float64, g ScalingFactor) (float64, error) {
	if err := checkLawArgs(eta, n); err != nil {
		return 0, err
	}
	if g == nil {
		return 0, fmt.Errorf("core: Sun-Ni needs a memory-bound factor g")
	}
	gn := g(n)
	den := eta*gn/n + (1 - eta)
	if den <= 0 {
		return 0, fmt.Errorf("core: nonpositive denominator at n=%g", n)
	}
	return (eta*gn + (1 - eta)) / den, nil
}

// AmdahlModel returns Amdahl's law as an IPSO special case:
// EX(n) = 1, IN(n) = 1, q(n) = 0 (Eq. 13, fixed-size).
func AmdahlModel(eta float64) Model {
	return Model{Eta: eta, EX: Constant(1), IN: Constant(1), Q: ZeroOverhead()}
}

// GustafsonModel returns Gustafson's law as an IPSO special case:
// EX(n) = n, IN(n) = 1, q(n) = 0 (Eq. 13, fixed-time).
func GustafsonModel(eta float64) Model {
	return Model{Eta: eta, EX: LinearFactor(1, 0), IN: Constant(1), Q: ZeroOverhead()}
}

// SunNiModel returns Sun-Ni's law as an IPSO special case:
// EX(n) = g(n), IN(n) = 1, q(n) = 0 (Eq. 13, memory-bounded).
func SunNiModel(eta float64, g ScalingFactor) Model {
	return Model{Eta: eta, EX: g, IN: Constant(1), Q: ZeroOverhead()}
}

func checkLawArgs(eta, n float64) error {
	if eta < 0 || eta > 1 || math.IsNaN(eta) {
		return fmt.Errorf("core: η = %g outside [0, 1]", eta)
	}
	if n < 1 {
		return fmt.Errorf("core: n = %g must be >= 1", n)
	}
	return nil
}
