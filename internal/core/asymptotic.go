package core

import (
	"fmt"
	"math"
)

// WorkloadType selects which of the paper's two workload dimensions a
// classification applies to (Section IV): fixed-time (EX(n) = n, the
// resource-constrained Gustafson dimension) or fixed-size (EX(n) = 1, the
// resource-abundant Amdahl dimension).
type WorkloadType int

// Workload types.
const (
	FixedTime WorkloadType = iota + 1
	FixedSize
)

// String returns the workload type name.
func (w WorkloadType) String() string {
	switch w {
	case FixedTime:
		return "fixed-time"
	case FixedSize:
		return "fixed-size"
	default:
		return fmt.Sprintf("WorkloadType(%d)", int(w))
	}
}

// ScalingType is one of the paper's ten speedup scaling behaviors
// (Figs. 2-3). The fixed-time and fixed-size families have parallel
// structure: I linear, II sublinear unbounded, III upper-bounded (two
// subtypes with distinct bounds), IV pathological peak-and-fall.
type ScalingType int

// Fixed-time scaling types (Fig. 2) and fixed-size types (Fig. 3).
const (
	TypeIt ScalingType = iota + 1
	TypeIIt
	TypeIIIt1
	TypeIIIt2
	TypeIVt
	TypeIs
	TypeIIs
	TypeIIIs1
	TypeIIIs2
	TypeIVs
)

// String returns the paper's name for the type, e.g. "IIIt,1".
func (t ScalingType) String() string {
	switch t {
	case TypeIt:
		return "It"
	case TypeIIt:
		return "IIt"
	case TypeIIIt1:
		return "IIIt,1"
	case TypeIIIt2:
		return "IIIt,2"
	case TypeIVt:
		return "IVt"
	case TypeIs:
		return "Is"
	case TypeIIs:
		return "IIs"
	case TypeIIIs1:
		return "IIIs,1"
	case TypeIIIs2:
		return "IIIs,2"
	case TypeIVs:
		return "IVs"
	default:
		return fmt.Sprintf("ScalingType(%d)", int(t))
	}
}

// Describe returns the paper's one-line characterization of the type.
func (t ScalingType) Describe() string {
	switch t {
	case TypeIt:
		return "Gustafson-like linear scaling (unbounded)"
	case TypeIIt:
		return "unbounded sublinear scaling"
	case TypeIIIt1, TypeIIIt2:
		return "pathological: monotone but upper-bounded despite fixed-time workload"
	case TypeIVt:
		return "pathological: speedup peaks then falls (superlinear scale-out-induced overhead)"
	case TypeIs:
		return "ideal linear scaling S(n) = n (very special case)"
	case TypeIIs:
		return "unbounded sublinear scaling (special case)"
	case TypeIIIs1, TypeIIIs2:
		return "Amdahl-like: monotone, upper-bounded"
	case TypeIVs:
		return "pathological: speedup peaks then falls (superlinear scale-out-induced overhead)"
	default:
		return "unknown scaling type"
	}
}

// Pathological reports whether the type is one the paper flags as
// pathological (IIIt, IVt, IVs) — behaviors that should be avoided or at
// least diagnosed.
func (t ScalingType) Pathological() bool {
	switch t {
	case TypeIIIt1, TypeIIIt2, TypeIVt, TypeIVs:
		return true
	default:
		return false
	}
}

// Bounded reports whether the speedup has a finite upper bound.
func (t ScalingType) Bounded() bool {
	switch t {
	case TypeIt, TypeIIt, TypeIs, TypeIIs:
		return false
	default:
		return true
	}
}

// Asymptotic is the large-n IPSO form of Eqs. (14-16): ε(n) ≈ α·n^δ and
// q(n) ≈ β·n^γ, giving
//
//	S(n) ≈ (η·α·n^δ + (1−η)) / (η·α·n^(δ−1)·(1+β·n^γ) + (1−η))
//
// and, for η = 1 (no serial portion, Eq. 17), S(n) = n / (1 + β·n^γ).
type Asymptotic struct {
	Eta   float64 // η ∈ [0, 1]
	Alpha float64 // α ≥ 0: in-proportion ratio coefficient
	Delta float64 // δ: relative speed of external vs internal scaling
	Beta  float64 // β ≥ 0: scale-out-induced coefficient
	Gamma float64 // γ ≥ 0: scale-out-induced exponent (0 ⇒ q = 0)
}

// Validate checks the parameter domain. For fixed-time workloads the
// paper argues 0 ≤ δ ≤ 1; for fixed-size, δ = 0 by construction. Those
// are enforced by Classify, not here.
func (a Asymptotic) Validate() error {
	if a.Eta < 0 || a.Eta > 1 || math.IsNaN(a.Eta) {
		return fmt.Errorf("core: η = %g outside [0, 1]", a.Eta)
	}
	if a.Eta < 1 && a.Alpha <= 0 {
		return fmt.Errorf("core: α = %g must be positive when η < 1", a.Alpha)
	}
	if a.Beta < 0 {
		return fmt.Errorf("core: β = %g must be nonnegative", a.Beta)
	}
	if a.Gamma < 0 {
		return fmt.Errorf("core: γ = %g must be nonnegative", a.Gamma)
	}
	if a.Gamma > 0 && a.Beta == 0 {
		return fmt.Errorf("core: γ = %g > 0 requires β > 0", a.Gamma)
	}
	return nil
}

// hasOverhead reports whether a scale-out-induced workload is present.
// Per the paper, γ = 0 corresponds to q(n) = 0.
func (a Asymptotic) hasOverhead() bool { return a.Gamma > 0 && a.Beta > 0 }

// Q evaluates q(n) = β·n^γ (0 when γ = 0, per the paper's convention).
func (a Asymptotic) Q(n float64) float64 {
	if !a.hasOverhead() {
		return 0
	}
	return a.Beta * math.Pow(n, a.Gamma)
}

// Speedup evaluates Eq. (16), or Eq. (17) when η = 1.
func (a Asymptotic) Speedup(n float64) (float64, error) {
	if err := a.Validate(); err != nil {
		return 0, err
	}
	if n < 1 {
		return 0, fmt.Errorf("core: n = %g must be >= 1", n)
	}
	if a.Eta == 1 {
		return n / (1 + a.Q(n)), nil
	}
	num := a.Eta*a.Alpha*math.Pow(n, a.Delta) + (1 - a.Eta)
	den := a.Eta*a.Alpha*math.Pow(n, a.Delta-1)*(1+a.Q(n)) + (1 - a.Eta)
	return num / den, nil
}

// Model converts the asymptotic parameters to a full Model with
// EX(n) = n^max(δ,·) appropriate for the workload type: for fixed-time,
// EX(n) = n and IN(n) = n^(1−δ)·/α normalized to IN(1)=1 is implied; the
// conversion keeps ε(n) = α·n^δ exactly.
func (a Asymptotic) Model(w WorkloadType) (Model, error) {
	if err := a.Validate(); err != nil {
		return Model{}, err
	}
	var ex, in ScalingFactor
	switch w {
	case FixedTime:
		ex = LinearFactor(1, 0)
		in = func(n float64) float64 { return n / (a.Alpha * math.Pow(n, a.Delta)) }
	case FixedSize:
		ex = Constant(1)
		in = func(n float64) float64 { return 1 / (a.Alpha * math.Pow(n, a.Delta)) }
	default:
		return Model{}, fmt.Errorf("core: unknown workload type %v", w)
	}
	if a.Eta == 1 {
		in = Constant(0)
	}
	return Model{Eta: a.Eta, EX: ex, IN: in, Q: a.Q}, nil
}

// Classify maps the parameters to the scaling taxonomy of Fig. 2
// (fixed-time) or Fig. 3 (fixed-size).
func (a Asymptotic) Classify(w WorkloadType) (ScalingType, error) {
	if err := a.Validate(); err != nil {
		return 0, err
	}
	switch w {
	case FixedTime:
		return a.classifyFixedTime()
	case FixedSize:
		return a.classifyFixedSize()
	default:
		return 0, fmt.Errorf("core: unknown workload type %v", w)
	}
}

func (a Asymptotic) classifyFixedTime() (ScalingType, error) {
	if a.Delta < 0 || a.Delta > 1 {
		return 0, fmt.Errorf("core: fixed-time requires 0 <= δ <= 1, got %g", a.Delta)
	}
	// Superlinear overhead dominates everything: IVt.
	if a.hasOverhead() && a.Gamma > 1 {
		return TypeIVt, nil
	}
	// η = 1 (no serial portion): S = n/(1+βn^γ).
	if a.Eta == 1 {
		switch {
		case !a.hasOverhead():
			return TypeIt, nil
		case a.Gamma < 1:
			return TypeIIt, nil
		default: // γ == 1
			return TypeIIIt2, nil
		}
	}
	// γ == 1: bounded (IIIt,2) regardless of δ.
	if a.hasOverhead() && a.Gamma == 1 {
		return TypeIIIt2, nil
	}
	// Here γ < 1 (sublinear or no overhead).
	switch {
	case a.Delta == 0:
		// Internal scaling keeps pace with external: bounded, IIIt,1.
		return TypeIIIt1, nil
	case a.Delta == 1 && !a.hasOverhead():
		return TypeIt, nil
	default:
		// 0 < δ < 1, or δ = 1 with sublinear overhead: unbounded
		// sublinear growth.
		return TypeIIt, nil
	}
}

func (a Asymptotic) classifyFixedSize() (ScalingType, error) {
	if a.Delta != 0 {
		return 0, fmt.Errorf("core: fixed-size requires δ = 0 (EX(n) = 1 cannot outpace IN), got %g", a.Delta)
	}
	if a.hasOverhead() && a.Gamma > 1 {
		return TypeIVs, nil
	}
	if a.Eta == 1 {
		switch {
		case !a.hasOverhead():
			return TypeIs, nil
		case a.Gamma < 1:
			return TypeIIs, nil
		default: // γ == 1
			return TypeIIIs2, nil
		}
	}
	if a.hasOverhead() && a.Gamma == 1 {
		return TypeIIIs2, nil
	}
	return TypeIIIs1, nil
}

// Bound returns the asymptotic speedup limit for bounded types (the
// closed forms annotated in Figs. 2-3) and bounded=false for unbounded
// ones. For peaked types (IVt/IVs) the limit is 0; use Peak for the
// maximum.
func (a Asymptotic) Bound(w WorkloadType) (limit float64, bounded bool, err error) {
	t, err := a.Classify(w)
	if err != nil {
		return 0, false, err
	}
	switch t {
	case TypeIt, TypeIIt, TypeIs, TypeIIs:
		return 0, false, nil
	case TypeIVt, TypeIVs:
		return 0, true, nil
	case TypeIIIt1, TypeIIIs1:
		// S → (ηα + (1−η)) / (1−η).
		return (a.Eta*a.Alpha + (1 - a.Eta)) / (1 - a.Eta), true, nil
	case TypeIIIt2, TypeIIIs2:
		if a.Eta == 1 || a.Delta > 0 {
			// S → 1/β.
			return 1 / a.Beta, true, nil
		}
		// δ = 0: S → (ηα + (1−η)) / (ηαβ + (1−η)).
		return (a.Eta*a.Alpha + (1 - a.Eta)) / (a.Eta*a.Alpha*a.Beta + (1 - a.Eta)), true, nil
	default:
		return 0, false, fmt.Errorf("core: unhandled type %v", t)
	}
}

// Peak numerically locates the speedup maximum over n ∈ [1, nMax] on an
// integer grid — meaningful for the peaked types IVt/IVs, where the paper
// reads off a hard scale-out upper bound "beyond which the parallel
// computing performance deteriorates" (n ≈ 60 for Collaborative
// Filtering).
func (a Asymptotic) Peak(nMax int) (nStar float64, sStar float64, err error) {
	if nMax < 1 {
		return 0, 0, fmt.Errorf("core: nMax = %d must be >= 1", nMax)
	}
	best, bestN := math.Inf(-1), 1.0
	for n := 1; n <= nMax; n++ {
		s, err := a.Speedup(float64(n))
		if err != nil {
			return 0, 0, err
		}
		if s > best {
			best, bestN = s, float64(n)
		}
	}
	return bestN, best, nil
}
