package core

import (
	"testing"
	"testing/quick"
)

func TestNewMultiValidation(t *testing.T) {
	if _, err := NewMulti(); err == nil {
		t.Error("no rounds should error")
	}
	if _, err := NewMulti(Round{Name: "bad", Wp1: -1}); err == nil {
		t.Error("negative workload should error")
	}
	if _, err := NewMulti(Round{Name: "empty"}); err == nil {
		t.Error("zero-workload round should error")
	}
	m, err := NewMulti(Round{Name: "ok", Wp1: 10})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rounds[0].EX == nil || m.Rounds[0].IN == nil || m.Rounds[0].Q == nil {
		t.Error("defaults not applied")
	}
}

func TestMultiSingleRoundMatchesModel(t *testing.T) {
	// One round ≡ the plain model with the same η and factors.
	r := Round{Name: "r", Wp1: 18.8, Ws1: 12.85, EX: LinearFactor(1, 0), IN: LinearFactor(0.377, 0.623)}
	multi, err := NewMulti(r)
	if err != nil {
		t.Fatal(err)
	}
	want := Model{Eta: 18.8 / (18.8 + 12.85), EX: r.EX, IN: r.IN, Q: ZeroOverhead()}
	for _, n := range []float64{1, 4, 32, 128} {
		got, err := multi.Speedup(n)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := want.Speedup(n)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, ref, 1e-9) {
			t.Errorf("n=%g: multi %g vs model %g", n, got, ref)
		}
	}
}

func TestMultiModelFlattening(t *testing.T) {
	// Two CF-like rounds: fixed-size parallel work with quadratic
	// overhead from broadcast (γ = 2 each) and no serial portion.
	cfRound := Round{Name: "update", Wp1: 950, EX: Constant(1), Q: PowerFactor(3.7e-4, 2)}
	multi, err := NewMulti(cfRound, cfRound)
	if err != nil {
		t.Fatal(err)
	}
	m, err := multi.Model()
	if err != nil {
		t.Fatal(err)
	}
	if m.Eta != 1 {
		t.Errorf("η = %g, want 1 (no serial rounds)", m.Eta)
	}
	for _, n := range []float64{1, 10, 60, 90} {
		direct, err := multi.Speedup(n)
		if err != nil {
			t.Fatal(err)
		}
		flat, err := m.Speedup(n)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(direct, flat, 1e-9) {
			t.Errorf("n=%g: direct %g vs flattened %g", n, direct, flat)
		}
	}
	// The composed job keeps the IVs peak near 1/√β.
	s30, _ := multi.Speedup(30)
	s52, _ := multi.Speedup(52)
	s90, _ := multi.Speedup(90)
	if !(s52 > s30 && s52 > s90) {
		t.Errorf("composed CF job should peak near n≈52: S(30)=%g S(52)=%g S(90)=%g", s30, s52, s90)
	}
}

func TestMultiHeterogeneousRounds(t *testing.T) {
	// A map-heavy linear round plus a merge-heavy in-proportion round:
	// the composite must be bounded (the IIIt,1 round dominates at large
	// n) but faster than the slow round alone.
	fast := Round{Name: "fast", Wp1: 100, Ws1: 0.0001, EX: LinearFactor(1, 0)}
	slow := Round{Name: "slow", Wp1: 20, Ws1: 15, EX: LinearFactor(1, 0), IN: LinearFactor(0.4, 0.6)}
	multi, err := NewMulti(fast, slow)
	if err != nil {
		t.Fatal(err)
	}
	slowOnly, err := NewMulti(slow)
	if err != nil {
		t.Fatal(err)
	}
	sBoth, err := multi.Speedup(200)
	if err != nil {
		t.Fatal(err)
	}
	sSlow, err := slowOnly.Speedup(200)
	if err != nil {
		t.Fatal(err)
	}
	if sBoth <= sSlow {
		t.Errorf("adding a parallel-friendly round should raise the composite speedup: %g vs %g", sBoth, sSlow)
	}
	if sBoth > 50 {
		t.Errorf("composite %g should still be bounded well below n=200", sBoth)
	}
}

func TestMultiWorkloadErrors(t *testing.T) {
	var empty Multi
	if _, _, _, err := empty.Workloads(4); err == nil {
		t.Error("empty model should error")
	}
	if _, err := empty.Model(); err == nil {
		t.Error("empty model should error")
	}
	m, _ := NewMulti(Round{Name: "r", Wp1: 1})
	if _, _, _, err := m.Workloads(0.5); err == nil {
		t.Error("n < 1 should error")
	}
}

// Property: the flattened Model agrees with the direct workload-sum
// speedup for arbitrary two-round compositions.
func TestMultiFlatteningConsistencyProperty(t *testing.T) {
	f := func(wp1, ws1, wp2, ws2, nRaw uint8) bool {
		r1 := Round{Name: "a", Wp1: float64(wp1%50) + 1, Ws1: float64(ws1 % 20), EX: LinearFactor(1, 0), IN: LinearFactor(0.3, 0.7)}
		r2 := Round{Name: "b", Wp1: float64(wp2%50) + 1, Ws1: float64(ws2 % 20), EX: Constant(1), Q: PowerFactor(0.001, 1.5)}
		multi, err := NewMulti(r1, r2)
		if err != nil {
			return false
		}
		model, err := multi.Model()
		if err != nil {
			return false
		}
		n := float64(nRaw%100) + 1
		direct, err1 := multi.Speedup(n)
		flat, err2 := model.Speedup(n)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(direct, flat, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryBoundedFactor(t *testing.T) {
	// Uncapped: g(n) = n exactly — Sun-Ni coincides with Gustafson.
	g, err := MemoryBoundedFactor(128<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []float64{1, 16, 160} {
		if g(n) != n {
			t.Errorf("g(%g) = %g, want n", n, g(n))
		}
	}
	// Capped at 32 blocks: flattens.
	g, err = MemoryBoundedFactor(128<<20, 32*128<<20)
	if err != nil {
		t.Fatal(err)
	}
	if g(16) != 16 || g(64) != 32 {
		t.Errorf("capped factor wrong: g(16)=%g g(64)=%g", g(16), g(64))
	}
	if g(0.5) != 1 {
		t.Errorf("g clamps n below 1, got %g", g(0.5))
	}
	if _, err := MemoryBoundedFactor(0, 0); err == nil {
		t.Error("zero block size should error")
	}
	if _, err := MemoryBoundedFactor(10, -1); err == nil {
		t.Error("negative cap should error")
	}
	if _, err := MemoryBoundedFactor(10, 5); err == nil {
		t.Error("cap below one block should error")
	}
}
