package core

import (
	"fmt"
)

// PredictionSpread quantifies the sensitivity of an extrapolated speedup
// to the measurement set: the model is refitted with each measured degree
// left out in turn (jackknife), and the spread of the resulting
// predictions brackets the point estimate. A wide spread at the target
// degree means the probes do not yet pin the extrapolation down — the
// operational complement to the Section VI question of how quickly δ and
// γ can be estimated.
type PredictionSpread struct {
	Point float64 // prediction from the full measurement set
	Low   float64 // minimum leave-one-out prediction
	High  float64 // maximum leave-one-out prediction
}

// Width returns High − Low.
func (p PredictionSpread) Width() float64 { return p.High - p.Low }

// RelativeWidth returns Width/Point.
func (p PredictionSpread) RelativeWidth() float64 {
	if p.Point == 0 {
		return 0
	}
	return p.Width() / p.Point
}

// PredictSpread fits the full measurement set plus every leave-one-out
// subset and returns the spread of S(n) predictions. The measurements
// must keep at least three degrees after removal, and tp1/ts1 are the
// n = 1 phase baselines (as in NewPredictor).
func PredictSpread(m Measurements, tp1, ts1, n float64) (PredictionSpread, error) {
	if err := m.Validate(); err != nil {
		return PredictionSpread{}, err
	}
	if len(m.N) < 4 {
		return PredictionSpread{}, fmt.Errorf("core: need >= 4 measured degrees for a jackknife spread, got %d", len(m.N))
	}
	predict := func(mm Measurements) (float64, error) {
		est, err := Estimate(mm)
		if err != nil {
			return 0, err
		}
		pred, err := NewPredictor(est, tp1, ts1)
		if err != nil {
			return 0, err
		}
		return pred.Speedup(n)
	}
	point, err := predict(m)
	if err != nil {
		return PredictionSpread{}, err
	}
	spread := PredictionSpread{Point: point, Low: point, High: point}
	for drop := range m.N {
		sub := Measurements{
			Wp1: m.Wp1, Ws1: m.Ws1, SerialPrecision: m.SerialPrecision,
		}
		for i := range m.N {
			if i == drop {
				continue
			}
			sub.N = append(sub.N, m.N[i])
			sub.Wp = append(sub.Wp, m.Wp[i])
			sub.Ws = append(sub.Ws, m.Ws[i])
			if m.Wo != nil {
				sub.Wo = append(sub.Wo, m.Wo[i])
			}
			if m.MaxTask != nil {
				sub.MaxTask = append(sub.MaxTask, m.MaxTask[i])
			}
		}
		s, err := predict(sub)
		if err != nil {
			// A subset can be degenerate (e.g. dropping the only point
			// that anchors a fit); skip it rather than fail the spread.
			continue
		}
		if s < spread.Low {
			spread.Low = s
		}
		if s > spread.High {
			spread.High = s
		}
	}
	return spread, nil
}
