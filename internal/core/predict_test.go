package core

import (
	"testing"
)

func TestPredictorFromSortLikeFit(t *testing.T) {
	// Fit at n ≤ 16 (the paper's procedure), predict at n = 200, compare
	// against the ground-truth model.
	truth := Model{
		Eta: 18.8 / (18.8 + 12.85),
		EX:  LinearFactor(1, 0),
		IN:  LinearFactor(0.377, 0.623),
		Q:   ZeroOverhead(),
	}
	m := sortLikeMeasurements([]float64{1, 2, 4, 8, 16})
	est, err := Estimate(m)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPredictor(est, 18.8, 12.85)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []float64{40, 100, 200} {
		want, err := truth.Speedup(n)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.Speedup(n)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, want, 1e-6) {
			t.Errorf("n=%g: predicted %g, truth %g", n, got, want)
		}
	}
}

func TestPredictorStatisticUsesMeasuredMax(t *testing.T) {
	m := sortLikeMeasurements([]float64{1, 2, 4, 8, 16})
	est, err := Estimate(m)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPredictor(est, 18.8, 12.85)
	if err != nil {
		t.Fatal(err)
	}
	// With the deterministic split time tp(n) = Wp(n)/n = 18.8 s, the
	// statistic prediction equals the deterministic one.
	det, err := p.Speedup(64)
	if err != nil {
		t.Fatal(err)
	}
	stat, err := p.SpeedupWithMaxTask(64, 18.8)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(det, stat, 1e-9) {
		t.Errorf("deterministic %g vs statistic %g", det, stat)
	}
	// A straggler-inflated measured max lowers the prediction.
	slow, err := p.SpeedupWithMaxTask(64, 2*18.8)
	if err != nil {
		t.Fatal(err)
	}
	if slow >= stat {
		t.Errorf("straggler-inflated prediction %g should be below %g", slow, stat)
	}
}

func TestPredictorUsesINStep(t *testing.T) {
	// A step-wise IN fit must flow into predictions (TeraSort, Fig. 5→7).
	var m Measurements
	for n := 1.0; n <= 40; n++ {
		m.N = append(m.N, n)
		m.Wp = append(m.Wp, 10.7*n)
		in := 0.17*n + 0.83
		if n > 15 {
			in = 0.25*n - 0.37
		}
		m.Ws = append(m.Ws, 24.4*in)
	}
	est, err := Estimate(m)
	if err != nil {
		t.Fatal(err)
	}
	if est.INStep == nil {
		t.Fatal("expected a step fit")
	}
	p, err := NewPredictor(est, 10.7, 24.4)
	if err != nil {
		t.Fatal(err)
	}
	// Beyond the breakpoint the prediction must use the steeper slope:
	// compare against a non-step predictor built from the single fit.
	flat := p
	flat.IN = est.INFit.Eval
	sStep, err := p.Speedup(60)
	if err != nil {
		t.Fatal(err)
	}
	sFlat, err := flat.Speedup(60)
	if err != nil {
		t.Fatal(err)
	}
	if sStep == sFlat {
		t.Error("step fit had no effect on the prediction")
	}
}

func TestNewPredictorErrors(t *testing.T) {
	if _, err := NewPredictor(Estimates{}, 0, 1); err == nil {
		t.Error("tp1 <= 0 should error")
	}
	if _, err := NewPredictor(Estimates{}, 1, -1); err == nil {
		t.Error("ts1 < 0 should error")
	}
}

func TestPredictorCurve(t *testing.T) {
	m := sortLikeMeasurements([]float64{1, 2, 4, 8})
	est, err := Estimate(m)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPredictor(est, 18.8, 12.85)
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Curve([]float64{1, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 3 || c[0] > c[1] || c[1] > c[2] {
		t.Errorf("curve %v should be increasing for a IIIt,1 workload", c)
	}
}
