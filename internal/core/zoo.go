package core

import (
	"fmt"
	"math"
)

// The model zoo: the candidate scaling laws fitted side by side against
// measured sweeps. IPSO's asymptotic form (Eqs. 14-17) sits next to the
// classical laws it generalizes — Amdahl and Gustafson are its δ/β/γ
// special cases — and next to Gunther's Universal Scalability Law, whose
// coherency term κ attributes retrograde scaling to pairwise exchange
// rather than IPSO's aggregate power-law overhead, and a Schryen-style
// asymptotic power model as the minimal two-parameter baseline.

// Zoo model names, stable across persistence and metrics.
const (
	ModelIPSO      = "ipso"
	ModelUSL       = "usl"
	ModelAmdahl    = "amdahl"
	ModelGustafson = "gustafson"
	ModelPower     = "power"
)

// IPSOScaling is the paper's asymptotic form as a fittable zoo member.
// Fixed-time (Eq. 16): S(n) = (ηαn^δ + 1−η) / (ηαn^(δ−1)(1+βn^γ) + 1−η),
// with δ ∈ [0, 1] free. Fixed-size pins δ = 0 (EX(n) = 1 cannot outpace
// IN), leaving four free parameters.
func IPSOScaling(w WorkloadType) ScalingModel {
	params := []Param{
		{Name: "eta", Min: 0, Max: 1, Init: 0.9, Value: 0.9},
		{Name: "alpha", Min: 1e-6, Max: 1e6, Init: 1, Value: 1},
		{Name: "delta", Min: 0, Max: 1, Init: 0.5, Value: 0.5},
		{Name: "beta", Min: 0, Max: 1e3, Init: 1e-3, Value: 1e-3},
		{Name: "gamma", Min: 0, Max: 3, Init: 1, Value: 1},
	}
	idx := map[string]int{"eta": 0, "alpha": 1, "delta": 2, "beta": 3, "gamma": 4}
	if w == FixedSize {
		params = []Param{
			{Name: "eta", Min: 0, Max: 1, Init: 0.9, Value: 0.9},
			{Name: "alpha", Min: 1e-6, Max: 1e6, Init: 1, Value: 1},
			{Name: "beta", Min: 0, Max: 1e3, Init: 1e-3, Value: 1e-3},
			{Name: "gamma", Min: 0, Max: 3, Init: 1, Value: 1},
		}
		idx = map[string]int{"eta": 0, "alpha": 1, "delta": -1, "beta": 2, "gamma": 3}
	}
	return &zooModel{
		name:   ModelIPSO,
		params: params,
		eval: func(v []float64, n float64) float64 {
			eta, alpha := v[idx["eta"]], v[idx["alpha"]]
			delta := 0.0
			if idx["delta"] >= 0 {
				delta = v[idx["delta"]]
			}
			beta, gamma := v[idx["beta"]], v[idx["gamma"]]
			q := beta * math.Pow(n, gamma)
			if eta >= 1 {
				return n / (1 + q)
			}
			num := eta*alpha*math.Pow(n, delta) + (1 - eta)
			den := eta*alpha*math.Pow(n, delta-1)*(1+q) + (1 - eta)
			return num / den
		},
	}
}

// IPSOInformed is IPSO with the parameters the phase decomposition
// measures directly — η from the n = 1 phase breakdown and (β, γ) from
// the observed q(n) = n·Wo(n)/Wp(n) trend — pinned, leaving only the
// parameters the speedup sweep must determine (α, δ) free. This is the
// estimator's structural advantage over curve-only models: a superlinear
// q(n) invisible in small-n speedups is measured, not inferred, so the
// pinned parameters do not inflate the AICc complexity penalty. With
// η = 1 the curve S(n) = n/(1+βn^γ) (Eq. 17) has no free parameters at
// all. Fixed-size workloads pin δ = 0.
func IPSOInformed(w WorkloadType, eta, beta, gamma float64) ScalingModel {
	var params []Param
	alphaIdx, deltaIdx := -1, -1
	if eta < 1 {
		params = append(params, Param{Name: "alpha", Min: 1e-6, Max: 1e6, Init: 1, Value: 1})
		alphaIdx = 0
		if w != FixedSize {
			params = append(params, Param{Name: "delta", Min: 0, Max: 1, Init: 0.5, Value: 0.5})
			deltaIdx = 1
		}
	}
	return &zooModel{
		name:   ModelIPSO,
		params: params,
		eval: func(v []float64, n float64) float64 {
			q := 0.0
			if beta > 0 && gamma > 0 {
				q = beta * math.Pow(n, gamma)
			}
			if eta >= 1 {
				return n / (1 + q)
			}
			alpha, delta := 1.0, 0.0
			if alphaIdx >= 0 {
				alpha = v[alphaIdx]
			}
			if deltaIdx >= 0 {
				delta = v[deltaIdx]
			}
			num := eta*alpha*math.Pow(n, delta) + (1 - eta)
			den := eta*alpha*math.Pow(n, delta-1)*(1+q) + (1 - eta)
			return num / den
		},
	}
}

// USLScaling is Gunther's Universal Scalability Law,
//
//	S(n) = n / (1 + σ(n−1) + κn(n−1)),
//
// with contention σ and coherency κ. κ > 0 produces retrograde scaling
// with the analytic optimum n* = √((1−σ)/κ); κ = 0 reduces to Amdahl
// with σ = 1−η.
func USLScaling() ScalingModel {
	return &zooModel{
		name: ModelUSL,
		params: []Param{
			{Name: "sigma", Min: 0, Max: 1, Init: 0.1, Value: 0.1},
			{Name: "kappa", Min: 0, Max: 1, Init: 1e-4, Value: 1e-4},
		},
		eval: func(v []float64, n float64) float64 {
			sigma, kappa := v[0], v[1]
			return n / (1 + sigma*(n-1) + kappa*n*(n-1))
		},
		optimal: func(v []float64, maxN int) (int, float64) {
			sigma, kappa := v[0], v[1]
			if kappa <= 0 {
				return maxN, 0 // monotone: the budget is the optimum
			}
			nStar := math.Sqrt((1 - sigma) / kappa)
			// The continuous optimum brackets two integers; the caller
			// evaluates, so just pick the better of the neighbors.
			lo := math.Max(1, math.Floor(nStar))
			hi := lo + 1
			sAt := func(n float64) float64 { return n / (1 + sigma*(n-1) + kappa*n*(n-1)) }
			best := lo
			if hi <= float64(maxN) && sAt(hi) > sAt(lo) {
				best = hi
			}
			if best > float64(maxN) {
				best = float64(maxN)
			}
			return int(best), 0
		},
	}
}

// AmdahlScaling is the fixed-size law S(n) = 1 / (η/n + 1−η): a single
// parallelizable fraction η, IPSO's fixed-size case with α = 1, q = 0.
func AmdahlScaling() ScalingModel {
	return &zooModel{
		name: ModelAmdahl,
		params: []Param{
			{Name: "eta", Min: 0, Max: 1, Init: 0.9, Value: 0.9},
		},
		eval: func(v []float64, n float64) float64 {
			eta := v[0]
			return 1 / (eta/n + 1 - eta)
		},
	}
}

// GustafsonScaling is the fixed-time (scaled-speedup) law
// S(n) = ηn + 1−η: IPSO's fixed-time case with α = 1, δ = 1, q = 0.
func GustafsonScaling() ScalingModel {
	return &zooModel{
		name: ModelGustafson,
		params: []Param{
			{Name: "eta", Min: 0, Max: 1, Init: 0.9, Value: 0.9},
		},
		eval: func(v []float64, n float64) float64 {
			eta := v[0]
			return eta*n + 1 - eta
		},
	}
}

// PowerScaling is the Schryen-style asymptotic power model S(n) = a·n^b —
// the minimal description of sublinear-but-unbounded scaling, agnostic
// about the mechanism.
func PowerScaling() ScalingModel {
	return &zooModel{
		name: ModelPower,
		params: []Param{
			{Name: "a", Min: 1e-6, Max: 1e6, Init: 1, Value: 1},
			{Name: "b", Min: 0, Max: 1.5, Init: 0.8, Value: 0.8},
		},
		eval: func(v []float64, n float64) float64 {
			return v[0] * math.Pow(n, v[1])
		},
	}
}

// ModelZoo returns fresh instances of every candidate model for the
// given workload dimension, in canonical order. The order is also the
// final tie-break in selection: earlier models win exact ties, so the
// paper's model leads.
func ModelZoo(w WorkloadType) []ScalingModel {
	return []ScalingModel{
		IPSOScaling(w),
		USLScaling(),
		AmdahlScaling(),
		GustafsonScaling(),
		PowerScaling(),
	}
}

// NewZooModel constructs a fresh, unfitted zoo member by name — the
// persistence layer uses this to rebuild a model from its stored
// parameter vector.
func NewZooModel(name string, w WorkloadType) (ScalingModel, error) {
	switch name {
	case ModelIPSO:
		return IPSOScaling(w), nil
	case ModelUSL:
		return USLScaling(), nil
	case ModelAmdahl:
		return AmdahlScaling(), nil
	case ModelGustafson:
		return GustafsonScaling(), nil
	case ModelPower:
		return PowerScaling(), nil
	default:
		return nil, fmt.Errorf("core: unknown scaling model %q", name)
	}
}
