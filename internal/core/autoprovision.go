package core

import (
	"context"
	"errors"
	"fmt"
)

// ProbeFunc measures one scale-out degree on the real (or simulated)
// system: it runs the workload at degree n and returns the phase
// workloads. It is how the measurement-based provisioning algorithm
// talks to the world. The context bounds one probe; implementations
// running real workloads should honor its cancellation.
type ProbeFunc func(ctx context.Context, n int) (Observation, error)

// AutoProvisionOptions configures the measurement-based provisioning
// algorithm.
type AutoProvisionOptions struct {
	// Online tunes the underlying estimator.
	Online OnlineOptions
	// MaxProbeN bounds the probing budget: probing stops (converged or
	// not) once the next recommended degree exceeds it. Default 64.
	MaxProbeN int
	// SeqJobSeconds and PricePerNodeHour frame the provisioning question
	// (see ProvisionInput). SeqJobSeconds 0 means "use the probed n=1
	// job time".
	SeqJobSeconds    float64
	PricePerNodeHour float64
	// MaxN bounds the provisioning sweep. Default 1024.
	MaxN int
}

func (o AutoProvisionOptions) withDefaults() AutoProvisionOptions {
	if o.MaxProbeN == 0 {
		o.MaxProbeN = 64
	}
	if o.MaxN == 0 {
		o.MaxN = 1024
	}
	return o
}

// Plan is the outcome of AutoProvision: the selected scaling model, how
// much probing it took, and the recommended operating points.
type Plan struct {
	// Probed lists the degrees actually measured.
	Probed []int
	// Converged reports whether (δ, γ) reached their tolerances within
	// the probe budget; when false the plan is a best-effort fit.
	Converged bool
	// Estimates holds the IPSO factor-fit diagnostics (η, EX, IN, q and
	// the workload-growth function the cost model uses).
	Estimates Estimates
	// Model is the zoo member the probe data selected — whichever
	// scaling law won on AICc/LOO, IPSO or not.
	Model ScalingModel
	// Selection is the full per-model scoreboard behind that choice.
	Selection ModelSelection
	// Best is the speedup-per-dollar-optimal operating point.
	Best ProvisionPoint
	// HardLimit is the degree beyond which speedup decreases (0 when
	// none was found within MaxN).
	HardLimit int
}

// AutoProvision is the paper's envisioned measurement-based provisioning
// algorithm: probe the system at geometrically spaced small degrees until
// δ and γ are estimated with confidence, fit the scaling-model zoo and
// keep whichever law the data selects, and return the
// speedup-versus-cost-optimal operating point — without ever running
// the workload at large n. The context cancels the probing loop between
// (and, for cooperative probes, during) measurements.
func AutoProvision(ctx context.Context, probe ProbeFunc, opts AutoProvisionOptions) (Plan, error) {
	if probe == nil {
		return Plan{}, errors.New("core: nil probe function")
	}
	opts = opts.withDefaults()
	if opts.PricePerNodeHour <= 0 {
		return Plan{}, fmt.Errorf("core: price %g must be positive", opts.PricePerNodeHour)
	}
	est, err := NewOnlineEstimator(opts.Online)
	if err != nil {
		return Plan{}, err
	}

	plan := Plan{}
	for {
		if err := ctx.Err(); err != nil {
			return Plan{}, err
		}
		n := est.NextProbe()
		if n > opts.MaxProbeN {
			break
		}
		obs, err := probe(ctx, n)
		if err != nil {
			return Plan{}, fmt.Errorf("core: probe at n=%d: %w", n, err)
		}
		provisionProbes.Inc()
		if obs.N == 0 {
			obs.N = float64(n)
		}
		if err := est.Observe(obs); err != nil {
			return Plan{}, err
		}
		plan.Probed = append(plan.Probed, n)
		if len(plan.Probed) >= opts.Online.withDefaults().MinPoints {
			converged, err := est.Converged(ctx)
			if err != nil {
				return Plan{}, err
			}
			if converged {
				plan.Converged = true
				estimatorConverged.Inc()
				break
			}
		}
	}
	if len(plan.Probed) < 2 {
		return Plan{}, errors.New("core: probe budget too small to fit anything")
	}

	estimates, err := est.Estimates()
	if err != nil {
		return Plan{}, err
	}
	plan.Estimates = estimates
	model, sel, err := est.BestModel()
	if err != nil {
		return Plan{}, err
	}
	plan.Model, plan.Selection = model, sel

	seq := opts.SeqJobSeconds
	if seq == 0 {
		t1, err := est.BaselineT1()
		if err != nil {
			return Plan{}, err
		}
		seq = t1
	}
	input := ProvisionInput{
		Model:            model,
		Growth:           estimates.GrowthFactor(),
		SeqJobSeconds:    seq,
		PricePerNodeHour: opts.PricePerNodeHour,
		MaxN:             opts.MaxN,
	}
	best, err := input.BestSpeedupPerDollar()
	if err != nil {
		return Plan{}, err
	}
	plan.Best = best
	if limit, ok, err := input.HardScaleOutLimit(); err == nil && ok {
		plan.HardLimit = limit
	}
	outcome := "budget_exhausted"
	if plan.Converged {
		outcome = "converged"
	}
	provisionDecisions.With(outcome).Inc()
	return plan, nil
}
