package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// persistedEstimates is the on-disk form of a fitted model: the estimates
// plus the n = 1 baselines a Predictor needs. Fields use snake_case tags
// so files are stable across refactors.
type persistedEstimates struct {
	Version   int       `json:"version"`
	Estimates Estimates `json:"estimates"`
	Tp1       float64   `json:"tp1_seconds"`
	Ts1       float64   `json:"ts1_seconds"`
}

// persistVersion is bumped on breaking format changes.
const persistVersion = 1

// persistSchemaZoo is the schema generation that stores an arbitrary
// zoo model's parameter vector. Legacy files (no "schema" field,
// "version" 1) are the IPSO-only estimates generation above; both keep
// loading.
const persistSchemaZoo = 2

// savedParam is one named parameter value of a persisted zoo model.
type savedParam struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// persistedModel is the schema-2 on-disk form: any zoo model's fitted
// parameters, the workload dimension it was fitted under, and the n = 1
// job time needed to turn speedups back into job times.
type persistedModel struct {
	Schema   int          `json:"schema"`
	Model    string       `json:"model"`
	Workload string       `json:"workload"`
	Params   []savedParam `json:"params"`
	T1       float64      `json:"t1_seconds"`
}

// SaveEstimates writes fitted estimates plus the n = 1 phase baselines as
// JSON, so a fit made once (e.g. from production logs) can be reused for
// prediction and provisioning later.
func SaveEstimates(w io.Writer, est Estimates, tp1, ts1 float64) error {
	if tp1 <= 0 || ts1 < 0 {
		return fmt.Errorf("core: invalid baselines tp1=%g ts1=%g", tp1, ts1)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(persistedEstimates{
		Version:   persistVersion,
		Estimates: est,
		Tp1:       tp1,
		Ts1:       ts1,
	}); err != nil {
		return fmt.Errorf("core: save estimates: %w", err)
	}
	return nil
}

// LoadEstimates reads a saved fit and rebuilds the Predictor.
func LoadEstimates(r io.Reader) (Estimates, Predictor, error) {
	var p persistedEstimates
	dec := json.NewDecoder(r)
	if err := dec.Decode(&p); err != nil {
		return Estimates{}, Predictor{}, fmt.Errorf("core: load estimates: %w", err)
	}
	if p.Version != persistVersion {
		return Estimates{}, Predictor{}, fmt.Errorf("core: unsupported estimates version %d (want %d)", p.Version, persistVersion)
	}
	if p.Tp1 <= 0 || p.Ts1 < 0 {
		return Estimates{}, Predictor{}, fmt.Errorf("core: corrupt baselines tp1=%g ts1=%g", p.Tp1, p.Ts1)
	}
	if p.Estimates.Eta < 0 || p.Estimates.Eta > 1 {
		return Estimates{}, Predictor{}, fmt.Errorf("core: corrupt η = %g", p.Estimates.Eta)
	}
	pred, err := NewPredictor(p.Estimates, p.Tp1, p.Ts1)
	if err != nil {
		return Estimates{}, Predictor{}, err
	}
	return p.Estimates, pred, nil
}

// SaveScalingModel writes any zoo model's fitted parameters as schema-2
// JSON: the model name, the workload dimension, the named parameter
// values, and the n = 1 job time.
func SaveScalingModel(w io.Writer, m ScalingModel, workload WorkloadType, t1 float64) error {
	if m == nil {
		return fmt.Errorf("core: nil scaling model")
	}
	if workload != FixedTime && workload != FixedSize {
		return fmt.Errorf("core: unknown workload type %v", workload)
	}
	if t1 <= 0 {
		return fmt.Errorf("core: invalid baseline t1=%g", t1)
	}
	params := m.Params()
	saved := make([]savedParam, len(params))
	for i, p := range params {
		saved[i] = savedParam{Name: p.Name, Value: p.Value}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(persistedModel{
		Schema:   persistSchemaZoo,
		Model:    m.Name(),
		Workload: workload.String(),
		Params:   saved,
		T1:       t1,
	}); err != nil {
		return fmt.Errorf("core: save scaling model: %w", err)
	}
	return nil
}

// LoadScalingModel reads either persistence generation and rebuilds a
// fitted ScalingModel. Schema-2 files restore the named zoo model with
// its stored parameter vector; legacy version-1 estimates files (which
// predate the zoo and are IPSO-only) are converted to the IPSO model via
// their asymptotic parameters, under the fixed-time dimension they were
// fitted in.
func LoadScalingModel(r io.Reader) (ScalingModel, WorkloadType, float64, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("core: load scaling model: %w", err)
	}
	var probe struct {
		Schema int `json:"schema"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return nil, 0, 0, fmt.Errorf("core: load scaling model: %w", err)
	}

	// Legacy generation: no schema field — an IPSO-only estimates file.
	if probe.Schema == 0 {
		est, pred, err := LoadEstimates(bytes.NewReader(raw))
		if err != nil {
			return nil, 0, 0, err
		}
		a := est.Asymptotic()
		m := IPSOScaling(FixedTime)
		if err := m.SetParams([]float64{a.Eta, a.Alpha, a.Delta, a.Beta, a.Gamma}); err != nil {
			return nil, 0, 0, err
		}
		return m, FixedTime, pred.T1, nil
	}

	if probe.Schema != persistSchemaZoo {
		return nil, 0, 0, fmt.Errorf("core: unsupported scaling-model schema %d (want %d)", probe.Schema, persistSchemaZoo)
	}
	var p persistedModel
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, 0, 0, fmt.Errorf("core: load scaling model: %w", err)
	}
	var workload WorkloadType
	switch p.Workload {
	case FixedTime.String():
		workload = FixedTime
	case FixedSize.String():
		workload = FixedSize
	default:
		return nil, 0, 0, fmt.Errorf("core: unknown workload type %q", p.Workload)
	}
	if p.T1 <= 0 {
		return nil, 0, 0, fmt.Errorf("core: corrupt baseline t1=%g", p.T1)
	}
	m, err := NewZooModel(p.Model, workload)
	if err != nil {
		return nil, 0, 0, err
	}
	want := m.Params()
	if len(p.Params) != len(want) {
		return nil, 0, 0, fmt.Errorf("core: %s takes %d parameters, file has %d", p.Model, len(want), len(p.Params))
	}
	values := make([]float64, len(p.Params))
	for i, sp := range p.Params {
		if sp.Name != want[i].Name {
			return nil, 0, 0, fmt.Errorf("core: %s parameter %d is %q, file has %q", p.Model, i, want[i].Name, sp.Name)
		}
		values[i] = sp.Value
	}
	if err := m.SetParams(values); err != nil {
		return nil, 0, 0, err
	}
	return m, workload, p.T1, nil
}
