package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// persistedEstimates is the on-disk form of a fitted model: the estimates
// plus the n = 1 baselines a Predictor needs. Fields use snake_case tags
// so files are stable across refactors.
type persistedEstimates struct {
	Version   int       `json:"version"`
	Estimates Estimates `json:"estimates"`
	Tp1       float64   `json:"tp1_seconds"`
	Ts1       float64   `json:"ts1_seconds"`
}

// persistVersion is bumped on breaking format changes.
const persistVersion = 1

// SaveEstimates writes fitted estimates plus the n = 1 phase baselines as
// JSON, so a fit made once (e.g. from production logs) can be reused for
// prediction and provisioning later.
func SaveEstimates(w io.Writer, est Estimates, tp1, ts1 float64) error {
	if tp1 <= 0 || ts1 < 0 {
		return fmt.Errorf("core: invalid baselines tp1=%g ts1=%g", tp1, ts1)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(persistedEstimates{
		Version:   persistVersion,
		Estimates: est,
		Tp1:       tp1,
		Ts1:       ts1,
	}); err != nil {
		return fmt.Errorf("core: save estimates: %w", err)
	}
	return nil
}

// LoadEstimates reads a saved fit and rebuilds the Predictor.
func LoadEstimates(r io.Reader) (Estimates, Predictor, error) {
	var p persistedEstimates
	dec := json.NewDecoder(r)
	if err := dec.Decode(&p); err != nil {
		return Estimates{}, Predictor{}, fmt.Errorf("core: load estimates: %w", err)
	}
	if p.Version != persistVersion {
		return Estimates{}, Predictor{}, fmt.Errorf("core: unsupported estimates version %d (want %d)", p.Version, persistVersion)
	}
	if p.Tp1 <= 0 || p.Ts1 < 0 {
		return Estimates{}, Predictor{}, fmt.Errorf("core: corrupt baselines tp1=%g ts1=%g", p.Tp1, p.Ts1)
	}
	if p.Estimates.Eta < 0 || p.Estimates.Eta > 1 {
		return Estimates{}, Predictor{}, fmt.Errorf("core: corrupt η = %g", p.Estimates.Eta)
	}
	pred, err := NewPredictor(p.Estimates, p.Tp1, p.Ts1)
	if err != nil {
		return Estimates{}, Predictor{}, err
	}
	return p.Estimates, pred, nil
}
