package core

import (
	"context"
	"errors"
	"fmt"

	"ipso/internal/stats"
)

// This file implements the paper's stated future work (Section VI): "to
// develop measurement-based resource provisioning algorithms ... The key
// is to find a solution as to how to quickly estimate the two scaling
// parameters, δ and γ." OnlineEstimator ingests measurements one
// scale-out degree at a time, maintains bootstrap confidence intervals
// for δ and γ, recommends the next degree to probe, and declares
// convergence once the exponents are pinned down — at which point the
// fitted model zoo (BestModel) answers provisioning questions for any
// larger n with whichever scaling law the data favors.

// OnlineOptions tunes the estimator.
type OnlineOptions struct {
	// Level is the bootstrap CI coverage (default 0.9).
	Level float64
	// DeltaTol and GammaTol are the CI widths below which δ and γ count
	// as estimated (default 0.2 each).
	DeltaTol float64
	GammaTol float64
	// MinPoints is the minimum number of observed degrees before
	// convergence can be declared (default 4).
	MinPoints int
	// BootstrapReps and Seed drive the resampling (defaults 400, 1).
	BootstrapReps int
	Seed          int64
	// SerialPrecision matches Measurements.SerialPrecision.
	SerialPrecision float64
	// Workload selects the zoo dimension for model fitting (default
	// FixedTime): it decides whether IPSO's δ is free or pinned at 0.
	Workload WorkloadType
}

func (o OnlineOptions) withDefaults() OnlineOptions {
	if o.Level == 0 {
		o.Level = 0.9
	}
	if o.DeltaTol == 0 {
		o.DeltaTol = 0.2
	}
	if o.GammaTol == 0 {
		o.GammaTol = 0.2
	}
	if o.MinPoints == 0 {
		o.MinPoints = 4
	}
	if o.BootstrapReps == 0 {
		o.BootstrapReps = 400
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workload == 0 {
		o.Workload = FixedTime
	}
	return o
}

func (o OnlineOptions) validate() error {
	if o.Level <= 0 || o.Level >= 1 {
		return fmt.Errorf("core: CI level %g outside (0,1)", o.Level)
	}
	if o.DeltaTol <= 0 || o.GammaTol <= 0 {
		return errors.New("core: tolerances must be positive")
	}
	if o.MinPoints < 3 {
		return fmt.Errorf("core: MinPoints %d too small (need >= 3)", o.MinPoints)
	}
	return nil
}

// Observation is one probed scale-out degree.
type Observation struct {
	N       float64
	Wp      float64 // total parallelizable workload (seconds)
	Ws      float64 // serial workload (seconds)
	Wo      float64 // scale-out-induced workload (seconds)
	MaxTask float64 // measured E[max{Tp,i(n)}] (seconds); 0 if unknown
}

// OnlineEstimator accumulates observations and tracks (δ, γ) uncertainty.
type OnlineEstimator struct {
	opts OnlineOptions
	obs  []Observation
}

// NewOnlineEstimator returns an estimator with the given options.
func NewOnlineEstimator(opts OnlineOptions) (*OnlineEstimator, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return &OnlineEstimator{opts: opts}, nil
}

// Observe appends one measurement; degrees must be strictly increasing.
func (e *OnlineEstimator) Observe(o Observation) error {
	if o.N < 1 {
		return fmt.Errorf("core: observation at n=%g (< 1)", o.N)
	}
	if len(e.obs) > 0 && o.N <= e.obs[len(e.obs)-1].N {
		return fmt.Errorf("core: observations must have increasing n (got %g after %g)", o.N, e.obs[len(e.obs)-1].N)
	}
	if o.Wp <= 0 || o.Ws < 0 || o.Wo < 0 {
		return fmt.Errorf("core: invalid workloads in observation %+v", o)
	}
	e.obs = append(e.obs, o)
	estimateUpdates.Inc()
	return nil
}

// Count returns the number of observations so far.
func (e *OnlineEstimator) Count() int { return len(e.obs) }

// measurements converts the observations to the batch-estimation input.
func (e *OnlineEstimator) measurements() Measurements {
	m := Measurements{SerialPrecision: e.opts.SerialPrecision}
	for _, o := range e.obs {
		m.N = append(m.N, o.N)
		m.Wp = append(m.Wp, o.Wp)
		m.Ws = append(m.Ws, o.Ws)
		m.Wo = append(m.Wo, o.Wo)
		m.MaxTask = append(m.MaxTask, o.MaxTask)
	}
	return m
}

// Estimates runs the batch fit on everything observed so far.
func (e *OnlineEstimator) Estimates() (Estimates, error) {
	if len(e.obs) < 2 {
		return Estimates{}, fmt.Errorf("core: need >= 2 observations, have %d", len(e.obs))
	}
	return Estimate(e.measurements())
}

// DeltaCI returns the bootstrap interval for δ (the ε(n) ≈ α·n^δ
// exponent).
func (e *OnlineEstimator) DeltaCI(ctx context.Context) (stats.BootstrapCI, error) {
	est, err := e.Estimates()
	if err != nil {
		return stats.BootstrapCI{}, err
	}
	m := e.measurements()
	// Rebuild the ε series exactly as Estimate does.
	wp1, ws1 := m.Wp[0], m.Ws[0]
	if m.N[0] != 1 {
		// Without an n=1 point the estimator still works off the batch
		// fit's own normalization; use the first point as the base.
		wp1, ws1 = m.Wp[0]/m.N[0], m.Ws[0]
	}
	if ws1 <= e.opts.SerialPrecision {
		// No serial portion: δ is the EX exponent, which for any
		// fixed-time workload is pinned at 1 — report a degenerate CI
		// around the fitted value.
		return stats.BootstrapCI{Low: est.Epsilon.Exponent, High: est.Epsilon.Exponent, Point: est.Epsilon.Exponent}, nil
	}
	eps := make([]float64, len(m.N))
	for i := range m.N {
		ex := m.Wp[i] / wp1
		in := m.Ws[i] / ws1
		if in <= 0 {
			return stats.BootstrapCI{}, fmt.Errorf("core: nonpositive IN at n=%g", m.N[i])
		}
		eps[i] = ex / in
	}
	_, expCI, err := stats.BootstrapPowerLaw(ctx, m.N, eps, e.opts.BootstrapReps, e.opts.Level, e.opts.Seed)
	if err != nil {
		return stats.BootstrapCI{}, err
	}
	return expCI, nil
}

// qDetectable is the q(n) value at the largest probed degree above which
// the scale-out-induced workload is treated as present. It is
// deliberately lower than the batch estimator's 5%-mean threshold: a
// superlinear q(n) is tiny at the small degrees the online estimator
// probes, which is exactly why γ must be fitted from the raw trend (the
// Section VI challenge of "quickly estimating δ and γ").
const qDetectable = 0.02

// qSeries returns the positive points of q(n) = n·Wo(n)/Wp(n).
func (e *OnlineEstimator) qSeries() (ns, qs []float64) {
	for _, o := range e.obs {
		q := o.N * o.Wo / o.Wp
		if q > 1e-9 {
			ns = append(ns, o.N)
			qs = append(qs, q)
		}
	}
	return ns, qs
}

// GammaCI returns the bootstrap interval for γ (the q(n) ≈ β·n^γ
// exponent) and hasOverhead=false when the scale-out-induced workload is
// undetectable at the probed degrees (γ is then 0 by the paper's
// convention).
func (e *OnlineEstimator) GammaCI(ctx context.Context) (ci stats.BootstrapCI, hasOverhead bool, err error) {
	ns, qs := e.qSeries()
	if len(qs) < 3 || qs[len(qs)-1] < qDetectable {
		return stats.BootstrapCI{}, false, nil
	}
	_, expCI, err := stats.BootstrapPowerLaw(ctx, ns, qs, e.opts.BootstrapReps, e.opts.Level, e.opts.Seed)
	if err != nil {
		return stats.BootstrapCI{}, true, err
	}
	return expCI, true, nil
}

// Converged reports whether δ (and γ, when overhead is present) are
// estimated to within the configured tolerances.
func (e *OnlineEstimator) Converged(ctx context.Context) (bool, error) {
	if len(e.obs) < e.opts.MinPoints {
		return false, nil
	}
	dci, err := e.DeltaCI(ctx)
	if err != nil {
		return false, err
	}
	if dci.Width() > e.opts.DeltaTol {
		return false, nil
	}
	gci, hasOverhead, err := e.GammaCI(ctx)
	if err != nil {
		return false, err
	}
	if hasOverhead && gci.Width() > e.opts.GammaTol {
		return false, nil
	}
	return true, nil
}

// NextProbe recommends the next scale-out degree to measure: doubling
// from the largest observed degree (geometric spacing maximizes leverage
// on power-law exponents per probe), starting from 1.
func (e *OnlineEstimator) NextProbe() int {
	if len(e.obs) == 0 {
		return 1
	}
	return int(e.obs[len(e.obs)-1].N * 2)
}

// BaselineT1 returns the n = 1 whole-job time T(1) = Wp(1) + Ws(1),
// with a sub-precision serial phase zeroed. The first observation must
// be at n = 1.
func (e *OnlineEstimator) BaselineT1() (float64, error) {
	if len(e.obs) == 0 || e.obs[0].N != 1 {
		return 0, errors.New("core: need an n=1 baseline observation")
	}
	ts1 := e.obs[0].Ws
	if ts1 <= e.opts.SerialPrecision {
		ts1 = 0
	}
	return e.obs[0].Wp + ts1, nil
}

// SpeedupSweep derives the measured speedup at every observed degree.
// Rearranging Eq. (8): the sequential time of the n-workload is
// Wp(n) + Ws(n), and the parallel time is the split phase (measured
// E[max Tp,i] when available, Wp(n)/n otherwise) plus the serial and
// scale-out-induced phases, so S(n) = (Wp+Ws) / (split + Ws + Wo).
// This is the sweep the model zoo is fitted against.
func (e *OnlineEstimator) SpeedupSweep() (ns, speedups []float64, err error) {
	ns = make([]float64, 0, len(e.obs))
	speedups = make([]float64, 0, len(e.obs))
	for _, o := range e.obs {
		split := o.MaxTask
		if split <= 0 {
			split = o.Wp / o.N
		}
		par := split + o.Ws + o.Wo
		if par <= 0 {
			return nil, nil, fmt.Errorf("core: nonpositive parallel time at n=%g", o.N)
		}
		ns = append(ns, o.N)
		speedups = append(speedups, (o.Wp+o.Ws)/par)
	}
	return ns, speedups, nil
}

// zoo builds the candidate list for this estimator. When an n = 1
// baseline exists, the generic IPSO member is swapped for the
// phase-informed variant: η comes from the measured phase breakdown and
// (β, γ) from the observed q(n) trend — the same direct q fit the
// Section VI procedure relies on, since a superlinear q(n) is invisible
// in small-n speedups but measured outright in the traces.
func (e *OnlineEstimator) zoo() []ScalingModel {
	zoo := ModelZoo(e.opts.Workload)
	if len(e.obs) == 0 || e.obs[0].N != 1 {
		return zoo
	}
	ws1 := e.obs[0].Ws
	if ws1 <= e.opts.SerialPrecision {
		ws1 = 0
	}
	eta, err := EtaFromPhases(e.obs[0].Wp, ws1)
	if err != nil {
		return zoo
	}
	beta, gamma := 0.0, 0.0
	if ns, qs := e.qSeries(); len(qs) >= 3 && qs[len(qs)-1] >= qDetectable {
		if qFit, err := stats.PowerLaw(ns, qs); err == nil {
			beta, gamma = qFit.Coeff, qFit.Exponent
		}
	}
	zoo[0] = IPSOInformed(e.opts.Workload, eta, beta, gamma)
	return zoo
}

// FitZoo fits the full model zoo for the configured workload dimension
// to the derived speedup sweep and scores every candidate by AICc and
// leave-one-out error. The returned models are the fitted instances, in
// the same order as the selection's Fits.
func (e *OnlineEstimator) FitZoo() (ModelSelection, []ScalingModel, error) {
	ns, ss, err := e.SpeedupSweep()
	if err != nil {
		return ModelSelection{}, nil, err
	}
	zoo := e.zoo()
	sel, err := FitModels(ns, ss, zoo)
	if err != nil {
		return ModelSelection{}, nil, err
	}
	return sel, zoo, nil
}

// BestModel fits the zoo and returns the currently selected scaling
// model — whichever candidate the data favors, IPSO or not — together
// with the full scoreboard.
func (e *OnlineEstimator) BestModel() (ScalingModel, ModelSelection, error) {
	sel, zoo, err := e.FitZoo()
	if err != nil {
		return nil, ModelSelection{}, err
	}
	if sel.Best < 0 {
		return nil, sel, errors.New("core: no scaling model fitted the sweep")
	}
	return zoo[sel.Best], sel, nil
}
