package core

import (
	"math"
	"strings"
	"testing"

	"ipso/internal/obs"
)

// feedEq17 sends exact fixed-time IPSO observations (η = 1, Ws = 0,
// Wo = β·n^γ) for the given degrees, in the given order.
func feedEq17(t *testing.T, feed *LiveFeed, beta, gamma float64, ns []float64) {
	t.Helper()
	for _, n := range ns {
		o := Observation{N: n, Wp: n, Ws: 0, Wo: beta * math.Pow(n, gamma), MaxTask: 1}
		if err := feed.Observe(o); err != nil {
			t.Fatalf("observe n=%g: %v", n, err)
		}
	}
}

// TestLiveFeedRecoversGroundTruth: a feed of exact Eq. 17 observations
// must select the phase-informed IPSO model and hit the analytic
// optimal degree.
func TestLiveFeedRecoversGroundTruth(t *testing.T) {
	const beta, gamma = 0.02, 1.5
	feed := NewLiveFeed(LiveFeedOptions{MaxN: 64, Metrics: obs.NewRegistry()})
	feedEq17(t, feed, beta, gamma, []float64{1, 2, 4, 8, 16, 32, 64})
	sel, err := feed.Refit()
	if err != nil {
		t.Fatal(err)
	}
	best, _, err := feed.Best()
	if err != nil {
		t.Fatal(err)
	}
	if best.Name() != ModelIPSO {
		t.Fatalf("selected %q, want %q (fits %v)", best.Name(), ModelIPSO, len(sel.Fits))
	}
	nStar, sStar, err := feed.OptimalN()
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(1/(beta*(gamma-1)), 1/gamma) // ≈ 21.5
	if float64(nStar) < want-2 || float64(nStar) > want+2 {
		t.Fatalf("optimal n = %d, want near %.1f", nStar, want)
	}
	if sStar <= 1 {
		t.Fatalf("optimal speedup %g, want > 1", sStar)
	}
	if feed.Refits() != 1 {
		t.Fatalf("Refits = %d, want 1", feed.Refits())
	}
}

// TestLiveFeedOrderAndRepeats: observations arriving out of order and
// repeatedly must aggregate to the same fit as a sorted single pass —
// live telemetry has no probe schedule.
func TestLiveFeedOrderAndRepeats(t *testing.T) {
	const beta, gamma = 0.05, 1.4
	sorted := NewLiveFeed(LiveFeedOptions{MaxN: 128, Metrics: obs.NewRegistry()})
	feedEq17(t, sorted, beta, gamma, []float64{1, 2, 4, 8, 16, 32})

	scrambled := NewLiveFeed(LiveFeedOptions{MaxN: 128, Metrics: obs.NewRegistry()})
	// Reverse order, then every degree again (repeats average to the
	// identical value).
	feedEq17(t, scrambled, beta, gamma, []float64{32, 16, 8, 4, 2, 1})
	feedEq17(t, scrambled, beta, gamma, []float64{4, 32, 1, 16, 2, 8})

	wantDegrees := []float64{1, 2, 4, 8, 16, 32}
	got := scrambled.Degrees()
	if len(got) != len(wantDegrees) {
		t.Fatalf("degrees %v, want %v", got, wantDegrees)
	}
	for i, n := range wantDegrees {
		if got[i] != n {
			t.Fatalf("degrees %v, want ascending %v", got, wantDegrees)
		}
	}

	if _, err := sorted.Refit(); err != nil {
		t.Fatal(err)
	}
	if _, err := scrambled.Refit(); err != nil {
		t.Fatal(err)
	}
	n1, s1, _ := sorted.OptimalN()
	n2, s2, _ := scrambled.OptimalN()
	if n1 != n2 || math.Abs(s1-s2) > 1e-6 {
		t.Fatalf("scrambled feed fit (n=%d, S=%g) diverged from sorted (n=%d, S=%g)", n2, s2, n1, s1)
	}
}

// TestLiveFeedRejectsInvalid: garbage telemetry is rejected at the
// door, and refitting with too few degrees fails cleanly.
func TestLiveFeedRejectsInvalid(t *testing.T) {
	feed := NewLiveFeed(LiveFeedOptions{Metrics: obs.NewRegistry()})
	bad := []Observation{
		{N: 0.5, Wp: 1},
		{N: 2, Wp: 0},
		{N: 2, Wp: 1, Ws: -1},
		{N: 2, Wp: 1, Wo: -0.1},
	}
	for _, o := range bad {
		if err := feed.Observe(o); err == nil {
			t.Errorf("observation %+v accepted", o)
		}
	}
	if _, _, err := feed.Best(); err == nil {
		t.Error("Best before any refit must error")
	}
	if _, _, err := feed.OptimalN(); err == nil {
		t.Error("OptimalN before any refit must error")
	}
	// Two degrees are below FitModels' floor.
	feedEq17(t, feed, 0.02, 1.5, []float64{1, 2})
	if _, err := feed.Refit(); err == nil {
		t.Error("refit with two degrees must error")
	}
}

// TestLiveFeedExportsSelection: the gauges on the registry must mirror
// the selection — winner at 1, losers at 0, scores and the optimum
// present — and update on the next refit.
func TestLiveFeedExportsSelection(t *testing.T) {
	reg := obs.NewRegistry()
	feed := NewLiveFeed(LiveFeedOptions{MaxN: 64, Metrics: reg})
	feedEq17(t, feed, 0.02, 1.5, []float64{1, 2, 4, 8, 16, 32, 64})
	if _, err := feed.Refit(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParsePrometheus(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("live-fit exposition failed strict parse: %v", err)
	}
	find := func(name string) obs.PromFamily {
		t.Helper()
		for _, f := range fams {
			if f.Name == name {
				return f
			}
		}
		t.Fatalf("family %s missing:\n%s", name, sb.String())
		return obs.PromFamily{}
	}

	selected := find("core_livefit_selected_model")
	ones := 0
	for _, s := range selected.Samples {
		if s.Value == 1 {
			ones++
			if s.Label("model") != ModelIPSO {
				t.Fatalf("selected model gauge at 1 for %q, want %q", s.Label("model"), ModelIPSO)
			}
		}
	}
	if ones != 1 {
		t.Fatalf("%d selected_model gauges at 1, want exactly 1", ones)
	}
	nStar, _, _ := feed.OptimalN()
	if s, ok := find("core_livefit_optimal_n").Sample("core_livefit_optimal_n"); !ok || s.Value != float64(nStar) {
		t.Fatalf("optimal_n gauge %v, want %d", s.Value, nStar)
	}
	if s, ok := find("core_livefit_observations_total").Sample("core_livefit_observations_total"); !ok || s.Value != 7 {
		t.Fatalf("observations_total %v, want 7", s.Value)
	}
	if s, ok := find("core_livefit_degrees").Sample("core_livefit_degrees"); !ok || s.Value != 7 {
		t.Fatalf("degrees gauge %v, want 7", s.Value)
	}
	if s, ok := find("core_livefit_refits_total").Sample("core_livefit_refits_total", [2]string{"outcome", "ok"}); !ok || s.Value != 1 {
		t.Fatalf("refits_total{outcome=ok} %v, want 1", s.Value)
	}
	aicc := find("core_livefit_model_aicc")
	if len(aicc.Samples) < 3 {
		t.Fatalf("only %d AICc gauges exported", len(aicc.Samples))
	}
}
