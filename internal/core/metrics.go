package core

import (
	"ipso/internal/obs"
)

// Estimator and provisioning instrumentation, on the process-wide obs
// registry: how often the online model is refreshed and what the
// measurement-based provisioning loop decides. These close the
// self-measurement loop of Section VI — the estimator that fits other
// systems' scaling is itself observable.
var (
	estimateUpdates = obs.Default().Counter("core_estimate_updates_total",
		"Observations ingested by online estimators.")
	estimatorConverged = obs.Default().Counter("core_estimator_converged_total",
		"Online estimators that reached their (δ, γ) tolerance.")
	provisionProbes = obs.Default().Counter("core_provision_probes_total",
		"Workload probes executed by AutoProvision.")
	provisionDecisions = obs.Default().CounterVec("core_provision_decisions_total",
		"Provisioning plans produced, by outcome (converged or budget_exhausted).", "outcome")
	modelFits = obs.Default().CounterVec("core_model_fits_total",
		"Scaling-model zoo fits that completed, by model.", "model")
	modelFitFailures = obs.Default().CounterVec("core_model_fit_failures_total",
		"Scaling-model zoo fits that errored, by model.", "model")
	modelSelected = obs.Default().CounterVec("core_model_selected_total",
		"Model-selection winners (AICc with LOO tie-break), by model.", "model")
)
