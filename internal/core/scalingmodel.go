package core

import (
	"errors"
	"fmt"
	"math"

	"ipso/internal/stats"
)

// This file makes the package model-agnostic: IPSO (Eqs. 9-17) becomes
// one member of a zoo of pluggable scaling models behind the
// ScalingModel interface, fitted by the same Levenberg-Marquardt solver
// and compared by information criteria. The paper's own claim is
// comparative — IPSO subsumes Amdahl and Gustafson and explains regimes
// they cannot — and the only honest way to operationalize that claim is
// to fit the competitors on equal footing and let the data select.

// Param describes one free parameter of a scaling model: its name, the
// box bounds the fit clamps to, the solver's initial guess, and the
// current (fitted or installed) value.
type Param struct {
	Name     string
	Min, Max float64
	Init     float64
	Value    float64
}

// FitReport is the per-model outcome of ScalingModel.Fit: the solver's
// residual and convergence report on the sweep the model was fitted to.
type FitReport struct {
	SSE       float64
	Iters     int
	Converged bool
}

// ScalingModel is a named parametric speedup model S(n), n >= 1. A model
// is stateful: Fit installs the best parameter vector found and further
// calls evaluate the fitted curve. All zoo members normalize S(1) ≈ 1.
type ScalingModel interface {
	// Name is the stable identifier ("ipso", "usl", "amdahl", ...).
	Name() string
	// Params returns the parameter vector with bounds, initial guesses
	// and current values.
	Params() []Param
	// SetParams installs a parameter vector (e.g. loaded from disk).
	// Values are clamped into the declared bounds; the length must match.
	SetParams(values []float64) error
	// Speedup evaluates S(n) at the current parameters.
	Speedup(n float64) (float64, error)
	// Predict returns the predicted response time at degree n of the
	// n = 1-equivalent workload: T(n) = t1 / S(n). (Speedup is defined
	// against the n = 1 reference, so workload growth for fixed-time
	// runs is already inside S.)
	Predict(t1, n float64) (float64, error)
	// OptimalN returns the speedup-maximizing degree on [1, maxN] —
	// analytically where the model admits it (USL's √((1−σ)/κ)),
	// numerically otherwise. For monotone models it is maxN.
	OptimalN(maxN int) (nStar int, sStar float64, err error)
	// Fit estimates the parameters from a measured sweep by nonlinear
	// least squares, starting from the declared initial guesses.
	Fit(ns, speedups []float64) (FitReport, error)
}

// zooModel is the shared implementation of every zoo member: a named
// parameter vector plus a speedup function over it. An optional optimal
// hook supplies an analytic optimal-n; absent, OptimalN grid-searches.
type zooModel struct {
	name    string
	params  []Param
	eval    func(v []float64, n float64) float64
	optimal func(v []float64, maxN int) (int, float64)
}

func (m *zooModel) Name() string { return m.name }

func (m *zooModel) Params() []Param {
	out := make([]Param, len(m.params))
	copy(out, m.params)
	return out
}

func (m *zooModel) values() []float64 {
	v := make([]float64, len(m.params))
	for i, p := range m.params {
		v[i] = p.Value
	}
	return v
}

// clamp boxes a raw solver vector into the declared bounds.
func (m *zooModel) clamp(v []float64) []float64 {
	out := make([]float64, len(v))
	for i := range v {
		out[i] = math.Min(math.Max(v[i], m.params[i].Min), m.params[i].Max)
	}
	return out
}

func (m *zooModel) SetParams(values []float64) error {
	if len(values) != len(m.params) {
		return fmt.Errorf("core: %s takes %d parameters, got %d", m.name, len(m.params), len(values))
	}
	for i, v := range values {
		if math.IsNaN(v) {
			return fmt.Errorf("core: %s parameter %s is NaN", m.name, m.params[i].Name)
		}
	}
	for i, v := range m.clamp(values) {
		m.params[i].Value = v
	}
	return nil
}

func (m *zooModel) Speedup(n float64) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("core: scale-out degree n = %g must be >= 1", n)
	}
	s := m.eval(m.values(), n)
	if math.IsNaN(s) || math.IsInf(s, 0) || s <= 0 {
		return 0, fmt.Errorf("core: %s speedup not positive-finite at n=%g (params %v)", m.name, n, m.values())
	}
	return s, nil
}

func (m *zooModel) Predict(t1, n float64) (float64, error) {
	if t1 <= 0 {
		return 0, fmt.Errorf("core: baseline time %g must be positive", t1)
	}
	s, err := m.Speedup(n)
	if err != nil {
		return 0, err
	}
	return t1 / s, nil
}

func (m *zooModel) OptimalN(maxN int) (int, float64, error) {
	if maxN < 1 {
		return 0, 0, fmt.Errorf("core: maxN = %d must be >= 1", maxN)
	}
	if m.optimal != nil {
		nStar, _ := m.optimal(m.values(), maxN)
		// Evaluate through Speedup so the analytic argmax and the
		// reported maximum always agree with the model itself.
		s, err := m.Speedup(float64(nStar))
		if err != nil {
			return 0, 0, err
		}
		return nStar, s, nil
	}
	bestN, bestS := 1, math.Inf(-1)
	for n := 1; n <= maxN; n++ {
		s, err := m.Speedup(float64(n))
		if err != nil {
			return 0, 0, err
		}
		if s > bestS {
			bestN, bestS = n, s
		}
	}
	return bestN, bestS, nil
}

func (m *zooModel) Fit(ns, speedups []float64) (FitReport, error) {
	if len(ns) != len(speedups) || len(ns) == 0 {
		return FitReport{}, fmt.Errorf("core: fit needs equal, nonempty sweeps (%d vs %d)", len(ns), len(speedups))
	}
	// A fully pinned model (e.g. phase-informed IPSO with η = 1) has
	// nothing to fit: score the curve as-is.
	if len(m.params) == 0 {
		sse := 0.0
		for i := range ns {
			r := speedups[i] - m.eval(nil, ns[i])
			sse += r * r
		}
		if math.IsNaN(sse) || math.IsInf(sse, 0) {
			return FitReport{}, fmt.Errorf("core: %s not finite on the sweep", m.name)
		}
		return FitReport{SSE: sse, Converged: true}, nil
	}
	p0 := make([]float64, len(m.params))
	for i, p := range m.params {
		p0[i] = p.Init
	}
	// The solver is unconstrained; the model function clamps, so
	// excursions outside the box evaluate at the boundary and the
	// returned vector is re-clamped before being installed.
	clamped := func(v []float64, n float64) float64 { return m.eval(m.clamp(v), n) }
	res, err := stats.NonlinearFit(clamped, ns, speedups, p0, stats.NLSOptions{})
	if err != nil {
		return FitReport{}, fmt.Errorf("core: fit %s: %w", m.name, err)
	}
	if err := m.SetParams(res.Params); err != nil {
		return FitReport{}, err
	}
	return FitReport{SSE: res.SSE, Iters: res.Iters, Converged: res.Converged}, nil
}

// ModelFit is one zoo member's performance on a sweep: the fitted
// parameters, the residual, and the two selection scores.
type ModelFit struct {
	Name   string
	Params []Param
	FitReport
	// AICc is the small-sample Akaike information criterion
	// n·ln(SSE/n) + 2k + 2k(k+1)/(n−k−1); +Inf when the sweep has too
	// few points to score a k-parameter model.
	AICc float64
	// LOO is the root-mean-square leave-one-out prediction error: each
	// point is held out, the model is refitted, and the held-out
	// speedup is predicted. NaN when the sweep is too small to refit.
	LOO float64
	// Err is non-nil when the fit itself failed; the scores are then
	// meaningless and the model is excluded from selection.
	Err error
}

// ModelSelection is the outcome of fitting a zoo to one sweep.
type ModelSelection struct {
	// Fits holds one entry per candidate model, in zoo order.
	Fits []ModelFit
	// Best indexes the selected fit, or -1 when nothing fitted.
	Best int
}

// BestFit returns the selected fit; ok is false when no model fitted.
func (s ModelSelection) BestFit() (ModelFit, bool) {
	if s.Best < 0 || s.Best >= len(s.Fits) {
		return ModelFit{}, false
	}
	return s.Fits[s.Best], true
}

// sseFloor keeps AICc finite on exact synthetic data: below it, residual
// differences are numerical noise and parameter count should decide.
const sseFloor = 1e-18

// aicc scores a fit: lower is better. k counts free parameters.
func aicc(sse float64, n, k int) float64 {
	if n-k-1 <= 0 {
		return math.Inf(1)
	}
	meanSq := math.Max(sse/float64(n), sseFloor)
	return float64(n)*math.Log(meanSq) + float64(2*k) + float64(2*k*(k+1))/float64(n-k-1)
}

// looError computes the root-mean-square leave-one-out prediction error
// by refitting the model on each n−1 subset. It leaves the model fitted
// to the full sweep on return. NaN when the subsets cannot determine the
// parameters or any refit fails.
func looError(m ScalingModel, ns, speedups []float64) float64 {
	k := len(m.Params())
	if len(ns)-1 < k || len(ns) < 3 {
		return math.NaN()
	}
	subNs := make([]float64, 0, len(ns)-1)
	subSs := make([]float64, 0, len(ns)-1)
	sum, ok := 0.0, true
	for hold := range ns {
		subNs, subSs = subNs[:0], subSs[:0]
		for i := range ns {
			if i != hold {
				subNs = append(subNs, ns[i])
				subSs = append(subSs, speedups[i])
			}
		}
		if _, err := m.Fit(subNs, subSs); err != nil {
			ok = false
			break
		}
		pred, err := m.Speedup(ns[hold])
		if err != nil {
			ok = false
			break
		}
		r := pred - speedups[hold]
		sum += r * r
	}
	// Restore the full-sweep fit whatever happened above.
	if _, err := m.Fit(ns, speedups); err != nil {
		return math.NaN()
	}
	if !ok {
		return math.NaN()
	}
	return math.Sqrt(sum / float64(len(ns)))
}

// aiccTieband is the AICc difference below which two models are
// considered statistically indistinguishable (Burnham-Anderson's Δ < 2
// rule); within the band the leave-one-out error breaks the tie.
const aiccTieband = 2

// FitModels fits every candidate to the measured sweep, scores each by
// AICc and leave-one-out error, and selects the best: lowest AICc, with
// LOO breaking ties among models within the Δ < 2 band. Models whose fit
// fails are reported with Err set and excluded from selection. The sweep
// needs at least three strictly ascending degrees >= 1.
func FitModels(ns, speedups []float64, models []ScalingModel) (ModelSelection, error) {
	if len(models) == 0 {
		return ModelSelection{}, errors.New("core: no candidate models")
	}
	if len(ns) != len(speedups) || len(ns) < 3 {
		return ModelSelection{}, fmt.Errorf("core: model selection needs >= 3 paired points, have %d/%d", len(ns), len(speedups))
	}
	for i := range ns {
		if ns[i] < 1 || speedups[i] <= 0 {
			return ModelSelection{}, fmt.Errorf("core: invalid sweep point (n=%g, S=%g)", ns[i], speedups[i])
		}
		if i > 0 && ns[i] <= ns[i-1] {
			return ModelSelection{}, errors.New("core: sweep degrees must be strictly ascending")
		}
	}

	sel := ModelSelection{Fits: make([]ModelFit, len(models)), Best: -1}
	for i, m := range models {
		fit := ModelFit{Name: m.Name(), AICc: math.Inf(1), LOO: math.NaN()}
		rep, err := m.Fit(ns, speedups)
		if err != nil {
			fit.Err = err
			modelFitFailures.With(m.Name()).Inc()
		} else {
			fit.FitReport = rep
			fit.LOO = looError(m, ns, speedups)
			fit.Params = m.Params()
			fit.AICc = aicc(rep.SSE, len(ns), len(fit.Params))
			modelFits.With(m.Name()).Inc()
		}
		sel.Fits[i] = fit
	}

	for i, f := range sel.Fits {
		if f.Err != nil {
			continue
		}
		if sel.Best < 0 || f.AICc < sel.Fits[sel.Best].AICc {
			sel.Best = i
		}
	}
	if sel.Best >= 0 {
		// LOO tie-break inside the indistinguishability band.
		bestAICc := sel.Fits[sel.Best].AICc
		for i, f := range sel.Fits {
			if f.Err != nil || i == sel.Best || math.IsNaN(f.LOO) {
				continue
			}
			cur := sel.Fits[sel.Best].LOO
			if f.AICc <= bestAICc+aiccTieband && !math.IsNaN(cur) && f.LOO < cur {
				sel.Best = i
			}
		}
		modelSelected.With(sel.Fits[sel.Best].Name).Inc()
	}
	return sel, nil
}
