// Package core implements the IPSO scaling model — the primary
// contribution of "IPSO: A Scaling Model for Data-Intensive Applications"
// (Li, Duan, Nguyen, Che, Lei, Jiang; ICDCS 2019).
//
// IPSO generalizes the classic speedup laws along two axes:
//
//   - in-proportion scaling: the serial portion Ws(n) = Ws(1)·IN(n) of a
//     data-intensive workload scales along with the parallelizable portion
//     Wp(n) = Wp(1)·EX(n), with in-proportion ratio ε(n) = EX(n)/IN(n)
//     (Eqs. 3-5);
//   - scale-out-induced scaling: scaling out induces collective overhead
//     Wo(n) = (Wp(n)/n)·q(n) with q(1) = 0 (Eq. 6).
//
// The package provides:
//
//   - Model: the deterministic speedup of Eq. (10) for arbitrary scaling
//     factors, plus the statistic speedup of Eq. (8) given E[max{Tp,i(n)}];
//   - the classic laws (Amdahl, Gustafson, Sun-Ni; Eqs. 12-13) and their
//     derivation as IPSO special cases;
//   - Asymptotic: the large-n form ε(n) ≈ α·n^δ, q(n) ≈ β·n^γ of
//     Eqs. (14-17), with the complete solution-space classification of
//     Figs. 2-3 (types It..IVt and Is..IVs) and closed-form bounds;
//   - factor estimation from phase measurements and speedup prediction at
//     large n from fits at small n (Section V "Scaling Prediction");
//   - the six-step diagnostic procedure of Section V;
//   - speedup-versus-cost provisioning helpers (the resource-provisioning
//     application the paper motivates).
package core
