package core

import (
	"math"
	"testing"
)

func cfProvisionInput() ProvisionInput {
	// The CF pathological model: fixed-size, γ=2 — has a hard scale-out
	// limit near n = 52.
	m, _ := Asymptotic{Eta: 1, Beta: 3.7e-4, Gamma: 2}.Model(FixedSize)
	return ProvisionInput{
		Model:            m,
		SeqJobSeconds:    1602.5,
		PricePerNodeHour: 0.4,
		MaxN:             120,
	}
}

func TestProvisionValidation(t *testing.T) {
	good := cfProvisionInput()
	tests := []struct {
		name   string
		mutate func(*ProvisionInput)
	}{
		{name: "bad model", mutate: func(p *ProvisionInput) { p.Model = Model{Eta: 2} }},
		{name: "zero time", mutate: func(p *ProvisionInput) { p.SeqJobSeconds = 0 }},
		{name: "zero price", mutate: func(p *ProvisionInput) { p.PricePerNodeHour = 0 }},
		{name: "zero maxn", mutate: func(p *ProvisionInput) { p.MaxN = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := good
			tt.mutate(&p)
			if _, err := p.Sweep(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestJobSecondsFixedSize(t *testing.T) {
	p := cfProvisionInput()
	// Fixed-size: workload growth is 1, so T(n) = T(1)/S(n).
	tn, err := p.JobSeconds(10)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := p.Model.Speedup(10)
	if !almostEqual(tn, 1602.5/s, 1e-9) {
		t.Errorf("T(10) = %g, want %g", tn, 1602.5/s)
	}
}

func TestJobSecondsFixedTimeStaysFlat(t *testing.T) {
	// For a pure Gustafson workload the parallel time is constant in n —
	// that is what "fixed-time" means.
	p := ProvisionInput{
		Model:            GustafsonModel(0.8),
		SeqJobSeconds:    100,
		PricePerNodeHour: 1,
		MaxN:             64,
	}
	t1, err := p.JobSeconds(1)
	if err != nil {
		t.Fatal(err)
	}
	t64, err := p.JobSeconds(64)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(t1, t64, 1e-9) || !almostEqual(t1, 100, 1e-9) {
		t.Errorf("fixed-time job times T(1)=%g T(64)=%g, want both 100", t1, t64)
	}
}

func TestHardScaleOutLimitCF(t *testing.T) {
	p := cfProvisionInput()
	limit, ok, err := p.HardScaleOutLimit()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("CF must have a hard scale-out limit")
	}
	if limit < 45 || limit > 60 {
		t.Errorf("hard limit n=%d, want ≈52 (paper: ≈60)", limit)
	}
}

func TestHardScaleOutLimitAbsentForGustafson(t *testing.T) {
	p := ProvisionInput{Model: GustafsonModel(0.9), SeqJobSeconds: 100, PricePerNodeHour: 1, MaxN: 50}
	_, ok, err := p.HardScaleOutLimit()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("Gustafson scaling has no hard limit")
	}
}

func TestBestSpeedupPerDollar(t *testing.T) {
	p := cfProvisionInput()
	best, err := p.BestSpeedupPerDollar()
	if err != nil {
		t.Fatal(err)
	}
	if best.N < 1 || best.N > p.MaxN {
		t.Fatalf("best point out of range: %+v", best)
	}
	// It must actually be the argmax over the sweep.
	points, _ := p.Sweep()
	for _, pt := range points {
		if pt.Speedup/pt.Dollars > best.Speedup/best.Dollars*(1+1e-12) {
			t.Errorf("point %+v beats reported best %+v", pt, best)
		}
	}
}

func TestCheapestWithinDeadline(t *testing.T) {
	p := cfProvisionInput()
	// A deadline only parallel execution can meet.
	pt, err := p.CheapestWithinDeadline(200)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Seconds > 200 {
		t.Errorf("deadline violated: %+v", pt)
	}
	// An impossible deadline: the pathological model cannot go below the
	// peak-time floor (T(1)/21 ≈ 76 s), so 10 s is unreachable.
	if _, err := p.CheapestWithinDeadline(10); err == nil {
		t.Error("unreachable deadline should error")
	}
	if _, err := p.CheapestWithinDeadline(-1); err == nil {
		t.Error("nonpositive deadline should error")
	}
}

func TestSweepMonotonicCostBeyondPeak(t *testing.T) {
	p := cfProvisionInput()
	points, err := p.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != p.MaxN {
		t.Fatalf("sweep length %d, want %d", len(points), p.MaxN)
	}
	// Past the hard limit, both time and cost increase with n: adding
	// nodes is pure waste — the actionable insight of the IVs diagnosis.
	limit, _, _ := p.HardScaleOutLimit()
	for i := limit + 5; i < len(points); i++ {
		if points[i].Seconds < points[i-1].Seconds || points[i].Dollars < points[i-1].Dollars {
			t.Fatalf("past the peak, time/cost should increase: %+v then %+v", points[i-1], points[i])
		}
	}
	for _, pt := range points {
		if math.IsNaN(pt.Dollars) || pt.Dollars <= 0 {
			t.Fatalf("invalid cost %+v", pt)
		}
	}
}
