package core

import (
	"context"
	"strings"
	"testing"

	"ipso/internal/stats"
)

func TestScalingTypeStringsComplete(t *testing.T) {
	names := map[ScalingType]string{
		TypeIt: "It", TypeIIt: "IIt", TypeIIIt1: "IIIt,1", TypeIIIt2: "IIIt,2", TypeIVt: "IVt",
		TypeIs: "Is", TypeIIs: "IIs", TypeIIIs1: "IIIs,1", TypeIIIs2: "IIIs,2", TypeIVs: "IVs",
	}
	for typ, want := range names {
		if typ.String() != want {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), want)
		}
		if typ.Describe() == "unknown scaling type" {
			t.Errorf("%v lacks a description", typ)
		}
	}
	if !strings.HasPrefix(ScalingType(99).String(), "ScalingType(") {
		t.Error("unknown type should format as ScalingType(n)")
	}
	if ScalingType(99).Describe() != "unknown scaling type" {
		t.Error("unknown type should describe as unknown")
	}
	if ScalingType(99).Pathological() {
		t.Error("unknown type must not be flagged pathological")
	}
}

func TestWorkloadTypeStrings(t *testing.T) {
	if FixedTime.String() != "fixed-time" || FixedSize.String() != "fixed-size" {
		t.Error("workload type names wrong")
	}
	if !strings.HasPrefix(WorkloadType(9).String(), "WorkloadType(") {
		t.Error("unknown workload type should format as WorkloadType(n)")
	}
}

func TestBoundedCoversAllTypes(t *testing.T) {
	for _, typ := range []ScalingType{TypeIIIt1, TypeIIIt2, TypeIVt, TypeIIIs1, TypeIIIs2, TypeIVs} {
		if !typ.Bounded() {
			t.Errorf("%v should be bounded", typ)
		}
	}
}

func TestStatisticModelCurveAndKnobs(t *testing.T) {
	s := StatisticModel{
		Model:      sortLikeModel(),
		TaskTime:   stats.LogNormal{Mu: 2.8, Sigma: 0.2}, // no closed form: exercises MC knobs
		SerialTime: 12.85,
		MCReps:     512,
		Seed:       9,
	}
	curve, err := s.Curve([]float64{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 3 || curve[0] <= 0 {
		t.Fatalf("curve %v", curve)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] <= curve[i-1] {
			t.Errorf("statistic curve should grow on this range: %v", curve)
		}
	}
	if _, err := s.Curve([]float64{0.5}); err == nil {
		t.Error("invalid n in curve should error")
	}
	if _, err := s.StragglerPenalty(0.5); err == nil {
		t.Error("invalid n in penalty should error")
	}
	if s.mcReps() != 512 || s.seed() != 9 {
		t.Errorf("knobs not honored: reps=%d seed=%d", s.mcReps(), s.seed())
	}
	var defaults StatisticModel
	if defaults.mcReps() != 4096 || defaults.seed() != 1 {
		t.Errorf("default knobs wrong: reps=%d seed=%d", defaults.mcReps(), defaults.seed())
	}
}

func TestSpeedupWithMaxTaskErrors(t *testing.T) {
	m := sortLikeMeasurements([]float64{1, 2, 4, 8})
	est, err := Estimate(m)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPredictor(est, 18.8, 12.85)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.SpeedupWithMaxTask(8, -1); err == nil {
		t.Error("negative max task time should error")
	}
	broken := p
	broken.T1 = 0
	if _, err := broken.SpeedupWithMaxTask(8, 1); err == nil {
		t.Error("missing T1 should error")
	}
}

func TestPredictionSpreadHelpers(t *testing.T) {
	sp := PredictionSpread{Point: 4, Low: 3.5, High: 4.5}
	if sp.Width() != 1 {
		t.Errorf("width %g", sp.Width())
	}
	if sp.RelativeWidth() != 0.25 {
		t.Errorf("relative width %g", sp.RelativeWidth())
	}
	zero := PredictionSpread{}
	if zero.RelativeWidth() != 0 {
		t.Error("zero point should give zero relative width")
	}
}

func TestOnlineConvergedEarlyExit(t *testing.T) {
	e, err := NewOnlineEstimator(OnlineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Below MinPoints: not converged, no error.
	converged, err := e.Converged(context.Background())
	if err != nil || converged {
		t.Errorf("empty estimator converged=%v err=%v", converged, err)
	}
	if _, err := e.BaselineT1(); err == nil {
		t.Error("baseline without an n=1 observation should error")
	}
	if _, _, err := e.BestModel(); err == nil {
		t.Error("model selection without observations should error")
	}
}
