package core

import "testing"

func TestCrossover(t *testing.T) {
	// A Sort-like bounded model versus a slower-starting but unbounded
	// one: the unbounded model must eventually cross above.
	bounded := Model{Eta: 0.59, EX: LinearFactor(1, 0), IN: LinearFactor(0.377, 0.623), Q: ZeroOverhead()}
	slowLinear := Model{Eta: 0.3, EX: LinearFactor(1, 0), IN: Constant(1), Q: ZeroOverhead()}
	n, found, err := Crossover(bounded, slowLinear, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("unbounded model should cross the bounded one")
	}
	// Verify the crossover is genuine: below it the bounded model wins.
	sa, _ := bounded.Speedup(float64(n - 1))
	sb, _ := slowLinear.Speedup(float64(n - 1))
	if sb > sa {
		t.Errorf("crossover at n=%d not minimal: b already ahead at %d", n, n-1)
	}
	sa, _ = bounded.Speedup(float64(n))
	sb, _ = slowLinear.Speedup(float64(n))
	if sb <= sa {
		t.Errorf("no actual crossover at reported n=%d", n)
	}

	// No crossover case: a strictly dominated model.
	if _, found, err := Crossover(slowLinear, slowLinear, 100); err != nil || found {
		t.Errorf("identical models should not cross (found=%v err=%v)", found, err)
	}
	if _, _, err := Crossover(bounded, slowLinear, 1); err == nil {
		t.Error("maxN < 2 should error")
	}
}

func TestGustafsonDivergence(t *testing.T) {
	// Sort-like in-proportion workload: the law diverges early.
	sort := Model{Eta: 0.59, EX: LinearFactor(1, 0), IN: LinearFactor(0.377, 0.623), Q: ZeroOverhead()}
	n, diverges, err := GustafsonDivergence(sort, 0.25, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !diverges {
		t.Fatal("Gustafson must diverge for an in-proportion workload")
	}
	if n > 10 {
		t.Errorf("divergence at n=%d, want very early (paper: already visible at small n)", n)
	}
	// A true Gustafson workload never diverges from itself.
	gust := GustafsonModel(0.9)
	if _, diverges, err := GustafsonDivergence(gust, 0.25, 500); err != nil || diverges {
		t.Errorf("pure Gustafson workload should not diverge (diverges=%v err=%v)", diverges, err)
	}
	if _, _, err := GustafsonDivergence(sort, 0, 100); err == nil {
		t.Error("zero tolerance should error")
	}
	if _, _, err := GustafsonDivergence(sort, 0.1, 1); err == nil {
		t.Error("maxN < 2 should error")
	}
	if _, _, err := GustafsonDivergence(Model{Eta: 2}, 0.1, 10); err == nil {
		t.Error("invalid model should error")
	}
}
