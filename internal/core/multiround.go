package core

import (
	"errors"
	"fmt"
)

// Round is one split-merge round of a multi-round job. Section III notes
// that "by viewing Wp(n), Ws(n) and Wo(n) as the sum of the corresponding
// workloads in all rounds, the IPSO model can be applied to the case
// involving multiple rounds of the same scale-out degree n" — Multi
// implements that composition.
type Round struct {
	// Name identifies the round (e.g. a Spark stage or MR iteration).
	Name string
	// Wp1, Ws1 are the round's parallelizable and serial workloads at
	// n = 1, in seconds.
	Wp1 float64
	Ws1 float64
	// EX, IN, Q are the round's scaling factors (EX/IN normalized to 1
	// at n = 1, Q(1) = 0). Nil factors default to Constant(1) for EX/IN
	// and ZeroOverhead for Q.
	EX ScalingFactor
	IN ScalingFactor
	Q  ScalingFactor
}

func (r Round) withDefaults() Round {
	if r.EX == nil {
		r.EX = Constant(1)
	}
	if r.IN == nil {
		r.IN = Constant(1)
	}
	if r.Q == nil {
		r.Q = ZeroOverhead()
	}
	return r
}

func (r Round) validate() error {
	if r.Wp1 < 0 || r.Ws1 < 0 {
		return fmt.Errorf("core: round %q has negative workloads (Wp1=%g Ws1=%g)", r.Name, r.Wp1, r.Ws1)
	}
	if r.Wp1+r.Ws1 == 0 {
		return fmt.Errorf("core: round %q has no workload", r.Name)
	}
	return nil
}

// Multi is a multi-round job at a common scale-out degree.
type Multi struct {
	Rounds []Round
}

// NewMulti validates and builds a multi-round model.
func NewMulti(rounds ...Round) (Multi, error) {
	if len(rounds) == 0 {
		return Multi{}, errors.New("core: need at least one round")
	}
	out := make([]Round, len(rounds))
	for i, r := range rounds {
		if err := r.validate(); err != nil {
			return Multi{}, err
		}
		out[i] = r.withDefaults()
	}
	return Multi{Rounds: out}, nil
}

// Workloads returns the summed Wp(n), Ws(n), Wo(n) across rounds, in
// seconds.
func (m Multi) Workloads(n float64) (wp, ws, wo float64, err error) {
	if len(m.Rounds) == 0 {
		return 0, 0, 0, errors.New("core: empty multi-round model")
	}
	if n < 1 {
		return 0, 0, 0, fmt.Errorf("core: n = %g must be >= 1", n)
	}
	for _, r := range m.Rounds {
		rwp := r.Wp1 * r.EX(n)
		wp += rwp
		ws += r.Ws1 * r.IN(n)
		wo += rwp / n * r.Q(n)
	}
	return wp, ws, wo, nil
}

// Model flattens the rounds into a single IPSO model: the effective η is
// the workload-weighted parallel fraction at n = 1, and the effective
// factors are the workload-weighted mixtures of the per-round factors —
// exactly the paper's "sum of the corresponding workloads in all rounds".
func (m Multi) Model() (Model, error) {
	if len(m.Rounds) == 0 {
		return Model{}, errors.New("core: empty multi-round model")
	}
	var wp1, ws1 float64
	for _, r := range m.Rounds {
		if err := r.validate(); err != nil {
			return Model{}, err
		}
		wp1 += r.Wp1
		ws1 += r.Ws1
	}
	eta, err := EtaFromPhases(wp1, ws1)
	if err != nil {
		return Model{}, err
	}
	rounds := make([]Round, len(m.Rounds))
	for i, r := range m.Rounds {
		rounds[i] = r.withDefaults()
	}
	ex := func(n float64) float64 {
		if wp1 == 0 {
			return 1
		}
		total := 0.0
		for _, r := range rounds {
			total += r.Wp1 * r.EX(n)
		}
		return total / wp1
	}
	in := func(n float64) float64 {
		if ws1 == 0 {
			return 1
		}
		total := 0.0
		for _, r := range rounds {
			total += r.Ws1 * r.IN(n)
		}
		return total / ws1
	}
	q := func(n float64) float64 {
		// Wo(n) = Σ (Wp_r(n)/n)·q_r(n) ≡ (Wp(n)/n)·q_eff(n).
		var wpn, wo float64
		for _, r := range rounds {
			rwp := r.Wp1 * r.EX(n)
			wpn += rwp
			wo += rwp / n * r.Q(n)
		}
		if wpn == 0 {
			return 0
		}
		return wo * n / wpn
	}
	return Model{Eta: eta, EX: ex, IN: in, Q: q}, nil
}

// Speedup evaluates the multi-round speedup directly from the summed
// workloads (equivalent to Model().Speedup, kept as the primary,
// assumption-free path):
//
//	S(n) = (Wp(n) + Ws(n)) / (Wp(n)/n + Ws(n) + Wo(n))
func (m Multi) Speedup(n float64) (float64, error) {
	wp, ws, wo, err := m.Workloads(n)
	if err != nil {
		return 0, err
	}
	den := wp/n + ws + wo
	if den <= 0 {
		return 0, fmt.Errorf("core: nonpositive denominator at n=%g", n)
	}
	return (wp + ws) / den, nil
}
