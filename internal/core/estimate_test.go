package core

import (
	"math"
	"testing"
)

// sortLikeMeasurements synthesizes phase measurements for a Sort-like
// workload: Wp(n) = 18.8·n, Ws(n) = 12.85·(0.377n + 0.623), Wo ≈ 0.
func sortLikeMeasurements(ns []float64) Measurements {
	m := Measurements{N: ns}
	for _, n := range ns {
		m.Wp = append(m.Wp, 18.8*n)
		m.Ws = append(m.Ws, 12.85*(0.377*n+0.623))
		m.Wo = append(m.Wo, 1e-6)
	}
	return m
}

func TestMeasurementsValidate(t *testing.T) {
	tests := []struct {
		name string
		m    Measurements
	}{
		{name: "empty", m: Measurements{}},
		{name: "length mismatch", m: Measurements{N: []float64{1, 2}, Wp: []float64{1}, Ws: []float64{1, 2}}},
		{name: "wo mismatch", m: Measurements{N: []float64{1}, Wp: []float64{1}, Ws: []float64{1}, Wo: []float64{1, 2}}},
		{name: "unsorted", m: Measurements{N: []float64{2, 1}, Wp: []float64{1, 2}, Ws: []float64{1, 2}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.m.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestFactorSeries(t *testing.T) {
	// With an n=1 sample, normalization divides by it.
	fs, err := FactorSeries([]float64{1, 2, 4}, []float64{10, 20, 40})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 4}
	for i := range want {
		if !almostEqual(fs[i], want[i], 1e-12) {
			t.Errorf("factor[%d] = %g, want %g", i, fs[i], want[i])
		}
	}
	// Without n=1, the baseline is extrapolated (here exactly linear).
	fs, err = FactorSeries([]float64{2, 4}, []float64{20, 40})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fs[0], 2, 1e-12) {
		t.Errorf("extrapolated factor = %g, want 2", fs[0])
	}
	if _, err := FactorSeries([]float64{2}, []float64{5}); err == nil {
		t.Error("single non-unit sample should error (no baseline)")
	}
	if _, err := FactorSeries([]float64{1, 2}, []float64{0, 5}); err == nil {
		t.Error("zero baseline should error")
	}
}

func TestEstimateSortLike(t *testing.T) {
	m := sortLikeMeasurements([]float64{1, 2, 4, 8, 16})
	est, err := Estimate(m)
	if err != nil {
		t.Fatal(err)
	}
	// η = 18.8 / (18.8 + 12.85).
	wantEta := 18.8 / (18.8 + 12.85)
	if !almostEqual(est.Eta, wantEta, 1e-9) {
		t.Errorf("η = %g, want %g", est.Eta, wantEta)
	}
	if !almostEqual(est.EXFit.Slope, 1, 1e-9) || !almostEqual(est.EXFit.Intercept, 0, 1e-9) {
		t.Errorf("EX fit %v, want n", est.EXFit)
	}
	if !almostEqual(est.INFit.Slope, 0.377, 1e-6) {
		t.Errorf("IN slope = %g, want 0.377", est.INFit.Slope)
	}
	if est.HasOverhead {
		t.Error("negligible Wo must not produce an overhead fit")
	}
	if est.INStep != nil {
		t.Error("linear IN must not report a breakpoint")
	}
	// ε(n) fit should be sub-power of n with δ < 1 (ratio flattens).
	if est.Epsilon.Exponent >= 1 {
		t.Errorf("ε exponent = %g, want < 1", est.Epsilon.Exponent)
	}
}

func TestEstimateDetectsINStep(t *testing.T) {
	// TeraSort-like: IN slope 0.17 before n=15, 0.25 after (Fig. 5).
	var m Measurements
	for n := 1.0; n <= 40; n += 1 {
		m.N = append(m.N, n)
		m.Wp = append(m.Wp, 10.7*n)
		in := 0.17*n + 0.83
		if n > 15 {
			in = 0.25*n - 0.37
		}
		m.Ws = append(m.Ws, 24.4*in)
	}
	est, err := Estimate(m)
	if err != nil {
		t.Fatal(err)
	}
	if est.INStep == nil {
		t.Fatal("step-wise IN not detected")
	}
	if est.INStep.Break < 12 || est.INStep.Break > 18 {
		t.Errorf("breakpoint %g, want near 15", est.INStep.Break)
	}
	if !almostEqual(est.INStep.Left.Slope, 0.17, 1e-6) || !almostEqual(est.INStep.Right.Slope, 0.25, 1e-6) {
		t.Errorf("segment slopes (%g, %g), want (0.17, 0.25)", est.INStep.Left.Slope, est.INStep.Right.Slope)
	}
}

func TestEstimateQuadraticOverhead(t *testing.T) {
	// CF-like: fixed-size Wp, Wo = 0.6n ⇒ q(n) = n·Wo/Wp ∝ n² (γ = 2).
	var m Measurements
	for _, n := range []float64{10, 30, 60, 90} {
		m.N = append(m.N, n)
		m.Wp = append(m.Wp, 1602.5)
		m.Ws = append(m.Ws, 1e-9) // no serial portion
		m.Wo = append(m.Wo, 0.6*n)
	}
	est, err := Estimate(m)
	if err != nil {
		t.Fatal(err)
	}
	if !est.HasOverhead {
		t.Fatal("overhead not detected")
	}
	if !almostEqual(est.QFit.Exponent, 2, 1e-6) {
		t.Errorf("γ = %g, want 2", est.QFit.Exponent)
	}
	wantBeta := 0.6 / 1602.5
	if !almostEqual(est.QFit.Coeff, wantBeta, 1e-6) {
		t.Errorf("β = %g, want %g", est.QFit.Coeff, wantBeta)
	}
}

func TestEstimateErrors(t *testing.T) {
	if _, err := Estimate(Measurements{}); err == nil {
		t.Error("empty measurements should error")
	}
	one := Measurements{N: []float64{1}, Wp: []float64{1}, Ws: []float64{1}}
	if _, err := Estimate(one); err == nil {
		t.Error("single point should error")
	}
}

func TestEstimatesAsymptotic(t *testing.T) {
	est := Estimates{Eta: 0.6}
	est.Epsilon.Coeff = 2.6
	est.Epsilon.Exponent = 0.1
	a := est.Asymptotic()
	if a.Eta != 0.6 || a.Alpha != 2.6 || a.Delta != 0.1 || a.Beta != 0 || a.Gamma != 0 {
		t.Errorf("asymptotic %+v", a)
	}
	est.HasOverhead = true
	est.QFit.Coeff = 0.01
	est.QFit.Exponent = 1.5
	a = est.Asymptotic()
	if a.Beta != 0.01 || a.Gamma != 1.5 {
		t.Errorf("asymptotic with overhead %+v", a)
	}
}

func TestWordCountLikeHasINOne(t *testing.T) {
	// Constant serial portion ⇒ IN(n) ≈ 1, slope ≈ 0 (paper Fig. 6).
	var m Measurements
	for _, n := range []float64{1, 2, 4, 8, 16} {
		m.N = append(m.N, n)
		m.Wp = append(m.Wp, 13.4*n)
		m.Ws = append(m.Ws, 1.0)
	}
	est, err := Estimate(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.INFit.Slope) > 1e-9 {
		t.Errorf("IN slope = %g, want 0", est.INFit.Slope)
	}
	if !almostEqual(est.INFit.Intercept, 1, 1e-9) {
		t.Errorf("IN intercept = %g, want 1", est.INFit.Intercept)
	}
}
