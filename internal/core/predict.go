package core

import (
	"errors"
	"fmt"
)

// Predictor predicts speedups at large problem sizes from scaling factors
// fitted at small problem sizes — the Section V "Scaling Prediction"
// workflow behind Fig. 7: "as long as the three scaling factors ... can be
// accurately estimated at small problem sizes, the speedups at large
// problem sizes may be predicted with high accuracy."
type Predictor struct {
	// Eta is η from the n = 1 phase breakdown.
	Eta float64
	// T1 is the n = 1 whole-job time E[Tp,1(1)] + E[Ts(1)], used to
	// normalize measured split-phase times in Eq. (8).
	T1 float64
	// EX, IN, Q are the fitted scaling factors.
	EX ScalingFactor
	IN ScalingFactor
	Q  ScalingFactor
}

// NewPredictor builds a Predictor from fitted estimates plus the n = 1
// phase times tp1 = E[Tp,1(1)] and ts1 = E[Ts(1)].
func NewPredictor(est Estimates, tp1, ts1 float64) (Predictor, error) {
	if tp1 <= 0 || ts1 < 0 {
		return Predictor{}, fmt.Errorf("core: invalid n=1 phase times tp1=%g ts1=%g", tp1, ts1)
	}
	ex := ScalingFactor(est.EXFit.Eval)
	var in ScalingFactor
	if est.INStep != nil {
		step := *est.INStep
		in = step.Eval
	} else {
		in = est.INFit.Eval
	}
	q := ZeroOverhead()
	if est.HasOverhead {
		q = PowerFactor(est.QFit.Coeff, est.QFit.Exponent)
	}
	return Predictor{Eta: est.Eta, T1: tp1 + ts1, EX: ex, IN: in, Q: q}, nil
}

// Model returns the deterministic IPSO model with the fitted factors.
func (p Predictor) Model() Model {
	return Model{Eta: p.Eta, EX: p.EX, IN: p.IN, Q: p.Q}
}

// Speedup predicts S(n) with the deterministic model (Eq. 10).
func (p Predictor) Speedup(n float64) (float64, error) {
	return p.Model().Speedup(n)
}

// SpeedupWithMaxTask predicts S(n) with the statistic model (Eq. 8),
// using a measured split-phase response time E[max{Tp,i(n)}] in seconds —
// the exact procedure of Fig. 7, which feeds measured E[max] together
// with predicted EX and IN into Eq. (8).
func (p Predictor) SpeedupWithMaxTask(n, maxTaskSeconds float64) (float64, error) {
	if p.T1 <= 0 {
		return 0, errors.New("core: predictor missing the n=1 job time")
	}
	if maxTaskSeconds < 0 {
		return 0, fmt.Errorf("core: negative split-phase time %g", maxTaskSeconds)
	}
	return p.Model().SpeedupStatistic(n, maxTaskSeconds/p.T1)
}

// Curve predicts the speedup at each n.
func (p Predictor) Curve(ns []float64) ([]float64, error) {
	return p.Model().Curve(ns)
}
