package core

import (
	"fmt"
	"math"
)

// MemoryBoundedFactor returns Sun-Ni's external scaling factor g(n) for a
// data-intensive workload whose working set is constrained by per-node
// memory: each of the n processing units can host at most blockBytes of
// the working data set (e.g. a 128 MB block), and the problem is scaled
// to fill the available memory, up to a total working set of
// maxDatasetBytes (0 or +Inf for no cap).
//
// g(n) is normalized so g(1) = 1. While the data set fits in the
// aggregate memory budget g(n) = n exactly — the Section IV observation
// that "for all the cases studied where the working data sets are memory
// bounded, g(n) ≈ n with high precision", which is why the paper treats
// Sun-Ni's model as coinciding with Gustafson's for data-intensive
// applications. Past the cap, g(n) flattens at maxDatasetBytes/blockBytes.
func MemoryBoundedFactor(blockBytes, maxDatasetBytes float64) (ScalingFactor, error) {
	if blockBytes <= 0 {
		return nil, fmt.Errorf("core: block size %g must be positive", blockBytes)
	}
	if maxDatasetBytes < 0 {
		return nil, fmt.Errorf("core: negative data set cap %g", maxDatasetBytes)
	}
	capBlocks := math.Inf(1)
	if maxDatasetBytes > 0 {
		capBlocks = maxDatasetBytes / blockBytes
		if capBlocks < 1 {
			return nil, fmt.Errorf("core: data set (%g bytes) smaller than one block (%g)", maxDatasetBytes, blockBytes)
		}
	}
	return func(n float64) float64 {
		if n < 1 {
			n = 1
		}
		return math.Min(n, capBlocks)
	}, nil
}
