package core

import (
	"math"
	"testing"
)

func TestSensitivitiesValidation(t *testing.T) {
	if _, err := Sensitivities(Asymptotic{Eta: 2}, 10); err == nil {
		t.Error("invalid parameters should error")
	}
	if _, err := Sensitivities(Asymptotic{Eta: 1}, 0.5); err == nil {
		t.Error("n < 1 should error")
	}
}

func TestSensitivityGammaDominatesCF(t *testing.T) {
	// Collaborative Filtering at large n: the superlinear overhead
	// exponent γ is by far the binding parameter.
	a := Asymptotic{Eta: 1, Beta: 3.7e-4, Gamma: 2}
	s, err := Sensitivities(a, 90)
	if err != nil {
		t.Fatal(err)
	}
	if s.Gamma >= 0 {
		t.Errorf("γ elasticity %g, want negative (more γ → less speedup)", s.Gamma)
	}
	// η sits on the η = 1 cliff (introducing any serial portion is
	// catastrophic at n = 90), so it ranks first; among the overhead and
	// in-proportion parameters, γ must dominate.
	order := s.Dominant()
	if order[0] != "eta" {
		t.Errorf("dominant parameter %q, want eta (the η = 1 cliff), order %v", order[0], order)
	}
	for _, name := range order {
		if name == "gamma" {
			break
		}
		if name == "beta" || name == "alpha" || name == "delta" {
			t.Errorf("γ should dominate the remaining parameters, order %v", order)
			break
		}
	}
	if math.Abs(s.Gamma) <= math.Abs(s.Beta) {
		t.Errorf("|γ| elasticity (%g) should exceed |β| (%g)", s.Gamma, s.Beta)
	}
}

func TestSensitivityEtaDominatesAmdahl(t *testing.T) {
	// Amdahl-like fixed-size workload near saturation: η rules.
	a := Asymptotic{Eta: 0.9, Alpha: 1}
	s, err := Sensitivities(a, 500)
	if err != nil {
		t.Fatal(err)
	}
	if s.Eta <= 0 {
		t.Errorf("η elasticity %g, want positive", s.Eta)
	}
	if got := s.Dominant()[0]; got != "eta" {
		t.Errorf("dominant parameter %q, want eta (order %v)", got, s.Dominant())
	}
	// Unused parameters have zero elasticity.
	if s.Beta != 0 || s.Gamma != 0 {
		t.Errorf("zero-valued β/γ should have zero elasticity, got %g/%g", s.Beta, s.Gamma)
	}
}

func TestSensitivityDeltaMattersForSortLike(t *testing.T) {
	// Sort-like IIIt,1: δ sits at the boundary (0) so its elasticity is
	// zero by the multiplicative convention; α then carries the
	// in-proportion sensitivity and must be positive (higher ε → higher
	// bound).
	a := Asymptotic{Eta: 0.59, Alpha: 2.6, Delta: 0}
	s, err := Sensitivities(a, 200)
	if err != nil {
		t.Fatal(err)
	}
	if s.Alpha <= 0 {
		t.Errorf("α elasticity %g, want positive", s.Alpha)
	}
	if s.Delta != 0 {
		t.Errorf("δ = 0 should report zero elasticity, got %g", s.Delta)
	}
}

func TestSensitivityMatchesAnalyticGustafson(t *testing.T) {
	// Gustafson: S = ηn + (1−η); elasticity wrt η is ηn/(ηn+1−η) —
	// analytic cross-check of the finite differences.
	a := Asymptotic{Eta: 0.8, Alpha: 1, Delta: 1}
	n := 50.0
	s, err := Sensitivities(a, n)
	if err != nil {
		t.Fatal(err)
	}
	// S(η) = η·α·n^δ+(1−η) over denominator → for δ=1, γ=0:
	// S = (ηn+1−η)/(η+1−η) = ηn+1−η. dS/dη = n−1.
	base := 0.8*n + 0.2
	want := (n - 1) * 0.8 / base
	if math.Abs(s.Eta-want) > 1e-3 {
		t.Errorf("η elasticity %g, analytic %g", s.Eta, want)
	}
}
