package core

import (
	"math/rand"
	"testing"
)

func TestPredictSpreadExactDataIsTight(t *testing.T) {
	m := sortLikeMeasurements([]float64{1, 2, 4, 8, 16})
	sp, err := PredictSpread(m, 18.8, 12.85, 200)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Point < 4 || sp.Point > 5.5 {
		t.Errorf("point prediction %g, want ≈4.6", sp.Point)
	}
	if sp.RelativeWidth() > 0.01 {
		t.Errorf("exact data should give a near-zero spread, got %g", sp.RelativeWidth())
	}
	if sp.Low > sp.Point || sp.High < sp.Point {
		t.Errorf("spread [%g, %g] must bracket the point %g", sp.Low, sp.High, sp.Point)
	}
}

func TestPredictSpreadWidensWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	noisy := sortLikeMeasurements([]float64{1, 2, 4, 8, 16})
	for i := range noisy.Ws {
		noisy.Ws[i] *= 1 + 0.15*rng.NormFloat64()
	}
	noisySp, err := PredictSpread(noisy, 18.8, 12.85, 200)
	if err != nil {
		t.Fatal(err)
	}
	clean := sortLikeMeasurements([]float64{1, 2, 4, 8, 16})
	cleanSp, err := PredictSpread(clean, 18.8, 12.85, 200)
	if err != nil {
		t.Fatal(err)
	}
	if noisySp.Width() <= cleanSp.Width() {
		t.Errorf("noisy spread %g should exceed clean spread %g", noisySp.Width(), cleanSp.Width())
	}
}

func TestPredictSpreadValidation(t *testing.T) {
	if _, err := PredictSpread(Measurements{}, 1, 1, 10); err == nil {
		t.Error("empty measurements should error")
	}
	small := sortLikeMeasurements([]float64{1, 2, 4})
	if _, err := PredictSpread(small, 18.8, 12.85, 10); err == nil {
		t.Error("too few degrees should error")
	}
}
