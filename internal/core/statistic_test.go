package core

import (
	"testing"
	"testing/quick"

	"ipso/internal/stats"
)

func sortLikeModel() Model {
	return Model{
		Eta: 0.59,
		EX:  LinearFactor(1, 0),
		IN:  LinearFactor(0.377, 0.623),
		Q:   ZeroOverhead(),
	}
}

func TestStatisticModelValidation(t *testing.T) {
	s := StatisticModel{Model: sortLikeModel()}
	if _, err := s.Speedup(4); err == nil {
		t.Error("missing distribution should error")
	}
	s.TaskTime = stats.Deterministic{Value: 10}
	s.SerialTime = -1
	if _, err := s.Speedup(4); err == nil {
		t.Error("negative serial time should error")
	}
	s.SerialTime = 1
	if _, err := s.Speedup(0.5); err == nil {
		t.Error("n < 1 should error")
	}
}

func TestStatisticDeterministicMatchesModel(t *testing.T) {
	m := sortLikeModel()
	// Calibrate the η of the model to the distribution: tp1 = 18.8,
	// ts1 = 12.85 gives η = 0.594 ≈ model η.
	s := StatisticModel{
		Model:      m,
		TaskTime:   stats.Deterministic{Value: 18.8},
		SerialTime: 18.8 * (1 - m.Eta) / m.Eta, // makes η consistent exactly
	}
	for _, n := range []float64{1, 4, 16, 64} {
		det, err := m.Speedup(n)
		if err != nil {
			t.Fatal(err)
		}
		stat, err := s.Speedup(n)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(det, stat, 1e-9) {
			t.Errorf("n=%g: deterministic %g vs statistic %g", n, det, stat)
		}
	}
}

func TestStatisticStragglersLowerSpeedup(t *testing.T) {
	m := sortLikeModel()
	ser := 18.8 * (1 - m.Eta) / m.Eta
	det := StatisticModel{Model: m, TaskTime: stats.Deterministic{Value: 18.8}, SerialTime: ser}
	rnd := StatisticModel{Model: m, TaskTime: stats.Uniform{Low: 9.4, High: 28.2}, SerialTime: ser}
	for _, n := range []float64{4, 16, 64} {
		d, err := det.Speedup(n)
		if err != nil {
			t.Fatal(err)
		}
		r, err := rnd.Speedup(n)
		if err != nil {
			t.Fatal(err)
		}
		if r >= d {
			t.Errorf("n=%g: straggler speedup %g should be below deterministic %g", n, r, d)
		}
	}
}

func TestStragglerPenaltyBoundedForBoundedTails(t *testing.T) {
	m := sortLikeModel()
	s := StatisticModel{
		Model:      m,
		TaskTime:   stats.Uniform{Low: 9.4, High: 28.2}, // bounded support
		SerialTime: 12.85,
	}
	p16, err := s.StragglerPenalty(16)
	if err != nil {
		t.Fatal(err)
	}
	p256, err := s.StragglerPenalty(256)
	if err != nil {
		t.Fatal(err)
	}
	if p16 < 1 || p256 < 1 {
		t.Errorf("penalties (%g, %g) must be >= 1", p16, p256)
	}
	// Bounded tail ⇒ E[max] <= High, so the penalty cannot exceed
	// High/Mean = 1.5 no matter how large n gets (the Section IV
	// boundedness argument).
	if p256 > 1.6 {
		t.Errorf("penalty %g at n=256 exceeds the bounded-tail cap", p256)
	}
}

func TestExpectedMaxTaskScalesWithShare(t *testing.T) {
	// Fixed-size: EX = 1 so the per-task share shrinks as 1/n, and the
	// expected max shrinks accordingly.
	s := StatisticModel{
		Model:      Model{Eta: 1, EX: Constant(1), IN: Constant(0), Q: ZeroOverhead()},
		TaskTime:   stats.Deterministic{Value: 100},
		SerialTime: 0,
	}
	em10, err := s.ExpectedMaxTask(10)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(em10, 10, 1e-12) {
		t.Errorf("E[max] at n=10 = %g, want 10 (100/10)", em10)
	}
}

// Property: the statistic speedup with a mean-1-scaled bounded
// distribution never exceeds the deterministic speedup (Jensen-style
// E[max] >= mean) and stays positive.
func TestStatisticBelowDeterministicProperty(t *testing.T) {
	f := func(nRaw, widthRaw uint8) bool {
		n := float64(nRaw%64) + 1
		width := float64(widthRaw%90)/100 + 0.05 // 0.05..0.95
		m := sortLikeModel()
		s := StatisticModel{
			Model:      m,
			TaskTime:   stats.Uniform{Low: 18.8 * (1 - width), High: 18.8 * (1 + width)},
			SerialTime: 18.8 * (1 - m.Eta) / m.Eta,
		}
		stat, err := s.Speedup(n)
		if err != nil {
			return false
		}
		det, err := m.Speedup(n)
		if err != nil {
			return false
		}
		return stat > 0 && stat <= det+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
