package core

import (
	"errors"
	"fmt"
	"math"

	"ipso/internal/stats"
)

// Family is the coarse shape of a measured speedup curve — what steps 1-5
// of the paper's diagnostic procedure identify by comparing the measured
// trend against Fig. 2 or Fig. 3.
type Family int

// Speedup curve families.
const (
	FamilyLinear    Family = iota + 1 // type I: linear, unbounded
	FamilySublinear                   // type II: sublinear, unbounded
	FamilyBounded                     // type III: monotone, upper-bounded
	FamilyPeaked                      // type IV: peaks then falls
)

// String names the family.
func (f Family) String() string {
	switch f {
	case FamilyLinear:
		return "linear (type I)"
	case FamilySublinear:
		return "sublinear unbounded (type II)"
	case FamilyBounded:
		return "upper-bounded (type III)"
	case FamilyPeaked:
		return "peaked (type IV)"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Diagnosis is the outcome of the Section V diagnostic procedure applied
// to a measured speedup series.
type Diagnosis struct {
	Workload WorkloadType
	Family   Family
	// Type is the matched scaling type. For FamilyBounded the subtype
	// (III,1 vs III,2) cannot be determined from the speedup curve alone
	// — per step 6 of the procedure — so Type holds the ",1" subtype and
	// NeedsFactorAnalysis is set.
	Type ScalingType
	// NeedsFactorAnalysis indicates step 6 applies: estimate δ and γ
	// (e.g. with Estimate + Asymptotic.Classify) to pin down the subtype.
	NeedsFactorAnalysis bool
	// RootCause is the analysis-backed explanation from Section IV.
	RootCause string
	// Peak holds the observed maximum for FamilyPeaked diagnoses.
	PeakN, PeakS float64
	// Fit quality (SSE) of the chosen shape on the normalized data.
	SSE float64
	// Notes surfaces anything that degraded the diagnosis — in
	// particular shape fits that failed to converge, which would
	// otherwise silently skip the SSE estimate.
	Notes []string
	// Models holds the per-model zoo verdicts when the diagnosis was
	// produced by DiagnoseModels; zero-valued otherwise.
	Models ModelSelection
}

// Diagnose runs steps 2-5 of the paper's recommended diagnostic procedure
// on a measured speedup series: plot S against n, match the trend against
// the four families, and identify root causes. It requires at least four
// points spanning more than one scale-out degree.
//
// Step 1 (choosing the workload type) is the caller's: pass FixedTime or
// FixedSize. Step 6 (subtype analysis for bounded curves) requires factor
// measurements; see Estimate and Asymptotic.Classify.
func Diagnose(w WorkloadType, ns, speedups []float64) (Diagnosis, error) {
	if w != FixedTime && w != FixedSize {
		return Diagnosis{}, fmt.Errorf("core: unknown workload type %v", w)
	}
	if len(ns) != len(speedups) {
		return Diagnosis{}, fmt.Errorf("core: %d ns vs %d speedups", len(ns), len(speedups))
	}
	if len(ns) < 4 {
		return Diagnosis{}, errors.New("core: need at least 4 measured points to diagnose")
	}
	for i := range ns {
		if ns[i] < 1 || speedups[i] <= 0 {
			return Diagnosis{}, fmt.Errorf("core: invalid point (n=%g, S=%g)", ns[i], speedups[i])
		}
		if i > 0 && ns[i] <= ns[i-1] {
			return Diagnosis{}, errors.New("core: ns must be strictly ascending")
		}
	}

	d := Diagnosis{Workload: w}

	// Peak detection: the curve falls significantly after an interior
	// maximum (type IV: superlinear scale-out-induced overhead).
	maxIdx := 0
	for i, s := range speedups {
		if s > speedups[maxIdx] {
			maxIdx = i
		}
	}
	if maxIdx < len(speedups)-1 && speedups[len(speedups)-1] < 0.95*speedups[maxIdx] {
		d.Family = FamilyPeaked
		d.PeakN, d.PeakS = ns[maxIdx], speedups[maxIdx]
		if w == FixedTime {
			d.Type = TypeIVt
		} else {
			d.Type = TypeIVs
		}
		d.RootCause = "scale-out-induced workload q(n) grows superlinearly (γ > 1), " +
			"e.g. centralized scheduling or data broadcast; scaling out beyond the peak is harmful"
		return d, nil
	}

	// Monotone families are told apart by the tail elasticity
	// e = d ln S / d ln n estimated over the last measured octave:
	// e ≈ 1 for linear growth (type I), 0 < e < 1 sustained for
	// sublinear growth (type II), e ≈ 0 for saturation (type III).
	// Like the paper's WordCount discussion notes ("more data samples at
	// larger scale-out degree are needed to be certain"), curves measured
	// far from their asymptote are genuinely ambiguous; the thresholds
	// below (0.92 and 0.15) encode the same judgment call.
	last := len(ns) - 1
	lo := last - 2
	if lo < 0 {
		lo = 0
	}
	elasticity := math.Log(speedups[last]/speedups[lo]) / math.Log(ns[last]/ns[lo])

	switch {
	case elasticity >= 0.92:
		d.Family = FamilyLinear
		if fit, err := stats.Linear(ns, speedups); err == nil {
			d.SSE = shapeSSE(ns, speedups, fit.Eval)
		} else {
			d.Notes = append(d.Notes, fmt.Sprintf("linear shape fit failed: %v; SSE not reported", err))
		}
	case elasticity >= 0.15:
		d.Family = FamilySublinear
		if fit, err := stats.PowerLaw(ns, speedups); err == nil {
			d.SSE = shapeSSE(ns, speedups, fit.Eval)
		} else {
			d.Notes = append(d.Notes, fmt.Sprintf("power-law shape fit failed: %v; SSE not reported", err))
		}
	default:
		d.Family = FamilyBounded
		// Saturating hypothesis S(n) = L·n / (n + k) for SSE reporting.
		sat := func(p []float64, x float64) float64 { return p[0] * x / (x + math.Abs(p[1])) }
		sMax := speedups[last]
		if res, err := stats.NonlinearFit(sat, ns, speedups, []float64{sMax * 1.5, ns[last] / 2}, stats.NLSOptions{}); err == nil {
			d.SSE = res.SSE
			if !res.Converged {
				d.Notes = append(d.Notes, fmt.Sprintf("saturation fit hit the iteration budget (%d iterations, SSE %.3g); the saturation estimate is suspect", res.Iters, res.SSE))
			}
		} else {
			d.Notes = append(d.Notes, fmt.Sprintf("saturation fit failed: %v; the saturation estimate was skipped", err))
		}
	}

	switch d.Family {
	case FamilyLinear:
		if w == FixedTime {
			d.Type = TypeIt
			d.RootCause = "Gustafson-like: no in-proportion scaling (δ = 1 or η = 1) and no scale-out-induced workload (γ = 0)"
		} else {
			d.Type = TypeIs
			d.RootCause = "ideal fixed-size scaling: no serial portion (η = 1) and no scale-out-induced workload — a very special case"
		}
	case FamilySublinear:
		if w == FixedTime {
			d.Type = TypeIIt
			d.RootCause = "unbounded but sublinear: scale-out-induced workload grows slower than linearly (γ < 1)"
		} else {
			d.Type = TypeIIs
			d.RootCause = "unbounded but sublinear: η = 1 with sublinear scale-out-induced workload (γ < 1)"
		}
	case FamilyBounded:
		d.NeedsFactorAnalysis = true
		if w == FixedTime {
			d.Type = TypeIIIt1
			d.RootCause = "pathological for a fixed-time workload: the serial portion scales in proportion " +
				"to the parallel portion (in-proportion scaling) and/or linear scale-out-induced workload bounds the speedup; " +
				"measure δ and γ to pin down subtype III_t,1 vs III_t,2"
		} else {
			d.Type = TypeIIIs1
			d.RootCause = "Amdahl-like bounded scaling; measure δ and γ to pin down subtype III_s,1 vs III_s,2"
		}
	}
	return d, nil
}

// DiagnoseWithFactors completes step 6: given fitted asymptotic factors,
// it returns the exact scaling type (subtype included).
func DiagnoseWithFactors(w WorkloadType, a Asymptotic) (ScalingType, error) {
	return a.Classify(w)
}

// DiagnoseModels runs the shape diagnosis and then fits the full model
// zoo to the same sweep, attaching per-model verdicts: which scaling law
// the data selects and how each candidate scored. A failed zoo fit
// degrades to a note instead of failing the diagnosis.
func DiagnoseModels(w WorkloadType, ns, speedups []float64) (Diagnosis, error) {
	d, err := Diagnose(w, ns, speedups)
	if err != nil {
		return Diagnosis{}, err
	}
	sel, err := FitModels(ns, speedups, ModelZoo(w))
	if err != nil {
		d.Notes = append(d.Notes, fmt.Sprintf("model zoo fit failed: %v", err))
		return d, nil
	}
	d.Models = sel
	if best, ok := sel.BestFit(); ok {
		d.Notes = append(d.Notes, fmt.Sprintf("model zoo selects %s (AICc %.2f, LOO %.3g)", best.Name, best.AICc, best.LOO))
	} else {
		d.Notes = append(d.Notes, "model zoo: no candidate fitted the sweep")
	}
	for _, f := range sel.Fits {
		if f.Err != nil {
			d.Notes = append(d.Notes, fmt.Sprintf("model zoo: %s fit failed: %v", f.Name, f.Err))
		} else if !f.Converged {
			d.Notes = append(d.Notes, fmt.Sprintf("model zoo: %s hit the iteration budget (%d iterations)", f.Name, f.Iters))
		}
	}
	return d, nil
}

func shapeSSE(ns, ys []float64, f func(float64) float64) float64 {
	sse := 0.0
	for i := range ns {
		r := ys[i] - f(ns[i])
		sse += r * r
	}
	return sse
}
