package core

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestConstantAndLinearFactors(t *testing.T) {
	if got := Constant(3)(99); got != 3 {
		t.Errorf("Constant(3)(99) = %g", got)
	}
	if got := LinearFactor(2, 1)(4); got != 9 {
		t.Errorf("LinearFactor(2,1)(4) = %g, want 9", got)
	}
	if got := PowerFactor(2, 0.5)(16); got != 8 {
		t.Errorf("PowerFactor(2,0.5)(16) = %g, want 8", got)
	}
	if got := ZeroOverhead()(100); got != 0 {
		t.Errorf("ZeroOverhead()(100) = %g, want 0", got)
	}
}

func TestInterpolated(t *testing.T) {
	f, err := Interpolated([]float64{1, 4, 2}, []float64{10, 40, 20})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct{ n, want float64 }{
		{n: 1, want: 10},
		{n: 2, want: 20},
		{n: 3, want: 30},   // interpolated
		{n: 0.5, want: 10}, // clamp left
		{n: 9, want: 40},   // clamp right
	}
	for _, tt := range tests {
		if got := f(tt.n); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("f(%g) = %g, want %g", tt.n, got, tt.want)
		}
	}
}

func TestInterpolatedErrors(t *testing.T) {
	if _, err := Interpolated(nil, nil); err == nil {
		t.Error("empty samples should error")
	}
	if _, err := Interpolated([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Interpolated([]float64{0, 1}, []float64{1, 2}); err == nil {
		t.Error("nonpositive n should error")
	}
	if _, err := Interpolated([]float64{2, 2}, []float64{1, 2}); err == nil {
		t.Error("duplicate n should error")
	}
}

func TestModelValidate(t *testing.T) {
	good := GustafsonModel(0.5)
	if err := good.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	bad := []Model{
		{Eta: -0.1, EX: Constant(1), IN: Constant(1), Q: ZeroOverhead()},
		{Eta: 1.1, EX: Constant(1), IN: Constant(1), Q: ZeroOverhead()},
		{Eta: 0.5, IN: Constant(1), Q: ZeroOverhead()},
		{Eta: 0.5, EX: Constant(1), Q: ZeroOverhead()},
		{Eta: 0.5, EX: Constant(1), IN: Constant(1)},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("model %d should be invalid", i)
		}
	}
}

func TestSpeedupRejectsBadN(t *testing.T) {
	m := GustafsonModel(0.5)
	if _, err := m.Speedup(0.5); err == nil {
		t.Error("n < 1 should error")
	}
	if _, err := m.SpeedupStatistic(0.5, 1); err == nil {
		t.Error("n < 1 should error (statistic)")
	}
	if _, err := m.SpeedupStatistic(2, -1); err == nil {
		t.Error("negative normalized time should error")
	}
}

// Eq. (10) must reduce to the classic laws under Eq. (13)'s settings.
func TestModelReducesToClassicLaws(t *testing.T) {
	etas := []float64{0.1, 0.5, 0.9, 0.99}
	ns := []float64{1, 2, 8, 64, 500}
	for _, eta := range etas {
		for _, n := range ns {
			amdahlWant, _ := Amdahl(eta, n)
			amdahlGot, err := AmdahlModel(eta).Speedup(n)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(amdahlGot, amdahlWant, 1e-12) {
				t.Errorf("Amdahl η=%g n=%g: IPSO %g vs law %g", eta, n, amdahlGot, amdahlWant)
			}
			gustWant, _ := Gustafson(eta, n)
			gustGot, err := GustafsonModel(eta).Speedup(n)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(gustGot, gustWant, 1e-12) {
				t.Errorf("Gustafson η=%g n=%g: IPSO %g vs law %g", eta, n, gustGot, gustWant)
			}
			sunWant, _ := SunNi(eta, n, PowerFactor(1, 0.8))
			sunGot, err := SunNiModel(eta, PowerFactor(1, 0.8)).Speedup(n)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(sunGot, sunWant, 1e-12) {
				t.Errorf("Sun-Ni η=%g n=%g: IPSO %g vs law %g", eta, n, sunGot, sunWant)
			}
		}
	}
}

func TestSunNiCoincidesWithGustafsonWhenGIsLinear(t *testing.T) {
	// Section IV: for memory-bounded data-intensive workloads g(n) ≈ n, so
	// Sun-Ni's law coincides with Gustafson's.
	for _, n := range []float64{1, 4, 32, 160} {
		sn, err := SunNi(0.7, n, LinearFactor(1, 0))
		if err != nil {
			t.Fatal(err)
		}
		gu, _ := Gustafson(0.7, n)
		if !almostEqual(sn, gu, 1e-12) {
			t.Errorf("n=%g: Sun-Ni %g vs Gustafson %g", n, sn, gu)
		}
	}
}

func TestAmdahlBound(t *testing.T) {
	b, err := AmdahlBound(0.75)
	if err != nil || b != 4 {
		t.Errorf("AmdahlBound(0.75) = %g, %v; want 4", b, err)
	}
	if b, _ := AmdahlBound(1); !math.IsInf(b, 1) {
		t.Errorf("AmdahlBound(1) = %g, want +Inf", b)
	}
	if _, err := AmdahlBound(2); err == nil {
		t.Error("η > 1 should error")
	}
}

func TestLawArgErrors(t *testing.T) {
	if _, err := Amdahl(-0.1, 2); err == nil {
		t.Error("bad η should error")
	}
	if _, err := Gustafson(0.5, 0); err == nil {
		t.Error("bad n should error")
	}
	if _, err := SunNi(0.5, 2, nil); err == nil {
		t.Error("nil g should error")
	}
}

func TestSpeedupStatisticReducesToDeterministic(t *testing.T) {
	// With deterministic tasks, E[max]/T1 = η·EX(n)/n and Eq. (8) equals
	// Eq. (10).
	m := Model{Eta: 0.6, EX: LinearFactor(1, 0), IN: LinearFactor(0.36, 0.64), Q: ZeroOverhead()}
	for _, n := range []float64{1, 3, 10, 80} {
		det, err := m.Speedup(n)
		if err != nil {
			t.Fatal(err)
		}
		statNorm := m.Eta * m.EX(n) / n
		stat, err := m.SpeedupStatistic(n, statNorm)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(det, stat, 1e-12) {
			t.Errorf("n=%g: deterministic %g vs statistic %g", n, det, stat)
		}
	}
}

func TestEpsilon(t *testing.T) {
	m := Model{Eta: 0.5, EX: LinearFactor(1, 0), IN: LinearFactor(0.25, 0.75), Q: ZeroOverhead()}
	eps, err := m.Epsilon(4)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(eps, 4/(0.25*4+0.75), 1e-12) {
		t.Errorf("ε(4) = %g", eps)
	}
	m.IN = Constant(0)
	if _, err := m.Epsilon(4); err == nil {
		t.Error("IN = 0 should make ε undefined")
	}
}

func TestEtaFromPhases(t *testing.T) {
	eta, err := EtaFromPhases(3, 1)
	if err != nil || eta != 0.75 {
		t.Errorf("EtaFromPhases(3,1) = %g, %v; want 0.75", eta, err)
	}
	if _, err := EtaFromPhases(0, 0); err == nil {
		t.Error("zero phase times should error")
	}
	if _, err := EtaFromPhases(-1, 1); err == nil {
		t.Error("negative phase times should error")
	}
}

func TestCFSpeedup(t *testing.T) {
	// Paper values: E[Tp,1(1)] = 1602.5, n=60 row of Table I.
	s, err := CFSpeedup(1602.5, 43.7, 36.0)
	if err != nil {
		t.Fatal(err)
	}
	if s < 19 || s > 22 {
		t.Errorf("CF speedup at n=60 = %g, want ≈20 (paper's peak ≈21)", s)
	}
	if _, err := CFSpeedup(0, 1, 1); err == nil {
		t.Error("nonpositive Tp1 should error")
	}
	if _, err := CFSpeedup(1, 0, 0); err == nil {
		t.Error("zero denominator should error")
	}
}

func TestCurve(t *testing.T) {
	m := GustafsonModel(1)
	c, err := m.Curve([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1, 2, 3} {
		if !almostEqual(c[i], want, 1e-12) {
			t.Errorf("curve[%d] = %g, want %g", i, c[i], want)
		}
	}
	if _, err := m.Curve([]float64{0}); err == nil {
		t.Error("invalid n in curve should error")
	}
}

// Property: Amdahl's speedup is monotone in n and within [1, 1/(1−η)].
func TestAmdahlBoundsProperty(t *testing.T) {
	f := func(etaRaw, nRaw uint8) bool {
		eta := float64(etaRaw%100) / 100
		n := float64(nRaw%200) + 1
		s, err := Amdahl(eta, n)
		if err != nil {
			return false
		}
		bound, _ := AmdahlBound(eta)
		return s >= 1-1e-12 && s <= bound+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: with IN ≥ 1 and q ≥ 0, the IPSO speedup never exceeds n — the
// generalization cannot beat perfect linear scaling.
func TestIPSOSpeedupAtMostNProperty(t *testing.T) {
	f := func(etaRaw, slopeRaw, qRaw, nRaw uint8) bool {
		m := Model{
			Eta: float64(etaRaw%101) / 100,
			EX:  LinearFactor(1, 0),
			IN:  LinearFactor(float64(slopeRaw%50)/50, 1),
			Q:   PowerFactor(float64(qRaw%20)/100, 1.2),
		}
		n := float64(nRaw%150) + 1
		s, err := m.Speedup(n)
		if err != nil {
			return false
		}
		return s <= n+1e-9 && s > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the IPSO speedup with in-proportion scaling (IN growing) is
// never above Gustafson's prediction for the same η — the paper's central
// claim that the classic laws are overly optimistic.
func TestIPSOBelowGustafsonProperty(t *testing.T) {
	f := func(etaRaw, slopeRaw, nRaw uint8) bool {
		eta := float64(etaRaw%100) / 100
		m := Model{
			Eta: eta,
			EX:  LinearFactor(1, 0),
			IN:  LinearFactor(float64(slopeRaw%50)/50+0.01, 1), // IN(n) ≥ 1, growing
			Q:   ZeroOverhead(),
		}
		n := float64(nRaw%150) + 1
		s, err := m.Speedup(n)
		if err != nil {
			return false
		}
		g, err := Gustafson(eta, n)
		if err != nil {
			return false
		}
		return s <= g+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
