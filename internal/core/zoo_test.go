package core

import (
	"math"
	"testing"
)

var zooSweepNs = []float64{1, 2, 4, 8, 12, 16, 24, 32, 48, 64}

func uslSpeedup(sigma, kappa, n float64) float64 {
	return n / (1 + sigma*(n-1) + kappa*n*(n-1))
}

func TestUSLParameterRecovery(t *testing.T) {
	// Synthetic sweep from known USL parameters must refit to within
	// tolerance, and selection must pick USL as the generating model.
	const sigma, kappa = 0.08, 5e-4
	ss := make([]float64, len(zooSweepNs))
	for i, n := range zooSweepNs {
		ss[i] = uslSpeedup(sigma, kappa, n)
	}

	m := USLScaling()
	rep, err := m.Fit(zooSweepNs, ss)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SSE > 1e-8 {
		t.Errorf("SSE = %g, want ~0", rep.SSE)
	}
	p := m.Params()
	if math.Abs(p[0].Value-sigma) > 0.01 {
		t.Errorf("sigma = %g, want %g", p[0].Value, sigma)
	}
	if math.Abs(p[1].Value-kappa) > 1e-4 {
		t.Errorf("kappa = %g, want %g", p[1].Value, kappa)
	}

	// Analytic optimum: n* = sqrt((1-sigma)/kappa) ≈ 42.9.
	nStar, sStar, err := m.OptimalN(1024)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt((1 - sigma) / kappa)
	if math.Abs(float64(nStar)-want) > 1.5 {
		t.Errorf("OptimalN = %d, want ≈%.1f", nStar, want)
	}
	if sStar <= 1 {
		t.Errorf("peak speedup %g should exceed 1", sStar)
	}

	sel, err := FitModels(zooSweepNs, ss, ModelZoo(FixedSize))
	if err != nil {
		t.Fatal(err)
	}
	best, ok := sel.BestFit()
	if !ok {
		t.Fatal("no model selected")
	}
	if best.Name != ModelUSL {
		for _, f := range sel.Fits {
			t.Logf("%-10s AICc=%.2f LOO=%.3g SSE=%.3g err=%v", f.Name, f.AICc, f.LOO, f.SSE, f.Err)
		}
		t.Errorf("selected %q, want %q on retrograde USL data", best.Name, ModelUSL)
	}
}

func TestAmdahlParameterRecovery(t *testing.T) {
	const eta = 0.9
	ss := make([]float64, len(zooSweepNs))
	for i, n := range zooSweepNs {
		ss[i] = 1 / (eta/n + 1 - eta)
	}

	m := AmdahlScaling()
	if _, err := m.Fit(zooSweepNs, ss); err != nil {
		t.Fatal(err)
	}
	if got := m.Params()[0].Value; math.Abs(got-eta) > 0.005 {
		t.Errorf("eta = %g, want %g", got, eta)
	}

	sel, err := FitModels(zooSweepNs, ss, ModelZoo(FixedSize))
	if err != nil {
		t.Fatal(err)
	}
	best, ok := sel.BestFit()
	if !ok {
		t.Fatal("no model selected")
	}
	if best.Name != ModelAmdahl {
		for _, f := range sel.Fits {
			t.Logf("%-10s AICc=%.2f LOO=%.3g SSE=%.3g err=%v", f.Name, f.AICc, f.LOO, f.SSE, f.Err)
		}
		t.Errorf("selected %q, want %q on Amdahl data", best.Name, ModelAmdahl)
	}
}

func TestIPSOScalingMatchesAsymptotic(t *testing.T) {
	// The zoo adapter must agree with the reference Asymptotic form.
	a := Asymptotic{Eta: 0.7, Alpha: 1.2, Delta: 0.4, Beta: 0.004, Gamma: 0.8}
	m := IPSOScaling(FixedTime)
	if err := m.SetParams([]float64{a.Eta, a.Alpha, a.Delta, a.Beta, a.Gamma}); err != nil {
		t.Fatal(err)
	}
	for _, n := range zooSweepNs {
		want, err := a.Speedup(n)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.Speedup(n)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12*math.Max(1, want) {
			t.Errorf("S(%g) = %g, want %g", n, got, want)
		}
	}

	// Fixed-size pins delta = 0 and drops it from the vector.
	fs := IPSOScaling(FixedSize)
	if got := len(fs.Params()); got != 4 {
		t.Errorf("fixed-size IPSO has %d params, want 4", got)
	}
}

func TestZooInterfaceConformance(t *testing.T) {
	for _, m := range ModelZoo(FixedTime) {
		if m.Name() == "" {
			t.Error("model with empty name")
		}
		// S(1) ≈ 1 for every member at its initial parameters. IPSO's
		// Eq. 16 form carries q(1) = β > 0, so exact unity is not
		// guaranteed — only closeness.
		s, err := m.Speedup(1)
		if err != nil {
			t.Errorf("%s: S(1): %v", m.Name(), err)
		} else if math.Abs(s-1) > 2e-3 {
			t.Errorf("%s: S(1) = %g, want ≈1", m.Name(), s)
		}
		if _, err := m.Speedup(0.5); err == nil {
			t.Errorf("%s: n < 1 should error", m.Name())
		}
		// Predict is T1/S.
		s8, err := m.Speedup(8)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		pred, err := m.Predict(100, 8)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if math.Abs(pred-100/s8) > 1e-9 {
			t.Errorf("%s: Predict(100, 8) = %g, want %g", m.Name(), pred, 100/s8)
		}
		if _, err := m.Predict(0, 8); err == nil {
			t.Errorf("%s: t1 <= 0 should error", m.Name())
		}
		// Round-trip a fresh instance by name.
		clone, err := NewZooModel(m.Name(), FixedTime)
		if err != nil {
			t.Fatal(err)
		}
		if clone.Name() != m.Name() {
			t.Errorf("NewZooModel(%q) named %q", m.Name(), clone.Name())
		}
	}
	if _, err := NewZooModel("nope", FixedTime); err == nil {
		t.Error("unknown model name should error")
	}
}

func TestSetParamsClampsAndValidates(t *testing.T) {
	m := AmdahlScaling()
	if err := m.SetParams([]float64{1.7}); err != nil {
		t.Fatal(err)
	}
	if got := m.Params()[0].Value; got != 1 {
		t.Errorf("eta clamped to %g, want 1", got)
	}
	if err := m.SetParams([]float64{-0.3}); err != nil {
		t.Fatal(err)
	}
	if got := m.Params()[0].Value; got != 0 {
		t.Errorf("eta clamped to %g, want 0", got)
	}
	if err := m.SetParams([]float64{0.5, 0.5}); err == nil {
		t.Error("wrong arity should error")
	}
	if err := m.SetParams([]float64{math.NaN()}); err == nil {
		t.Error("NaN should error")
	}
}

func TestFitModelsValidation(t *testing.T) {
	zoo := ModelZoo(FixedTime)
	if _, err := FitModels(nil, nil, zoo); err == nil {
		t.Error("empty sweep should error")
	}
	if _, err := FitModels([]float64{1, 2}, []float64{1, 1.8}, zoo); err == nil {
		t.Error("two points should error")
	}
	if _, err := FitModels([]float64{1, 4, 2}, []float64{1, 2, 3}, zoo); err == nil {
		t.Error("non-ascending degrees should error")
	}
	if _, err := FitModels([]float64{1, 2, 4}, []float64{1, -2, 3}, zoo); err == nil {
		t.Error("non-positive speedup should error")
	}
	if _, err := FitModels([]float64{1, 2, 4}, []float64{1, 1.8, 3.1}, nil); err == nil {
		t.Error("no candidates should error")
	}
}

func TestFitModelsScoresHonestParamBudget(t *testing.T) {
	// Five points cannot score the 5-parameter fixed-time IPSO model
	// (n - k - 1 <= 0): its AICc must be +Inf, and a smaller model wins.
	ns := []float64{1, 2, 4, 8, 16}
	ss := make([]float64, len(ns))
	for i, n := range ns {
		ss[i] = 0.95*n + 0.05
	}
	sel, err := FitModels(ns, ss, ModelZoo(FixedTime))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range sel.Fits {
		if f.Name == ModelIPSO && f.Err == nil && !math.IsInf(f.AICc, 1) {
			t.Errorf("IPSO AICc = %g on 5 points, want +Inf", f.AICc)
		}
	}
	best, ok := sel.BestFit()
	if !ok {
		t.Fatal("no model selected")
	}
	if best.Name != ModelGustafson {
		t.Errorf("selected %q on exact Gustafson data, want %q", best.Name, ModelGustafson)
	}
}
