package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ScalingFactor is a scaling function of the scale-out degree n ≥ 1.
// External and internal factors are normalized so f(1) = 1; the
// scale-out-induced factor satisfies q(1) = 0.
type ScalingFactor func(n float64) float64

// Constant returns the factor f(n) = c. Constant(1) is the classic
// "serial portion does not scale" assumption (IN of Amdahl/Gustafson) and
// the fixed-size external factor of Amdahl's law.
func Constant(c float64) ScalingFactor {
	return func(float64) float64 { return c }
}

// LinearFactor returns f(n) = slope·n + intercept — the fixed-time
// external factor EX(n) = n is LinearFactor(1, 0), and the measured
// internal factors of Sort and TeraSort are of this form (Fig. 6).
func LinearFactor(slope, intercept float64) ScalingFactor {
	return func(n float64) float64 { return slope*n + intercept }
}

// PowerFactor returns f(n) = c·n^p, the asymptotic form of Eqs. (14-15).
func PowerFactor(c, p float64) ScalingFactor {
	return func(n float64) float64 { return c * math.Pow(n, p) }
}

// ZeroOverhead is the q(n) = 0 factor of the classic laws.
func ZeroOverhead() ScalingFactor { return Constant(0) }

// Interpolated builds a factor from measured samples by piecewise-linear
// interpolation (constant extrapolation beyond the sampled range). The
// inputs must be positive ns; they are sorted internally.
func Interpolated(ns, values []float64) (ScalingFactor, error) {
	if len(ns) != len(values) || len(ns) == 0 {
		return nil, errors.New("core: interpolation needs equal, nonempty samples")
	}
	type pt struct{ x, y float64 }
	pts := make([]pt, len(ns))
	for i := range ns {
		if ns[i] <= 0 {
			return nil, fmt.Errorf("core: nonpositive sample n=%g", ns[i])
		}
		pts[i] = pt{x: ns[i], y: values[i]}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	for i := 1; i < len(pts); i++ {
		if pts[i].x == pts[i-1].x {
			return nil, fmt.Errorf("core: duplicate sample n=%g", pts[i].x)
		}
	}
	return func(n float64) float64 {
		if n <= pts[0].x {
			return pts[0].y
		}
		if n >= pts[len(pts)-1].x {
			return pts[len(pts)-1].y
		}
		idx := sort.Search(len(pts), func(i int) bool { return pts[i].x >= n })
		a, b := pts[idx-1], pts[idx]
		frac := (n - a.x) / (b.x - a.x)
		return a.y + frac*(b.y-a.y)
	}, nil
}

// Model is the deterministic IPSO model (Section IV): the special case of
// the statistic model with Tp,i(n) = tp(n) for all i and Ts(n) = ts(n).
type Model struct {
	// Eta is η, the parallelizable fraction of the workload at n = 1
	// (Eq. 9/11): η = tp(1) / (tp(1) + ts(1)).
	Eta float64
	// EX is the external scaling factor (parallelizable portion), EX(1)=1.
	EX ScalingFactor
	// IN is the internal scaling factor (serial portion), IN(1)=1.
	IN ScalingFactor
	// Q is the scale-out-induced scaling factor, Q(1)=0, non-decreasing.
	Q ScalingFactor
}

// Validate checks the model's structural constraints.
func (m Model) Validate() error {
	if m.Eta < 0 || m.Eta > 1 || math.IsNaN(m.Eta) {
		return fmt.Errorf("core: η = %g outside [0, 1]", m.Eta)
	}
	if m.EX == nil || m.IN == nil || m.Q == nil {
		return errors.New("core: model requires EX, IN and Q factors (use Constant/ZeroOverhead)")
	}
	return nil
}

// Speedup evaluates Eq. (10):
//
//	S(n) = (η·EX(n) + (1−η)·IN(n)) /
//	       (η·EX(n)/n·(1+q(n)) + (1−η)·IN(n))
func (m Model) Speedup(n float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if n < 1 {
		return 0, fmt.Errorf("core: scale-out degree n = %g must be >= 1", n)
	}
	ex, in, q := m.EX(n), m.IN(n), m.Q(n)
	num := m.Eta*ex + (1-m.Eta)*in
	den := m.Eta*ex/n*(1+q) + (1-m.Eta)*in
	if den <= 0 {
		return 0, fmt.Errorf("core: nonpositive denominator at n=%g (ex=%g in=%g q=%g)", n, ex, in, q)
	}
	return num / den, nil
}

// SpeedupStatistic evaluates the statistic model of Eq. (8), with the
// measured (or analytically derived) normalized split-phase response time
// maxOverT1 = E[max{Tp,i(n)}] / (E[Tp,1(1)] + E[Ts(1)]):
//
//	S(n) = (η·EX(n) + (1−η)·IN(n)) /
//	       (maxOverT1 + (1−η)·IN(n) + η·EX(n)·q(n)/n)
//
// With deterministic task times maxOverT1 = η·EX(n)/n and Eq. (8) reduces
// to Eq. (10).
func (m Model) SpeedupStatistic(n, maxOverT1 float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if n < 1 {
		return 0, fmt.Errorf("core: scale-out degree n = %g must be >= 1", n)
	}
	if maxOverT1 < 0 {
		return 0, fmt.Errorf("core: negative normalized split time %g", maxOverT1)
	}
	ex, in, q := m.EX(n), m.IN(n), m.Q(n)
	num := m.Eta*ex + (1-m.Eta)*in
	den := maxOverT1 + (1-m.Eta)*in + m.Eta*ex*q/n
	if den <= 0 {
		return 0, fmt.Errorf("core: nonpositive denominator at n=%g", n)
	}
	return num / den, nil
}

// Epsilon evaluates the in-proportion scaling ratio ε(n) = EX(n)/IN(n)
// (Eq. 5).
func (m Model) Epsilon(n float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	in := m.IN(n)
	if in == 0 {
		return 0, fmt.Errorf("core: IN(%g) = 0, ε undefined", n)
	}
	return m.EX(n) / in, nil
}

// Curve evaluates the speedup at each n in ns.
func (m Model) Curve(ns []float64) ([]float64, error) {
	out := make([]float64, len(ns))
	for i, n := range ns {
		s, err := m.Speedup(n)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// EtaFromPhases computes η from the n = 1 phase times (Eq. 11):
// η = tp1 / (tp1 + ts1).
func EtaFromPhases(tp1, ts1 float64) (float64, error) {
	if tp1 < 0 || ts1 < 0 || tp1+ts1 == 0 {
		return 0, fmt.Errorf("core: invalid phase times tp1=%g ts1=%g", tp1, ts1)
	}
	return tp1 / (tp1 + ts1), nil
}

// CFSpeedup evaluates Eq. (18), the fixed-size, η = 1 statistic speedup
// used for the Collaborative Filtering case study:
//
//	S(n) = E[Tp,1(1)] / (E[max{Tp,i(n)}] + Wo(n))
func CFSpeedup(tp1, maxTask, wo float64) (float64, error) {
	if tp1 <= 0 {
		return 0, fmt.Errorf("core: E[Tp,1(1)] = %g must be positive", tp1)
	}
	den := maxTask + wo
	if den <= 0 {
		return 0, fmt.Errorf("core: nonpositive denominator %g", den)
	}
	return tp1 / den, nil
}
