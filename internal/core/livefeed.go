package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"ipso/internal/obs"
)

// LiveFeed closes the loop the paper leaves as future work: it bridges a
// running system's measured phase accounts (Wp/Ws/Wo per scale-out
// degree, e.g. from netmr's job traces) into the online estimator and
// keeps the model zoo fitted continuously, exporting the selection — the
// winning model, its AICc scoreboard, the fitted parameters, and the
// predicted optimal degree — as gauges on a metrics registry. The cluster
// that produces /metrics is thereby also the system IPSO diagnoses.
//
// Feed order is unconstrained: observations may arrive at any degree,
// repeatedly (repeats of a degree are averaged), which is what live
// telemetry looks like — unlike OnlineEstimator.Observe, which demands a
// strictly ascending probe schedule. Refit rebuilds a fresh estimator
// from the sorted per-degree aggregates on every call.

// LiveFeedOptions tunes the bridge.
type LiveFeedOptions struct {
	// Online configures the underlying estimator (zoo dimension, serial
	// precision, bootstrap settings).
	Online OnlineOptions
	// MaxN is the horizon OptimalN is searched on (default 1024).
	MaxN int
	// Metrics is the registry the live-fit gauges register on; nil means
	// the process-wide obs.Default().
	Metrics *obs.Registry
}

// degreeAccount is the running mean of every observation at one degree.
type degreeAccount struct {
	n                   float64
	count               int
	wp, ws, wo, maxTask float64 // running sums
}

func (a *degreeAccount) mean() Observation {
	c := float64(a.count)
	return Observation{N: a.n, Wp: a.wp / c, Ws: a.ws / c, Wo: a.wo / c, MaxTask: a.maxTask / c}
}

// LiveFeed accumulates phase accounts and refits the zoo on demand.
type LiveFeed struct {
	opts LiveFeedOptions

	mu     sync.Mutex
	byN    map[float64]*degreeAccount
	sel    ModelSelection
	best   ScalingModel
	nStar  int
	sStar  float64
	refits int

	observations *obs.Counter
	refitsTotal  *obs.CounterVec
	degrees      *obs.Gauge
	selected     *obs.GaugeVec
	aiccGauge    *obs.GaugeVec
	paramGauge   *obs.GaugeVec
	optimalN     *obs.Gauge
	optimalS     *obs.Gauge
}

// NewLiveFeed builds an empty feed and registers its gauges.
func NewLiveFeed(opts LiveFeedOptions) *LiveFeed {
	if opts.MaxN <= 0 {
		opts.MaxN = 1024
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	return &LiveFeed{
		opts: opts,
		byN:  map[float64]*degreeAccount{},
		observations: reg.Counter("core_livefit_observations_total",
			"Phase-account observations fed into the live model fit."),
		refitsTotal: reg.CounterVec("core_livefit_refits_total",
			"Live zoo refits attempted, by outcome (ok or error).", "outcome"),
		degrees: reg.Gauge("core_livefit_degrees",
			"Distinct scale-out degrees accumulated by the live fit."),
		selected: reg.GaugeVec("core_livefit_selected_model",
			"1 for the currently selected scaling model, 0 for the other candidates.", "model"),
		aiccGauge: reg.GaugeVec("core_livefit_model_aicc",
			"AICc score of each zoo candidate at the last refit (lower is better).", "model"),
		paramGauge: reg.GaugeVec("core_livefit_model_param",
			"Fitted parameter values of the selected model at the last refit.", "model", "param"),
		optimalN: reg.Gauge("core_livefit_optimal_n",
			"Speedup-maximizing scale-out degree predicted by the selected model."),
		optimalS: reg.Gauge("core_livefit_optimal_speedup",
			"Predicted speedup at the optimal scale-out degree."),
	}
}

// Observe folds one phase account into the per-degree aggregates.
// Repeats of a degree average; degrees may arrive in any order.
func (l *LiveFeed) Observe(o Observation) error {
	if o.N < 1 {
		return fmt.Errorf("core: live observation at n=%g (< 1)", o.N)
	}
	if o.Wp <= 0 || o.Ws < 0 || o.Wo < 0 {
		return fmt.Errorf("core: invalid workloads in live observation %+v", o)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	a := l.byN[o.N]
	if a == nil {
		a = &degreeAccount{n: o.N}
		l.byN[o.N] = a
	}
	a.count++
	a.wp += o.Wp
	a.ws += o.Ws
	a.wo += o.Wo
	a.maxTask += o.MaxTask
	l.observations.Inc()
	l.degrees.Set(float64(len(l.byN)))
	return nil
}

// Degrees returns the distinct degrees accumulated so far, ascending.
func (l *LiveFeed) Degrees() []float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sortedDegreesLocked()
}

func (l *LiveFeed) sortedDegreesLocked() []float64 {
	ns := make([]float64, 0, len(l.byN))
	for n := range l.byN {
		ns = append(ns, n)
	}
	sort.Float64s(ns)
	return ns
}

// estimator rebuilds a fresh OnlineEstimator from the current per-degree
// means, in ascending degree order — the shape Observe demands.
func (l *LiveFeed) estimatorLocked() (*OnlineEstimator, error) {
	est, err := NewOnlineEstimator(l.opts.Online)
	if err != nil {
		return nil, err
	}
	for _, n := range l.sortedDegreesLocked() {
		if err := est.Observe(l.byN[n].mean()); err != nil {
			return nil, err
		}
	}
	return est, nil
}

// Refit rebuilds the estimator from everything fed so far, fits the
// zoo, and updates the exported gauges. It needs phase accounts at >= 3
// distinct degrees (FitModels' floor).
func (l *LiveFeed) Refit() (ModelSelection, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	est, err := l.estimatorLocked()
	if err != nil {
		l.refitsTotal.With("error").Inc()
		return ModelSelection{}, err
	}
	best, sel, err := est.BestModel()
	if err != nil {
		l.refitsTotal.With("error").Inc()
		return sel, err
	}
	nStar, sStar, err := best.OptimalN(l.opts.MaxN)
	if err != nil {
		l.refitsTotal.With("error").Inc()
		return sel, err
	}
	l.sel, l.best, l.nStar, l.sStar = sel, best, nStar, sStar
	l.refits++
	l.refitsTotal.With("ok").Inc()

	// Export the scoreboard: exactly one selected_model gauge at 1, the
	// per-candidate AICc, the winner's fitted parameters, and the
	// provisioning answer.
	for i, f := range sel.Fits {
		sv := 0.0
		if i == sel.Best {
			sv = 1
		}
		l.selected.With(f.Name).Set(sv)
		l.aiccGauge.With(f.Name).Set(f.AICc)
	}
	if fit, ok := sel.BestFit(); ok {
		for _, p := range fit.Params {
			l.paramGauge.With(fit.Name, p.Name).Set(p.Value)
		}
	}
	l.optimalN.Set(float64(nStar))
	l.optimalS.Set(sStar)
	return sel, nil
}

// Best returns the selection of the last successful Refit.
func (l *LiveFeed) Best() (ScalingModel, ModelSelection, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.best == nil {
		return nil, ModelSelection{}, errors.New("core: live feed has not refitted yet")
	}
	return l.best, l.sel, nil
}

// OptimalN returns the provisioning answer of the last successful Refit:
// the speedup-maximizing degree on [1, MaxN] and its predicted speedup.
func (l *LiveFeed) OptimalN() (int, float64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.best == nil {
		return 0, 0, errors.New("core: live feed has not refitted yet")
	}
	return l.nStar, l.sStar, nil
}

// Refits returns how many refits have succeeded.
func (l *LiveFeed) Refits() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.refits
}
