package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadEstimatesRoundTrip(t *testing.T) {
	m := sortLikeMeasurements([]float64{1, 2, 4, 8, 16})
	est, err := Estimate(m)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveEstimates(&buf, est, 18.8, 12.85); err != nil {
		t.Fatal(err)
	}
	loadedEst, pred, err := LoadEstimates(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(loadedEst.Eta, est.Eta, 1e-12) {
		t.Errorf("η round-trip: %g vs %g", loadedEst.Eta, est.Eta)
	}
	if !almostEqual(loadedEst.INFit.Slope, est.INFit.Slope, 1e-12) {
		t.Errorf("IN slope round-trip: %g vs %g", loadedEst.INFit.Slope, est.INFit.Slope)
	}
	// The rebuilt predictor matches a freshly built one.
	fresh, err := NewPredictor(est, 18.8, 12.85)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []float64{10, 100, 200} {
		a, err := pred.Speedup(n)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fresh.Speedup(n)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(a, b, 1e-12) {
			t.Errorf("n=%g: loaded %g vs fresh %g", n, a, b)
		}
	}
}

func TestSaveLoadEstimatesWithStep(t *testing.T) {
	// TeraSort-like fit with a breakpoint: the piecewise segment must
	// survive serialization.
	var m Measurements
	for n := 1.0; n <= 40; n++ {
		m.N = append(m.N, n)
		m.Wp = append(m.Wp, 10.7*n)
		in := 0.17*n + 0.83
		if n > 15 {
			in = 0.25*n - 0.37
		}
		m.Ws = append(m.Ws, 24.4*in)
	}
	est, err := Estimate(m)
	if err != nil {
		t.Fatal(err)
	}
	if est.INStep == nil {
		t.Fatal("fixture lost its step")
	}
	var buf bytes.Buffer
	if err := SaveEstimates(&buf, est, 10.7, 24.4); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := LoadEstimates(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.INStep == nil {
		t.Fatal("step fit lost in round-trip")
	}
	if !almostEqual(loaded.INStep.Break, est.INStep.Break, 1e-12) {
		t.Errorf("break round-trip: %g vs %g", loaded.INStep.Break, est.INStep.Break)
	}
}

func TestSaveLoadScalingModelRoundTrip(t *testing.T) {
	for _, name := range []string{ModelIPSO, ModelUSL, ModelAmdahl, ModelGustafson, ModelPower} {
		for _, w := range []WorkloadType{FixedTime, FixedSize} {
			m, err := NewZooModel(name, w)
			if err != nil {
				t.Fatal(err)
			}
			// Nudge every parameter off its initial value so the
			// round-trip proves the values (not the defaults) survive.
			values := make([]float64, len(m.Params()))
			for i, p := range m.Params() {
				values[i] = p.Init * 0.5
				if values[i] < p.Min {
					values[i] = p.Min
				}
			}
			if err := m.SetParams(values); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := SaveScalingModel(&buf, m, w, 31.65); err != nil {
				t.Fatal(err)
			}
			loaded, lw, t1, err := LoadScalingModel(&buf)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, w, err)
			}
			if loaded.Name() != name || lw != w || !almostEqual(t1, 31.65, 1e-12) {
				t.Errorf("%s/%v: loaded (%s, %v, %g)", name, w, loaded.Name(), lw, t1)
			}
			for i, p := range loaded.Params() {
				if !almostEqual(p.Value, values[i], 1e-12) {
					t.Errorf("%s/%v: param %s = %g, want %g", name, w, p.Name, p.Value, values[i])
				}
			}
		}
	}
}

// TestLoadScalingModelPinnedGenerations pins both on-disk generations as
// literal JSON: a legacy version-1 estimates file (no schema field,
// IPSO-only) and a schema-2 zoo file. Both must keep loading verbatim.
func TestLoadScalingModelPinnedGenerations(t *testing.T) {
	legacy := `{
  "version": 1,
  "estimates": {
    "Eta": 0.59,
    "EXFit": {"Slope": 1, "Intercept": 0, "R2": 1},
    "INFit": {"Slope": 0.377, "Intercept": 0.623, "R2": 0.99},
    "INStep": null,
    "Epsilon": {"Coeff": 1.1, "Exponent": 0.3, "R2": 0.98},
    "QFit": {"Coeff": 0, "Exponent": 0, "R2": 0},
    "HasOverhead": false
  },
  "tp1_seconds": 18.8,
  "ts1_seconds": 12.85
}`
	m, w, t1, err := LoadScalingModel(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != ModelIPSO || w != FixedTime {
		t.Errorf("legacy load gave (%s, %v), want (ipso, fixed-time)", m.Name(), w)
	}
	if !almostEqual(t1, 31.65, 1e-9) {
		t.Errorf("legacy T1 = %g, want 31.65", t1)
	}
	p := m.Params()
	if !almostEqual(p[0].Value, 0.59, 1e-12) || !almostEqual(p[1].Value, 1.1, 1e-12) || !almostEqual(p[2].Value, 0.3, 1e-12) {
		t.Errorf("legacy params: η=%g α=%g δ=%g, want 0.59/1.1/0.3", p[0].Value, p[1].Value, p[2].Value)
	}

	schema2 := `{
  "schema": 2,
  "model": "usl",
  "workload": "fixed-size",
  "params": [
    {"name": "sigma", "value": 0.08},
    {"name": "kappa", "value": 0.0005}
  ],
  "t1_seconds": 1602.5
}`
	m2, w2, t12, err := LoadScalingModel(strings.NewReader(schema2))
	if err != nil {
		t.Fatal(err)
	}
	if m2.Name() != ModelUSL || w2 != FixedSize || !almostEqual(t12, 1602.5, 1e-12) {
		t.Errorf("schema-2 load gave (%s, %v, %g)", m2.Name(), w2, t12)
	}
	p2 := m2.Params()
	if !almostEqual(p2[0].Value, 0.08, 1e-12) || !almostEqual(p2[1].Value, 5e-4, 1e-12) {
		t.Errorf("schema-2 params σ=%g κ=%g, want 0.08/0.0005", p2[0].Value, p2[1].Value)
	}
	// The restored USL keeps its analytic optimum.
	nStar, _, err := m2.OptimalN(1024)
	if err != nil {
		t.Fatal(err)
	}
	if nStar < 41 || nStar > 44 {
		t.Errorf("restored USL optimum %d, want ≈43", nStar)
	}
}

func TestSaveLoadScalingModelErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveScalingModel(&buf, nil, FixedTime, 1); err == nil {
		t.Error("nil model should error")
	}
	if err := SaveScalingModel(&buf, USLScaling(), WorkloadType(9), 1); err == nil {
		t.Error("bad workload should error")
	}
	if err := SaveScalingModel(&buf, USLScaling(), FixedTime, 0); err == nil {
		t.Error("bad t1 should error")
	}
	if _, _, _, err := LoadScalingModel(strings.NewReader("{")); err == nil {
		t.Error("malformed JSON should error")
	}
	if _, _, _, err := LoadScalingModel(strings.NewReader(`{"schema":99}`)); err == nil {
		t.Error("unknown schema should error")
	}
	if _, _, _, err := LoadScalingModel(strings.NewReader(`{"schema":2,"model":"nope","workload":"fixed-time","t1_seconds":1}`)); err == nil {
		t.Error("unknown model should error")
	}
	if _, _, _, err := LoadScalingModel(strings.NewReader(`{"schema":2,"model":"usl","workload":"sideways","t1_seconds":1}`)); err == nil {
		t.Error("unknown workload should error")
	}
	if _, _, _, err := LoadScalingModel(strings.NewReader(`{"schema":2,"model":"usl","workload":"fixed-time","t1_seconds":1,"params":[{"name":"sigma","value":0.1}]}`)); err == nil {
		t.Error("parameter arity mismatch should error")
	}
	if _, _, _, err := LoadScalingModel(strings.NewReader(`{"schema":2,"model":"usl","workload":"fixed-time","t1_seconds":1,"params":[{"name":"sigma","value":0.1},{"name":"wrong","value":0}]}`)); err == nil {
		t.Error("parameter name mismatch should error")
	}
	if _, _, _, err := LoadScalingModel(strings.NewReader(`{"schema":2,"model":"usl","workload":"fixed-time","t1_seconds":0,"params":[{"name":"sigma","value":0.1},{"name":"kappa","value":0}]}`)); err == nil {
		t.Error("corrupt t1 should error")
	}
}

func TestSaveLoadEstimatesErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveEstimates(&buf, Estimates{}, 0, 1); err == nil {
		t.Error("invalid tp1 should error")
	}
	if _, _, err := LoadEstimates(strings.NewReader("{")); err == nil {
		t.Error("malformed JSON should error")
	}
	if _, _, err := LoadEstimates(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("unknown version should error")
	}
	if _, _, err := LoadEstimates(strings.NewReader(`{"version":1,"tp1_seconds":0}`)); err == nil {
		t.Error("corrupt baselines should error")
	}
	if _, _, err := LoadEstimates(strings.NewReader(`{"version":1,"tp1_seconds":1,"estimates":{"Eta":7}}`)); err == nil {
		t.Error("corrupt η should error")
	}
}
