package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadEstimatesRoundTrip(t *testing.T) {
	m := sortLikeMeasurements([]float64{1, 2, 4, 8, 16})
	est, err := Estimate(m)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveEstimates(&buf, est, 18.8, 12.85); err != nil {
		t.Fatal(err)
	}
	loadedEst, pred, err := LoadEstimates(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(loadedEst.Eta, est.Eta, 1e-12) {
		t.Errorf("η round-trip: %g vs %g", loadedEst.Eta, est.Eta)
	}
	if !almostEqual(loadedEst.INFit.Slope, est.INFit.Slope, 1e-12) {
		t.Errorf("IN slope round-trip: %g vs %g", loadedEst.INFit.Slope, est.INFit.Slope)
	}
	// The rebuilt predictor matches a freshly built one.
	fresh, err := NewPredictor(est, 18.8, 12.85)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []float64{10, 100, 200} {
		a, err := pred.Speedup(n)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fresh.Speedup(n)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(a, b, 1e-12) {
			t.Errorf("n=%g: loaded %g vs fresh %g", n, a, b)
		}
	}
}

func TestSaveLoadEstimatesWithStep(t *testing.T) {
	// TeraSort-like fit with a breakpoint: the piecewise segment must
	// survive serialization.
	var m Measurements
	for n := 1.0; n <= 40; n++ {
		m.N = append(m.N, n)
		m.Wp = append(m.Wp, 10.7*n)
		in := 0.17*n + 0.83
		if n > 15 {
			in = 0.25*n - 0.37
		}
		m.Ws = append(m.Ws, 24.4*in)
	}
	est, err := Estimate(m)
	if err != nil {
		t.Fatal(err)
	}
	if est.INStep == nil {
		t.Fatal("fixture lost its step")
	}
	var buf bytes.Buffer
	if err := SaveEstimates(&buf, est, 10.7, 24.4); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := LoadEstimates(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.INStep == nil {
		t.Fatal("step fit lost in round-trip")
	}
	if !almostEqual(loaded.INStep.Break, est.INStep.Break, 1e-12) {
		t.Errorf("break round-trip: %g vs %g", loaded.INStep.Break, est.INStep.Break)
	}
}

func TestSaveLoadEstimatesErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveEstimates(&buf, Estimates{}, 0, 1); err == nil {
		t.Error("invalid tp1 should error")
	}
	if _, _, err := LoadEstimates(strings.NewReader("{")); err == nil {
		t.Error("malformed JSON should error")
	}
	if _, _, err := LoadEstimates(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("unknown version should error")
	}
	if _, _, err := LoadEstimates(strings.NewReader(`{"version":1,"tp1_seconds":0}`)); err == nil {
		t.Error("corrupt baselines should error")
	}
	if _, _, err := LoadEstimates(strings.NewReader(`{"version":1,"tp1_seconds":1,"estimates":{"Eta":7}}`)); err == nil {
		t.Error("corrupt η should error")
	}
}
