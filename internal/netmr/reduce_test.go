package netmr

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// startReduceCluster boots a master with the given config and n current
// (fully capable) workers, returning the master and its address.
func startReduceCluster(t *testing.T, cfg MasterConfig, n int) (*Master, string) {
	t.Helper()
	master, err := NewMaster(mustRegistry(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(master.Close)
	for i := 0; i < n; i++ {
		w, err := NewWorker(mustRegistry(t))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Start(addr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Stop)
	}
	if n > 0 {
		if err := master.WaitForWorkers(n, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	return master, addr
}

// TestInterStoreSliceRejectsRogue pins the serving side's input
// validation: a mismatched run, an out-of-range partition, and an
// unknown map task must all error (never panic), while an empty-but-held
// task answers with a nil partial that still acknowledges the task.
func TestInterStoreSliceRejectsRogue(t *testing.T) {
	s := newInterStore()
	s.setReducers(2)
	s.put("wc#1", 0, []partitionPartial{
		{ID: 0, Partial: map[string]float64{"a": 1}},
		{ID: 1, Partial: map[string]float64{"b": 2}},
	}, 2)
	s.put("wc#1", 3, []partitionPartial{{ID: 1, Partial: map[string]float64{"c": 3}}}, 2)

	if _, err := s.slice("other#9", 0, []int{0}); err == nil {
		t.Error("foreign run id accepted")
	}
	if _, err := s.slice("", 0, []int{0}); err == nil {
		t.Error("empty run id accepted")
	}
	for _, p := range []int{-1, 2, 99} {
		if _, err := s.slice("wc#1", p, []int{0}); err == nil {
			t.Errorf("out-of-range partition %d accepted", p)
		}
	}
	if _, err := s.slice("wc#1", 0, []int{7}); err == nil {
		t.Error("unknown map task accepted")
	}
	// Task 3 emitted nothing into partition 0: held, so acknowledged with
	// a nil partial rather than refused.
	got, err := s.slice("wc#1", 0, []int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []partitionPartial{
		{ID: 0, Partial: map[string]float64{"a": 1}},
		{ID: 3, Partial: nil},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("slice = %+v, want %+v", got, want)
	}
	// A new run evicts the old one.
	s.put("wc#2", 0, []partitionPartial{{ID: 0, Partial: map[string]float64{"z": 1}}}, 2)
	if _, err := s.slice("wc#1", 0, []int{0}); err == nil {
		t.Error("evicted run still served")
	}
	if _, err := s.slice("wc#2", 0, []int{3}); err == nil {
		t.Error("evicted task still acknowledged")
	}
}

// TestDistributedReduce is the tentpole e2e: with 4 workers and reduce
// enabled, every map output stays worker-side, the R partitions are
// folded by workers (the master executes no per-key fold — its merge is
// only the union of R disjoint key spaces), intermediate bytes flow
// worker→worker, and the JobTrace attributes the reduce wall to
// distributed rtask launches.
func TestDistributedReduce(t *testing.T) {
	const workers, shards, R = 4, 8, 4
	master, _ := startReduceCluster(t, MasterConfig{
		TaskTimeout: 10 * time.Second, JobTimeout: 30 * time.Second,
		Reducers: R, Trace: true,
	}, workers)

	lines := testLines(t, 600)
	got, stats, err := master.Run(context.Background(), "wordcount", lines, shards)
	if err != nil {
		t.Fatal(err)
	}
	want := runShard(wordCountJob(), lines, newShardScratch())
	if !reflect.DeepEqual(got, want) {
		t.Fatal("distributed-reduce result diverged from reference")
	}

	if stats.Reducers != R {
		t.Errorf("Reducers = %d, want %d", stats.Reducers, R)
	}
	if stats.ReduceTasks != R {
		t.Errorf("ReduceTasks = %d, want %d", stats.ReduceTasks, R)
	}
	// All-capable cluster: every winning map output persisted worker-side,
	// so the master never held a single intermediate key.
	if stats.MapOutputsStored != shards {
		t.Errorf("MapOutputsStored = %d, want %d", stats.MapOutputsStored, shards)
	}
	if stats.MapOutputsRelayed != 0 {
		t.Errorf("MapOutputsRelayed = %d, want 0", stats.MapOutputsRelayed)
	}
	if stats.ShuffleBytes <= 0 {
		t.Errorf("ShuffleBytes = %d, want > 0 (reducers must fetch from peers)", stats.ShuffleBytes)
	}
	if stats.ReduceWall <= 0 {
		t.Errorf("ReduceWall = %v, want > 0", stats.ReduceWall)
	}

	trc := master.LastTrace()
	if trc == nil {
		t.Fatal("traced run produced no trace")
	}
	var rtaskOK, reducePhases int
	for _, sp := range trc.Spans() {
		if sp.Phase == "rtask" && sp.Outcome == outcomeOK {
			rtaskOK++
		}
		if sp.Launch < 0 && sp.Phase == "reduce" {
			reducePhases++
		}
	}
	if rtaskOK != R {
		t.Errorf("winning rtask launches = %d, want %d", rtaskOK, R)
	}
	if reducePhases != 1 {
		t.Errorf("master-level reduce phases = %d, want 1", reducePhases)
	}
	b := trc.Breakdown(stats)
	if b.Reduce <= 0 || b.MaxReduce <= 0 {
		t.Errorf("breakdown attributes no worker-side fold: Reduce=%g MaxReduce=%g", b.Reduce, b.MaxReduce)
	}
	// The headline invariant: MaxTask + MaxReduce + Ws + Wo = TotalWall
	// (Wo is clamped at zero, so allow that degenerate case).
	if sum := b.MaxTask + b.MaxReduce + b.Ws + b.Wo; b.Wo > 0 && math.Abs(sum-b.TotalWall) > 1e-6 {
		t.Errorf("MaxTask+MaxReduce+Ws+Wo = %g, want TotalWall %g", sum, b.TotalWall)
	}
}

// TestReduceMatchesReferenceAcrossConfigs: the reducer count is a pure
// performance knob — serial merge, engine merge and distributed reduce
// at several R must produce byte-identical results, for both the Combine
// and the group-then-Reduce fold paths.
func TestReduceMatchesReferenceAcrossConfigs(t *testing.T) {
	lines := testLines(t, 400)
	want := runShard(wordCountJob(), lines, newShardScratch())

	for _, r := range []int{1, 2, 4, 8} {
		master, _ := startReduceCluster(t, MasterConfig{
			TaskTimeout: 10 * time.Second, JobTimeout: 30 * time.Second, Reducers: r,
		}, 3)
		got, stats, err := master.Run(context.Background(), "wordcount", lines, 6)
		if err != nil {
			t.Fatalf("R=%d: %v", r, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("R=%d: result diverged from reference", r)
		}
		if stats.ReduceTasks != r {
			t.Errorf("R=%d: ReduceTasks = %d", r, stats.ReduceTasks)
		}
	}
}

// TestMixedClusterReduce runs reduce-capable, legacy-JSON and
// reduce-less binary workers side by side: persisted and relayed map
// outputs must merge into exactly the reference result.
func TestMixedClusterReduce(t *testing.T) {
	master, err := NewMaster(mustRegistry(t), MasterConfig{
		TaskTimeout: 10 * time.Second, JobTimeout: 30 * time.Second, Reducers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(master.Close)

	// Two current workers, one protocol-v1 JSON worker, one binary worker
	// that predates the reduce capability.
	for i := 0; i < 2; i++ {
		w, err := NewWorker(mustRegistry(t))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Start(addr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Stop)
	}
	legacyJSONWorker(t, addr, wordCountJob())
	old, err := NewWorker(mustRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	old.caps = []string{capBinary, capBinaryExt, capBatch, capPartition}
	if err := old.Start(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(old.Stop)
	if err := master.WaitForWorkers(4, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	lines := testLines(t, 500)
	got, stats, err := master.Run(context.Background(), "wordcount", lines, 12)
	if err != nil {
		t.Fatal(err)
	}
	want := runShard(wordCountJob(), lines, newShardScratch())
	if !reflect.DeepEqual(got, want) {
		t.Fatal("mixed-cluster reduce result diverged from reference")
	}
	if stats.MapOutputsStored == 0 {
		t.Error("no map output persisted worker-side despite reduce-capable workers")
	}
	if stats.MapOutputsRelayed == 0 {
		t.Error("no map output relayed despite v1/non-reduce workers in the pool")
	}
	if stats.ReduceTasks != 4 {
		t.Errorf("ReduceTasks = %d, want 4", stats.ReduceTasks)
	}
}

// TestReduceFallbackWithoutCapableWorkers: Reducers set but no worker
// offering the capability must fall back to the master-side merge
// transparently — correct output, zero reduce accounting.
func TestReduceFallbackWithoutCapableWorkers(t *testing.T) {
	master, err := NewMaster(mustRegistry(t), MasterConfig{
		TaskTimeout: 10 * time.Second, JobTimeout: 30 * time.Second, Reducers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(master.Close)
	for i := 0; i < 2; i++ {
		w, err := NewWorker(mustRegistry(t))
		if err != nil {
			t.Fatal(err)
		}
		w.caps = []string{capBinary, capBinaryExt, capBatch, capPartition}
		if err := w.Start(addr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Stop)
	}
	if err := master.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	lines := testLines(t, 300)
	got, stats, err := master.Run(context.Background(), "wordcount", lines, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := runShard(wordCountJob(), lines, newShardScratch())
	if !reflect.DeepEqual(got, want) {
		t.Fatal("fallback result diverged from reference")
	}
	if stats.Reducers != 0 || stats.ReduceTasks != 0 || stats.MapOutputsStored != 0 || stats.ShuffleBytes != 0 {
		t.Errorf("fallback run carries reduce accounting: %+v", stats)
	}
}

// TestRogueFetchRejected is the rogue-worker regression for the shuffle
// path: out-of-range partition ids, foreign run ids and unknown tasks
// sent to a worker's fetch listener must be answered with error frames —
// without panicking the serving worker or poisoning its connection for
// subsequent valid fetches.
func TestRogueFetchRejected(t *testing.T) {
	w, err := NewWorker(mustRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := w.startFetchListener()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	w.store.setReducers(2)
	w.store.put("wc#1", 0, []partitionPartial{
		{ID: 0, Partial: map[string]float64{"a": 1}},
		{ID: 1, Partial: map[string]float64{"b": 2}},
	}, 2)

	if _, _, _, err := fetchPartition(addr, "wc#1", 99, []int{0}, defaultShuffleTimeout, false); err == nil {
		t.Error("out-of-range partition id served")
	}
	if _, _, _, err := fetchPartition(addr, "evil#7", 0, []int{0}, defaultShuffleTimeout, false); err == nil {
		t.Error("foreign job's run id served")
	}
	if _, _, _, err := fetchPartition(addr, "wc#1", 0, []int{5}, defaultShuffleTimeout, false); err == nil {
		t.Error("unknown map task served")
	}

	// One connection, rogue frames first, then a valid fetch: the server
	// must keep serving rather than hang up on the first bad request.
	raw, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c := newConn(raw)
	c.binary, c.binExt, c.red = true, true, true
	defer func() { _ = c.close() }()
	if err := c.send(message{Type: "ping"}, defaultShuffleTimeout); err != nil {
		t.Fatal(err)
	}
	if reply, err := c.recv(defaultShuffleTimeout); err != nil || reply.Type != "error" {
		t.Fatalf("non-fetch frame got (%+v, %v), want an error frame", reply, err)
	}
	if err := c.send(message{Type: "fetch", Run: "wc#1", TaskID: -1, Tasks: []int{0}}, defaultShuffleTimeout); err != nil {
		t.Fatal(err)
	}
	if reply, err := c.recv(defaultShuffleTimeout); err != nil || reply.Type != "error" {
		t.Fatalf("negative partition got (%+v, %v), want an error frame", reply, err)
	}
	if err := c.send(message{Type: "fetch", Run: "wc#1", TaskID: 1, Tasks: []int{0}}, defaultShuffleTimeout); err != nil {
		t.Fatal(err)
	}
	reply, err := c.recv(defaultShuffleTimeout)
	if err != nil || reply.Type != "fetchresult" {
		t.Fatalf("valid fetch after rogues got (%+v, %v), want fetchresult", reply, err)
	}
	want := []partitionPartial{{ID: 0, Partial: map[string]float64{"b": 2}}}
	if !reflect.DeepEqual(reply.Parts, want) {
		t.Fatalf("fetchresult parts = %+v, want %+v", reply.Parts, want)
	}
}

// reduceRogueJSONWorker joins as a reduce-capable JSON worker that
// answers map tasks honestly (flat results) but every reduce task with
// an error frame — the misbehaving-reducer shape the master must answer
// with an eviction and a reassignment, never a hang or a panic.
func reduceRogueJSONWorker(t *testing.T, addr string, job Job) {
	t.Helper()
	raw, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = raw.Close() })
	enc := json.NewEncoder(raw)
	dec := json.NewDecoder(bufio.NewReader(raw))
	if err := enc.Encode(map[string]any{
		"type": "hello", "id": "rogue-reducer", "jobs": []string{job.Name},
		"caps": []string{capReduce}, "fetch": "127.0.0.1:1",
	}); err != nil {
		t.Fatal(err)
	}
	go func() {
		sc := newShardScratch()
		for {
			var m message
			if err := dec.Decode(&m); err != nil {
				return
			}
			switch m.Type {
			case "task":
				partial := runShard(job, m.Records, sc)
				if err := enc.Encode(map[string]any{
					"type": "result", "task_id": m.TaskID, "attempt": m.Attempt, "partial": partial,
				}); err != nil {
					return
				}
			case "reducetask":
				if err := enc.Encode(map[string]any{
					"type": "error", "task_id": m.TaskID, "message": "rogue: reduce refused",
				}); err != nil {
					return
				}
			case "ping":
				if err := enc.Encode(map[string]any{"type": "pong"}); err != nil {
					return
				}
			}
		}
	}()
}

// TestRogueReduceErrorReassigned: a reducer answering its reduce task
// with an error frame is dropped and the partition retried on an honest
// worker; the job completes with the reference result.
func TestRogueReduceErrorReassigned(t *testing.T) {
	master, addr := startReduceCluster(t, MasterConfig{
		TaskTimeout: 5 * time.Second, JobTimeout: 30 * time.Second, Reducers: 4,
	}, 2)
	reduceRogueJSONWorker(t, addr, wordCountJob())
	if err := master.WaitForWorkers(3, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	lines := testLines(t, 300)
	got, stats, err := master.Run(context.Background(), "wordcount", lines, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := runShard(wordCountJob(), lines, newShardScratch())
	if !reflect.DeepEqual(got, want) {
		t.Fatal("result diverged from reference after rogue reducer eviction")
	}
	if stats.ReduceTasks != 4 {
		t.Errorf("ReduceTasks = %d, want 4", stats.ReduceTasks)
	}
	if stats.Reassignments == 0 {
		t.Error("rogue reducer's error frame caused no reassignment")
	}
}

// TestCompatMatrix is the mixed-version compatibility gate CI pins: one
// worker of every protocol generation — v1 JSON, bin, bin2, trace,
// reduce, comp, early — paired with a current worker under a master
// that has every feature enabled (including early shuffle, so morelocs
// streaming runs against every older generation), each run compared
// against the single-shard reference.
func TestCompatMatrix(t *testing.T) {
	gens := []struct {
		name string
		caps []string // nil: protocol-v1 JSON worker
	}{
		{"v1-json", nil},
		{"bin", []string{capBinary}},
		{"bin2", []string{capBinary, capBinaryExt, capBatch, capPartition}},
		{"trace", []string{capBinary, capBinaryExt, capBatch, capPartition, capTrace}},
		{"reduce", []string{capBinary, capBinaryExt, capBatch, capPartition, capTrace, capReduce}},
		{"comp", []string{capBinary, capBinaryExt, capBatch, capPartition, capTrace, capReduce, capComp}},
		{"early", workerCaps()},
	}
	lines := testLines(t, 400)
	want := runShard(wordCountJob(), lines, newShardScratch())
	for _, g := range gens {
		t.Run(g.name, func(t *testing.T) {
			master, addr := startReduceCluster(t, MasterConfig{
				TaskTimeout: 10 * time.Second, JobTimeout: 30 * time.Second,
				Reducers: 3, Trace: true, MaxTaskBatch: 2, EarlyShuffle: true,
			}, 1)
			if g.caps == nil {
				legacyJSONWorker(t, addr, wordCountJob())
			} else {
				w, err := NewWorker(mustRegistry(t))
				if err != nil {
					t.Fatal(err)
				}
				w.caps = g.caps
				if err := w.Start(addr); err != nil {
					t.Fatal(err)
				}
				t.Cleanup(w.Stop)
			}
			if err := master.WaitForWorkers(2, 5*time.Second); err != nil {
				t.Fatal(err)
			}
			got, stats, err := master.Run(context.Background(), "wordcount", lines, 8)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s + current cluster diverged from reference", g.name)
			}
			// The current worker always negotiates reduce, so every one of
			// these mixed runs must have taken the distributed-reduce path.
			if stats.ReduceTasks != 3 {
				t.Errorf("ReduceTasks = %d, want 3", stats.ReduceTasks)
			}
			if trc := master.LastTrace(); trc == nil || trc.OpenLaunches() != 0 {
				t.Errorf("trace missing or left launches open")
			}
		})
	}
}

// reduceFrameSeeds are the reduce/fetch wire shapes the focused fuzzer
// and the committed corpus start from.
func reduceFrameSeeds() []message {
	return []message{
		{Type: "reducetask", Job: "wc", TaskID: 1, Attempt: 0, Run: "wc#1",
			Locs: []fetchLoc{
				{Addr: "127.0.0.1:7001", Tasks: []int{0, 2}},
				{Addr: "127.0.0.1:7002", Tasks: []int{1}},
			},
			Parts: []partitionPartial{{ID: 3, Partial: map[string]float64{"relayed": 1}}}},
		{Type: "reducetask", Job: "", TaskID: -1, Run: "", Locs: []fetchLoc{{Addr: "", Tasks: nil}}},
		{Type: "fetch", Run: "wc#1", TaskID: 0, Tasks: []int{0, 1, 2}},
		{Type: "fetch", Run: "", TaskID: -9, Tasks: nil},
		{Type: "fetchresult", TaskID: 0, Parts: []partitionPartial{
			{ID: 0, Partial: map[string]float64{"a": 1.5}},
			{ID: 2, Partial: nil},
		}},
		{Type: "mapdone", TaskID: 2, Attempt: 1, Run: "wc#1"},
		{Type: "result", TaskID: 1, Attempt: 2, Partial: map[string]float64{"folded": 9}, Bytes: 1 << 40},
		{Type: "morelocs", Run: "wc#1", TaskID: 2, Locs: []fetchLoc{{Addr: "127.0.0.1:7001", Tasks: []int{4}}}},
		{Type: "morelocs", Run: "wc#1", TaskID: 0, Message: "abort"},
	}
}

// FuzzDecodeReduceFrame focuses the codec fuzzer on the reduce layout
// block (Run/Reducers/Fetch/Bytes/Tasks/Locs): arbitrary bodies must
// decode or error under every red-carrying layout, never panic, and a
// body that decodes must re-encode and round-trip to the same message.
func FuzzDecodeReduceFrame(f *testing.F) {
	for _, m := range reduceFrameSeeds() {
		frame, _, err := appendFrame(nil, &m, nil, true, false, true, false, false)
		if err != nil {
			f.Fatal(err)
		}
		body := frameBody(f, frame)
		f.Add(body)
		f.Add(body[:len(body)*2/3])
		mut := append([]byte(nil), body...)
		if len(mut) > 4 {
			mut[4] ^= 0x40
		}
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		for _, layout := range []struct{ trc bool }{{false}, {true}} {
			var m message
			if err := decodeFrame(body, &m, true, layout.trc, true, false, false); err != nil {
				continue
			}
			for _, loc := range m.Locs {
				if len(loc.Addr) > len(body) {
					t.Fatalf("loc addr of %d bytes from a %d-byte body", len(loc.Addr), len(body))
				}
			}
			if len(m.Tasks) > len(body) {
				t.Fatalf("%d task ids from a %d-byte body", len(m.Tasks), len(body))
			}
			if _, ok := frameTypes[m.Type]; !ok {
				continue // unknown type placeholder, ignore-path
			}
			frame, _, err := appendFrame(nil, &m, nil, true, layout.trc, true, false, false)
			if err != nil {
				t.Fatalf("decoded frame failed to re-encode: %v", err)
			}
			var again message
			if err := decodeFrame(frameBody(t, frame), &again, true, layout.trc, true, false, false); err != nil {
				t.Fatalf("re-encoded frame failed to decode: %v", err)
			}
			if !reflect.DeepEqual(normalize(stripSpans(again)), normalize(stripSpans(m))) {
				t.Fatalf("reduce frame round trip lossy:\n in: %+v\nout: %+v", m, again)
			}
		}
	})
}

// TestWriteFuzzCorpus regenerates the committed seed corpus under
// testdata/fuzz when NETMR_WRITE_FUZZ_CORPUS is set. The files use the
// native Go fuzzing corpus format so `go test -fuzz` and the CI fuzz
// bursts pick them up without any -fuzztime spent rediscovering the
// valid frame shapes.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("NETMR_WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set NETMR_WRITE_FUZZ_CORPUS=1 to regenerate testdata/fuzz")
	}
	encode := func(m message, ext, trc, red, cmp, erl bool) []byte {
		frame, _, err := appendFrame(nil, &m, nil, ext, trc, red, cmp, erl)
		if err != nil {
			t.Fatalf("encode %+v: %v", m, err)
		}
		return frameBody(t, frame)
	}
	mutate := func(b []byte) []byte {
		mut := append([]byte(nil), b...)
		if len(mut) > 4 {
			mut[4] ^= 0x40
		}
		return mut
	}
	corpora := map[string][][]byte{}
	add := func(fuzzName string, bodies ...[]byte) {
		corpora[fuzzName] = append(corpora[fuzzName], bodies...)
	}
	for _, m := range codecMessages() {
		body := encode(m, true, true, true, false, true)
		add("FuzzDecodeFrame", body, body[:len(body)/2], mutate(body))
	}
	for _, m := range reduceFrameSeeds() {
		body := encode(m, true, false, true, false, false)
		add("FuzzDecodeReduceFrame", body, body[:len(body)*2/3], mutate(body))
	}
	for _, m := range codecMessages() {
		if m.Type != "presult" || m.Trace != "" || len(m.Spans) > 0 {
			continue
		}
		body := encode(m, true, false, false, false, false)
		add("FuzzDecodePartitionedResult", body, mutate(body))
	}
	for _, m := range codecMessages() {
		if m.Trace == "" && len(m.Spans) == 0 {
			continue
		}
		body := encode(m, true, true, false, false, false)
		add("FuzzDecodeSpanSummary", body, mutate(body))
	}
	for _, m := range compFrameSeeds() {
		body := encode(m, true, true, true, true, true)
		add("FuzzDecodeCompressedFrame", body, body[:len(body)/2], mutate(body))
	}
	for fuzzName, bodies := range corpora {
		dir := filepath.Join("testdata", "fuzz", fuzzName)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, b := range bodies {
			content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", b)
			name := filepath.Join(dir, fmt.Sprintf("seed-%03d", i))
			if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}
