package netmr

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
	"sync"
)

// Wire protocol v2: a length-prefixed binary framing that replaces the
// line-delimited JSON of v1 on connections that negotiate it (the worker
// advertises the "bin" capability in its JSON hello, the master answers
// with a JSON helloack naming the accepted capabilities, and both sides
// switch). One frame is
//
//	uvarint(len(body)) || body
//	body = type byte || fields... || crc32c(body[:len(body)-4]) (4 B LE)
//
// Every field of message is encoded in a fixed order (strings as uvarint
// length + bytes, ints as varints, Partial as sorted key/IEEE-754 pairs)
// so any frame round-trips exactly and unknown type bytes still decode —
// the binary analogue of v1's "ignore unknown frames" forward
// compatibility. The trailing CRC-32C keeps single-bit wire corruption
// detectable, which JSON got for free from parse errors.
//
// The layout itself is versioned by capability: the base "bin" layout
// ends after Batch, only peers that both negotiated "bin2" append the
// Partitions/Parts fields, peers that further negotiated "trace" append
// the Trace/Spans fields after those, peers that negotiated "reduce"
// append the Run/Reducers/Fetch/Bytes/Tasks/Locs fields, peers that
// negotiated "comp" append the Rep/…/ShuffleMs fields, and peers that
// negotiated "early" append the Total/Reps/Failovers fields last.
// Appending any block unconditionally would make every frame
// undecodable ("trailing bytes") to a peer running a previous binary
// codec, breaking rolling upgrades of mixed-version clusters — the
// ext/trc/red/cmp/erl flags on appendFrame/decodeFrame are that
// negotiation, one consistent tuple of values per connection. The trc,
// red, cmp and erl blocks are granted only alongside ext but
// independently of each other, so the layouts on the wire are base,
// base+ext and any combination of the trc/red/cmp/erl suffixes on top —
// both sides derive the same tuple from the same negotiated capability
// set.
//
// The "comp" capability additionally wraps every body of the
// connection in a one-byte flag layer:
//
//	0x00 || body                                  (stored)
//	0x01 || uvarint(len(body)) || lzCompress(body) (compressed)
//
// The CRC is computed over the raw body before compression, so the
// checksum still guards the decompressed payload end to end. Only
// bulk payload frames (result/presult/fetchresult/replicate) at or
// above lzCompressThreshold are candidates, and only when the
// compressed form is actually smaller.
const maxFrameBytes = 1 << 26 // 64 MiB hard cap: larger prefixes are corruption

// lzCompressThreshold is the smallest body worth attempting to
// compress; tiny control frames cost more in flag/length overhead than
// they save.
const lzCompressThreshold = 4096

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameTypes maps message type strings to their wire bytes. 0 is
// reserved so a zeroed buffer never looks like a valid frame.
var frameTypes = map[string]byte{
	"hello":       1,
	"helloack":    2,
	"task":        3,
	"result":      4,
	"error":       5,
	"ping":        6,
	"pong":        7,
	"taskbatch":   8,
	"presult":     9,
	"reducetask":  10,
	"fetch":       11,
	"fetchresult": 12,
	"mapdone":     13,
	"replicate":   14,
	"replicack":   15,
	"morelocs":    16,
}

// compressibleFrames names the bulk payload frame types the comp layer
// may compress; control frames always travel stored.
var compressibleFrames = map[string]bool{
	"result":      true,
	"presult":     true,
	"fetchresult": true,
	"replicate":   true,
}

var frameNames = func() map[byte]string {
	m := make(map[byte]string, len(frameTypes))
	for name, b := range frameTypes {
		m[b] = name
	}
	return m
}()

// encBufPool recycles frame encode buffers across connections: sends are
// sequential per conn, so the pool keeps at most one warm buffer per P.
var encBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendStrings(b []byte, ss []string) []byte {
	b = binary.AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = appendString(b, s)
	}
	return b
}

// appendFrame appends the complete wire frame for m to dst. keys is a
// reusable scratch slice for sorting Partial (may be nil); the grown
// scratch is returned for reuse. ext selects the bin2 layout (trailing
// Partitions/Parts fields), trc the trace layout (trailing Trace/Spans
// fields after those), red the reduce layout (trailing
// Run/Reducers/Fetch/Bytes/Tasks/Locs fields), cmp the comp layout
// (trailing Rep/Spills/Spilled/CompBytes/ShuffleMs fields, plus the
// one-byte compression flag layer around the whole body), and erl the
// early layout (trailing Total/Reps/Failovers fields last); an older
// layout cannot carry the newer fields, so rather than silently
// dropping them the encode fails.
func appendFrame(dst []byte, m *message, keys []string, ext, trc, red, cmp, erl bool) ([]byte, []string, error) {
	tb, ok := frameTypes[m.Type]
	if !ok {
		return dst, keys, fmt.Errorf("netmr: unencodable frame type %q", m.Type)
	}
	if !ext && (m.Partitions != 0 || len(m.Parts) > 0) {
		return dst, keys, fmt.Errorf("netmr: frame %q carries partition fields but the peer did not negotiate %q", m.Type, capBinaryExt)
	}
	if !trc && (m.Trace != "" || len(m.Spans) > 0) {
		return dst, keys, fmt.Errorf("netmr: frame %q carries trace fields but the peer did not negotiate %q", m.Type, capTrace)
	}
	if !red && (m.Run != "" || m.Reducers != 0 || m.Fetch != "" || m.Bytes != 0 || len(m.Tasks) > 0 || len(m.Locs) > 0) {
		return dst, keys, fmt.Errorf("netmr: frame %q carries reduce fields but the peer did not negotiate %q", m.Type, capReduce)
	}
	if !cmp && (m.Rep != "" || len(m.CompAddrs) > 0 || m.Spills != 0 || m.Spilled != 0 || m.CompBytes != 0 || m.ShuffleMs != 0) {
		return dst, keys, fmt.Errorf("netmr: frame %q carries comp fields but the peer did not negotiate %q", m.Type, capComp)
	}
	if !erl && (m.Total != 0 || len(m.Reps) > 0 || m.Failovers != 0) {
		return dst, keys, fmt.Errorf("netmr: frame %q carries early fields but the peer did not negotiate %q", m.Type, capEarly)
	}
	// Reserve room for the length prefix after the body is built; encode
	// the body at the end of dst and splice the prefix in front.
	bodyStart := len(dst)
	b := append(dst, tb)
	b = appendString(b, m.ID)
	b = appendString(b, m.Job)
	b = binary.AppendVarint(b, int64(m.TaskID))
	b = binary.AppendVarint(b, int64(m.Attempt))
	b = appendStrings(b, m.Records)
	b = binary.AppendUvarint(b, uint64(len(m.Partial)))
	if len(m.Partial) > 0 {
		keys = keys[:0]
		for k := range m.Partial {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b = appendString(b, k)
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.Partial[k]))
		}
	}
	b = appendStrings(b, m.Jobs)
	b = appendString(b, m.Message)
	b = appendStrings(b, m.Caps)
	b = binary.AppendUvarint(b, uint64(len(m.Batch)))
	for _, spec := range m.Batch {
		b = appendString(b, spec.Job)
		b = binary.AppendVarint(b, int64(spec.TaskID))
		b = binary.AppendVarint(b, int64(spec.Attempt))
		b = appendStrings(b, spec.Records)
	}
	if ext {
		b = binary.AppendVarint(b, int64(m.Partitions))
		b = binary.AppendUvarint(b, uint64(len(m.Parts)))
		for _, part := range m.Parts {
			b = binary.AppendVarint(b, int64(part.ID))
			b = binary.AppendUvarint(b, uint64(len(part.Partial)))
			keys = keys[:0]
			for k := range part.Partial {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				b = appendString(b, k)
				b = binary.LittleEndian.AppendUint64(b, math.Float64bits(part.Partial[k]))
			}
		}
	}
	if trc {
		b = appendString(b, m.Trace)
		b = binary.AppendUvarint(b, uint64(len(m.Spans)))
		for _, s := range m.Spans {
			b = appendString(b, s.Phase)
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.Start))
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.End))
		}
	}
	if red {
		b = appendString(b, m.Run)
		b = binary.AppendVarint(b, int64(m.Reducers))
		b = appendString(b, m.Fetch)
		b = binary.AppendVarint(b, m.Bytes)
		b = binary.AppendUvarint(b, uint64(len(m.Tasks)))
		for _, t := range m.Tasks {
			b = binary.AppendVarint(b, int64(t))
		}
		b = binary.AppendUvarint(b, uint64(len(m.Locs)))
		for _, loc := range m.Locs {
			b = appendString(b, loc.Addr)
			b = binary.AppendUvarint(b, uint64(len(loc.Tasks)))
			for _, t := range loc.Tasks {
				b = binary.AppendVarint(b, int64(t))
			}
		}
	}
	if cmp {
		b = appendString(b, m.Rep)
		b = appendStrings(b, m.CompAddrs)
		b = binary.AppendVarint(b, int64(m.Spills))
		b = binary.AppendVarint(b, m.Spilled)
		b = binary.AppendVarint(b, m.CompBytes)
		b = binary.AppendVarint(b, m.ShuffleMs)
	}
	if erl {
		b = binary.AppendVarint(b, int64(m.Total))
		b = binary.AppendUvarint(b, uint64(len(m.Reps)))
		for _, rep := range m.Reps {
			b = appendString(b, rep.Addr)
			b = binary.AppendUvarint(b, uint64(len(rep.Tasks)))
			for _, t := range rep.Tasks {
				b = binary.AppendVarint(b, int64(t))
			}
		}
		b = binary.AppendVarint(b, int64(m.Failovers))
	}
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(b[bodyStart:], crcTable))
	if cmp {
		b = wrapCompressed(b, bodyStart, m.Type)
	}

	bodyLen := len(b) - bodyStart
	if bodyLen > maxFrameBytes {
		return dst, keys, fmt.Errorf("netmr: frame of %d bytes exceeds the %d limit", bodyLen, maxFrameBytes)
	}
	var prefix [binary.MaxVarintLen64]byte
	pn := binary.PutUvarint(prefix[:], uint64(bodyLen))
	b = append(b, prefix[:pn]...)                          // grow by prefix length
	copy(b[bodyStart+pn:], b[bodyStart:bodyStart+bodyLen]) // shift body right
	copy(b[bodyStart:], prefix[:pn])
	return b, keys, nil
}

// lzBufPool recycles compression scratch buffers across sends.
var lzBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// wrapCompressed applies the comp flag layer to the raw checksummed
// body at b[bodyStart:]: bulk payload frames at or above
// lzCompressThreshold are LZ-compressed when that actually shrinks
// them, everything else travels stored behind the one-byte flag.
func wrapCompressed(b []byte, bodyStart int, typ string) []byte {
	raw := b[bodyStart:]
	if compressibleFrames[typ] && len(raw) >= lzCompressThreshold {
		bufp := lzBufPool.Get().(*[]byte)
		buf := (*bufp)[:0]
		buf = append(buf, 1)
		buf = binary.AppendUvarint(buf, uint64(len(raw)))
		buf = lzCompress(buf, raw)
		if len(buf) < len(raw)+1 {
			b = append(b[:bodyStart], buf...)
			*bufp = buf[:0]
			lzBufPool.Put(bufp)
			return b
		}
		*bufp = buf[:0]
		lzBufPool.Put(bufp)
	}
	b = append(b, 0)
	copy(b[bodyStart+1:], b[bodyStart:len(b)-1]) // shift body right one byte
	b[bodyStart] = 0
	return b
}

// unwrapCompressedBody strips the comp flag layer from a received frame
// body, returning the raw checksummed body that decodeFrame expects.
// scratch is the reusable decompression buffer (grown and returned for
// reuse); compressed reports whether the wire form was the compressed
// variant.
func unwrapCompressedBody(body, scratch []byte) (raw, scratchOut []byte, compressed bool, err error) {
	if len(body) == 0 {
		return nil, scratch, false, fmt.Errorf("netmr: empty comp frame body")
	}
	switch body[0] {
	case 0:
		return body[1:], scratch, false, nil
	case 1:
		rawLen, n := binary.Uvarint(body[1:])
		if n <= 0 || rawLen > maxFrameBytes {
			return nil, scratch, false, fmt.Errorf("netmr: bad compressed frame length prefix")
		}
		out, err := lzDecompress(scratch[:0], body[1+n:], int(rawLen))
		if err != nil {
			return nil, scratch, false, err
		}
		if uint64(len(out)) != rawLen {
			return nil, out, false, fmt.Errorf("netmr: compressed frame declared %d bytes but decompressed to %d", rawLen, len(out))
		}
		return out, out, true, nil
	default:
		return nil, scratch, false, fmt.Errorf("netmr: unknown compression flag %d", body[0])
	}
}

// frameReader is the cursor decodeFrame parses with. All strings are
// substrings of one string conversion of the body, so a decoded frame
// costs one allocation for its text regardless of field count.
type frameReader struct {
	s   string
	off int
}

// uvarint parses in place (binary.Uvarint would need a []byte copy).
func (r *frameReader) uvarint() (uint64, error) {
	var x uint64
	var shift uint
	for i := r.off; i < len(r.s); i++ {
		b := r.s[i]
		if b < 0x80 {
			if shift >= 63 && b > 1 {
				return 0, fmt.Errorf("netmr: uvarint overflow at byte %d", r.off)
			}
			r.off = i + 1
			return x | uint64(b)<<shift, nil
		}
		x |= uint64(b&0x7f) << shift
		shift += 7
		if shift >= 64 {
			return 0, fmt.Errorf("netmr: uvarint overflow at byte %d", r.off)
		}
	}
	return 0, fmt.Errorf("netmr: truncated uvarint at byte %d", r.off)
}

func (r *frameReader) varint() (int64, error) {
	ux, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	x := int64(ux >> 1) // zigzag decode, as encoding/binary writes them
	if ux&1 != 0 {
		x = ^x
	}
	return x, nil
}

func (r *frameReader) string() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(r.s)-r.off) {
		return "", fmt.Errorf("netmr: string of %d bytes overruns frame", n)
	}
	s := r.s[r.off : r.off+int(n)]
	r.off += int(n)
	return s, nil
}

// strings decodes a string list, appending into dst (reused between
// frames by the conn when the caller is done with the previous list).
func (r *frameReader) strings(dst []string) ([]string, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	// Each string costs at least its length byte, so a count larger than
	// the remaining bytes is corruption, not a huge allocation.
	if n > uint64(len(r.s)-r.off) {
		return nil, fmt.Errorf("netmr: string list of %d entries overruns frame", n)
	}
	if dst == nil || cap(dst) < int(n) {
		dst = make([]string, 0, n)
	} else {
		dst = dst[:0]
	}
	for i := uint64(0); i < n; i++ {
		s, err := r.string()
		if err != nil {
			return nil, err
		}
		dst = append(dst, s)
	}
	return dst, nil
}

// pairs decodes one key/IEEE-754 pair list into a fresh map (nil when
// empty) — the Partial field's wire shape, shared with every partition
// of a presult frame. Freshly allocated because results outlive the next
// recv on the master.
func (r *frameReader) pairs() (map[string]float64, error) {
	np, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if np > uint64(len(r.s)-r.off)/9 { // key length byte + 8 value bytes minimum
		return nil, fmt.Errorf("netmr: partial of %d pairs overruns frame", np)
	}
	if np == 0 {
		return nil, nil
	}
	out := make(map[string]float64, np)
	for i := uint64(0); i < np; i++ {
		k, err := r.string()
		if err != nil {
			return nil, err
		}
		if len(r.s)-r.off < 8 {
			return nil, fmt.Errorf("netmr: truncated partial value at byte %d", r.off)
		}
		out[k] = math.Float64frombits(u64at(r.s, r.off))
		r.off += 8
	}
	return out, nil
}

// ints decodes a varint list into a fresh slice (nil when empty).
func (r *frameReader) ints() ([]int, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	// Each entry costs at least one byte, so a count larger than the
	// remaining bytes is corruption, not a huge allocation.
	if n > uint64(len(r.s)-r.off) {
		return nil, fmt.Errorf("netmr: int list of %d entries overruns frame", n)
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]int, n)
	for i := range out {
		v, err := r.varint()
		if err != nil {
			return nil, err
		}
		out[i] = int(v)
	}
	return out, nil
}

// decodeFrame parses one checksummed body into m, reusing m.Records' and
// m.Batch's backing arrays when the caller passes them back in. All other
// slice/map fields are freshly allocated (results outlive the next recv
// on the master). ext selects the bin2 layout, trc the trace layout,
// red the reduce layout, cmp the comp layout and erl the early layout,
// mirroring appendFrame. On comp connections the caller unwraps the
// compression flag layer (unwrapCompressedBody) first; body here is
// always the raw checksummed form.
func decodeFrame(body []byte, m *message, ext, trc, red, cmp, erl bool) error {
	if len(body) < 5 { // type byte + CRC
		return fmt.Errorf("netmr: frame of %d bytes is too short", len(body))
	}
	payload, sum := body[:len(body)-4], binary.LittleEndian.Uint32(body[len(body)-4:])
	if got := crc32.Checksum(payload, crcTable); got != sum {
		return fmt.Errorf("netmr: frame checksum mismatch (got %08x, want %08x)", got, sum)
	}
	recs, batch := m.Records, m.Batch
	*m = message{}
	r := &frameReader{s: string(payload)}
	tb := r.s[0]
	r.off = 1
	if name, ok := frameNames[tb]; ok {
		m.Type = name
	} else {
		m.Type = fmt.Sprintf("?%d", tb) // unknown frames are ignored downstream
	}
	var err error
	if m.ID, err = r.string(); err != nil {
		return err
	}
	if m.Job, err = r.string(); err != nil {
		return err
	}
	var v int64
	if v, err = r.varint(); err != nil {
		return err
	}
	m.TaskID = int(v)
	if v, err = r.varint(); err != nil {
		return err
	}
	m.Attempt = int(v)
	if m.Records, err = r.strings(recs); err != nil {
		return err
	}
	if len(m.Records) == 0 {
		m.Records = nil
	}
	if m.Partial, err = r.pairs(); err != nil {
		return err
	}
	if m.Jobs, err = r.strings(nil); err != nil {
		return err
	}
	if len(m.Jobs) == 0 {
		m.Jobs = nil
	}
	if m.Message, err = r.string(); err != nil {
		return err
	}
	if m.Caps, err = r.strings(nil); err != nil {
		return err
	}
	if len(m.Caps) == 0 {
		m.Caps = nil
	}
	nb, err := r.uvarint()
	if err != nil {
		return err
	}
	if nb > uint64(len(r.s)-r.off) {
		return fmt.Errorf("netmr: batch of %d specs overruns frame", nb)
	}
	if nb > 0 {
		if cap(batch) < int(nb) {
			batch = make([]taskSpec, nb)
		} else {
			batch = batch[:nb]
		}
		for i := range batch {
			spec := &batch[i]
			if spec.Job, err = r.string(); err != nil {
				return err
			}
			if v, err = r.varint(); err != nil {
				return err
			}
			spec.TaskID = int(v)
			if v, err = r.varint(); err != nil {
				return err
			}
			spec.Attempt = int(v)
			if spec.Records, err = r.strings(spec.Records); err != nil {
				return err
			}
		}
		m.Batch = batch
	}
	if ext {
		if v, err = r.varint(); err != nil {
			return err
		}
		m.Partitions = int(v)
		nparts, err := r.uvarint()
		if err != nil {
			return err
		}
		// Each partition costs at least its id byte plus a pair count byte.
		if nparts > uint64(len(r.s)-r.off) {
			return fmt.Errorf("netmr: part list of %d partitions overruns frame", nparts)
		}
		if nparts > 0 {
			m.Parts = make([]partitionPartial, nparts)
			for i := range m.Parts {
				if v, err = r.varint(); err != nil {
					return err
				}
				m.Parts[i].ID = int(v)
				if m.Parts[i].Partial, err = r.pairs(); err != nil {
					return err
				}
			}
		}
	}
	if trc {
		if m.Trace, err = r.string(); err != nil {
			return err
		}
		nspans, err := r.uvarint()
		if err != nil {
			return err
		}
		// Each span costs at least its phase length byte plus 16 value
		// bytes, so a count larger than the remaining bytes / 17 is
		// corruption, not a huge allocation.
		if nspans > uint64(len(r.s)-r.off)/17 {
			return fmt.Errorf("netmr: span list of %d entries overruns frame", nspans)
		}
		if nspans > 0 {
			m.Spans = make([]spanSummary, nspans)
			for i := range m.Spans {
				if m.Spans[i].Phase, err = r.string(); err != nil {
					return err
				}
				if len(r.s)-r.off < 16 {
					return fmt.Errorf("netmr: truncated span interval at byte %d", r.off)
				}
				m.Spans[i].Start = math.Float64frombits(u64at(r.s, r.off))
				m.Spans[i].End = math.Float64frombits(u64at(r.s, r.off+8))
				r.off += 16
			}
		}
	}
	if red {
		if m.Run, err = r.string(); err != nil {
			return err
		}
		if v, err = r.varint(); err != nil {
			return err
		}
		m.Reducers = int(v)
		if m.Fetch, err = r.string(); err != nil {
			return err
		}
		if m.Bytes, err = r.varint(); err != nil {
			return err
		}
		if m.Tasks, err = r.ints(); err != nil {
			return err
		}
		nlocs, err := r.uvarint()
		if err != nil {
			return err
		}
		// Each loc costs at least its addr length byte plus a task count
		// byte.
		if nlocs > uint64(len(r.s)-r.off) {
			return fmt.Errorf("netmr: loc list of %d entries overruns frame", nlocs)
		}
		if nlocs > 0 {
			m.Locs = make([]fetchLoc, nlocs)
			for i := range m.Locs {
				if m.Locs[i].Addr, err = r.string(); err != nil {
					return err
				}
				if m.Locs[i].Tasks, err = r.ints(); err != nil {
					return err
				}
			}
		}
	}
	if cmp {
		if m.Rep, err = r.string(); err != nil {
			return err
		}
		if m.CompAddrs, err = r.strings(nil); err != nil {
			return err
		}
		if len(m.CompAddrs) == 0 {
			m.CompAddrs = nil
		}
		if v, err = r.varint(); err != nil {
			return err
		}
		m.Spills = int(v)
		if m.Spilled, err = r.varint(); err != nil {
			return err
		}
		if m.CompBytes, err = r.varint(); err != nil {
			return err
		}
		if m.ShuffleMs, err = r.varint(); err != nil {
			return err
		}
	}
	if erl {
		if v, err = r.varint(); err != nil {
			return err
		}
		m.Total = int(v)
		nreps, err := r.uvarint()
		if err != nil {
			return err
		}
		// Each rep costs at least its addr length byte plus a task count
		// byte.
		if nreps > uint64(len(r.s)-r.off) {
			return fmt.Errorf("netmr: rep list of %d entries overruns frame", nreps)
		}
		if nreps > 0 {
			m.Reps = make([]fetchLoc, nreps)
			for i := range m.Reps {
				if m.Reps[i].Addr, err = r.string(); err != nil {
					return err
				}
				if m.Reps[i].Tasks, err = r.ints(); err != nil {
					return err
				}
			}
		}
		if v, err = r.varint(); err != nil {
			return err
		}
		m.Failovers = int(v)
	}
	if r.off != len(r.s) {
		return fmt.Errorf("netmr: %d trailing bytes after frame", len(r.s)-r.off)
	}
	return nil
}

// u64at reads a little-endian uint64 from s without a []byte copy.
func u64at(s string, i int) uint64 {
	return uint64(s[i]) | uint64(s[i+1])<<8 | uint64(s[i+2])<<16 | uint64(s[i+3])<<24 |
		uint64(s[i+4])<<32 | uint64(s[i+5])<<40 | uint64(s[i+6])<<48 | uint64(s[i+7])<<56
}
