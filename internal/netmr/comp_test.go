package netmr

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"
)

// compFrameSeeds are the comp-layout wire shapes (replication, spill
// accounting, compression hints, and a payload big enough to actually
// compress) the focused fuzzer and the committed corpus start from.
func compFrameSeeds() []message {
	big := map[string]float64{}
	for i := 0; i < 600; i++ {
		big["the-quick-brown-fox-"+strings.Repeat("x", i%7)+string(rune('a'+i%26))] = float64(i)
	}
	return []message{
		{Type: "task", Job: "wc", TaskID: 3, Records: []string{"a b", "b c"},
			Run: "wc#1", Rep: "127.0.0.1:7009"},
		{Type: "mapdone", TaskID: 3, Attempt: 1, Run: "wc#1",
			Rep: "127.0.0.1:7009", Spills: 2, Spilled: 4096},
		{Type: "mapdone", TaskID: 4, Run: "wc#1",
			Parts: []partitionPartial{{ID: 0, Partial: map[string]float64{"inline": 1}}}},
		{Type: "reducetask", Job: "wc", TaskID: 1, Run: "wc#1",
			Locs:      []fetchLoc{{Addr: "127.0.0.1:7001", Tasks: []int{0, 2}}},
			CompAddrs: []string{"127.0.0.1:7001", "127.0.0.1:7002"}},
		{Type: "replicate", Run: "wc#1", TaskID: 2, Reducers: 4,
			Parts: []partitionPartial{
				{ID: 0, Partial: map[string]float64{"a": 1}},
				{ID: 3, Partial: nil},
			}},
		{Type: "replicack", TaskID: 2},
		{Type: "result", TaskID: 1, Attempt: 1, Partial: map[string]float64{"folded": 9},
			Bytes: 1 << 20, CompBytes: 512, Spills: 1, Spilled: 2048},
		{Type: "result", TaskID: 0, Partial: big},
		{Type: "helloack", Caps: workerCaps(), Partitions: 4, Reducers: 4, ShuffleMs: 15000},
	}
}

// lzRef builds the deterministic test payloads: repetitive text, sorted
// key/value-like runs, and LCG pseudo-random (incompressible) bytes.
func lzPayloads() map[string][]byte {
	rng := uint32(0x9e3779b9)
	random := make([]byte, 9000)
	for i := range random {
		rng = rng*1664525 + 1013904223
		random[i] = byte(rng >> 24)
	}
	keyish := []byte{}
	for i := 0; i < 500; i++ {
		keyish = append(keyish, []byte("word-prefix-shared-")...)
		keyish = append(keyish, byte('a'+i%26), byte('0'+i%10))
	}
	return map[string][]byte{
		"empty":        {},
		"tiny":         []byte("abc"),
		"boundary-12":  []byte("0123456789ab"), // exactly the literal tail
		"boundary-13":  []byte("0123456789abc"),
		"repetitive":   bytes.Repeat([]byte("the quick brown fox "), 400),
		"keyish":       keyish,
		"random":       random,
		"one-byte-x8k": bytes.Repeat([]byte{0x7f}, 8192),
	}
}

// TestLZRoundTrip: every payload must decompress to exactly itself, and
// the repetitive ones must actually shrink (that is the codec's reason
// to exist).
func TestLZRoundTrip(t *testing.T) {
	for name, src := range lzPayloads() {
		comp := lzCompress(nil, src)
		got, err := lzDecompress(nil, comp, len(src))
		if err != nil {
			t.Errorf("%s: decompress: %v", name, err)
			continue
		}
		if !bytes.Equal(got, src) {
			t.Errorf("%s: round trip diverged (%d bytes in, %d out)", name, len(src), len(got))
		}
		if (name == "repetitive" || name == "one-byte-x8k" || name == "keyish") && len(comp) >= len(src) {
			t.Errorf("%s: compressible payload grew: %d -> %d bytes", name, len(src), len(comp))
		}
	}
}

// TestLZDecompressRejectsMalformed pins the decompressor's bounds
// discipline: truncation, rogue offsets and over-declared output sizes
// must error, never read or write out of range.
func TestLZDecompressRejectsMalformed(t *testing.T) {
	src := bytes.Repeat([]byte("abcdefgh"), 200)
	comp := lzCompress(nil, src)

	for cut := 1; cut < len(comp); cut += 7 {
		if out, err := lzDecompress(nil, comp[:cut], len(src)); err == nil && !bytes.Equal(out, src[:len(out)]) {
			// A clean literal-boundary cut legitimately yields a prefix;
			// anything else must error.
			t.Errorf("truncation at %d returned %d non-prefix bytes", cut, len(out))
		}
	}
	// Output larger than max must be refused.
	if _, err := lzDecompress(nil, comp, len(src)-1); err == nil {
		t.Error("output exceeding the declared max accepted")
	}
	// A match offset pointing before the window start.
	bad := []byte{0x14, 'a', 0xff, 0xff} // 1 literal, then a match at offset 65535
	if _, err := lzDecompress(nil, bad, 100); err == nil {
		t.Error("offset outside the window accepted")
	}
	// A zero offset is never valid.
	bad = []byte{0x14, 'a', 0x00, 0x00}
	if _, err := lzDecompress(nil, bad, 100); err == nil {
		t.Error("zero offset accepted")
	}
	// Truncated length run: token promises an extension that never comes.
	if _, err := lzDecompress(nil, []byte{0xf0}, 10000); err == nil {
		t.Error("truncated literal-length run accepted")
	}
}

// TestCompFrameWireForms pins the flag layer itself: a small frame
// travels stored (flag 0, one byte of overhead), a large compressible
// result frame travels compressed (flag 1) and strictly smaller than its
// raw body, and both unwrap back to the identical checksummed body.
func TestCompFrameWireForms(t *testing.T) {
	small := message{Type: "ping"}
	frame, _, err := appendFrame(nil, &small, nil, true, true, true, true, true)
	if err != nil {
		t.Fatal(err)
	}
	body := frameBody(t, frame)
	if body[0] != 0 {
		t.Fatalf("small frame flag = %d, want 0 (stored)", body[0])
	}
	raw, _, compressed, err := unwrapCompressedBody(body, nil)
	if err != nil || compressed {
		t.Fatalf("stored unwrap = (compressed=%v, %v)", compressed, err)
	}
	var back message
	if err := decodeFrame(raw, &back, true, true, true, true, true); err != nil {
		t.Fatal(err)
	}
	if back.Type != "ping" {
		t.Fatalf("stored round trip decoded %q", back.Type)
	}

	big := map[string]float64{}
	for i := 0; i < 2000; i++ {
		big["shared-key-prefix-"+string(rune('a'+i%26))+string(rune('a'+(i/26)%26))+string(rune('a'+i%7))] = float64(i % 3)
	}
	large := message{Type: "result", TaskID: 1, Partial: big}
	compFrame, _, err := appendFrame(nil, &large, nil, true, true, true, true, true)
	if err != nil {
		t.Fatal(err)
	}
	compBody := frameBody(t, compFrame)
	if compBody[0] != 1 {
		t.Fatalf("large result frame flag = %d, want 1 (compressed)", compBody[0])
	}
	unwrapped, _, compressed, err := unwrapCompressedBody(compBody, nil)
	if err != nil || !compressed {
		t.Fatalf("compressed unwrap = (compressed=%v, %v)", compressed, err)
	}
	if len(compBody) >= len(unwrapped) {
		t.Fatalf("compressed body %d bytes, raw %d — no wire saving", len(compBody), len(unwrapped))
	}
	var again message
	if err := decodeFrame(unwrapped, &again, true, true, true, true, true); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Partial, big) {
		t.Fatal("compressed result frame round trip lossy")
	}
}

// TestCompFieldsRefusedWithoutCap: comp-block fields on a connection
// that did not negotiate "comp" must fail the encode rather than be
// silently dropped.
func TestCompFieldsRefusedWithoutCap(t *testing.T) {
	carriers := []message{
		{Type: "task", Rep: "127.0.0.1:9"},
		{Type: "reducetask", CompAddrs: []string{"127.0.0.1:9"}},
		{Type: "mapdone", Spills: 1},
		{Type: "mapdone", Spilled: 10},
		{Type: "result", CompBytes: 10},
		{Type: "helloack", ShuffleMs: 1000},
	}
	for _, m := range carriers {
		if _, _, err := appendFrame(nil, &m, nil, true, true, true, false, true); err == nil {
			t.Errorf("%+v encoded without the comp layout", m)
		}
	}
}

// TestCompCrossGenerationRejected: a comp body handed to a non-comp
// decoder (and the reverse) must error — the flag layer shifts the
// checksummed body by at least one byte, so the CRC or the flag sniff
// catches every mix-up before a field is misread.
func TestCompCrossGenerationRejected(t *testing.T) {
	for _, m := range compFrameSeeds() {
		compFrame, _, err := appendFrame(nil, &m, nil, true, true, true, true, true)
		if err != nil {
			t.Fatalf("%q: %v", m.Type, err)
		}
		compBody := frameBody(t, compFrame)
		var out message
		if err := decodeFrame(compBody, &out, true, true, true, true, true); err == nil {
			t.Errorf("%q: comp wire body decoded without unwrapping the flag layer", m.Type)
		}
	}
	for _, m := range codecMessages() {
		frame, _, err := appendFrame(nil, &m, nil, true, true, true, false, true)
		if err != nil {
			t.Fatalf("%q: %v", m.Type, err)
		}
		body := frameBody(t, frame)
		raw, _, _, err := unwrapCompressedBody(body, nil)
		if err == nil {
			var out message
			err = decodeFrame(raw, &out, true, true, true, true, true)
		}
		if err == nil {
			t.Errorf("%q: non-comp body accepted by a comp decoder", m.Type)
		}
	}
}

// FuzzDecodeCompressedFrame feeds the full comp receive path — flag
// unwrap, decompression, CRC, layout decode — arbitrary bodies: it must
// error or decode, never panic, and a body that decodes must re-encode
// and round-trip to the same message.
func FuzzDecodeCompressedFrame(f *testing.F) {
	for _, m := range compFrameSeeds() {
		frame, _, err := appendFrame(nil, &m, nil, true, true, true, true, true)
		if err != nil {
			f.Fatal(err)
		}
		body := frameBody(f, frame)
		f.Add(body)
		f.Add(body[:len(body)/2])
		mut := append([]byte(nil), body...)
		if len(mut) > 4 {
			mut[4] ^= 0x40
		}
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		raw, _, _, err := unwrapCompressedBody(body, nil)
		if err != nil {
			return
		}
		for _, layout := range []struct{ trc bool }{{false}, {true}} {
			var m message
			if err := decodeFrame(raw, &m, true, layout.trc, true, true, true); err != nil {
				continue
			}
			if _, ok := frameTypes[m.Type]; !ok {
				continue // unknown type placeholder, ignore-path
			}
			frame, _, err := appendFrame(nil, &m, nil, true, layout.trc, true, true, true)
			if err != nil {
				t.Fatalf("decoded frame failed to re-encode: %v", err)
			}
			raw2, _, _, err := unwrapCompressedBody(frameBody(t, frame), nil)
			if err != nil {
				t.Fatalf("re-encoded frame failed to unwrap: %v", err)
			}
			var again message
			if err := decodeFrame(raw2, &again, true, layout.trc, true, true, true); err != nil {
				t.Fatalf("re-encoded frame failed to decode: %v", err)
			}
			if !reflect.DeepEqual(normalize(stripSpans(again)), normalize(stripSpans(m))) {
				t.Fatalf("comp frame round trip lossy:\n in: %+v\nout: %+v", m, again)
			}
		}
	})
}

// TestCompressedCluster is the comp e2e: an all-comp cluster with inputs
// heavy enough that fetchresult/result frames cross the compression
// threshold must produce the reference output and report wire savings.
func TestCompressedCluster(t *testing.T) {
	const workers, shards, R = 3, 6, 3
	master, _ := startReduceCluster(t, MasterConfig{
		TaskTimeout: 10 * time.Second, JobTimeout: 60 * time.Second, Reducers: R,
	}, workers)

	rng := rand.New(rand.NewSource(7))
	lines := make([]string, 1200)
	for i := range lines {
		words := make([]string, 12)
		for j := range words {
			words[j] = "compressible-word-" + string(rune('a'+rng.Intn(26))) + string(rune('a'+rng.Intn(26)))
		}
		lines[i] = strings.Join(words, " ")
	}
	got, stats, err := master.Run(context.Background(), "wordcount", lines, shards)
	if err != nil {
		t.Fatal(err)
	}
	want := runShard(wordCountJob(), lines, newShardScratch())
	if !reflect.DeepEqual(got, want) {
		t.Fatal("compressed cluster result diverged from reference")
	}
	if stats.CompressedBytes <= 0 {
		t.Errorf("CompressedBytes = %d, want > 0 (frames above the threshold must compress)", stats.CompressedBytes)
	}
	if stats.ShuffleBytes <= 0 {
		t.Errorf("ShuffleBytes = %d, want > 0", stats.ShuffleBytes)
	}
}
