package netmr

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Pooled shuffle-plane connections. Before pooling, every reduce-side
// fetch and every replication push dialed the peer fresh — a TCP
// handshake per exchange that scales with both the cluster width and
// the map task count, pure per-degree overhead q(n) in the IPSO
// decomposition. The pool keeps idle connections per peer and reuses
// them across exchanges; serveFetch already serves any number of
// requests per connection, so the protocol needed no change.
//
// A cached connection can be stale (the peer restarted, an idle
// timeout fired, a chaos fault cut it), and staleness only surfaces on
// use. withConn therefore retries exactly once on a fresh dial when an
// exchange over a pooled connection fails — a failure on the fresh
// connection is a real peer failure and propagates. Application-level
// refusals (an error frame from a healthy peer) are not connection
// failures: the connection returns to the pool and the refusal
// propagates without a redial.

// defaultShufflePoolPerPeer caps the idle connections kept per peer.
// The parallel gather holds at most fanout connections to one peer at
// a time, so the cap follows the default fanout.
const defaultShufflePoolPerPeer = 4

// shuffleConn is one pooled connection and the comp generation it was
// dialed with. The serving peer sniffs the generation from the first
// body byte, once per connection — so the generation is fixed at dial
// time and a cached connection of the wrong generation is useless.
type shuffleConn struct {
	c   *conn
	cmp bool
}

// shufflePool is a worker's cache of idle shuffle-plane connections,
// keyed by peer address. Fetch goroutines check conns out and in
// concurrently; each checked-out conn is used by one goroutine.
type shufflePool struct {
	mu      sync.Mutex
	perPeer int
	idle    map[string][]*shuffleConn
	closed  bool
}

func newShufflePool(perPeer int) *shufflePool {
	if perPeer <= 0 {
		perPeer = defaultShufflePoolPerPeer
	}
	return &shufflePool{perPeer: perPeer, idle: map[string][]*shuffleConn{}}
}

// peerRefusal marks an application-level refusal carried on an error
// frame: the connection is healthy (the peer answered), only the
// request was rejected. withConn keeps the connection pooled and never
// redials for one.
type peerRefusal struct{ msg string }

func (e *peerRefusal) Error() string { return e.msg }

func isPeerRefusal(err error) bool {
	var pr *peerRefusal
	return errors.As(err, &pr)
}

// dialShuffle opens a fresh shuffle-plane connection. Shuffle
// connections are negotiation-free on the reduce layout; cmp must
// reflect the target peer's generation (the master names comp-capable
// addrs on the reducetask frame).
func dialShuffle(addr string, cmp bool, timeout time.Duration) (*conn, error) {
	raw, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("netmr: shuffle dial %s: %w", addr, err)
	}
	c := newConn(raw)
	c.binary, c.binExt, c.red, c.cmp = true, true, true, cmp
	return c, nil
}

// get pops an idle connection to addr of the wanted generation, or nil
// when the exchange must dial. Cached connections of the other
// generation are evicted on sight — the peer sniffed their generation
// at the first frame and cannot renegotiate.
func (p *shufflePool) get(addr string, cmp bool) *conn {
	p.mu.Lock()
	defer p.mu.Unlock()
	stack := p.idle[addr]
	for len(stack) > 0 {
		sc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		p.idle[addr] = stack
		if sc.cmp != cmp {
			_ = sc.c.close()
			workerPoolOps.With("evict").Inc()
			continue
		}
		workerPoolOps.With("hit").Inc()
		return sc.c
	}
	workerPoolOps.With("miss").Inc()
	return nil
}

// put returns a healthy connection to addr's idle stack; a full stack
// or a closed pool closes it instead.
func (p *shufflePool) put(addr string, c *conn, cmp bool) {
	p.mu.Lock()
	if p.closed || len(p.idle[addr]) >= p.perPeer {
		p.mu.Unlock()
		_ = c.close()
		workerPoolOps.With("evict").Inc()
		return
	}
	p.idle[addr] = append(p.idle[addr], &shuffleConn{c: c, cmp: cmp})
	p.mu.Unlock()
}

// evict closes one checked-out connection that failed mid-exchange.
func (p *shufflePool) evict(c *conn) {
	_ = c.close()
	workerPoolOps.With("evict").Inc()
}

// closeAll closes every idle connection and marks the pool closed, so
// later puts close their connections instead of caching them — the
// Worker.Stop teardown.
func (p *shufflePool) closeAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	for addr, stack := range p.idle {
		for _, sc := range stack {
			_ = sc.c.close()
		}
		delete(p.idle, addr)
	}
}

// withConn runs one shuffle exchange against addr over a pooled
// connection: check out or dial, run fn, check the connection back in
// on success (or refusal). A failure over a pooled connection is
// indistinguishable from staleness, so the connection is evicted and
// fn retried exactly once over a fresh dial; a failure over a fresh
// connection propagates.
func (p *shufflePool) withConn(addr string, cmp bool, timeout time.Duration, fn func(c *conn) error) error {
	if c := p.get(addr, cmp); c != nil {
		err := fn(c)
		if err == nil || isPeerRefusal(err) {
			p.put(addr, c, cmp)
			return err
		}
		p.evict(c)
	}
	c, err := dialShuffle(addr, cmp, timeout)
	if err != nil {
		return err
	}
	err = fn(c)
	if err == nil || isPeerRefusal(err) {
		p.put(addr, c, cmp)
		return err
	}
	p.evict(c)
	return err
}

// fetchPartition is fetchPartition over the pool: same exchange, reused
// connection, stale-redial-once.
func (p *shufflePool) fetchPartition(addr, run string, partition int, tasks []int, timeout time.Duration, cmp bool) (parts []partitionPartial, n, saved int64, err error) {
	err = p.withConn(addr, cmp, timeout, func(c *conn) error {
		var ferr error
		parts, n, saved, ferr = fetchExchange(c, addr, run, partition, tasks, timeout)
		return ferr
	})
	return parts, n, saved, err
}

// replicateParts is replicateParts over the pool.
func (p *shufflePool) replicateParts(addr, run string, task int, parts []partitionPartial, reducers int, timeout time.Duration) error {
	return p.withConn(addr, true, timeout, func(c *conn) error {
		return replicateExchange(c, addr, run, task, parts, reducers, timeout)
	})
}
