package netmr

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"
)

// Worker-side half of the distributed reduce phase: a reduce-capable
// worker persists its partitioned map output in memory keyed by
// (run, map task), serves it to peer reducers over fetch/fetchresult
// frames on a dedicated shuffle listener, and executes reduce tasks by
// pulling every map task's slice of its partition from those peers (or
// from the master-relayed inline partials of v1/non-reduce peers) and
// folding them — the OSDI'04 shape where reduce work scales with the
// cluster instead of living in the master process.

// shuffleTimeout bounds one fetch round-trip between workers.
const shuffleTimeout = 30 * time.Second

// interStore is a worker's in-memory intermediate store. It holds the
// partitioned map output of exactly one run at a time: a task stored
// under a new run id evicts everything from the previous run, so a
// long-lived worker does not accumulate dead intermediates across jobs.
// The serve goroutine writes; shuffle-server goroutines read
// concurrently, hence the lock.
type interStore struct {
	mu       sync.Mutex
	run      string
	reducers int
	tasks    map[int][]partitionPartial // map task id → per-partition partials
}

func newInterStore() *interStore {
	return &interStore{tasks: map[int][]partitionPartial{}}
}

// setReducers publishes the helloack-granted reduce partition count to
// the shuffle server goroutines (which validate fetch requests with it).
func (s *interStore) setReducers(r int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reducers = r
}

// put stores one map task's partitioned output under run, evicting any
// previous run's intermediates first.
func (s *interStore) put(run string, task int, parts []partitionPartial) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.run != run {
		s.run = run
		clear(s.tasks)
	}
	s.tasks[task] = parts
}

// slice answers one fetch: partition's slice of every requested map
// task, as per-map-task partials (ID is the map task id; a task that
// emitted no keys into the partition contributes a nil Partial, which
// still acknowledges the task is held). A mismatched run, an
// out-of-range partition or an unknown task id is a request the serving
// worker must refuse — not panic over — whatever a rogue or confused
// reducer sends.
func (s *interStore) slice(run string, partition int, tasks []int) ([]partitionPartial, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if run == "" || run != s.run {
		return nil, fmt.Errorf("run %q is not held (current %q)", run, s.run)
	}
	if partition < 0 || partition >= s.reducers {
		return nil, fmt.Errorf("partition %d out of range [0,%d)", partition, s.reducers)
	}
	out := make([]partitionPartial, 0, len(tasks))
	for _, task := range tasks {
		parts, ok := s.tasks[task]
		if !ok {
			return nil, fmt.Errorf("map output for task %d is not held", task)
		}
		var m map[string]float64
		for _, p := range parts {
			if p.ID == partition {
				m = p.Partial
				break
			}
		}
		out = append(out, partitionPartial{ID: task, Partial: m})
	}
	return out, nil
}

// startFetchListener binds the worker's shuffle listener on an ephemeral
// localhost port and serves fetch requests until the listener closes.
// The returned address is what the worker advertises in its hello.
func (w *Worker) startFetchListener() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("netmr: shuffle listen: %w", err)
	}
	w.mu.Lock()
	w.fetchLn = ln
	w.mu.Unlock()
	go func() {
		for {
			raw, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			go w.serveFetch(raw)
		}
	}()
	return ln.Addr().String(), nil
}

// serveFetch handles one reducer connection. Shuffle connections are
// negotiation-free: only reduce-capable peers ever dial one, so both
// ends speak the full binary layout (ext+red) unconditionally. A bad
// request gets an error frame and the connection keeps serving — one
// rogue fetch must not take the worker's other partitions down with it.
func (w *Worker) serveFetch(raw net.Conn) {
	c := newConn(raw)
	c.binary, c.binExt, c.red = true, true, true
	defer func() { _ = c.close() }()
	for {
		m, err := c.recv(shuffleTimeout)
		if err != nil {
			return // peer done (or garbage framing — either way, hang up)
		}
		if m.Type != "fetch" {
			workerServes.With("rejected").Inc()
			if c.send(message{Type: "error", Message: fmt.Sprintf("unexpected frame %q on shuffle connection", m.Type)}, shuffleTimeout) != nil {
				return
			}
			continue
		}
		parts, err := w.store.slice(m.Run, m.TaskID, m.Tasks)
		if err != nil {
			workerServes.With("rejected").Inc()
			if c.send(message{Type: "error", TaskID: m.TaskID, Message: err.Error()}, shuffleTimeout) != nil {
				return
			}
			continue
		}
		workerServes.With("ok").Inc()
		if c.send(message{Type: "fetchresult", TaskID: m.TaskID, Parts: parts}, shuffleTimeout) != nil {
			return
		}
	}
}

// fetchPartition pulls partition's slice of the given map tasks from a
// peer's shuffle listener, returning the per-task partials and the
// encoded bytes transferred.
func fetchPartition(addr, run string, partition int, tasks []int) ([]partitionPartial, int64, error) {
	raw, err := net.DialTimeout("tcp", addr, shuffleTimeout)
	if err != nil {
		return nil, 0, fmt.Errorf("netmr: fetch dial %s: %w", addr, err)
	}
	c := newConn(raw)
	c.binary, c.binExt, c.red = true, true, true
	defer func() { _ = c.close() }()
	if err := c.send(message{Type: "fetch", Run: run, TaskID: partition, Tasks: tasks}, shuffleTimeout); err != nil {
		return nil, 0, err
	}
	reply, err := c.recv(shuffleTimeout)
	if err != nil {
		return nil, 0, err
	}
	switch reply.Type {
	case "fetchresult":
		return reply.Parts, int64(c.lastFrameLen), nil
	case "error":
		return nil, 0, fmt.Errorf("netmr: fetch from %s refused: %s", addr, reply.Message)
	default:
		return nil, 0, fmt.Errorf("netmr: fetch from %s answered %q", addr, reply.Type)
	}
}

// taskPartial pairs one map task id with its slice of the reduce
// partition being assembled.
type taskPartial struct {
	task    int
	partial map[string]float64
}

// runReduceTask executes one reduce task: gather the partition's slice
// of every map task — master-relayed inline partials plus peer fetches
// (the worker's own store is read directly, no loopback dial) — fold
// them in ascending map-task order, and answer with a flat result frame
// carrying the partition's final key space and the intermediate bytes
// fetched. A gather failure is answered with an error frame: the master
// treats it like any failed launch and reassigns the partition.
func (w *Worker) runReduceTask(c *conn, m message, decode time.Duration) bool {
	job, ok := w.registry.lookup(m.Job)
	if !ok {
		workerTasks.With("unknown_job").Inc()
		_ = c.send(message{Type: "error", TaskID: m.TaskID, Message: fmt.Sprintf("unknown job %q", m.Job)}, shuffleTimeout)
		return true
	}
	if f := w.chaos.TaskFault("reduce", m.TaskID, m.Attempt); f.Delay > 0 || f.Crash {
		if f.Delay > 0 {
			time.Sleep(f.Delay)
		}
		if f.Crash {
			workerTasks.With("crashed").Inc()
			return false
		}
	}
	var clock *spanClock
	var t time.Time
	if w.traced {
		clock, t = newSpanClock(decode)
	}
	start := time.Now()
	inputs := make([]taskPartial, 0, len(m.Parts))
	for _, p := range m.Parts {
		// Master-relayed partials from v1/non-reduce peers: ID is the map
		// task id here, not a partition index.
		inputs = append(inputs, taskPartial{task: p.ID, partial: p.Partial})
	}
	var fetched int64
	var gatherErr error
	for _, loc := range m.Locs {
		var parts []partitionPartial
		if loc.Addr == w.fetchAddr {
			// Our own store: read it directly instead of dialing ourselves.
			parts, gatherErr = w.store.slice(m.Run, m.TaskID, loc.Tasks)
		} else {
			fetchStart := time.Now()
			var n int64
			parts, n, gatherErr = fetchPartition(loc.Addr, m.Run, m.TaskID, loc.Tasks)
			workerFetchSeconds.Observe(time.Since(fetchStart).Seconds())
			fetched += n
			if gatherErr == nil {
				workerFetches.With("ok").Inc()
			} else {
				workerFetches.With("failed").Inc()
			}
		}
		if gatherErr != nil {
			break
		}
		for _, p := range parts {
			inputs = append(inputs, taskPartial{task: p.ID, partial: p.Partial})
		}
	}
	if gatherErr != nil {
		workerTasks.With("fetch_failed").Inc()
		_ = c.send(message{Type: "error", TaskID: m.TaskID, Message: gatherErr.Error()}, shuffleTimeout)
		return true
	}
	workerShuffleBytes.Add(float64(fetched))
	if clock != nil {
		t = clock.mark(spanFetch, t)
	}
	// Deterministic fold order: ascending map task id, whatever order the
	// relays and fetches arrived in.
	sort.Slice(inputs, func(i, j int) bool { return inputs[i].task < inputs[j].task })
	out := foldTaskPartials(job, inputs)
	if clock != nil {
		t = clock.mark(spanReduce, t)
	}
	workerReduceSeconds.Observe(time.Since(start).Seconds())
	workerTasks.With("ok").Inc()
	var spans []spanSummary
	if clock != nil {
		clock.mark(spanEncode, t)
		spans = clock.spans
	}
	return c.send(message{Type: "result", TaskID: m.TaskID, Attempt: m.Attempt, Partial: out, Bytes: fetched, Trace: m.Trace, Spans: spans}, shuffleTimeout) == nil
}

// foldTaskPartials merges per-map-task partials of one partition into
// its final key space: a streaming fold for jobs with a Combine, a
// group-then-Reduce for the rest — the same semantics as the master's
// serialMerge, executed worker-side.
func foldTaskPartials(job Job, inputs []taskPartial) map[string]float64 {
	size := 0
	for _, in := range inputs {
		if len(in.partial) > size {
			size = len(in.partial)
		}
	}
	if job.Combine != nil {
		out := make(map[string]float64, size)
		for _, in := range inputs {
			for k, v := range in.partial {
				if acc, ok := out[k]; ok {
					out[k] = job.Combine(acc, v)
				} else {
					out[k] = v
				}
			}
		}
		return out
	}
	merged := make(map[string]*[]float64, size)
	for _, in := range inputs {
		for k, v := range in.partial {
			vs, ok := merged[k]
			if !ok {
				vs = valuesPool.Get().(*[]float64)
				*vs = (*vs)[:0]
				merged[k] = vs
			}
			*vs = append(*vs, v)
		}
	}
	out := make(map[string]float64, len(merged))
	for k, vs := range merged {
		out[k] = job.Reduce(k, *vs)
		valuesPool.Put(vs)
	}
	return out
}
