package netmr

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"ipso/internal/runner"
)

// Worker-side half of the distributed reduce phase: a reduce-capable
// worker persists its partitioned map output keyed by (run, map task),
// serves it to peer reducers over fetch/fetchresult frames on a
// dedicated shuffle listener, and executes reduce tasks by pulling
// every map task's slice of its partition from those peers (or from the
// master-relayed inline partials of v1/non-reduce peers) and folding
// them — the OSDI'04 shape where reduce work scales with the cluster
// instead of living in the master process.
//
// The store is out-of-core: a configurable byte budget bounds how much
// intermediate output stays resident, whole partition sets spilling to
// per-run temp files (sorted by key, indexed by partition) when it is
// exceeded, and comp-generation peers replicate each persisted set to
// one peer so a worker lost after mapdone no longer loses its outputs.

// defaultShuffleTimeout bounds one fetch round-trip between workers
// unless WorkerConfig/MasterConfig override it.
const defaultShuffleTimeout = 30 * time.Second

// storedTask is one map task's partition set: in memory (parts) until
// the store's budget forces it to disk (spill), never both.
type storedTask struct {
	parts []partitionPartial
	bytes int64
	spill *spillFile
}

// interStore is a worker's intermediate store. It holds the partitioned
// map output of exactly one run at a time: a task stored under a new
// run id evicts everything from the previous run — including its spill
// files and its granted reducer count, so a stale count never validates
// fetches against an evicted run. The serve goroutine writes;
// shuffle-server goroutines read concurrently, hence the lock.
type interStore struct {
	mu       sync.Mutex
	run      string
	reducers int

	budget  int64  // resident-byte watermark; 0 = never spill
	baseDir string // spill scratch root; "" = os.TempDir()
	dir     string // current run's spill dir, created lazily

	mem  int64 // resident bytes of in-memory partition sets
	peak int64 // high-water resident bytes, measured after spilling

	totalSpills  int
	totalSpilled int64

	tasks map[int]*storedTask
}

func newInterStore() *interStore {
	return &interStore{tasks: map[int]*storedTask{}}
}

// configure sets the spill policy. Called before Start, so no lock
// contention matters; it takes the lock anyway for the race detector's
// peace of mind.
func (s *interStore) configure(budget int64, dir string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.budget, s.baseDir = budget, dir
}

// setReducers publishes the helloack-granted reduce partition count to
// the shuffle server goroutines (which validate fetch requests with it).
func (s *interStore) setReducers(r int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reducers = r
}

// put stores one map task's partitioned output under run — its own or a
// peer's it replicates — evicting any previous run's intermediates
// first. reducers is the partition count of the run (the spill section
// table is sized by it, and a run change adopts it so the evicted run's
// count cannot leak forward). When the byte budget is exceeded, whole
// partition sets spill to disk in ascending task order until the store
// fits again; spills/spilled report what this call flushed. A spill
// error leaves the set resident (correct, just over budget).
func (s *interStore) put(run string, task int, parts []partitionPartial, reducers int) (spills int, spilled, saved int64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.run != run {
		s.evictLocked()
		s.run = run
		s.reducers = reducers
	}
	if old, ok := s.tasks[task]; ok {
		// A speculation loser or a replica of output already held: replace.
		if old.spill != nil {
			old.spill.remove()
		} else {
			s.mem -= old.bytes
		}
	}
	st := &storedTask{parts: parts, bytes: partialMemBytes(parts)}
	s.tasks[task] = st
	s.mem += st.bytes
	if s.budget > 0 && s.mem > s.budget {
		spills, spilled, saved, err = s.spillLocked()
		s.totalSpills += spills
		s.totalSpilled += spilled
	}
	if s.mem > s.peak {
		s.peak = s.mem
	}
	return spills, spilled, saved, err
}

// spillLocked flushes resident partition sets in ascending task order
// until the store fits its budget again. spilled counts bytes that hit
// disk; saved is what section compression kept off it.
func (s *interStore) spillLocked() (int, int64, int64, error) {
	if s.dir == "" {
		dir, err := ensureSpillDir(s.baseDir, s.run)
		if err != nil {
			return 0, 0, 0, err
		}
		s.dir = dir
	}
	ids := make([]int, 0, len(s.tasks))
	for id, st := range s.tasks {
		if st.spill == nil {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	var spills int
	var spilled, saved int64
	for _, id := range ids {
		if s.mem <= s.budget {
			break
		}
		st := s.tasks[id]
		sf, n, sv, err := writeSpillFile(s.dir, id, st.parts, s.reducers)
		if err != nil {
			return spills, spilled, saved, err
		}
		st.spill = sf
		st.parts = nil
		s.mem -= st.bytes
		spills++
		spilled += n
		saved += sv
	}
	return spills, spilled, saved, nil
}

// evictLocked drops every held task, spill files and scratch dir
// included.
func (s *interStore) evictLocked() {
	for _, st := range s.tasks {
		if st.spill != nil {
			st.spill.remove()
		}
	}
	clear(s.tasks)
	s.mem = 0
	if s.dir != "" {
		_ = os.RemoveAll(s.dir)
		s.dir = ""
	}
}

// evictAll is evictLocked for Worker.Stop: nothing survives, and the
// run id is cleared so late fetches are refused rather than answered
// from a torn-down store.
func (s *interStore) evictAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evictLocked()
	s.run = ""
}

// stats reports the high-water resident bytes and cumulative spill
// volume — what the ooshuffle experiment asserts its budget against.
func (s *interStore) stats() (peak, spilled int64, runs int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peak, s.totalSpilled, s.totalSpills
}

// slice answers one fetch: partition's slice of every requested map
// task, as per-map-task partials (ID is the map task id; a task that
// emitted no keys into the partition contributes a nil Partial, which
// still acknowledges the task is held). Spilled tasks are read back
// from their section on disk. A mismatched run, an out-of-range
// partition or an unknown task id is a request the serving worker must
// refuse — not panic over — whatever a rogue or confused reducer sends.
func (s *interStore) slice(run string, partition int, tasks []int) ([]partitionPartial, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if run == "" || run != s.run {
		return nil, fmt.Errorf("run %q is not held (current %q)", run, s.run)
	}
	if partition < 0 || partition >= s.reducers {
		return nil, fmt.Errorf("partition %d out of range [0,%d)", partition, s.reducers)
	}
	out := make([]partitionPartial, 0, len(tasks))
	for _, task := range tasks {
		st, ok := s.tasks[task]
		if !ok {
			return nil, fmt.Errorf("map output for task %d is not held", task)
		}
		var m map[string]float64
		if st.spill != nil {
			sec, err := st.spill.section(partition)
			if err != nil {
				return nil, err
			}
			m = sec
		} else {
			for _, p := range st.parts {
				if p.ID == partition {
					m = p.Partial
					break
				}
			}
		}
		out = append(out, partitionPartial{ID: task, Partial: m})
	}
	return out, nil
}

// startFetchListener binds the worker's shuffle listener on an ephemeral
// localhost port and serves fetch requests until the listener closes.
// The returned address is what the worker advertises in its hello.
func (w *Worker) startFetchListener() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("netmr: shuffle listen: %w", err)
	}
	w.mu.Lock()
	w.fetchLn = ln
	w.mu.Unlock()
	go func() {
		for {
			raw, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			w.mu.Lock()
			w.fetchConns[raw] = struct{}{}
			w.mu.Unlock()
			go w.serveFetch(raw)
		}
	}()
	return ln.Addr().String(), nil
}

// closeFetchPlane tears the shuffle plane down whole: the listener (no
// new peers) and every accepted socket (in-flight peers, including the
// pooled connections riding them). Stop and the mapper-loss chaos hooks
// use it — a worker whose listener merely closed would keep serving
// peers that connected earlier.
func (w *Worker) closeFetchPlane() {
	w.mu.Lock()
	ln := w.fetchLn
	conns := make([]net.Conn, 0, len(w.fetchConns))
	for c := range w.fetchConns {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
}

// serveFetch handles one peer shuffle connection. Shuffle connections
// are negotiation-free on the reduce layout (only reduce-capable peers
// dial one, so both ends speak ext+red unconditionally); whether the
// dialer additionally speaks the comp generation is sniffed from the
// first body byte — the comp flag layer starts with 0x00/0x01, a
// legacy body with its frame type byte (never below 2 on a shuffle
// connection) — so reduce-only peers from the previous generation stay
// byte-identical. A bad request gets an error frame and the connection
// keeps serving — one rogue fetch must not take the worker's other
// partitions down with it.
func (w *Worker) serveFetch(raw net.Conn) {
	c := newConn(raw)
	c.binary, c.binExt, c.red = true, true, true
	c.sniff = true
	defer func() {
		_ = c.close()
		w.mu.Lock()
		delete(w.fetchConns, raw)
		w.mu.Unlock()
	}()
	to := w.shuffleTO()
	for {
		m, err := c.recv(to)
		if err != nil {
			return // peer done (or garbage framing — either way, hang up)
		}
		switch m.Type {
		case "fetch":
			parts, err := w.store.slice(m.Run, m.TaskID, m.Tasks)
			if err != nil {
				workerServes.With("rejected").Inc()
				if c.send(message{Type: "error", TaskID: m.TaskID, Message: err.Error()}, to) != nil {
					return
				}
				continue
			}
			workerServes.With("ok").Inc()
			if c.send(message{Type: "fetchresult", TaskID: m.TaskID, Parts: parts}, to) != nil {
				return
			}
		case "replicate":
			if _, _, _, err := w.store.put(m.Run, m.TaskID, m.Parts, m.Reducers); err != nil {
				workerServes.With("rejected").Inc()
				if c.send(message{Type: "error", TaskID: m.TaskID, Message: err.Error()}, to) != nil {
					return
				}
				continue
			}
			workerReplicasStored.Inc()
			if c.send(message{Type: "replicack", TaskID: m.TaskID}, to) != nil {
				return
			}
		default:
			workerServes.With("rejected").Inc()
			if c.send(message{Type: "error", Message: fmt.Sprintf("unexpected frame %q on shuffle connection", m.Type)}, to) != nil {
				return
			}
		}
	}
}

// fetchExchange runs one fetch request/response over an established
// shuffle connection, returning the per-task partials, the encoded
// bytes transferred, and — on comp connections — the wire bytes frame
// compression saved. A refusal (error frame from a healthy peer) comes
// back as a peerRefusal so the pool knows the connection survived it.
func fetchExchange(c *conn, addr, run string, partition int, tasks []int, timeout time.Duration) ([]partitionPartial, int64, int64, error) {
	if err := c.send(message{Type: "fetch", Run: run, TaskID: partition, Tasks: tasks}, timeout); err != nil {
		return nil, 0, 0, err
	}
	reply, err := c.recv(timeout)
	if err != nil {
		return nil, 0, 0, err
	}
	switch reply.Type {
	case "fetchresult":
		var saved int64
		if c.cmp {
			if sv := int64(c.lastRawLen) - int64(c.lastFrameLen); sv > 0 {
				saved = sv
			}
		}
		return reply.Parts, int64(c.lastFrameLen), saved, nil
	case "error":
		return nil, 0, 0, &peerRefusal{msg: fmt.Sprintf("netmr: fetch from %s refused: %s", addr, reply.Message)}
	default:
		return nil, 0, 0, fmt.Errorf("netmr: fetch from %s answered %q", addr, reply.Type)
	}
}

// replicateExchange runs one replicate request/response over an
// established shuffle connection.
func replicateExchange(c *conn, addr, run string, task int, parts []partitionPartial, reducers int, timeout time.Duration) error {
	if err := c.send(message{Type: "replicate", Run: run, TaskID: task, Parts: parts, Reducers: reducers}, timeout); err != nil {
		return err
	}
	reply, err := c.recv(timeout)
	if err != nil {
		return err
	}
	switch reply.Type {
	case "replicack":
		return nil
	case "error":
		return &peerRefusal{msg: fmt.Sprintf("netmr: replicate to %s refused: %s", addr, reply.Message)}
	default:
		return fmt.Errorf("netmr: replicate to %s answered %q", addr, reply.Type)
	}
}

// fetchPartition pulls partition's slice of the given map tasks from a
// peer's shuffle listener over a fresh dial-per-call connection. The
// pooled path (shufflePool.fetchPartition) has replaced it on the hot
// path; this remains as the unpooled baseline the shuffle benchmarks
// compare against. cmp must reflect the target peer's generation (the
// master names comp-capable addrs on the reducetask frame).
func fetchPartition(addr, run string, partition int, tasks []int, timeout time.Duration, cmp bool) ([]partitionPartial, int64, int64, error) {
	c, err := dialShuffle(addr, cmp, timeout)
	if err != nil {
		return nil, 0, 0, err
	}
	defer func() { _ = c.close() }()
	return fetchExchange(c, addr, run, partition, tasks, timeout)
}

// replicateParts pushes one persisted partition set to a peer's shuffle
// listener (always a comp-generation peer — the master only names
// those) over a fresh dial-per-call connection and waits for the
// replicack. Like fetchPartition, superseded by the pooled path.
func replicateParts(addr, run string, task int, parts []partitionPartial, reducers int, timeout time.Duration) error {
	c, err := dialShuffle(addr, true, timeout)
	if err != nil {
		return err
	}
	defer func() { _ = c.close() }()
	return replicateExchange(c, addr, run, task, parts, reducers, timeout)
}

// taskPartial pairs one map task id with its slice of the reduce
// partition being assembled.
type taskPartial struct {
	task    int
	partial map[string]float64
}

// fetchError names the peer whose fetch (or local read) failed, so the
// reduce error frame can carry the address for the master's recovery
// lineage.
type fetchError struct {
	addr string
	err  error
}

func (e *fetchError) Error() string { return e.err.Error() }
func (e *fetchError) Unwrap() error { return e.err }

// locResult is one location's gathered slice plus its transfer
// accounting — assembled concurrently by fetchRound, folded in location
// order by the caller.
type locResult struct {
	parts     []partitionPartial
	fetched   int64
	saved     int64
	failovers int
}

// fetchRound pulls partition's slice from every location concurrently,
// bounded by the worker's shuffle fan-out, with results in location
// order so the fold input is independent of arrival order. The worker's
// own store is read directly (no loopback dial); peer fetches go
// through the connection pool. A primary's failure fails over to the
// map tasks' replica holders when repOf names them; only when that too
// fails (or no replica covers a task) does the round error, naming the
// primary so the master routes recovery around it.
func (w *Worker) fetchRound(run string, partition int, locs []fetchLoc, repOf map[int]string, compAddrs map[string]bool, cmp bool, to time.Duration) ([]locResult, error) {
	ctx := runner.WithWorkers(context.Background(), w.shuffleFanout)
	return runner.Map(ctx, len(locs), func(_ context.Context, i int) (locResult, error) {
		loc := locs[i]
		if loc.Addr == w.fetchAddr {
			parts, err := w.store.slice(run, partition, loc.Tasks)
			if err != nil {
				return locResult{}, &fetchError{addr: loc.Addr, err: err}
			}
			return locResult{parts: parts}, nil
		}
		fetchStart := time.Now()
		parts, n, sv, err := w.pool.fetchPartition(loc.Addr, run, partition, loc.Tasks, to, cmp && compAddrs[loc.Addr])
		workerFetchSeconds.Observe(time.Since(fetchStart).Seconds())
		if err == nil {
			workerFetches.With("ok").Inc()
			return locResult{parts: parts, fetched: n, saved: sv}, nil
		}
		workerFetches.With("failed").Inc()
		res, ferr := w.fetchFailover(run, partition, loc, repOf, compAddrs, cmp, to)
		if ferr != nil {
			return locResult{}, &fetchError{addr: loc.Addr, err: err}
		}
		return res, nil
	})
}

// fetchFailover re-pulls one failed location's map tasks from their
// replica holders. Every task must have a known replica distinct from
// the failed primary and every replica fetch must succeed — a partial
// recovery is no recovery, so the primary's failure stands otherwise.
func (w *Worker) fetchFailover(run string, partition int, loc fetchLoc, repOf map[int]string, compAddrs map[string]bool, cmp bool, to time.Duration) (locResult, error) {
	if len(repOf) == 0 {
		return locResult{}, fmt.Errorf("netmr: no replica locations known")
	}
	groups := map[string][]int{}
	var order []string
	for _, task := range loc.Tasks {
		rep, ok := repOf[task]
		if !ok || rep == loc.Addr {
			return locResult{}, fmt.Errorf("netmr: no replica holds map task %d", task)
		}
		if _, seen := groups[rep]; !seen {
			order = append(order, rep)
		}
		groups[rep] = append(groups[rep], task)
	}
	var out locResult
	for _, rep := range order {
		fetchStart := time.Now()
		parts, n, sv, err := w.pool.fetchPartition(rep, run, partition, groups[rep], to, cmp && compAddrs[rep])
		workerFetchSeconds.Observe(time.Since(fetchStart).Seconds())
		if err != nil {
			workerFetches.With("failed").Inc()
			return locResult{}, err
		}
		workerFetches.With("ok").Inc()
		out.parts = append(out.parts, parts...)
		out.fetched += n
		out.saved += sv
		out.failovers++
	}
	workerFailovers.Add(float64(out.failovers))
	return out, nil
}

// runReduceTask executes one reduce task: gather the partition's slice
// of every map task — master-relayed inline partials plus peer fetches
// (the worker's own store is read directly, no loopback dial) — fold
// them in ascending map-task order, and answer with a flat result frame
// carrying the partition's final key space and the intermediate bytes
// fetched. Fetches run concurrently up to the shuffle fan-out over
// pooled connections, and fetch failures fail over to replica holders
// locally when the task frame named them. Under a spill budget the
// gathered partials buffer through a spillFolder whose sorted runs
// merge back via loser tree, keeping the output byte-identical to the
// in-memory fold. On an early dispatch (Total > 0) the initial
// locations are only a prefix: the worker keeps receiving morelocs
// frames — gathering each batch as it lands, under the map tail — until
// every announced map output is covered or the master aborts the
// launch. A gather failure is answered with an error frame naming the
// peer that failed (Fetch), so the master can consult replica locations
// instead of evicting the healthy reducer.
func (w *Worker) runReduceTask(c *conn, m message, decode time.Duration) bool {
	to := w.shuffleTO()
	job, ok := w.registry.lookup(m.Job)
	if !ok {
		workerTasks.With("unknown_job").Inc()
		_ = c.send(message{Type: "error", TaskID: m.TaskID, Message: fmt.Sprintf("unknown job %q", m.Job)}, to)
		return true
	}
	if f := w.chaos.TaskFault("reduce", m.TaskID, m.Attempt); f.Delay > 0 || f.Crash {
		if f.Delay > 0 {
			time.Sleep(f.Delay)
		}
		if f.Crash {
			workerTasks.With("crashed").Inc()
			return false
		}
	}
	var clock *spanClock
	var t time.Time
	if w.traced {
		clock, t = newSpanClock(decode)
	}
	start := time.Now()
	var folder *spillFolder
	if w.spillBudget > 0 {
		if dir, err := ensureSpillDir(w.spillDir, m.Run); err == nil {
			folder = newSpillFolder(w.spillBudget, dir)
			defer folder.discard()
		}
	}
	var inputs []taskPartial
	covered := 0
	gather := func(task int, partial map[string]float64) error {
		covered++
		if folder != nil {
			return folder.add(task, partial)
		}
		inputs = append(inputs, taskPartial{task: task, partial: partial})
		return nil
	}
	compAddrs := map[string]bool{}
	for _, a := range m.CompAddrs {
		compAddrs[a] = true
	}
	repOf := map[int]string{}
	noteReps := func(reps []fetchLoc) {
		for _, rep := range reps {
			for _, task := range rep.Tasks {
				repOf[task] = rep.Addr
			}
		}
	}
	noteReps(m.Reps)
	var fetched, compSaved int64
	var failovers int
	// round gathers one batch of map outputs: the master-relayed inline
	// partials (from v1/non-reduce peers or recovered map re-executions;
	// ID is the map task id there, not a partition index), then the
	// fetch locations, concurrently.
	round := func(parts []partitionPartial, locs []fetchLoc) (string, error) {
		for _, p := range parts {
			if err := gather(p.ID, p.Partial); err != nil {
				return "", err
			}
		}
		results, err := w.fetchRound(m.Run, m.TaskID, locs, repOf, compAddrs, c.cmp, to)
		if err != nil {
			var fe *fetchError
			if errors.As(err, &fe) {
				return fe.addr, err
			}
			return "", err
		}
		for _, r := range results {
			fetched += r.fetched
			compSaved += r.saved
			failovers += r.failovers
			for _, p := range r.parts {
				if err := gather(p.ID, p.Partial); err != nil {
					return "", err
				}
			}
		}
		return "", nil
	}
	failedAddr, gatherErr := round(m.Parts, m.Locs)
	if clock != nil {
		t = clock.mark(spanFetch, t)
	}
	// Early dispatch: the master announced how many map outputs the run
	// will produce and streams the still-missing locations as their
	// mapdones land. The blocked recv is the await span — together with
	// the per-round fetch spans, the overlap the trace assembler shows
	// hiding under the map tail.
	for gatherErr == nil && m.Total > 0 && covered < m.Total {
		um, err := c.recv(0)
		if err != nil {
			return false
		}
		if clock != nil {
			t = clock.mark(spanAwait, t)
		}
		if um.Type != "morelocs" || um.Run != m.Run {
			gatherErr = fmt.Errorf("expected morelocs for run %s, got %q", m.Run, um.Type)
			break
		}
		if um.Message == "abort" {
			// The master wants this worker back (a map shard needs
			// retrying); acknowledge and re-enter the serve loop.
			workerTasks.With("aborted").Inc()
			_ = c.send(message{Type: "error", TaskID: m.TaskID, Message: "early reduce aborted"}, to)
			return true
		}
		noteReps(um.Reps)
		failedAddr, gatherErr = round(um.Parts, um.Locs)
		if clock != nil {
			t = clock.mark(spanFetch, t)
		}
	}
	if gatherErr != nil {
		workerTasks.With("fetch_failed").Inc()
		fail := message{Type: "error", TaskID: m.TaskID, Message: gatherErr.Error()}
		if c.cmp {
			fail.Fetch = failedAddr
		}
		_ = c.send(fail, to)
		return true
	}
	workerShuffleBytes.Add(float64(fetched))
	var out map[string]float64
	merged := false
	if folder != nil {
		var foldErr error
		out, merged, foldErr = folder.fold(job)
		if foldErr != nil {
			workerTasks.With("fold_failed").Inc()
			_ = c.send(message{Type: "error", TaskID: m.TaskID, Message: foldErr.Error()}, to)
			return true
		}
	} else {
		// Deterministic fold order: ascending map task id, whatever order
		// the relays and fetches arrived in.
		sort.Slice(inputs, func(i, j int) bool { return inputs[i].task < inputs[j].task })
		out = foldTaskPartials(job, inputs)
	}
	if clock != nil {
		if merged {
			t = clock.mark(spanMergeRuns, t)
		} else {
			t = clock.mark(spanReduce, t)
		}
	}
	workerReduceSeconds.Observe(time.Since(start).Seconds())
	workerTasks.With("ok").Inc()
	var spans []spanSummary
	if clock != nil {
		clock.mark(spanEncode, t)
		if folder != nil && folder.flushDur > 0 {
			clock.spans = appendSpanAfter(clock.spans, spanSpill, folder.flushDur)
		}
		spans = clock.spans
	}
	res := message{Type: "result", TaskID: m.TaskID, Attempt: m.Attempt, Partial: out, Bytes: fetched, Trace: m.Trace, Spans: spans}
	if c.erl {
		res.Failovers = failovers
	}
	if c.cmp {
		res.CompBytes = compSaved
		if folder != nil {
			res.CompBytes += folder.compSaved
			res.Spills = folder.spillRuns
			res.Spilled = folder.spilledBytes
			workerSpillRuns.Add(float64(folder.spillRuns))
			workerSpilledBytes.Add(float64(folder.spilledBytes))
		}
	}
	return c.send(res, to) == nil
}

// foldTaskPartials merges per-map-task partials of one partition into
// its final key space: a streaming fold for jobs with a Combine, a
// group-then-Reduce for the rest — the same semantics as the master's
// serialMerge, executed worker-side.
func foldTaskPartials(job Job, inputs []taskPartial) map[string]float64 {
	size := 0
	for _, in := range inputs {
		if len(in.partial) > size {
			size = len(in.partial)
		}
	}
	if job.Combine != nil {
		out := make(map[string]float64, size)
		for _, in := range inputs {
			for k, v := range in.partial {
				if acc, ok := out[k]; ok {
					out[k] = job.Combine(acc, v)
				} else {
					out[k] = v
				}
			}
		}
		return out
	}
	merged := make(map[string]*[]float64, size)
	for _, in := range inputs {
		for k, v := range in.partial {
			vs, ok := merged[k]
			if !ok {
				vs = valuesPool.Get().(*[]float64)
				*vs = (*vs)[:0]
				merged[k] = vs
			}
			*vs = append(*vs, v)
		}
	}
	out := make(map[string]float64, len(merged))
	for k, vs := range merged {
		out[k] = job.Reduce(k, *vs)
		valuesPool.Put(vs)
	}
	return out
}
