package netmr

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// TestSpillFileCompressionRoundTrip: map-side spill sections at or above
// the wire compression threshold are stored LZ-compressed when that
// shrinks them; every section — compressed, raw-because-small, raw-
// because-incompressible, absent — must read back exactly.
func TestSpillFileCompressionRoundTrip(t *testing.T) {
	const R = 4
	rng := rand.New(rand.NewSource(7))
	compressible := map[string]float64{}
	for i := 0; i < 600; i++ {
		compressible[fmt.Sprintf("shared-prefix-key-%05d", i)] = float64(i % 5)
	}
	incompressible := map[string]float64{}
	for i := 0; i < 600; i++ {
		k := make([]byte, 24)
		for j := range k {
			k[j] = byte(rng.Intn(256))
		}
		incompressible[string(k)] = rng.Float64()
	}
	tiny := map[string]float64{"a": 1, "b": 2}
	parts := []partitionPartial{
		{ID: 0, Partial: compressible},
		{ID: 1, Partial: incompressible},
		{ID: 2, Partial: tiny},
		// partition 3 absent: the task emitted nothing into it
	}
	sf, onDisk, saved, err := writeSpillFile(t.TempDir(), 0, parts, R)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.remove()
	if saved == 0 {
		t.Error("compressible section saved no bytes")
	}
	if sf.rawLens[0] == 0 {
		t.Error("compressible section not stored compressed")
	}
	if sf.rawLens[2] != 0 {
		t.Error("tiny section paid the compressor below the threshold")
	}
	if onDisk <= 0 {
		t.Fatalf("on-disk size = %d", onDisk)
	}
	// SpilledBytes accounting is post-compression: the on-disk size plus
	// the saved bytes must equal what the sections serialize to raw.
	var raw int64
	for p := 0; p < R; p++ {
		if sf.offsets[p] < 0 {
			continue
		}
		if sf.rawLens[p] > 0 {
			raw += sf.rawLens[p]
		} else {
			raw += sf.lengths[p]
		}
	}
	if onDisk+saved != raw {
		t.Errorf("onDisk %d + saved %d != raw %d", onDisk, saved, raw)
	}
	for _, want := range parts {
		got, err := sf.section(want.ID)
		if err != nil {
			t.Fatalf("section %d: %v", want.ID, err)
		}
		if !reflect.DeepEqual(got, want.Partial) {
			t.Fatalf("section %d round trip diverged", want.ID)
		}
	}
	if got, err := sf.section(3); err != nil || got != nil {
		t.Fatalf("absent section = (%v, %v), want (nil, nil)", got, err)
	}
}

// TestSpillFolderCompressedRunsMatchMemory: the reduce-side gather
// buffer's block-framed compressed runs must fold to exactly the
// in-memory result, and highly redundant runs must record savings.
func TestSpillFolderCompressedRunsMatchMemory(t *testing.T) {
	job := wordCountJob()
	inputs := make([]taskPartial, 8)
	for task := range inputs {
		m := map[string]float64{}
		for i := 0; i < 400; i++ {
			m[fmt.Sprintf("gather-key-%04d", i)] = float64(task + i%3)
		}
		inputs[task] = taskPartial{task: task, partial: m}
	}
	ref := make([]taskPartial, len(inputs))
	copy(ref, inputs)
	sort.Slice(ref, func(i, j int) bool { return ref[i].task < ref[j].task })
	want := foldTaskPartials(job, ref)

	f := newSpillFolder(1024, t.TempDir()) // tight budget: every add spills
	for _, in := range inputs {
		if err := f.add(in.task, in.partial); err != nil {
			t.Fatal(err)
		}
	}
	got, merged, err := f.fold(job)
	if err != nil {
		t.Fatal(err)
	}
	if !merged {
		t.Fatal("tight budget never forced a merged fold")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("compressed-run fold diverged from the in-memory reference")
	}
	if f.compSaved == 0 {
		t.Error("redundant runs recorded no compression savings")
	}
	if f.spilledBytes == 0 || f.spillRuns == 0 {
		t.Errorf("spill accounting empty: runs=%d bytes=%d", f.spillRuns, f.spilledBytes)
	}
}
