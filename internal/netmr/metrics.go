package netmr

import (
	"ipso/internal/obs"
)

// masterMetrics are the master-side instruments, registered on one obs
// registry (the process default unless MasterConfig.Metrics overrides
// it). Families are get-or-create, so several masters in one process
// share counters — the per-run view lives in Stats.
type masterMetrics struct {
	registry       *obs.Registry
	workersJoined  *obs.Counter
	workersLost    *obs.Counter
	workers        *obs.Gauge
	codecs         *obs.CounterVec
	shards         *obs.Counter
	reassignments  *obs.CounterVec
	heartbeats     *obs.CounterVec
	jobs           *obs.CounterVec
	rpcSeconds     *obs.HistogramVec
	splitSeconds   *obs.Histogram
	mergeSeconds   *obs.Histogram
	mergeOverlap   *obs.Histogram
	mergePartition *obs.HistogramVec
	mergeWidth     *obs.Gauge
	partResults    *obs.Counter
	reduceTasks    *obs.CounterVec
	reduceSeconds  *obs.Histogram
	shuffleBytes   *obs.Counter
	mapOutputs     *obs.CounterVec
	retries        *obs.Counter
	backoffSeconds *obs.Histogram
	speculations   *obs.Counter
	specWins       *obs.Counter
	duplicates     *obs.Counter
	cancellations  *obs.Counter

	spillRuns       *obs.Counter
	spilledBytes    *obs.Counter
	compressedBytes *obs.Counter
	replicaFetches  *obs.Counter
	mapReexecs      *obs.Counter
	recoverySeconds *obs.Histogram

	earlyLaunches *obs.Counter
	earlyAborts   *obs.Counter
	locsStreamed  *obs.Counter
	failovers     *obs.Counter
}

func newMasterMetrics(r *obs.Registry) *masterMetrics {
	if r == nil {
		r = obs.Default()
	}
	return &masterMetrics{
		registry: r,
		workersJoined: r.Counter("netmr_workers_joined_total",
			"Workers admitted to the master's pool."),
		workersLost: r.Counter("netmr_workers_lost_total",
			"Workers dropped after an RPC or heartbeat failure."),
		workers: r.Gauge("netmr_workers",
			"Workers currently admitted and not lost."),
		codecs: r.CounterVec("netmr_worker_codec_total",
			"Admitted workers by negotiated wire codec (json or bin).", "codec"),
		shards: r.Counter("netmr_shards_dispatched_total",
			"Shard executions dispatched to workers (including retries)."),
		reassignments: r.CounterVec("netmr_shard_reassignments_total",
			"Shards re-queued after a worker failed, by the worker that failed.", "worker"),
		heartbeats: r.CounterVec("netmr_heartbeats_total",
			"Idle-worker heartbeat probes by result (ok or failed).", "result"),
		jobs: r.CounterVec("netmr_jobs_total",
			"Jobs run by final status (ok or error).", "status"),
		rpcSeconds: r.HistogramVec("netmr_rpc_seconds",
			"Shard dispatch round-trip latency by worker.", nil, "worker"),
		splitSeconds: r.Histogram("netmr_split_seconds",
			"Split-phase wall time (scatter + parallel map, barrier to barrier).", nil),
		mergeSeconds: r.Histogram("netmr_merge_seconds",
			"Master-side merge window wall time (first partial fold to finalize; overlaps the split phase).", nil),
		mergeOverlap: r.Histogram("netmr_merge_overlap_seconds",
			"Merge wall time hidden under the split phase (map-overlap).", nil),
		mergePartition: r.HistogramVec("netmr_merge_partition_seconds",
			"Per-partition merge busy time (incremental folds plus finalize).", nil, "partition"),
		mergeWidth: r.Gauge("netmr_merge_parallelism",
			"Merge partitions (folder goroutines) of the most recent job."),
		partResults: r.Counter("netmr_partitioned_results_total",
			"Winning shard results that arrived pre-partitioned by a worker."),
		reduceTasks: r.CounterVec("netmr_reduce_tasks_total",
			"Worker-side reduce task launches by outcome (ok or failed).", "status"),
		reduceSeconds: r.Histogram("netmr_reduce_seconds",
			"Distributed reduce phase wall time (split barrier to last reduce result).", nil),
		shuffleBytes: r.Counter("netmr_shuffle_bytes_total",
			"Intermediate bytes reducers fetched worker-to-worker."),
		mapOutputs: r.CounterVec("netmr_map_outputs_total",
			"Winning map outputs of reduce-mode jobs by placement (stored worker-side or relayed via the master).", "mode"),
		retries: r.Counter("netmr_retries_total",
			"Shards requeued with backoff after a launch failure."),
		backoffSeconds: r.Histogram("netmr_retry_backoff_seconds",
			"Backoff delays applied before shard retries.", nil),
		speculations: r.Counter("netmr_speculations_total",
			"Speculative clones launched for straggling shards."),
		specWins: r.Counter("netmr_speculative_wins_total",
			"Shards whose first finished launch was a speculative clone."),
		duplicates: r.Counter("netmr_duplicate_results_total",
			"Late sibling results discarded after a shard already completed."),
		cancellations: r.Counter("netmr_cancelled_launches_total",
			"In-flight launches abandoned at job completion or cancellation."),
		spillRuns: r.Counter("netmr_spill_runs_total",
			"Sorted spill runs workers flushed under memory pressure."),
		spilledBytes: r.Counter("netmr_spilled_bytes_total",
			"Bytes of intermediate state workers wrote to spill files."),
		compressedBytes: r.Counter("netmr_compressed_bytes_total",
			"Shuffle wire bytes saved by frame compression."),
		replicaFetches: r.Counter("netmr_replica_fetches_total",
			"Fetch routings redirected to a replica after the primary holder died."),
		mapReexecs: r.Counter("netmr_map_reexecutions_total",
			"Map tasks re-executed from lineage after both the primary and its replica were lost."),
		recoverySeconds: r.Histogram("netmr_recovery_seconds",
			"Wall time from first detected intermediate loss to reduce-phase completion.", nil),
		earlyLaunches: r.Counter("netmr_early_reduce_launches_total",
			"Reduce tasks dispatched before the map barrier (pipelined shuffle)."),
		earlyAborts: r.Counter("netmr_early_reduce_aborts_total",
			"Early reduce launches aborted to free their worker for a map retry."),
		locsStreamed: r.Counter("netmr_morelocs_streamed_total",
			"morelocs updates streamed to running early reducers."),
		failovers: r.Counter("netmr_reduce_failovers_total",
			"Reducer fetches rerouted worker-locally to a replica holder."),
	}
}

// Worker-side instruments, on the process default registry.
var (
	workerTasks = obs.Default().CounterVec("netmr_worker_tasks_total",
		"Tasks executed by this process's workers, by result (ok, unknown_job, fetch_failed, or crashed).", "result")
	workerTaskSeconds = obs.Default().Histogram("netmr_worker_task_seconds",
		"Map+combine execution time of one shard on a worker.", nil)
	workerReduceSeconds = obs.Default().Histogram("netmr_worker_reduce_seconds",
		"Fetch+fold execution time of one reduce task on a worker.", nil)
	workerFetches = obs.Default().CounterVec("netmr_worker_fetches_total",
		"Peer shuffle fetches issued by this process's reducers, by result (ok or failed).", "result")
	workerFetchSeconds = obs.Default().Histogram("netmr_worker_fetch_seconds",
		"Round-trip latency of one peer shuffle fetch.", nil)
	workerShuffleBytes = obs.Default().Counter("netmr_worker_shuffle_bytes_total",
		"Intermediate bytes this process's reducers fetched from peers.")
	workerServes = obs.Default().CounterVec("netmr_worker_fetch_serves_total",
		"Shuffle fetch requests served by this process's workers, by result (ok or rejected).", "result")
	workerPings = obs.Default().Counter("netmr_worker_pings_total",
		"Heartbeat pings answered by this process's workers.")
	workerSpillRuns = obs.Default().Counter("netmr_worker_spill_runs_total",
		"Sorted spill runs this process's workers flushed under memory pressure.")
	workerSpilledBytes = obs.Default().Counter("netmr_worker_spilled_bytes_total",
		"Bytes this process's workers wrote to spill files.")
	workerSpillErrors = obs.Default().Counter("netmr_worker_spill_errors_total",
		"Spill attempts that failed (the data stayed resident).")
	workerReplications = obs.Default().CounterVec("netmr_worker_replications_total",
		"Partition-set replications this process's workers pushed to peers, by result (ok or failed).", "result")
	workerReplicasStored = obs.Default().Counter("netmr_worker_replicas_stored_total",
		"Peer partition sets this process's workers accepted as replicas.")
	workerPoolOps = obs.Default().CounterVec("netmr_worker_shuffle_pool_total",
		"Shuffle connection pool operations, by kind (hit, miss, or evict).", "kind")
	workerFailovers = obs.Default().Counter("netmr_worker_fetch_failovers_total",
		"Reducer fetches this process's workers rerouted to a replica holder.")
)
