package netmr

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"ipso/internal/chaos"
	"ipso/internal/obs"
)

// startTracedCluster brings up a traced master plus n plain workers.
func startTracedCluster(t *testing.T, n int, cfg MasterConfig) *Master {
	t.Helper()
	cfg.Trace = true
	if cfg.TaskTimeout == 0 {
		cfg.TaskTimeout = 10 * time.Second
	}
	if cfg.JobTimeout == 0 {
		cfg.JobTimeout = 30 * time.Second
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	master, err := NewMaster(mustRegistry(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(master.Close)
	for i := 0; i < n; i++ {
		w, err := NewWorker(mustRegistry(t))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Start(addr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Stop)
	}
	if err := master.WaitForWorkers(n, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return master
}

// TestTracedRunTimeline: a clean traced run yields a sealed trace with
// one ok launch per shard, master split/merge phases, worker sub-phase
// spans nested inside every launch window, and a breakdown whose phases
// are consistent with the run's stats.
func TestTracedRunTimeline(t *testing.T) {
	master := startTracedCluster(t, 2, MasterConfig{Partitions: 2})
	lines := testLines(t, 400)
	_, stats, err := master.Run(context.Background(), "wordcount", lines, 6)
	if err != nil {
		t.Fatal(err)
	}
	trc := master.LastTrace()
	if trc == nil {
		t.Fatal("traced master produced no trace")
	}
	if open := trc.OpenLaunches(); open != 0 {
		t.Fatalf("OpenLaunches = %d after Run returned", open)
	}
	outcomes := trc.Outcomes()
	if outcomes[outcomeOK] != 6 {
		t.Fatalf("ok launches = %d, want 6 (outcomes %v)", outcomes[outcomeOK], outcomes)
	}

	phases := map[string]int{}
	subsByLaunch := map[int]map[string]int{}
	launches := map[int]TraceSpan{}
	for _, sp := range trc.Spans() {
		if sp.End < sp.Start {
			t.Fatalf("span ends before it starts: %+v", sp)
		}
		switch {
		case sp.Launch < 0:
			phases[sp.Phase]++
		case sp.Phase == "task":
			launches[sp.Launch] = sp
		default:
			if subsByLaunch[sp.Launch] == nil {
				subsByLaunch[sp.Launch] = map[string]int{}
			}
			subsByLaunch[sp.Launch][sp.Phase]++
		}
	}
	if phases["split"] != 1 || phases["merge"] != 1 {
		t.Fatalf("master phases = %v, want one split and one merge", phases)
	}
	for id, task := range launches {
		subs := subsByLaunch[id]
		for _, want := range []string{spanMap, spanEncode} {
			if subs[want] == 0 {
				t.Fatalf("launch %d has no %s span (subs %v)", id, want, subs)
			}
		}
		// Worker spans are re-based into the launch window.
		for _, sp := range trc.Spans() {
			if sp.Launch == id && sp.Phase != "task" {
				if sp.Start < task.Start-1e-9 || sp.End > task.End+1e-9 {
					t.Fatalf("sub-span %+v escapes launch window [%v, %v]", sp, task.Start, task.End)
				}
			}
		}
	}

	b := trc.Breakdown(stats)
	if b.Wp <= 0 || b.MaxTask <= 0 {
		t.Fatalf("breakdown attributes no compute: %+v", b)
	}
	if b.MaxTask > b.Wp+1e-9 {
		t.Fatalf("MaxTask %v exceeds total Wp %v", b.MaxTask, b.Wp)
	}
	if b.TotalWall <= 0 || b.Wo < 0 || b.Ws < 0 {
		t.Fatalf("inconsistent breakdown: %+v", b)
	}
	if b.Workers != stats.Workers {
		t.Fatalf("breakdown workers = %d, want %d", b.Workers, stats.Workers)
	}
}

// TestTraceJSONRoundTrip: WriteJSON → ReadTraceJSON preserves the
// timeline, DerivedStats reconstructs the master walls from the spans,
// and the offline report renders.
func TestTraceJSONRoundTrip(t *testing.T) {
	master := startTracedCluster(t, 1, MasterConfig{})
	lines := testLines(t, 200)
	_, stats, err := master.Run(context.Background(), "wordcount", lines, 4)
	if err != nil {
		t.Fatal(err)
	}
	trc := master.LastTrace()
	var buf bytes.Buffer
	if err := trc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// Every JSONL line is one complete span object with the trace ID.
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var doc map[string]any
		if err := json.Unmarshal([]byte(line), &doc); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if doc["trace"] != trc.ID {
			t.Fatalf("line carries trace %v, want %v", doc["trace"], trc.ID)
		}
	}

	back, err := ReadTraceJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Spans(), trc.Spans()) {
		t.Fatal("spans diverged across the JSON round trip")
	}
	if back.ID != trc.ID || back.Job != trc.Job {
		t.Fatalf("identity diverged: got (%s, %s), want (%s, %s)", back.ID, back.Job, trc.ID, trc.Job)
	}

	ds := back.DerivedStats()
	if ds.Workers != stats.Workers {
		t.Fatalf("derived workers = %d, want %d", ds.Workers, stats.Workers)
	}
	mergeDiff := (ds.MergeWall - (stats.MergeWall - stats.MergeOverlapWall)).Abs()
	if mergeDiff > 5*time.Millisecond {
		t.Fatalf("derived merge wall %v far from residual merge %v", ds.MergeWall, stats.MergeWall-stats.MergeOverlapWall)
	}
	var report bytes.Buffer
	if err := back.WriteReport(&report, ds); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"phase accounting", "Wo attribution", "launch"} {
		if !strings.Contains(report.String(), want) {
			t.Fatalf("offline report missing %q:\n%s", want, report.String())
		}
	}

	// Corrupt dumps are rejected, not mis-read.
	if _, err := ReadTraceJSON(strings.NewReader(`{"phase":"task","start":2,"end":1}`)); err == nil {
		t.Fatal("span with end < start must be rejected")
	}
	if _, err := ReadTraceJSON(strings.NewReader(`not json`)); err == nil {
		t.Fatal("non-JSON dump must be rejected")
	}
}

// TestTraceLifecycleUnderChaos is the span-lifecycle audit: a traced
// job surviving dropped writes, a crashing worker and manufactured
// stragglers (retries, speculation, duplicates) must seal its trace
// with zero open launches, every task span carrying a terminal outcome,
// and the retry/speculation waste visible as non-ok launches. The
// /metrics scrape of the chaos-soaked master must also survive the
// strict exposition parser.
func TestTraceLifecycleUnderChaos(t *testing.T) {
	reg := obs.NewRegistry()
	master, err := NewMaster(mustRegistry(t), MasterConfig{
		TaskTimeout:         5 * time.Second,
		JobTimeout:          60 * time.Second,
		MaxAttempts:         10,
		RetryBaseDelay:      2 * time.Millisecond,
		RetryMaxDelay:       50 * time.Millisecond,
		RetrySeed:           1,
		SpeculationInterval: 25 * time.Millisecond,
		Metrics:             reg,
		Trace:               true,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(master.Close)
	obsAddr, err := master.ServeObservability("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	startWorker := func(cfg chaos.Config) {
		t.Helper()
		w, err := NewWorker(mustRegistry(t), WithChaos(chaos.New(cfg)))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Start(addr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Stop)
	}
	n := 0
	for i := 0; i < 5; i++ {
		startWorker(chaos.Config{Seed: int64(100 + i), DropRate: 0.3, GraceOps: 1})
		n++
	}
	startWorker(chaos.Config{Seed: 200, CrashRate: 1})
	n++
	for i := 0; i < 2; i++ {
		startWorker(chaos.Config{Seed: int64(300 + i), TaskLatency: chaos.Dist{Kind: chaos.DistFixed, Base: 300 * time.Millisecond}})
		n++
	}
	if err := master.WaitForWorkers(n, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	lines := testLines(t, 160)
	_, stats, err := master.Run(context.Background(), "wordcount", lines, 16)
	if err != nil {
		t.Fatalf("job did not survive the gauntlet: %v", err)
	}
	if stats.Reassignments == 0 || stats.Speculations == 0 {
		t.Fatalf("gauntlet produced no retries/speculation (stats %+v) — audit has nothing to check", stats)
	}

	trc := master.LastTrace()
	if trc == nil {
		t.Fatal("traced gauntlet produced no trace")
	}
	if open := trc.OpenLaunches(); open != 0 {
		t.Fatalf("%d launches left open after the gauntlet", open)
	}
	outcomes := trc.Outcomes()
	launches := 0
	for o, c := range outcomes {
		switch o {
		case outcomeOK, outcomeFailed, outcomeDuplicate, outcomeCancelled:
			launches += c
		default:
			t.Fatalf("non-terminal outcome %q in sealed trace", o)
		}
	}
	if outcomes[outcomeOK] != 16 {
		t.Fatalf("ok launches = %d, want 16 (one winner per shard); outcomes %v", outcomes[outcomeOK], outcomes)
	}
	if launches == 16 {
		t.Fatalf("only winning launches recorded; retries/speculation invisible (outcomes %v)", outcomes)
	}
	if got := outcomes[outcomeFailed] + outcomes[outcomeDuplicate] + outcomes[outcomeCancelled]; got == 0 {
		t.Fatalf("no failed/duplicate/cancelled launches despite %d reassignments", stats.Reassignments)
	}

	// The JSONL dump must contain no open spans: every task line has a
	// terminal outcome and a closed window.
	var buf bytes.Buffer
	if err := trc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var doc struct {
			Phase   string  `json:"phase"`
			Outcome string  `json:"outcome"`
			Start   float64 `json:"start"`
			End     float64 `json:"end"`
		}
		if err := json.Unmarshal([]byte(line), &doc); err != nil {
			t.Fatal(err)
		}
		if doc.Phase == "task" && doc.Outcome == "" {
			t.Fatalf("open task span in dump: %s", line)
		}
		if doc.End < doc.Start {
			t.Fatalf("unterminated span window in dump: %s", line)
		}
	}

	// Wasted work must surface in the breakdown.
	if b := trc.Breakdown(stats); b.Wasted <= 0 {
		t.Fatalf("chaos run attributed no wasted launch time: %+v", b)
	}

	// Strict-parse the chaos-soaked /metrics scrape: label escaping,
	// family ordering, histogram bucket invariants.
	resp, err := http.Get("http://" + obsAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	fams, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("chaos-soaked /metrics failed strict parse: %v", err)
	}
	byName := map[string]bool{}
	for _, f := range fams {
		byName[f.Name] = true
	}
	for _, want := range []string{"netmr_retries_total", "netmr_speculations_total", "netmr_rpc_seconds"} {
		if !byName[want] {
			t.Fatalf("family %s missing from scrape", want)
		}
	}
}

// TestTraceCancellationClosesLaunches: cancelling a job mid-flight must
// seal the trace and close the in-flight launches as cancelled — no
// span leaks on the abandon path.
func TestTraceCancellationClosesLaunches(t *testing.T) {
	master := startSleeperCluster(t, MasterConfig{
		TaskTimeout: 10 * time.Second,
		JobTimeout:  30 * time.Second,
		Trace:       true,
	}, 2)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	_, _, err := master.Run(ctx, "sleeper", []string{"fast:5", "slow:600"}, 2)
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	trc := master.LastTrace()
	if trc == nil {
		t.Fatal("cancelled run produced no trace")
	}
	if open := trc.OpenLaunches(); open != 0 {
		t.Fatalf("%d launches left open after cancellation", open)
	}
	outcomes := trc.Outcomes()
	if outcomes[outcomeCancelled] == 0 {
		t.Fatalf("no cancelled launches in trace (outcomes %v)", outcomes)
	}
	// The sealed trace rejects further launches.
	if id := trc.openLaunch("task", 0, 0, "late"); id != -1 {
		t.Fatalf("sealed trace accepted launch %d", id)
	}
}

// TestMixedClusterTraceByteIdentical: a cluster mixing trace-capable
// and trace-less workers must produce the same result as an untraced
// reference cluster, the trace-less peer's frames must carry no trace
// fields, and the trace must still account every launch (the trace-less
// peer's launches fall back to whole-window compute).
func TestMixedClusterTraceByteIdentical(t *testing.T) {
	master, err := NewMaster(mustRegistry(t), MasterConfig{
		TaskTimeout: 10 * time.Second, JobTimeout: 30 * time.Second, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(master.Close)

	traced, err := NewWorker(mustRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := traced.Start(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(traced.Stop)

	legacy, err := NewWorker(mustRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	legacy.caps = []string{capBinary, capBinaryExt, capBatch} // no trace
	if err := legacy.Start(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(legacy.Stop)

	if err := master.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	lines := testLines(t, 300)
	got, _, err := master.Run(context.Background(), "wordcount", lines, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := runShard(wordCountJob(), lines, newShardScratch())
	if !reflect.DeepEqual(got, want) {
		t.Fatal("mixed trace/legacy cluster result diverged from reference")
	}

	trc := master.LastTrace()
	if trc == nil {
		t.Fatal("no trace from mixed cluster")
	}
	if trc.OpenLaunches() != 0 {
		t.Fatal("open launches after mixed-cluster run")
	}
	if trc.Outcomes()[outcomeOK] != 8 {
		t.Fatalf("ok launches = %d, want 8", trc.Outcomes()[outcomeOK])
	}
	// The legacy worker ran launches (both workers admitted) but only the
	// traced worker may have produced sub-phase spans.
	workersWithSubs := map[string]bool{}
	workersWithTasks := map[string]bool{}
	for _, sp := range trc.Spans() {
		if sp.Launch < 0 {
			continue
		}
		if sp.Phase == "task" {
			workersWithTasks[sp.Worker] = true
		} else {
			workersWithSubs[sp.Worker] = true
		}
	}
	if len(workersWithTasks) != 2 {
		t.Fatalf("launches recorded on %d workers, want both", len(workersWithTasks))
	}
	if len(workersWithSubs) != 1 {
		t.Fatalf("worker sub-phase spans from %d workers, want exactly the traced one", len(workersWithSubs))
	}
}

// TestHealthzDegradedOnEvictionAndRecovery: /healthz must flip to 503
// "degraded" when a run needed reassignments (a worker died mid-job)
// and return to 200 "ok" after the next clean run.
func TestHealthzDegradedOnEvictionAndRecovery(t *testing.T) {
	master := startTracedCluster(t, 2, MasterConfig{
		MaxAttempts:    10,
		RetryBaseDelay: 2 * time.Millisecond,
		RetryMaxDelay:  20 * time.Millisecond,
		RetrySeed:      1,
	})
	obsAddr, err := master.ServeObservability("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	health := func() (int, map[string]any) {
		t.Helper()
		resp, err := http.Get("http://" + obsAddr + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, doc
	}

	if code, doc := health(); code != http.StatusOK || doc["status"] != "ok" {
		t.Fatalf("fresh master health = %d %v, want 200 ok", code, doc)
	}

	// A crashing worker joins; its failures force reassignments.
	crasher, err := NewWorker(mustRegistry(t), WithChaos(chaos.New(chaos.Config{Seed: 7, CrashRate: 1})))
	if err != nil {
		t.Fatal(err)
	}
	if err := crasher.Start(mustListenAddr(t, master)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(crasher.Stop)
	if err := master.WaitForWorkers(3, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	lines := testLines(t, 200)
	if _, stats, err := master.Run(context.Background(), "wordcount", lines, 8); err != nil {
		t.Fatal(err)
	} else if stats.Reassignments == 0 {
		t.Skip("crasher drew no shards; nothing to degrade on")
	}

	code, doc := health()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("health after reassigned run = %d %v, want 503", code, doc)
	}
	if doc["status"] != "degraded" {
		t.Fatalf("status = %v, want degraded", doc["status"])
	}

	// A clean run on the two healthy workers recovers the status.
	if _, stats, err := master.Run(context.Background(), "wordcount", lines, 8); err != nil {
		t.Fatal(err)
	} else if stats.Reassignments != 0 {
		t.Skipf("recovery run still degraded (stats %+v)", stats)
	}
	if code, doc := health(); code != http.StatusOK || doc["status"] != "ok" {
		t.Fatalf("health after clean run = %d %v, want 200 ok", code, doc)
	}
}

// mustListenAddr returns the master's bound address.
func mustListenAddr(t *testing.T, m *Master) string {
	t.Helper()
	if m.ln == nil {
		t.Fatal("master is not listening")
	}
	return m.ln.Addr().String()
}
