package netmr

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"ipso/internal/chaos"
	"ipso/internal/obs"
)

func TestBackoffDelayCapRespected(t *testing.T) {
	base := 20 * time.Millisecond
	max := 2 * time.Second
	for attempt := 1; attempt <= 40; attempt++ {
		d := backoffDelay(base, max, 0.2, 7, 0, attempt)
		if d > max {
			t.Fatalf("attempt %d: delay %v exceeds cap %v", attempt, d, max)
		}
		if d < 0 {
			t.Fatalf("attempt %d: negative delay %v", attempt, d)
		}
	}
}

func TestBackoffDelayDoublesWithoutJitter(t *testing.T) {
	base := 10 * time.Millisecond
	max := 500 * time.Millisecond
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 160 * time.Millisecond, 320 * time.Millisecond,
		500 * time.Millisecond, 500 * time.Millisecond,
	}
	for i, w := range want {
		// Jitter 0 means backoffDelay skips the jitter draw entirely.
		if d := backoffDelay(base, max, 0, 1, 0, i+1); d != w {
			t.Fatalf("attempt %d: got %v want %v", i+1, d, w)
		}
	}
}

func TestBackoffDelayJitterBoundedAndDeterministic(t *testing.T) {
	base := 100 * time.Millisecond
	max := 10 * time.Second
	jitter := 0.25
	for shard := 0; shard < 8; shard++ {
		for attempt := 1; attempt <= 6; attempt++ {
			nominal := backoffDelay(base, max, 0, 3, shard, attempt)
			lo := time.Duration(float64(nominal) * (1 - jitter))
			hi := time.Duration(float64(nominal) * (1 + jitter))
			d := backoffDelay(base, max, jitter, 3, shard, attempt)
			if d < lo || d > hi {
				t.Fatalf("shard %d attempt %d: delay %v outside [%v, %v]", shard, attempt, d, lo, hi)
			}
			if again := backoffDelay(base, max, jitter, 3, shard, attempt); again != d {
				t.Fatalf("shard %d attempt %d: %v then %v for the same seed", shard, attempt, d, again)
			}
			if other := backoffDelay(base, max, jitter, 4, shard, attempt); other == d {
				t.Fatalf("shard %d attempt %d: seeds 3 and 4 both produced %v", shard, attempt, d)
			}
		}
	}
}

func TestLatencyQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if q := latencyQuantile(xs, 0.5); q != 3 {
		t.Fatalf("median of 1..5 = %v, want 3", q)
	}
	if q := latencyQuantile(xs, 1); q != 5 {
		t.Fatalf("max of 1..5 = %v, want 5", q)
	}
	if got := fmt.Sprint(xs); got != "[5 1 3 2 4]" {
		t.Fatalf("quantile mutated its input: %s", got)
	}
}

// TestRetryBudgetExhaustionSurfacesLastError drives every dispatch into
// an injected drop (master-side chaos, DropRate 1 with the hello read
// exempt) so one shard burns its full MaxAttempts budget; the returned
// error must name the shard, the attempt count, and wrap the final
// injected error.
func TestRetryBudgetExhaustionSurfacesLastError(t *testing.T) {
	inj := chaos.New(chaos.Config{Seed: 11, DropRate: 1})
	master, err := NewMaster(mustRegistry(t), MasterConfig{
		TaskTimeout:    2 * time.Second,
		JobTimeout:     10 * time.Second,
		MaxAttempts:    3,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  4 * time.Millisecond,
		Chaos:          inj,
		Metrics:        obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(master.Close)
	for i := 0; i < 4; i++ {
		w, err := NewWorker(mustRegistry(t))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Start(addr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Stop)
	}
	if err := master.WaitForWorkers(4, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	_, stats, err := master.Run(context.Background(), "wordcount", testLines(t, 8), 1)
	if err == nil {
		t.Fatal("expected retry budget exhaustion, got success")
	}
	if !strings.Contains(err.Error(), "shard 0 failed 3 times") {
		t.Fatalf("error does not name the shard and attempt count: %v", err)
	}
	if !errors.Is(err, chaos.ErrInjectedDrop) {
		t.Fatalf("error does not wrap the last launch error: %v", err)
	}
	if stats.Reassignments != 2 {
		t.Fatalf("Reassignments = %d, want 2 (three launches, two requeues)", stats.Reassignments)
	}
}

// sleeperRegistry registers a job whose map cost is written in the
// record itself ("key:millis"), so tests can shape per-shard latency
// exactly and deterministically.
func sleeperRegistry(t *testing.T) *Registry {
	t.Helper()
	r, err := NewRegistry(Job{
		Name: "sleeper",
		Map: func(record string, emit func(string, float64)) {
			key, msText, _ := strings.Cut(record, ":")
			ms, _ := strconv.Atoi(msText)
			time.Sleep(time.Duration(ms) * time.Millisecond)
			emit(key, 1)
		},
		Reduce: func(_ string, values []float64) float64 {
			total := 0.0
			for _, v := range values {
				total += v
			}
			return total
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func startSleeperCluster(t *testing.T, cfg MasterConfig, workers int) *Master {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	master, err := NewMaster(sleeperRegistry(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(master.Close)
	for i := 0; i < workers; i++ {
		w, err := NewWorker(sleeperRegistry(t))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Start(addr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Stop)
	}
	if err := master.WaitForWorkers(workers, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return master
}

// TestDuplicateSpeculativeResultDiscardedOnce engineers a race the
// original launch wins: shard 0 sleeps 300 ms, its clone (launched once
// the fast shards establish a ~60 ms threshold) also sleeps 300 ms, so
// the clone's result lands while shard 1 (700 ms) is still pending —
// and must be discarded exactly once. Shard 1's clone is still in
// flight when the job completes, so it is counted as a cancellation.
func TestDuplicateSpeculativeResultDiscardedOnce(t *testing.T) {
	master := startSleeperCluster(t, MasterConfig{
		TaskTimeout:                10 * time.Second,
		JobTimeout:                 30 * time.Second,
		SpeculationInterval:        25 * time.Millisecond,
		SpeculationQuantile:        0.5,
		SpeculationMultiplier:      2,
		SpeculationMinObservations: 3,
	}, 4)

	records := []string{"slow:300", "slower:700", "c:30", "c:30", "c:30", "c:30", "c:30", "c:30"}
	result, stats, err := master.Run(context.Background(), "sleeper", records, len(records))
	if err != nil {
		t.Fatal(err)
	}
	if result["slow"] != 1 || result["slower"] != 1 || result["c"] != 6 {
		t.Fatalf("merge double-counted a duplicate result: %v", result)
	}
	if stats.Completed != len(records) {
		t.Fatalf("Completed = %d, want %d", stats.Completed, len(records))
	}
	if stats.Speculations != 2 {
		t.Fatalf("Speculations = %d, want 2 (one clone per straggler)", stats.Speculations)
	}
	if stats.Duplicates != 1 {
		t.Fatalf("Duplicates = %d, want exactly 1 (shard 0's late clone)", stats.Duplicates)
	}
	if stats.Cancellations != 1 {
		t.Fatalf("Cancellations = %d, want 1 (shard 1's clone outlived the job)", stats.Cancellations)
	}
}

// TestContextCancellationAbortsSpeculation cancels the job while an
// original launch and its speculative clone are both in flight; Run
// must return the context error promptly and account for both
// abandoned launches.
func TestContextCancellationAbortsSpeculation(t *testing.T) {
	master := startSleeperCluster(t, MasterConfig{
		TaskTimeout:                10 * time.Second,
		JobTimeout:                 30 * time.Second,
		SpeculationInterval:        20 * time.Millisecond,
		SpeculationMultiplier:      2,
		SpeculationMinObservations: 1,
	}, 2)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, stats, err := master.Run(ctx, "sleeper", []string{"fast:5", "slow:600"}, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if wall := time.Since(start); wall > 450*time.Millisecond {
		t.Fatalf("Run took %v after cancellation; it waited for in-flight launches", wall)
	}
	if stats.Speculations != 1 {
		t.Fatalf("Speculations = %d, want 1 (slow shard cloned before cancel)", stats.Speculations)
	}
	if stats.Cancellations != 2 {
		t.Fatalf("Cancellations = %d, want 2 (original + clone abandoned)", stats.Cancellations)
	}
}

// TestChaosGauntlet is the end-to-end resilience proof from the issue:
// 9 workers dropping 30% of their writes, one worker that crashes on
// its first task, and two slow-but-reliable workers that force
// speculation — the job must still finish with a correct result, and
// the retry/speculation work must be visible on /metrics.
func TestChaosGauntlet(t *testing.T) {
	reg := obs.NewRegistry()
	master, err := NewMaster(mustRegistry(t), MasterConfig{
		TaskTimeout:         5 * time.Second,
		JobTimeout:          60 * time.Second,
		MaxAttempts:         10,
		RetryBaseDelay:      2 * time.Millisecond,
		RetryMaxDelay:       50 * time.Millisecond,
		RetrySeed:           1,
		SpeculationInterval: 25 * time.Millisecond,
		Metrics:             reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(master.Close)
	obsAddr, err := master.ServeObservability("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	startWorker := func(i int, cfg chaos.Config) {
		t.Helper()
		w, err := NewWorker(mustRegistry(t), WithChaos(chaos.New(cfg)))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Start(addr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Stop)
	}
	n := 0
	for i := 0; i < 9; i++ { // flaky: 30% of writes dropped, hello exempt
		startWorker(n, chaos.Config{Seed: int64(100 + i), DropRate: 0.3, GraceOps: 1})
		n++
	}
	// One permanent casualty: crashes on its first task, never retried
	// on — the "machine that died mid-job".
	startWorker(n, chaos.Config{Seed: 200, CrashRate: 1})
	n++
	for i := 0; i < 2; i++ { // slow but reliable: manufacture stragglers
		startWorker(n, chaos.Config{Seed: int64(300 + i), TaskLatency: chaos.Dist{Kind: chaos.DistFixed, Base: 300 * time.Millisecond}})
		n++
	}
	if err := master.WaitForWorkers(n, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	lines := testLines(t, 160)
	want := runShard(wordCountJob(), lines, newShardScratch())

	result, stats, err := master.Run(context.Background(), "wordcount", lines, 16)
	if err != nil {
		t.Fatalf("job did not survive the gauntlet: %v (stats %+v)", err, stats)
	}
	if len(result) != len(want) {
		t.Fatalf("result has %d keys, want %d", len(result), len(want))
	}
	for k, v := range want {
		if result[k] != v {
			t.Fatalf("key %q = %v, want %v", k, result[k], v)
		}
	}
	if stats.Completed != 16 {
		t.Fatalf("Completed = %d, want 16", stats.Completed)
	}
	if stats.Reassignments == 0 {
		t.Fatal("expected reassignments under 30% drops and a crashed worker")
	}
	if stats.Speculations == 0 {
		t.Fatal("expected speculation against the 300 ms stragglers")
	}

	// The work must be visible on the wire: scrape /metrics.
	resp, err := http.Get("http://" + obsAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, metric := range []string{"netmr_retries_total", "netmr_speculations_total"} {
		val, ok := scrapeValue(text, metric)
		if !ok {
			t.Fatalf("metric %s missing from /metrics:\n%s", metric, text)
		}
		if val <= 0 {
			t.Fatalf("metric %s = %v, want > 0", metric, val)
		}
	}
}

// scrapeValue pulls an unlabelled sample value out of Prometheus text.
func scrapeValue(text, name string) (float64, bool) {
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}
