package netmr

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"
)

// combineSumJob is wordcount with a Combine: the streaming fold path,
// which the spill merge must reproduce exactly too.
func combineSumJob() Job {
	j := wordCountJob()
	j.Combine = func(a, b float64) float64 { return a + b }
	return j
}

// randomTaskPartials builds one reduce partition's gathered inputs under
// a chosen key distribution: tasks map-task ids with skewed, uniform or
// degenerate key spaces, values small integers so float folds stay exact.
func randomTaskPartials(rng *rand.Rand, tasks, keys int, dist string) []taskPartial {
	inputs := make([]taskPartial, 0, tasks)
	for task := 0; task < tasks; task++ {
		m := map[string]float64{}
		n := 1 + rng.Intn(keys)
		for i := 0; i < n; i++ {
			var k string
			switch dist {
			case "skewed": // zipf-ish: low key ids dominate
				k = fmt.Sprintf("key-%d", rng.Intn(1+rng.Intn(keys)))
			case "disjoint": // every task its own key space
				k = fmt.Sprintf("task%d-key-%d", task, i)
			case "same": // every task hits one hot key
				k = "hot"
			default: // uniform
				k = fmt.Sprintf("key-%d", rng.Intn(keys))
			}
			m[k] = float64(1 + rng.Intn(5))
		}
		inputs = append(inputs, taskPartial{task: task, partial: m})
	}
	return inputs
}

// TestSpillFoldMatchesInMemory is the spill property test: for every
// budget — including budgets so tight every add flushes a run — the
// loser-tree merge of spilled runs must produce exactly the fold the
// all-in-memory path produces, across key distributions and both fold
// paths (Combine and group-then-Reduce).
func TestSpillFoldMatchesInMemory(t *testing.T) {
	jobs := map[string]Job{"reduce": wordCountJob(), "combine": combineSumJob()}
	budgets := []int64{1, 64, 256, 2048, 1 << 20}
	for _, dist := range []string{"uniform", "skewed", "disjoint", "same"} {
		for jobName, job := range jobs {
			rng := rand.New(rand.NewSource(int64(len(dist)) * 31))
			for trial := 0; trial < 3; trial++ {
				inputs := randomTaskPartials(rng, 2+rng.Intn(12), 1+rng.Intn(40), dist)
				ref := make([]taskPartial, len(inputs))
				copy(ref, inputs)
				sort.Slice(ref, func(i, j int) bool { return ref[i].task < ref[j].task })
				want := foldTaskPartials(job, ref)
				for _, budget := range budgets {
					f := newSpillFolder(budget, t.TempDir())
					for _, in := range inputs {
						if err := f.add(in.task, in.partial); err != nil {
							t.Fatalf("%s/%s budget=%d: add: %v", dist, jobName, budget, err)
						}
					}
					got, merged, err := f.fold(job)
					if err != nil {
						t.Fatalf("%s/%s budget=%d: fold: %v", dist, jobName, budget, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s/%s budget=%d (merged=%v): fold diverged from in-memory reference", dist, jobName, budget, merged)
					}
					if budget == 1 && !merged && f.spillRuns == 0 && len(want) > 0 {
						t.Fatalf("%s/%s: 1-byte budget never spilled", dist, jobName)
					}
				}
			}
		}
	}
}

// TestInterStoreSpillMatchesMemory: the map-side store must serve the
// identical partition slices whether a task's set is resident or read
// back from its spill file, at every budget.
func TestInterStoreSpillMatchesMemory(t *testing.T) {
	const R, tasks = 3, 6
	rng := rand.New(rand.NewSource(11))
	sets := make([][]partitionPartial, tasks)
	for task := range sets {
		parts := make([]partitionPartial, 0, R)
		for p := 0; p < R; p++ {
			m := map[string]float64{}
			for i := 0; i < 1+rng.Intn(30); i++ {
				m[fmt.Sprintf("k%d-%d", p, rng.Intn(20))] = float64(rng.Intn(9))
			}
			parts = append(parts, partitionPartial{ID: p, Partial: m})
		}
		sets[task] = parts
	}
	reference := newInterStore()
	for task, parts := range sets {
		if _, _, _, err := reference.put("wc#1", task, parts, R); err != nil {
			t.Fatal(err)
		}
	}
	allTasks := make([]int, tasks)
	for i := range allTasks {
		allTasks[i] = i
	}
	for _, budget := range []int64{1, 200, 4096, 1 << 20} {
		s := newInterStore()
		s.configure(budget, t.TempDir())
		var spilled int64
		for task, parts := range sets {
			_, n, _, err := s.put("wc#1", task, parts, R)
			if err != nil {
				t.Fatalf("budget=%d: put: %v", budget, err)
			}
			spilled += n
		}
		for p := 0; p < R; p++ {
			want, err := reference.slice("wc#1", p, allTasks)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.slice("wc#1", p, allTasks)
			if err != nil {
				t.Fatalf("budget=%d: slice(%d): %v", budget, p, err)
			}
			// A spilled empty section reads back as an empty map where the
			// resident path keeps nil; both mean "held, no keys".
			for i := range got {
				if len(got[i].Partial) == 0 {
					got[i].Partial = nil
				}
				if len(want[i].Partial) == 0 {
					want[i].Partial = nil
				}
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("budget=%d: partition %d slice diverged from resident reference", budget, p)
			}
		}
		peak, totalSpilled, runs := s.stats()
		if peak > budget {
			t.Errorf("budget=%d: peak resident bytes %d exceed the budget", budget, peak)
		}
		if budget == 1 && (runs == 0 || totalSpilled == 0 || totalSpilled != spilled) {
			t.Errorf("budget=1: spill accounting runs=%d spilled=%d (put-reported %d)", runs, totalSpilled, spilled)
		}
	}
}

// TestEvictedRunReducersReset is the cross-run eviction regression: a
// new run must adopt its own reducer count, so a stale fetch against the
// evicted run — even one whose partition id was valid under the old
// count — gets an error frame, not a serve from a confused table.
func TestEvictedRunReducersReset(t *testing.T) {
	w, err := NewWorker(mustRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := w.startFetchListener()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)

	parts4 := []partitionPartial{
		{ID: 0, Partial: map[string]float64{"a": 1}},
		{ID: 3, Partial: map[string]float64{"d": 4}},
	}
	if _, _, _, err := w.store.put("wc#1", 0, parts4, 4); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := fetchPartition(addr, "wc#1", 3, []int{0}, defaultShuffleTimeout, false); err != nil {
		t.Fatalf("partition 3 under the 4-reducer run refused: %v", err)
	}
	// New run with a smaller reducer count evicts the old one wholesale.
	if _, _, _, err := w.store.put("wc#2", 0, []partitionPartial{{ID: 0, Partial: map[string]float64{"z": 1}}}, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := fetchPartition(addr, "wc#1", 0, []int{0}, defaultShuffleTimeout, false); err == nil {
		t.Error("stale fetch against the evicted run served")
	}
	if _, _, _, err := fetchPartition(addr, "wc#2", 3, []int{0}, defaultShuffleTimeout, false); err == nil {
		t.Error("partition valid only under the evicted run's count served")
	}
	if _, _, _, err := fetchPartition(addr, "wc#2", 1, []int{0}, defaultShuffleTimeout, false); err != nil {
		t.Errorf("valid fetch against the new run refused: %v", err)
	}
}

// TestSpillCluster is the out-of-core e2e: a cluster whose workers run
// under a tight spill budget must produce the byte-identical reference
// result while actually spilling, never holding more than the budget
// resident in the map-output store.
func TestSpillCluster(t *testing.T) {
	const workers, shards, R = 3, 8, 3
	const budget = 2048
	master, err := NewMaster(mustRegistry(t), MasterConfig{
		TaskTimeout: 10 * time.Second, JobTimeout: 60 * time.Second,
		Reducers: R, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(master.Close)
	pool := make([]*Worker, 0, workers)
	for i := 0; i < workers; i++ {
		w, err := NewWorker(mustRegistry(t), WithWorkerConfig(WorkerConfig{
			SpillBudget: budget, SpillDir: t.TempDir(),
		}))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Start(addr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Stop)
		pool = append(pool, w)
	}
	if err := master.WaitForWorkers(workers, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	lines := testLines(t, 1500)
	got, stats, err := master.Run(context.Background(), "wordcount", lines, shards)
	if err != nil {
		t.Fatal(err)
	}
	want := runShard(wordCountJob(), lines, newShardScratch())
	if !reflect.DeepEqual(got, want) {
		t.Fatal("spill-budget cluster result diverged from reference")
	}
	if stats.SpillRuns == 0 || stats.SpilledBytes == 0 {
		t.Errorf("spill accounting empty under a %d-byte budget: runs=%d bytes=%d", budget, stats.SpillRuns, stats.SpilledBytes)
	}
	for i, w := range pool {
		peak, _, _ := w.StoreStats()
		if peak > budget {
			t.Errorf("worker %d: peak resident store %d bytes exceeds the %d budget", i, peak, budget)
		}
	}
	if trc := master.LastTrace(); trc != nil {
		b := trc.Breakdown(stats)
		if b.Spill <= 0 {
			t.Errorf("trace breakdown attributes no spill time: %+v", b)
		}
	}
}

// TestReplicaRecoveryAfterMapperLoss is the chaos test of the tentpole:
// a mapper that dies right after its first mapdone — shuffle listener
// and only primary copy gone with it — must not fail the job or change
// its output: the reduce phase reroutes to the peer replica (or the
// master-held copy / lineage re-execution) and completes.
func TestReplicaRecoveryAfterMapperLoss(t *testing.T) {
	const workers, shards, R = 3, 6, 3
	master, err := NewMaster(mustRegistry(t), MasterConfig{
		TaskTimeout: 5 * time.Second, JobTimeout: 60 * time.Second, Reducers: R,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(master.Close)
	for i := 0; i < workers; i++ {
		w, err := NewWorker(mustRegistry(t))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			w.killAfterMapdone = true
		}
		if err := w.Start(addr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Stop)
	}
	if err := master.WaitForWorkers(workers, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	lines := testLines(t, 800)
	got, stats, err := master.Run(context.Background(), "wordcount", lines, shards)
	if err != nil {
		t.Fatal(err)
	}
	want := runShard(wordCountJob(), lines, newShardScratch())
	if !reflect.DeepEqual(got, want) {
		t.Fatal("post-recovery result diverged from reference")
	}
	if stats.ReduceTasks != R {
		t.Errorf("ReduceTasks = %d, want %d", stats.ReduceTasks, R)
	}
	// The dead mapper completed at least its first shard, so at least one
	// partition had to route around the loss — via the peer replica in
	// this all-comp cluster.
	if stats.ReplicaFetches == 0 {
		t.Errorf("ReplicaFetches = 0, want > 0 (recovery must use the replica, not silently lose data)")
	}
	if stats.RecoveryWall <= 0 {
		t.Errorf("RecoveryWall = %v, want > 0", stats.RecoveryWall)
	}
}
