package netmr

import "fmt"

// Dependency-free LZ77 block codec for frame compression, in the LZ4
// block format shape: a stream of sequences, each a token byte (literal
// length in the high nibble, match length − 4 in the low nibble, 15
// meaning "extended by 255-run bytes"), the literals, a 2-byte
// little-endian match offset, and the match-length extension. The final
// sequence is literals only. Intermediate partials are sorted key/value
// pair lists with heavy prefix sharing, so even this greedy matcher
// routinely halves fetchresult frames; the point is shuffle bytes off
// the wire without a cgo or module dependency.

const (
	// lzMinMatch is the shortest match worth encoding (token semantics:
	// low nibble stores matchLen − lzMinMatch).
	lzMinMatch = 4
	// lzMaxOffset bounds the back-reference distance to what 2 bytes
	// address.
	lzMaxOffset = 65535
	// lzHashLog sizes the match table: 1<<lzHashLog heads.
	lzHashLog = 14
	// lzTailLiterals: the last bytes of the input are always emitted as
	// literals (matching LZ4's end-of-block rule), which keeps the
	// decompressor's copy loops simple and safe.
	lzTailLiterals = 12
)

// lzHash maps a 4-byte sequence to a table slot.
func lzHash(v uint32) uint32 {
	return (v * 2654435761) >> (32 - lzHashLog)
}

func lzLoad32(src []byte, i int) uint32 {
	return uint32(src[i]) | uint32(src[i+1])<<8 | uint32(src[i+2])<<16 | uint32(src[i+3])<<24
}

// lzCompress appends a compressed copy of src to dst and returns the
// result. The output decompresses to exactly src via lzDecompress; it is
// not guaranteed to be shorter than src (callers compare and keep the
// raw bytes when compression does not pay).
func lzCompress(dst, src []byte) []byte {
	var table [1 << lzHashLog]int32 // head positions + 1 (0 = empty)
	anchor := 0                     // start of pending literals
	si := 0
	limit := len(src) - lzTailLiterals

	emit := func(litEnd, matchLen, offset int) {
		litLen := litEnd - anchor
		token := 0
		if litLen >= 15 {
			token = 15 << 4
		} else {
			token = litLen << 4
		}
		ml := 0
		if matchLen > 0 {
			ml = matchLen - lzMinMatch
			if ml >= 15 {
				token |= 15
			} else {
				token |= ml
			}
		}
		dst = append(dst, byte(token))
		if litLen >= 15 {
			for n := litLen - 15; ; n -= 255 {
				if n >= 255 {
					dst = append(dst, 255)
					continue
				}
				dst = append(dst, byte(n))
				break
			}
		}
		dst = append(dst, src[anchor:litEnd]...)
		if matchLen == 0 {
			return // final literal-only sequence
		}
		dst = append(dst, byte(offset), byte(offset>>8))
		if ml >= 15 {
			for n := ml - 15; ; n -= 255 {
				if n >= 255 {
					dst = append(dst, 255)
					continue
				}
				dst = append(dst, byte(n))
				break
			}
		}
	}

	for si < limit {
		v := lzLoad32(src, si)
		h := lzHash(v)
		cand := int(table[h]) - 1
		table[h] = int32(si + 1)
		if cand < 0 || si-cand > lzMaxOffset || lzLoad32(src, cand) != v {
			si++
			continue
		}
		// Extend the match forward; never into the literal tail.
		matchLen := lzMinMatch
		maxLen := len(src) - lzTailLiterals + (lzTailLiterals - 5) - si // keep 5 literal bytes minimum
		if maxLen > len(src)-si {
			maxLen = len(src) - si
		}
		for matchLen < maxLen && src[cand+matchLen] == src[si+matchLen] {
			matchLen++
		}
		emit(si, matchLen, si-cand)
		si += matchLen
		anchor = si
	}
	emit(len(src), 0, 0)
	return dst
}

// lzDecompress appends the decompressed form of src to dst and returns
// it, strictly bounds-checked: a malformed or truncated block — or one
// that would expand past max bytes — errors instead of reading or
// writing out of range. dst should be empty (its existing bytes are not
// part of the window).
func lzDecompress(dst, src []byte, max int) ([]byte, error) {
	base := len(dst)
	si := 0
	readLen := func(n int) (int, error) {
		if n != 15 {
			return n, nil
		}
		for {
			if si >= len(src) {
				return 0, fmt.Errorf("netmr: lz: truncated length run at byte %d", si)
			}
			b := src[si]
			si++
			n += int(b)
			if n < 0 {
				return 0, fmt.Errorf("netmr: lz: length overflow at byte %d", si)
			}
			if b != 255 {
				return n, nil
			}
		}
	}
	for si < len(src) {
		token := src[si]
		si++
		litLen, err := readLen(int(token >> 4))
		if err != nil {
			return nil, err
		}
		if litLen > len(src)-si {
			return nil, fmt.Errorf("netmr: lz: %d literals overrun input at byte %d", litLen, si)
		}
		if len(dst)-base+litLen > max {
			return nil, fmt.Errorf("netmr: lz: output exceeds the declared %d bytes", max)
		}
		dst = append(dst, src[si:si+litLen]...)
		si += litLen
		if si == len(src) {
			return dst, nil // final sequence carries no match
		}
		if len(src)-si < 2 {
			return nil, fmt.Errorf("netmr: lz: truncated offset at byte %d", si)
		}
		offset := int(src[si]) | int(src[si+1])<<8
		si += 2
		if offset == 0 || offset > len(dst)-base {
			return nil, fmt.Errorf("netmr: lz: offset %d outside the %d-byte window", offset, len(dst)-base)
		}
		matchLen, err := readLen(int(token & 0x0f))
		if err != nil {
			return nil, err
		}
		matchLen += lzMinMatch
		if len(dst)-base+matchLen > max {
			return nil, fmt.Errorf("netmr: lz: output exceeds the declared %d bytes", max)
		}
		// Byte-at-a-time copy: overlapping matches (offset < matchLen)
		// must re-read bytes this very copy produced.
		from := len(dst) - offset
		for i := 0; i < matchLen; i++ {
			dst = append(dst, dst[from+i])
		}
	}
	return nil, fmt.Errorf("netmr: lz: input ended inside a sequence")
}
