package netmr

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestPartitionIndex pins down the routing contract both sides of the
// wire depend on: deterministic, in range, degenerate at parts<=1, and
// spread across partitions for realistic key sets.
func TestPartitionIndex(t *testing.T) {
	keys := []string{"", "a", "alpha", "beta", "πκλ", strings.Repeat("k", 300)}
	for _, k := range keys {
		if got := partitionIndex(k, 1); got != 0 {
			t.Errorf("partitionIndex(%q, 1) = %d, want 0", k, got)
		}
		if got := partitionIndex(k, 0); got != 0 {
			t.Errorf("partitionIndex(%q, 0) = %d, want 0", k, got)
		}
		for _, parts := range []int{2, 3, 7, 64} {
			got := partitionIndex(k, parts)
			if got < 0 || got >= parts {
				t.Fatalf("partitionIndex(%q, %d) = %d out of range", k, parts, got)
			}
			if again := partitionIndex(k, parts); again != got {
				t.Fatalf("partitionIndex(%q, %d) not deterministic: %d then %d", k, parts, got, again)
			}
		}
	}
	// 1000 distinct keys over 8 partitions: every partition must get some
	// share — a fixed hash seed makes this deterministic, not flaky.
	counts := make([]int, 8)
	for i := 0; i < 1000; i++ {
		counts[partitionIndex(fmt.Sprintf("key-%d", i), 8)]++
	}
	for p, n := range counts {
		if n == 0 {
			t.Errorf("partition %d received no keys out of 1000", p)
		}
	}
}

// TestRunShardPartitioned: the partitioned shard execution must be a
// pure re-arrangement of the flat one — same keys, same values, each key
// in exactly the partition partitionIndex assigns, empty partitions
// omitted.
func TestRunShardPartitioned(t *testing.T) {
	lines := testLines(t, 120)
	jobs := map[string]Job{"reduce": wordCountJob()}
	combined := wordCountJob()
	combined.Combine = func(acc, v float64) float64 { return acc + v }
	jobs["combine"] = combined

	for name, job := range jobs {
		t.Run(name, func(t *testing.T) {
			want := runShard(job, lines, newShardScratch())
			for _, parts := range []int{1, 2, 4, 9} {
				got := runShardPartitioned(job, lines, newShardScratch(), parts)
				flat := map[string]float64{}
				for _, p := range got {
					if p.ID < 0 || p.ID >= parts {
						t.Fatalf("parts=%d: partition id %d out of range", parts, p.ID)
					}
					if len(p.Partial) == 0 {
						t.Fatalf("parts=%d: empty partition %d shipped", parts, p.ID)
					}
					for k, v := range p.Partial {
						if idx := partitionIndex(k, parts); idx != p.ID {
							t.Fatalf("parts=%d: key %q in partition %d, hashes to %d", parts, k, p.ID, idx)
						}
						flat[k] = v
					}
				}
				if !reflect.DeepEqual(flat, want) {
					t.Fatalf("parts=%d: partitioned union diverged from flat shard result", parts)
				}
			}
		})
	}
}

// TestMergeEngineMatchesSerialMerge drives the engine with a mix of
// pre-partitioned and flat feeds, in shuffled arrival orders, and checks
// the result is byte-identical to the legacy serial merge — for both the
// Combine fold and the grouped Reduce paths, at several widths.
func TestMergeEngineMatchesSerialMerge(t *testing.T) {
	lines := testLines(t, 300)
	const shards = 10
	per := len(lines) / shards

	plain := wordCountJob()
	combined := wordCountJob()
	combined.Combine = func(acc, v float64) float64 { return acc + v }

	for name, job := range map[string]Job{"reduce": plain, "combine": combined} {
		t.Run(name, func(t *testing.T) {
			partials := make([]map[string]float64, shards)
			for i := range partials {
				partials[i] = runShard(job, lines[i*per:(i+1)*per], newShardScratch())
			}
			want := serialMerge(job, partials)

			for _, parts := range []int{1, 2, 4, 7} {
				for seed := int64(0); seed < 3; seed++ {
					eng := newMergeEngine(job, parts, shards)
					order := rand.New(rand.NewSource(seed)).Perm(shards)
					for _, i := range order {
						if i%2 == 0 {
							// Even shards arrive pre-partitioned (a "part" worker)...
							eng.feed(runShardPartitioned(job, lines[i*per:(i+1)*per], newShardScratch(), parts), nil)
						} else {
							// ...odd shards arrive flat (legacy or non-part worker).
							eng.feed(nil, partials[i])
						}
					}
					got, err := eng.finalize(context.Background())
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("parts=%d seed=%d: engine result diverged from serial merge", parts, seed)
					}
				}
			}
		})
	}
}

// TestMergeEngineShutdownIdempotent: an abandoned engine (Run erroring
// out mid-job) must be safe to shut down repeatedly, including after
// finalize.
func TestMergeEngineShutdownIdempotent(t *testing.T) {
	eng := newMergeEngine(wordCountJob(), 3, 4)
	eng.feed(nil, map[string]float64{"a": 1})
	eng.shutdown()
	eng.shutdown()
	if _, err := eng.finalize(context.Background()); err != nil {
		t.Fatal(err)
	}
	if d := eng.overlapped(); d <= 0 {
		t.Errorf("overlapped busy after feed = %v, want > 0", d)
	}
	fresh := newMergeEngine(wordCountJob(), 2, 1)
	if d := fresh.overlapped(); d != 0 {
		t.Errorf("overlapped busy of unfed engine = %v, want 0", d)
	}
	fresh.shutdown()
}

// TestValidateParts: partition ids outside [0, P) must be rejected at
// dispatch, never routed.
func TestValidateParts(t *testing.T) {
	ok := []partitionPartial{{ID: 0}, {ID: 3}}
	if err := validateParts(ok, 4); err != nil {
		t.Errorf("valid parts rejected: %v", err)
	}
	for _, bad := range [][]partitionPartial{
		{{ID: -1}},
		{{ID: 4}},
		{{ID: 0}, {ID: 99}},
	} {
		if err := validateParts(bad, 4); err == nil {
			t.Errorf("validateParts(%+v, 4) accepted out-of-range id", bad)
		}
	}
}

// runWordCount runs one wordcount job on a fresh cluster with the given
// master config and returns the result and stats.
func runWordCount(t *testing.T, cfg MasterConfig, workers int, lines []string, shards int) (map[string]float64, Stats) {
	t.Helper()
	master, err := NewMaster(mustRegistry(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(master.Close)
	for i := 0; i < workers; i++ {
		w, err := NewWorker(mustRegistry(t))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Start(addr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Stop)
	}
	if err := master.WaitForWorkers(workers, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	out, stats, err := master.Run(context.Background(), "wordcount", lines, shards)
	if err != nil {
		t.Fatal(err)
	}
	return out, stats
}

// TestResultsIdenticalAcrossPartitionConfigs: the partition count, the
// overlap, and the SerialMerge fallback are pure performance knobs — the
// reduced output must be identical under every configuration.
func TestResultsIdenticalAcrossPartitionConfigs(t *testing.T) {
	lines := testLines(t, 500)
	want := runShard(wordCountJob(), lines, newShardScratch())

	base := MasterConfig{TaskTimeout: 10 * time.Second, JobTimeout: 30 * time.Second}
	configs := map[string]MasterConfig{
		"serial":       {TaskTimeout: base.TaskTimeout, JobTimeout: base.JobTimeout, SerialMerge: true},
		"partitions-1": {TaskTimeout: base.TaskTimeout, JobTimeout: base.JobTimeout, Partitions: 1},
		"partitions-3": {TaskTimeout: base.TaskTimeout, JobTimeout: base.JobTimeout, Partitions: 3},
		"partitions-8": {TaskTimeout: base.TaskTimeout, JobTimeout: base.JobTimeout, Partitions: 8},
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			got, stats := runWordCount(t, cfg, 2, lines, 12)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: result diverged from local reference", name)
			}
			if cfg.SerialMerge {
				if stats.MergeOverlapWall != 0 {
					t.Errorf("SerialMerge overlapped %v, want 0", stats.MergeOverlapWall)
				}
				if stats.Partitions != 1 {
					t.Errorf("SerialMerge Partitions = %d, want 1", stats.Partitions)
				}
			} else if cfg.Partitions > 1 && stats.PrePartitioned == 0 {
				t.Errorf("%s: no result arrived pre-partitioned (PrePartitioned = 0)", name)
			}
			if stats.TotalWall > stats.SplitWall+stats.MergeWall {
				t.Errorf("%s: TotalWall %v > SplitWall+MergeWall %v", name, stats.TotalWall, stats.SplitWall+stats.MergeWall)
			}
		})
	}
}

// TestMixedClusterPartitioned is the three-generation e2e: one legacy
// v1 JSON worker, one v2 binary worker without the part capability, and
// one fully current worker share a partitioned master. The job must
// produce exactly the single-process reference result, every generation
// must run shards, and at least the current worker must pre-partition.
func TestMixedClusterPartitioned(t *testing.T) {
	master, err := NewMaster(mustRegistry(t), MasterConfig{
		TaskTimeout: 10 * time.Second, JobTimeout: 30 * time.Second, Partitions: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(master.Close)

	// Generation 1: JSON line protocol, no capabilities at all.
	legacyJSONWorker(t, addr, wordCountJob())
	// Generation 2: binary codec but no part capability — ships flat
	// maps over v2 frames; the master splits them on arrival.
	unpart, err := NewWorker(mustRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	unpart.caps = []string{capBinary}
	if err := unpart.Start(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(unpart.Stop)
	// Generation 3: current worker, pre-partitions every result.
	current, err := NewWorker(mustRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := current.Start(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(current.Stop)
	if err := master.WaitForWorkers(3, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	lines := testLines(t, 600)
	got, stats, err := master.Run(context.Background(), "wordcount", lines, 18)
	if err != nil {
		t.Fatal(err)
	}
	want := runShard(wordCountJob(), lines, newShardScratch())
	if !reflect.DeepEqual(got, want) {
		t.Fatal("mixed-generation cluster result diverged from reference")
	}
	if stats.PrePartitioned == 0 {
		t.Error("no pre-partitioned result despite a part-capable worker")
	}
	if stats.PrePartitioned >= stats.Completed {
		t.Errorf("PrePartitioned %d should be below Completed %d in a mixed cluster", stats.PrePartitioned, stats.Completed)
	}
	for _, ws := range stats.PerWorker {
		if ws.ShardsRun == 0 {
			t.Errorf("worker %s ran no shards in the mixed cluster", ws.ID)
		}
	}
}

// rogueJSONWorker dials the master with a plain JSON hello and answers
// every task with the frame reply builds — the malformed shapes a
// misbehaving or malicious worker could ship, which must never crash
// the master.
func rogueJSONWorker(t *testing.T, addr string, job Job, reply func(taskID, attempt int, partial map[string]float64) map[string]any) {
	t.Helper()
	raw, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = raw.Close() })
	enc := json.NewEncoder(raw)
	dec := json.NewDecoder(bufio.NewReader(raw))
	if err := enc.Encode(map[string]any{"type": "hello", "id": "rogue", "jobs": []string{job.Name}}); err != nil {
		t.Fatal(err)
	}
	go func() {
		sc := newShardScratch()
		for {
			var m message
			if err := dec.Decode(&m); err != nil {
				return
			}
			switch m.Type {
			case "task":
				partial := runShard(job, m.Records, sc)
				if err := enc.Encode(reply(m.TaskID, m.Attempt, partial)); err != nil {
					return
				}
			case "ping":
				if err := enc.Encode(map[string]any{"type": "pong"}); err != nil {
					return
				}
			}
		}
	}()
}

// TestResultFrameSmuggledPartsDropped is the regression test for the
// router panic: a "result" frame carrying a Parts list with an
// out-of-range partition id used to skip validateParts and crash the
// merge router goroutine. The master must drop the unnegotiated
// payload, merge the flat partial, and finish with correct output —
// without counting the result as pre-partitioned.
func TestResultFrameSmuggledPartsDropped(t *testing.T) {
	master, err := NewMaster(mustRegistry(t), MasterConfig{
		TaskTimeout: 10 * time.Second, JobTimeout: 30 * time.Second, Partitions: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(master.Close)
	rogueJSONWorker(t, addr, wordCountJob(), func(taskID, attempt int, partial map[string]float64) map[string]any {
		return map[string]any{
			"type": "result", "task_id": taskID, "attempt": attempt,
			"partial": partial,
			"parts":   []map[string]any{{"id": 99, "partial": map[string]float64{"smuggled": 1}}},
		}
	})
	if err := master.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	lines := testLines(t, 200)
	got, stats, err := master.Run(context.Background(), "wordcount", lines, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := runShard(wordCountJob(), lines, newShardScratch())
	if _, ok := got["smuggled"]; ok {
		t.Error("smuggled partition payload leaked into the result")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("result diverged from reference after dropping smuggled parts")
	}
	if stats.PrePartitioned != 0 {
		t.Errorf("smuggled parts counted as pre-partitioned: %d", stats.PrePartitioned)
	}
}

// TestPresultOutOfRangePartsFailsLaunch: a presult whose partition ids
// fall outside [0, P) must fail that worker's launch (never reach the
// router), and the job must still complete via reassignment to an
// honest worker.
func TestPresultOutOfRangePartsFailsLaunch(t *testing.T) {
	master, err := NewMaster(mustRegistry(t), MasterConfig{
		TaskTimeout: 5 * time.Second, JobTimeout: 30 * time.Second, Partitions: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(master.Close)
	rogueJSONWorker(t, addr, wordCountJob(), func(taskID, attempt int, partial map[string]float64) map[string]any {
		return map[string]any{
			"type": "presult", "task_id": taskID, "attempt": attempt,
			"parts": []map[string]any{{"id": 99, "partial": partial}},
		}
	})
	honest, err := NewWorker(mustRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := honest.Start(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(honest.Stop)
	if err := master.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	lines := testLines(t, 200)
	got, stats, err := master.Run(context.Background(), "wordcount", lines, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := runShard(wordCountJob(), lines, newShardScratch())
	if !reflect.DeepEqual(got, want) {
		t.Fatal("result diverged from reference with a rogue presult worker in the pool")
	}
	// The rogue's first bad frame drops it; any shard it had been
	// assigned must have been reassigned to the honest worker.
	for _, ws := range stats.PerWorker {
		if ws.ID == "rogue" && ws.ShardsRun > 0 {
			t.Errorf("rogue presult worker credited with %d shards", ws.ShardsRun)
		}
	}
}

// TestPartitionCapRequiresBin2: a worker that speaks the binary codec
// but not its bin2 layout revision has no wire shape for presult
// frames — the master must keep it on flat results instead of granting
// a capability the negotiated layout cannot encode.
func TestPartitionCapRequiresBin2(t *testing.T) {
	master, err := NewMaster(mustRegistry(t), MasterConfig{
		TaskTimeout: 10 * time.Second, JobTimeout: 30 * time.Second, Partitions: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(master.Close)
	w, err := NewWorker(mustRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	w.caps = []string{capBinary, capBatch, capPartition} // no bin2
	if err := w.Start(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	if err := master.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	lines := testLines(t, 200)
	got, stats, err := master.Run(context.Background(), "wordcount", lines, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := runShard(wordCountJob(), lines, newShardScratch())
	if !reflect.DeepEqual(got, want) {
		t.Fatal("bin-without-bin2 worker result diverged from reference")
	}
	if stats.PrePartitioned != 0 {
		t.Errorf("PrePartitioned = %d for a worker that must not be granted part", stats.PrePartitioned)
	}
	if w.partitions != 0 {
		t.Errorf("worker granted partitions=%d despite missing bin2", w.partitions)
	}
}

// FuzzDecodePartitionedResult focuses the codec fuzzer on the presult
// frame: arbitrary bodies must decode or error, never panic, and a body
// that decodes must re-encode and round-trip to the same message.
func FuzzDecodePartitionedResult(f *testing.F) {
	seeds := []message{
		{Type: "presult", TaskID: 1, Attempt: 1, Parts: []partitionPartial{
			{ID: 0, Partial: map[string]float64{"a": 1, "b": 2}},
			{ID: 2, Partial: map[string]float64{"c": -3.5}},
		}},
		{Type: "presult", TaskID: 0, Parts: []partitionPartial{{ID: 7}}},
		{Type: "presult"},
	}
	for _, m := range seeds {
		frame, _, err := appendFrame(nil, &m, nil, true, false, false, false, false)
		if err != nil {
			f.Fatal(err)
		}
		body := frameBody(f, frame)
		f.Add(body)
		f.Add(body[:len(body)*2/3])
		mut := append([]byte(nil), body...)
		if len(mut) > 4 {
			mut[4] ^= 0x40
		}
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		var m message
		if err := decodeFrame(body, &m, true, false, false, false, false); err != nil {
			return
		}
		if _, ok := frameTypes[m.Type]; !ok {
			return // unknown type placeholder, ignore-path
		}
		frame, _, err := appendFrame(nil, &m, nil, true, false, false, false, false)
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		var again message
		if err := decodeFrame(frameBody(t, frame), &again, true, false, false, false, false); err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if !reflect.DeepEqual(normalize(again), normalize(m)) {
			t.Fatalf("presult round trip lossy:\n in: %+v\nout: %+v", m, again)
		}
	})
}

// FuzzDecodeSpanSummary focuses the codec fuzzer on the trace layout's
// span-summary block: arbitrary bodies — including truncated and
// corrupted frames as a non-trace peer would produce — must decode or
// error, never panic, and a body that decodes must re-encode and
// round-trip to the same message.
func FuzzDecodeSpanSummary(f *testing.F) {
	seeds := []message{
		{Type: "result", TaskID: 1, Attempt: 1, Partial: map[string]float64{"a": 1}, Trace: "wc-1", Spans: []spanSummary{
			{Phase: "decode", Start: 0, End: 0.002},
			{Phase: "map", Start: 0.002, End: 0.8},
			{Phase: "combine", Start: 0.8, End: 0.9},
			{Phase: "encode", Start: 0.9, End: 0.95},
		}},
		{Type: "presult", TaskID: 3, Trace: "j-9", Spans: []spanSummary{
			{Phase: "partition", Start: 0.1, End: 0.2},
		}, Parts: []partitionPartial{{ID: 0, Partial: map[string]float64{"k": 1}}}},
		{Type: "result", TaskID: 2, Trace: "", Spans: nil},
		{Type: "task", Job: "wc", TaskID: 0, Records: []string{"r"}, Trace: "wc-2"},
	}
	for _, m := range seeds {
		// Seed both the trace layout and, for messages it can carry, the
		// bin2 layout a non-trace peer would send: the trc decoder must
		// reject the latter cleanly, and mutations of either must never
		// panic it.
		frame, _, err := appendFrame(nil, &m, nil, true, true, false, false, false)
		if err != nil {
			f.Fatal(err)
		}
		body := frameBody(f, frame)
		f.Add(body)
		f.Add(body[:len(body)*2/3])
		mut := append([]byte(nil), body...)
		if len(mut) > 4 {
			mut[4] ^= 0x40
		}
		f.Add(mut)
		if m.Trace == "" && len(m.Spans) == 0 {
			plain, _, err := appendFrame(nil, &m, nil, true, false, false, false, false)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(frameBody(f, plain))
		}
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		var m message
		if err := decodeFrame(body, &m, true, true, false, false, false); err != nil {
			return
		}
		for _, s := range m.Spans {
			if len(s.Phase) > len(body) {
				t.Fatalf("span phase of %d bytes from a %d-byte body", len(s.Phase), len(body))
			}
		}
		if _, ok := frameTypes[m.Type]; !ok {
			return // unknown type placeholder, ignore-path
		}
		frame, _, err := appendFrame(nil, &m, nil, true, true, false, false, false)
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		var again message
		if err := decodeFrame(frameBody(t, frame), &again, true, true, false, false, false); err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if !sameSpans(m.Spans, again.Spans) {
			t.Fatalf("span summaries lossy:\n in: %+v\nout: %+v", m.Spans, again.Spans)
		}
		if !reflect.DeepEqual(normalize(stripSpans(again)), normalize(stripSpans(m))) {
			t.Fatalf("traced frame round trip lossy:\n in: %+v\nout: %+v", m, again)
		}
	})
}

// sameSpans compares span summaries bit-exactly (NaN intervals from
// fuzzed bodies defeat DeepEqual's float semantics on some fields).
func sameSpans(a, b []spanSummary) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Phase != b[i].Phase ||
			math.Float64bits(a[i].Start) != math.Float64bits(b[i].Start) ||
			math.Float64bits(a[i].End) != math.Float64bits(b[i].End) {
			return false
		}
	}
	return true
}

func stripSpans(m message) message {
	m.Spans = nil
	return m
}
