package netmr

import (
	"context"
	"fmt"
	"math"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"
)

// shufflePingServer is a minimal shuffle-plane peer: it accepts
// connections with the negotiation-free reduce layout and answers every
// ping with a pong, tracking the accepted sockets so a test can cut
// them mid-pool.
func shufflePingServer(t *testing.T) (addr string, cut func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	var mu sync.Mutex
	var conns []net.Conn
	go func() {
		for {
			raw, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, raw)
			mu.Unlock()
			go func(raw net.Conn) {
				c := newConn(raw)
				c.binary, c.binExt, c.red = true, true, true
				for {
					m, err := c.recv(0)
					if err != nil {
						return
					}
					if m.Type == "ping" {
						if c.send(message{Type: "pong"}, time.Second) != nil {
							return
						}
					}
				}
			}(raw)
		}
	}()
	return ln.Addr().String(), func() {
		mu.Lock()
		defer mu.Unlock()
		for _, c := range conns {
			_ = c.Close()
		}
		conns = conns[:0]
	}
}

// TestShufflePoolReusesAndRedialsOnce pins the pool's core contract: a
// healthy exchange returns its connection to the idle stack, and an
// exchange that fails over a pooled connection (staleness is invisible
// until use) is retried exactly once over a fresh dial.
func TestShufflePoolReusesAndRedialsOnce(t *testing.T) {
	addr, cut := shufflePingServer(t)
	p := newShufflePool(2)
	defer p.closeAll()

	attempts := 0
	exchange := func(c *conn) error {
		attempts++
		if err := c.send(message{Type: "ping"}, time.Second); err != nil {
			return err
		}
		m, err := c.recv(2 * time.Second)
		if err != nil {
			return err
		}
		if m.Type != "pong" {
			return fmt.Errorf("got %q, want pong", m.Type)
		}
		return nil
	}

	if err := p.withConn(addr, false, time.Second, exchange); err != nil {
		t.Fatalf("first exchange: %v", err)
	}
	if attempts != 1 {
		t.Fatalf("first exchange took %d attempts, want 1", attempts)
	}
	p.mu.Lock()
	idle := len(p.idle[addr])
	p.mu.Unlock()
	if idle != 1 {
		t.Fatalf("idle conns after success = %d, want 1 (connection must return to the pool)", idle)
	}

	// Cut the pooled connection server-side: staleness the client can
	// only discover on use. The next exchange must fail on the cached
	// conn, redial once, and succeed.
	cut()
	time.Sleep(20 * time.Millisecond)
	attempts = 0
	if err := p.withConn(addr, false, time.Second, exchange); err != nil {
		t.Fatalf("exchange over a cut pool: %v", err)
	}
	if attempts != 2 {
		t.Fatalf("stale-conn exchange took %d attempts, want 2 (pooled failure then one fresh dial)", attempts)
	}

	// A failure on the fresh connection is a real peer failure: exactly
	// one pooled attempt plus one dialed attempt, then the error
	// propagates.
	cut()
	time.Sleep(20 * time.Millisecond)
	attempts = 0
	err := p.withConn(addr, false, time.Second, func(c *conn) error {
		attempts++
		return fmt.Errorf("injected failure %d", attempts)
	})
	if err == nil {
		t.Fatal("persistent failure did not propagate")
	}
	if attempts != 2 {
		t.Fatalf("persistent failure took %d attempts, want 2 (never more than one redial)", attempts)
	}
}

// TestShufflePoolKeepsConnOnRefusal: an application-level refusal (an
// error frame from a healthy peer) must not be treated as a connection
// failure — no redial, and the connection stays pooled.
func TestShufflePoolKeepsConnOnRefusal(t *testing.T) {
	addr, _ := shufflePingServer(t)
	p := newShufflePool(2)
	defer p.closeAll()

	attempts := 0
	err := p.withConn(addr, false, time.Second, func(c *conn) error {
		attempts++
		return &peerRefusal{msg: "unknown run"}
	})
	if !isPeerRefusal(err) {
		t.Fatalf("refusal did not propagate as a refusal: %v", err)
	}
	if attempts != 1 {
		t.Fatalf("refusal triggered %d attempts, want 1 (no redial for a healthy peer)", attempts)
	}
	p.mu.Lock()
	idle := len(p.idle[addr])
	p.mu.Unlock()
	if idle != 1 {
		t.Fatalf("idle conns after refusal = %d, want 1 (refused connection must stay pooled)", idle)
	}
}

// pipelineRegistry builds a single-job registry for the wordcount job,
// optionally with a combiner, optionally with a per-map-task delay that
// manufactures the map tail early shuffle hides fetches under.
func pipelineRegistry(t testing.TB, combine bool, mapDelay time.Duration) *Registry {
	j := wordCountJob()
	if combine {
		j.Combine = func(acc, v float64) float64 { return acc + v }
	}
	if mapDelay > 0 {
		inner := j.Map
		j.Map = func(record string, emit func(string, float64)) {
			time.Sleep(mapDelay)
			inner(record, emit)
		}
	}
	r, err := NewRegistry(j)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// runPipelineCluster boots a master plus workers built from the given
// configs, runs one wordcount, and tears everything down.
func runPipelineCluster(t *testing.T, reg *Registry, mcfg MasterConfig, wcfg WorkerConfig, workers, shards int, lines []string, mutate func(i int, w *Worker)) (map[string]float64, Stats, *JobTrace) {
	t.Helper()
	master, err := NewMaster(reg, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	stops := make([]func(), 0, workers)
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	for i := 0; i < workers; i++ {
		w, err := NewWorker(reg, WithWorkerConfig(wcfg))
		if err != nil {
			t.Fatal(err)
		}
		if mutate != nil {
			mutate(i, w)
		}
		if err := w.Start(addr); err != nil {
			t.Fatal(err)
		}
		stops = append(stops, w.Stop)
	}
	if err := master.WaitForWorkers(workers, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	got, stats, err := master.Run(context.Background(), "wordcount", lines, shards)
	if err != nil {
		t.Fatal(err)
	}
	return got, stats, master.LastTrace()
}

// TestParallelGatherMatchesSerial is the gather equivalence property:
// across every fanout (1 gathers serially), spill budget and combiner
// setting, the parallel gather must produce exactly the serial
// reference — responses arrive in arbitrary completion order, but the
// fold consumes them in ascending map-task order, so width must never
// show in the output.
func TestParallelGatherMatchesSerial(t *testing.T) {
	lines := testLines(t, 600)
	want := runShard(wordCountJob(), lines, newShardScratch())
	for _, combine := range []bool{false, true} {
		reg := pipelineRegistry(t, combine, 0)
		var ref map[string]float64
		for _, budget := range []int64{0, 2048} {
			for _, fanout := range []int{1, 2, 4, 8} {
				name := fmt.Sprintf("combine=%v/budget=%d/fanout=%d", combine, budget, fanout)
				got, _, _ := runPipelineCluster(t, reg,
					MasterConfig{TaskTimeout: 10 * time.Second, JobTimeout: 60 * time.Second, Reducers: 3},
					WorkerConfig{ShuffleFanout: fanout, SpillBudget: budget, SpillDir: t.TempDir()},
					3, 6, lines, nil)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: diverged from the single-shard reference", name)
				}
				if ref == nil {
					ref = got
				} else if !reflect.DeepEqual(got, ref) {
					t.Fatalf("%s: diverged from the fanout-1 run", name)
				}
			}
		}
	}
}

// TestEarlyShuffleMatchesBarrier runs the same job with and without
// early reduce dispatch: the outputs must be identical, the early run
// must actually launch reducers before the barrier, and the trace
// invariant MaxTask + MaxReduce + Ws + Wo = TotalWall must survive
// launches whose wall spans the map tail.
func TestEarlyShuffleMatchesBarrier(t *testing.T) {
	lines := testLines(t, 300)
	want := runShard(wordCountJob(), lines, newShardScratch())
	// A per-map delay leaves a tail: workers drain the map queue, go
	// idle, and the master has stored outputs to hand an early reducer.
	reg := pipelineRegistry(t, false, 20*time.Millisecond)
	run := func(early bool) (map[string]float64, Stats, *JobTrace) {
		return runPipelineCluster(t, reg, MasterConfig{
			TaskTimeout: 10 * time.Second, JobTimeout: 60 * time.Second,
			Reducers: 3, Trace: true, EarlyShuffle: early,
		}, WorkerConfig{}, 3, 7, lines, nil)
	}
	gotB, statsB, _ := run(false)
	gotE, statsE, trcE := run(true)
	if !reflect.DeepEqual(gotB, want) {
		t.Fatal("barrier run diverged from reference")
	}
	if !reflect.DeepEqual(gotE, gotB) {
		t.Fatal("early-shuffle run diverged from the barrier run")
	}
	if statsB.EarlyReduceTasks != 0 {
		t.Errorf("barrier run launched %d early reduce tasks, want 0", statsB.EarlyReduceTasks)
	}
	if statsE.EarlyReduceTasks == 0 {
		t.Error("early run launched no reduce task before the barrier")
	}
	if statsE.ReduceTasks != 3 {
		t.Errorf("ReduceTasks = %d, want 3", statsE.ReduceTasks)
	}
	if trcE == nil {
		t.Fatal("early run produced no trace")
	}
	if trcE.OpenLaunches() != 0 {
		t.Fatalf("early run left %d launches open", trcE.OpenLaunches())
	}
	b := trcE.Breakdown(statsE)
	if b.TotalWall <= 0 || b.Wo < 0 || b.Ws < 0 || b.MaxReduce < 0 {
		t.Fatalf("inconsistent breakdown: %+v", b)
	}
	if sum := b.MaxTask + b.MaxReduce + b.Ws + b.Wo; math.Abs(sum-b.TotalWall) > 1e-6 {
		t.Fatalf("invariant broken under early shuffle: MaxTask+MaxReduce+Ws+Wo = %v, TotalWall = %v", sum, b.TotalWall)
	}
}

// TestPooledFetchFailsOverToReplica is the failover chaos scenario: one
// mapper's shuffle listener dies after its first mapdone while the
// worker itself stays alive, so the master keeps routing fetches at the
// dead listener. Reducers on the other workers must reroute to the
// replica addresses carried on their reducetask frames — without a
// master round-trip — and the job must finish byte-identically.
func TestPooledFetchFailsOverToReplica(t *testing.T) {
	lines := testLines(t, 500)
	want := runShard(wordCountJob(), lines, newShardScratch())
	reg := pipelineRegistry(t, false, 0)
	got, stats, _ := runPipelineCluster(t, reg,
		MasterConfig{TaskTimeout: 10 * time.Second, JobTimeout: 60 * time.Second, Reducers: 3},
		WorkerConfig{}, 3, 6, lines,
		func(i int, w *Worker) {
			if i == 0 {
				w.closeFetchAfterMapdone = true
			}
		})
	if !reflect.DeepEqual(got, want) {
		t.Fatal("failover run diverged from reference")
	}
	if stats.Failovers == 0 {
		t.Errorf("Failovers = 0, want > 0 (reducers must have rerouted to replicas locally); stats %+v", stats)
	}
	if stats.Completed == 0 || stats.ReduceTasks != 3 {
		t.Errorf("unexpected stats: %+v", stats)
	}
}

// TestEarlyShuffleFailoverUnderChaos combines the two: early dispatch
// on, one listener cut after the first mapdone — morelocs streaming,
// replica failover and the barrier-free path must still converge on the
// reference output.
func TestEarlyShuffleFailoverUnderChaos(t *testing.T) {
	lines := testLines(t, 400)
	want := runShard(wordCountJob(), lines, newShardScratch())
	reg := pipelineRegistry(t, true, 10*time.Millisecond)
	got, stats, _ := runPipelineCluster(t, reg, MasterConfig{
		TaskTimeout: 10 * time.Second, JobTimeout: 60 * time.Second,
		Reducers: 3, EarlyShuffle: true,
	}, WorkerConfig{SpillBudget: 4096, SpillDir: t.TempDir()}, 3, 6, lines,
		func(i int, w *Worker) {
			if i == 0 {
				w.closeFetchAfterMapdone = true
			}
		})
	if !reflect.DeepEqual(got, want) {
		t.Fatal("early+chaos run diverged from reference")
	}
	if stats.ReduceTasks != 3 {
		t.Errorf("ReduceTasks = %d, want 3", stats.ReduceTasks)
	}
}
