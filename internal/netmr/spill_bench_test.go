package netmr

import (
	"fmt"
	"testing"
)

// spillBenchInputs builds one reduce partition's gathered inputs: tasks
// map-task partials over a shared key space with heavy prefix sharing —
// the shape real shuffle slices have.
func spillBenchInputs(tasks, keys int) []taskPartial {
	inputs := make([]taskPartial, tasks)
	for task := range inputs {
		m := make(map[string]float64, keys)
		for k := 0; k < keys; k++ {
			m[fmt.Sprintf("shuffle-key-%05d", k)] = float64(task + k)
		}
		inputs[task] = taskPartial{task: task, partial: m}
	}
	return inputs
}

// benchmarkShuffleFold drives the reduce-side gather+fold at one budget;
// 0 is the all-in-memory reference the spill path is gated against.
func benchmarkShuffleFold(b *testing.B, budget int64) {
	job := benchJob(true)
	inputs := spillBenchInputs(16, 4000)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := newSpillFolder(budget, dir)
		for _, in := range inputs {
			if err := f.add(in.task, in.partial); err != nil {
				b.Fatal(err)
			}
		}
		out, merged, err := f.fold(job)
		if err != nil {
			b.Fatal(err)
		}
		if budget > 0 && budget < 1<<20 && !merged {
			b.Fatal("constrained budget never spilled")
		}
		if len(out) != 4000 {
			b.Fatalf("fold produced %d keys, want 4000", len(out))
		}
	}
}

// BenchmarkShuffleSpill quantifies the out-of-core tax: mem is the
// unconstrained fold, spill the same inputs forced through sorted runs
// and the loser-tree merge. CI gates the spill variant's regression.
func BenchmarkShuffleSpill(b *testing.B) {
	b.Run("mem", func(b *testing.B) { benchmarkShuffleFold(b, 0) })
	b.Run("spill", func(b *testing.B) { benchmarkShuffleFold(b, 64<<10) })
}
