package netmr

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ipso/internal/workload"
)

// benchFetchWorker boots one worker's shuffle plane — store filled with
// a run's map outputs, fetch listener serving — and returns what a
// reducer needs to gather one partition from it.
func benchFetchWorker(b *testing.B, tasks, keysPerTask, R int) (addr, run string, ids []int) {
	b.Helper()
	reg, err := NewRegistry(wordCountJob())
	if err != nil {
		b.Fatal(err)
	}
	w, err := NewWorker(reg)
	if err != nil {
		b.Fatal(err)
	}
	run = "bench#1"
	for task := 0; task < tasks; task++ {
		parts := make([]partitionPartial, 0, R)
		for p := 0; p < R; p++ {
			m := make(map[string]float64, keysPerTask)
			for k := 0; k < keysPerTask; k++ {
				m[fmt.Sprintf("fetch-key-%02d-%04d", p, k)] = float64(task + k)
			}
			parts = append(parts, partitionPartial{ID: p, Partial: m})
		}
		if _, _, _, err := w.store.put(run, task, parts, R); err != nil {
			b.Fatal(err)
		}
		ids = append(ids, task)
	}
	addr, err = w.startFetchListener()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		if ln := w.fetchLn; ln != nil {
			_ = ln.Close()
		}
	})
	return addr, run, ids
}

// BenchmarkShuffleFetch quantifies what connection pooling buys on the
// shuffle plane: dial is the old path (TCP handshake per exchange),
// pooled the persistent-connection path. CI gates pooled against dial —
// the pooled variant must cost less per fetched partition and allocate
// less.
func BenchmarkShuffleFetch(b *testing.B) {
	const tasks, keys, R = 8, 200, 3
	b.Run("dial", func(b *testing.B) {
		addr, run, ids := benchFetchWorker(b, tasks, keys, R)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			parts, _, _, err := fetchPartition(addr, run, i%R, ids, 10*time.Second, false)
			if err != nil {
				b.Fatal(err)
			}
			if len(parts) != tasks {
				b.Fatalf("fetched %d parts, want %d", len(parts), tasks)
			}
		}
	})
	b.Run("pooled", func(b *testing.B) {
		addr, run, ids := benchFetchWorker(b, tasks, keys, R)
		p := newShufflePool(defaultShufflePoolPerPeer)
		b.Cleanup(p.closeAll)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			parts, _, _, err := p.fetchPartition(addr, run, i%R, ids, 10*time.Second, false)
			if err != nil {
				b.Fatal(err)
			}
			if len(parts) != tasks {
				b.Fatalf("fetched %d parts, want %d", len(parts), tasks)
			}
		}
	})
}

// benchmarkPipelineRun drives whole jobs through a local cluster with
// early shuffle on or off; the delta is the barrier cost the pipelined
// dispatch hides under the map tail.
func benchmarkPipelineRun(b *testing.B, early bool) {
	reg, err := NewRegistry(wordCountJob())
	if err != nil {
		b.Fatal(err)
	}
	master, err := NewMaster(reg, MasterConfig{
		TaskTimeout: 10 * time.Second, JobTimeout: 60 * time.Second,
		Reducers: 3, EarlyShuffle: early,
	})
	if err != nil {
		b.Fatal(err)
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(master.Close)
	for i := 0; i < 3; i++ {
		w, err := NewWorker(reg)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Start(addr); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(w.Stop)
	}
	if err := master.WaitForWorkers(3, 5*time.Second); err != nil {
		b.Fatal(err)
	}
	lines, err := workload.TextLines(400, 8, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := master.Run(context.Background(), "wordcount", lines, 6)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkEarlyShuffle: barrier is the classic all-maps-then-reduce
// run, early the pipelined dispatch. CI gates early generously against
// barrier — it must never be a regression at this scale.
func BenchmarkEarlyShuffle(b *testing.B) {
	b.Run("barrier", func(b *testing.B) { benchmarkPipelineRun(b, false) })
	b.Run("early", func(b *testing.B) { benchmarkPipelineRun(b, true) })
}
