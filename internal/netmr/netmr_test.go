package netmr

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"ipso/internal/workload"
)

func wordCountJob() Job {
	return Job{
		Name: "wordcount",
		Map: func(record string, emit func(string, float64)) {
			for _, w := range strings.Fields(record) {
				emit(w, 1)
			}
		},
		Reduce: func(_ string, values []float64) float64 {
			total := 0.0
			for _, v := range values {
				total += v
			}
			return total
		},
	}
}

func mustRegistry(t *testing.T) *Registry {
	t.Helper()
	r, err := NewRegistry(wordCountJob())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// startCluster brings up a master plus n workers on localhost.
func startCluster(t *testing.T, n int) (*Master, []*Worker) {
	t.Helper()
	master, err := NewMaster(mustRegistry(t), MasterConfig{TaskTimeout: 10 * time.Second, JobTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(master.Close)
	workers := make([]*Worker, 0, n)
	for i := 0; i < n; i++ {
		w, err := NewWorker(mustRegistry(t))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Start(addr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Stop)
		workers = append(workers, w)
	}
	if err := master.WaitForWorkers(n, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return master, workers
}

func testLines(t *testing.T, n int) []string {
	t.Helper()
	lines, err := workload.TextLines(n, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	return lines
}

func TestRegistryValidation(t *testing.T) {
	if _, err := NewRegistry(Job{Name: "x"}); err == nil {
		t.Error("job without Map/Reduce should error")
	}
	if _, err := NewRegistry(Job{Map: wordCountJob().Map, Reduce: wordCountJob().Reduce}); err == nil {
		t.Error("unnamed job should error")
	}
	if _, err := NewRegistry(wordCountJob(), wordCountJob()); err == nil {
		t.Error("duplicate names should error")
	}
	if _, err := NewWorker(nil); err == nil {
		t.Error("worker without registry should error")
	}
	if _, err := NewMaster(nil, MasterConfig{}); err == nil {
		t.Error("master without registry should error")
	}
}

func TestDistributedWordCountMatchesLocal(t *testing.T) {
	master, _ := startCluster(t, 3)
	lines := testLines(t, 500)

	got, stats, err := master.Run(context.Background(), "wordcount", lines, 9)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 3 || stats.Shards != 9 || stats.Reassignments != 0 {
		t.Errorf("unexpected stats %+v", stats)
	}

	// Ground truth computed locally.
	want := make(map[string]float64)
	for _, line := range lines {
		for _, w := range strings.Fields(line) {
			want[w]++
		}
	}
	if len(got) != len(want) {
		t.Fatalf("distinct keys %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if math.Abs(got[k]-v) > 1e-9 {
			t.Fatalf("count[%q] = %g, want %g", k, got[k], v)
		}
	}
}

func TestRunValidation(t *testing.T) {
	master, _ := startCluster(t, 1)
	if _, _, err := master.Run(context.Background(), "nope", []string{"a"}, 1); err == nil {
		t.Error("unknown job should error")
	}
	if _, _, err := master.Run(context.Background(), "wordcount", []string{"a"}, 0); err == nil {
		t.Error("zero shards should error")
	}
}

func TestRunWithoutWorkers(t *testing.T) {
	master, err := NewMaster(mustRegistry(t), MasterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := master.Run(context.Background(), "wordcount", []string{"a"}, 1); err == nil {
		t.Error("not-listening master should error")
	}
	if _, err := master.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	if _, _, err := master.Run(context.Background(), "wordcount", []string{"a"}, 1); err == nil {
		t.Error("workerless run should error")
	}
}

func TestWorkerFailureReassignsShards(t *testing.T) {
	master, workers := startCluster(t, 3)
	lines := testLines(t, 300)

	// Kill one worker before the job: its admitted handle is still in
	// the idle pool, so the master discovers the death mid-dispatch and
	// must reassign that shard to a survivor.
	workers[0].Stop()

	got, stats, err := master.Run(context.Background(), "wordcount", lines, 12)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reassignments == 0 {
		t.Error("expected at least one reassignment after a worker death")
	}
	total := 0.0
	for _, v := range got {
		total += v
	}
	if total != float64(300*8) {
		t.Errorf("total words %g, want %d — results must survive worker failure intact", total, 300*8)
	}
}

func TestAllWorkersLostFailsCleanly(t *testing.T) {
	master, workers := startCluster(t, 1)
	workers[0].Stop()
	if _, _, err := master.Run(context.Background(), "wordcount", testLines(t, 50), 4); err == nil {
		t.Error("run with every worker dead should fail")
	}
}

func TestSequentialVersusParallelShards(t *testing.T) {
	// The distributed runtime is a real system: with one worker the whole
	// split phase serializes, and with several it does not — but the
	// *result* is identical, the invariant the speedup definition needs.
	lines := testLines(t, 400)

	oneMaster, _ := startCluster(t, 1)
	seq, _, err := oneMaster.Run(context.Background(), "wordcount", lines, 8)
	if err != nil {
		t.Fatal(err)
	}
	oneMaster.Close()

	fourMaster, _ := startCluster(t, 4)
	par, _, err := fourMaster.Run(context.Background(), "wordcount", lines, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("key counts differ: %d vs %d", len(seq), len(par))
	}
	for k, v := range seq {
		if par[k] != v {
			t.Fatalf("results differ at %q: %g vs %g", k, v, par[k])
		}
	}
}

func TestBackToBackRuns(t *testing.T) {
	master, _ := startCluster(t, 2)
	lines := testLines(t, 100)
	for i := 0; i < 3; i++ {
		if _, _, err := master.Run(context.Background(), "wordcount", lines, 4); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}

func TestStatsPhases(t *testing.T) {
	master, _ := startCluster(t, 2)
	_, stats, err := master.Run(context.Background(), "wordcount", testLines(t, 200), 4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SplitWall <= 0 || stats.MergeWall < 0 || stats.TotalWall < stats.SplitWall {
		t.Errorf("implausible phase stats %+v", stats)
	}
	// TotalWall is measured end to end, not derived: since the merge
	// overlaps the split phase, summing the phases double counts the
	// overlap window and can only over-estimate the wall.
	if stats.TotalWall > stats.SplitWall+stats.MergeWall {
		t.Errorf("TotalWall %v exceeds SplitWall %v + MergeWall %v",
			stats.TotalWall, stats.SplitWall, stats.MergeWall)
	}
	if stats.MergeOverlapWall < 0 || stats.MergeOverlapWall > stats.MergeWall {
		t.Errorf("MergeOverlapWall %v outside [0, MergeWall %v]", stats.MergeOverlapWall, stats.MergeWall)
	}
	if stats.Partitions < 1 {
		t.Errorf("Partitions = %d, want >= 1", stats.Partitions)
	}
}
