package netmr

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ipso/internal/chaos"
)

// Worker connects to a master and executes shards of registered jobs
// until the connection closes or Stop is called. One worker handles one
// task at a time — the "one container per processing unit" configuration
// of the paper's experiments.
type Worker struct {
	registry *Registry
	chaos    *chaos.Injector
	scratch  *shardScratch // reused across every shard this worker runs
	caps     []string      // capabilities advertised in the hello

	// partitions is the merge partition count granted in the helloack
	// when the master accepted the "part" capability; >1 makes this
	// worker pre-split every result by key hash before shipping it.
	// Written once by serve before any task arrives.
	partitions int

	// traced is set when the master granted the "trace" capability: every
	// shard then runs through the span-recording execution path and ships
	// its phase summaries back on the result frame. Written once by serve
	// before any task arrives.
	traced bool

	// Distributed-reduce state: reducers is the reduce partition count
	// granted in the helloack when the master accepted the "reduce"
	// capability (written once by serve before any task arrives);
	// fetchAddr is this worker's shuffle listener address (advertised in
	// the hello) and store its intermediate map-output store, which the
	// shuffle server goroutines read concurrently.
	reducers  int
	fetchAddr string
	fetchLn   net.Listener
	store     *interStore

	// fetchConns tracks the accepted shuffle-plane sockets (guarded by
	// mu) so tearing the plane down severs in-flight peers too: closing
	// only the listener refuses new dials but leaves accepted sockets —
	// and the peers' pooled connections riding them — fully alive.
	fetchConns map[net.Conn]struct{}

	// comp is set when the master granted the "comp" capability: frames
	// gain the compression flag layer and the worker replicates each
	// persisted partition set to the peer the master names on the task
	// frame (Rep) before acknowledging mapdone.
	comp bool

	// Pipelined-shuffle state: pool caches idle shuffle-plane connections
	// per peer (reused by reduce fetches and replication pushes), and
	// shuffleFanout bounds how many peers one reduce task fetches from
	// concurrently.
	pool          *shufflePool
	shuffleFanout int

	// Out-of-core configuration (WithWorkerConfig). The shuffle timeout
	// is atomic because the helloack handler may adjust it while the
	// fetch-listener goroutines are already serving peers.
	shuffleTimeoutNs atomic.Int64
	spillBudget      int64
	spillDir         string

	// killAfterMapdone is a test hook: after the first successful
	// mapdone the worker tears its shuffle listener down and dies, the
	// "mapper lost mid-shuffle" chaos scenario.
	killAfterMapdone bool

	// closeFetchAfterMapdone is a milder test hook: after the first
	// successful mapdone the worker closes only its shuffle listener but
	// stays alive and keeps mapping. The master still routes fetches at
	// the primary, so reducers must fail over to the replica addresses
	// on their own — the worker-local failover scenario.
	closeFetchAfterMapdone bool

	mu      sync.Mutex
	netConn net.Conn
	stopped bool
	done    chan struct{}
}

// WorkerOption configures a Worker at construction.
type WorkerOption func(*Worker)

// WithChaos attaches a fault injector: the worker's connection gains
// wire-level faults (latency, drops, corruption, partitions) and every
// task attempt consults TaskFault for injected execution latency and
// crashes — the knobs that manufacture stragglers and churn on demand.
func WithChaos(in *chaos.Injector) WorkerOption {
	return func(w *Worker) { w.chaos = in }
}

// WorkerConfig is the out-of-core shuffle tuning of one worker.
type WorkerConfig struct {
	// ShuffleTimeout bounds one shuffle round-trip (fetch or replicate).
	// Zero means the 30s default; the master's helloack may lower or
	// raise it cluster-wide.
	ShuffleTimeout time.Duration
	// SpillBudget bounds the bytes of intermediate state kept resident —
	// both the map-output store and each reduce task's gather buffer.
	// Zero keeps everything in memory (the previous behavior).
	SpillBudget int64
	// SpillDir is the scratch root for spill files; empty means the OS
	// temp dir. Files live under <SpillDir>/netmr-spill/<run>/.
	SpillDir string
	// ShuffleFanout bounds how many peers one reduce task fetches from
	// concurrently; it also caps the idle connections the shuffle pool
	// keeps per peer. Zero means the default (4); 1 gathers serially.
	ShuffleFanout int
}

// WithWorkerConfig applies out-of-core shuffle settings.
func WithWorkerConfig(cfg WorkerConfig) WorkerOption {
	return func(w *Worker) {
		if cfg.ShuffleTimeout > 0 {
			w.shuffleTimeoutNs.Store(int64(cfg.ShuffleTimeout))
		}
		w.spillBudget = cfg.SpillBudget
		w.spillDir = cfg.SpillDir
		if cfg.ShuffleFanout > 0 {
			w.shuffleFanout = cfg.ShuffleFanout
		}
	}
}

// shuffleTO is the current shuffle round-trip bound, safe to read from
// the fetch-server goroutines while the helloack handler updates it.
func (w *Worker) shuffleTO() time.Duration {
	return time.Duration(w.shuffleTimeoutNs.Load())
}

// NewWorker builds a worker executing jobs from the registry.
func NewWorker(registry *Registry, opts ...WorkerOption) (*Worker, error) {
	if registry == nil || len(registry.jobs) == 0 {
		return nil, errors.New("netmr: worker needs a non-empty registry")
	}
	w := &Worker{
		registry:      registry,
		scratch:       newShardScratch(),
		caps:          workerCaps(),
		store:         newInterStore(),
		shuffleFanout: defaultShufflePoolPerPeer,
		fetchConns:    make(map[net.Conn]struct{}),
		done:          make(chan struct{}),
	}
	w.shuffleTimeoutNs.Store(int64(defaultShuffleTimeout))
	for _, opt := range opts {
		opt(w)
	}
	w.store.configure(w.spillBudget, w.spillDir)
	w.pool = newShufflePool(w.shuffleFanout)
	return w, nil
}

// StoreStats reports the intermediate store's high-water resident bytes
// and cumulative spill volume — what a budget-constrained run asserts
// it never exceeded its budget with.
func (w *Worker) StoreStats() (peakBytes, spilledBytes int64, spillRuns int) {
	return w.store.stats()
}

// Start connects to the master and serves tasks on a background
// goroutine. Use Stop (or closing the master) to terminate; Wait blocks
// until the serve loop exits.
func (w *Worker) Start(masterAddr string) error {
	raw, err := net.DialTimeout("tcp", masterAddr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("netmr: dial master: %w", err)
	}
	// The local endpoint is a unique, stable identity for this connection;
	// the master uses it to attribute shards, failures and RPC latency to
	// a specific worker.
	id := raw.LocalAddr().String()
	c := newConn(w.chaos.WrapConn("", raw))
	// A reduce-capable worker needs a shuffle listener before the hello
	// can advertise its address; if the listener cannot bind, the worker
	// simply does not offer reduce rather than failing to start.
	caps := w.caps
	for _, offered := range caps {
		if offered != capReduce {
			continue
		}
		if addr, lnErr := w.startFetchListener(); lnErr == nil {
			w.fetchAddr = addr
		} else {
			trimmed := make([]string, 0, len(caps)-1)
			for _, o := range caps {
				if o != capReduce {
					trimmed = append(trimmed, o)
				}
			}
			caps = trimmed
		}
		break
	}
	// The hello is always JSON; Caps advertises the binary codec and
	// batching, which the master accepts with a helloack. A master that
	// predates capabilities ignores the field and the connection simply
	// stays on JSON.
	if err := c.send(message{Type: "hello", ID: id, Jobs: w.registry.Names(), Caps: caps, Fetch: w.fetchAddr}, 5*time.Second); err != nil {
		_ = c.close()
		return err
	}
	w.mu.Lock()
	if w.stopped {
		ln := w.fetchLn
		w.mu.Unlock()
		_ = c.close()
		if ln != nil {
			_ = ln.Close()
		}
		return errors.New("netmr: worker already stopped")
	}
	w.netConn = raw
	w.mu.Unlock()

	go func() {
		defer close(w.done)
		defer func() { _ = c.close() }()
		w.serve(c)
	}()
	return nil
}

func (w *Worker) serve(c *conn) {
	for {
		m, err := c.recv(0) // block until the master sends work or closes
		if err != nil {
			return
		}
		switch m.Type {
		case "helloack":
			// The master accepted our capabilities; everything after
			// this frame speaks the binary codec in both directions.
			for _, accepted := range m.Caps {
				switch accepted {
				case capBinary:
					c.binary = true
				case capBinaryExt:
					c.binExt = true
				case capPartition:
					w.partitions = m.Partitions
				case capTrace:
					c.trc = true
					w.traced = true
				case capReduce:
					c.red = true
					w.reducers = m.Reducers
					w.store.setReducers(m.Reducers)
					if m.ShuffleMs > 0 {
						w.shuffleTimeoutNs.Store(int64(time.Duration(m.ShuffleMs) * time.Millisecond))
					}
				case capComp:
					c.cmp = true
					w.comp = true
				case capEarly:
					c.erl = true
				}
			}
		case "task":
			if !w.runTask(c, m.Job, m.TaskID, m.Attempt, m.Records, m.Run, m.Trace, m.Rep, c.lastDecode) {
				return
			}
		case "taskbatch":
			// One frame, several shards: each spec is executed in order
			// and answered with its own result frame. The frame's wire
			// decode happened once, so its cost is charged to the first
			// shard's decode span only.
			decode := c.lastDecode
			for i := range m.Batch {
				spec := &m.Batch[i]
				if !w.runTask(c, spec.Job, spec.TaskID, spec.Attempt, spec.Records, m.Run, m.Trace, m.Rep, decode) {
					return
				}
				decode = 0
			}
		case "reducetask":
			if !w.runReduceTask(c, m, c.lastDecode) {
				return
			}
		case "ping":
			workerPings.Inc()
			if err := c.send(message{Type: "pong"}, 5*time.Second); err != nil {
				return
			}
		default:
			// Ignore unknown frames: forward compatibility.
		}
	}
}

// runTask executes one shard and reports its result (or error) to the
// master. It returns false when the serve loop must exit: a send
// failure or an injected crash. run, when non-empty, is the persist-mode
// signal of a distributed-reduce job: the shard's output is partitioned
// by the granted reducer count, stored for peer fetches, and only a
// payload-free mapdone travels back. trace is the job trace ID stamped
// on the task frame (echoed back on the result) and decode the
// wire-decode cost of the frame that carried this shard; both are
// zero-valued on untraced connections. rep, on comp connections in
// persist mode, names the peer shuffle listener to replicate the
// partition set to before mapdone.
func (w *Worker) runTask(c *conn, jobName string, taskID, attempt int, records []string, run, trace, rep string, decode time.Duration) bool {
	job, ok := w.registry.lookup(jobName)
	if !ok {
		workerTasks.With("unknown_job").Inc()
		_ = c.send(message{Type: "error", TaskID: taskID, Message: fmt.Sprintf("unknown job %q", jobName)}, 5*time.Second)
		return true
	}
	if f := w.chaos.TaskFault("task", taskID, attempt); f.Delay > 0 || f.Crash {
		if f.Delay > 0 {
			time.Sleep(f.Delay)
		}
		if f.Crash {
			// A crashed worker dies without a word: the connection
			// closes and the master reassigns the shard.
			workerTasks.With("crashed").Inc()
			return false
		}
	}
	start := time.Now()
	if run != "" && w.reducers > 0 {
		// Persist mode: partition by the reduce count, keep the output
		// local for the reduce phase, acknowledge with a mapdone. The
		// shuffle bytes this keeps off the master are the whole point.
		var parts []partitionPartial
		var spans []spanSummary
		if w.traced {
			parts, spans = runShardPartitionedTraced(job, records, w.scratch, w.reducers, decode)
		} else {
			parts = runShardPartitioned(job, records, w.scratch, w.reducers)
		}
		putStart := time.Now()
		spills, spilled, saved, perr := w.store.put(run, taskID, parts, w.reducers)
		if perr != nil {
			// Spill failure leaves the set resident — correct, just over
			// budget; the job proceeds.
			workerSpillErrors.Inc()
		}
		putDur := time.Since(putStart)
		done := message{Type: "mapdone", TaskID: taskID, Attempt: attempt, Run: run, Trace: trace}
		var repDur time.Duration
		if c.cmp {
			done.Spills = spills
			done.Spilled = spilled
			done.CompBytes = saved
			if spills > 0 {
				workerSpillRuns.Add(float64(spills))
				workerSpilledBytes.Add(float64(spilled))
			}
			if rep != "" {
				repStart := time.Now()
				if rerr := w.pool.replicateParts(rep, run, taskID, parts, w.reducers, w.shuffleTO()); rerr == nil {
					done.Rep = rep
					workerReplications.With("ok").Inc()
				} else {
					// The named peer would not take the replica: ship the
					// set inline so the master holds it instead.
					done.Parts = parts
					workerReplications.With("failed").Inc()
				}
				repDur = time.Since(repStart)
			} else {
				// No peer qualifies: the master holds the replica.
				done.Parts = parts
			}
		}
		if w.traced {
			if spills > 0 {
				spans = appendSpanAfter(spans, spanSpill, putDur)
			}
			spans = appendSpanAfter(spans, spanReplicate, repDur)
		}
		done.Spans = spans
		workerTaskSeconds.Observe(time.Since(start).Seconds())
		workerTasks.With("ok").Inc()
		if c.send(done, 30*time.Second) != nil {
			return false
		}
		if w.killAfterMapdone {
			// Chaos hook: die right after acknowledging the map output,
			// taking the shuffle plane — and the only primary copy —
			// with us.
			w.closeFetchPlane()
			w.store.evictAll()
			return false
		}
		if w.closeFetchAfterMapdone {
			// Chaos hook: the shuffle plane dies — listener and accepted
			// peer sockets both — but the worker does not, so the master
			// keeps routing fetches here and reducers must fail over to
			// the replica addresses themselves.
			w.closeFetchPlane()
		}
		return true
	}
	if w.partitions > 1 {
		// The master granted the part capability: ship the result
		// pre-split by key hash so the merge engine routes it straight to
		// its partition folders — the hashing cost moves off the master.
		var parts []partitionPartial
		var spans []spanSummary
		if w.traced {
			parts, spans = runShardPartitionedTraced(job, records, w.scratch, w.partitions, decode)
		} else {
			parts = runShardPartitioned(job, records, w.scratch, w.partitions)
		}
		workerTaskSeconds.Observe(time.Since(start).Seconds())
		workerTasks.With("ok").Inc()
		return c.send(message{Type: "presult", TaskID: taskID, Attempt: attempt, Parts: parts, Trace: trace, Spans: spans}, 30*time.Second) == nil
	}
	var partial map[string]float64
	var spans []spanSummary
	if w.traced {
		partial, spans = runShardTraced(job, records, w.scratch, decode)
	} else {
		partial = runShard(job, records, w.scratch)
	}
	workerTaskSeconds.Observe(time.Since(start).Seconds())
	workerTasks.With("ok").Inc()
	return c.send(message{Type: "result", TaskID: taskID, Attempt: attempt, Partial: partial, Trace: trace, Spans: spans}, 30*time.Second) == nil
}

// Stop closes the connection and waits for the serve loop to exit. It is
// safe to call before Start (the worker then refuses to start) and more
// than once.
func (w *Worker) Stop() {
	w.mu.Lock()
	already := w.stopped
	w.stopped = true
	nc := w.netConn
	w.mu.Unlock()
	w.closeFetchPlane()
	if nc != nil {
		nc.Close()
	}
	if nc != nil && !already {
		<-w.done
	}
	// Release the intermediate store — spill files included — now that
	// no task can touch it; late shuffle fetches get refusals.
	w.store.evictAll()
	w.pool.closeAll()
}
