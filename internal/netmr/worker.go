package netmr

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"ipso/internal/chaos"
)

// Worker connects to a master and executes shards of registered jobs
// until the connection closes or Stop is called. One worker handles one
// task at a time — the "one container per processing unit" configuration
// of the paper's experiments.
type Worker struct {
	registry *Registry
	chaos    *chaos.Injector

	mu      sync.Mutex
	netConn net.Conn
	stopped bool
	done    chan struct{}
}

// WorkerOption configures a Worker at construction.
type WorkerOption func(*Worker)

// WithChaos attaches a fault injector: the worker's connection gains
// wire-level faults (latency, drops, corruption, partitions) and every
// task attempt consults TaskFault for injected execution latency and
// crashes — the knobs that manufacture stragglers and churn on demand.
func WithChaos(in *chaos.Injector) WorkerOption {
	return func(w *Worker) { w.chaos = in }
}

// NewWorker builds a worker executing jobs from the registry.
func NewWorker(registry *Registry, opts ...WorkerOption) (*Worker, error) {
	if registry == nil || len(registry.jobs) == 0 {
		return nil, errors.New("netmr: worker needs a non-empty registry")
	}
	w := &Worker{registry: registry, done: make(chan struct{})}
	for _, opt := range opts {
		opt(w)
	}
	return w, nil
}

// Start connects to the master and serves tasks on a background
// goroutine. Use Stop (or closing the master) to terminate; Wait blocks
// until the serve loop exits.
func (w *Worker) Start(masterAddr string) error {
	raw, err := net.DialTimeout("tcp", masterAddr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("netmr: dial master: %w", err)
	}
	// The local endpoint is a unique, stable identity for this connection;
	// the master uses it to attribute shards, failures and RPC latency to
	// a specific worker.
	id := raw.LocalAddr().String()
	c := newConn(w.chaos.WrapConn("", raw))
	if err := c.send(message{Type: "hello", ID: id, Jobs: w.registry.Names()}, 5*time.Second); err != nil {
		_ = c.close()
		return err
	}
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		_ = c.close()
		return errors.New("netmr: worker already stopped")
	}
	w.netConn = raw
	w.mu.Unlock()

	go func() {
		defer close(w.done)
		defer func() { _ = c.close() }()
		w.serve(c)
	}()
	return nil
}

func (w *Worker) serve(c *conn) {
	for {
		m, err := c.recv(0) // block until the master sends work or closes
		if err != nil {
			return
		}
		switch m.Type {
		case "task":
			job, ok := w.registry.lookup(m.Job)
			if !ok {
				workerTasks.With("unknown_job").Inc()
				_ = c.send(message{Type: "error", TaskID: m.TaskID, Message: fmt.Sprintf("unknown job %q", m.Job)}, 5*time.Second)
				continue
			}
			if f := w.chaos.TaskFault("task", m.TaskID, m.Attempt); f.Delay > 0 || f.Crash {
				if f.Delay > 0 {
					time.Sleep(f.Delay)
				}
				if f.Crash {
					// A crashed worker dies without a word: the connection
					// closes and the master reassigns the shard.
					workerTasks.With("crashed").Inc()
					return
				}
			}
			start := time.Now()
			partial := runShard(job, m.Records)
			workerTaskSeconds.Observe(time.Since(start).Seconds())
			workerTasks.With("ok").Inc()
			if err := c.send(message{Type: "result", TaskID: m.TaskID, Attempt: m.Attempt, Partial: partial}, 30*time.Second); err != nil {
				return
			}
		case "ping":
			workerPings.Inc()
			if err := c.send(message{Type: "pong"}, 5*time.Second); err != nil {
				return
			}
		default:
			// Ignore unknown frames: forward compatibility.
		}
	}
}

// Stop closes the connection and waits for the serve loop to exit. It is
// safe to call before Start (the worker then refuses to start) and more
// than once.
func (w *Worker) Stop() {
	w.mu.Lock()
	already := w.stopped
	w.stopped = true
	nc := w.netConn
	w.mu.Unlock()
	if nc != nil {
		nc.Close()
	}
	if nc != nil && !already {
		<-w.done
	}
}
