package netmr

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"
)

// Master-side scheduler of the distributed reduce phase: after the split
// barrier the R partitions go back out to the reduce-capable workers as
// reduce tasks, under the same retry/backoff/speculation discipline as
// map shards. The master never folds a key here — its remaining job is
// routing: telling each reducer where the winning map outputs live (the
// fetch plan) and carrying the relayed slices of v1/non-reduce workers.

// reducePlan is everything the reduce phase needs to route intermediate
// data: where the winning map outputs live (mapLocs), where their peer
// replicas live (replicaLocs), the master-held replica payloads of
// unreplicated outputs (replicaParts), the relayed slices of v1 workers
// (relay), and the lineage inputs (job + shardRecords) for the last-ditch
// map re-execution fallback.
type reducePlan struct {
	jobName      string
	job          Job
	runID        string
	mapLocs      map[int]string
	replicaLocs  map[int]string
	replicaParts map[int][]partitionPartial
	relay        [][]partitionPartial
	shards       int
	shardRecords func(int) []string
}

// runReducePhase assigns the R reduce partitions to reduce-capable
// workers and returns their folded partitions, indexed by partition id.
// Non-reduce workers drawn from the idle pool are parked for the
// duration and returned on every exit path.
//
// Unlike the map phase, fetch plans are computed per dispatch against the
// current shuffle-address liveness view: a map output whose primary
// holder died is rerouted to its peer replica, falls back to the
// master-held copy inline on the task frame, and only when every copy is
// gone is the map task re-executed from lineage on the master (cached, so
// R partitions pay for one re-execution). The fold output is
// byte-identical on every route — reducers order partials by map task id
// before folding, not by arrival.
//
// The report channels are created by Run before the map phase because
// pipelined (early) launches start under the map tail: partitions in
// earlySeeded are already in flight when this loop starts, so they are
// kept out of the queue and accounted as live launches — each reports
// exactly once, possibly into the pre-seeded channel buffers. An early
// launch the master aborted fails with errEarlyAborted and requeues
// without charging the attempt budget.
func (m *Master) runReducePhase(ctx context.Context, plan *reducePlan, stats *Stats, ledger *perWorkerLedger, trc *JobTrace, deadline <-chan time.Time,
	resultCh chan launchDone, failCh chan launchFail, earlySeeded map[int]bool) ([]map[string]float64, error) {
	R := m.cfg.Reducers

	// Sorted stored-task ids: the deterministic iteration base for every
	// per-dispatch plan.
	storedTasks := make([]int, 0, len(plan.mapLocs))
	for task := range plan.mapLocs {
		storedTasks = append(storedTasks, task)
	}
	sort.Ints(storedTasks)

	// recoveryAt marks the first time a dispatch had to route around a
	// lost intermediate; RecoveryWall runs from there to phase completion.
	var recoveryAt time.Time
	recovered := func() {
		if recoveryAt.IsZero() {
			recoveryAt = time.Now()
		}
	}
	var scratch *shardScratch // lazy, only allocated if lineage re-execution happens

	// buildPlan computes one dispatch's fetch plan: each live holder
	// address with the (sorted) map tasks to fetch from it, the replica
	// addresses an early-layout reducer may fail over to worker-locally,
	// plus the partition's slice of any output that has to travel inline
	// (master replica or re-executed). Runs in the event-loop goroutine —
	// it mutates shared state (replicaParts cache, stats).
	buildPlan := func(partition int) ([]fetchLoc, []partitionPartial, []fetchLoc) {
		byAddr := make(map[string][]int)
		repBy := make(map[string][]int)
		var inline []partitionPartial
		for _, task := range storedTasks {
			addr := plan.mapLocs[task]
			if m.addrAlive(addr) {
				byAddr[addr] = append(byAddr[addr], task)
				if rep, ok := plan.replicaLocs[task]; ok && m.addrAlive(rep) {
					repBy[rep] = append(repBy[rep], task)
				}
				continue
			}
			if rep, ok := plan.replicaLocs[task]; ok && m.addrAlive(rep) {
				byAddr[rep] = append(byAddr[rep], task)
				stats.ReplicaFetches++
				m.metrics.replicaFetches.Inc()
				recovered()
				continue
			}
			parts, ok := plan.replicaParts[task]
			if !ok {
				// Primary and replica both gone: re-execute the map task
				// from lineage on the master and cache the partition set
				// where an inline replica would have been.
				if scratch == nil {
					scratch = newShardScratch()
				}
				parts = runShardPartitioned(plan.job, plan.shardRecords(task), scratch, R)
				plan.replicaParts[task] = parts
				m.metrics.mapReexecs.Inc()
			}
			recovered()
			for _, p := range parts {
				if p.ID == partition {
					inline = append(inline, partitionPartial{ID: task, Partial: p.Partial})
				}
			}
		}
		addrs := make([]string, 0, len(byAddr))
		for addr := range byAddr {
			addrs = append(addrs, addr)
		}
		sort.Strings(addrs)
		locs := make([]fetchLoc, 0, len(addrs))
		for _, addr := range addrs {
			locs = append(locs, fetchLoc{Addr: addr, Tasks: byAddr[addr]})
		}
		repAddrs := make([]string, 0, len(repBy))
		for addr := range repBy {
			repAddrs = append(repAddrs, addr)
		}
		sort.Strings(repAddrs)
		reps := make([]fetchLoc, 0, len(repAddrs))
		for _, addr := range repAddrs {
			reps = append(reps, fetchLoc{Addr: addr, Tasks: repBy[addr]})
		}
		return locs, inline, reps
	}

	queue := make([]shardTask, 0, R)
	for p := 0; p < R; p++ {
		if !earlySeeded[p] {
			queue = append(queue, shardTask{id: p})
		}
	}

	// dispatchReduce ships one partition to a reduce worker and reports
	// exactly once. A reply that is not this partition's result drops the
	// worker — except a comp reducer's "the fetch failed" report (an error
	// frame naming the holder address): there the reducer is healthy and
	// the holder is not, so the holder is marked dead, the reducer returns
	// to the pool, and the retry re-plans around the loss.
	dispatchReduce := func(w *workerHandle, t shardTask, locs []fetchLoc, parts []partitionPartial, compAddrs []string, reps []fetchLoc, launch int) {
		traceID := ""
		if trc != nil && w.trace {
			traceID = trc.ID
		}
		fr := message{Type: "reducetask", Job: plan.jobName, TaskID: t.id, Attempt: t.attempts, Run: plan.runID, Locs: locs, Parts: parts, CompAddrs: compAddrs, Trace: traceID}
		if w.early {
			// Replica addresses ride the early layout: the reducer retries
			// a dead holder's tasks against the replica itself instead of
			// failing the whole launch back to the master.
			fr.Reps = reps
		}
		start := time.Now()
		err := w.c.send(fr, m.cfg.TaskTimeout)
		var reply message
		if err == nil {
			reply, err = w.c.recv(m.cfg.TaskTimeout)
		}
		elapsed := time.Since(start)
		if err == nil && reply.Type == "error" && reply.TaskID == t.id && reply.Fetch != "" {
			m.markAddrDead(reply.Fetch)
			if trc != nil {
				trc.closeLaunch(launch, outcomeFailed, nil)
			}
			failCh <- launchFail{task: t, err: fmt.Errorf("netmr: reduce partition %d: fetch from %s failed: %s", t.id, reply.Fetch, reply.Message)}
			m.idle <- w
			return
		}
		if err == nil && (reply.Type != "result" || reply.TaskID != t.id) {
			detail := reply.Message
			if detail == "" {
				detail = fmt.Sprintf("frame %q (task %d)", reply.Type, reply.TaskID)
			}
			err = fmt.Errorf("netmr: worker %s failed reduce partition %d: %s", w.id, t.id, detail)
		}
		if err != nil {
			ledger.shardFailed(w.id, elapsed)
			m.metrics.reassignments.With(w.id).Inc()
			if trc != nil {
				trc.closeLaunch(launch, outcomeFailed, nil)
			}
			failCh <- launchFail{task: t, err: err}
			m.dropWorker(w)
			return
		}
		if !w.trace {
			reply.Spans = nil // only negotiated trace peers may report phases
		}
		m.metrics.rpcSeconds.With(w.id).Observe(elapsed.Seconds())
		ledger.shardDone(w.id, elapsed)
		if trc != nil {
			trc.closeLaunch(launch, outcomeOK, reply.Spans)
		}
		resultCh <- launchDone{
			task: t, partial: reply.Partial, bytes: reply.Bytes,
			compBytes: reply.CompBytes, spills: reply.Spills, spilled: reply.Spilled,
			failovers: reply.Failovers, elapsed: elapsed, launch: launch,
		}
		m.idle <- w
	}

	finals := make([]map[string]float64, R)
	inflight := make(map[int]*flight, R)
	done := make(map[int]bool, R)
	var completedLat []float64
	pending := R
	// Early launches are live flights this loop inherits; their ages are
	// reset to the phase start so the speculation clock does not read the
	// map overlap as straggling.
	for p := range earlySeeded {
		inflight[p] = &flight{launches: 1, lastLaunch: time.Now()}
	}

	// Only reduce-capable workers can serve this phase; everyone else
	// pulled from the idle pool parks here until the phase ends.
	var parked []*workerHandle
	defer func() {
		for _, w := range parked {
			m.idle <- w
		}
	}()

	liveLaunches := func() int {
		total := 0
		for _, f := range inflight {
			total += f.launches
		}
		return total
	}
	queuedShard := func(id int) bool {
		for _, t := range queue {
			if t.id == id {
				return true
			}
		}
		return false
	}
	abandon := func() {
		if n := liveLaunches(); n > 0 {
			stats.Cancellations += n
			m.metrics.cancellations.Add(float64(n))
		}
	}

	var specTick <-chan time.Time
	if m.cfg.SpeculationInterval > 0 {
		ticker := time.NewTicker(m.cfg.SpeculationInterval)
		defer ticker.Stop()
		specTick = ticker.C
	}
	wake := time.NewTimer(time.Hour)
	if !wake.Stop() {
		<-wake.C
	}
	defer wake.Stop()

	for pending > 0 {
		kept := queue[:0]
		for _, t := range queue {
			if !done[t.id] {
				kept = append(kept, t)
			}
		}
		queue = kept
		now := time.Now()
		readyIdx := -1
		var earliest time.Time
		for i, t := range queue {
			if !t.readyAt.After(now) {
				readyIdx = i
				break
			}
			if earliest.IsZero() || t.readyAt.Before(earliest) {
				earliest = t.readyAt
			}
		}
		var idleCh chan *workerHandle
		var wakeCh <-chan time.Time
		if readyIdx >= 0 {
			idleCh = m.idle
		} else if !earliest.IsZero() {
			if !wake.Stop() {
				select {
				case <-wake.C:
				default:
				}
			}
			wake.Reset(earliest.Sub(now))
			wakeCh = wake.C
		}

		select {
		case w := <-idleCh:
			if !w.reduce {
				parked = append(parked, w)
				continue
			}
			t := queue[readyIdx]
			queue = append(queue[:readyIdx], queue[readyIdx+1:]...)
			f := inflight[t.id]
			if f == nil {
				f = &flight{}
				inflight[t.id] = f
			}
			f.launches++
			f.lastLaunch = time.Now()
			launch := -1
			if trc != nil {
				launch = trc.openLaunch("rtask", t.id, t.attempts, w.id)
			}
			// The routing plan is computed here, in the event loop, against
			// the liveness view of this instant — not in the dispatch
			// goroutine, where the shared replica cache and stats would
			// race.
			locs, inline, reps := buildPlan(t.id)
			taskParts := plan.relay[t.id]
			if len(inline) > 0 {
				taskParts = append(append([]partitionPartial{}, taskParts...), inline...)
			}
			// Only comp reducers get the comp-peer list (the frame field
			// needs the comp layout); they dial the flag layer exclusively
			// to addresses on it, so mixed-generation shuffle planes never
			// misparse each other.
			var compAddrs []string
			if w.comp {
				compAddrs = m.liveCompAddrs()
			}
			go dispatchReduce(w, t, locs, taskParts, compAddrs, reps, launch)

		case r := <-resultCh:
			if f := inflight[r.task.id]; f != nil {
				f.launches--
			}
			if done[r.task.id] {
				stats.Duplicates++
				m.metrics.duplicates.Inc()
				if trc != nil && r.launch >= 0 {
					trc.relabel(r.launch, outcomeDuplicate)
				}
				continue
			}
			done[r.task.id] = true
			if r.task.speculative {
				stats.SpecWins++
				m.metrics.specWins.Inc()
			}
			completedLat = append(completedLat, r.elapsed.Seconds())
			finals[r.task.id] = r.partial
			stats.ReduceTasks++
			stats.ShuffleBytes += r.bytes
			if r.failovers > 0 {
				stats.Failovers += r.failovers
				m.metrics.failovers.Add(float64(r.failovers))
			}
			if r.compBytes > 0 {
				stats.CompressedBytes += r.compBytes
				m.metrics.compressedBytes.Add(float64(r.compBytes))
			}
			if r.spills > 0 {
				stats.SpillRuns += r.spills
				stats.SpilledBytes += r.spilled
				m.metrics.spillRuns.Add(float64(r.spills))
				m.metrics.spilledBytes.Add(float64(r.spilled))
			}
			m.metrics.reduceTasks.With("ok").Inc()
			pending--

		case fl := <-failCh:
			f := inflight[fl.task.id]
			if f != nil {
				f.launches--
			}
			if errors.Is(fl.err, errEarlyAborted) {
				// The master called this early launch back to free its
				// worker for a map retry — not a failure. Requeue at no
				// cost to the attempt budget.
				if !done[fl.task.id] && !queuedShard(fl.task.id) {
					queue = append(queue, fl.task)
				}
				continue
			}
			m.metrics.reduceTasks.With("failed").Inc()
			if done[fl.task.id] {
				continue // sibling already delivered; failure is moot
			}
			t := fl.task
			t.attempts++
			if t.attempts >= m.cfg.MaxAttempts {
				if (f != nil && f.launches > 0) || queuedShard(t.id) {
					continue
				}
				abandon()
				return nil, fmt.Errorf("netmr: reduce partition %d failed %d times, retry budget exhausted: %w", t.id, t.attempts, fl.err)
			}
			if m.redCount.Load() == 0 && (f == nil || f.launches == 0) {
				abandon()
				return nil, fmt.Errorf("netmr: all reduce-capable workers lost with partition %d outstanding: %w", t.id, fl.err)
			}
			delay := backoffDelay(m.cfg.RetryBaseDelay, m.cfg.RetryMaxDelay, m.cfg.RetryJitter, m.cfg.RetrySeed, t.id, t.attempts)
			m.metrics.retries.Inc()
			m.metrics.backoffSeconds.Observe(delay.Seconds())
			stats.Reassignments++
			t.readyAt = time.Now().Add(delay)
			queue = append(queue, t)

		case <-specTick:
			if len(completedLat) < m.cfg.SpeculationMinObservations {
				continue
			}
			threshold := latencyQuantile(completedLat, m.cfg.SpeculationQuantile) * m.cfg.SpeculationMultiplier
			now := time.Now()
			ids := make([]int, 0, len(inflight))
			for id := range inflight {
				ids = append(ids, id)
			}
			sort.Ints(ids)
			for _, id := range ids {
				f := inflight[id]
				if done[id] || f.launches == 0 || f.clones >= m.cfg.SpeculationMaxClones {
					continue
				}
				if now.Sub(f.lastLaunch).Seconds() < threshold {
					continue
				}
				f.clones++
				stats.Speculations++
				m.metrics.speculations.Inc()
				queue = append(queue, shardTask{id: id, speculative: true})
			}

		case <-wakeCh:
			// A backoff matured; rescan the queue.

		case <-ctx.Done():
			abandon()
			return nil, ctx.Err()

		case <-deadline:
			abandon()
			return nil, fmt.Errorf("netmr: job timed out after %v", m.cfg.JobTimeout)
		}
	}
	abandon()
	if !recoveryAt.IsZero() {
		stats.RecoveryWall = time.Since(recoveryAt)
		m.metrics.recoverySeconds.Observe(stats.RecoveryWall.Seconds())
	}
	return finals, nil
}
